package rdfault_test

import (
	"bytes"
	"strings"
	"testing"

	"rdfault"
)

func TestFacadeBuildAndIdentify(t *testing.T) {
	b := rdfault.NewBuilder("t")
	a := b.Input("a")
	x := b.Input("x")
	g := b.Gate(rdfault.Nand, "g", a, x)
	b.Output("y", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []rdfault.Heuristic{
		rdfault.HeuristicFUS, rdfault.Heuristic1, rdfault.Heuristic2,
		rdfault.Heuristic2Inverse, rdfault.HeuristicPinOrder,
	} {
		rep, err := rdfault.Identify(c, h, rdfault.Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if rep.TotalLogicalPaths.Int64() != 4 {
			t.Fatalf("%v: total = %v", h, rep.TotalLogicalPaths)
		}
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	c := rdfault.PaperExample()
	var buf bytes.Buffer
	if err := rdfault.WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := rdfault.ParseBench("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() {
		t.Fatal("round trip changed structure")
	}
}

func TestFacadePLAFlow(t *testing.T) {
	cv, err := rdfault.ParsePLA("t", strings.NewReader(".i 2\n.o 1\n11 1\n00 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rdfault.Synthesize(cv, rdfault.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lam, err := rdfault.IdentifyByUnfolding(c, rdfault.UnfoldingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lam.TotalLogicalPaths.Sign() <= 0 {
		t.Fatal("no paths")
	}
}

func TestFacadeSortsAndHierarchy(t *testing.T) {
	c := rdfault.PaperExample()
	s1 := rdfault.Heuristic1Sort(c)
	s2, fsRes, tRes, err := rdfault.Heuristic2Sort(c)
	if err != nil {
		t.Fatal(err)
	}
	if fsRes.Selected != 8 || tRes.Selected != 5 {
		t.Fatalf("FS=%d T=%d, want 8/5", fsRes.Selected, tRes.Selected)
	}
	for _, s := range []rdfault.InputSort{s1, s2, s2.Inverse()} {
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
	}
	ch := rdfault.ChooseBySort(s2)
	sys := rdfault.StabilizingSystem(c, []bool{true, true, true}, ch)
	if sys.NumLeads() == 0 {
		t.Fatal("empty system")
	}
}

func TestFacadeTimingAndSelection(t *testing.T) {
	c := rdfault.PaperExample()
	d := rdfault.RandomDelays(c, 1, 0.5, 2)
	an := rdfault.AnalyzeTiming(c, d)
	if an.CriticalDelay() <= 0 {
		t.Fatal("zero critical delay")
	}
	sel, err := rdfault.NewSelector(c, d, rdfault.SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := sel.ByThreshold(0, rdfault.SelectOptions{})
	if len(s.Selected) != 5 {
		t.Fatalf("selected %d, want the 5 non-RD paths", len(s.Selected))
	}
}

func TestFacadeATPGAndDFT(t *testing.T) {
	c := rdfault.PaperExample()
	gn := rdfault.NewGenerator(c)
	var targets []rdfault.Logical
	rdfault.ForEachLogicalPath(c, func(lp rdfault.Logical) bool {
		targets = append(targets, rdfault.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		return true
	})
	tests, cov := rdfault.CompactTests(c, targets, gn, rdfault.CompactOptions{AllowNonRobust: true})
	if cov.Detected() != 5 {
		t.Fatalf("covered %d, want 5", cov.Detected())
	}
	fs := rdfault.NewFaultSimulator(c)
	total := 0
	for _, tt := range tests {
		total += len(fs.Detects(tt).NonRobust)
	}
	if total == 0 {
		t.Fatal("tests detect nothing")
	}
	var untestable []rdfault.Logical
	for _, lp := range targets {
		if gn.Classify(lp) == rdfault.FuncSensitizable {
			untestable = append(untestable, lp)
		}
	}
	props := rdfault.ProposeControlPoints(c, untestable)
	if len(props) == 0 {
		t.Fatal("no DFT proposals")
	}
	mod, err := rdfault.InsertControlPoints(c, props)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Inputs()) <= len(c.Inputs()) {
		t.Fatal("no test points added")
	}
}

func TestFacadeSCOAPAndCertificates(t *testing.T) {
	c := rdfault.PaperExample()
	s := rdfault.SCOAPSort(c)
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	cert, err := rdfault.CollectRDSegments(c, rdfault.PinOrderSort(c), rdfault.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Result.RD.Int64() != 3 || cert.CoveredTotal.Int64() != 3 {
		t.Fatalf("certificate covers %v of RD %v", cert.CoveredTotal, cert.Result.RD)
	}
}

func TestFacadeVerilog(t *testing.T) {
	c := rdfault.PaperExample()
	var buf bytes.Buffer
	if err := rdfault.WriteVerilog(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := rdfault.ParseVerilog("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := rdfault.Equivalent(c, c2)
	if err != nil || !eq {
		t.Fatalf("verilog round trip not equivalent (%v)", err)
	}
	swept, removed, err := rdfault.RemoveRedundant(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || swept.NumGates() >= c.NumGates() {
		t.Fatal("sweep found nothing on the example")
	}
}
