package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenPerTest: fault simulation of a one-test set against the
// paper example, with the per-test breakdown.
func TestGoldenPerTest(t *testing.T) {
	bench := goldentest.Fixture(t, "paper-example.bench")
	tests := goldentest.Fixture(t, "tests.txt")
	golden := goldentest.Golden(t, "per-test")
	out := goldentest.Run(t, "grade", main, "-bench", bench, "-tests", tests, "-per-test")
	goldentest.Check(t, golden, out)
}
