// Command grade fault-simulates a two-pattern test set against a circuit
// and reports, per test and in total, how many logical paths it detects
// robustly and non-robustly — including the distinct-path union and the
// RD-aware coverage of the non-RD path set.
//
// Usage:
//
//	grade -bench circuit.bench -tests tests.txt
//
// The test file format is the one cmd/atpg -o emits (see tgen.WriteTests).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"rdfault"
	"rdfault/internal/fsim"
	"rdfault/internal/loader"
	"rdfault/internal/tgen"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "netlist file (.bench, .v or .pla)")
		testsFile = flag.String("tests", "", "two-pattern test set (tgen.WriteTests format)")
		perTest   = flag.Bool("per-test", false, "print one line per test")
	)
	flag.Parse()
	if *benchFile == "" || *testsFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	c, err := loader.Load(*benchFile)
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(*testsFile)
	if err != nil {
		fatal(err)
	}
	tests, err := tgen.ReadTests(tf, c)
	tf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit %s: %v logical paths, %d tests\n",
		c.Name(), rdfault.CountPaths(c), len(tests))

	sim := fsim.New(c)
	robust := map[string]bool{}
	nonRobust := map[string]bool{}
	totalR := new(big.Int)
	totalNR := new(big.Int)
	for i, t := range tests {
		cnt := sim.Count(t)
		totalR.Add(totalR, cnt.Robust)
		totalNR.Add(totalNR, cnt.NonRobust)
		res := sim.Detects(t)
		for _, lp := range res.Robust {
			robust[lp.Key()] = true
		}
		for _, lp := range res.NonRobust {
			nonRobust[lp.Key()] = true
		}
		if *perTest {
			fmt.Printf("  t%-4d robust=%v non-robust=%v\n", i, cnt.Robust, cnt.NonRobust)
		}
	}
	fmt.Printf("detections (with repetition): robust %v, non-robust %v\n", totalR, totalNR)
	fmt.Printf("distinct paths detected: robust %d, non-robust %d\n", len(robust), len(nonRobust))

	// RD-aware coverage: fraction of the non-RD set the test set touches.
	rep, err := rdfault.Identify(c, rdfault.Heuristic1, rdfault.Options{})
	if err != nil {
		fatal(err)
	}
	if rep.Selected > 0 {
		fmt.Printf("coverage of the non-RD set (%d paths): robust %.2f%%, any %.2f%%\n",
			rep.Selected,
			100*float64(len(robust))/float64(rep.Selected),
			100*float64(len(nonRobust))/float64(rep.Selected))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grade:", err)
	os.Exit(1)
}
