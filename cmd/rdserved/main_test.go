package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenSelftest boots the real daemon on an ephemeral port and
// drives one end-to-end pass through its HTTP surface; the printed
// health/count/submit/result/budget lines are the service's output
// contract.
func TestGoldenSelftest(t *testing.T) {
	golden := goldentest.Golden(t, "selftest")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "rdserved", main, "-selftest", "-budget", "67108864")
	goldentest.Check(t, golden, out)
}
