// Command rdserved runs the RD identification service: a long-lived
// daemon that accepts circuits over HTTP+JSON, queues identification
// jobs with admission control and load shedding, and degrades gracefully
// down the exact → fast → certificate → count ladder under memory
// pressure instead of falling over.
//
// Usage:
//
//	rdserved [-addr 127.0.0.1:8341] [-budget 268435456] [-queue 16] ...
//	rdserved -selftest   # bind an ephemeral port, run one end-to-end
//	                     # job through the real HTTP surface, exit
//
// Endpoints: POST /v1/jobs, POST /v1/batch, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (SSE progress), GET /v1/jobs/{id}/result,
// POST /v1/count, POST /v1/budget, GET /metrics, GET /healthz.
// See internal/serve.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/cliutil"
	"rdfault/internal/gen"
	"rdfault/internal/serve"
	"rdfault/internal/store"
	"rdfault/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8341", "listen address")
		queue    = flag.Int("queue", 16, "heavy-lane queue depth (full queue sheds load with 429)")
		inflight = flag.Int("inflight", 2, "concurrently running identification jobs")
		cheap    = flag.Int("cheap", 8, "concurrent cheap-lane (path count) requests")
		budget   = flag.Int64("budget", 256<<20, "memory budget in bytes shared by running jobs")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "enumeration goroutines per job")
		maxGates = flag.Int("max-gates", 200000, "admission limit on circuit size")
		spill    = flag.String("spill", "", "directory for evicted-job checkpoints (default: system temp)")
		retry    = flag.Duration("retry-after", time.Second, "backoff hint attached to shed load")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline: new work is shed with 503, in-flight jobs finish or checkpoint-spill")
		selftest = flag.Bool("selftest", false, "bind an ephemeral port, exercise the service end to end, exit")
		events   = flag.String("events", "", `write the structured JSONL event log to this file ("-" = stderr)`)
		storeDir = flag.String("store", "", "content-addressed result store directory: fast-tier jobs are served from stored results (resubmissions hit, ECO revisions re-enumerate only changed cones) and persist across restarts")
		follow   = flag.String("follow-journal", "", "hot-standby follower journal file: POST /v1/journal shipments from a fleet coordinator (rdfleet -standby) are validated and appended here; promote with rdfleet -resume-journal on this file")
		storeCap = flag.Int64("store-max-bytes", 0, "result-store size cap in bytes; exceeding it evicts least-recently-used entries (0 = unbounded)")
	)
	flag.Parse()

	cfg := serve.Config{
		QueueDepth:       *queue,
		MaxInFlight:      *inflight,
		MaxCheapInFlight: *cheap,
		MemoryBudget:     *budget,
		MaxGates:         *maxGates,
		Workers:          *workers,
		SpillDir:         *spill,
		RetryAfter:       *retry,
		FollowerJournal:  *follow,
	}
	if *events != "" {
		w := io.Writer(os.Stderr)
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		cfg.Telemetry = telemetry.NewLog(w)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		st.SetMaxBytes(*storeCap)
		cfg.Store = st
	}

	if *selftest {
		if err := runSelftest(cfg); err != nil {
			fatal(err)
		}
		return
	}

	s := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := (&cliutil.Flags{}).SignalContext()
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rdserved: listening on %s\n", *addr)
	if info := s.FollowerInfo(); info.Path != "" {
		fmt.Fprintf(os.Stderr, "rdserved: following journal %s (term %d, %d records)\n",
			info.Path, info.Term, info.Records)
	}

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: the listener stays up so clients asking for work get
	// 503 + Retry-After instead of a connection refusal, in-flight jobs run
	// to completion or checkpoint-spill at the deadline, then everything
	// closes.
	fmt.Fprintf(os.Stderr, "rdserved: draining (deadline %s)\n", *drain)
	s.Drain(*drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rdserved: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "rdserved: drained")
}

// runSelftest drives the full service — real listener, real HTTP client
// — through one deterministic end-to-end pass on the paper's example
// circuit. Its stdout is the golden smoke-test contract.
func runSelftest(cfg serve.Config) error {
	cfg.Workers = 1 // deterministic scheduling for the golden output
	s := serve.New(cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	fmt.Println("rdserved selftest")

	var health serve.Health
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		return err
	}
	fmt.Printf("health: %s (queued=%d running=%d)\n", health.Status, health.Queued, health.Running)

	var bench strings.Builder
	if err := circuit.WriteBench(&bench, gen.PaperExample()); err != nil {
		return err
	}
	req := map[string]any{"bench": bench.String(), "name": "paper-example", "heuristic": "heu2", "tier": "fast"}

	var count serve.Answer
	if err := postJSON(client, base+"/v1/count", req, http.StatusOK, &count); err != nil {
		return err
	}
	fmt.Printf("count: tier=%s paths=%s\n", count.Tier, count.TotalPaths)

	var info serve.Info
	if err := postJSON(client, base+"/v1/jobs", req, http.StatusAccepted, &info); err != nil {
		return err
	}
	fmt.Printf("submit: %s (%s tier requested)\n", info.ID, info.Tier)

	ans, err := pollResult(client, base+"/v1/jobs/"+info.ID+"/result")
	if err != nil {
		return err
	}
	fmt.Printf("result: tier=%s reason=%s paths=%s selected=%d rd=%s (%.2f%%)\n",
		ans.Tier, ans.TierReason, ans.TotalPaths, ans.Selected, ans.RD, ans.RDPercent)

	var resized map[string]int64
	if err := postJSON(client, base+"/v1/budget", map[string]int64{"bytes": cfg.MemoryBudget / 2},
		http.StatusOK, &resized); err != nil {
		return err
	}
	fmt.Printf("budget: %d -> %d\n", resized["previous"], resized["bytes"])

	// Batch lane: two jobs in one request must come back as two
	// independent accepted items answering exactly like two submissions.
	var batch struct {
		Jobs []struct {
			Info  *serve.Info `json:"info"`
			Error string      `json:"error"`
		} `json:"jobs"`
	}
	if err := postJSON(client, base+"/v1/batch",
		map[string]any{"jobs": []map[string]any{req, req}},
		http.StatusAccepted, &batch); err != nil {
		return err
	}
	accepted := 0
	for _, it := range batch.Jobs {
		if it.Error == "" {
			accepted++
		}
	}
	fmt.Printf("batch: %d submitted, %d accepted\n", len(batch.Jobs), accepted)
	for _, it := range batch.Jobs {
		bans, err := pollResult(client, base+"/v1/jobs/"+it.Info.ID+"/result")
		if err != nil {
			return err
		}
		fmt.Printf("batch result: %s tier=%s selected=%d rd=%s\n", it.Info.ID, bans.Tier, bans.Selected, bans.RD)
	}

	// Live progress counters ride on the status endpoint; on a finished
	// job they are the exact final counters (worker-count invariant).
	var done serve.Info
	if err := getJSON(client, base+"/v1/jobs/"+info.ID, &done); err != nil {
		return err
	}
	fmt.Printf("progress: %s selected=%d segments=%d final=%v\n",
		done.ID, done.Progress.Selected, done.Progress.Segments, done.Progress.Final)

	// The SSE stream of a finished job is a single deterministic "done"
	// frame carrying that same snapshot.
	event, streamed, err := readOneSSE(client, base+"/v1/jobs/"+info.ID+"/events")
	if err != nil {
		return err
	}
	fmt.Printf("stream: event=%s state=%s selected=%d\n", event, streamed.State, streamed.Progress.Selected)

	raw, err := fetchText(client, base+"/metrics")
	if err != nil {
		return err
	}
	fmt.Printf("metrics: submitted=%s done=%s tier[fast]=%s streams=%s\n",
		metricValue(raw, "rd_serve_jobs_submitted_total"),
		metricValue(raw, `rd_serve_jobs_completed_total{state="done"}`),
		metricValue(raw, `rd_serve_tier_served_total{tier="fast"}`),
		metricValue(raw, "rd_serve_sse_streams_total"))

	fmt.Println("selftest ok")
	return nil
}

// readOneSSE reads the first frame of an SSE stream and closes it.
func readOneSSE(c *http.Client, url string) (string, *serve.Info, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var event string
	var info serve.Info
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &info); err != nil {
				return "", nil, err
			}
			return event, &info, nil
		}
	}
	return "", nil, errors.New("stream ended before a frame")
}

func fetchText(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// metricValue pulls one sample's value out of a Prometheus text page.
func metricValue(page, name string) string {
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	return "missing"
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return decodeJSON(resp, http.StatusOK, v)
}

func postJSON(c *http.Client, url string, body any, wantCode int, v any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return decodeJSON(resp, wantCode, v)
}

func decodeJSON(resp *http.Response, wantCode int, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantCode {
		return fmt.Errorf("%s: status %d (want %d): %s", resp.Request.URL, resp.StatusCode, wantCode, raw)
	}
	return json.Unmarshal(raw, v)
}

func pollResult(c *http.Client, url string) (*serve.Answer, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := c.Get(url)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusConflict {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if time.Now().After(deadline) {
				return nil, errors.New("selftest job never finished")
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var ans serve.Answer
		if err := decodeJSON(resp, http.StatusOK, &ans); err != nil {
			return nil, err
		}
		return &ans, nil
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdserved: %v\n", err)
	os.Exit(1)
}
