package main

import (
	"os"
	"strings"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenQuick: the quick experiment run announces exactly its two
// artifacts on stdout, and both are written and well-formed.
func TestGoldenQuick(t *testing.T) {
	golden := goldentest.Golden(t, "quick")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "report", main, "-quick", "-o", "r.html", "-json", "r.json", "-workers", "1")
	goldentest.Check(t, golden, out)
	html, err := os.ReadFile("r.html")
	if err != nil {
		t.Fatalf("no HTML report: %v", err)
	}
	if !strings.Contains(string(html), "<html") {
		t.Fatal("r.html is not HTML")
	}
	js, err := os.ReadFile("r.json")
	if err != nil {
		t.Fatalf("no JSON report: %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(js)), "{") {
		t.Fatal("r.json is not a JSON object")
	}
}
