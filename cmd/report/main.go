// Command report runs the complete experiment suite and writes a
// self-contained HTML report plus a machine-readable JSON dump.
//
// Usage:
//
//	report -quick -o report.html -json report.json   # seconds
//	report -o report.html                            # full run, minutes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"rdfault/internal/cliutil"
	"rdfault/internal/exp"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "scaled-down workloads (seconds instead of minutes)")
		outHTML  = flag.String("o", "report.html", "HTML report path")
		outJSON  = flag.String("json", "", "also write JSON to this path")
		progress = flag.Bool("v", false, "stream experiment output to stderr while running")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel enumeration goroutines for the table runs")
	)
	rf := cliutil.Register()
	flag.Parse()
	ctx, stop := rf.SignalContext()
	defer stop()
	rf.WarnCheckpointUnused("report", "the suite quarantines over-budget circuits instead; -timeout is the per-circuit budget")

	var sink io.Writer = io.Discard
	if *progress {
		sink = os.Stderr
	}
	summary, err := exp.RunAll(sink, *quick, exp.SuiteOptions{
		Workers:           *workers,
		PerCircuitTimeout: rf.Timeout,
		Context:           ctx,
	})
	if err != nil {
		fatal(err)
	}
	if n := len(summary.Quarantined); n > 0 {
		fmt.Fprintf(os.Stderr, "report: %d circuit(s) quarantined (over budget or crashed); see the report's quarantine table\n", n)
	}
	f, err := os.Create(*outHTML)
	if err != nil {
		fatal(err)
	}
	if err := summary.WriteHTML(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *outHTML)
	if *outJSON != "" {
		jf, err := os.Create(*outJSON)
		if err != nil {
			fatal(err)
		}
		if err := summary.WriteJSON(jf); err != nil {
			fatal(err)
		}
		if err := jf.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *outJSON)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
