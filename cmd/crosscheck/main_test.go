package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenSweep: a three-seed sweep's per-seed rows and summary line.
// The counts are scheduling-independent, so -workers 1 vs N makes no
// difference to the snapshot; -mingap 0 because a three-seed block need
// not contain a gap seed.
func TestGoldenSweep(t *testing.T) {
	golden := goldentest.Golden(t, "sweep")
	out := goldentest.Run(t, "crosscheck", main, "-seeds", "3", "-mingap", "0", "-workers", "1")
	goldentest.Check(t, golden, out)
}
