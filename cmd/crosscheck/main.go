// Command crosscheck runs the differential fuzzing sweep: seeded random
// circuits through the fast RD identifier and the exact brute-force
// oracle, machine-checking soundness, Lemma 1 containment and
// metamorphic stability on every seed, and reporting the measured
// approximation gap |exact RD| − |fast RD|.
//
// Usage:
//
//	crosscheck -seeds 64            # the nightly sweep (make crosscheck)
//	crosscheck -seeds 8 -seed 100   # a different seed block
//	crosscheck -json sweep.json     # keep the machine-readable record
//
// The exit status is 1 if any invariant is violated, or if fewer than
// -mingap seeds show a nonzero gap (a sweep where fast == exact
// everywhere is not exercising the approximation and usually means the
// circuit shape is too easy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"rdfault/internal/exp"
	"rdfault/internal/oracle/diff"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 64, "number of seeds to sweep")
		base     = flag.Int64("seed", 1, "first seed of the block")
		inputs   = flag.Int("inputs", 0, "random circuit primary inputs (0 = harness default)")
		gates    = flag.Int("gates", 0, "random circuit internal gates (0 = harness default)")
		outputs  = flag.Int("outputs", 0, "random circuit primary outputs (0 = harness default)")
		arity    = flag.Int("arity", 0, "random circuit max gate arity (0 = harness default)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "fast-pass enumeration workers")
		minGap   = flag.Int("mingap", 1, "require at least this many seeds with a nonzero approximation gap")
		jsonPath = flag.String("json", "", "also write the sweep record as JSON to this file")
	)
	flag.Parse()

	opt := diff.Options{
		Inputs:  *inputs,
		Gates:   *gates,
		Outputs: *outputs, MaxArity: *arity,
		Workers: *workers,
	}
	sum, err := exp.RunCrossCheck(os.Stdout, *seeds, *base, opt)
	if err != nil {
		fatal(err)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if n := len(sum.Violations); n > 0 {
		fatal(fmt.Errorf("%d invariant violation(s)", n))
	}
	if sum.GapSeeds < *minGap {
		fatal(fmt.Errorf("only %d seed(s) with nonzero gap, want >= %d: the sweep is not exercising the approximation", sum.GapSeeds, *minGap))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crosscheck:", err)
	os.Exit(1)
}
