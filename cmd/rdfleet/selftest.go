package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/fleet"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/gen"
	"rdfault/internal/serve"
)

// runSelftest is the crash-safety contract as a golden smoke test: a
// journaled 2-worker run on a c880-class ALU is killed mid-dispatch,
// resumed from its journal to the single-process counters, audited for
// exactly-once answers, then a corrupted copy of the journal is proven
// to fail typed and recompute to the same counters. Every printed value
// is deterministic — kill timing changes which cones need recomputing,
// never a counter digit.
func runSelftest() error {
	c := gen.ALU(8, gen.XorNAND)
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		return err
	}
	fmt.Println("rdfleet selftest")
	fmt.Printf("circuit: %s cones=%d\n", c.Name(), len(c.Outputs()))
	fmt.Printf("reference: paths=%s selected=%d rd=%s\n", ref.TotalLogicalPaths, ref.Selected, ref.RD)

	pool, err := fleet.NewLocalPool(2, serve.Config{Workers: 1, MaxConeInFlight: 2})
	if err != nil {
		return err
	}
	defer pool.Close()
	cfg := fleet.Config{
		Transport:       &fleet.HTTPTransport{Kill: func(addr string) { pool.Kill(addr) }},
		Workers:         pool.Addrs(),
		SliceMS:         5,
		EnumWorkers:     1,
		DispatchTimeout: 30 * time.Second,
	}

	dir, err := os.MkdirTemp("", "rdfleet-selftest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "coord.journal")
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		return err
	}
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointCoordKill + ".mid-dispatch",
		Kind:  faultinject.KindError, Hit: 1, Count: 1,
	}))
	kcfg := cfg
	kcfg.Journal = jw
	_, runErr := fleet.Run(context.Background(), kcfg, c, core.Heuristic2)
	restore()
	jw.Close()
	fmt.Printf("kill: phase=mid-dispatch typed=%v\n", errors.Is(runErr, fleet.ErrKilled))

	res, err := fleet.Resume(context.Background(), cfg, path)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	fmt.Printf("recover: match=%v paths=%s selected=%d rd=%s segments=%d\n",
		countersMatch(res, ref), res.Total, res.Selected, res.RD, res.Segments)

	audit, err := fleet.AuditJournal(path)
	if err != nil {
		return err
	}
	oncePerCone := audit.Cones > 0 && len(audit.Answers) == audit.Cones
	for _, n := range audit.Answers {
		if n != 1 {
			oncePerCone = false
		}
	}
	fmt.Printf("audit: sealed=%v answers-once-per-cone=%v unleased=%d\n",
		audit.Sealed, oncePerCone, audit.UnleasedAnswers)

	// Rot a byte in the second record of a copy: the read must fail typed
	// with the corruption's offset, and a resume must replay the valid
	// prefix and recompute the rest to the same counters.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	second := bytes.IndexByte(raw, '\n') + 1
	if second <= 0 || second+10 >= len(raw) {
		return fmt.Errorf("selftest journal too short to corrupt (%d bytes)", len(raw))
	}
	raw[second+10] ^= 0x40
	corruptPath := filepath.Join(dir, "corrupt.journal")
	if err := os.WriteFile(corruptPath, raw, 0o644); err != nil {
		return err
	}
	var ce *journal.CorruptError
	_, rerr := journal.ReadFile(corruptPath)
	fmt.Printf("corrupt: typed=%v offset-past-admit=%v\n",
		errors.As(rerr, &ce), ce != nil && ce.Offset == int64(second))

	res2, err := fleet.Resume(context.Background(), cfg, corruptPath)
	if err != nil {
		return fmt.Errorf("resume corrupt copy: %w", err)
	}
	fmt.Printf("recompute: match=%v segments-stable=%v\n",
		countersMatch(res2, ref), res2.Segments == res.Segments)
	fmt.Println("selftest ok")
	return nil
}

func countersMatch(res *fleet.Result, ref *core.Report) bool {
	return res.Total.Cmp(ref.TotalLogicalPaths) == 0 &&
		res.Selected == ref.Selected && res.RD.Cmp(ref.RD) == 0
}
