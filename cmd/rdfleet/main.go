// Command rdfleet distributes RD identification across a pool of
// rdserved workers. The circuit is sharded by output cone, the input
// sort is computed once globally and projected onto every cone, and the
// per-cone answers are merged in deterministic cone order — so the
// merged Selected/RD/Total counters are bit-identical to a
// single-process rdident run at any worker count, under worker kills,
// dropped dispatches, corrupt responses and zombie replies (see
// internal/fleet and its chaos suite).
//
// Usage:
//
//	rdfleet -example -local 4                 # 4 in-process loopback workers
//	rdfleet -bench file.bench -workers host:a,host:b
//	rdfleet -example -local 2 -slice 50 -events
//	rdfleet -example -local 2 -journal /var/lib/rdfleet   # crash-safe coordinator
//	rdfleet -resume-journal /var/lib/rdfleet/rdfleet.journal -local 2
//	rdfleet -selftest                         # kill/recover round trip, exit
//
// With -journal, every admission, lease, checkpoint, answer and the
// final seal is fsynced to a write-ahead journal before its side
// effect; a killed coordinator (or its hot standby, fed over -standby)
// resumes with -resume-journal and reproduces the exact counters of the
// uninterrupted run, re-dispatching only unfinished cones.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"rdfault"
	"rdfault/internal/circuit"
	"rdfault/internal/cliutil"
	"rdfault/internal/fleet"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/loader"
	"rdfault/internal/retry"
	"rdfault/internal/serve"
	"rdfault/internal/store"
	"rdfault/internal/telemetry"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		example   = flag.Bool("example", false, "run on the paper's example circuit")
		heuristic = flag.String("heuristic", "heu2", "fus|heu1|heu2|inverse|pin")
		local     = flag.Int("local", 0, "spawn N in-process rdserved workers on loopback")
		workers   = flag.String("workers", "", "comma-separated rdserved worker addresses (host:port,...)")
		sliceMS   = flag.Int64("slice", 0, "per-dispatch slice budget in ms; workers stream checkpoints back (0 = whole cones)")
		enum      = flag.Int("enum-workers", runtime.GOMAXPROCS(0), "enumeration goroutines per dispatched slice")
		dispatch  = flag.Duration("dispatch-timeout", 60*time.Second, "abandon a dispatch after this long (the reply is discarded as a zombie)")
		failures  = flag.Int("fail-threshold", 3, "consecutive failures that quarantine a worker")
		budget    = flag.Int64("budget", 256<<20, "per-local-worker memory budget in bytes")
		drain     = flag.Duration("drain", 10*time.Second, "graceful drain deadline for local workers on exit")
		events    = flag.Bool("events", false, "stream the coordinator's event log to stderr as JSONL (the unified telemetry schema)")
		storeDir  = flag.String("store", "", "content-addressed result store directory: cones with stored answers are retired without dispatching, fresh answers are written back")
		jdir      = flag.String("journal", "", "write-ahead journal directory: every coordinator decision is fsynced before its side effect, so a killed run resumes with -resume-journal")
		standby   = flag.String("standby", "", "hot-standby address (an rdserved with -follow-journal): each journal record is shipped to its follower lane as it is appended (requires -journal)")
		resumeAt  = flag.String("resume-journal", "", "resume a killed coordinator's run from this write-ahead journal file")
		selftest  = flag.Bool("selftest", false, "run a deterministic kill/recover/corrupt round trip on a generated circuit, exit")
	)
	flag.Parse()
	if *selftest {
		if err := runSelftest(); err != nil {
			fatal(err)
		}
		return
	}
	ctx, stop := (&cliutil.Flags{}).SignalContext()
	defer stop()

	// A resume rebuilds circuit and heuristic from the journal; a netlist
	// on the command line is only the fallback for an empty journal.
	var (
		c   *circuit.Circuit
		h   rdfault.Heuristic
		err error
	)
	if *resumeAt == "" || *benchFile != "" || *example {
		c, err = loadCircuit(*benchFile, *example)
		if err != nil {
			fatal(err)
		}
		h, err = parseHeuristic(*heuristic)
		if err != nil {
			fatal(err)
		}
	}

	cfg := fleet.Config{
		SliceMS:         *sliceMS,
		EnumWorkers:     *enum,
		DispatchTimeout: *dispatch,
		FailThreshold:   *failures,
	}
	if *events {
		// Live JSONL as the run happens, not a post-mortem dump: one line
		// per event in the same schema every layer uses.
		cfg.Telemetry = telemetry.NewLog(os.Stderr)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
		if cfg.Telemetry != nil {
			st.SetTelemetry(cfg.Telemetry)
		}
	}
	tr := &fleet.HTTPTransport{}
	cfg.Transport = tr

	switch {
	case *local > 0 && *workers != "":
		fatal(fmt.Errorf("-local and -workers are mutually exclusive"))
	case *local > 0:
		pool, err := fleet.NewLocalPool(*local, serve.Config{
			Workers:         runtime.GOMAXPROCS(0),
			MemoryBudget:    *budget,
			MaxConeInFlight: 2,
		})
		if err != nil {
			fatal(err)
		}
		defer pool.Drain(*drain)
		cfg.Workers = pool.Addrs()
		fmt.Fprintf(os.Stderr, "rdfleet: %d local workers on %s\n", *local, strings.Join(cfg.Workers, " "))
	case *workers != "":
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.Workers = append(cfg.Workers, w)
			}
		}
		// Remote pools ride over real networks; give the breaker more
		// patience than the loopback default.
		cfg.Backoff = retry.Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
		cfg.Probe = retry.Policy{Attempts: 8, Base: 250 * time.Millisecond, Cap: 5 * time.Second}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *standby != "" && *jdir == "" && *resumeAt == "" {
		fatal(fmt.Errorf("-standby requires -journal"))
	}
	var (
		jw          *journal.Writer
		journalPath string
	)
	if *resumeAt != "" {
		journalPath = *resumeAt
	} else if *jdir != "" {
		if err := os.MkdirAll(*jdir, 0o755); err != nil {
			fatal(err)
		}
		journalPath = filepath.Join(*jdir, "rdfleet.journal")
		jw, err = journal.Create(journalPath, 1, nil)
		if err != nil {
			fatal(err)
		}
		defer jw.Close()
		if *standby != "" {
			jw.Ship = fleet.ShipHTTP(*standby, nil)
			jw.OnShipError = func(err error) {
				fmt.Fprintf(os.Stderr, "rdfleet: journal ship: %v\n", err)
			}
		}
		cfg.Journal = jw
	}

	var res *fleet.Result
	if *resumeAt != "" {
		res, err = fleet.Resume(ctx, cfg, *resumeAt)
		if errors.Is(err, fleet.ErrNoJournaledJob) && c != nil {
			// Nothing usable in the journal: start the job fresh, journaled
			// onto the same path so the NEXT crash resumes.
			fmt.Fprintf(os.Stderr, "rdfleet: %v; starting fresh\n", err)
			jw, err = journal.Create(*resumeAt, 1, nil)
			if err != nil {
				fatal(err)
			}
			defer jw.Close()
			cfg.Journal = jw
			res, err = fleet.Run(ctx, cfg, c, h)
		}
	} else {
		res, err = fleet.Run(ctx, cfg, c, h)
	}
	if err != nil {
		// ^C lands here as a graceful stop: the journal already holds every
		// lease, checkpoint and answer (each was fsynced before its side
		// effect), so seal it with a shutdown record and hand the operator
		// the resume line. A second ^C force-exits from the cliutil signal
		// watcher regardless of what this path is doing.
		if cliutil.IsGracefulStop(err) && journalPath != "" {
			if jw != nil {
				jw.Append(journal.KindShutdown, struct {
					Reason string `json:"reason"`
				}{"signal"})
			}
			fmt.Fprintf(os.Stderr, "rdfleet: interrupted; in-flight progress is journaled\n")
			fmt.Fprintf(os.Stderr, "rdfleet: resume with: rdfleet -resume-journal %s -workers <pool>\n", journalPath)
		}
		fatal(err)
	}
	if jw != nil {
		fmt.Fprintf(os.Stderr, "rdfleet: journal %s (%d records, %d bytes)\n",
			journalPath, jw.Seq(), jw.Bytes())
	}
	printResult(res)
}

func loadCircuit(benchFile string, example bool) (*circuit.Circuit, error) {
	switch {
	case example:
		return rdfault.PaperExample(), nil
	case benchFile != "":
		return loader.Load(benchFile)
	}
	return nil, fmt.Errorf("need -bench or -example")
}

func parseHeuristic(name string) (rdfault.Heuristic, error) {
	hs := map[string]rdfault.Heuristic{
		"fus":     rdfault.HeuristicFUS,
		"heu1":    rdfault.Heuristic1,
		"heu2":    rdfault.Heuristic2,
		"inverse": rdfault.Heuristic2Inverse,
		"pin":     rdfault.HeuristicPinOrder,
	}
	h, ok := hs[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("unknown heuristic %q (want fus|heu1|heu2|inverse|pin)", name)
	}
	return h, nil
}

func printResult(res *fleet.Result) {
	fmt.Printf("circuit:   %s (%d cones)\n", res.Circuit, res.Stats.Cones)
	fmt.Printf("heuristic: %s  criterion: %s\n", res.Heuristic, res.Criterion)
	fmt.Printf("paths:     %s\n", res.Total)
	fmt.Printf("selected:  %d\n", res.Selected)
	fmt.Printf("rd:        %s (%s%%)\n", res.RD, rdPercent(res.RD, res.Total))
	fmt.Printf("segments:  %d  pruned: %d\n", res.Segments, res.Pruned)
	fmt.Printf("stats:     dispatches=%d slices=%d failures=%d abandoned=%d zombies=%d restarts=%d quarantines=%d rejoins=%d dead=%d store_hits=%d journal_retired=%d fenced=%d\n",
		res.Stats.Dispatches, res.Stats.Slices, res.Stats.Failures, res.Stats.Abandoned,
		res.Stats.ZombieDiscards, res.Stats.Restarts, res.Stats.Quarantines, res.Stats.Rejoins,
		res.Stats.DeadWorkers, res.Stats.StoreHits, res.Stats.JournalRetired, res.Stats.Fenced)
	fmt.Printf("duration:  %s\n", res.Duration.Round(time.Millisecond))
}

// rdPercent formats 100*rd/total with two decimals, in big-int space.
func rdPercent(rd, total *big.Int) string {
	if total.Sign() == 0 {
		return "0.00"
	}
	scaled := new(big.Int).Mul(rd, big.NewInt(10000))
	scaled.Add(scaled, new(big.Int).Quo(total, big.NewInt(2)))
	scaled.Quo(scaled, total)
	return fmt.Sprintf("%d.%02d", scaled.Int64()/100, scaled.Int64()%100)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdfleet: %v\n", err)
	os.Exit(1)
}
