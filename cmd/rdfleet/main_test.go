package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenSelftest runs the crash-safety round trip: a journaled
// fleet run killed mid-dispatch, resumed from its write-ahead journal
// to the single-process counters, audited for exactly-once answers,
// then recomputed identically from a deliberately corrupted journal
// copy. Every printed value is deterministic.
func TestGoldenSelftest(t *testing.T) {
	golden := goldentest.Golden(t, "selftest")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "rdfleet", main, "-selftest")
	goldentest.Check(t, golden, out)
}
