// Command rdcompare reproduces Table III: the exact-ish leaf-dag
// unfolding approach of Lam et al. (DAC 1993) against the paper's
// Heuristic 2, reporting RD percentages and running times side by side
// with the published numbers.
//
// Usage:
//
//	rdcompare -suite mcnc              # generated MCNC-analogue covers
//	rdcompare -pla file.pla            # a single Espresso cover
//	rdcompare -speedup                 # the §VI c499 speed-up experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rdfault"
	"rdfault/internal/cliutil"
	"rdfault/internal/exp"
	"rdfault/internal/gen"
)

func main() {
	var (
		suite   = flag.String("suite", "", "run a generated suite: 'mcnc'")
		plaFile = flag.String("pla", "", "compare on a single .pla cover")
		speedup = flag.Bool("speedup", false, "run the growing-size speed-up experiment")
		nodeCap = flag.Int("nodecap", 400_000, "leaf-dag node cap (unfolding aborts beyond it)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel enumeration goroutines for Heuristic 2")
	)
	rf := cliutil.Register()
	flag.Parse()
	ctx, stop := rf.SignalContext()
	defer stop()

	switch {
	case *speedup:
		rf.WarnCheckpointUnused("rdcompare", "the speed-up experiment is time-measured, not resumable")
		if _, err := exp.RunSpeedup(os.Stdout, []int{4, 6, 8, 10, 12, 14, 20}, *nodeCap); err != nil {
			fatal(err)
		}
	case *suite == "mcnc":
		rf.WarnCheckpointUnused("rdcompare", "suite mode quarantines over-budget circuits instead")
		rows, quarantined, err := exp.RunMCNC(gen.MCNCSuite(), exp.SuiteOptions{
			Workers:           *workers,
			PerCircuitTimeout: rf.Timeout,
			Context:           ctx,
		})
		if err != nil && !cliutil.IsGracefulStop(err) {
			fatal(err)
		}
		exp.FprintTableIII(os.Stdout, rows)
		exp.FprintQuarantine(os.Stdout, quarantined)
		fmt.Printf("\naverage RD shortfall of Heuristic 2 vs [1]: %.2f%% (paper: 2.05%%)\n",
			exp.QualityGap(rows))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdcompare: suite canceled; the table covers the finished circuits")
		}
	case *plaFile != "":
		f, err := os.Open(*plaFile)
		if err != nil {
			fatal(err)
		}
		cv, err := rdfault.ParsePLA(*plaFile, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		c, err := rdfault.Synthesize(cv, rdfault.SynthOptions{})
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		lam, err := rdfault.IdentifyByUnfolding(c, rdfault.UnfoldingOptions{NodeCap: *nodeCap})
		if err != nil {
			fatal(err)
		}
		lamT := time.Since(t0)
		t0 = time.Now()
		opt := rdfault.Options{Workers: *workers}
		if err := rf.Apply(ctx, &opt); err != nil {
			fatal(err)
		}
		rep, err := rdfault.Identify(c, rdfault.Heuristic2, opt)
		if err != nil {
			if cliutil.IsGracefulStop(err) {
				fmt.Fprintln(os.Stderr, "rdcompare: interrupted before enumeration started (no partial state to save)")
				return
			}
			fatal(err)
		}
		h2T := time.Since(t0)
		fmt.Printf("%s: %v logical paths\n", c.Name(), rep.TotalLogicalPaths)
		fmt.Printf("  approach of [1]: %6.2f%% RD in %v\n", lam.RDPercent(), lamT.Round(time.Millisecond))
		fmt.Printf("  Heuristic 2:     %6.2f%% RD in %v\n", rep.RDPercent(), h2T.Round(time.Millisecond))
		rf.HandleInterrupted("rdcompare", rep.Final)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdcompare:", err)
	os.Exit(1)
}
