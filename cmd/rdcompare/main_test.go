package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenPLA: the Table III comparison on a tiny Espresso cover
// (running times normalize out; the RD percentages must not move). The
// tool echoes the file path it was given, so the fixture is passed
// relative to the package directory to keep the snapshot portable.
func TestGoldenPLA(t *testing.T) {
	goldentest.Fixture(t, "tiny.pla") // existence check
	golden := goldentest.Golden(t, "tiny")
	out := goldentest.Run(t, "rdcompare", main, "-pla", "testdata/tiny.pla", "-workers", "1")
	goldentest.Check(t, golden, out)
}
