// Command atpg runs the complete delay-test flow the paper's technique
// enables:
//
//  1. identify robust dependent paths (never tested),
//  2. select the paths to test (threshold or per-lead strategy, §VI),
//  3. generate a compact robust two-pattern test set with fault dropping,
//  4. report coverage and propose DFT control points for the remainder.
//
// Usage:
//
//	atpg -bench file.bench [-strategy threshold|perlead] [-frac 0.7] [-k 2]
//	atpg -example
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rdfault"
	"rdfault/internal/cliutil"
	"rdfault/internal/loader"
	"rdfault/internal/tgen"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		example   = flag.Bool("example", false, "use the paper's example circuit")
		strategy  = flag.String("strategy", "threshold", "path selection: threshold|perlead")
		frac      = flag.Float64("frac", 0.7, "threshold as a fraction of the critical delay")
		k         = flag.Int("k", 2, "paths per lead for the perlead strategy")
		limit     = flag.Int("limit", 20000, "cap on selected paths")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel RD-identification goroutines")
		emit      = flag.Bool("emit", false, "print the generated test vectors")
		outTests  = flag.String("o", "", "write the test set to this file (tgen.WriteTests format)")
	)
	rf := cliutil.Register()
	flag.Parse()
	ctx, stop := rf.SignalContext()
	defer stop()
	rf.WarnCheckpointUnused("atpg", "a partial RD keep-map is unsound; interrupted filtering falls back to no filtering")

	var c *rdfault.Circuit
	switch {
	case *example:
		c = rdfault.PaperExample()
	case *benchFile != "":
		parsed, err := loader.Load(*benchFile)
		if err != nil {
			fatal(err)
		}
		c = parsed
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("circuit %s: %s\n", c.Name(), c.Stats())
	fmt.Printf("logical paths: %v\n", rdfault.CountPaths(c))

	// 1+2: RD identification and selection. The RD filter is only sound
	// with a complete keep-map, so when -timeout (or ^C) interrupts it we
	// degrade to an unfiltered selection rather than silently over-filter.
	d := rdfault.UnitDelays(c)
	t0 := time.Now()
	sel, err := rdfault.NewSelector(c, d, rdfault.SelectOptions{
		Workers: *workers, Context: ctx, Deadline: rf.Timeout,
	})
	if err != nil {
		if !cliutil.IsGracefulStop(err) {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "atpg: RD identification interrupted; continuing WITHOUT the RD filter (selection may include untestable paths)")
		sel, err = rdfault.NewSelector(c, d, rdfault.SelectOptions{NoRDFilter: true})
		if err != nil {
			fatal(err)
		}
	}
	var chosen []rdfault.Logical
	switch *strategy {
	case "threshold":
		th := sel.Analysis().CriticalDelay() * *frac
		s := sel.ByThreshold(th, rdfault.SelectOptions{Limit: *limit})
		fmt.Printf("threshold %.2f (%.0f%% of critical %.2f): %s\n",
			th, *frac*100, sel.Analysis().CriticalDelay(), s.Summary())
		chosen = s.Selected
	case "perlead":
		s := sel.PerLead(*k, rdfault.SelectOptions{Limit: *limit})
		fmt.Printf("per-lead k=%d: %s\n", *k, s.Summary())
		chosen = s.Selected
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	fmt.Printf("selection took %v (non-RD paths: %d of %v)\n",
		time.Since(t0).Round(time.Millisecond), sel.NonRD(), sel.TotalLogicalPaths())

	// 3: compact robust test set.
	gn := rdfault.NewGenerator(c)
	t0 = time.Now()
	tests, cov := rdfault.CompactTests(c, chosen, gn, rdfault.CompactOptions{AllowNonRobust: true})
	before := len(tests)
	tests = rdfault.ReduceTests(c, tests, chosen, true)
	fmt.Printf("generated %d tests (%d after static reduction) covering %d/%d targets (%.2f%%; %d robust, %d non-robust) in %v\n",
		before, len(tests), cov.Detected(), cov.Targets, cov.Percent(), cov.RobustDetected,
		cov.NonRobustDetected, time.Since(t0).Round(time.Millisecond))
	if cov.Aborted > 0 {
		fmt.Printf("  %d targets aborted (backtrack limit)\n", cov.Aborted)
	}

	// 4: DFT proposals for uncovered targets that are not even
	// non-robustly testable.
	simulator := rdfault.NewFaultSimulator(c)
	detected := map[string]bool{}
	for _, tt := range tests {
		for _, lp := range simulator.Detects(tt).Robust {
			detected[lp.Key()] = true
		}
	}
	var untestable []rdfault.Logical
	for _, lp := range chosen {
		if detected[lp.Key()] {
			continue
		}
		if gn.Classify(lp) == rdfault.FuncSensitizable {
			untestable = append(untestable, lp)
		}
	}
	if len(untestable) > 0 {
		props := rdfault.ProposeControlPoints(c, untestable)
		fmt.Printf("%d selected paths need DFT; %d control points proposed:\n",
			len(untestable), len(props))
		for i, p := range props {
			if i == 8 {
				fmt.Printf("  ... and %d more\n", len(props)-8)
				break
			}
			fmt.Printf("  %s\n", p.String(c))
		}
	} else {
		fmt.Println("no DFT modifications needed for the selected set")
	}

	if *emit {
		fmt.Println("\ntest vectors (v1 -> v2, inputs in declaration order):")
		for i, tt := range tests {
			fmt.Printf("  t%-4d %s -> %s\n", i, bits(tt.V1), bits(tt.V2))
		}
	}
	if *outTests != "" {
		f, err := os.Create(*outTests)
		if err != nil {
			fatal(err)
		}
		if err := tgen.WriteTests(f, c, tests); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *outTests)
	}
}

func bits(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
