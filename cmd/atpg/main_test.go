package main

import (
	"os"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenExample: the full flow (identify, select, generate, grade)
// on the paper example, plus the emitted test-set file.
func TestGoldenExample(t *testing.T) {
	golden := goldentest.Golden(t, "example")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "atpg", main, "-example", "-workers", "1", "-o", "tests.txt")
	goldentest.Check(t, golden, out)
	b, err := os.ReadFile("tests.txt")
	if err != nil {
		t.Fatalf("-o wrote no test set: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("-o wrote an empty test set")
	}
}
