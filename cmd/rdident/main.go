// Command rdident identifies robust dependent path delay faults in a
// circuit, printing Table I / Table II style rows.
//
// Usage:
//
//	rdident -bench file.bench [-heuristic heu2] [-limit N]
//	rdident -suite iscas      # the generated ISCAS85-analogue suite
//	rdident -example          # the paper's running example circuit
//
// Long runs are interruptible: -timeout bounds the wall clock (per
// circuit in suite mode), ^C cancels gracefully, and -checkpoint/-resume
// save and continue an interrupted enumeration with bit-identical final
// counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"rdfault"
	"rdfault/internal/cliutil"
	"rdfault/internal/exp"
	"rdfault/internal/gen"
	"rdfault/internal/loader"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		suite     = flag.String("suite", "", "run a generated suite: 'iscas'")
		example   = flag.Bool("example", false, "run on the paper's example circuit")
		heuristic = flag.String("heuristic", "all", "fus|heu1|heu2|inverse|pin|all")
		limit     = flag.Int64("limit", 0, "abort after this many selected paths (0 = unlimited)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel enumeration goroutines (counts are identical for any value)")
		cert      = flag.Bool("cert", false, "print the prime-segment RD certificate (Heuristic 2 sort)")
	)
	rf := cliutil.Register()
	pf := cliutil.RegisterProfile()
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	ctx, stop := rf.SignalContext()
	defer stop()

	switch {
	case *suite == "iscas":
		rf.WarnCheckpointUnused("rdident", "suite mode quarantines over-budget circuits instead")
		rows, quarantined, err := exp.RunISCAS(gen.ISCAS85Suite(), exp.SuiteOptions{
			Workers:           *workers,
			PerCircuitTimeout: rf.Timeout,
			Context:           ctx,
		})
		if err != nil && !cliutil.IsGracefulStop(err) {
			fatal(err)
		}
		exp.FprintTableI(os.Stdout, rows)
		fmt.Println()
		exp.FprintTableII(os.Stdout, rows)
		exp.FprintQuarantine(os.Stdout, quarantined)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdident: suite canceled; tables above cover the finished circuits")
		}
		return
	case *suite != "":
		fatal(fmt.Errorf("unknown suite %q (want 'iscas')", *suite))
	}

	var c *rdfault.Circuit
	switch {
	case *example:
		c = rdfault.PaperExample()
	case *benchFile != "":
		parsed, err := loader.Load(*benchFile)
		if err != nil {
			fatal(err)
		}
		c = parsed
	default:
		flag.Usage()
		os.Exit(2)
	}

	hs := map[string]rdfault.Heuristic{
		"fus":     rdfault.HeuristicFUS,
		"heu1":    rdfault.Heuristic1,
		"heu2":    rdfault.Heuristic2,
		"inverse": rdfault.Heuristic2Inverse,
		"pin":     rdfault.HeuristicPinOrder,
	}
	var order []string
	if *heuristic == "all" {
		order = []string{"fus", "heu1", "heu2", "inverse"}
	} else {
		if _, ok := hs[strings.ToLower(*heuristic)]; !ok {
			fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
		}
		order = []string{strings.ToLower(*heuristic)}
	}
	if rf.ResumePath != "" && len(order) != 1 {
		fatal(fmt.Errorf("-resume needs a single -heuristic (a checkpoint is bound to one criterion and sort)"))
	}
	for _, name := range order {
		opt := rdfault.Options{Limit: *limit, Workers: *workers}
		if err := rf.Apply(ctx, &opt); err != nil {
			fatal(err)
		}
		rep, err := rdfault.Identify(c, hs[name], opt)
		if err != nil {
			if cliutil.IsGracefulStop(err) {
				fmt.Fprintf(os.Stderr, "rdident: %s interrupted before enumeration started (no partial state to save)\n", name)
				return
			}
			fatal(err)
		}
		fmt.Println(rep)
		if !rep.Complete {
			fmt.Printf("  (selected is a lower bound: >=%d paths survive; RD unknown)\n", rep.Selected)
		}
		if rf.HandleInterrupted("rdident", rep.Final) {
			return
		}
	}
	if *cert {
		s2, _, _, err := rdfault.Heuristic2Sort(c)
		if err != nil {
			fatal(err)
		}
		certificate, err := rdfault.CollectRDSegments(c, s2, rdfault.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nRD certificate: %d prime segments cover %v RD paths\n",
			len(certificate.Segments), certificate.CoveredTotal)
		for i, seg := range certificate.Segments {
			if i == 20 {
				fmt.Printf("  ... and %d more segments\n", len(certificate.Segments)-20)
				break
			}
			fmt.Printf("  %s\n", seg.String(c))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdident:", err)
	os.Exit(1)
}
