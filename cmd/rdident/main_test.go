package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenExample: the paper's running example through every
// heuristic; the Table I/II row format is the tool's contract.
func TestGoldenExample(t *testing.T) {
	golden := goldentest.Golden(t, "example")
	out := goldentest.Run(t, "rdident", main, "-example", "-workers", "1")
	goldentest.Check(t, golden, out)
}

// TestGoldenExampleWithProfiles: the golden exemption for -cpuprofile
// and -memprofile — the flags must leave stdout byte-identical to the
// unprofiled run (same golden file) while writing non-empty pprof files;
// profiler chatter is stderr-only.
func TestGoldenExampleWithProfiles(t *testing.T) {
	golden := goldentest.Golden(t, "example")
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := goldentest.Run(t, "rdident", main, "-example", "-workers", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	goldentest.Check(t, golden, out)
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
