package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenExample: the paper's running example through every
// heuristic; the Table I/II row format is the tool's contract.
func TestGoldenExample(t *testing.T) {
	golden := goldentest.Golden(t, "example")
	out := goldentest.Run(t, "rdident", main, "-example", "-workers", "1")
	goldentest.Check(t, golden, out)
}
