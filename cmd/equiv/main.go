// Command equiv checks two netlists for functional equivalence, twice
// over: canonically with BDDs and independently with a SAT miter. The
// two verdicts must agree; disagreement would indicate a bug in one of
// the engines and is reported loudly.
//
// Usage:
//
//	equiv a.bench b.v
//
// Inputs are matched positionally (declaration order), outputs likewise.
package main

import (
	"fmt"
	"os"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/loader"
	"rdfault/internal/satsolver"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: equiv <netlist-a> <netlist-b>")
		os.Exit(2)
	}
	a, err := loader.Load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	b, err := loader.Load(os.Args[2])
	if err != nil {
		fatal(err)
	}
	byBDD, err := bdd.Equivalent(a, b)
	if err != nil {
		fatal(err)
	}
	bySAT, err := satEquivalent(a, b)
	if err != nil {
		fatal(err)
	}
	if byBDD != bySAT {
		fmt.Fprintf(os.Stderr, "equiv: ENGINE DISAGREEMENT: bdd=%v sat=%v\n", byBDD, bySAT)
		os.Exit(3)
	}
	if byBDD {
		fmt.Println("EQUIVALENT")
		return
	}
	fmt.Println("NOT EQUIVALENT")
	os.Exit(1)
}

// satEquivalent builds a miter over both circuits and asks the SAT solver
// for a distinguishing input.
func satEquivalent(a, b *circuit.Circuit) (bool, error) {
	if len(a.Inputs()) != len(b.Inputs()) || len(a.Outputs()) != len(b.Outputs()) {
		return false, fmt.Errorf("interface mismatch")
	}
	s := satsolver.New()
	va := satsolver.AddCircuit(s, a)
	vb := satsolver.AddCircuit(s, b)
	for i := range a.Inputs() {
		p, q := va.Var[a.Inputs()[i]], vb.Var[b.Inputs()[i]]
		s.AddClause(satsolver.MkLit(p, true), satsolver.MkLit(q, false))
		s.AddClause(satsolver.MkLit(p, false), satsolver.MkLit(q, true))
	}
	// diff = OR over outputs of (oa XOR ob); assert diff.
	var diffs []satsolver.Lit
	for i := range a.Outputs() {
		oa, ob := va.Var[a.Outputs()[i]], vb.Var[b.Outputs()[i]]
		d := s.NewVar()
		// d -> (oa != ob)
		s.AddClause(satsolver.MkLit(d, true), satsolver.MkLit(oa, true), satsolver.MkLit(ob, true))
		s.AddClause(satsolver.MkLit(d, true), satsolver.MkLit(oa, false), satsolver.MkLit(ob, false))
		diffs = append(diffs, satsolver.MkLit(d, false))
	}
	s.AddClause(diffs...)
	return !s.Solve(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "equiv:", err)
	os.Exit(1)
}
