package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenEquivalent: a netlist is equivalent to itself, and the twin
// BDD/SAT engines say so in one word.
func TestGoldenEquivalent(t *testing.T) {
	bench := goldentest.Fixture(t, "paper-example.bench")
	golden := goldentest.Golden(t, "equivalent")
	out := goldentest.Run(t, "equiv", main, bench, bench)
	goldentest.Check(t, golden, out)
}
