// Command rdeco is the ECO-workload driver: RD identification served
// through the content-addressed result store. The first run of a
// circuit populates the store; any later run of the same circuit —
// byte-identical or merely isomorphic (relabeled) — is a pure store
// hit with zero enumeration work, and a revised circuit is identified
// incrementally, re-enumerating only the output cones the revision
// touched. Results persist on disk, so the warm path survives process
// restarts and is shared by every tool pointing at the same -store
// directory (rdeco, rdserved, rdfleet).
//
// Usage:
//
//	rdeco -store /var/lib/rdstore -bench chip.bench            # cold, populates
//	rdeco -store /var/lib/rdstore -bench chip_v2.bench         # warm, delta
//	rdeco -store /var/lib/rdstore -example -edit 2 -seed 7     # demo: k-cone ECO
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rdfault"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/loader"
	"rdfault/internal/store"
	"rdfault/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "rdeco: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rdeco", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		storeDir  = fs.String("store", "", "result store directory (required; created if absent)")
		benchFile = fs.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		example   = fs.Bool("example", false, "run on the paper's example circuit")
		heuristic = fs.String("heuristic", "heu1", "fus|heu1|heu2|inverse|pin")
		workers   = fs.Int("workers", 0, "enumeration goroutines per cone (0 = serial)")
		edit      = fs.Int("edit", 0, "demo mode: also run a synthetic ECO revision editing k output cones")
		seed      = fs.Int64("seed", 1, "seed for -edit's mutation draw")
		events    = fs.Bool("events", false, "stream store events (hit/miss/delta/corrupt) to stderr as JSONL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		fs.Usage()
		return fmt.Errorf("need -store")
	}
	c, err := loadCircuit(*benchFile, *example)
	if err != nil {
		return err
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	if *events {
		st.SetTelemetry(telemetry.NewLog(stderr))
	}
	opt := store.Options{Heuristic: h, Workers: *workers}

	res, err := store.IdentifyThrough(st, c, opt)
	if err != nil {
		return err
	}
	printResult(stdout, res)

	if *edit > 0 {
		revised, edits, err := store.MutateKCones(c, *edit, *seed)
		if err != nil {
			return err
		}
		var desc []string
		for _, e := range edits {
			desc = append(desc, fmt.Sprintf("cone %d: %v", e.ConeIdx, e.Kind))
		}
		fmt.Fprintf(stdout, "\neco edits:  %s\n", strings.Join(desc, ", "))
		eco, err := store.IdentifyThrough(st, revised, opt)
		if err != nil {
			return err
		}
		printResult(stdout, eco)
	}
	return nil
}

func printResult(w io.Writer, res *store.Result) {
	fmt.Fprintf(w, "circuit:    %s (%d cones)\n", res.Circuit, res.Cones)
	fmt.Fprintf(w, "heuristic:  %s  criterion: %s\n", res.Heuristic, res.Criterion)
	fmt.Fprintf(w, "outcome:    %s (reused %d cones, re-identified %d, %d segments walked)\n",
		res.Outcome, res.ReusedCones, res.FreshCones, res.EnumeratedSegments)
	if res.CorruptEntries > 0 {
		fmt.Fprintf(w, "corrupt:    %d store entries failed validation and were recomputed\n", res.CorruptEntries)
	}
	fmt.Fprintf(w, "paths:      %s\n", res.TotalStr)
	fmt.Fprintf(w, "selected:   %d\n", res.Selected)
	fmt.Fprintf(w, "rd:         %s (%.2f%%)\n", res.RDStr, res.RDPercent())
	fmt.Fprintf(w, "segments:   %d  pruned: %d\n", res.Segments, res.Pruned)
	fmt.Fprintf(w, "duration:   %s\n", res.Duration.Round(time.Millisecond))
}

func loadCircuit(benchFile string, example bool) (*circuit.Circuit, error) {
	switch {
	case example:
		return rdfault.PaperExample(), nil
	case benchFile != "":
		return loader.Load(benchFile)
	}
	return nil, fmt.Errorf("need -bench or -example")
}

func parseHeuristic(name string) (core.Heuristic, error) {
	hs := map[string]core.Heuristic{
		"fus":     core.HeuristicFUS,
		"heu1":    core.Heuristic1,
		"heu2":    core.Heuristic2,
		"inverse": core.Heuristic2Inverse,
		"pin":     core.HeuristicPinOrder,
	}
	h, ok := hs[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("unknown heuristic %q (want fus|heu1|heu2|inverse|pin)", name)
	}
	return h, nil
}
