package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runArgs(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run %v: %v\n%s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

// Cold run populates, identical rerun is a pure hit, and the -edit demo
// reports a delta — the full ECO workload through the CLI entry point.
func TestRdecoColdWarmAndEdit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rdstore")

	cold, _ := runArgs(t, "-store", dir, "-example", "-heuristic", "heu1")
	if !strings.Contains(cold, "outcome:    miss") {
		t.Fatalf("cold run not a miss:\n%s", cold)
	}

	warm, events := runArgs(t, "-store", dir, "-example", "-heuristic", "heu1", "-events")
	if !strings.Contains(warm, "outcome:    hit (reused 1 cones, re-identified 0, 0 segments walked)") {
		t.Fatalf("warm run not a pure hit:\n%s", warm)
	}
	if !strings.Contains(events, `"store.hit"`) {
		t.Fatalf("no store.hit event on stderr:\n%s", events)
	}
	// Counter lines must be verbatim identical between cold and warm.
	for _, prefix := range []string{"paths:", "selected:", "rd:", "segments:"} {
		if lineWith(cold, prefix) != lineWith(warm, prefix) {
			t.Fatalf("%s diverges between cold and warm:\n%s\n%s", prefix, cold, warm)
		}
	}

	eco, _ := runArgs(t, "-store", dir, "-example", "-edit", "1", "-seed", "3", "-heuristic", "heu1")
	if !strings.Contains(eco, "eco edits:") {
		t.Fatalf("edit demo printed no edits:\n%s", eco)
	}
}

// Missing -store or circuit flags fail typed instead of panicking.
func TestRdecoUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-example"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("missing -store: %v", err)
	}
	if err := run([]string{"-store", t.TempDir()}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-bench or -example") {
		t.Fatalf("missing circuit: %v", err)
	}
	if err := run([]string{"-store", t.TempDir(), "-example", "-heuristic", "bogus"}, &out, &errb); err == nil {
		t.Fatal("bogus heuristic accepted")
	}
}

func lineWith(s, prefix string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	return ""
}
