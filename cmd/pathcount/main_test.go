package main

import (
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenBench: exact path statistics for the paper example netlist.
func TestGoldenBench(t *testing.T) {
	bench := goldentest.Fixture(t, "paper-example.bench")
	golden := goldentest.Golden(t, "paper-example")
	out := goldentest.Run(t, "pathcount", main, "-bench", bench)
	goldentest.Check(t, golden, out)
}
