package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenBench: exact path statistics for the paper example netlist.
func TestGoldenBench(t *testing.T) {
	bench := goldentest.Fixture(t, "paper-example.bench")
	golden := goldentest.Golden(t, "paper-example")
	out := goldentest.Run(t, "pathcount", main, "-bench", bench)
	goldentest.Check(t, golden, out)
}

// TestGoldenWithProfiles: the golden exemption for -cpuprofile and
// -memprofile — profiling must not perturb stdout (the same golden file
// must match) while the profile files land on disk non-empty.
func TestGoldenWithProfiles(t *testing.T) {
	bench := goldentest.Fixture(t, "paper-example.bench")
	golden := goldentest.Golden(t, "paper-example")
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := goldentest.Run(t, "pathcount", main, "-bench", bench,
		"-cpuprofile", cpu, "-memprofile", mem)
	goldentest.Check(t, golden, out)
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
