// Command pathcount reports exact path statistics for a circuit: total
// physical/logical paths, per-output-cone counts, and the heaviest leads.
// Counting is linear-time and arbitrary precision, so it handles
// c6288-class circuits whose path counts exceed 10^20.
//
// Usage:
//
//	pathcount -bench file.bench
//	pathcount -suite iscas     # generated analogue suite + the multiplier
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"runtime"
	"sort"
	"sync"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/cliutil"
	"rdfault/internal/gen"
	"rdfault/internal/loader"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		suite     = flag.String("suite", "", "report on a generated suite: 'iscas'")
		topLeads  = flag.Int("top", 5, "number of heaviest leads to list")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "circuits counted concurrently in suite mode")
	)
	rf := cliutil.Register()
	pf := cliutil.RegisterProfile()
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	rf.WarnCheckpointUnused("pathcount", "counting is linear-time; -timeout skips not-yet-started circuits")
	ctx, stop := rf.SignalContext()
	defer stop()
	if rf.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rf.Timeout)
		defer cancel()
	}

	switch {
	case *suite == "iscas":
		named := gen.ISCAS85Suite()
		named = append(named, gen.Named{Paper: "c6288", C: gen.C6288Analogue()})
		reportSuite(ctx, named, *topLeads, *workers)
		return
	case *suite != "":
		fatal(fmt.Errorf("unknown suite %q", *suite))
	case *benchFile == "":
		flag.Usage()
		os.Exit(2)
	}
	c, err := loader.Load(*benchFile)
	if err != nil {
		fatal(err)
	}
	report(os.Stdout, c, c.Name(), *topLeads)
}

// reportSuite counts each circuit concurrently (counting is read-only and
// per-circuit independent) but prints the reports in suite order, so the
// output is identical for any worker count. When ctx expires (-timeout or
// ^C) circuits not yet started are skipped and listed at the end; partial
// output is never printed.
func reportSuite(ctx context.Context, named []gen.Named, top, workers int) {
	if workers < 1 {
		workers = 1
	}
	bufs := make([]bytes.Buffer, len(named))
	skipped := make([]bool, len(named))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, nc := range named {
		wg.Add(1)
		go func(i int, nc gen.Named) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				skipped[i] = true
				return
			}
			report(&bufs[i], nc.C, nc.Paper, top)
		}(i, nc)
	}
	wg.Wait()
	for i := range bufs {
		io.Copy(os.Stdout, &bufs[i])
	}
	for i, s := range skipped {
		if s {
			fmt.Fprintf(os.Stderr, "pathcount: %s skipped (%v)\n", named[i].Paper, context.Cause(ctx))
		}
	}
}

func report(w io.Writer, c *circuit.Circuit, label string, top int) {
	ct := analysis.For(c).Counts()
	fmt.Fprintf(w, "%-8s %s\n", label, c.Stats())
	fmt.Fprintf(w, "         physical paths: %v   logical paths: %v\n", ct.Physical(), ct.Logical())
	// Per-cone counts.
	type coneCount struct {
		name  string
		count *big.Int
	}
	cones := make([]coneCount, 0, len(c.Outputs()))
	for _, po := range c.Outputs() {
		cones = append(cones, coneCount{c.Gate(po).Name, ct.Up(po)})
	}
	sort.Slice(cones, func(i, j int) bool { return cones[i].count.Cmp(cones[j].count) > 0 })
	if len(cones) > 3 {
		cones = cones[:3]
	}
	for _, cc := range cones {
		fmt.Fprintf(w, "         cone %-12s %v paths\n", cc.name, cc.count)
	}
	// Heaviest leads (the |LP_c(l)| measure of Heuristic 1).
	type leadCount struct {
		lead  circuit.Lead
		count *big.Int
	}
	var leads []leadCount
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		for pin := range c.Fanin(g) {
			l := circuit.Lead{To: g, Pin: pin}
			leads = append(leads, leadCount{l, ct.ThroughLead(l)})
		}
	}
	sort.Slice(leads, func(i, j int) bool { return leads[i].count.Cmp(leads[j].count) > 0 })
	if len(leads) > top {
		leads = leads[:top]
	}
	for _, lc := range leads {
		fmt.Fprintf(w, "         lead %s->%s pin%d: %v paths\n",
			c.Gate(c.Source(lc.lead)).Name, c.Gate(lc.lead.To).Name, lc.lead.Pin, lc.count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathcount:", err)
	os.Exit(1)
}
