// Command pathcount reports exact path statistics for a circuit: total
// physical/logical paths, per-output-cone counts, and the heaviest leads.
// Counting is linear-time and arbitrary precision, so it handles
// c6288-class circuits whose path counts exceed 10^20.
//
// Usage:
//
//	pathcount -bench file.bench
//	pathcount -suite iscas     # generated analogue suite + the multiplier
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"sort"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/loader"
	"rdfault/internal/paths"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "read circuit from a netlist file (.bench, .v or .pla)")
		suite     = flag.String("suite", "", "report on a generated suite: 'iscas'")
		topLeads  = flag.Int("top", 5, "number of heaviest leads to list")
	)
	flag.Parse()

	switch {
	case *suite == "iscas":
		for _, nc := range gen.ISCAS85Suite() {
			report(nc.C, nc.Paper, *topLeads)
		}
		report(gen.C6288Analogue(), "c6288", *topLeads)
		return
	case *suite != "":
		fatal(fmt.Errorf("unknown suite %q", *suite))
	case *benchFile == "":
		flag.Usage()
		os.Exit(2)
	}
	c, err := loader.Load(*benchFile)
	if err != nil {
		fatal(err)
	}
	report(c, c.Name(), *topLeads)
}

func report(c *circuit.Circuit, label string, top int) {
	ct := paths.NewCounts(c)
	fmt.Printf("%-8s %s\n", label, c.Stats())
	fmt.Printf("         physical paths: %v   logical paths: %v\n", ct.Physical(), ct.Logical())
	for _, po := range c.Outputs() {
		_ = po
	}
	// Per-cone counts.
	type coneCount struct {
		name  string
		count *big.Int
	}
	cones := make([]coneCount, 0, len(c.Outputs()))
	for _, po := range c.Outputs() {
		cones = append(cones, coneCount{c.Gate(po).Name, ct.Up(po)})
	}
	sort.Slice(cones, func(i, j int) bool { return cones[i].count.Cmp(cones[j].count) > 0 })
	if len(cones) > 3 {
		cones = cones[:3]
	}
	for _, cc := range cones {
		fmt.Printf("         cone %-12s %v paths\n", cc.name, cc.count)
	}
	// Heaviest leads (the |LP_c(l)| measure of Heuristic 1).
	type leadCount struct {
		lead  circuit.Lead
		count *big.Int
	}
	var leads []leadCount
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		for pin := range c.Fanin(g) {
			l := circuit.Lead{To: g, Pin: pin}
			leads = append(leads, leadCount{l, ct.ThroughLead(l)})
		}
	}
	sort.Slice(leads, func(i, j int) bool { return leads[i].count.Cmp(leads[j].count) > 0 })
	if len(leads) > top {
		leads = leads[:top]
	}
	for _, lc := range leads {
		fmt.Printf("         lead %s->%s pin%d: %v paths\n",
			c.Gate(c.Source(lc.lead)).Name, c.Gate(lc.lead.To).Name, lc.lead.Pin, lc.count)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathcount:", err)
	os.Exit(1)
}
