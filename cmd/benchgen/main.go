// Command benchgen materializes the generated benchmark suites as .bench
// and .pla files, so experiments can be rerun with external tools or the
// circuits inspected directly.
//
// Usage:
//
//	benchgen -out ./benchmarks [-multiplier]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/pla"
	"rdfault/internal/verilog"
)

func main() {
	var (
		out        = flag.String("out", "benchmarks", "output directory")
		multiplier = flag.Bool("multiplier", false, "also emit the 16x16 multiplier (c6288 analogue, ~3k gates)")
		emitV      = flag.Bool("verilog", false, "also emit structural Verilog (.v) next to each .bench")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, nc := range gen.ISCAS85Suite() {
		path := filepath.Join(*out, nc.Paper+"-like.bench")
		if err := writeBench(path, nc.C); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", path, nc.C.Stats())
		if *emitV {
			vpath := filepath.Join(*out, nc.Paper+"-like.v")
			if err := writeVerilog(vpath, nc.C); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", vpath)
		}
	}
	if *multiplier {
		c := gen.C6288Analogue()
		path := filepath.Join(*out, "c6288-like.bench")
		if err := writeBench(path, c); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", path, c.Stats())
	}
	for _, nc := range gen.MCNCSuite() {
		path := filepath.Join(*out, nc.Paper+"-like.pla")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := pla.Write(f, nc.Cover); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d cubes, %d in, %d out)\n",
			path, len(nc.Cover.Cubes), nc.Cover.NumIn, nc.Cover.NumOut)
	}
	c := gen.PaperExample()
	path := filepath.Join(*out, "paper-example.bench")
	if err := writeBench(path, c); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s)\n", path, c.Stats())
}

func writeVerilog(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := verilog.Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBench(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := circuit.WriteBench(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
