package main

import (
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenSuite: the emitted suite listing (names, sizes, stats) is
// the generated benchmarks' fingerprint; it must not drift silently.
func TestGoldenSuite(t *testing.T) {
	golden := goldentest.Golden(t, "suite")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "benchgen", main, "-out", "bg")
	goldentest.Check(t, golden, out)
	for _, f := range []string{"paper-example.bench", "c432-like.bench", "bw-like.pla"} {
		if _, err := os.Stat(filepath.Join("bg", f)); err != nil {
			t.Errorf("emitted suite missing %s: %v", f, err)
		}
	}
}
