package main

import (
	"strings"
	"testing"

	"rdfault/internal/benchjson"
	"rdfault/internal/cliutil/goldentest"
)

func row(circuit string, speedup, pps float64) benchjson.IdentifyRow {
	return benchjson.IdentifyRow{Circuit: circuit, Speedup: speedup, PathsPerSec: pps}
}

// TestCompareGate: the regression arithmetic — within-tolerance drift
// passes, beyond-tolerance drift fails, missing circuits fail, metrics
// the baseline lacks are skipped.
func TestCompareGate(t *testing.T) {
	base := []benchjson.IdentifyRow{row("c432", 2.0, 1e6), row("c880", 3.0, 2e6)}

	t.Run("clean", func(t *testing.T) {
		cur := []benchjson.IdentifyRow{row("c432", 2.1, 1.1e6), row("c880", 2.9, 1.9e6)}
		if n := compare(&strings.Builder{}, base, cur, 0.85); n != 0 {
			t.Fatalf("clean run reported %d regressions", n)
		}
	})
	t.Run("speedup-regressed", func(t *testing.T) {
		cur := []benchjson.IdentifyRow{row("c432", 1.5, 1e6), row("c880", 3.0, 2e6)}
		var out strings.Builder
		if n := compare(&out, base, cur, 0.85); n != 1 {
			t.Fatalf("want 1 regression, got %d\n%s", n, out.String())
		}
		if !strings.Contains(out.String(), "REGRESSED") {
			t.Fatalf("regression not flagged in output:\n%s", out.String())
		}
	})
	t.Run("pps-regressed", func(t *testing.T) {
		cur := []benchjson.IdentifyRow{row("c432", 2.0, 0.5e6), row("c880", 3.0, 2e6)}
		if n := compare(&strings.Builder{}, base, cur, 0.85); n != 1 {
			t.Fatalf("want 1 regression, got %d", n)
		}
	})
	t.Run("missing-circuit", func(t *testing.T) {
		cur := []benchjson.IdentifyRow{row("c432", 2.0, 1e6)}
		if n := compare(&strings.Builder{}, base, cur, 0.85); n != 1 {
			t.Fatalf("dropped circuit must gate: got %d", n)
		}
	})
	t.Run("legacy-baseline-skips-pps", func(t *testing.T) {
		legacy := []benchjson.IdentifyRow{row("c432", 2.0, 0)} // no paths/sec in old artifacts
		cur := []benchjson.IdentifyRow{row("c432", 2.0, 1e6)}
		var out strings.Builder
		if n := compare(&out, legacy, cur, 0.85); n != 0 {
			t.Fatalf("legacy baseline must skip paths/sec, got %d regressions", n)
		}
		if !strings.Contains(out.String(), "skipped") {
			t.Fatalf("skip not reported:\n%s", out.String())
		}
	})
}

// TestGoldenCompare: the passing-path output format against fixtures in
// the three artifact generations (legacy bare-array baseline included —
// the committed BENCH_identify.json predates the envelope).
func TestGoldenCompare(t *testing.T) {
	golden := goldentest.Golden(t, "compare")
	baseline := goldentest.Fixture(t, "baseline.json")
	current := goldentest.Fixture(t, "current.json")
	out := goldentest.Run(t, "benchcompare", main,
		"-baseline", baseline, "-current", current, "-tolerance", "0.85")
	goldentest.Check(t, golden, out)
}
