// Command benchcompare is the CI perf-regression gate for the
// identification benchmark: it compares a freshly generated
// BENCH_identify.json against a committed baseline and exits nonzero if
// any circuit's cached speedup or paths/sec throughput regressed beyond
// the tolerance. The baseline may be in any artifact version the
// benchjson reader understands (v2, v1 envelope, or the pre-envelope
// bare rows array); metrics the baseline lacks (paths_per_sec in legacy
// files) are skipped rather than failed, so the gate tightens itself as
// newer baselines are committed.
//
// Usage:
//
//	benchcompare -baseline BENCH_identify.json -current BENCH_identify.new.json
//
// The tolerance is a ratio: with -tolerance 0.85 (the default), the gate
// fails when current speedup < 0.85 * baseline speedup for any circuit.
// Absolute ns/op is deliberately not gated — wall-clock shifts with the
// host, while speedup and paths/sec are ratios of runs on the same host.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rdfault/internal/benchjson"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_identify.json", "committed baseline artifact")
		currentPath  = flag.String("current", "", "freshly generated artifact to gate (required)")
		tolerance    = flag.Float64("tolerance", 0.85, "minimum allowed current/baseline ratio per metric")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -current is required")
		os.Exit(2)
	}
	if *tolerance <= 0 || *tolerance > 1 {
		fmt.Fprintln(os.Stderr, "benchcompare: -tolerance must be in (0, 1]")
		os.Exit(2)
	}

	var base, cur []benchjson.IdentifyRow
	if err := benchjson.ReadFile(*baselinePath, benchjson.KindIdentify, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: baseline: %v\n", err)
		os.Exit(2)
	}
	if err := benchjson.ReadFile(*currentPath, benchjson.KindIdentify, &cur); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: current: %v\n", err)
		os.Exit(2)
	}

	regressions := compare(os.Stdout, base, cur, *tolerance)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d regression(s) beyond tolerance %.2f\n",
			regressions, *tolerance)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: no regressions (tolerance %.2f)\n", *tolerance)
}

// compare prints a per-circuit table and returns the number of gated
// regressions. A circuit present only in one artifact is a regression:
// silently dropping a suite member must not pass the gate.
func compare(w io.Writer, base, cur []benchjson.IdentifyRow, tol float64) int {
	curBy := make(map[string]benchjson.IdentifyRow, len(cur))
	for _, r := range cur {
		curBy[r.Circuit] = r
	}
	regressions := 0
	fmt.Fprintf(w, "%-8s  %22s  %26s\n", "circuit", "speedup base -> cur", "paths/sec base -> cur")
	for _, b := range base {
		c, ok := curBy[b.Circuit]
		if !ok {
			fmt.Fprintf(w, "%-8s  MISSING from current artifact\n", b.Circuit)
			regressions++
			continue
		}
		delete(curBy, b.Circuit)

		spOK := c.Speedup >= tol*b.Speedup
		line := fmt.Sprintf("%-8s  %8.2fx -> %8.2fx", b.Circuit, b.Speedup, c.Speedup)
		if !spOK {
			line += " REGRESSED"
			regressions++
		}
		if b.PathsPerSec > 0 {
			ppsOK := c.PathsPerSec >= tol*b.PathsPerSec
			line += fmt.Sprintf("  %10.3g -> %10.3g", b.PathsPerSec, c.PathsPerSec)
			if !ppsOK {
				line += " REGRESSED"
				regressions++
			}
		} else {
			line += "  (baseline lacks paths/sec; skipped)"
		}
		fmt.Fprintln(w, line)
	}
	for name := range curBy {
		// New circuits are fine — they just aren't gated yet.
		fmt.Fprintf(w, "%-8s  new circuit (no baseline)\n", name)
	}
	return regressions
}
