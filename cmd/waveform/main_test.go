package main

import (
	"os"
	"strings"
	"testing"

	"rdfault/internal/cliutil/goldentest"
)

// TestGoldenExample: the timing simulation of one two-pattern test on
// the default (paper example) circuit, plus the VCD artifact.
func TestGoldenExample(t *testing.T) {
	golden := goldentest.Golden(t, "example")
	t.Chdir(t.TempDir())
	out := goldentest.Run(t, "waveform", main, "-v1", "101", "-v2", "111", "-o", "w.vcd", "-seed", "1")
	goldentest.Check(t, golden, out)
	b, err := os.ReadFile("w.vcd")
	if err != nil {
		t.Fatalf("no VCD written: %v", err)
	}
	if !strings.Contains(string(b), "$enddefinitions") {
		t.Fatal("w.vcd is not a VCD file")
	}
}
