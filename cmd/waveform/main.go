// Command waveform runs the event-driven timing simulator on a circuit
// for one two-pattern test and dumps the full switching history as a VCD
// file viewable in GTKWave or any waveform viewer.
//
// Usage:
//
//	waveform -bench file.bench -v1 0101 -v2 1101 [-o out.vcd] [-seed 3]
//
// Vectors are given LSB-first in Inputs() declaration order; a missing
// -v1/-v2 pair is replaced by a random-delay demonstration pair.
package main

import (
	"flag"
	"fmt"
	"os"

	"rdfault/internal/gen"
	"rdfault/internal/loader"
	"rdfault/internal/sim"
)

func main() {
	var (
		benchFile = flag.String("bench", "", "netlist file (.bench, .v or .pla); default: paper example")
		v1s       = flag.String("v1", "", "first vector, e.g. 0101")
		v2s       = flag.String("v2", "", "second vector")
		out       = flag.String("o", "out.vcd", "output VCD path")
		seed      = flag.Int64("seed", 1, "delay assignment seed")
	)
	flag.Parse()

	c := gen.PaperExample()
	if *benchFile != "" {
		loaded, err := loader.Load(*benchFile)
		if err != nil {
			fatal(err)
		}
		c = loaded
	}
	n := len(c.Inputs())
	v1 := parseVec(*v1s, n, false)
	v2 := parseVec(*v2s, n, true)
	d := sim.RandomDelays(c, *seed, 0.5, 2.5)

	res, tr := sim.SimulateTrace(c, d, v1, v2)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteVCD(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d events, outputs settle at t=%.3f; wrote %s\n",
		c.Name(), res.Events, res.StabilizeTime(c), *out)
}

func parseVec(s string, n int, defaultVal bool) []bool {
	v := make([]bool, n)
	if s == "" {
		for i := range v {
			v[i] = defaultVal && i%2 == 0
		}
		return v
	}
	if len(s) != n {
		fatal(fmt.Errorf("vector %q has %d bits, circuit has %d inputs", s, len(s), n))
	}
	for i, ch := range s {
		switch ch {
		case '0':
		case '1':
			v[i] = true
		default:
			fatal(fmt.Errorf("bad bit %q in vector", ch))
		}
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "waveform:", err)
	os.Exit(1)
}
