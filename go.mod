module rdfault

go 1.22
