package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream
// of the job's live Progress snapshots, one "progress" frame per
// StreamInterval plus an immediate frame on entry, terminated by a
// single "done" frame once the job reaches a terminal state.
//
// The whole stream runs on the request goroutine — no subscriber
// registry, no fan-out goroutines — so a disconnect, a server drain or a
// finished job all end the handler by returning, and there is nothing
// left to leak. A subscriber that cannot drain a frame within
// StreamWriteTimeout is disconnected (its write fails) rather than
// allowed to wedge the handler.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	s.metrics.sseStreams.Inc()
	s.metrics.sseActive.Add(1)
	defer s.metrics.sseActive.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	write := func(event string, v any) bool {
		// Best effort: some ResponseWriters cannot set deadlines; the
		// write itself still reports a dead subscriber.
		rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	for {
		info := j.Info()
		terminal := info.State == StateDone || info.State == StateFailed
		event := "progress"
		if terminal {
			event = "done"
		}
		if !write(event, info) || terminal {
			return
		}
		select {
		case <-ticker.C:
		case <-j.Done():
			// Loop once more: the next frame is the terminal "done".
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
