package serve

import (
	"strconv"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/oracle"
	"rdfault/internal/paths"
)

// TestTierLadderSoundVsOracle is the ladder-soundness test: on circuits
// small enough for the exhaustive oracle, every rung's served RD set
// must be a subset of the exact RD set, and each answer's numbers must
// match the work its tier label claims.
//
// All rungs of a job share one input sort σ, so the subset chain is
//
//	RD_count (∅) ⊆ RD_cert = RD_fast = comp(LP^sup(σ)) ⊆ RD_exact = comp(LP(σ))
//
// The fast⊆exact link is verified directly against the oracle: every
// path in exact LP must appear in the fast rung's selected set (LP ⊆
// LP^sup ⟺ RD_fast ⊆ RD_exact).
func TestTierLadderSoundVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle classification is exhaustive")
	}
	circuits := []*circuit.Circuit{
		gen.PaperExample(),
		gen.RandomCircuit("r1", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 3, MaxArity: 4}, 1),
		gen.RandomCircuit("r2", gen.RandomOptions{Inputs: 7, Gates: 24, Outputs: 3, MaxArity: 4}, 42),
	}
	for _, c := range circuits {
		t.Run(c.Name(), func(t *testing.T) {
			sort, err := jobSort(c, core.Heuristic2)
			if err != nil {
				t.Fatal(err)
			}
			orc, err := oracle.Classify(c, sort)
			if err != nil {
				t.Fatal(err)
			}

			// The fast rung's selected set, collected serially with the
			// same sort the service uses.
			selected := make(map[string]bool)
			_, err = core.Enumerate(c, core.SigmaPi, core.Options{
				Sort:   &sort,
				OnPath: func(lp paths.Logical) { selected[lp.Key()] = true },
			})
			if err != nil {
				t.Fatal(err)
			}
			// Soundness of the approximation itself: LP ⊆ LP^sup(σ).
			for _, key := range orc.Keys {
				if !orc.IsRD(key) && !selected[key] {
					t.Fatalf("path %s is in exact LP but outside the fast selected set: RD_fast ⊄ RD_exact", key)
				}
			}

			cert, err := core.CollectRDSegments(c, sort, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			s := newTestServer(t, Config{Workers: 2})
			bench := benchOf(t, c)
			for _, tier := range []string{"exact", "fast", "certificate", "count"} {
				j, err := s.Submit(Request{Bench: bench, Name: c.Name(), Heuristic: "heu2", Tier: tier})
				if err != nil {
					t.Fatal(err)
				}
				ans, err := waitJob(t, j, 60*time.Second)
				if err != nil {
					t.Fatalf("tier %s: %v", tier, err)
				}
				if ans.Tier != tier || ans.TierReason != "requested" {
					t.Fatalf("requested %s, served %s (%s)", tier, ans.Tier, ans.TierReason)
				}
				if ans.TotalPaths != strconv.Itoa(orc.Total()) {
					t.Fatalf("tier %s: total=%s, oracle says %d", tier, ans.TotalPaths, orc.Total())
				}
				rd, perr := strconv.Atoi(ans.RD)
				if perr != nil {
					t.Fatalf("tier %s: unparsable RD %q", tier, ans.RD)
				}
				// Subset bound: no rung may claim more RD paths than the
				// exact set holds.
				if rd > orc.RD() {
					t.Fatalf("tier %s claims %d RD paths, exact set has only %d", tier, rd, orc.RD())
				}
				// Label honesty: the numbers must be the served tier's own.
				switch tier {
				case "exact":
					if rd != orc.RD() || !ans.Exact {
						t.Fatalf("exact tier: RD=%d exact=%v, oracle says %d", rd, ans.Exact, orc.RD())
					}
				case "fast":
					if rd != orc.Total()-len(selected) || ans.Exact {
						t.Fatalf("fast tier: RD=%d, complement of selected set is %d", rd, orc.Total()-len(selected))
					}
					if ans.Selected != int64(len(selected)) {
						t.Fatalf("fast tier: selected=%d, set has %d", ans.Selected, len(selected))
					}
				case "certificate":
					if rd != orc.Total()-len(selected) {
						t.Fatalf("certificate tier: RD=%d, fast RD set has %d", rd, orc.Total()-len(selected))
					}
					if ans.Segments != len(cert.Segments) {
						t.Fatalf("certificate tier: %d segments, direct run found %d", ans.Segments, len(cert.Segments))
					}
					if cert.CoveredTotal.String() != ans.RD {
						t.Fatalf("certificate covers %v paths but claims RD=%s", cert.CoveredTotal, ans.RD)
					}
				case "count":
					if rd != 0 || ans.Selected != 0 {
						t.Fatalf("count tier: RD=%d selected=%d, want an empty RD set", rd, ans.Selected)
					}
				}
			}
		})
	}
}
