// Package serve turns the RD identification pipeline into a resilient
// long-running service: a bounded job queue with admission control and
// load shedding, a memory budget that steps running jobs down a
// graceful-degradation ladder instead of OOM-killing them, and per-job
// isolation (panic containment, deadlines, checkpoint spill/resume) so
// one bad job never takes the process down.
//
// Two priority lanes keep cheap requests responsive under heavy load:
// path counting (linear time) runs synchronously on its own semaphore,
// while Identify/certificate jobs queue for a fixed pool of runners.
// When the queue is full the service sheds load immediately — a typed
// ErrSaturated carrying a Retry-After hint, never an unbounded wait.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/store"
	"rdfault/internal/telemetry"
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// QueueDepth bounds the heavy-lane job queue (default 16). A full
	// queue sheds load with ErrSaturated instead of buffering unboundedly.
	QueueDepth int
	// MaxInFlight is the number of heavy jobs running concurrently
	// (default 2 — each job already parallelizes internally).
	MaxInFlight int
	// MaxCheapInFlight bounds the synchronous counting lane (default 8).
	MaxCheapInFlight int
	// MaxConeInFlight bounds the synchronous cone-slice lane used by the
	// fleet coordinator (default 2).
	MaxConeInFlight int
	// MemoryBudget is the declared-bytes ledger shared by all running
	// jobs (default 256 MiB); see Budget.
	MemoryBudget int64
	// MaxGates and MaxRequestBytes are per-request admission limits
	// (defaults 200000 gates, 8 MiB of netlist).
	MaxGates        int
	MaxRequestBytes int64
	// Workers is the enumeration worker count per heavy job (default
	// GOMAXPROCS).
	Workers int
	// DefaultTimeout bounds a job that asked for none (default 0 = no
	// bound; the ladder still degrades on explicit request timeouts).
	DefaultTimeout time.Duration
	// RetryAfter is the backoff hint attached to shed load (default 1s).
	RetryAfter time.Duration
	// SpillDir receives checkpoints of evicted jobs (default os.TempDir()).
	SpillDir string
	// Store, when non-nil, serves the fast rung through the
	// content-addressed result store: resubmissions (byte-identical or
	// relabeled) are answered from their stored counters, ECO revisions
	// re-enumerate only their changed cones, and every fresh result is
	// persisted for the next job, replica or process. The answer's Store
	// field labels the outcome (hit/delta/miss).
	Store *store.Store
	// Telemetry, when non-nil, receives the structured lifecycle event
	// log (job submitted/started/done/failed, shed, budget evictions,
	// drain). Progress snapshots stream over /v1/jobs/{id}/events and
	// never enter this log, so with a frozen faultinject clock the log
	// of a serialized run is byte-deterministic.
	Telemetry *telemetry.Log
	// StreamInterval paces the SSE progress stream (default 100ms).
	StreamInterval time.Duration
	// StreamWriteTimeout bounds each SSE write; a subscriber that cannot
	// keep up is disconnected instead of wedging the handler (default 5s).
	StreamWriteTimeout time.Duration
	// FollowerJournal, when set, opens the hot-standby follower lane:
	// POST /v1/journal appends a fleet coordinator's shipped journal
	// records to this file (created if missing; the directory must
	// exist), fenced by term. A standby promotes by resuming from this
	// file with fleet.Resume.
	FollowerJournal string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxCheapInFlight <= 0 {
		c.MaxCheapInFlight = 8
	}
	if c.MaxConeInFlight <= 0 {
		c.MaxConeInFlight = 2
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 200000
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 5 * time.Second
	}
	return c
}

// Typed service errors; match with errors.Is.
var (
	// ErrSaturated: the lane's capacity is exhausted; retry later. The
	// concrete *SaturatedError carries the Retry-After hint.
	ErrSaturated = errors.New("serve: saturated")
	// ErrTooLarge: the request exceeds an admission limit.
	ErrTooLarge = errors.New("serve: request exceeds admission limits")
	// ErrBadRequest: the request is malformed (unparsable netlist,
	// unknown heuristic or tier).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrShutdown: the server is draining; no new work is accepted and
	// unfinished jobs fail with this.
	ErrShutdown = errors.New("serve: shutting down")
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("serve: no such job")
	// ErrNotDone: the job has not produced its answer yet.
	ErrNotDone = errors.New("serve: job not done")
)

// SaturatedError is load shedding with a backoff hint.
type SaturatedError struct {
	Lane       string
	RetryAfter time.Duration
}

// Error names the saturated lane.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: %s lane saturated, retry after %v", e.Lane, e.RetryAfter)
}

// Unwrap matches errors.Is(err, ErrSaturated).
func (e *SaturatedError) Unwrap() error { return ErrSaturated }

// Request is one identification job submission.
type Request struct {
	// Bench is the circuit netlist in .bench format.
	Bench string
	// Name labels the circuit (default "job").
	Name string
	// Heuristic is fus|heu1|heu2|inverse|pin (default heu2).
	Heuristic string
	// Tier is the requested ladder rung: exact|fast|certificate|count
	// (default fast). The service may serve a lower rung; the answer
	// says which and why.
	Tier string
	// Timeout bounds the job (0 = Config.DefaultTimeout).
	Timeout time.Duration
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one queued or running identification request.
type Job struct {
	// ID is the job's handle, sequential per server ("job-1", ...).
	ID string

	circuit   *circuit.Circuit
	heuristic core.Heuristic
	tier      Tier
	timeout   time.Duration

	// tracker carries the job's live enumeration counters; done closes
	// when the job reaches a terminal state (Wait and the SSE stream
	// block on it).
	tracker *core.Tracker
	done    chan struct{}

	mu     sync.Mutex
	state  JobState
	answer *Answer
	err    error
	notes  []string
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *Job) finish(a *Answer, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	if err != nil {
		j.state = StateFailed
		j.err = err
	} else {
		j.state = StateDone
		j.answer = a
	}
	if j.done != nil {
		close(j.done)
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress snapshots the job's live enumeration counters (zero while
// queued, exact once the enumeration pass completes).
func (j *Job) Progress() core.Progress { return j.tracker.Snapshot() }

// Wait blocks until the job finishes (returning its answer or failure
// error) or ctx fires.
func (j *Job) Wait(ctx context.Context) (*Answer, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// note records an operational footnote (spill failure, corrupt
// checkpoint) surfaced in the job's status.
func (j *Job) note(s string) {
	j.mu.Lock()
	j.notes = append(j.notes, s)
	j.mu.Unlock()
}

// Info is a point-in-time snapshot of a job. Progress carries the live
// enumeration counters (additive field: old clients ignore it).
type Info struct {
	ID       string         `json:"id"`
	State    JobState       `json:"state"`
	Circuit  string         `json:"circuit"`
	Tier     string         `json:"tier_requested"`
	Progress *core.Progress `json:"progress,omitempty"`
	Error    string         `json:"error,omitempty"`
	Notes    []string       `json:"notes,omitempty"`
}

// Info snapshots the job.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	in := Info{
		ID:      j.ID,
		State:   j.state,
		Circuit: j.circuit.Name(),
		Tier:    j.tier.String(),
		Notes:   append([]string(nil), j.notes...),
	}
	if j.tracker != nil {
		p := j.tracker.Snapshot()
		in.Progress = &p
	}
	if j.err != nil {
		in.Error = j.err.Error()
	}
	return in
}

// Result returns the job's answer, ErrNotDone while it is in flight, or
// the job's failure error.
func (j *Job) Result() (*Answer, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.answer, nil
	case StateFailed:
		return nil, j.err
	}
	return nil, ErrNotDone
}

// Server is the RD identification service.
type Server struct {
	cfg    Config
	budget *Budget

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue    chan *Job
	cheapSem chan struct{}
	coneSem  chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64
	closed bool

	running      atomic.Int64
	done         atomic.Int64
	coneInflight atomic.Int64
	shed         atomic.Int64
	draining     atomic.Bool

	telem    *telemetry.Log
	metrics  *serveMetrics
	follower *followerState

	wg sync.WaitGroup
}

// New starts a server with cfg's limits and MaxInFlight runner
// goroutines. Close releases them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		budget:     NewBudget(cfg.MemoryBudget),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		cheapSem:   make(chan struct{}, cfg.MaxCheapInFlight),
		coneSem:    make(chan struct{}, cfg.MaxConeInFlight),
		jobs:       make(map[string]*Job),
		telem:      cfg.Telemetry,
	}
	s.metrics = newServeMetrics(s)
	if cfg.FollowerJournal != "" {
		fs, err := newFollowerState(cfg.FollowerJournal)
		if err != nil {
			// The lane stays disabled (POST /v1/journal answers 404); the
			// server still serves. A standby operator sees the event and a
			// zero FollowerInfo.
			s.emit("journal.error", "", err.Error(), nil)
		} else {
			s.follower = fs
		}
	}
	if cfg.Store != nil && cfg.Telemetry != nil {
		// Interleave store.hit/miss/delta/corrupt events into the server's
		// lifecycle log.
		cfg.Store.SetTelemetry(cfg.Telemetry)
	}
	s.budget.onEvict = func(bytes int64) {
		s.metrics.budgetEvictions.Inc()
		s.emit("budget.evict", "", "", map[string]int64{"bytes": bytes})
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Budget exposes the memory ledger (for the memory-pressure hook and
// health reporting).
func (s *Server) Budget() *Budget { return s.budget }

// Metrics exposes the server's Prometheus registry, for embedding the
// service into a process that serves its own /metrics endpoint.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// emit writes one lifecycle event to the configured telemetry log
// (a safe no-op when none is configured).
func (s *Server) emit(kind, job, detail string, fields map[string]int64) {
	s.telem.Emit(telemetry.Event{
		Source: "serve", Kind: kind, Job: job, Detail: detail, Fields: fields,
	})
}

// admit parses and size-checks a netlist.
func (s *Server) admit(name, bench string) (*circuit.Circuit, error) {
	if int64(len(bench)) > s.cfg.MaxRequestBytes {
		return nil, fmt.Errorf("%w: netlist is %d bytes (limit %d)",
			ErrTooLarge, len(bench), s.cfg.MaxRequestBytes)
	}
	if name == "" {
		name = "job"
	}
	c, err := circuit.ParseBench(name, strings.NewReader(bench))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if c.NumGates() > s.cfg.MaxGates {
		return nil, fmt.Errorf("%w: circuit has %d gates (limit %d)",
			ErrTooLarge, c.NumGates(), s.cfg.MaxGates)
	}
	return c, nil
}

var heuristicNames = map[string]core.Heuristic{
	"":        core.Heuristic2,
	"fus":     core.HeuristicFUS,
	"heu1":    core.Heuristic1,
	"heu2":    core.Heuristic2,
	"inverse": core.Heuristic2Inverse,
	"pin":     core.HeuristicPinOrder,
}

// Submit admits a job into the heavy lane. It never blocks: a full
// queue returns *SaturatedError immediately (load shedding), a bad or
// oversized request returns ErrBadRequest/ErrTooLarge, and an accepted
// job comes back queued with its ID assigned.
func (s *Server) Submit(req Request) (*Job, error) {
	h, ok := heuristicNames[req.Heuristic]
	if !ok {
		return nil, fmt.Errorf("%w: unknown heuristic %q", ErrBadRequest, req.Heuristic)
	}
	tier := TierFast
	if req.Tier != "" {
		var err error
		if tier, err = ParseTier(req.Tier); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	c, err := s.admit(req.Name, req.Bench)
	if err != nil {
		return nil, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}

	s.mu.Lock()
	if s.closed || s.draining.Load() {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		circuit:   c,
		heuristic: h,
		tier:      tier,
		timeout:   timeout,
		tracker:   core.NewTracker(),
		done:      make(chan struct{}),
		state:     StateQueued,
	}
	s.jobs[j.ID] = j
	// The submitted event precedes the queue send (and is emitted under
	// s.mu, so event order matches ID order); a shed submission keeps its
	// burned ID so the event log stays unambiguous.
	s.metrics.jobsSubmitted.Inc()
	s.emit("job.submitted", j.ID, j.tier.String(), nil)
	select {
	case s.queue <- j:
		s.mu.Unlock()
		return j, nil
	default:
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		s.shed.Add(1)
		s.metrics.shed.With("identify").Add(1)
		s.emit("job.shed", j.ID, "identify", nil)
		return nil, &SaturatedError{Lane: "identify", RetryAfter: s.cfg.RetryAfter}
	}
}

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Count is the cheap lane: a synchronous linear-time path count, capped
// by its own semaphore so heavy jobs can never starve it (and it can
// never starve them).
func (s *Server) Count(name, bench string) (*Answer, error) {
	select {
	case s.cheapSem <- struct{}{}:
	default:
		s.shed.Add(1)
		s.metrics.shed.With("count").Add(1)
		s.emit("job.shed", "", "count", nil)
		return nil, &SaturatedError{Lane: "count", RetryAfter: s.cfg.RetryAfter}
	}
	defer func() { <-s.cheapSem }()
	if s.baseCtx.Err() != nil || s.draining.Load() {
		return nil, ErrShutdown
	}
	c, err := s.admit(name, bench)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resv, err := s.budget.Reserve(estimateBytes(c, TierCount, 1))
	if err != nil {
		return nil, err
	}
	defer resv.Release()
	total := analysis.For(c).CopyLogical()
	return &Answer{
		Tier:       TierCount.String(),
		TierReason: "requested",
		Circuit:    c.Name(),
		TotalPaths: total.String(),
		RD:         "0",
		DurationMS: time.Since(start).Milliseconds(),
	}, nil
}

// runner is one heavy-lane worker goroutine.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.baseCtx.Done():
			return
		}
	}
}

// runJob executes one job with full isolation: its own context and
// deadline, panic containment (a panic that escapes even the
// enumeration's own worker isolation fails this job, not the process),
// and the degradation ladder.
func (s *Server) runJob(j *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	defer s.done.Add(1)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.finishJob(j, nil, fmt.Errorf("serve: job panicked: %v", r), start)
		}
	}()
	j.setState(StateRunning)
	s.emit("job.start", j.ID, j.tier.String(), nil)

	ctx := s.baseCtx
	if j.timeout > 0 {
		// The deadline is anchored at the injectable clock so chaos tests
		// can skew it; a skewed clock degrades the job, never corrupts it.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, faultinject.Now(faultinject.PointClock).Add(j.timeout))
		defer cancel()
	}
	ans, err := s.runLadder(ctx, j)
	s.finishJob(j, ans, err, start)
}

// finishJob records a job's terminal event and metrics, then finishes
// it — in that order, so a waiter unblocked by finish always observes
// the terminal event already in the log (which is what keeps a
// serialized submit→wait sequence byte-deterministic). The done-event
// counters come from the tracker's final snapshot: the streamed numbers
// and the logged numbers are the same numbers.
func (s *Server) finishJob(j *Job, ans *Answer, err error, start time.Time) {
	s.metrics.jobSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.metrics.jobsCompleted.With("failed").Add(1)
		s.emit("job.failed", j.ID, err.Error(), nil)
	} else {
		s.metrics.jobsCompleted.With("done").Add(1)
		s.metrics.tierServed.With(ans.Tier).Add(1)
		p := j.tracker.Snapshot()
		s.emit("job.done", j.ID, ans.Tier, map[string]int64{
			"selected": p.Selected, "segments": p.Segments, "pruned": p.Pruned,
		})
	}
	j.finish(ans, err)
}

// Health is the service's self-report. The original fields are stable;
// InFlight/Shed/BudgetRemaining were added later and are additive (old
// clients simply ignore them).
type Health struct {
	Status      string `json:"status"`
	Queued      int    `json:"queued"`
	Running     int64  `json:"running"`
	JobsDone    int64  `json:"jobs_done"`
	BudgetUsed  int64  `json:"budget_used"`
	BudgetTotal int64  `json:"budget_total"`
	// InFlight counts work running right now across every lane (heavy
	// jobs plus synchronous cone slices).
	InFlight int64 `json:"in_flight"`
	// Shed counts requests refused with ErrSaturated since start.
	Shed int64 `json:"shed"`
	// BudgetRemaining is BudgetTotal - BudgetUsed (clamped at 0).
	BudgetRemaining int64 `json:"budget_remaining"`
}

// Health snapshots queue depth, in-flight work and the memory ledger.
func (s *Server) Health() Health {
	st := "ok"
	if s.draining.Load() || s.baseCtx.Err() != nil {
		st = "draining"
	}
	used, total := s.budget.Used(), s.budget.Total()
	rem := total - used
	if rem < 0 {
		rem = 0
	}
	return Health{
		Status:          st,
		Queued:          len(s.queue),
		Running:         s.running.Load(),
		JobsDone:        s.done.Load(),
		BudgetUsed:      used,
		BudgetTotal:     total,
		InFlight:        s.running.Load() + s.coneInflight.Load(),
		Shed:            s.shed.Load(),
		BudgetRemaining: rem,
	}
}

// Drain is the graceful half of shutdown: intake stops immediately
// (Submit, Count and Cone answer ErrShutdown → 503 with Retry-After),
// then in-flight and queued work gets up to timeout to finish before
// Close cancels whatever is left. A job canceled at the deadline is not
// lost: the identify ladder spills its checkpoint to SpillDir (noted on
// the job), an interrupted cone slice answers its caller with a
// resumable checkpoint, and queued jobs that never got to run fail
// typed with ErrShutdown. timeout <= 0 degenerates to Close.
func (s *Server) Drain(timeout time.Duration) {
	// Only the draining flag stops intake here; Close below still takes
	// its full path (cancel + wait) because closed is not yet set.
	s.draining.Store(true)
	s.emit("drain.begin", "", timeout.String(), nil)

	deadline := faultinject.Now(faultinject.PointClock).Add(timeout)
	for timeout > 0 && time.Now().Before(deadline) {
		if len(s.queue) == 0 && s.running.Load() == 0 && s.coneInflight.Load() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
}

// Draining reports whether Drain has stopped intake.
func (s *Server) Draining() bool { return s.draining.Load() || s.baseCtx.Err() != nil }

// Close drains the server: intake stops (Submit returns ErrShutdown),
// running jobs are canceled and fail typed, queued jobs fail without
// running, and all runner goroutines exit before Close returns.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.baseCancel()
	s.wg.Wait()
	if s.follower != nil {
		s.follower.close()
	}
	for {
		select {
		case j := <-s.queue:
			// Killed while queued: terminal event first, then finish, like
			// every other path to a terminal state.
			s.metrics.jobsCompleted.With("failed").Add(1)
			s.emit("job.failed", j.ID, ErrShutdown.Error(), nil)
			j.finish(nil, ErrShutdown)
		default:
			s.emit("server.closed", "", "", nil)
			return
		}
	}
}
