package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rdfault/internal/fleet/journal"
	"rdfault/internal/telemetry"
)

// httpRequest is the JSON body of POST /v1/jobs and POST /v1/count.
type httpRequest struct {
	Bench     string `json:"bench"`
	Name      string `json:"name,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	Tier      string `json:"tier,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// httpError is every non-2xx body.
type httpError struct {
	Error      string `json:"error"`
	RetryAfter int64  `json:"retry_after_ms,omitempty"`
}

// Handler exposes the service over HTTP+JSON:
//
//	POST /v1/jobs            submit an identification job (heavy lane)
//	POST /v1/batch           submit many jobs in one request
//	GET  /v1/jobs/{id}       job status + live progress counters
//	GET  /v1/jobs/{id}/events  SSE stream of progress snapshots
//	GET  /v1/jobs/{id}/result  the answer (409 while in flight)
//	POST /v1/count           synchronous path count (cheap lane)
//	POST /v1/cone            synchronous cone enumeration slice (fleet lane)
//	POST /v1/budget          resize the memory budget (pressure hook)
//	POST /v1/journal         follower lane: append shipped journal records
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness + queue/budget numbers
//
// Saturation answers 429 with a Retry-After header — immediately, not
// after a queueing delay. A draining server answers 503 with Retry-After.
// An unusable checkpoint in a cone dispatch answers 422 (drop the
// checkpoint and restart the cone; the request format itself is fine).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("POST /v1/cone", s.handleCone)
	mux.HandleFunc("POST /v1/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/journal", s.handleJournal)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	return mux
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// server's registry. Gauges read live state at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	s.metrics.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps the service's typed errors onto status codes.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var sat *SaturatedError
	switch {
	case errors.As(err, &sat):
		secs := int64(sat.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, httpError{
			Error:      sat.Error(),
			RetryAfter: sat.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, ErrTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, httpError{Error: err.Error()})
	case errors.Is(err, ErrBadCheckpoint):
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
	case errors.Is(err, ErrShutdown):
		secs := int64(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, httpError{
			Error:      err.Error(),
			RetryAfter: s.cfg.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, ErrBudget):
		// Even the cheapest tier could not be admitted.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	}
}

// decodeBody parses a JSON request body, bounded by the admission byte
// limit (the netlist limit is re-checked precisely at admit).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return s.decodeBodyLimit(w, r, v, s.cfg.MaxRequestBytes+4096)
}

// decodeBodyLimit is decodeBody with an explicit byte bound (the batch
// endpoint carries many netlists in one body).
func (s *Server) decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: request body over %d bytes", ErrTooLarge, tooBig.Limit)
		}
		return fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req httpRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	j, err := s.Submit(Request{
		Bench:     req.Bench,
		Name:      req.Name,
		Heuristic: req.Heuristic,
		Tier:      req.Tier,
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Info())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	ans, err := j.Result()
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ans)
	case errors.Is(err, ErrNotDone):
		writeJSON(w, http.StatusConflict, httpError{Error: fmt.Sprintf("job %s is %s", j.ID, j.Info().State)})
	default:
		// The job itself failed; its typed error is the result.
		writeJSON(w, http.StatusBadGateway, httpError{Error: err.Error()})
	}
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req httpRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ans, err := s.Count(req.Name, req.Bench)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

// handleCone is the fleet's work endpoint: one synchronous enumeration
// slice per request, answered with either final counters or a resumable
// checkpoint. See ConeRequest/ConeAnswer.
func (s *Server) handleCone(w http.ResponseWriter, r *http.Request) {
	var req ConeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ans, err := s.Cone(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

// handleJournal is the hot-standby follower lane: a fleet coordinator
// ships each write-ahead journal record here as it appends it, and the
// follower appends the validated lines to its own journal file before
// answering 200. A shipment below the follower's term floor answers 409
// — the fencing that stops a deposed primary from feeding a promoted
// standby; a shipment with an invalid line answers 422 and writes
// nothing.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if s.follower == nil {
		s.writeError(w, fmt.Errorf("%w: follower lane not configured", ErrNotFound))
		return
	}
	var req JournalShipment
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.follower.accept(req); err != nil {
		switch {
		case errors.Is(err, journal.ErrStaleCoordinator):
			s.metrics.journalStale.Inc()
			s.emit("journal.stale", "", err.Error(), map[string]int64{"term": int64(req.Term)})
			writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
		case errors.Is(err, journal.ErrCorruptRecord):
			s.emit("journal.corrupt", "", err.Error(), nil)
			writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
		default:
			s.writeError(w, err)
		}
		return
	}
	s.metrics.journalRecords.Add(int64(len(req.Lines)))
	s.emit("journal.follow", "", "", map[string]int64{
		"term": int64(req.Term), "lines": int64(len(req.Lines)),
	})
	writeJSON(w, http.StatusOK, journalAccepted{Status: "accepted", Term: req.Term})
}

// handleBudget is the external memory-pressure hook: POST {"bytes": N}
// resizes the ledger; shrinking it evicts running jobs (largest
// reservation first), which degrade down the ladder rather than die.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Bytes int64 `json:"bytes"`
	}
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Bytes <= 0 {
		s.writeError(w, fmt.Errorf("%w: budget must be positive", ErrBadRequest))
		return
	}
	prev := s.budget.SetTotal(req.Bytes)
	writeJSON(w, http.StatusOK, map[string]int64{"bytes": req.Bytes, "previous": prev})
}
