package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// runEvictionScenario submits an exact-tier job, waits for it to be
// running with its reservation on the ledger, then shrinks the budget to
// exactly what the fast tier needs — forcing one step down. extraRules
// layer additional faults onto the spill/resume path.
func runEvictionScenario(t *testing.T, extraRules ...faultinject.Rule) (*Answer, *faultinject.Plan) {
	t.Helper()
	c := gen.RippleAdder(8, gen.XorNAND)

	rules := append([]faultinject.Rule{{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: 15 * time.Millisecond,
		Count: 30,
	}}, extraRules...)
	plan := faultinject.NewPlan(rules...)
	restore := faultinject.Activate(plan)
	defer restore()

	s := newTestServer(t, Config{Workers: 2, MaxInFlight: 1})
	j, err := s.Submit(Request{Bench: benchOf(t, c), Name: "evict", Heuristic: "heu1", Tier: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for s.Budget().Used() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("exact tier never reserved")
		}
		time.Sleep(time.Millisecond)
	}
	// Let the exact tier get into the walk, then breach the budget: keep
	// room for the fast tier but not for the exact one.
	time.Sleep(80 * time.Millisecond)
	s.Budget().SetTotal(estimateBytes(j.circuit, TierFast, s.cfg.Workers) + 1<<16)

	ans, err := waitJob(t, j, 60*time.Second)
	if err != nil {
		t.Fatalf("evicted job failed instead of degrading: %v", err)
	}
	return ans, plan
}

// TestBudgetBreachStepsDownOneTier is the graceful-degradation
// acceptance test: a memory-budget breach steps the running exact job
// down exactly one rung, the response says so, and — because exact and
// fast share criterion and sort — the evicted walk resumes from its
// spilled checkpoint instead of restarting, with counters identical to
// a clean fast run.
func TestBudgetBreachStepsDownOneTier(t *testing.T) {
	ans, _ := runEvictionScenario(t)

	if ans.Tier != "fast" {
		t.Fatalf("degraded to %s, want fast (one rung below exact)", ans.Tier)
	}
	if !strings.Contains(ans.TierReason, "degraded") ||
		!strings.Contains(ans.TierReason, "exact->fast") ||
		!strings.Contains(ans.TierReason, "memory budget") {
		t.Fatalf("tier reason %q does not name the step and its cause", ans.TierReason)
	}
	if !ans.Resumed {
		t.Fatal("evicted job restarted instead of resuming from its spilled checkpoint")
	}

	ref, err := core.Identify(gen.RippleAdder(8, gen.XorNAND), core.Heuristic1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.RD != ref.RD.String() || ans.Selected != ref.Selected || ans.TotalPaths != ref.TotalLogicalPaths.String() {
		t.Fatalf("resumed degraded answer RD=%s selected=%d total=%s; clean fast run RD=%v selected=%d total=%v",
			ans.RD, ans.Selected, ans.TotalPaths, ref.RD, ref.Selected, ref.TotalLogicalPaths)
	}
}

// TestEvictionSurvivesSpillFailure: when the checkpoint spill itself
// fails (injected at serve.spill), the job still degrades — the fast
// tier restarts from scratch instead of resuming, and the answer is
// still correct.
func TestEvictionSurvivesSpillFailure(t *testing.T) {
	ans, plan := runEvictionScenario(t, faultinject.Rule{
		Point: faultinject.PointSpill,
		Kind:  faultinject.KindError,
		Hit:   1,
	})
	if plan.Fired(faultinject.PointSpill) == 0 {
		t.Fatal("spill fault never fired — scenario did not run")
	}
	if ans.Tier != "fast" || ans.Resumed {
		t.Fatalf("tier=%s resumed=%v, want fast without resume", ans.Tier, ans.Resumed)
	}
	ref, err := core.Identify(gen.RippleAdder(8, gen.XorNAND), core.Heuristic1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.RD != ref.RD.String() {
		t.Fatalf("RD=%s after spill failure, clean run says %v", ans.RD, ref.RD)
	}
}

// TestEvictionSurvivesUnreadableSpill: the spill is written but cannot
// be read back (injected at core.checkpoint.read); the fast tier must
// detect it, restart, and still serve the correct counters.
func TestEvictionSurvivesUnreadableSpill(t *testing.T) {
	ans, plan := runEvictionScenario(t, faultinject.Rule{
		Point: faultinject.PointCheckpointRead,
		Kind:  faultinject.KindError,
		Hit:   1,
	})
	if plan.Fired(faultinject.PointCheckpointRead) == 0 {
		t.Fatal("read fault never fired — scenario did not run")
	}
	if ans.Tier != "fast" || ans.Resumed {
		t.Fatalf("tier=%s resumed=%v, want fast restarted", ans.Tier, ans.Resumed)
	}
	ref, err := core.Identify(gen.RippleAdder(8, gen.XorNAND), core.Heuristic1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.RD != ref.RD.String() {
		t.Fatalf("RD=%s after unreadable spill, clean run says %v", ans.RD, ref.RD)
	}
}

// chaosReference holds the clean per-tier answers a chaotic run is
// checked against: whatever tier the service claims to have served, its
// numbers must match that tier's clean run — a fault may cost precision
// (a lower tier) but never correctness.
type chaosReference struct {
	rd       map[string]string
	selected map[string]int64
	total    string
}

func buildChaosReference(t *testing.T, h core.Heuristic) *chaosReference {
	t.Helper()
	c := gen.PaperExample()
	ref := &chaosReference{rd: map[string]string{}, selected: map[string]int64{}}

	exact, err := core.Identify(c, h, core.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := core.Identify(c, h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref.total = fast.TotalLogicalPaths.String()
	ref.rd["exact"] = exact.RD.String()
	ref.selected["exact"] = exact.Selected
	ref.rd["fast"] = fast.RD.String()
	ref.selected["fast"] = fast.Selected
	// The certificate rung shares the fast rung's sort, hence its RD set.
	ref.rd["certificate"] = fast.RD.String()
	ref.selected["certificate"] = fast.Selected
	ref.rd["count"] = "0"
	ref.selected["count"] = 0
	return ref
}

// TestChaosSuite drives the service through every injected-fault family
// and asserts the resilience contract: each fault maps to a typed error
// or to a correctly-labeled lower tier whose numbers match that tier's
// clean run — never a silently wrong answer, never a crash.
func TestChaosSuite(t *testing.T) {
	bench := benchOf(t, gen.PaperExample())

	scenarios := []struct {
		name      string
		heuristic string
		tier      string
		timeout   time.Duration
		rules     []faultinject.Rule
		// wantTier, when set, pins the rung the scenario must land on;
		// wantReason must appear in the TierReason chain.
		wantTier   string
		wantReason string
		// wantErr, when set, expects the job to fail typed instead.
		wantErr error
	}{
		{
			name:      "worker-panic-degrades",
			heuristic: "heu1",
			tier:      "fast",
			rules: []faultinject.Rule{{
				Point: faultinject.PointWorker,
				Kind:  faultinject.KindPanic,
				Hit:   1,
				Count: 1,
			}},
			wantTier:   "certificate",
			wantReason: "worker panic",
		},
		{
			name:      "alloc-failure-degrades",
			heuristic: "heu2",
			tier:      "fast",
			rules: []faultinject.Rule{{
				Point: faultinject.PointBudgetReserve,
				Kind:  faultinject.KindError,
				Count: 1,
			}},
			wantTier:   "certificate",
			wantReason: "memory budget",
		},
		{
			name:      "repeated-alloc-failure-hits-the-floor",
			heuristic: "heu2",
			tier:      "exact",
			rules: []faultinject.Rule{{
				Point: faultinject.PointBudgetReserve,
				Kind:  faultinject.KindError,
				Count: 3,
			}},
			wantTier:   "count",
			wantReason: "memory budget",
		},
		{
			name:      "alloc-failure-below-the-floor-is-a-typed-error",
			heuristic: "heu2",
			tier:      "count",
			rules: []faultinject.Rule{{
				Point: faultinject.PointBudgetReserve,
				Kind:  faultinject.KindError,
			}},
			wantErr: ErrBudget,
		},
		{
			name:      "memo-failure-is-a-typed-error",
			heuristic: "heu2",
			tier:      "fast",
			rules: []faultinject.Rule{{
				Point: faultinject.PointAnalysisMemo,
				Kind:  faultinject.KindError,
			}},
			wantErr: faultinject.ErrInjected,
		},
		{
			name:      "clock-skew-degrades-to-count",
			heuristic: "heu2",
			tier:      "fast",
			timeout:   5 * time.Second,
			rules: []faultinject.Rule{{
				Point: faultinject.PointClock,
				Kind:  faultinject.KindSkew,
				Skew:  -time.Hour,
			}},
			wantTier:   "count",
			wantReason: "deadline",
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			h := core.Heuristic2
			if sc.heuristic == "heu1" {
				h = core.Heuristic1
			}
			ref := buildChaosReference(t, h)

			plan := faultinject.NewPlan(sc.rules...)
			restore := faultinject.Activate(plan)
			defer restore()

			s := newTestServer(t, Config{Workers: 2, MaxInFlight: 1})
			j, err := s.Submit(Request{
				Bench:     bench,
				Name:      "chaos",
				Heuristic: sc.heuristic,
				Tier:      sc.tier,
				Timeout:   sc.timeout,
			})
			if err != nil {
				t.Fatal(err)
			}
			ans, err := waitJob(t, j, 60*time.Second)

			if sc.wantErr != nil {
				if !errors.Is(err, sc.wantErr) {
					t.Fatalf("got (%v, %v), want typed error %v", ans, err, sc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("job failed instead of degrading: %v", err)
			}
			if ans.Tier != sc.wantTier {
				t.Fatalf("served tier %s, want %s (reason %q)", ans.Tier, sc.wantTier, ans.TierReason)
			}
			if !strings.Contains(ans.TierReason, "degraded") || !strings.Contains(ans.TierReason, sc.wantReason) {
				t.Fatalf("tier reason %q does not carry cause %q", ans.TierReason, sc.wantReason)
			}
			// The label must match the work performed: the numbers of the
			// tier it claims, never a mixture.
			if ans.RD != ref.rd[ans.Tier] || ans.Selected != ref.selected[ans.Tier] {
				t.Fatalf("tier %s served RD=%s selected=%d; clean %s run says RD=%s selected=%d",
					ans.Tier, ans.RD, ans.Selected, ans.Tier, ref.rd[ans.Tier], ref.selected[ans.Tier])
			}
			if ans.TotalPaths != ref.total {
				t.Fatalf("total=%s, want %s", ans.TotalPaths, ref.total)
			}
		})
	}
}
