package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/big"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
)

// ErrBadCheckpoint is the sentinel for a dispatch carrying a checkpoint
// this server cannot resume — corrupt bytes, a version this build does
// not read, or a fingerprint that does not match the submitted circuit.
// It maps to HTTP 422 so a coordinator can tell "drop the checkpoint and
// restart the cone from scratch" (this) apart from "the request itself
// is malformed" (400, not worth retrying at all).
var ErrBadCheckpoint = errors.New("serve: unusable checkpoint")

// ConeRequest is one synchronous enumeration slice: the work unit of the
// fleet coordinator (POST /v1/cone). Unlike the job lane, which picks
// its own input sort from a heuristic name, this lane takes the sort
// explicitly — the coordinator computes one global σ on the full circuit
// and projects it onto every cone, which is exactly what makes per-cone
// Selected/RD counters sum to the whole-circuit run.
type ConeRequest struct {
	// Bench is the cone netlist in .bench format.
	Bench string `json:"bench"`
	// Name labels the cone (it is also checkpoint-fingerprinted, so every
	// dispatch of one cone must reuse the same name).
	Name string `json:"name,omitempty"`
	// Criterion is "sigma^pi" (default) or "FS" (the FUS baseline, which
	// uses no sort).
	Criterion string `json:"criterion,omitempty"`
	// Sort carries π(g, l) keyed by gate name (circuit.SortFromNames);
	// gates with fewer than two pins may be omitted. Ignored for FS.
	Sort map[string][]int `json:"sort,omitempty"`
	// Checkpoint, when present, resumes the slice from an earlier
	// interrupted answer's Checkpoint field (opaque core checkpoint
	// bytes). Counters are cumulative across the chain: the final
	// complete answer carries the whole cone's tallies.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// SliceMS bounds this slice's wall clock; an expired slice is not an
	// error but an interrupted answer carrying the next checkpoint
	// (0 = run to completion).
	SliceMS int64 `json:"slice_ms,omitempty"`
	// Workers overrides the server's enumeration parallelism for this
	// slice (0 = server default).
	Workers int `json:"workers,omitempty"`
}

// ConeAnswer reports one slice. Status "complete" carries the cone's
// final counters; "deadline"/"canceled" carry the partial counters plus
// the checkpoint that resumes them (on this worker or any other running
// the same build — checkpoints are engine-transplantable).
type ConeAnswer struct {
	Status     string `json:"status"`
	Circuit    string `json:"circuit"`
	Criterion  string `json:"criterion"`
	TotalPaths string `json:"total_paths"`
	Selected   int64  `json:"selected"`
	// RD is Total - Selected for complete slices, empty otherwise (an
	// interrupted slice proves nothing about unvisited paths).
	RD         string          `json:"rd,omitempty"`
	Segments   int64           `json:"segments"`
	Pruned     int64           `json:"pruned"`
	SATRejects int64           `json:"sat_rejects,omitempty"`
	Resumed    bool            `json:"resumed,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	DurationMS int64           `json:"duration_ms"`
	// Sum is an end-to-end integrity checksum over every answer field
	// except itself and DurationMS. A coordinator that receives an answer
	// whose Sum does not recompute treats the response as corrupt in
	// transit and retries — it never merges the numbers.
	Sum string `json:"sum,omitempty"`
}

// Seal stamps the answer's integrity checksum. The server seals every
// answer it sends; Verify checks it on the receiving side.
func (a *ConeAnswer) Seal() { a.Sum = a.sum() }

// Verify recomputes the checksum; an answer without one (an older
// server) passes vacuously.
func (a *ConeAnswer) Verify() bool { return a.Sum == "" || a.Sum == a.sum() }

func (a *ConeAnswer) sum() string {
	cp := *a
	cp.Sum = ""
	cp.DurationMS = 0
	b, err := json.Marshal(cp)
	if err != nil {
		return "unmarshalable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// coneCriterion maps the wire name to the enumeration criterion.
func coneCriterion(s string) (core.Criterion, error) {
	switch s {
	case "", "sigma^pi", "sigma-pi":
		return core.SigmaPi, nil
	case "FS", "fs":
		return core.FS, nil
	}
	return 0, fmt.Errorf("%w: unknown criterion %q (want sigma^pi|FS)", ErrBadRequest, s)
}

// Cone runs one enumeration slice synchronously. It never queues: the
// lane has its own in-flight cap and sheds excess load immediately with
// *SaturatedError, which is the backpressure signal the fleet's retry
// policy consumes. A slice interrupted by its deadline, a budget
// eviction or a server drain answers with a resumable checkpoint rather
// than an error — the caller decides where to resume it.
func (s *Server) Cone(req ConeRequest) (*ConeAnswer, error) {
	select {
	case s.coneSem <- struct{}{}:
	default:
		s.shed.Add(1)
		s.metrics.shed.With("cone").Add(1)
		s.emit("job.shed", "", "cone", nil)
		return nil, &SaturatedError{Lane: "cone", RetryAfter: s.cfg.RetryAfter}
	}
	defer func() { <-s.coneSem }()
	s.coneInflight.Add(1)
	defer s.coneInflight.Add(-1)
	s.metrics.coneSlices.Inc()
	if s.baseCtx.Err() != nil || s.draining.Load() {
		return nil, ErrShutdown
	}

	cr, err := coneCriterion(req.Criterion)
	if err != nil {
		return nil, err
	}
	c, err := s.admit(req.Name, req.Bench)
	if err != nil {
		return nil, err
	}
	opt := core.Options{Workers: req.Workers}
	if opt.Workers <= 0 {
		opt.Workers = s.cfg.Workers
	}
	if cr == core.SigmaPi {
		sort, err := circuit.SortFromNames(c, req.Sort)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opt.Sort = &sort
	}
	if len(req.Checkpoint) > 0 {
		cp, err := core.DecodeCheckpoint(bytes.NewReader(req.Checkpoint))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
		opt.Checkpoint = cp
	}

	start := time.Now()
	resv, err := s.budget.Reserve(estimateBytes(c, TierFast, opt.Workers))
	if err != nil {
		return nil, err
	}
	defer resv.Release()

	// The slice deadline is anchored at the injectable clock, like every
	// deadline in this package; an eviction or drain cancels the same
	// context, and all three interruption paths end in a checkpoint.
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if req.SliceMS > 0 {
		ctx, cancel = context.WithDeadline(ctx,
			faultinject.Now(faultinject.PointClock).Add(time.Duration(req.SliceMS)*time.Millisecond))
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-resv.Evicted():
			cancel()
		case <-ctx.Done():
		}
	}()
	defer func() { cancel(); <-watchDone }()
	opt.Context = ctx

	res, err := core.Enumerate(c, cr, opt)
	if err != nil {
		// Enumerate's error return is reserved for invalid inputs; the only
		// one reachable here is a checkpoint that fails fingerprint
		// validation against the submitted circuit/sort.
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	ans := &ConeAnswer{
		Status:     res.Status.String(),
		Circuit:    c.Name(),
		Criterion:  cr.String(),
		TotalPaths: res.Total.String(),
		Selected:   res.Selected,
		Segments:   res.Segments,
		Pruned:     res.Pruned,
		SATRejects: res.SATRejects,
		Resumed:    opt.Checkpoint != nil,
		DurationMS: time.Since(start).Milliseconds(),
	}
	switch res.Status {
	case core.StatusComplete:
		ans.RD = new(big.Int).Sub(res.Total, big.NewInt(res.Selected)).String()
		ans.Seal()
		return ans, nil
	case core.StatusDeadline, core.StatusCanceled:
		var buf bytes.Buffer
		if res.Checkpoint == nil {
			return nil, fmt.Errorf("serve: interrupted slice produced no checkpoint")
		}
		if err := res.Checkpoint.Encode(&buf); err != nil {
			return nil, err
		}
		ans.Checkpoint = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		ans.Seal()
		return ans, nil
	case core.StatusDegraded:
		// Partial counters with crashed subtrees must never be served; the
		// caller retries from its last good checkpoint.
		return nil, fmt.Errorf("serve: cone slice degraded: %w", res.Err)
	}
	return nil, fmt.Errorf("serve: unexpected slice status %v", res.Status)
}
