package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// do runs one request through the handler without opening a socket.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func submitBody(t *testing.T, bench, tier string) string {
	t.Helper()
	b, err := json.Marshal(httpRequest{Bench: bench, Name: "http", Heuristic: "heu2", Tier: tier})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	bench := benchOf(t, gen.PaperExample())

	rec := do(h, "POST", "/v1/jobs", submitBody(t, bench, "fast"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var info Info
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "job-1" || info.State == "" {
		t.Fatalf("submit returned %+v", info)
	}

	if rec := do(h, "GET", "/v1/jobs/"+info.ID, ""); rec.Code != http.StatusOK {
		t.Fatalf("status: %d %s", rec.Code, rec.Body)
	}

	var ans Answer
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec = do(h, "GET", "/v1/jobs/"+info.ID+"/result", "")
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
				t.Fatal(err)
			}
			break
		}
		if rec.Code != http.StatusConflict {
			t.Fatalf("result while in flight: %d %s", rec.Code, rec.Body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ans.Tier != "fast" || ans.TierReason != "requested" {
		t.Fatalf("answer %+v", ans)
	}

	rec = do(h, "POST", "/v1/count", submitBody(t, bench, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("count: %d %s", rec.Code, rec.Body)
	}
	var cnt Answer
	if err := json.Unmarshal(rec.Body.Bytes(), &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Tier != "count" || cnt.TotalPaths != ans.TotalPaths {
		t.Fatalf("count lane says %+v, identify says total=%s", cnt, ans.TotalPaths)
	}

	rec = do(h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxRequestBytes: 2048})
	h := s.Handler()

	if rec := do(h, "POST", "/v1/jobs", "{not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", rec.Code)
	}
	if rec := do(h, "POST", "/v1/jobs", submitBody(t, "INPUT(a", "fast")); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad netlist: %d", rec.Code)
	}
	big := strings.Repeat("# padding\n", 1024)
	if rec := do(h, "POST", "/v1/jobs", submitBody(t, big, "fast")); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: %d", rec.Code)
	}
	if rec := do(h, "GET", "/v1/jobs/job-99", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", rec.Code)
	}
	if rec := do(h, "POST", "/v1/budget", `{"bytes":-1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad budget: %d", rec.Code)
	}
}

// TestHTTPSaturation429 is the HTTP face of the load-shedding
// acceptance criterion: queue full ⇒ 429 with a Retry-After header,
// answered within 100ms.
func TestHTTPSaturation429(t *testing.T) {
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointBudgetReserve,
		Kind:  faultinject.KindSleep,
		Delay: 1200 * time.Millisecond,
		Hit:   1,
	}))
	defer restore()

	s := newTestServer(t, Config{QueueDepth: 1, MaxInFlight: 1, RetryAfter: 2 * time.Second})
	h := s.Handler()
	body := submitBody(t, benchOf(t, gen.PaperExample()), "fast")

	if rec := do(h, "POST", "/v1/jobs", body); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", rec.Code, rec.Body)
	}
	j, err := s.Job("job-1")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 2*time.Second)
	if rec := do(h, "POST", "/v1/jobs", body); rec.Code != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d %s", rec.Code, rec.Body)
	}

	start := time.Now()
	rec := do(h, "POST", "/v1/jobs", body)
	elapsed := time.Since(start)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After header = %q, want \"2\"", got)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("429 took %v, must be under 100ms", elapsed)
	}
}

// TestHTTPBudgetEndpointEvicts: the memory-pressure hook over HTTP
// resizes the ledger and reports the previous size.
func TestHTTPBudgetEndpoint(t *testing.T) {
	s := newTestServer(t, Config{MemoryBudget: 1 << 20})
	h := s.Handler()
	rec := do(h, "POST", "/v1/budget", fmt.Sprintf(`{"bytes":%d}`, 2<<20))
	if rec.Code != http.StatusOK {
		t.Fatalf("budget resize: %d %s", rec.Code, rec.Body)
	}
	var resp map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["previous"] != 1<<20 || resp["bytes"] != 2<<20 {
		t.Fatalf("budget response %v", resp)
	}
	if s.Budget().Total() != 2<<20 {
		t.Fatalf("ledger total %d, want %d", s.Budget().Total(), 2<<20)
	}
}
