package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/store"
)

// runStoreFast serves the fast rung through the content-addressed
// result store: a resubmitted (or merely relabeled) circuit is answered
// from its stored counters with zero enumeration work, and an ECO
// revision re-enumerates only its changed cones. The rung reserves the
// same budget as the plain fast rung — a delta's worst case is a full
// run — and steps down on the same causes. Store failures below the
// identification layer (unreadable or corrupt entries) never surface
// here: IdentifyThrough degrades them to recomputation internally.
func (s *Server) runStoreFast(ctx context.Context, j *Job) (*Answer, error) {
	start := time.Now()
	resv, err := s.budget.Reserve(estimateBytes(j.circuit, TierFast, s.cfg.Workers))
	if err != nil {
		if errors.Is(err, ErrBudget) {
			return nil, &stepDown{cause: err, note: "memory budget"}
		}
		return nil, err
	}
	defer resv.Release()

	tierCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var evicted atomic.Bool
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-resv.Evicted():
			evicted.Store(true)
			cancel()
		case <-tierCtx.Done():
		}
	}()
	defer func() { cancel(); <-watchDone }()

	res, err := store.IdentifyThrough(s.cfg.Store, j.circuit, store.Options{
		Heuristic: j.heuristic,
		Workers:   s.cfg.Workers,
		Context:   tierCtx,
	})
	if err != nil {
		switch {
		case evicted.Load():
			return nil, &stepDown{cause: ErrBudget, note: "memory budget"}
		case errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled),
			errors.Is(err, core.ErrWorkerPanic):
			if s.baseCtx.Err() != nil {
				return nil, ErrShutdown
			}
			return nil, &stepDown{cause: err, note: downNote(err)}
		}
		return nil, err
	}

	s.metrics.storeLookups.With(res.Outcome).Add(1)
	s.metrics.storeCones.With("store").Add(int64(res.ReusedCones))
	s.metrics.storeCones.With("fresh").Add(int64(res.FreshCones))
	s.metrics.storeCorrupt.Add(int64(res.CorruptEntries))

	ans := &Answer{
		Tier:       TierFast.String(),
		Store:      res.Outcome,
		Circuit:    j.circuit.Name(),
		Heuristic:  j.heuristic.String(),
		TotalPaths: res.TotalStr,
		Selected:   res.Selected,
		RD:         res.RDStr,
		RDPercent:  res.RDPercent(),
		DurationMS: time.Since(start).Milliseconds(),
	}
	switch res.Outcome {
	case "hit":
		ans.TierReason = "store hit"
	case "delta":
		ans.TierReason = fmt.Sprintf("store delta: reused %d/%d cones",
			res.ReusedCones, res.Cones)
	}
	return ans, nil
}
