package serve

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// A drain with headroom lets in-flight work finish while refusing all
// new intake, across every lane.
func TestDrainCompletesInFlightAndStopsIntake(t *testing.T) {
	bench := benchOf(t, gen.PaperExample())
	s := newTestServer(t, Config{MaxInFlight: 1})
	j, err := s.Submit(Request{Bench: bench, Name: "paper", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	s.Drain(10 * time.Second)

	ans, err := j.Result()
	if err != nil || ans == nil {
		t.Fatalf("in-flight job lost to a graceful drain: (%v, %v)", ans, err)
	}
	if _, err := s.Submit(Request{Bench: bench}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after drain: %v, want ErrShutdown", err)
	}
	if _, err := s.Count("n", bench); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Count after drain: %v, want ErrShutdown", err)
	}
	if _, err := s.Cone(ConeRequest{Bench: bench}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Cone after drain: %v, want ErrShutdown", err)
	}
	if st := s.Health().Status; st != "draining" {
		t.Fatalf("Health.Status = %q, want draining", st)
	}
}

// A job still running at the drain deadline fails typed — and its
// frontier is spilled to a checkpoint that resumes to the exact answer
// a clean run produces. No goroutine survives the shutdown.
func TestDrainSpillsRunningJobAndLeaksNothing(t *testing.T) {
	// Round-trip through bench text first: the checkpoint fingerprints
	// the circuit as the server parsed it, and the resume below must use
	// that same form.
	bench := benchOf(t, gen.RippleAdder(8, gen.XorNAND))
	c, err := circuit.ParseBench("radd8", strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Identify(c, core.HeuristicPinOrder, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	spillDir := t.TempDir()
	s := New(Config{MaxInFlight: 1, Workers: 1, SpillDir: spillDir})
	defer s.Close()

	// Slow every enumeration task so the job is provably mid-walk when
	// the drain deadline lands. Pin order skips the sort passes, so the
	// walk starts immediately and PointWorker hits mean enumeration.
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	j, err := s.Submit(Request{Bench: bench, Name: c.Name(), Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for plan.Hits(faultinject.PointWorker) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("enumeration never started")
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain(5 * time.Millisecond)

	if _, err := j.Result(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("drained job failed with %v, want ErrShutdown", err)
	}
	spill := filepath.Join(spillDir, j.ID+".drain.ckpt")
	if _, err := os.Stat(spill); err != nil {
		t.Fatalf("no drain checkpoint at %s (notes: %v)", spill, j.Info().Notes)
	}

	// The spilled frontier is not a souvenir: resuming it must finish the
	// job with exactly the clean run's counters.
	restore()
	cp, err := core.ReadCheckpointFile(spill)
	if err != nil {
		t.Fatalf("drain checkpoint unreadable: %v", err)
	}
	rep, err := core.Identify(c, core.HeuristicPinOrder, core.Options{Checkpoint: cp})
	if err != nil {
		t.Fatalf("resuming drain checkpoint: %v", err)
	}
	if rep.Status != core.StatusComplete || rep.Selected != ref.Selected || rep.RD.Cmp(ref.RD) != 0 {
		t.Fatalf("resumed run status=%v selected=%d rd=%v; clean run selected=%d rd=%v",
			rep.Status, rep.Selected, rep.RD, ref.Selected, ref.RD)
	}

	// No goroutine leak: everything the server started must be gone.
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Queued jobs that never get to run during the drain window fail typed
// with ErrShutdown — refused, not silently dropped.
func TestDrainFailsQueuedJobsTyped(t *testing.T) {
	c := gen.RippleAdder(8, gen.XorNAND)
	s := newTestServer(t, Config{MaxInFlight: 1, Workers: 1, QueueDepth: 4})

	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	bench := benchOf(t, c)
	running, err := s.Submit(Request{Bench: bench, Name: "running", Heuristic: "pin"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Request{Bench: bench, Name: "queued", Heuristic: "pin"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 10*time.Second)

	s.Drain(time.Millisecond)

	for _, j := range []*Job{running, queued} {
		if _, err := j.Result(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("job %s: %v, want ErrShutdown", j.ID, err)
		}
	}
}
