package serve

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// benchOf serializes a generated circuit into the .bench text a client
// would POST.
func benchOf(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var b strings.Builder
	if err := circuit.WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// newTestServer builds a server with test-friendly sizes; Close is
// registered as cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.SpillDir == "" {
		cfg.SpillDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// waitJob polls until the job leaves the queue/run states.
func waitJob(t *testing.T, j *Job, timeout time.Duration) (*Answer, error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ans, err := j.Result()
		if !errors.Is(err, ErrNotDone) {
			return ans, err
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", j.ID, j.Info().State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, j *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for j.Info().State != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", j.ID, j.Info().State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitIdentifyEndToEnd(t *testing.T) {
	c := gen.PaperExample()
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{})
	j, err := s.Submit(Request{Bench: benchOf(t, c), Name: "paper", Heuristic: "heu2", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-1" {
		t.Fatalf("first job ID = %s, want job-1", j.ID)
	}
	ans, err := waitJob(t, j, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Tier != "fast" || ans.TierReason != "requested" {
		t.Fatalf("served tier=%s reason=%q, want fast/requested", ans.Tier, ans.TierReason)
	}
	if ans.RD != ref.RD.String() || ans.Selected != ref.Selected {
		t.Fatalf("served RD=%s selected=%d, reference RD=%v selected=%d",
			ans.RD, ans.Selected, ref.RD, ref.Selected)
	}
	if ans.TotalPaths != ref.TotalLogicalPaths.String() {
		t.Fatalf("served total=%s, reference %v", ans.TotalPaths, ref.TotalLogicalPaths)
	}
}

// TestSaturationShedsImmediately is the load-shedding acceptance test:
// with the single runner wedged and the queue full, the next submission
// must come back ErrSaturated with a Retry-After hint well within 100ms
// — load is shed at the door, not after a queueing delay. The cheap
// lane must keep answering while the heavy lane is saturated.
func TestSaturationShedsImmediately(t *testing.T) {
	// Wedge the only runner: the first budget reservation sleeps.
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointBudgetReserve,
		Kind:  faultinject.KindSleep,
		Delay: 1200 * time.Millisecond,
		Hit:   1,
	}))
	defer restore()

	s := newTestServer(t, Config{QueueDepth: 1, MaxInFlight: 1, RetryAfter: 3 * time.Second})
	bench := benchOf(t, gen.PaperExample())

	a, err := s.Submit(Request{Bench: bench, Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning, 2*time.Second) // runner picked it up, now wedged
	if _, err := s.Submit(Request{Bench: bench, Tier: "fast"}); err != nil {
		t.Fatalf("queue-filling submit failed: %v", err)
	}

	start := time.Now()
	_, err = s.Submit(Request{Bench: bench, Tier: "fast"})
	elapsed := time.Since(start)
	var sat *SaturatedError
	if !errors.As(err, &sat) || !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit on a full queue returned %v, want SaturatedError", err)
	}
	if sat.RetryAfter != 3*time.Second {
		t.Fatalf("Retry-After hint = %v, want 3s", sat.RetryAfter)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("load shedding took %v, must be under 100ms", elapsed)
	}

	// The cheap lane is an independent priority lane: still serving.
	if _, err := s.Count("cheap", bench); err != nil {
		t.Fatalf("count lane refused while identify lane saturated: %v", err)
	}
}

func TestCountLane(t *testing.T) {
	c := gen.PaperExample()
	s := newTestServer(t, Config{})
	ans, err := s.Count("paper", benchOf(t, c))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Tier != "count" || ans.RD != "0" {
		t.Fatalf("count lane served tier=%s RD=%s, want count/0", ans.Tier, ans.RD)
	}
	if ans.TotalPaths != ref.TotalLogicalPaths.String() {
		t.Fatalf("count lane total=%s, want %v", ans.TotalPaths, ref.TotalLogicalPaths)
	}
}

func TestAdmissionLimits(t *testing.T) {
	s := newTestServer(t, Config{MaxGates: 5, MaxRequestBytes: 1 << 20})
	bench := benchOf(t, gen.PaperExample())
	if _, err := s.Submit(Request{Bench: bench}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized circuit admitted: %v", err)
	}
	if _, err := s.Submit(Request{Bench: "INPUT(a"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed netlist: got %v, want ErrBadRequest", err)
	}
	if _, err := s.Submit(Request{Bench: bench, Heuristic: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown heuristic: got %v, want ErrBadRequest", err)
	}
	if _, err := s.Submit(Request{Bench: bench, Tier: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown tier: got %v, want ErrBadRequest", err)
	}
}

// TestCloseFailsPendingAndLeaksNothing: shutdown mid-flight cancels the
// running job, fails the queued ones with the typed shutdown error, and
// releases every goroutine the server started.
func TestCloseFailsPendingAndLeaksNothing(t *testing.T) {
	time.Sleep(20 * time.Millisecond) // let earlier tests' goroutines drain
	before := runtime.NumGoroutine()

	// Slow every enumeration task so the first job is reliably mid-run
	// at Close.
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: 5 * time.Millisecond,
	}))
	defer restore()

	s := New(Config{QueueDepth: 4, MaxInFlight: 1, Workers: 2, SpillDir: t.TempDir()})
	bench := benchOf(t, gen.RippleAdder(8, gen.XorNAND))
	running, err := s.Submit(Request{Bench: bench, Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning, 5*time.Second)
	queued, err := s.Submit(Request{Bench: bench, Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}

	s.Close()

	if _, err := s.Submit(Request{Bench: bench}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after Close: got %v, want ErrShutdown", err)
	}
	if _, err := queued.Result(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("queued job after Close: got %v, want ErrShutdown", err)
	}
	if _, err := running.Result(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("running job after Close: got %v, want ErrShutdown", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d before, %d after Close", before, n)
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(1000)
	r1, err := b.Reserve(600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reserve(600); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-reservation: got %v, want ErrBudget", err)
	}
	var be *BudgetError
	if _, err := b.Reserve(600); !errors.As(err, &be) || be.Need != 600 || be.Used != 600 {
		t.Fatalf("budget error detail: %v", err)
	}
	r2, err := b.Reserve(400)
	if err != nil {
		t.Fatal(err)
	}
	r1.Release()
	r1.Release() // idempotent
	if b.Used() != 400 {
		t.Fatalf("used=%d after release, want 400", b.Used())
	}

	// Shrink: the remaining reservation is the largest, so it is evicted.
	b.SetTotal(300)
	select {
	case <-r2.Evicted():
	default:
		t.Fatal("shrinking below the outstanding total did not evict")
	}
	if b.Used() != 0 {
		t.Fatalf("used=%d after eviction, want 0", b.Used())
	}
	r2.Release() // no-op after eviction
	if b.Used() != 0 {
		t.Fatalf("release after eviction double-freed: used=%d", b.Used())
	}
}

func TestBudgetEvictsLargestFirst(t *testing.T) {
	b := NewBudget(1000)
	small, _ := b.Reserve(200)
	large, _ := b.Reserve(700)
	b.SetTotal(400)
	select {
	case <-large.Evicted():
	default:
		t.Fatal("largest reservation not evicted")
	}
	select {
	case <-small.Evicted():
		t.Fatal("small reservation evicted although the ledger already fit")
	default:
	}
	if b.Used() != 200 {
		t.Fatalf("used=%d, want 200", b.Used())
	}
}

func TestBudgetInjectedReserveFailure(t *testing.T) {
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointBudgetReserve,
		Kind:  faultinject.KindError,
		Count: 1,
	}))
	defer restore()
	b := NewBudget(1000)
	if _, err := b.Reserve(10); !errors.Is(err, ErrBudget) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected reserve failure: got %v, want ErrBudget+ErrInjected", err)
	}
	if _, err := b.Reserve(10); err != nil {
		t.Fatalf("reserve after injected failure: %v", err)
	}
}

func TestEstimateMonotoneDownTheLadder(t *testing.T) {
	for _, c := range []*circuit.Circuit{gen.PaperExample(), gen.RippleAdder(8, gen.XorNAND)} {
		for _, workers := range []int{1, 2, 8} {
			prev := int64(-1)
			for tier := TierCount; ; tier-- {
				est := estimateBytes(c, tier, workers)
				if est <= prev {
					t.Fatalf("%s workers=%d: estimate(%v)=%d not above the tier below (%d)",
						c.Name(), workers, tier, est, prev)
				}
				prev = est
				if tier == TierExact {
					break
				}
			}
		}
	}
}
