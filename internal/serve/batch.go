package serve

import (
	"fmt"
	"net/http"
	"time"
)

// BatchItem is one request's outcome inside a batch submission: either
// an accepted job or that item's typed admission error. Items are
// independent — one oversized or shed request never poisons its
// neighbors.
type BatchItem struct {
	Job *Job
	Err error
}

// SubmitBatch admits each request through exactly the same path as N
// sequential Submit calls — same admission checks, same queue, same
// shedding, same ladder per job — so a batch of N jobs is
// indistinguishable from N individual submissions except for the single
// round trip. Item order is preserved and job IDs are assigned in item
// order.
func (s *Server) SubmitBatch(reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	accepted := 0
	for i, req := range reqs {
		j, err := s.Submit(req)
		items[i] = BatchItem{Job: j, Err: err}
		if err == nil {
			accepted++
		}
	}
	s.metrics.batches.Inc()
	s.metrics.batchJobs.Add(int64(accepted))
	s.emit("batch.submitted", "", "", map[string]int64{
		"jobs": int64(len(reqs)), "accepted": int64(accepted),
	})
	return items
}

// httpBatchRequest is the JSON body of POST /v1/batch.
type httpBatchRequest struct {
	Jobs []httpRequest `json:"jobs"`
}

// httpBatchItem mirrors BatchItem on the wire: exactly one of Info or
// Error is set.
type httpBatchItem struct {
	Info       *Info  `json:"info,omitempty"`
	Error      string `json:"error,omitempty"`
	RetryAfter int64  `json:"retry_after_ms,omitempty"`
}

// handleBatch is POST /v1/batch. The response is always 202 when the
// batch itself parses: per-item admission failures ride inside the item
// list, because a half-accepted batch is the normal outcome under load
// shedding and the caller needs to know exactly which items to retry.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req httpBatchRequest
	// A batch body legitimately carries many netlists; the per-item
	// admission limit is still enforced precisely by each Submit.
	if err := s.decodeBodyLimit(w, r, &req, 8*s.cfg.MaxRequestBytes+4096); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, fmt.Errorf("%w: batch has no jobs", ErrBadRequest))
		return
	}
	reqs := make([]Request, len(req.Jobs))
	for i, hr := range req.Jobs {
		reqs[i] = Request{
			Bench:     hr.Bench,
			Name:      hr.Name,
			Heuristic: hr.Heuristic,
			Tier:      hr.Tier,
			Timeout:   time.Duration(hr.TimeoutMS) * time.Millisecond,
		}
	}
	items := s.SubmitBatch(reqs)
	out := make([]httpBatchItem, len(items))
	for i, it := range items {
		if it.Err != nil {
			out[i].Error = it.Err.Error()
			if sat, ok := it.Err.(*SaturatedError); ok {
				out[i].RetryAfter = sat.RetryAfter.Milliseconds()
			}
			continue
		}
		info := it.Job.Info()
		out[i].Info = &info
	}
	writeJSON(w, http.StatusAccepted, map[string][]httpBatchItem{"jobs": out})
}
