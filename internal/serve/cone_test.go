package serve

import (
	"encoding/json"
	"errors"
	"math/big"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// coneDispatch renders one cone of c plus the projected global sort as
// the wire-format request the fleet coordinator sends.
func coneDispatch(t *testing.T, c *circuit.Circuit, sort circuit.InputSort, po circuit.GateID) ConeRequest {
	t.Helper()
	cone, mapping, err := c.Cone(po)
	if err != nil {
		t.Fatalf("Cone: %v", err)
	}
	proj := sort.Cone(mapping)
	return ConeRequest{
		Bench: benchOf(t, cone),
		Name:  cone.Name(),
		Sort:  proj.ByName(cone),
	}
}

// The serve-level merge invariant the whole fleet rests on: per-cone
// slices under the globally-computed sort, summed, reproduce the
// whole-circuit Selected/RD/Total bit-for-bit.
func TestConeAnswersSumToWholeCircuitRun(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sort, err := jobSort(c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{MaxConeInFlight: 4})
	var selected int64
	total, rd := new(big.Int), new(big.Int)
	for _, po := range c.Outputs() {
		req := coneDispatch(t, c, sort, po)
		ans, err := s.Cone(req)
		if err != nil {
			t.Fatalf("cone %s: %v", req.Name, err)
		}
		if ans.Status != "complete" {
			t.Fatalf("cone %s ended %q", req.Name, ans.Status)
		}
		selected += ans.Selected
		addDecimal(t, total, ans.TotalPaths)
		addDecimal(t, rd, ans.RD)
	}
	if total.Cmp(ref.TotalLogicalPaths) != 0 || selected != ref.Selected || rd.Cmp(ref.RD) != 0 {
		t.Fatalf("merged total=%s selected=%d rd=%s; whole-circuit run says total=%s selected=%d rd=%s",
			total, selected, rd, ref.TotalLogicalPaths, ref.Selected, ref.RD)
	}
}

// The FS baseline needs no sort and must sum the same way.
func TestConeFSCriterionSums(t *testing.T) {
	c := gen.RippleAdder(4, gen.XorNAND)
	ref, err := core.Identify(c, core.HeuristicFUS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{})
	var selected int64
	total := new(big.Int)
	for _, po := range c.Outputs() {
		cone, _, err := c.Cone(po)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := s.Cone(ConeRequest{Bench: benchOf(t, cone), Name: cone.Name(), Criterion: "FS"})
		if err != nil {
			t.Fatalf("cone %s: %v", cone.Name(), err)
		}
		selected += ans.Selected
		addDecimal(t, total, ans.TotalPaths)
	}
	if total.Cmp(ref.TotalLogicalPaths) != 0 || selected != ref.Selected {
		t.Fatalf("merged total=%s selected=%d; whole-circuit FS run says total=%s selected=%d",
			total, selected, ref.TotalLogicalPaths, ref.Selected)
	}
}

// A slice chain — dispatch, expire, resume from the returned checkpoint,
// repeat — must land on exactly the counters of an uninterrupted run.
// This is the failover path: any later slice could run on a different
// worker, since both sides parse the same bench text.
func TestConeSliceChainMatchesOneShot(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	sort, err := jobSort(c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs()
	req := coneDispatch(t, c, sort, outs[len(outs)-1]) // the widest cone

	s := newTestServer(t, Config{})
	oneShot, err := s.Cone(req)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Status != "complete" {
		t.Fatalf("one-shot run ended %q", oneShot.Status)
	}

	// Slow every enumeration task so 5ms slices genuinely expire.
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	var final *ConeAnswer
	interrupted := 0
	chain := req
	chain.SliceMS = 5
	chain.Workers = 1
	for hop := 0; ; hop++ {
		if hop > 500 {
			t.Fatalf("slice chain made no progress after %d hops", hop)
		}
		ans, err := s.Cone(chain)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if hop > 0 && !ans.Resumed {
			t.Fatalf("hop %d not marked resumed", hop)
		}
		if ans.Status == "complete" {
			final = ans
			break
		}
		if ans.Status != "deadline" && ans.Status != "canceled" {
			t.Fatalf("hop %d ended %q", hop, ans.Status)
		}
		if len(ans.Checkpoint) == 0 {
			t.Fatalf("hop %d interrupted without a checkpoint", hop)
		}
		interrupted++
		chain.Checkpoint = ans.Checkpoint
	}
	if interrupted == 0 {
		t.Fatalf("no slice expired; the chain proved nothing")
	}
	if final.TotalPaths != oneShot.TotalPaths || final.Selected != oneShot.Selected ||
		final.RD != oneShot.RD || final.Segments != oneShot.Segments {
		t.Fatalf("chained run total=%s selected=%d rd=%s segments=%d; one-shot total=%s selected=%d rd=%s segments=%d",
			final.TotalPaths, final.Selected, final.RD, final.Segments,
			oneShot.TotalPaths, oneShot.Selected, oneShot.RD, oneShot.Segments)
	}
}

// An unusable checkpoint must answer the typed 422 error — corrupt bytes
// and wrong-circuit fingerprints both land there, never a wrong answer.
func TestConeBadCheckpointIsTyped(t *testing.T) {
	c := gen.RippleAdder(4, gen.XorNAND)
	sort, err := jobSort(c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{})
	req := coneDispatch(t, c, sort, c.Outputs()[0])

	req.Checkpoint = json.RawMessage(`{"version":999,"garbage":true}`)
	if _, err := s.Cone(req); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("corrupt checkpoint: got %v, want ErrBadCheckpoint", err)
	}

	// A valid checkpoint from a different cone must be rejected by the
	// fingerprint, not silently resumed.
	other := coneDispatch(t, c, sort, c.Outputs()[1])
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	other.SliceMS = 1
	other.Workers = 1
	ans, err := s.Cone(other)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Checkpoint) == 0 {
		t.Skip("slice completed before expiring; no foreign checkpoint to test with")
	}
	req.Checkpoint = ans.Checkpoint
	if _, err := s.Cone(req); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("foreign checkpoint: got %v, want ErrBadCheckpoint", err)
	}
}

// The cone lane sheds load with its own saturation error and counts the
// shed in Health — the fleet's backpressure signal.
func TestConeLaneSheds(t *testing.T) {
	c := gen.RippleAdder(4, gen.XorNAND)
	sort, err := jobSort(c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{MaxConeInFlight: 1})
	req := coneDispatch(t, c, sort, c.Outputs()[0])

	// Wedge the first slice inside its budget reservation so the lane is
	// provably occupied when the second arrives.
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointBudgetReserve,
		Kind:  faultinject.KindSleep,
		Delay: 300 * time.Millisecond,
		Hit:   1,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	done := make(chan error, 1)
	go func() {
		_, err := s.Cone(req)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Health().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first slice never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	var sat *SaturatedError
	_, err = s.Cone(req)
	if !errors.As(err, &sat) || sat.Lane != "cone" {
		t.Fatalf("second slice got %v, want cone-lane saturation", err)
	}
	if got := s.Health().Shed; got != 1 {
		t.Fatalf("Health.Shed = %d, want 1", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("wedged slice failed: %v", err)
	}
}

// addDecimal accumulates a decimal string counter into sum.
func addDecimal(t *testing.T, sum *big.Int, s string) {
	t.Helper()
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		t.Fatalf("bad decimal counter %q", s)
	}
	sum.Add(sum, v)
}
