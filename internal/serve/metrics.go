package serve

import "rdfault/internal/telemetry"

// serveMetrics is the server's Prometheus surface. Counters follow the
// lifecycle event log one-for-one (the chaos suite cross-checks them);
// the gauges read live server state through closures, so a scrape is
// always current without any bookkeeping on the serving paths.
type serveMetrics struct {
	reg *telemetry.Registry

	jobsSubmitted   *telemetry.Counter
	jobsCompleted   *telemetry.CounterVec
	tierServed      *telemetry.CounterVec
	shed            *telemetry.CounterVec
	batches         *telemetry.Counter
	batchJobs       *telemetry.Counter
	coneSlices      *telemetry.Counter
	budgetEvictions *telemetry.Counter
	storeLookups    *telemetry.CounterVec
	storeCones      *telemetry.CounterVec
	storeCorrupt    *telemetry.Counter
	sseStreams      *telemetry.Counter
	sseActive       *telemetry.Gauge
	jobSeconds      *telemetry.Histogram
	journalRecords  *telemetry.Counter
	journalStale    *telemetry.Counter
}

func newServeMetrics(s *Server) *serveMetrics {
	r := telemetry.NewRegistry()
	m := &serveMetrics{reg: r}
	m.jobsSubmitted = r.NewCounter("rd_serve_jobs_submitted_total",
		"Heavy-lane submissions assigned a job ID (shed submissions included).")
	m.jobsCompleted = r.NewCounterVec("rd_serve_jobs_completed_total",
		"Jobs reaching a terminal state, by outcome.", "state")
	m.tierServed = r.NewCounterVec("rd_serve_tier_served_total",
		"Answers produced, by served ladder tier.", "tier")
	m.shed = r.NewCounterVec("rd_serve_shed_total",
		"Requests refused with ErrSaturated, by lane.", "lane")
	m.batches = r.NewCounter("rd_serve_batches_total",
		"Batch submissions processed.")
	m.batchJobs = r.NewCounter("rd_serve_batch_jobs_total",
		"Jobs admitted through batch submissions.")
	m.coneSlices = r.NewCounter("rd_serve_cone_slices_total",
		"Cone-slice requests admitted on the fleet lane.")
	m.budgetEvictions = r.NewCounter("rd_serve_budget_evictions_total",
		"Running jobs evicted by a memory-budget shrink.")
	m.storeLookups = r.NewCounterVec("rd_serve_store_lookups_total",
		"Store-served fast answers, by outcome (hit/delta/miss).", "outcome")
	m.storeCones = r.NewCounterVec("rd_serve_store_cones_total",
		"Output cones answered on store-served jobs, by source (store/fresh).", "source")
	m.storeCorrupt = r.NewCounter("rd_serve_store_corrupt_total",
		"Corrupt store entries detected and recomputed around.")
	m.sseStreams = r.NewCounter("rd_serve_sse_streams_total",
		"Progress streams opened.")
	m.sseActive = r.NewGauge("rd_serve_sse_active",
		"Progress streams open right now.")
	m.jobSeconds = r.NewHistogram("rd_serve_job_seconds",
		"Heavy-job wall time in seconds.", telemetry.DefBuckets)
	m.journalRecords = r.NewCounter("rd_serve_journal_records_total",
		"Journal records accepted on the follower lane.")
	m.journalStale = r.NewCounter("rd_serve_journal_stale_total",
		"Journal shipments rejected below the follower term floor.")
	r.NewCounterFunc("rd_serve_store_evictions_total",
		"Result-store entries evicted by the size cap.",
		func() int64 {
			if s.cfg.Store == nil {
				return 0
			}
			return s.cfg.Store.Stats().Evictions
		})
	r.NewGaugeFunc("rd_serve_queue_depth",
		"Jobs waiting in the heavy-lane queue.",
		func() float64 { return float64(len(s.queue)) })
	r.NewGaugeFunc("rd_serve_running",
		"Heavy jobs running right now.",
		func() float64 { return float64(s.running.Load()) })
	r.NewGaugeFunc("rd_serve_draining",
		"1 while intake is stopped for drain or shutdown.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	r.NewGaugeFunc("rd_serve_budget_used_bytes",
		"Reserved bytes outstanding in the memory ledger.",
		func() float64 { return float64(s.budget.Used()) })
	r.NewGaugeFunc("rd_serve_budget_total_bytes",
		"Memory ledger capacity in bytes.",
		func() float64 { return float64(s.budget.Total()) })
	return m
}
