package serve

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
	"rdfault/internal/store"
	"rdfault/internal/synth"
	"rdfault/internal/telemetry"
)

func newStoreServer(t *testing.T, cfg Config) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	return newTestServer(t, cfg), st
}

// A store-backed fast job answers normally on first sight and serves a
// relabeled resubmission as a pure hit: same counters, zero enumeration,
// labeled tier reason, lookup metrics and store.hit event.
func TestServeStoreHitOnResubmission(t *testing.T) {
	var events bytes.Buffer
	s, st := newStoreServer(t, Config{Telemetry: telemetry.NewLog(&events)})

	c := gen.ALU(6, gen.XorNAND)
	j1, err := s.Submit(Request{Bench: benchOf(t, c), Name: "alu", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := waitJob(t, j1, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Store != "miss" {
		t.Fatalf("first submission store label %q, want miss", cold.Store)
	}

	// Resubmit relabeled: byte-different netlist, same circuit.
	r, _, err := synth.Relabel(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(Request{Bench: benchOf(t, r), Name: "alu-v2", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := waitJob(t, j2, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Store != "hit" || warm.TierReason != "store hit" {
		t.Fatalf("resubmission store=%q reason=%q, want a store hit", warm.Store, warm.TierReason)
	}
	if warm.TotalPaths != cold.TotalPaths || warm.Selected != cold.Selected || warm.RD != cold.RD {
		t.Fatalf("hit served different counters: %+v vs %+v", warm, cold)
	}
	// The hit did no enumeration: the job's tracker never moved.
	if p := j2.Progress(); p.Segments != 0 {
		t.Fatalf("store hit walked %d segments", p.Segments)
	}
	if st.Stats().Hits == 0 {
		t.Fatal("store handle recorded no hits")
	}

	var dump bytes.Buffer
	s.Metrics().WritePrometheus(&dump)
	for _, want := range []string{
		`rd_serve_store_lookups_total{outcome="miss"} 1`,
		`rd_serve_store_lookups_total{outcome="hit"} 1`,
	} {
		if !strings.Contains(dump.String(), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, dump.String())
		}
	}
	evs, err := telemetry.ParseJSONL(events.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds["store.miss"] != 1 || kinds["store.hit"] != 1 {
		t.Fatalf("store events %v, want one miss and one hit", kinds)
	}
}

// An ECO revision of a stored circuit is served as a delta: changed
// cones fresh, the rest from the store, counters equal to a cold run.
func TestServeStoreDeltaOnECO(t *testing.T) {
	s, _ := newStoreServer(t, Config{})
	base := gen.ALU(6, gen.XorNAND)
	revised, _, err := store.MutateKCones(base, 1, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Cold reference on a store-less server.
	ref := newTestServer(t, Config{})
	jr, err := ref.Submit(Request{Bench: benchOf(t, revised), Name: "ref", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := waitJob(t, jr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	for _, sub := range []struct {
		bench, name, store string
	}{
		{benchOf(t, base), "base", "miss"},
		{benchOf(t, revised), "revised", "delta"},
	} {
		j, err := s.Submit(Request{Bench: sub.bench, Name: sub.name, Heuristic: "heu1", Tier: "fast"})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := waitJob(t, j, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Store != sub.store {
			t.Fatalf("%s: store label %q, want %q (reason %q)", sub.name, ans.Store, sub.store, ans.TierReason)
		}
		if sub.store == "delta" {
			if ans.TotalPaths != want.TotalPaths || ans.Selected != want.Selected || ans.RD != want.RD {
				t.Fatalf("delta diverges from cold run: %+v vs %+v", ans, want)
			}
			if !strings.HasPrefix(ans.TierReason, "store delta: reused ") {
				t.Fatalf("delta reason %q", ans.TierReason)
			}
		}
	}
}

// Corrupt store entries under the serving path degrade to
// recomputation: correct counters, rd_serve_store_corrupt_total > 0.
func TestServeStoreCorruptDegrades(t *testing.T) {
	s, _ := newStoreServer(t, Config{})
	c := gen.ALU(6, gen.XorNAND)

	// Populate with rotting writes.
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointStoreCorrupt,
		Kind:  faultinject.KindCorrupt,
		Seed:  7,
	}))
	j1, err := s.Submit(Request{Bench: benchOf(t, c), Name: "alu", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		restore()
		t.Fatal(err)
	}
	cold, err := waitJob(t, j1, 30*time.Second)
	restore()
	if err != nil {
		t.Fatal(err)
	}

	j2, err := s.Submit(Request{Bench: benchOf(t, c), Name: "alu", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := waitJob(t, j2, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalPaths != cold.TotalPaths || warm.Selected != cold.Selected || warm.RD != cold.RD {
		t.Fatal("corrupt store changed the served answer")
	}
	var dump bytes.Buffer
	s.Metrics().WritePrometheus(&dump)
	if !strings.Contains(dump.String(), "rd_serve_store_corrupt_total") ||
		strings.Contains(dump.String(), "rd_serve_store_corrupt_total 0\n") {
		t.Fatalf("corrupt counter did not move:\n%s", dump.String())
	}
}

// Without a store the fast rung is byte-for-byte the old path: no Store
// label, no store metrics movement.
func TestServeNoStoreUnchanged(t *testing.T) {
	s := newTestServer(t, Config{})
	j, err := s.Submit(Request{Bench: benchOf(t, gen.PaperExample()), Name: "paper", Heuristic: "heu1", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := waitJob(t, j, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Store != "" || ans.TierReason != "requested" {
		t.Fatalf("store-less answer carries store state: %+v", ans)
	}
	rep, err := core.Identify(gen.PaperExample(), core.Heuristic1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.RD != rep.RD.String() {
		t.Fatalf("RD %s, want %s", ans.RD, rep.RD.String())
	}
}
