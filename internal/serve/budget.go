package serve

import (
	"errors"
	"fmt"
	"sync"

	"rdfault/internal/faultinject"
)

// ErrBudget is the sentinel for a denied or revoked memory reservation;
// match with errors.Is. The concrete *BudgetError carries the numbers.
var ErrBudget = errors.New("serve: memory budget exhausted")

// BudgetError reports a reservation the budget could not honor.
type BudgetError struct {
	Need  int64
	Used  int64
	Total int64
}

// Error renders the accounting.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("serve: memory budget exhausted (need %d, used %d of %d)",
		e.Need, e.Used, e.Total)
}

// Unwrap matches errors.Is(err, ErrBudget).
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Budget is the service's declared-memory ledger. Jobs reserve the
// estimated live bytes of the tier they are about to run (see
// estimateBytes); the ladder steps a job down a tier when its
// reservation is denied. Shrinking the budget below the outstanding
// total (SetTotal — the memory-pressure hook) revokes reservations
// largest-first: each revoked holder is signalled through its Evicted
// channel and is expected to cancel, checkpoint and degrade.
//
// The ledger tracks declared estimates, not malloc truth — the point is
// admission control and orderly degradation, not byte-exact accounting.
type Budget struct {
	mu    sync.Mutex
	total int64
	used  int64
	resvs map[*Reservation]struct{}
	// onEvict observes each revoked reservation's size. Set before the
	// ledger is shared; called outside b.mu so it may take other locks.
	onEvict   func(bytes int64)
	evictions int64 // revocations so far (under mu)
}

// Reservation is one job's claim on the budget.
type Reservation struct {
	b     *Budget
	bytes int64
	evict chan struct{}
	done  bool // released or evicted (under b.mu)
}

// NewBudget returns a ledger with the given capacity in bytes.
func NewBudget(total int64) *Budget {
	return &Budget{total: total, resvs: make(map[*Reservation]struct{})}
}

// Reserve claims n bytes, or returns a *BudgetError when they are not
// available. Fault-injection point: faultinject.PointBudgetReserve (a
// KindError rule makes the reservation fail like memory exhaustion).
func (b *Budget) Reserve(n int64) (*Reservation, error) {
	if err := faultinject.Fire(faultinject.PointBudgetReserve); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBudget, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.total {
		return nil, &BudgetError{Need: n, Used: b.used, Total: b.total}
	}
	r := &Reservation{b: b, bytes: n, evict: make(chan struct{})}
	b.used += n
	b.resvs[r] = struct{}{}
	return r, nil
}

// Bytes returns the reserved size.
func (r *Reservation) Bytes() int64 { return r.bytes }

// Evicted is closed when the budget revokes this reservation; the
// holder must stop, checkpoint and degrade. The bytes are returned to
// the ledger at revocation, not at Release.
func (r *Reservation) Evicted() <-chan struct{} { return r.evict }

// Release returns the bytes to the ledger; idempotent, and a no-op
// after eviction (the evictor already reclaimed them).
func (r *Reservation) Release() {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	b.used -= r.bytes
	delete(b.resvs, r)
}

// Used reports the outstanding reserved bytes.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Total reports the capacity.
func (b *Budget) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// SetTotal resizes the budget and returns the previous capacity.
// Shrinking below the outstanding total revokes reservations
// largest-first until the ledger fits; each victim's Evicted channel is
// closed. This is the external memory-pressure hook (watchdog, cgroup
// notification, operator).
func (b *Budget) SetTotal(n int64) int64 {
	b.mu.Lock()
	prev := b.total
	b.total = n
	var evicted []int64
	for b.used > b.total {
		var victim *Reservation
		for r := range b.resvs {
			if victim == nil || r.bytes > victim.bytes ||
				(r.bytes == victim.bytes && victim.done) {
				victim = r
			}
		}
		if victim == nil {
			break
		}
		victim.done = true
		b.used -= victim.bytes
		delete(b.resvs, victim)
		close(victim.evict)
		b.evictions++
		evicted = append(evicted, victim.bytes)
	}
	b.mu.Unlock()
	if b.onEvict != nil {
		for _, bytes := range evicted {
			b.onEvict(bytes)
		}
	}
	return prev
}

// Evictions counts reservations revoked by budget shrinks since start.
func (b *Budget) Evictions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evictions
}
