package serve

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
)

// Tier is one rung of the graceful-degradation ladder, ordered from the
// most expensive answer to the cheapest. Every rung is sound with
// respect to the rung above it because all rungs of one job share the
// same input sort σ: LP ⊆ LP^sup(σ) for any sort, so the RD set served
// by a lower rung is always a subset of the exact RD set — degradation
// can lose precision (fewer paths proven RD) but never correctness (a
// path falsely declared RD).
type Tier uint8

const (
	// TierExact: SAT-verified Identify; the served RD set is exactly the
	// complement of LP.
	TierExact Tier = iota
	// TierFast: the approximate Identify of the paper; RD is the
	// complement of LP^sup(σ^π).
	TierFast
	// TierCertificate: serial CollectRDSegments; same RD set as TierFast
	// (same sort), delivered as a compact prime-segment certificate with
	// bounded memory (no work-stealing deques, no SAT).
	TierCertificate
	// TierCount: path counting only; the served RD set is empty
	// (trivially sound) and the answer is just |LP(C)|.
	TierCount
	numTiers
)

var tierNames = [numTiers]string{"exact", "fast", "certificate", "count"}

// String names the tier as it appears in responses.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// ParseTier maps a request string to a ladder rung.
func ParseTier(s string) (Tier, error) {
	for t, name := range tierNames {
		if s == name {
			return Tier(t), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown tier %q (want exact|fast|certificate|count)", s)
}

// estimateBytes is the declared memory model of each tier: the bytes a
// job reserves from the Budget before running that rung. It is a
// deterministic, documented estimate (per-worker DFS state, implication
// engines, SAT clause arena for the exact tier), not a malloc
// measurement — strictly decreasing down the ladder so stepping down
// always asks the budget for less.
func estimateBytes(c *circuit.Circuit, t Tier, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	g := int64(c.NumGates())
	l := int64(c.NumLeads())
	base := int64(64<<10) + 96*g + 16*l // counts, levels, fanout tables
	engine := 256*g + 16*l              // one serial implication engine + frontier
	switch t {
	case TierCount:
		return base
	case TierCertificate:
		return base + engine
	case TierFast:
		return base + engine + int64(workers)*(192*g+32*l)
	default: // TierExact
		return base + engine + int64(workers)*(192*g+32*l+768*g)
	}
}

// Answer is the served result of a job, labeled with the tier that
// produced it and why that tier was chosen.
type Answer struct {
	// Tier is the ladder rung that produced this answer.
	Tier string `json:"tier"`
	// TierReason is "requested" when the job ran at its requested rung,
	// or a "degraded: ..." chain naming every step down and its cause.
	TierReason string `json:"tier_reason"`
	// Resumed is true when the rung resumed from a checkpoint spilled by
	// an evicted higher rung instead of restarting.
	Resumed bool `json:"resumed,omitempty"`
	// Store labels a store-served fast answer: "hit" (served verbatim,
	// zero enumeration), "delta" (changed cones re-enumerated, the rest
	// reused) or "miss" (computed in full, persisted for next time).
	// Empty when the job ran without a store.
	Store     string `json:"store,omitempty"`
	Circuit   string `json:"circuit"`
	Heuristic string `json:"heuristic,omitempty"`
	// Exact is true only for TierExact answers (SAT-verified RD set).
	Exact bool `json:"exact,omitempty"`
	// TotalPaths is |LP(C)| as a decimal string (it overflows int64 on
	// real circuits).
	TotalPaths string `json:"total_paths"`
	// Selected is the size of the served selected set (paths still to be
	// delay-tested); 0 for TierCount.
	Selected int64 `json:"selected,omitempty"`
	// RD is the number of paths this answer proves robust dependent, as
	// a decimal string; "0" for TierCount (empty RD set).
	RD        string  `json:"rd,omitempty"`
	RDPercent float64 `json:"rd_percent,omitempty"`
	// Segments is the prime-segment count for TierCertificate answers.
	Segments   int   `json:"segments,omitempty"`
	DurationMS int64 `json:"duration_ms"`
}

// stepDown is a tier failure the ladder answers by degrading one rung;
// any other error aborts the job.
type stepDown struct {
	cause error
	note  string
}

func (e *stepDown) Error() string { return fmt.Sprintf("serve: step down: %s", e.note) }
func (e *stepDown) Unwrap() error { return e.cause }

// downNote classifies a tier failure for the TierReason chain.
func downNote(err error) string {
	switch {
	case errors.Is(err, ErrBudget):
		return "memory budget"
	case errors.Is(err, core.ErrWorkerPanic):
		return "worker panic"
	case errors.Is(err, core.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, faultinject.ErrInjected):
		return "injected fault"
	}
	return "error"
}

// runLadder executes j starting at its requested tier and walks down the
// ladder until a rung serves an answer. ctx is the job's context
// (deadline included); the server's base context aborts the whole job on
// shutdown.
func (s *Server) runLadder(ctx context.Context, j *Job) (*Answer, error) {
	var steps []string
	var spill string // checkpoint spilled by an evicted exact rung
	resumed := false
	defer func() {
		if spill != "" {
			os.Remove(spill)
		}
	}()
	for tier := j.tier; tier < numTiers; tier++ {
		if err := s.baseCtx.Err(); err != nil {
			return nil, ErrShutdown
		}
		ans, err := s.runTier(ctx, j, tier, &spill, &resumed)
		if err == nil {
			if len(steps) == 0 {
				if ans.TierReason == "" {
					// A store-served rung labels its own reason.
					ans.TierReason = "requested"
				}
			} else {
				ans.TierReason = "degraded: " + strings.Join(steps, "; ")
			}
			ans.Resumed = resumed && tier != j.tier
			return ans, nil
		}
		var sd *stepDown
		if !errors.As(err, &sd) {
			return nil, err
		}
		if tier == numTiers-1 {
			return nil, fmt.Errorf("serve: bottom of the ladder failed: %w", sd.cause)
		}
		steps = append(steps, fmt.Sprintf("%v->%v: %s", tier, tier+1, sd.note))
	}
	return nil, errors.New("serve: ladder exhausted") // unreachable
}

// runTier runs one rung. A returned *stepDown degrades the job; any
// other error fails it.
func (s *Server) runTier(ctx context.Context, j *Job, tier Tier, spill *string, resumed *bool) (*Answer, error) {
	switch tier {
	case TierFast:
		if s.cfg.Store != nil && *spill == "" {
			// No spilled checkpoint to resume: serve through the store.
			// (A spill means an evicted exact rung already paid for part of
			// the walk; finishing it beats even a store delta.)
			return s.runStoreFast(ctx, j)
		}
		return s.runIdentifyTier(ctx, j, tier, spill, resumed)
	case TierExact:
		return s.runIdentifyTier(ctx, j, tier, spill, resumed)
	case TierCertificate:
		return s.runCertTier(ctx, j)
	default:
		return s.runCountTier(ctx, j)
	}
}

// runIdentifyTier runs the full Identify pipeline (exact or fast). The
// tier's budget reservation can be revoked mid-run (Evicted); the rung
// then cancels its enumeration, spills the checkpoint (exact rung only —
// the fast rung below shares criterion and sort, so it may resume; the
// certificate rung below fast cannot, a partial segment list is not a
// certificate) and steps down.
func (s *Server) runIdentifyTier(ctx context.Context, j *Job, tier Tier, spill *string, resumed *bool) (*Answer, error) {
	start := time.Now()
	resv, err := s.budget.Reserve(estimateBytes(j.circuit, tier, s.cfg.Workers))
	if err != nil {
		if errors.Is(err, ErrBudget) {
			return nil, &stepDown{cause: err, note: "memory budget"}
		}
		return nil, err
	}
	defer resv.Release()

	tierCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var evicted atomic.Bool
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-resv.Evicted():
			evicted.Store(true)
			cancel()
		case <-tierCtx.Done():
		}
	}()
	defer func() { cancel(); <-watchDone }()

	opt := core.Options{
		Workers:  s.cfg.Workers,
		Context:  tierCtx,
		Exact:    tier == TierExact,
		Progress: j.tracker,
	}
	if tier == TierFast && *spill != "" {
		// An evicted exact rung left a frontier behind; same circuit,
		// criterion and sort, so the fast rung finishes the walk instead
		// of restarting it. Mixed exact/fast counters stay sound:
		// LP ⊆ S ⊆ LP^sup either way.
		cp, rerr := core.ReadCheckpointFile(*spill)
		if rerr != nil {
			j.note(fmt.Sprintf("spilled checkpoint unusable (%v); restarting tier", rerr))
			os.Remove(*spill)
			*spill = ""
		} else {
			opt.Checkpoint = cp
			*resumed = true
		}
	}

	rep, err := core.Identify(j.circuit, j.heuristic, opt)
	if err != nil {
		// The sort passes were interrupted (no partial sort exists) or
		// the pipeline was misconfigured.
		switch {
		case evicted.Load():
			return nil, &stepDown{cause: ErrBudget, note: "memory budget"}
		case errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled),
			errors.Is(err, core.ErrWorkerPanic):
			if s.baseCtx.Err() != nil {
				return nil, ErrShutdown
			}
			return nil, &stepDown{cause: err, note: downNote(err)}
		}
		return nil, err
	}
	switch rep.Status {
	case core.StatusComplete:
		return &Answer{
			Tier:       tier.String(),
			Circuit:    j.circuit.Name(),
			Heuristic:  j.heuristic.String(),
			Exact:      tier == TierExact,
			TotalPaths: rep.TotalLogicalPaths.String(),
			Selected:   rep.Selected,
			RD:         rep.RD.String(),
			RDPercent:  rep.RDPercent(),
			DurationMS: time.Since(start).Milliseconds(),
		}, nil
	case core.StatusDeadline, core.StatusCanceled:
		if !evicted.Load() {
			if s.baseCtx.Err() != nil {
				// Shutdown killed the walk. A graceful drain keeps the
				// progress: the frontier goes to its own file (not the
				// ladder's eviction spill, which runLadder deletes) so an
				// operator or a coordinator can resume the job elsewhere.
				if s.draining.Load() && rep.Final != nil && rep.Final.Checkpoint != nil {
					var drainSpill string
					if err := s.spillCheckpointAs(j.ID+".drain.ckpt", rep.Final.Checkpoint, &drainSpill); err != nil {
						j.note(fmt.Sprintf("drain checkpoint spill failed (%v)", err))
					} else {
						j.note("drained: checkpoint spilled to " + drainSpill)
					}
				}
				return nil, ErrShutdown
			}
			return nil, &stepDown{cause: core.ErrDeadline, note: "deadline"}
		}
		// Evicted mid-walk: spill the frontier so the fast rung resumes.
		if tier == TierExact && rep.Final != nil && rep.Final.Checkpoint != nil {
			if err := s.spillCheckpoint(j, rep.Final.Checkpoint, spill); err != nil {
				j.note(fmt.Sprintf("checkpoint spill failed (%v); next tier restarts", err))
			}
		}
		return nil, &stepDown{cause: ErrBudget, note: "memory budget"}
	case core.StatusDegraded:
		// Workers panicked; the counters are partial and no checkpoint
		// can repair them. Never serve them — drop to a rung that
		// recomputes from scratch.
		return nil, &stepDown{cause: errors.Join(core.ErrWorkerPanic, rep.Final.Err), note: "worker panic"}
	}
	return nil, fmt.Errorf("serve: unexpected enumeration status %v", rep.Status)
}

// spillCheckpoint writes an evicted rung's frontier under the spill
// directory. Fault-injection point: faultinject.PointSpill (errors and
// slow I/O); corruption of the bytes themselves is injected one layer
// down at core.checkpoint.bytes.
func (s *Server) spillCheckpoint(j *Job, cp *core.Checkpoint, spill *string) error {
	return s.spillCheckpointAs(j.ID+".ckpt", cp, spill)
}

// spillCheckpointAs writes cp under the spill directory with an explicit
// file name; drain spills use a distinct name so the ladder's
// eviction-spill cleanup never deletes them.
func (s *Server) spillCheckpointAs(name string, cp *core.Checkpoint, spill *string) error {
	if err := faultinject.Fire(faultinject.PointSpill); err != nil {
		return err
	}
	path := filepath.Join(s.cfg.SpillDir, name)
	if err := core.WriteCheckpointFile(path, cp); err != nil {
		return err
	}
	*spill = path
	return nil
}

// runCertTier serves the compact prime-segment certificate: the serial
// enumeration with the same sort as the rungs above, so its RD set is
// identical to the fast rung's — only the representation shrinks.
func (s *Server) runCertTier(ctx context.Context, j *Job) (*Answer, error) {
	start := time.Now()
	if j.heuristic == core.HeuristicFUS {
		return nil, &stepDown{cause: errors.New("serve: no certificate for FUS"), note: "certificate needs an input sort (FUS has none)"}
	}
	resv, err := s.budget.Reserve(estimateBytes(j.circuit, TierCertificate, 1))
	if err != nil {
		if errors.Is(err, ErrBudget) {
			return nil, &stepDown{cause: err, note: "memory budget"}
		}
		return nil, err
	}
	defer resv.Release()

	tierCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var evicted atomic.Bool
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-resv.Evicted():
			evicted.Store(true)
			cancel()
		case <-tierCtx.Done():
		}
	}()
	defer func() { cancel(); <-watchDone }()

	sort, err := jobSort(j.circuit, j.heuristic)
	if err != nil {
		return nil, &stepDown{cause: err, note: downNote(err)}
	}
	cert, err := core.CollectRDSegments(j.circuit, sort, core.Options{Context: tierCtx, Progress: j.tracker})
	if err != nil {
		return nil, &stepDown{cause: err, note: downNote(err)}
	}
	res := cert.Result
	if res.Status != core.StatusComplete {
		// A partial segment list certifies nothing; no resume below this
		// rung either.
		cause := res.Err
		if evicted.Load() {
			cause = ErrBudget
		}
		if cause == nil {
			cause = fmt.Errorf("serve: certificate enumeration ended %v", res.Status)
		}
		if s.baseCtx.Err() != nil {
			return nil, ErrShutdown
		}
		return nil, &stepDown{cause: cause, note: downNote(cause)}
	}
	return &Answer{
		Tier:       TierCertificate.String(),
		Circuit:    j.circuit.Name(),
		Heuristic:  j.heuristic.String(),
		TotalPaths: res.Total.String(),
		Selected:   res.Selected,
		RD:         res.RD.String(),
		RDPercent:  ratioPercent(res.RD, res.Total),
		Segments:   len(cert.Segments),
		DurationMS: time.Since(start).Milliseconds(),
	}, nil
}

// runCountTier is the ladder's floor: the linear-time path count. Its RD
// set is empty, so it is trivially sound; if even its reservation is
// denied, the job fails with the budget error — there is nothing
// cheaper to serve.
func (s *Server) runCountTier(ctx context.Context, j *Job) (*Answer, error) {
	start := time.Now()
	resv, err := s.budget.Reserve(estimateBytes(j.circuit, TierCount, 1))
	if err != nil {
		return nil, err
	}
	defer resv.Release()
	if err := s.baseCtx.Err(); err != nil {
		return nil, ErrShutdown
	}
	total := analysis.For(j.circuit).CopyLogical()
	return &Answer{
		Tier:       TierCount.String(),
		Circuit:    j.circuit.Name(),
		Heuristic:  j.heuristic.String(),
		TotalPaths: total.String(),
		RD:         "0",
		DurationMS: time.Since(start).Milliseconds(),
	}, nil
}

// jobSort computes the input sort the job's heuristic prescribes. All
// rungs of one job use this same sort — that shared σ is what makes the
// ladder's subset guarantee hold. The heavy Heuristic-2 passes are
// memoized by the analysis manager, so a rung never recomputes a sort a
// higher rung already paid for.
func jobSort(c *circuit.Circuit, h core.Heuristic) (circuit.InputSort, error) {
	switch h {
	case core.Heuristic1:
		return core.Heuristic1Sort(c), nil
	case core.Heuristic2, core.Heuristic2Inverse:
		s, _, _, err := core.Heuristic2SortWorkers(c, 1)
		if err != nil {
			return circuit.InputSort{}, err
		}
		if h == core.Heuristic2Inverse {
			s = s.Inverse()
		}
		return s, nil
	case core.HeuristicPinOrder:
		return circuit.PinOrderSort(c), nil
	}
	return circuit.InputSort{}, fmt.Errorf("serve: heuristic %v has no input sort", h)
}

// ratioPercent is 100*num/den for big.Int counters (0 on empty circuits).
func ratioPercent(num, den *big.Int) float64 {
	if num == nil || den == nil || den.Sign() == 0 {
		return 0
	}
	q, _ := new(big.Float).Quo(new(big.Float).SetInt(num), new(big.Float).SetInt(den)).Float64()
	return 100 * q
}
