package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readFrames consumes SSE frames until the stream ends or max frames.
func readFrames(t *testing.T, r *bufio.Scanner, max int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
			if len(frames) >= max {
				return frames
			}
		}
	}
	return frames
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (the drain_test leak pattern).
func waitGoroutines(t *testing.T, baseline int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowPlan wedges enumeration so a job stays running long enough to
// stream against; pin-order jobs skip the sort passes so PointWorker
// hits mean the walk is live.
func slowPlan(t *testing.T) *faultinject.Plan {
	t.Helper()
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	t.Cleanup(restore)
	return plan
}

// TestStreamProgressToDone follows a job's stream end to end: frames
// are progress snapshots, the last frame is "done" and carries the
// final state with exact counters.
func TestStreamProgressToDone(t *testing.T) {
	s := newTestServer(t, Config{StreamInterval: 2 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(Request{Bench: benchOf(t, gen.PaperExample()), Heuristic: "heu2", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	frames := readFrames(t, bufio.NewScanner(resp.Body), 1000)
	if len(frames) == 0 {
		t.Fatal("stream delivered no frames")
	}
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("last frame is %q, want done", last.event)
	}
	for _, f := range frames[:len(frames)-1] {
		if f.event != "progress" {
			t.Fatalf("mid-stream frame is %q, want progress", f.event)
		}
	}
	var info Info
	if err := json.Unmarshal([]byte(last.data), &info); err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone || info.Progress == nil || !info.Progress.Final {
		t.Fatalf("done frame = %+v, want done state with final progress", info)
	}
	ans, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if info.Progress.Selected != ans.Selected {
		t.Fatalf("streamed selected=%d, served answer %d", info.Progress.Selected, ans.Selected)
	}
}

// TestStreamDisconnectNoLeak kills the client mid-stream; the handler
// must return (no subscriber bookkeeping survives the request).
func TestStreamDisconnectNoLeak(t *testing.T) {
	slowPlan(t)
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 1, StreamInterval: 2 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(Request{Bench: benchOf(t, gen.RippleAdder(10, gen.XorNAND)), Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 5*time.Second)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// One live frame proves the stream is up, then the client vanishes.
	readFrames(t, bufio.NewScanner(resp.Body), 1)
	cancel()
	resp.Body.Close()
	waitGoroutines(t, before, 5*time.Second)
	if v := s.metrics.sseActive.Value(); v != 0 {
		t.Fatalf("sse_active = %d after disconnect, want 0", v)
	}
}

// stallWriter accepts the first write, then fails like a write deadline
// expiring on a wedged subscriber.
type stallWriter struct {
	h      http.Header
	writes int
}

func (w *stallWriter) Header() http.Header { return w.h }
func (w *stallWriter) WriteHeader(int)     {}
func (w *stallWriter) Flush()              {}
func (w *stallWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("write deadline exceeded")
	}
	return len(b), nil
}

// TestStreamSlowReaderDisconnected: a subscriber that cannot drain its
// frames is cut off; the handler returns instead of wedging.
func TestStreamSlowReaderDisconnected(t *testing.T) {
	slowPlan(t)
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 1, StreamInterval: time.Millisecond})
	j, err := s.Submit(Request{Bench: benchOf(t, gen.RippleAdder(10, gen.XorNAND)), Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 5*time.Second)

	req := httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"/events", nil)
	req.SetPathValue("id", j.ID)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handleEvents(&stallWriter{h: make(http.Header)}, req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler wedged behind a stalled subscriber")
	}
	if v := s.metrics.sseActive.Value(); v != 0 {
		t.Fatalf("sse_active = %d after stall, want 0", v)
	}
}

// TestStreamDrainEndsStreams: a server drain terminates every open
// stream and leaves no goroutines behind.
func TestStreamDrainEndsStreams(t *testing.T) {
	slowPlan(t)
	s := newTestServer(t, Config{Workers: 1, MaxInFlight: 1, StreamInterval: 2 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(Request{Bench: benchOf(t, gen.RippleAdder(10, gen.XorNAND)), Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 5*time.Second)

	before := runtime.NumGoroutine()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	readFrames(t, bufio.NewScanner(resp.Body), 1)

	s.Drain(50 * time.Millisecond)
	// The stream must end (EOF or a final done frame), not hang.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		readFrames(t, bufio.NewScanner(resp.Body), 1000)
	}()
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("stream survived the drain")
	}
	waitGoroutines(t, before, 5*time.Second)
	if v := s.metrics.sseActive.Value(); v != 0 {
		t.Fatalf("sse_active = %d after drain, want 0", v)
	}
}
