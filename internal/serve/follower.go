package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	"rdfault/internal/fleet/journal"
)

// JournalShipment is the POST /v1/journal body: one or more encoded
// journal lines (no trailing newlines) from a fleet coordinator at
// Term. The follower lane is how a hot-standby rdserved mirrors the
// primary coordinator's write-ahead journal: each accepted shipment is
// validated, appended to the follower journal and fsynced before the
// 200 goes back, so everything the primary believes is shipped is
// durable on the standby.
type JournalShipment struct {
	Term  uint64   `json:"term"`
	Lines []string `json:"lines"`
}

// journalAccepted is the 200 body.
type journalAccepted struct {
	Status string `json:"status"`
	Term   uint64 `json:"term"`
}

// followerState is the follower lane's journal sink. The term floor
// is the fencing half of standby promotion: once a shipment at term T
// is accepted, any shipment below T answers 409 (ErrStaleCoordinator)
// — a deposed primary cannot keep feeding the standby.
type followerState struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	term    uint64
	records int64
	last    time.Time
}

// newFollowerState opens (or creates) the follower journal and scans
// what is already there: the term floor survives a standby restart. A
// corrupt tail is tolerated — the scan keeps the valid prefix's floor,
// and promotion replays with the same degrade-to-recompute rules as any
// recovery.
func newFollowerState(path string) (*followerState, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: follower journal %s: %w", path, err)
	}
	fs := &followerState{path: path, f: f}
	recs, _ := journal.ReadFile(path)
	for _, rec := range recs {
		if rec.Term > fs.term {
			fs.term = rec.Term
		}
	}
	fs.records = int64(len(recs))
	return fs, nil
}

// accept validates and appends one shipment. Every line must validate
// before any line is written — a shipment is all-or-nothing, so the
// follower journal never holds a half-applied batch.
func (fs *followerState) accept(req JournalShipment) error {
	recs := make([]journal.Record, 0, len(req.Lines))
	for i, line := range req.Lines {
		rec, err := journal.ValidateLine([]byte(line))
		if err != nil {
			return fmt.Errorf("%w: shipment line %d: %v", journal.ErrCorruptRecord, i, err)
		}
		recs = append(recs, rec)
	}

	fs.mu.Lock()
	defer fs.mu.Unlock()
	if req.Term < fs.term {
		return fmt.Errorf("serve: shipment term %d below follower floor %d: %w",
			req.Term, fs.term, journal.ErrStaleCoordinator)
	}
	fs.term = req.Term
	for _, line := range req.Lines {
		if _, err := fs.f.Write(append([]byte(line), '\n')); err != nil {
			return fmt.Errorf("serve: follower journal write: %w", err)
		}
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("serve: follower journal sync: %w", err)
	}
	fs.records += int64(len(recs))
	fs.last = time.Now()
	return nil
}

// advanceTerm raises the term floor without a shipment — the promotion
// hook: before a standby resumes from its follower journal, it fences
// the old primary's lane so no late shipment can land under the
// recovered run.
func (fs *followerState) advanceTerm(term uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if term > fs.term {
		fs.term = term
	}
}

func (fs *followerState) info() FollowerInfo {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return FollowerInfo{Path: fs.path, Term: fs.term, Records: fs.records, Last: fs.last}
}

func (fs *followerState) close() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f != nil {
		fs.f.Close()
		fs.f = nil
	}
}

// FollowerInfo is the follower lane's observable state. Last is the
// primary's liveness signal: journal shipments are the heartbeat, so a
// standby that sees Last go stale past its lapse window promotes.
type FollowerInfo struct {
	Path    string
	Term    uint64
	Records int64
	Last    time.Time
}

// FollowerInfo reports the follower lane's state; zero-valued when the
// lane is not configured.
func (s *Server) FollowerInfo() FollowerInfo {
	if s.follower == nil {
		return FollowerInfo{}
	}
	return s.follower.info()
}

// AdvanceFollowerTerm raises the follower lane's term floor (promotion
// fencing); a no-op without a configured lane.
func (s *Server) AdvanceFollowerTerm(term uint64) {
	if s.follower != nil {
		s.follower.advanceTerm(term)
	}
}
