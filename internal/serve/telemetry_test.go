package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
	"rdfault/internal/telemetry"
)

// TestBatchMatchesSequential is the batch acceptance property: a batch
// of N jobs produces exactly the answers of N sequential submissions.
func TestBatchMatchesSequential(t *testing.T) {
	reqs := []Request{
		{Bench: benchOf(t, gen.PaperExample()), Name: "a", Heuristic: "heu1", Tier: "fast"},
		{Bench: benchOf(t, gen.RippleAdder(4, gen.XorNAND)), Name: "b", Heuristic: "heu2", Tier: "fast"},
		{Bench: benchOf(t, gen.PaperExample()), Name: "c", Heuristic: "inverse", Tier: "certificate"},
	}

	seq := newTestServer(t, Config{Workers: 1})
	want := make([]*Answer, len(reqs))
	for i, r := range reqs {
		j, err := seq.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	bat := newTestServer(t, Config{Workers: 1, QueueDepth: len(reqs)})
	items := bat.SubmitBatch(reqs)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("batch item %d rejected: %v", i, it.Err)
		}
		got, err := it.Job.Wait(context.Background())
		if err != nil {
			t.Fatalf("batch item %d failed: %v", i, err)
		}
		w := want[i]
		if got.Tier != w.Tier || got.TierReason != w.TierReason ||
			got.Selected != w.Selected || got.RD != w.RD ||
			got.TotalPaths != w.TotalPaths || got.RDPercent != w.RDPercent ||
			got.Segments != w.Segments {
			t.Fatalf("batch item %d diverged from sequential:\nbatch: %+v\nseq:   %+v", i, got, w)
		}
	}
	if bat.metrics.batches.Value() != 1 || bat.metrics.batchJobs.Value() != int64(len(reqs)) {
		t.Fatalf("batch metrics = %d/%d, want 1/%d",
			bat.metrics.batches.Value(), bat.metrics.batchJobs.Value(), len(reqs))
	}
}

// TestEventLogByteDeterministic is the telemetry acceptance property:
// with a frozen faultinject clock, a serialized run writes the same
// event-log bytes, run after run.
func TestEventLogByteDeterministic(t *testing.T) {
	base := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	run := func() []byte {
		restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Point: faultinject.PointTelemetryClock,
			Kind:  faultinject.KindFreeze,
			Base:  base,
			Skew:  time.Millisecond,
		}))
		defer restore()
		var buf bytes.Buffer
		s := newTestServer(t, Config{
			Workers: 1, MaxInFlight: 1,
			Telemetry: telemetry.NewLog(&buf),
		})
		bench := benchOf(t, gen.PaperExample())
		for i := 0; i < 2; i++ {
			j, err := s.Submit(Request{Bench: bench, Heuristic: "heu2", Tier: "fast"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := j.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		s.Drain(time.Second)
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("frozen-clock event logs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	evs, err := telemetry.ParseJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []string{
		"job.submitted", "job.start", "job.done",
		"job.submitted", "job.start", "job.done",
		"drain.begin", "server.closed",
	}
	if len(evs) != len(wantKinds) {
		t.Fatalf("logged %d events, want %d:\n%s", len(evs), len(wantKinds), a)
	}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d is %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if !ev.TS.Equal(base.Add(time.Duration(i) * time.Millisecond)) {
			t.Fatalf("event %d timestamp %v not on the frozen clock", i, ev.TS)
		}
	}
	if evs[2].Fields["selected"] == 0 || evs[2].Fields["segments"] == 0 {
		t.Fatalf("job.done carries no progress counters: %+v", evs[2])
	}
}

// TestMetricsEventConsistency cross-checks the Prometheus counters
// against the event log: every shed, eviction and completion is counted
// by both, with the same totals.
func TestMetricsEventConsistency(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker,
		Kind:  faultinject.KindSleep,
		Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	var buf bytes.Buffer
	s := newTestServer(t, Config{
		Workers: 1, MaxInFlight: 1, QueueDepth: 1,
		Telemetry: telemetry.NewLog(&buf),
	})
	// Pin-order jobs skip the sort passes, so PointWorker hits mean the
	// enumeration (and its budget reservation) is live.
	slow := benchOf(t, gen.RippleAdder(10, gen.XorNAND))
	a, err := s.Submit(Request{Bench: slow, Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for plan.Hits(faultinject.PointWorker) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("enumeration never started")
		}
		time.Sleep(time.Millisecond)
	}
	b, err := s.Submit(Request{Bench: slow, Heuristic: "pin", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Bench: slow, Heuristic: "pin", Tier: "fast"}); err == nil {
		t.Fatal("third submission was not shed")
	}
	// Shrink the budget below the running job's reservation: it is
	// evicted and steps down the ladder (failing at the bottom, since no
	// rung fits in one byte).
	s.budget.SetTotal(1)
	_, _ = a.Wait(context.Background())
	_, _ = b.Wait(context.Background())
	s.Close()

	evs, err := telemetry.ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m := s.metrics
	if n := m.jobsSubmitted.Value(); n != 3 || telemetry.CountKind(evs, "job.submitted") != 3 {
		t.Fatalf("submitted: metric %d, events %d, want 3/3", n, telemetry.CountKind(evs, "job.submitted"))
	}
	shedMetric := m.shed.Value("identify") + m.shed.Value("count") + m.shed.Value("cone")
	if shedMetric != 1 || telemetry.CountKind(evs, "job.shed") != 1 {
		t.Fatalf("shed: metric %d, events %d, want 1/1", shedMetric, telemetry.CountKind(evs, "job.shed"))
	}
	if ev, met := telemetry.CountKind(evs, "budget.evict"), m.budgetEvictions.Value(); met == 0 || int64(ev) != met {
		t.Fatalf("evictions: metric %d, events %d, want equal and nonzero", met, ev)
	}
	if got := s.budget.Evictions(); got != m.budgetEvictions.Value() {
		t.Fatalf("budget ledger counts %d evictions, metric %d", got, m.budgetEvictions.Value())
	}
	completed := m.jobsCompleted.Value("done") + m.jobsCompleted.Value("failed")
	terminal := telemetry.CountKind(evs, "job.done") + telemetry.CountKind(evs, "job.failed")
	if completed != 2 || int64(terminal) != completed {
		t.Fatalf("completions: metric %d, events %d, want 2/2", completed, terminal)
	}
	if m.jobSeconds.Count() != 2 {
		t.Fatalf("duration histogram observed %d jobs, want 2", m.jobSeconds.Count())
	}
}
