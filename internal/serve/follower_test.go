// The follower lane: POST /v1/journal validation, term fencing, the
// all-or-nothing append discipline, and floor persistence across a
// standby restart.
package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfault/internal/fleet/journal"
)

// journalLines appends n records through a real writer and returns the
// encoded lines (newline-stripped, as a shipment carries them).
func journalLines(t *testing.T, term uint64, n int) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "feed.journal")
	jw, err := journal.Create(path, term, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := jw.Append(journal.KindLease, map[string]int{"cone": i}); err != nil {
			t.Fatal(err)
		}
	}
	jw.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("feed journal has %d lines, want %d", len(lines), n)
	}
	return lines
}

func shipBody(t *testing.T, term uint64, lines []string) string {
	t.Helper()
	b, err := json.Marshal(JournalShipment{Term: term, Lines: lines})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestFollowerLaneUnconfiguredIs404(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 1, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unconfigured lane answered %d, want 404", rec.Code)
	}
}

func TestFollowerLaneAppendsValidShipments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	lines := journalLines(t, 3, 4)

	rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 3, lines[:2]))
	if rec.Code != http.StatusOK {
		t.Fatalf("shipment answered %d: %s", rec.Code, rec.Body)
	}
	var acc journalAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Status != "accepted" || acc.Term != 3 {
		t.Fatalf("accepted body %+v", acc)
	}
	rec = do(s.Handler(), "POST", "/v1/journal", shipBody(t, 3, lines[2:]))
	if rec.Code != http.StatusOK {
		t.Fatalf("second shipment answered %d", rec.Code)
	}

	info := s.FollowerInfo()
	if info.Path != path || info.Term != 3 || info.Records != 4 {
		t.Fatalf("follower info %+v, want path=%s term=3 records=4", info, path)
	}
	if info.Last.IsZero() {
		t.Fatal("shipment recency not stamped; the heartbeat signal is dead")
	}
	recs, err := journal.ReadFile(path)
	if err != nil {
		t.Fatalf("follower journal unreadable: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("follower journal holds %d records, want 4", len(recs))
	}
	if got := s.metrics.journalRecords.Value(); got != 4 {
		t.Fatalf("rd_serve_journal_records_total = %d, want 4", got)
	}
}

func TestFollowerLaneFencesStaleTerms(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	high := journalLines(t, 5, 1)
	low := journalLines(t, 2, 1)

	if rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 5, high)); rec.Code != http.StatusOK {
		t.Fatalf("term-5 shipment answered %d", rec.Code)
	}
	rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 2, low))
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale shipment answered %d, want 409", rec.Code)
	}
	if got := s.FollowerInfo().Records; got != 1 {
		t.Fatalf("stale shipment changed the journal: %d records", got)
	}
	if got := s.metrics.journalStale.Value(); got != 1 {
		t.Fatalf("rd_serve_journal_stale_total = %d, want 1", got)
	}
}

func TestFollowerLaneRejectsCorruptShipmentsWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	lines := journalLines(t, 1, 2)
	// One valid line, one with its kind rotted (checksum mismatch): the
	// whole shipment must bounce.
	rotten := []string{lines[0], strings.Replace(lines[1],
		`"kind":"`+journal.KindLease, `"kind":"x`+journal.KindLease, 1)}
	if rotten[1] == lines[1] {
		t.Fatal("mutation missed; the test would pass vacuously")
	}

	rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 1, rotten))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt shipment answered %d, want 422", rec.Code)
	}
	if got := s.FollowerInfo().Records; got != 0 {
		t.Fatalf("corrupt shipment half-applied: %d records written", got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("corrupt shipment wrote %d bytes", len(raw))
	}
}

func TestFollowerTermFloorSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	if rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 7, journalLines(t, 7, 2))); rec.Code != http.StatusOK {
		t.Fatalf("shipment answered %d", rec.Code)
	}
	s.Close()

	// A restarted standby rescans the journal: the floor and record
	// count come back, and a pre-crash primary is still fenced.
	s2 := newTestServer(t, Config{FollowerJournal: path})
	info := s2.FollowerInfo()
	if info.Term != 7 || info.Records != 2 {
		t.Fatalf("restarted follower info %+v, want term=7 records=2", info)
	}
	rec := do(s2.Handler(), "POST", "/v1/journal", shipBody(t, 6, journalLines(t, 6, 1)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("pre-crash term accepted after restart: %d", rec.Code)
	}
}

func TestAdvanceFollowerTermFencesWithoutShipment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	s.AdvanceFollowerTerm(9)
	if got := s.FollowerInfo().Term; got != 9 {
		t.Fatalf("advanced floor reads %d, want 9", got)
	}
	rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 8, journalLines(t, 8, 1)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("shipment below the advanced floor answered %d, want 409", rec.Code)
	}
	// At the floor is fine — fencing is strictly-below.
	rec = do(s.Handler(), "POST", "/v1/journal", shipBody(t, 9, journalLines(t, 9, 1)))
	if rec.Code != http.StatusOK {
		t.Fatalf("shipment at the floor answered %d, want 200", rec.Code)
	}
}

func TestFollowerJournalResumesFromShippedCopy(t *testing.T) {
	// The promotion contract end to end at the serve layer: lines
	// shipped to the follower replay exactly as the primary wrote them.
	path := filepath.Join(t.TempDir(), "follower.journal")
	s := newTestServer(t, Config{FollowerJournal: path})
	lines := journalLines(t, 2, 3)
	for i, line := range lines {
		rec := do(s.Handler(), "POST", "/v1/journal", shipBody(t, 2, []string{line}))
		if rec.Code != http.StatusOK {
			t.Fatalf("shipment %d answered %d", i, rec.Code)
		}
	}
	recs, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records on the follower, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Term != 2 {
			t.Fatalf("record %d replayed as seq=%d term=%d", i, rec.Seq, rec.Term)
		}
		if rec.Kind != journal.KindLease {
			t.Fatalf("record %d kind %q", i, rec.Kind)
		}
	}
}
