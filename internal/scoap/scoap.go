// Package scoap computes the classic SCOAP testability measures
// (Goldstein 1979): combinational 0/1-controllability per gate and
// observability per gate output. They are the standard quick estimate of
// how hard a node is to control and observe, and this library also uses
// them as an alternative input-sort heuristic for RD identification — an
// extension experiment comparing a testability-driven sort against the
// paper's path-count-driven ones.
package scoap

import (
	"math"
	"sort"

	"rdfault/internal/circuit"
)

// Measures holds the SCOAP values for one circuit. All values use the
// standard convention: PIs have controllability 1; every gate adds 1 on
// the way through; POs have observability 0.
type Measures struct {
	c *circuit.Circuit
	// CC0[g], CC1[g]: effort to set gate g's output to 0 / 1.
	CC0, CC1 []float64
	// CO[g]: effort to observe gate g's output at some PO.
	CO []float64
}

// Compute derives all measures in two sweeps (controllability forward,
// observability backward).
func Compute(c *circuit.Circuit) *Measures {
	n := c.NumGates()
	m := &Measures{
		c:   c,
		CC0: make([]float64, n),
		CC1: make([]float64, n),
		CO:  make([]float64, n),
	}
	topo := c.TopoOrder()
	for _, g := range topo {
		t := c.Type(g)
		fanin := c.Fanin(g)
		switch t {
		case circuit.Input:
			m.CC0[g], m.CC1[g] = 1, 1
		case circuit.Output, circuit.Buf:
			m.CC0[g] = m.CC0[fanin[0]] + 1
			m.CC1[g] = m.CC1[fanin[0]] + 1
		case circuit.Not:
			m.CC0[g] = m.CC1[fanin[0]] + 1
			m.CC1[g] = m.CC0[fanin[0]] + 1
		default:
			// Controlled output: cheapest controlling input. All-non-
			// controlling output: sum of non-controlling efforts.
			ctrl, _ := t.Controlling()
			ctrlCost := math.Inf(1)
			nonSum := 0.0
			for _, f := range fanin {
				cCtrl, cNon := m.CC0[f], m.CC1[f]
				if ctrl {
					cCtrl, cNon = m.CC1[f], m.CC0[f]
				}
				if cCtrl < ctrlCost {
					ctrlCost = cCtrl
				}
				nonSum += cNon
			}
			outCtrl := ctrlCost + 1
			outNon := nonSum + 1
			// Map to output polarity.
			outWhenCtrl := ctrl != t.Inverting()
			if outWhenCtrl {
				m.CC1[g], m.CC0[g] = outCtrl, outNon
			} else {
				m.CC0[g], m.CC1[g] = outCtrl, outNon
			}
		}
	}
	// Observability: CO(PO)=0; CO(input of g) = CO(g) + cost of holding
	// the side inputs non-controlling + 1. A stem's CO is the best over
	// its branches.
	inf := math.Inf(1)
	for g := range m.CO {
		m.CO[g] = inf
	}
	for _, po := range c.Outputs() {
		m.CO[po] = 0
	}
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		t := c.Type(g)
		fanin := c.Fanin(g)
		if t == circuit.Input {
			continue
		}
		co := m.CO[g]
		if math.IsInf(co, 1) {
			continue
		}
		switch t {
		case circuit.Output, circuit.Buf, circuit.Not:
			if v := co + 1; v < m.CO[fanin[0]] {
				m.CO[fanin[0]] = v
			}
		default:
			ctrl, _ := t.Controlling()
			for pin, f := range fanin {
				side := 0.0
				for p2, f2 := range fanin {
					if p2 == pin {
						continue
					}
					if ctrl {
						side += m.CC0[f2]
					} else {
						side += m.CC1[f2]
					}
				}
				if v := co + side + 1; v < m.CO[f] {
					m.CO[f] = v
				}
			}
		}
	}
	return m
}

// LeadDifficulty scores the lead entering pin of gate g: the effort to
// drive it to the gate's controlling value plus the effort to observe the
// gate — a proxy for how rarely Algorithm 1 will be forced to rely on it.
func (m *Measures) LeadDifficulty(g circuit.GateID, pin int) float64 {
	t := m.c.Type(g)
	ctrl, ok := t.Controlling()
	src := m.c.Fanin(g)[pin]
	obs := m.CO[g]
	if math.IsInf(obs, 1) {
		obs = 0
	}
	if !ok {
		return obs
	}
	if ctrl {
		return m.CC1[src] + obs
	}
	return m.CC0[src] + obs
}

// Sort builds an input sort ordering every gate's pins by ascending
// controlling-value difficulty: inputs that are easy to drive to the
// controlling value are preferred by Algorithm 1, pushing the
// hard-to-test paths into the RD-set. This is the SCOAP-driven
// alternative to the paper's Heuristics 1 and 2. Callers holding cached
// measures (the analysis manager) use Measures.Sort to skip the
// recompute.
func Sort(c *circuit.Circuit) circuit.InputSort {
	return Compute(c).Sort()
}

// Sort derives the input sort from already-computed measures.
func (m *Measures) Sort() circuit.InputSort {
	c := m.c
	pos := make([][]int, c.NumGates())
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		fanin := c.Fanin(g)
		order := make([]int, len(fanin))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return m.LeadDifficulty(g, order[a]) < m.LeadDifficulty(g, order[b])
		})
		p := make([]int, len(fanin))
		for rank, pin := range order {
			p[pin] = rank
		}
		pos[g] = p
	}
	return circuit.InputSort{Pos: pos}
}
