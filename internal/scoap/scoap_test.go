package scoap_test

import (
	"math"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/scoap"
)

func TestControllabilityBasics(t *testing.T) {
	// y = AND(a, b): CC1(y) = CC1(a)+CC1(b)+1 = 3; CC0(y) = min(CC0)+1 = 2.
	b := circuit.NewBuilder("t")
	a := b.Input("a")
	x := b.Input("x")
	g := b.Gate(circuit.And, "g", a, x)
	po := b.Output("y", g)
	c := b.MustBuild()
	m := scoap.Compute(c)
	if m.CC1[g] != 3 || m.CC0[g] != 2 {
		t.Fatalf("AND: CC1=%v CC0=%v, want 3/2", m.CC1[g], m.CC0[g])
	}
	// Observability: CO(PO)=0, CO(g)=1 through the PO marker; CO(a) =
	// CO(g) + CC1(x) + 1 = 3.
	if m.CO[po] != 0 {
		t.Fatalf("CO(po)=%v", m.CO[po])
	}
	if m.CO[g] != 1 {
		t.Fatalf("CO(g)=%v, want 1", m.CO[g])
	}
	if m.CO[a] != 3 {
		t.Fatalf("CO(a)=%v, want 3", m.CO[a])
	}
}

func TestInverterSwapsControllability(t *testing.T) {
	b := circuit.NewBuilder("t")
	a := b.Input("a")
	n := b.Gate(circuit.Not, "n", a)
	b.Output("y", n)
	c := b.MustBuild()
	m := scoap.Compute(c)
	if m.CC0[n] != m.CC1[a]+1 || m.CC1[n] != m.CC0[a]+1 {
		t.Fatal("NOT controllability swap wrong")
	}
}

func TestOrNorDuality(t *testing.T) {
	b := circuit.NewBuilder("t")
	a := b.Input("a")
	x := b.Input("x")
	o := b.Gate(circuit.Or, "o", a, x)
	no := b.Gate(circuit.Nor, "no", a, x)
	b.Output("y1", o)
	b.Output("y2", no)
	c := b.MustBuild()
	m := scoap.Compute(c)
	if m.CC1[o] != 2 || m.CC0[o] != 3 {
		t.Fatalf("OR: CC1=%v CC0=%v", m.CC1[o], m.CC0[o])
	}
	if m.CC0[no] != 2 || m.CC1[no] != 3 {
		t.Fatalf("NOR: CC0=%v CC1=%v", m.CC0[no], m.CC1[no])
	}
}

func TestDeepGatesHarder(t *testing.T) {
	// Controllability must not decrease with depth along a chain.
	c := gen.ParityTree(8, gen.XorNAND)
	m := scoap.Compute(c)
	for _, g := range c.TopoOrder() {
		for _, f := range c.Fanin(g) {
			if m.CC0[g]+m.CC1[g] < m.CC0[f]+m.CC1[f] {
				t.Fatalf("gate %q easier than its fanin", c.Gate(g).Name)
			}
		}
	}
}

func TestObservabilityFinite(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		m := scoap.Compute(c)
		for _, g := range c.TopoOrder() {
			if len(c.Fanout(g)) == 0 && c.Type(g) != circuit.Output {
				continue // dangling PIs have no observation site
			}
			if math.IsInf(m.CO[g], 1) {
				t.Fatalf("seed %d: gate %q unobservable", seed, c.Gate(g).Name)
			}
		}
	}
}

func TestSortValid(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		s := scoap.Sort(c)
		if err := s.Validate(c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSortUsableForIdentification runs the SCOAP sort through the full RD
// pipeline and checks the structural floor (never below FUS).
func TestSortUsableForIdentification(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 2}, seed)
		s := scoap.Sort(c)
		res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s})
		if err != nil {
			t.Fatal(err)
		}
		fus, err := core.Enumerate(c, core.FS, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.RD.Cmp(fus.RD) < 0 {
			t.Fatalf("seed %d: SCOAP sort RD below the FUS floor", seed)
		}
	}
}

func TestPaperExampleSCOAP(t *testing.T) {
	// On the running example the SCOAP sort also finds the optimum.
	c := gen.PaperExample()
	s := scoap.Sort(c)
	res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s})
	if err != nil {
		t.Fatal(err)
	}
	if res.RD.Int64() != 3 {
		t.Logf("SCOAP sort RD = %v of 8 (optimum is 3)", res.RD)
	}
}
