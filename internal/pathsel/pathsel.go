// Package pathsel implements the path selection strategies discussed at
// the end of Section VI: for circuits where even the non-RD path count is
// too large to test exhaustively, select (a) only paths with expected
// delay above a threshold, or (b) for each lead a limited number of
// logical paths through it — in both cases restricted to non-RD paths,
// which is precisely the adaptation the paper (and [2]) advocate.
package pathsel

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/paths"
	"rdfault/internal/sim"
	"rdfault/internal/timing"
)

// Selection is the outcome of a strategy run.
type Selection struct {
	// Selected are the chosen logical paths.
	Selected []paths.Logical
	// CandidatesTotal counts the strategy's candidates before RD
	// filtering (both transitions of qualifying physical paths).
	CandidatesTotal int64
	// SkippedRD counts candidates excluded because RD identification
	// proved them robust dependent.
	SkippedRD int64
}

// Options configures the strategies.
type Options struct {
	// Sort is the input sort defining sigma^pi for RD filtering; nil
	// selects Heuristic 1's sort (cheap and effective).
	Sort *circuit.InputSort
	// NoRDFilter disables RD identification — the ablation showing how
	// many unnecessary paths a selection strategy keeps without the
	// paper's technique.
	NoRDFilter bool
	// Limit caps the number of selected logical paths (0 = unlimited).
	Limit int
	// Workers parallelizes the RD-filtering enumeration in NewSelector
	// (<=1 for serial). The surviving path set is a set — identical for
	// any worker count.
	Workers int
	// Context cancels the RD-filtering enumeration; Deadline bounds it.
	// A selector's keep-map must be complete to be sound (a path missing
	// from it is treated as RD), so interruption aborts NewSelector with
	// core.ErrDeadline / core.ErrCanceled rather than returning a
	// selector that would silently over-filter.
	Context  context.Context
	Deadline time.Duration
}

// Selector runs selection strategies over one circuit.
type Selector struct {
	c     *circuit.Circuit
	d     sim.Delays
	an    *timing.Analysis
	sort  circuit.InputSort
	keep  map[string]bool // logical path key -> survives sigma^pi (nil when unfiltered)
	total *big.Int
}

// NewSelector prepares RD identification and timing analysis for c under
// the given delays. The timing analysis and path counts come from the
// shared analysis manager: building several selectors over the same
// circuit (e.g. per delay corner) re-derives neither.
func NewSelector(c *circuit.Circuit, d sim.Delays, opt Options) (*Selector, error) {
	ca := analysis.For(c)
	s := &Selector{c: c, d: d, an: ca.Timing(d)}
	s.total = ca.CopyLogical()
	if opt.NoRDFilter {
		return s, nil
	}
	if opt.Sort != nil {
		s.sort = *opt.Sort
	} else {
		s.sort = core.Heuristic1Sort(c)
	}
	s.keep = make(map[string]bool)
	res, err := core.Enumerate(c, core.SigmaPi, core.Options{
		Sort:     &s.sort,
		Workers:  opt.Workers,
		Context:  opt.Context,
		Deadline: opt.Deadline,
		OnPath: func(lp paths.Logical) {
			s.keep[lp.Key()] = true
		},
	})
	if err != nil {
		return nil, err
	}
	if res.Status != core.StatusComplete {
		if res.Err != nil {
			return nil, fmt.Errorf("pathsel: RD filtering incomplete: %w", res.Err)
		}
		return nil, fmt.Errorf("pathsel: RD filtering incomplete (%v)", res.Status)
	}
	return s, nil
}

// Analysis exposes the timing analysis used for thresholds.
func (s *Selector) Analysis() *timing.Analysis { return s.an }

// TotalLogicalPaths returns |LP(C)|.
func (s *Selector) TotalLogicalPaths() *big.Int { return s.total }

// NonRD returns how many logical paths survive RD filtering (the whole
// path set when filtering is disabled).
func (s *Selector) NonRD() int64 {
	if s.keep == nil {
		return s.total.Int64()
	}
	return int64(len(s.keep))
}

func (s *Selector) admit(sel *Selection, lp paths.Logical, limit int) bool {
	sel.CandidatesTotal++
	if s.keep != nil && !s.keep[lp.Key()] {
		sel.SkippedRD++
		return true
	}
	sel.Selected = append(sel.Selected, paths.Logical{
		Path:     lp.Path.Clone(),
		FinalOne: lp.FinalOne,
	})
	return limit <= 0 || len(sel.Selected) < limit
}

// ByThreshold selects both transitions of every physical path whose delay
// is at least threshold, excluding RD paths ("if we restrict to only
// checking paths with expected delay greater than a given threshold, then
// among these paths only those which are non-RD should be considered").
func (s *Selector) ByThreshold(threshold float64, opt Options) *Selection {
	sel := &Selection{}
	s.an.ForEachPathAtLeast(threshold, func(p paths.Path, _ float64) bool {
		for _, one := range [2]bool{false, true} {
			if !s.admit(sel, paths.Logical{Path: p, FinalOne: one}, opt.Limit) {
				return false
			}
		}
		return true
	})
	return sel
}

// PerLead selects, for every lead, up to k of the slowest logical paths
// through it, excluding RD paths ("if for each line of the circuit we
// choose to only test a limited number of logical paths going through it,
// then it is sufficient to only consider non-RD paths for this selection
// process"). Paths chosen for several leads are reported once.
func (s *Selector) PerLead(k int, opt Options) *Selection {
	sel := &Selection{}
	type cand struct {
		lp    paths.Logical
		delay float64
	}
	perLead := make([][]cand, s.c.NumLeads())
	seen := make(map[string]bool)

	// Enumerate every non-RD logical path once, scoring it against each
	// lead it runs through; keep the k slowest per lead.
	paths.ForEachLogical(s.c, func(lp paths.Logical) bool {
		sel.CandidatesTotal++
		if s.keep != nil && !s.keep[lp.Key()] {
			sel.SkippedRD++
			return true
		}
		delay := s.d.PathDelay(lp.Path)
		clone := paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne}
		for i := 1; i < len(lp.Path.Gates); i++ {
			li := s.c.LeadIndex(lp.Path.Gates[i], lp.Path.Pins[i-1])
			lc := perLead[li]
			if len(lc) < k {
				perLead[li] = append(lc, cand{clone, delay})
				continue
			}
			// Replace the fastest kept candidate if slower.
			minI := 0
			for j := 1; j < len(lc); j++ {
				if lc[j].delay < lc[minI].delay {
					minI = j
				}
			}
			if delay > lc[minI].delay {
				lc[minI] = cand{clone, delay}
			}
		}
		return true
	})
	for _, lc := range perLead {
		for _, cd := range lc {
			key := cd.lp.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			sel.Selected = append(sel.Selected, cd.lp)
			if opt.Limit > 0 && len(sel.Selected) >= opt.Limit {
				return sel
			}
		}
	}
	return sel
}

// Summary renders headline statistics.
func (sel *Selection) Summary() string {
	return fmt.Sprintf("selected=%d candidates=%d skipped-RD=%d",
		len(sel.Selected), sel.CandidatesTotal, sel.SkippedRD)
}
