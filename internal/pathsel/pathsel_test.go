package pathsel

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/pla"
	"rdfault/internal/sim"
	"rdfault/internal/synth"
)

func selector(t *testing.T, seed int64, opt Options) (*Selector, int64) {
	t.Helper()
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 30, Outputs: 3}, seed)
	d := sim.RandomDelays(c, seed*3, 0.5, 2)
	s, err := NewSelector(c, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.TotalLogicalPaths().Int64()
}

func TestByThresholdFiltersRD(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, _ := selector(t, seed, Options{})
		unfiltered, _ := selector(t, seed, Options{NoRDFilter: true})
		threshold := s.Analysis().CriticalDelay() * 0.5
		with := s.ByThreshold(threshold, Options{})
		without := unfiltered.ByThreshold(threshold, Options{})
		if with.CandidatesTotal != without.CandidatesTotal {
			t.Fatalf("seed %d: candidate sets differ (%d vs %d)",
				seed, with.CandidatesTotal, without.CandidatesTotal)
		}
		if int64(len(with.Selected))+with.SkippedRD != with.CandidatesTotal {
			t.Fatalf("seed %d: selection accounting broken", seed)
		}
		if len(with.Selected) > len(without.Selected) {
			t.Fatalf("seed %d: RD filter increased selection", seed)
		}
		if without.SkippedRD != 0 {
			t.Fatalf("seed %d: unfiltered run skipped paths", seed)
		}
		// Every selected path meets the threshold.
		for _, lp := range with.Selected {
			if s.Analysis().CriticalDelay() > 0 && s.d.PathDelay(lp.Path) < threshold-1e-9 {
				t.Fatalf("seed %d: selected path below threshold", seed)
			}
		}
	}
}

func TestByThresholdSkipsOnlyRDPaths(t *testing.T) {
	// Cross-check the filter against an explicit LP^sup computation.
	s, _ := selector(t, 5, Options{})
	keep := map[string]bool{}
	_, err := core.Enumerate(s.c, core.SigmaPi, core.Options{
		Sort: &s.sort,
		OnPath: func(lp paths.Logical) {
			keep[lp.Key()] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := s.ByThreshold(0, Options{})
	if int64(len(sel.Selected)) != int64(len(keep)) {
		t.Fatalf("threshold 0 selected %d, want all %d non-RD paths", len(sel.Selected), len(keep))
	}
	for _, lp := range sel.Selected {
		if !keep[lp.Key()] {
			t.Fatalf("selected path %s not in LP^sup", lp.Key())
		}
	}
}

func TestPerLeadCoverage(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, _ := selector(t, seed, Options{})
		sel := s.PerLead(2, Options{})
		// Every lead carried by at least one surviving path must be
		// covered by the selection.
		covered := make([]int, s.c.NumLeads())
		for _, lp := range sel.Selected {
			for i := 1; i < len(lp.Path.Gates); i++ {
				covered[s.c.LeadIndex(lp.Path.Gates[i], lp.Path.Pins[i-1])]++
			}
		}
		// Recompute which leads have any non-RD path.
		hasPath := make([]bool, s.c.NumLeads())
		paths.ForEachLogical(s.c, func(lp paths.Logical) bool {
			if s.keep != nil && !s.keep[lp.Key()] {
				return true
			}
			for i := 1; i < len(lp.Path.Gates); i++ {
				hasPath[s.c.LeadIndex(lp.Path.Gates[i], lp.Path.Pins[i-1])] = true
			}
			return true
		})
		for i := range hasPath {
			if hasPath[i] && covered[i] == 0 {
				t.Fatalf("seed %d: lead %d has non-RD paths but none selected", seed, i)
			}
		}
		// Selection should be far smaller than the full non-RD set on
		// circuits with enough paths.
		if s.NonRD() > 50 && int64(len(sel.Selected)) >= s.NonRD() {
			t.Logf("seed %d: per-lead selection did not compress (%d of %d)",
				seed, len(sel.Selected), s.NonRD())
		}
	}
}

func TestPerLeadKeepsSlowest(t *testing.T) {
	s, _ := selector(t, 3, Options{NoRDFilter: true})
	sel := s.PerLead(1, Options{})
	// For each lead, the selected set must contain a path through it at
	// least as slow as every other path through it... with k=1 the single
	// chosen one must be the slowest.
	slowest := make(map[int]float64)
	paths.ForEachLogical(s.c, func(lp paths.Logical) bool {
		d := s.d.PathDelay(lp.Path)
		for i := 1; i < len(lp.Path.Gates); i++ {
			li := s.c.LeadIndex(lp.Path.Gates[i], lp.Path.Pins[i-1])
			if d > slowest[li] {
				slowest[li] = d
			}
		}
		return true
	})
	// Build per-lead max over the selection.
	got := make(map[int]float64)
	for _, lp := range sel.Selected {
		d := s.d.PathDelay(lp.Path)
		for i := 1; i < len(lp.Path.Gates); i++ {
			li := s.c.LeadIndex(lp.Path.Gates[i], lp.Path.Pins[i-1])
			if d > got[li] {
				got[li] = d
			}
		}
	}
	for li, want := range slowest {
		if got[li] < want-1e-9 {
			t.Fatalf("lead %d: selected max %v < slowest %v", li, got[li], want)
		}
	}
}

func TestLimit(t *testing.T) {
	s, _ := selector(t, 2, Options{})
	sel := s.ByThreshold(0, Options{Limit: 3})
	if len(sel.Selected) != 3 {
		t.Fatalf("limit ignored: %d", len(sel.Selected))
	}
	sel = s.PerLead(3, Options{Limit: 2})
	if len(sel.Selected) != 2 {
		t.Fatalf("per-lead limit ignored: %d", len(sel.Selected))
	}
	if sel.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRDFilterReducesSelection(t *testing.T) {
	// The paper's point: on circuits with a sizable RD fraction, the
	// threshold strategy keeps visibly fewer paths with RD filtering.
	cv := gen.RandomPLA("red", gen.PLAOptions{Inputs: 8, Outputs: 4, Cubes: 20, Redundant: 15}, 9)
	c := mustSynth(t, cv)
	d := sim.UnitDelays(c)
	with, err := NewSelector(c, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewSelector(c, d, Options{NoRDFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	a := with.ByThreshold(0, Options{})
	b := without.ByThreshold(0, Options{})
	if len(a.Selected) >= len(b.Selected) {
		t.Fatalf("RD filter saved nothing: %d vs %d", len(a.Selected), len(b.Selected))
	}
}

func mustSynth(t *testing.T, cv *pla.Cover) *circuit.Circuit {
	t.Helper()
	c, err := synth.Synthesize(cv, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
