package loader

import (
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/pla"
	"rdfault/internal/verilog"
)

func write(t *testing.T, path string, emit func(f *os.File) error) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := emit(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAllFormats(t *testing.T) {
	dir := t.TempDir()
	c := gen.PaperExample()

	benchPath := filepath.Join(dir, "x.bench")
	write(t, benchPath, func(f *os.File) error { return circuit.WriteBench(f, c) })
	vPath := filepath.Join(dir, "x.v")
	write(t, vPath, func(f *os.File) error { return verilog.Write(f, c) })
	plaPath := filepath.Join(dir, "x.pla")
	cv := gen.RandomPLA("x", gen.PLAOptions{Inputs: 4, Outputs: 2, Cubes: 6}, 1)
	write(t, plaPath, func(f *os.File) error { return pla.Write(f, cv) })

	for _, p := range []string{benchPath, vPath} {
		got, err := Load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		eq, err := bdd.Equivalent(c, got)
		if err != nil || !eq {
			t.Fatalf("%s: loaded circuit not equivalent (%v)", p, err)
		}
	}
	got, err := Load(plaPath)
	if err != nil {
		t.Fatal(err)
	}
	// PLA loads synthesize; check against cover semantics.
	for v := 0; v < 16; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0}
		want := cv.Eval(in)
		have := got.OutputsOf(got.EvalBool(in))
		for o := range want {
			if want[o] != have[o] {
				t.Fatalf("pla load differs at %v", in)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("no-such-file.bench"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "x.xyz")
	if err := os.WriteFile(bad, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("unknown extension accepted")
	}
	garbage := filepath.Join(dir, "g.bench")
	if err := os.WriteFile(garbage, []byte("not a netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage); err == nil {
		t.Error("garbage bench accepted")
	}
}
