// Package loader reads circuits from any supported on-disk format,
// dispatching on the file extension: ".bench" (ISCAS), ".v"/".verilog"
// (structural Verilog) and ".pla" (Espresso two-level, synthesized to
// multi-level gates on load). All command-line tools share it.
package loader

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rdfault/internal/circuit"
	"rdfault/internal/pla"
	"rdfault/internal/synth"
	"rdfault/internal/verilog"
)

// Load reads the circuit stored at path.
func Load(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		return circuit.ParseBench(name, f)
	case ".v", ".verilog":
		return verilog.Parse(name, f)
	case ".pla":
		cv, err := pla.Parse(name, f)
		if err != nil {
			return nil, err
		}
		return synth.Synthesize(cv, synth.Options{})
	default:
		return nil, fmt.Errorf("loader: unsupported extension %q (want .bench, .v or .pla)", filepath.Ext(path))
	}
}
