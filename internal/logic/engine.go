package logic

import (
	"rdfault/internal/circuit"
)

// Engine propagates stable-value assignments through a circuit by direct
// implications only, with a trail for chronological backtracking. It is
// the workhorse behind the implicit path enumeration of Algorithm 2: the
// enumerator asserts side-input requirements as it extends a path and
// backtracks the engine when it retreats.
//
// The engine runs on the circuit's cache-flat layout (circuit.Flat):
// gate types, levels and the fanin/fanout adjacency live in dense CSR
// arrays shared read-only by every engine of the circuit, and the
// 3-valued domain is packed 2 bits per signal into uint64 words — 32
// signals per word, so the whole stable-value state of a 10k-gate
// circuit is ~2.5KB and stays L1-resident through a DFS walk, and
// full-state sweeps (deep backtracks, queue wipes) run word-parallel.
// The trail and work queue are arena-allocated once at construction
// (their length is bounded by the gate count), so the assign/backtrack
// hot path performs zero allocations.
//
// RefEngine is the retained pointer-structure implementation; the two
// are kept behaviorally identical (same implication rules, same LIFO
// propagation order) and cross-checked by differential and fuzz tests.
//
// An Engine is not safe for concurrent use; create one per goroutine.
type Engine struct {
	c *circuit.Circuit
	f *circuit.Flat

	// val packs one 2-bit Value per gate, 32 gates per word.
	val []uint64
	// queued is a 1-bit-per-gate membership mask for the work queue.
	queued []uint64
	// trail and queue are fixed-capacity arenas: a gate appears at most
	// once on each between backtracks, so capacity NumGates suffices and
	// append never reallocates.
	trail []circuit.GateID
	queue []circuit.GateID

	confl   bool
	nAssign int64 // statistics: total value assignments performed
	nImply  int64 // assignments derived by implication
}

// NewEngine returns an implication engine for c with all gates at X. The
// immutable flat netlist layout is shared across every engine of the
// circuit (built once per circuit version); only the small mutable
// state — packed values, queue mask, trail and queue arenas — is
// allocated here.
func NewEngine(c *circuit.Circuit) *Engine {
	n := c.NumGates()
	return &Engine{
		c:      c,
		f:      c.Flat(),
		val:    make([]uint64, (n+31)/32),
		queued: make([]uint64, (n+63)/64),
		trail:  make([]circuit.GateID, 0, n),
		queue:  make([]circuit.GateID, 0, n),
	}
}

// Circuit returns the circuit the engine operates on.
func (e *Engine) Circuit() *circuit.Circuit { return e.c }

// Value returns the current stable value of gate g.
func (e *Engine) Value(g circuit.GateID) Value {
	return Value((e.val[g>>5] >> ((uint32(g) & 31) * 2)) & 3)
}

// setVal stores v in gate g's 2-bit lane.
func (e *Engine) setVal(g circuit.GateID, v Value) {
	sh := (uint32(g) & 31) * 2
	w := &e.val[g>>5]
	*w = *w&^(3<<sh) | uint64(v)<<sh
}

// clearVal resets gate g's lane to X.
func (e *Engine) clearVal(g circuit.GateID) {
	e.val[g>>5] &^= 3 << ((uint32(g) & 31) * 2)
}

// Mark returns the current trail position for a later BacktrackTo.
func (e *Engine) Mark() int { return len(e.trail) }

// BacktrackTo undoes every assignment made after the corresponding Mark
// call and clears any recorded conflict. Cost is proportional to the
// number of assignments undone plus any pending queue entries — never to
// the circuit size — so deep DFS walks pay O(1) amortized per edge. A
// full unwind with a long trail short-circuits to a word-parallel wipe
// of the packed value array (32 signals per store), which is cheaper
// than per-entry clears once the trail covers most of the circuit.
func (e *Engine) BacktrackTo(mark int) {
	if mark == 0 && len(e.trail) >= len(e.val) {
		clear(e.val)
	} else {
		for i := len(e.trail) - 1; i >= mark; i-- {
			e.clearVal(e.trail[i])
		}
	}
	e.trail = e.trail[:mark]
	e.confl = false
	e.drainQueue()
}

// drainQueue discards pending work, unmarking only the gates actually
// enqueued (or wiping the mask word-parallel when the queue is long).
func (e *Engine) drainQueue() {
	if len(e.queue) >= len(e.queued) {
		clear(e.queued)
	} else {
		for _, g := range e.queue {
			e.queued[g>>6] &^= 1 << (uint32(g) & 63)
		}
	}
	e.queue = e.queue[:0]
}

// Reset clears all assignments.
func (e *Engine) Reset() { e.BacktrackTo(0) }

// Stats returns the number of explicit+implied assignments and the number
// of implied assignments alone, since engine creation.
func (e *Engine) Stats() (assignments, implications int64) {
	return e.nAssign, e.nImply
}

// Assign asserts that gate g has stable value v (a boolean) and runs
// direct implications to closure. It reports false if a contradiction was
// derived; in that case the caller must BacktrackTo the mark taken before
// the assertion (the engine state is otherwise undefined but fully
// undoable).
func (e *Engine) Assign(g circuit.GateID, v bool) bool {
	return e.AssignValue(g, FromBool(v))
}

// AssignValue is Assign for a Value; asserting X is a no-op.
func (e *Engine) AssignValue(g circuit.GateID, v Value) bool {
	if v == X {
		return !e.confl
	}
	if !e.set(g, v) {
		return false
	}
	return e.propagate()
}

// set records a single assignment without propagating. It returns false on
// immediate conflict.
func (e *Engine) set(g circuit.GateID, v Value) bool {
	cur := e.Value(g)
	if cur == v {
		return true
	}
	if cur != X {
		e.confl = true
		return false
	}
	e.setVal(g, v)
	e.trail = append(e.trail, g)
	e.nAssign++
	e.enqueue(g)
	f := e.f
	for _, to := range f.Fanout[f.FanoutOff[g]:f.FanoutOff[g+1]] {
		e.enqueue(to)
	}
	return true
}

// setSelf records a forward implication derived by eval(g) for g itself.
// The caller is mid-eval of g and applies g's remaining rules against the
// fresh value in the same pass, so re-enqueueing g would only buy a
// no-op re-eval — only the fanout destinations are scheduled. The caller
// guarantees e.Value(g) == X.
func (e *Engine) setSelf(g circuit.GateID, v Value) {
	e.setVal(g, v)
	e.trail = append(e.trail, g)
	e.nAssign++
	e.nImply++
	f := e.f
	for _, to := range f.Fanout[f.FanoutOff[g]:f.FanoutOff[g+1]] {
		e.enqueue(to)
	}
}

func (e *Engine) enqueue(g circuit.GateID) {
	w := g >> 6
	b := uint64(1) << (uint32(g) & 63)
	if e.queued[w]&b == 0 {
		e.queued[w] |= b
		e.queue = append(e.queue, g)
	}
}

// propagate runs the work list to fixpoint or first conflict.
func (e *Engine) propagate() bool {
	for len(e.queue) > 0 {
		g := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.queued[g>>6] &^= 1 << (uint32(g) & 63)
		if !e.eval(g) {
			e.drainQueue()
			return false
		}
	}
	return true
}

// imply records a derived assignment.
func (e *Engine) imply(g circuit.GateID, v Value) bool {
	before := e.nAssign
	if !e.set(g, v) {
		return false
	}
	if e.nAssign > before {
		e.nImply++
	}
	return true
}

// gateMeta caches the per-type constants the implication rules need so
// eval never re-derives them through Controlling/Inverting/Not on the
// hot path.
type gateMeta struct {
	ctrl      Value // controlling input value
	nonCtrl   Value // non-controlling input value
	outIfCtrl Value // output when any input is controlling
	outIfNon  Value // output when all inputs are non-controlling
}

// typeMeta is indexed by circuit.GateType; only the simple gates
// AND/OR/NAND/NOR have meaningful entries.
var typeMeta = func() [8]gateMeta {
	var m [8]gateMeta
	for _, t := range []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor} {
		cb, _ := t.Controlling()
		ctrl := FromBool(cb)
		nonCtrl := ctrl.Not()
		oc, on := ctrl, nonCtrl
		if t.Inverting() {
			oc, on = oc.Not(), on.Not()
		}
		m[t] = gateMeta{ctrl: ctrl, nonCtrl: nonCtrl, outIfCtrl: oc, outIfNon: on}
	}
	return m
}()

// notTab maps a Value to its negation without branching (X stays X).
var notTab = [3]Value{X: X, Zero: One, One: Zero}

// eval applies all direct implication rules available at gate g: forward
// evaluation from its fanins and backward justification from its own
// value toward its fanins. The rule set is identical to RefEngine.eval;
// forward implications for g itself go through setSelf because the
// backward rules below already run against the fresh value in this same
// pass (the implication closure is a unique fixpoint, so skipping the
// redundant re-eval cannot change values, verdicts or trail lengths).
func (e *Engine) eval(g circuit.GateID) bool {
	f := e.f
	t := f.Types[g]
	switch t {
	case circuit.Input:
		return true
	case circuit.Output, circuit.Buf, circuit.Not:
		in := f.Fanin[f.FaninOff[g]]
		iv := e.Value(in)
		ov := e.Value(g)
		if t == circuit.Not {
			iv = notTab[iv]
		}
		// Forward: out := f(in). Backward below justifies from the value g
		// had on entry (a freshly forwarded value needs no justification —
		// its source is the very input it came from).
		if iv != X {
			if ov == X {
				e.setSelf(g, iv)
			} else if ov != iv {
				e.confl = true
				return false
			}
		}
		// Backward: in := f^-1(out).
		want := ov
		if t == circuit.Not {
			want = notTab[want]
		}
		if want != X && !e.imply(in, want) {
			return false
		}
		return true
	}

	// Simple gates AND/OR/NAND/NOR: constants from the per-type table.
	md := &typeMeta[t]
	ctrl, nonCtrl := md.ctrl, md.nonCtrl
	outIfCtrl, outIfNon := md.outIfCtrl, md.outIfNon

	fanin := f.Fanin[f.FaninOff[g]:f.FaninOff[g+1]]
	unknown := 0
	var lastUnknown circuit.GateID
	anyCtrl := false
	for _, fi := range fanin {
		switch e.Value(fi) {
		case ctrl:
			anyCtrl = true
		case X:
			unknown++
			lastUnknown = fi
		}
	}

	// Forward implications.
	ov := e.Value(g)
	if anyCtrl {
		if ov == X {
			e.setSelf(g, outIfCtrl)
			ov = outIfCtrl
		} else if ov != outIfCtrl {
			e.confl = true
			return false
		}
	} else if unknown == 0 {
		if ov == X {
			e.setSelf(g, outIfNon)
			ov = outIfNon
		} else if ov != outIfNon {
			e.confl = true
			return false
		}
	}

	// Backward implications.
	switch ov {
	case outIfNon:
		// No input may be controlling.
		for _, fi := range fanin {
			if !e.imply(fi, nonCtrl) {
				return false
			}
		}
	case outIfCtrl:
		// At least one input controlling; unit-propagate when forced.
		if !anyCtrl {
			if unknown == 0 {
				e.confl = true
				return false
			}
			if unknown == 1 {
				if !e.imply(lastUnknown, ctrl) {
					return false
				}
			}
		}
	}
	return true
}

// Snapshot is an immutable copy of an engine's assignment state, taken
// with Engine.Snapshot and installed with Engine.Restore. It is the
// handoff unit of parallel path enumeration: a walker packages its
// mid-DFS state so an idle goroutine can continue an untaken branch.
// A Snapshot is safe to share across goroutines, and transports between
// Engine and RefEngine (the differential tests rely on this).
type Snapshot struct {
	gates []circuit.GateID
	vals  []Value
}

// Len returns the number of assignments captured.
func (s Snapshot) Len() int { return len(s.gates) }

// Export copies the snapshot's assignments out for serialization (the
// checkpoint files of a deadline-interrupted enumeration). The returned
// slices are fresh: mutating them does not affect the snapshot.
func (s Snapshot) Export() (gates []circuit.GateID, vals []Value) {
	return append([]circuit.GateID(nil), s.gates...), append([]Value(nil), s.vals...)
}

// MakeSnapshot rebuilds a Snapshot from serialized assignments (the
// inverse of Export). The caller guarantees the set is implication-closed
// for the circuit it will be restored on — snapshots produced by
// Engine.Snapshot and round-tripped through Export satisfy this. The
// slices are copied; len(gates) must equal len(vals).
func MakeSnapshot(gates []circuit.GateID, vals []Value) Snapshot {
	if len(gates) != len(vals) {
		panic("logic: MakeSnapshot with mismatched gates/vals")
	}
	return Snapshot{
		gates: append([]circuit.GateID(nil), gates...),
		vals:  append([]Value(nil), vals...),
	}
}

// Snapshot captures the engine's current assignments (the full trail with
// its values). Cost is O(len(trail)), independent of circuit size. The
// engine must not be mid-propagation (every public entry point leaves it
// settled), so the captured set is implication-closed.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		gates: append([]circuit.GateID(nil), e.trail...),
		vals:  make([]Value, len(e.trail)),
	}
	for i, g := range e.trail {
		s.vals[i] = e.Value(g)
	}
	return s
}

// Restore resets e and installs s verbatim, without re-running
// implications: a snapshot is implication-closed by construction, so the
// propagation fixpoint is preserved and any later Assign derives exactly
// what it would have derived on the engine the snapshot came from. Cost
// is O(previous trail + snapshot), never O(circuit). The target engine
// must operate on the same circuit; statistics counters are unaffected.
func (e *Engine) Restore(s Snapshot) {
	e.BacktrackTo(0)
	for i, g := range s.gates {
		e.setVal(g, s.vals[i])
	}
	e.trail = append(e.trail, s.gates...)
}

// AssignAll asserts a set of (gate, value) requirements in order, stopping
// at the first conflict. It reports whether all assertions succeeded.
func (e *Engine) AssignAll(gates []circuit.GateID, vals []Value) bool {
	for i, g := range gates {
		if !e.AssignValue(g, vals[i]) {
			return false
		}
	}
	return true
}
