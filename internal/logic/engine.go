package logic

import (
	"rdfault/internal/circuit"
)

// Engine propagates stable-value assignments through a circuit by direct
// implications only, with a trail for chronological backtracking. It is
// the workhorse behind the implicit path enumeration of Algorithm 2: the
// enumerator asserts side-input requirements as it extends a path and
// backtracks the engine when it retreats.
//
// An Engine is not safe for concurrent use; create one per goroutine.
type Engine struct {
	c     *circuit.Circuit
	val   []Value
	trail []circuit.GateID

	queue   []circuit.GateID
	queued  []bool
	confl   bool
	nAssign int64 // statistics: total value assignments performed
	nImply  int64 // statistics: assignments derived by implication
}

// NewEngine returns an implication engine for c with all gates at X.
func NewEngine(c *circuit.Circuit) *Engine {
	n := c.NumGates()
	return &Engine{
		c:      c,
		val:    make([]Value, n),
		queued: make([]bool, n),
	}
}

// Circuit returns the circuit the engine operates on.
func (e *Engine) Circuit() *circuit.Circuit { return e.c }

// Value returns the current stable value of gate g.
func (e *Engine) Value(g circuit.GateID) Value { return e.val[g] }

// Mark returns the current trail position for a later BacktrackTo.
func (e *Engine) Mark() int { return len(e.trail) }

// BacktrackTo undoes every assignment made after the corresponding Mark
// call and clears any recorded conflict. Cost is proportional to the
// number of assignments undone plus any pending queue entries — never to
// the circuit size — so deep DFS walks pay O(1) amortized per edge.
func (e *Engine) BacktrackTo(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		e.val[e.trail[i]] = X
	}
	e.trail = e.trail[:mark]
	e.confl = false
	e.drainQueue()
}

// drainQueue discards pending work, unmarking only the gates actually
// enqueued instead of sweeping the whole per-gate queued array.
func (e *Engine) drainQueue() {
	for _, g := range e.queue {
		e.queued[g] = false
	}
	e.queue = e.queue[:0]
}

// Reset clears all assignments.
func (e *Engine) Reset() { e.BacktrackTo(0) }

// Stats returns the number of explicit+implied assignments and the number
// of implied assignments alone, since engine creation.
func (e *Engine) Stats() (assignments, implications int64) {
	return e.nAssign, e.nImply
}

// Assign asserts that gate g has stable value v (a boolean) and runs
// direct implications to closure. It reports false if a contradiction was
// derived; in that case the caller must BacktrackTo the mark taken before
// the assertion (the engine state is otherwise undefined but fully
// undoable).
func (e *Engine) Assign(g circuit.GateID, v bool) bool {
	return e.AssignValue(g, FromBool(v))
}

// AssignValue is Assign for a Value; asserting X is a no-op.
func (e *Engine) AssignValue(g circuit.GateID, v Value) bool {
	if v == X {
		return !e.confl
	}
	if !e.set(g, v) {
		return false
	}
	return e.propagate()
}

// set records a single assignment without propagating. It returns false on
// immediate conflict.
func (e *Engine) set(g circuit.GateID, v Value) bool {
	cur := e.val[g]
	if cur == v {
		return true
	}
	if cur != X {
		e.confl = true
		return false
	}
	e.val[g] = v
	e.trail = append(e.trail, g)
	e.nAssign++
	e.enqueue(g)
	for _, edge := range e.c.Fanout(g) {
		e.enqueue(edge.To)
	}
	return true
}

func (e *Engine) enqueue(g circuit.GateID) {
	if !e.queued[g] {
		e.queued[g] = true
		e.queue = append(e.queue, g)
	}
}

// propagate runs the work list to fixpoint or first conflict.
func (e *Engine) propagate() bool {
	for len(e.queue) > 0 {
		g := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.queued[g] = false
		if !e.eval(g) {
			e.drainQueue()
			return false
		}
	}
	return true
}

// imply records a derived assignment.
func (e *Engine) imply(g circuit.GateID, v Value) bool {
	before := e.nAssign
	if !e.set(g, v) {
		return false
	}
	if e.nAssign > before {
		e.nImply++
	}
	return true
}

// eval applies all direct implication rules available at gate g: forward
// evaluation from its fanins and backward justification from its own
// value toward its fanins.
func (e *Engine) eval(g circuit.GateID) bool {
	t := e.c.Type(g)
	switch t {
	case circuit.Input:
		return true
	case circuit.Output, circuit.Buf, circuit.Not:
		in := e.c.Fanin(g)[0]
		inv := t == circuit.Not
		iv := e.val[in]
		ov := e.val[g]
		if inv {
			iv = iv.Not()
		}
		// Forward: out := f(in).
		if iv.Known() && !e.imply(g, iv) {
			return false
		}
		// Backward: in := f^-1(out).
		want := ov
		if inv {
			want = want.Not()
		}
		if want.Known() && !e.imply(in, want) {
			return false
		}
		return true
	}

	// Simple gates AND/OR/NAND/NOR.
	ctrlB, _ := t.Controlling()
	ctrl := FromBool(ctrlB)
	nonCtrl := ctrl.Not()
	inv := t.Inverting()
	outIfCtrl := ctrl
	outIfNon := nonCtrl
	if inv {
		outIfCtrl, outIfNon = outIfCtrl.Not(), outIfNon.Not()
	}

	fanin := e.c.Fanin(g)
	unknown := 0
	var lastUnknown circuit.GateID
	anyCtrl := false
	for _, f := range fanin {
		switch e.val[f] {
		case ctrl:
			anyCtrl = true
		case X:
			unknown++
			lastUnknown = f
		}
	}

	// Forward implications.
	if anyCtrl {
		if !e.imply(g, outIfCtrl) {
			return false
		}
	} else if unknown == 0 {
		if !e.imply(g, outIfNon) {
			return false
		}
	}

	// Backward implications.
	switch e.val[g] {
	case outIfNon:
		// No input may be controlling.
		for _, f := range fanin {
			if !e.imply(f, nonCtrl) {
				return false
			}
		}
	case outIfCtrl:
		// At least one input controlling; unit-propagate when forced.
		if !anyCtrl {
			if unknown == 0 {
				e.confl = true
				return false
			}
			if unknown == 1 {
				if !e.imply(lastUnknown, ctrl) {
					return false
				}
			}
		}
	}
	return true
}

// Snapshot is an immutable copy of an engine's assignment state, taken
// with Engine.Snapshot and installed with Engine.Restore. It is the
// handoff unit of parallel path enumeration: a walker packages its
// mid-DFS state so an idle goroutine can continue an untaken branch.
// A Snapshot is safe to share across goroutines.
type Snapshot struct {
	gates []circuit.GateID
	vals  []Value
}

// Len returns the number of assignments captured.
func (s Snapshot) Len() int { return len(s.gates) }

// Export copies the snapshot's assignments out for serialization (the
// checkpoint files of a deadline-interrupted enumeration). The returned
// slices are fresh: mutating them does not affect the snapshot.
func (s Snapshot) Export() (gates []circuit.GateID, vals []Value) {
	return append([]circuit.GateID(nil), s.gates...), append([]Value(nil), s.vals...)
}

// MakeSnapshot rebuilds a Snapshot from serialized assignments (the
// inverse of Export). The caller guarantees the set is implication-closed
// for the circuit it will be restored on — snapshots produced by
// Engine.Snapshot and round-tripped through Export satisfy this. The
// slices are copied; len(gates) must equal len(vals).
func MakeSnapshot(gates []circuit.GateID, vals []Value) Snapshot {
	if len(gates) != len(vals) {
		panic("logic: MakeSnapshot with mismatched gates/vals")
	}
	return Snapshot{
		gates: append([]circuit.GateID(nil), gates...),
		vals:  append([]Value(nil), vals...),
	}
}

// Snapshot captures the engine's current assignments (the full trail with
// its values). Cost is O(len(trail)), independent of circuit size. The
// engine must not be mid-propagation (every public entry point leaves it
// settled), so the captured set is implication-closed.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		gates: append([]circuit.GateID(nil), e.trail...),
		vals:  make([]Value, len(e.trail)),
	}
	for i, g := range e.trail {
		s.vals[i] = e.val[g]
	}
	return s
}

// Restore resets e and installs s verbatim, without re-running
// implications: a snapshot is implication-closed by construction, so the
// propagation fixpoint is preserved and any later Assign derives exactly
// what it would have derived on the engine the snapshot came from. Cost
// is O(previous trail + snapshot), never O(circuit). The target engine
// must operate on the same circuit; statistics counters are unaffected.
func (e *Engine) Restore(s Snapshot) {
	e.BacktrackTo(0)
	for i, g := range s.gates {
		e.val[g] = s.vals[i]
	}
	e.trail = append(e.trail, s.gates...)
}

// AssignAll asserts a set of (gate, value) requirements in order, stopping
// at the first conflict. It reports whether all assertions succeeded.
func (e *Engine) AssignAll(gates []circuit.GateID, vals []Value) bool {
	for i, g := range gates {
		if !e.AssignValue(g, vals[i]) {
			return false
		}
	}
	return true
}
