package logic

// Differential harness: the cache-flat Engine and the retained pointer
// RefEngine must be observationally identical — same conflict verdicts,
// same per-gate values, same trail lengths — for every circuit and every
// assign/backtrack/snapshot script. This is the same cross-check pattern
// the PR 4 oracle uses against the fast identifier, applied one layer
// down: the flat rewrite is a pure data-layout change, so any divergence
// is a bug by definition.

import (
	"math/rand"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

// checkAgree fails the test unless both engines expose identical state.
func checkAgree(t *testing.T, ctx string, c *circuit.Circuit, fast *Engine, ref *RefEngine) {
	t.Helper()
	if fast.Mark() != ref.Mark() {
		t.Fatalf("%s: trail length %d (flat) != %d (ref)", ctx, fast.Mark(), ref.Mark())
	}
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		if fast.Value(g) != ref.Value(g) {
			t.Fatalf("%s: gate %d value %v (flat) != %v (ref)", ctx, g, fast.Value(g), ref.Value(g))
		}
	}
}

// scriptStep drives one random operation on both engines and checks
// agreement. marks is the shared stack of comparable Mark positions.
func scriptStep(t *testing.T, rng *rand.Rand, c *circuit.Circuit,
	fast *Engine, ref *RefEngine, marks *[]int) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 6: // assign a random gate a random concrete value
		g := circuit.GateID(rng.Intn(c.NumGates()))
		v := FromBool(rng.Intn(2) == 0)
		m := fast.Mark()
		okF := fast.AssignValue(g, v)
		okR := ref.AssignValue(g, v)
		if okF != okR {
			t.Fatalf("assign g=%d v=%v: verdict %v (flat) != %v (ref)", g, v, okF, okR)
		}
		if !okF {
			// Contract: a conflicted engine must be backtracked.
			fast.BacktrackTo(m)
			ref.BacktrackTo(m)
		}
	case op < 7: // assign X (no-op)
		g := circuit.GateID(rng.Intn(c.NumGates()))
		if fast.AssignValue(g, X) != ref.AssignValue(g, X) {
			t.Fatalf("AssignValue(X) verdicts diverge")
		}
	case op < 8: // push a mark
		*marks = append(*marks, fast.Mark())
	case op < 9: // backtrack to a random earlier mark
		if n := len(*marks); n > 0 {
			i := rng.Intn(n)
			m := (*marks)[i]
			*marks = (*marks)[:i]
			fast.BacktrackTo(m)
			ref.BacktrackTo(m)
		} else {
			fast.BacktrackTo(0)
			ref.BacktrackTo(0)
		}
	default: // snapshot one engine, restore into the other (both ways)
		if rng.Intn(2) == 0 {
			ref.Restore(fast.Snapshot())
		} else {
			fast.Restore(ref.Snapshot())
		}
		*marks = (*marks)[:0]
	}
	checkAgree(t, "after step", c, fast, ref)
}

// TestDifferentialFlatVsRef: random circuits, random scripts, exact
// agreement at every step.
func TestDifferentialFlatVsRef(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		c := gen.RandomCircuit("diff", gen.RandomOptions{
			Inputs:  3 + rng.Intn(6),
			Gates:   8 + rng.Intn(60),
			Outputs: 1 + rng.Intn(4),
		}, seed)
		fast := NewEngine(c)
		ref := NewRefEngine(c)
		var marks []int
		for step := 0; step < 400; step++ {
			scriptStep(t, rng, c, fast, ref, &marks)
		}
		// Full unwind must agree too (and leave both engines reusable).
		fast.BacktrackTo(0)
		ref.BacktrackTo(0)
		checkAgree(t, "after full unwind", c, fast, ref)
	}
}

// TestDifferentialStats: the assignment/implication counters track the
// same work on both layouts (they feed engine telemetry).
func TestDifferentialStats(t *testing.T) {
	c := gen.RandomCircuit("stats", gen.RandomOptions{Inputs: 6, Gates: 40, Outputs: 3}, 99)
	fast := NewEngine(c)
	ref := NewRefEngine(c)
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 200; i++ {
		g := circuit.GateID(rng.Intn(c.NumGates()))
		v := rng.Intn(2) == 0
		m := fast.Mark()
		okF, okR := fast.Assign(g, v), ref.Assign(g, v)
		if okF != okR {
			t.Fatalf("verdicts diverge at step %d", i)
		}
		if !okF {
			fast.BacktrackTo(m)
			ref.BacktrackTo(m)
		}
	}
	fa, fi := fast.Stats()
	ra, ri := ref.Stats()
	if fa != ra || fi != ri {
		t.Fatalf("stats diverge: flat (%d, %d) vs ref (%d, %d)", fa, fi, ra, ri)
	}
}

// TestSnapshotTransport: snapshots are interchangeable between the two
// implementations — a prefix packaged by one is walked identically by
// the other (the work-stealing scheduler and the checkpoint codec depend
// on exactly this property of the Snapshot type).
func TestSnapshotTransport(t *testing.T) {
	c := gen.RandomCircuit("snap", gen.RandomOptions{Inputs: 5, Gates: 30, Outputs: 2}, 17)
	rng := rand.New(rand.NewSource(555))
	ref := NewRefEngine(c)
	for i := 0; i < 4; i++ {
		ref.Assign(circuit.GateID(rng.Intn(c.NumGates())), rng.Intn(2) == 0)
	}
	snap := ref.Snapshot()

	// Round-trip through Export/MakeSnapshot (the checkpoint wire format).
	gates, vals := snap.Export()
	fast := NewEngine(c)
	fast.Restore(MakeSnapshot(gates, vals))
	refCheck := NewRefEngine(c)
	refCheck.Restore(snap)
	checkAgree(t, "restored from transported snapshot", c, fast, refCheck)

	// Continue both with the same suffix: still identical.
	for i := 0; i < 50; i++ {
		g := circuit.GateID(rng.Intn(c.NumGates()))
		v := rng.Intn(2) == 0
		m := fast.Mark()
		okF, okR := fast.Assign(g, v), refCheck.Assign(g, v)
		if okF != okR {
			t.Fatalf("post-restore verdicts diverge at step %d", i)
		}
		if !okF {
			fast.BacktrackTo(m)
			refCheck.BacktrackTo(m)
		}
		checkAgree(t, "post-restore step", c, fast, refCheck)
	}
}

// FuzzEngineDiff is the native fuzz target: the fuzzer owns the circuit
// shape and the operation script, and any observable divergence between
// the flat and reference engines crashes the run. Bytes decode as
// (circuit seed/shape header, then one op per byte pair).
func FuzzEngineDiff(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x02, 0x83, 0x04, 0xff, 0x00})
	f.Add(int64(7), []byte{0x10, 0x81, 0x22, 0x93, 0x44, 0xa5, 0x66})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		c := gen.RandomCircuit("fuzz", gen.RandomOptions{
			Inputs:  2 + int(uint64(seed)%5),
			Gates:   5 + int(uint64(seed)>>3%40),
			Outputs: 1 + int(uint64(seed)>>9%3),
		}, seed)
		fast := NewEngine(c)
		ref := NewRefEngine(c)
		var marks []int
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], int(script[i+1])
			g := circuit.GateID(arg % c.NumGates())
			switch op % 5 {
			case 0, 1: // assign 0/1
				m := fast.Mark()
				okF := fast.Assign(g, op%2 == 0)
				okR := ref.Assign(g, op%2 == 0)
				if okF != okR {
					t.Fatalf("verdict divergence at op %d", i)
				}
				if !okF {
					fast.BacktrackTo(m)
					ref.BacktrackTo(m)
				}
			case 2: // mark
				marks = append(marks, fast.Mark())
			case 3: // backtrack
				m := 0
				if len(marks) > 0 {
					k := arg % len(marks)
					m = marks[k]
					marks = marks[:k]
				}
				fast.BacktrackTo(m)
				ref.BacktrackTo(m)
			case 4: // snapshot transport
				if arg%2 == 0 {
					ref.Restore(fast.Snapshot())
				} else {
					fast.Restore(ref.Snapshot())
				}
				marks = marks[:0]
			}
			if fast.Mark() != ref.Mark() {
				t.Fatalf("trail divergence at op %d: %d vs %d", i, fast.Mark(), ref.Mark())
			}
			for gg := circuit.GateID(0); int(gg) < c.NumGates(); gg++ {
				if fast.Value(gg) != ref.Value(gg) {
					t.Fatalf("value divergence at op %d gate %d", i, gg)
				}
			}
		}
	})
}

// BenchmarkEngineVsRef pits the two layouts on the same workload (the
// input-sweep pattern of BenchmarkImplicationEngine); run with -bench to
// see the flat engine's edge directly.
func BenchmarkEngineVsRef(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 64, Gates: 2000, Outputs: 32}, 42)
	ins := c.Inputs()
	b.Run("flat", func(b *testing.B) {
		e := NewEngine(c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mark := e.Mark()
			for j, g := range ins {
				if !e.Assign(g, (i+j)%3 == 0) {
					break
				}
			}
			e.BacktrackTo(mark)
		}
	})
	b.Run("ref", func(b *testing.B) {
		e := NewRefEngine(c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mark := e.Mark()
			for j, g := range ins {
				if !e.Assign(g, (i+j)%3 == 0) {
					break
				}
			}
			e.BacktrackTo(mark)
		}
	})
}
