package logic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

func TestValueBasics(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool broken")
	}
	if One.Not() != Zero || Zero.Not() != One || X.Not() != X {
		t.Fatal("Not broken")
	}
	if !One.Known() || !Zero.Known() || X.Known() {
		t.Fatal("Known broken")
	}
	if One.String() != "1" || Zero.String() != "0" || X.String() != "X" {
		t.Fatal("String broken")
	}
	if b, ok := One.Bool(); !ok || !b {
		t.Fatal("Bool(One)")
	}
	if b, ok := Zero.Bool(); !ok || b {
		t.Fatal("Bool(Zero)")
	}
	if _, ok := X.Bool(); ok {
		t.Fatal("Bool(X)")
	}
}

// chain builds y = NOT(AND(a, OR(b, c))).
func chain(t *testing.T) (*circuit.Circuit, map[string]circuit.GateID) {
	t.Helper()
	b := circuit.NewBuilder("chain")
	ids := map[string]circuit.GateID{}
	ids["a"] = b.Input("a")
	ids["b"] = b.Input("b")
	ids["c"] = b.Input("c")
	ids["or"] = b.Gate(circuit.Or, "or", ids["b"], ids["c"])
	ids["and"] = b.Gate(circuit.And, "and", ids["a"], ids["or"])
	ids["not"] = b.Gate(circuit.Not, "not", ids["and"])
	ids["po"] = b.Output("po", ids["not"])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func TestForwardImplications(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	// a=0 forces and=0, not=1, po=1; or stays X.
	if !e.Assign(ids["a"], false) {
		t.Fatal("conflict on single assignment")
	}
	if e.Value(ids["and"]) != Zero {
		t.Errorf("and = %v, want 0", e.Value(ids["and"]))
	}
	if e.Value(ids["not"]) != One || e.Value(ids["po"]) != One {
		t.Error("NOT/PO not forward-implied")
	}
	if e.Value(ids["or"]) != X {
		t.Errorf("or = %v, want X", e.Value(ids["or"]))
	}
}

func TestForwardAllNonControlling(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	if !e.Assign(ids["b"], false) || !e.Assign(ids["c"], false) {
		t.Fatal("unexpected conflict")
	}
	if e.Value(ids["or"]) != Zero {
		t.Errorf("or = %v, want 0 (all inputs non-controlling)", e.Value(ids["or"]))
	}
	if e.Value(ids["and"]) != Zero {
		t.Errorf("and = %v, want 0 (controlled by or=0)", e.Value(ids["and"]))
	}
}

func TestBackwardImplications(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	// po=0 -> not=0 -> and=1 -> a=1 and or=1.
	if !e.Assign(ids["po"], false) {
		t.Fatal("conflict")
	}
	if e.Value(ids["and"]) != One {
		t.Errorf("and = %v, want 1", e.Value(ids["and"]))
	}
	if e.Value(ids["a"]) != One {
		t.Errorf("a = %v, want 1 (AND output 1 forces inputs)", e.Value(ids["a"]))
	}
	if e.Value(ids["or"]) != One {
		t.Errorf("or = %v, want 1", e.Value(ids["or"]))
	}
	// or=1 does not force b or c individually.
	if e.Value(ids["b"]) != X || e.Value(ids["c"]) != X {
		t.Error("OR over-implied its inputs")
	}
}

func TestUnitPropagation(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	// or=1 with b=0 forces c=1.
	if !e.Assign(ids["or"], true) || !e.Assign(ids["b"], false) {
		t.Fatal("conflict")
	}
	if e.Value(ids["c"]) != One {
		t.Errorf("c = %v, want 1 by unit propagation", e.Value(ids["c"]))
	}
}

func TestConflictDetection(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	mark := e.Mark()
	if !e.Assign(ids["a"], false) {
		t.Fatal("first assignment conflicted")
	}
	// and is now 0; requiring and=1 must conflict.
	if e.Assign(ids["and"], true) {
		t.Fatal("expected conflict")
	}
	e.BacktrackTo(mark)
	for name, g := range ids {
		if e.Value(g) != X {
			t.Errorf("%s = %v after backtrack, want X", name, e.Value(g))
		}
	}
	// Engine is reusable after backtracking.
	if !e.Assign(ids["a"], true) {
		t.Fatal("engine unusable after backtrack")
	}
}

func TestConflictAllNonControllingButControlledOutput(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	// or=1 (controlled output) while both inputs are 0 must conflict.
	if !e.Assign(ids["b"], false) || !e.Assign(ids["c"], false) {
		t.Fatal("setup conflict")
	}
	if e.Assign(ids["or"], true) {
		t.Fatal("expected conflict: OR(0,0)=1")
	}
}

func TestMarkBacktrackNesting(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	m0 := e.Mark()
	e.Assign(ids["a"], true)
	m1 := e.Mark()
	e.Assign(ids["b"], true)
	if e.Value(ids["or"]) != One {
		t.Fatal("or should be 1")
	}
	e.BacktrackTo(m1)
	if e.Value(ids["b"]) != X || e.Value(ids["or"]) != X {
		t.Error("inner backtrack incomplete")
	}
	if e.Value(ids["a"]) != One {
		t.Error("inner backtrack removed outer assignment")
	}
	e.BacktrackTo(m0)
	if e.Value(ids["a"]) != X {
		t.Error("outer backtrack incomplete")
	}
}

func TestAssignXNoOp(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	if !e.AssignValue(ids["a"], X) {
		t.Fatal("AssignValue(X) reported conflict")
	}
	if e.Mark() != 0 {
		t.Fatal("AssignValue(X) touched the trail")
	}
}

func TestAssignAll(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	ok := e.AssignAll(
		[]circuit.GateID{ids["a"], ids["b"]},
		[]Value{One, One},
	)
	if !ok {
		t.Fatal("AssignAll conflicted")
	}
	if e.Value(ids["po"]) != Zero {
		t.Errorf("po = %v, want 0", e.Value(ids["po"]))
	}
	e.Reset()
	ok = e.AssignAll(
		[]circuit.GateID{ids["a"], ids["and"]},
		[]Value{Zero, One},
	)
	if ok {
		t.Fatal("AssignAll should conflict")
	}
}

func TestStatsCount(t *testing.T) {
	c, ids := chain(t)
	e := NewEngine(c)
	e.Assign(ids["po"], false)
	total, implied := e.Stats()
	if total < 4 {
		t.Errorf("total assignments = %d, want >= 4", total)
	}
	if implied < 3 {
		t.Errorf("implied assignments = %d, want >= 3", implied)
	}
}

// TestSoundnessExhaustive verifies the core guarantee of the local
// implication engine: if it reports a conflict for a requirement set, then
// no input vector satisfies that set. (The converse need not hold — the
// engine is an approximation.) Verified exhaustively on seeded random
// circuits.
func TestSoundnessExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		rng := rand.New(rand.NewSource(seed * 977))
		e := NewEngine(c)
		// Precompute all reachable full valuations.
		n := len(c.Inputs())
		var valuations [][]bool
		for v := 0; v < 1<<n; v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			valuations = append(valuations, c.EvalBool(in))
		}
		for trial := 0; trial < 60; trial++ {
			// Random requirement set over random gates.
			k := 1 + rng.Intn(4)
			gates := make([]circuit.GateID, k)
			vals := make([]Value, k)
			for i := 0; i < k; i++ {
				gates[i] = circuit.GateID(rng.Intn(c.NumGates()))
				vals[i] = FromBool(rng.Intn(2) == 0)
			}
			mark := e.Mark()
			engineOK := e.AssignAll(gates, vals)
			e.BacktrackTo(mark)

			satisfiable := false
			for _, val := range valuations {
				good := true
				for i, g := range gates {
					want, _ := vals[i].Bool()
					if val[g] != want {
						good = false
						break
					}
				}
				if good {
					satisfiable = true
					break
				}
			}
			if satisfiable && !engineOK {
				t.Fatalf("seed %d trial %d: engine reported conflict for satisfiable requirements %v=%v",
					seed, trial, gates, vals)
			}
		}
	}
}

// TestImplicationCompletenessForced checks that values that are forced at
// every satisfying valuation AND derivable by a single direct rule are
// actually derived (a regression guard for the rule set, not a complete-
// ness claim).
func TestImplicationCompletenessForced(t *testing.T) {
	b := circuit.NewBuilder("forced")
	a := b.Input("a")
	x := b.Input("x")
	g := b.Gate(Nand2(), "g", a, x)
	b.Output("po", g)
	c := b.MustBuild()
	e := NewEngine(c)
	// NAND output 0 forces both inputs to 1.
	if !e.Assign(g, false) {
		t.Fatal("conflict")
	}
	if e.Value(a) != One || e.Value(x) != One {
		t.Error("NAND=0 did not force inputs to 1")
	}
}

// Nand2 returns the NAND gate type (helper keeping the test body terse).
func Nand2() circuit.GateType { return circuit.Nand }

func BenchmarkImplicationEngine(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 64, Gates: 2000, Outputs: 32}, 42)
	e := NewEngine(c)
	ins := c.Inputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := e.Mark()
		for j, g := range ins {
			if !e.Assign(g, (i+j)%3 == 0) {
				break
			}
		}
		e.BacktrackTo(mark)
	}
}

// TestSnapshotRestore: a restored engine is indistinguishable from the
// one the snapshot was taken from — same values everywhere, and identical
// behavior for any subsequent assignment sequence.
func TestSnapshotRestore(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 2}, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		a := NewEngine(c)
		for i := 0; i < 3; i++ {
			a.Assign(circuit.GateID(rng.Intn(c.NumGates())), rng.Intn(2) == 0)
		}
		snap := a.Snapshot()
		b := NewEngine(c)
		b.Assign(c.Inputs()[0], true) // pre-existing state must be wiped
		b.Restore(snap)
		for g := 0; g < c.NumGates(); g++ {
			if a.Value(circuit.GateID(g)) != b.Value(circuit.GateID(g)) {
				t.Fatalf("seed %d: gate %d differs after restore", seed, g)
			}
		}
		if a.Mark() != b.Mark() {
			t.Fatalf("seed %d: trail length %d != %d", seed, a.Mark(), b.Mark())
		}
		// Continue both engines with the same assignments: identical
		// conflict outcomes and values.
		for trial := 0; trial < 30; trial++ {
			g := circuit.GateID(rng.Intn(c.NumGates()))
			v := rng.Intn(2) == 0
			ma, mb := a.Mark(), b.Mark()
			oka, okb := a.Assign(g, v), b.Assign(g, v)
			if oka != okb {
				t.Fatalf("seed %d trial %d: assign diverged (%v vs %v)", seed, trial, oka, okb)
			}
			for gg := 0; gg < c.NumGates(); gg++ {
				if a.Value(circuit.GateID(gg)) != b.Value(circuit.GateID(gg)) {
					t.Fatalf("seed %d trial %d: value diverged at gate %d", seed, trial, gg)
				}
			}
			if !oka {
				a.BacktrackTo(ma)
				b.BacktrackTo(mb)
			}
		}
	}
}

// TestSnapshotSharedAcrossEngines: one snapshot may be restored into many
// engines (parallel work stealing hands the same prefix to several
// thieves) without the restores interfering.
func TestSnapshotSharedAcrossEngines(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 2}, 7)
	a := NewEngine(c)
	a.Assign(c.Inputs()[0], true)
	a.Assign(c.Inputs()[1], false)
	snap := a.Snapshot()
	b1, b2 := NewEngine(c), NewEngine(c)
	b1.Restore(snap)
	b2.Restore(snap)
	b1.Assign(c.Inputs()[2], true)
	b2.BacktrackTo(0) // must not corrupt snap or b1
	b1.BacktrackTo(0)
	b1.Restore(snap)
	for g := 0; g < c.NumGates(); g++ {
		if a.Value(circuit.GateID(g)) != b1.Value(circuit.GateID(g)) {
			t.Fatalf("snapshot corrupted by sibling restore at gate %d", g)
		}
	}
}

// chainWithPadding builds a NOT-chain of the given depth from one input
// to one output, padded with extra disconnected input->buf->output
// triples so the circuit has roughly `gates` total gates. The chain depth
// is what a DFS backtrack must undo; the padding is what a naive
// O(numGates) clear would scan.
func chainWithPadding(depth, gates int) (*circuit.Circuit, circuit.GateID) {
	b := circuit.NewBuilder("deep")
	head := b.Input("head")
	cur := head
	for i := 0; i < depth; i++ {
		cur = b.Gate(circuit.Not, fmt.Sprintf("n%d", i), cur)
	}
	b.Output("po", cur)
	for i := 0; 3*i < gates-depth; i++ {
		in := b.Input(fmt.Sprintf("pi%d", i))
		buf := b.Gate(circuit.Buf, fmt.Sprintf("b%d", i), in)
		b.Output(fmt.Sprintf("pad%d", i), buf)
	}
	return b.MustBuild(), head
}

// BenchmarkDeepBacktrack measures one assign-through-a-64-deep-chain plus
// the backtrack that undoes it, at growing circuit sizes. With drain-
// based queue clearing the cost depends only on the trail delta (the
// chain), so ns/op must stay flat as the padding grows 64x.
func BenchmarkDeepBacktrack(b *testing.B) {
	for _, gates := range []int{2_000, 16_000, 128_000} {
		b.Run(fmt.Sprintf("gates=%d", gates), func(b *testing.B) {
			c, head := chainWithPadding(64, gates)
			e := NewEngine(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mark := e.Mark()
				if !e.Assign(head, i%2 == 0) {
					b.Fatal("conflict on chain assign")
				}
				e.BacktrackTo(mark)
			}
		})
	}
}

// Property (testing/quick): any assignment sequence fully unwinds — after
// BacktrackTo(0) every gate is X again and the engine accepts new work.
func TestQuickBacktrackRestoresAll(t *testing.T) {
	c := gen.RandomCircuit("q", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 2}, 11)
	e := NewEngine(c)
	f := func(picks []uint16) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		for _, p := range picks {
			g := circuit.GateID(int(p) % c.NumGates())
			if !e.Assign(g, p&1 == 0) {
				break
			}
		}
		e.BacktrackTo(0)
		for g := 0; g < c.NumGates(); g++ {
			if e.Value(circuit.GateID(g)) != X {
				return false
			}
		}
		return e.Assign(c.Inputs()[0], true) && func() bool { e.BacktrackTo(0); return true }()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the engine is monotone — assigning a subset of requirements
// never conflicts if the full set does not.
func TestQuickMonotonicity(t *testing.T) {
	c := gen.RandomCircuit("q", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, 13)
	e := NewEngine(c)
	f := func(picks []uint16, cut uint8) bool {
		if len(picks) > 8 {
			picks = picks[:8]
		}
		apply := func(ps []uint16) bool {
			mark := e.Mark()
			defer e.BacktrackTo(mark)
			for _, p := range ps {
				g := circuit.GateID(int(p) % c.NumGates())
				if !e.Assign(g, p&1 == 0) {
					return false
				}
			}
			return true
		}
		fullOK := apply(picks)
		if !fullOK {
			return true // nothing claimed about supersets of conflicts
		}
		k := int(cut) % (len(picks) + 1)
		return apply(picks[:k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
