package logic

import (
	"rdfault/internal/circuit"
)

// RefEngine is the retained pointer-structure implication engine: the
// implementation Engine had before the cache-flat rewrite, walking
// Gate.Fanin slices and per-gate []Edge fanout lists with one byte-wide
// Value per gate. It exists as the behavioral reference for the fast
// engine — the differential property tests and the native fuzz target
// drive both engines through identical scripts and require identical
// values, conflicts and trail lengths at every step — and as the
// fallback documentation of the implication rules in their most readable
// form. Production call sites use Engine; nothing outside the tests
// should need a RefEngine.
//
// A RefEngine is not safe for concurrent use.
type RefEngine struct {
	c     *circuit.Circuit
	val   []Value
	trail []circuit.GateID

	queue   []circuit.GateID
	queued  []bool
	confl   bool
	nAssign int64
	nImply  int64
}

// NewRefEngine returns a reference implication engine for c with all
// gates at X.
func NewRefEngine(c *circuit.Circuit) *RefEngine {
	n := c.NumGates()
	return &RefEngine{
		c:      c,
		val:    make([]Value, n),
		queued: make([]bool, n),
	}
}

// Circuit returns the circuit the engine operates on.
func (e *RefEngine) Circuit() *circuit.Circuit { return e.c }

// Value returns the current stable value of gate g.
func (e *RefEngine) Value(g circuit.GateID) Value { return e.val[g] }

// Mark returns the current trail position for a later BacktrackTo.
func (e *RefEngine) Mark() int { return len(e.trail) }

// BacktrackTo undoes every assignment made after the corresponding Mark
// call and clears any recorded conflict.
func (e *RefEngine) BacktrackTo(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		e.val[e.trail[i]] = X
	}
	e.trail = e.trail[:mark]
	e.confl = false
	e.drainQueue()
}

// drainQueue discards pending work, unmarking only the gates actually
// enqueued instead of sweeping the whole per-gate queued array.
func (e *RefEngine) drainQueue() {
	for _, g := range e.queue {
		e.queued[g] = false
	}
	e.queue = e.queue[:0]
}

// Reset clears all assignments.
func (e *RefEngine) Reset() { e.BacktrackTo(0) }

// Stats returns the number of explicit+implied assignments and the number
// of implied assignments alone, since engine creation.
func (e *RefEngine) Stats() (assignments, implications int64) {
	return e.nAssign, e.nImply
}

// Assign asserts that gate g has stable value v (a boolean) and runs
// direct implications to closure; false means a contradiction.
func (e *RefEngine) Assign(g circuit.GateID, v bool) bool {
	return e.AssignValue(g, FromBool(v))
}

// AssignValue is Assign for a Value; asserting X is a no-op.
func (e *RefEngine) AssignValue(g circuit.GateID, v Value) bool {
	if v == X {
		return !e.confl
	}
	if !e.set(g, v) {
		return false
	}
	return e.propagate()
}

// set records a single assignment without propagating. It returns false on
// immediate conflict.
func (e *RefEngine) set(g circuit.GateID, v Value) bool {
	cur := e.val[g]
	if cur == v {
		return true
	}
	if cur != X {
		e.confl = true
		return false
	}
	e.val[g] = v
	e.trail = append(e.trail, g)
	e.nAssign++
	e.enqueue(g)
	for _, edge := range e.c.Fanout(g) {
		e.enqueue(edge.To)
	}
	return true
}

func (e *RefEngine) enqueue(g circuit.GateID) {
	if !e.queued[g] {
		e.queued[g] = true
		e.queue = append(e.queue, g)
	}
}

// propagate runs the work list to fixpoint or first conflict.
func (e *RefEngine) propagate() bool {
	for len(e.queue) > 0 {
		g := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.queued[g] = false
		if !e.eval(g) {
			e.drainQueue()
			return false
		}
	}
	return true
}

// imply records a derived assignment.
func (e *RefEngine) imply(g circuit.GateID, v Value) bool {
	before := e.nAssign
	if !e.set(g, v) {
		return false
	}
	if e.nAssign > before {
		e.nImply++
	}
	return true
}

// eval applies all direct implication rules available at gate g: forward
// evaluation from its fanins and backward justification from its own
// value toward its fanins.
func (e *RefEngine) eval(g circuit.GateID) bool {
	t := e.c.Type(g)
	switch t {
	case circuit.Input:
		return true
	case circuit.Output, circuit.Buf, circuit.Not:
		in := e.c.Fanin(g)[0]
		inv := t == circuit.Not
		iv := e.val[in]
		ov := e.val[g]
		if inv {
			iv = iv.Not()
		}
		// Forward: out := f(in).
		if iv.Known() && !e.imply(g, iv) {
			return false
		}
		// Backward: in := f^-1(out).
		want := ov
		if inv {
			want = want.Not()
		}
		if want.Known() && !e.imply(in, want) {
			return false
		}
		return true
	}

	// Simple gates AND/OR/NAND/NOR.
	ctrlB, _ := t.Controlling()
	ctrl := FromBool(ctrlB)
	nonCtrl := ctrl.Not()
	inv := t.Inverting()
	outIfCtrl := ctrl
	outIfNon := nonCtrl
	if inv {
		outIfCtrl, outIfNon = outIfCtrl.Not(), outIfNon.Not()
	}

	fanin := e.c.Fanin(g)
	unknown := 0
	var lastUnknown circuit.GateID
	anyCtrl := false
	for _, f := range fanin {
		switch e.val[f] {
		case ctrl:
			anyCtrl = true
		case X:
			unknown++
			lastUnknown = f
		}
	}

	// Forward implications.
	if anyCtrl {
		if !e.imply(g, outIfCtrl) {
			return false
		}
	} else if unknown == 0 {
		if !e.imply(g, outIfNon) {
			return false
		}
	}

	// Backward implications.
	switch e.val[g] {
	case outIfNon:
		// No input may be controlling.
		for _, f := range fanin {
			if !e.imply(f, nonCtrl) {
				return false
			}
		}
	case outIfCtrl:
		// At least one input controlling; unit-propagate when forced.
		if !anyCtrl {
			if unknown == 0 {
				e.confl = true
				return false
			}
			if unknown == 1 {
				if !e.imply(lastUnknown, ctrl) {
					return false
				}
			}
		}
	}
	return true
}

// Snapshot captures the engine's current assignments; the result is
// interchangeable with Engine.Snapshot.
func (e *RefEngine) Snapshot() Snapshot {
	s := Snapshot{
		gates: append([]circuit.GateID(nil), e.trail...),
		vals:  make([]Value, len(e.trail)),
	}
	for i, g := range e.trail {
		s.vals[i] = e.val[g]
	}
	return s
}

// Restore resets e and installs s verbatim, without re-running
// implications (snapshots are implication-closed by construction).
func (e *RefEngine) Restore(s Snapshot) {
	e.BacktrackTo(0)
	for i, g := range s.gates {
		e.val[g] = s.vals[i]
	}
	e.trail = append(e.trail, s.gates...)
}

// AssignAll asserts a set of (gate, value) requirements in order, stopping
// at the first conflict. It reports whether all assertions succeeded.
func (e *RefEngine) AssignAll(gates []circuit.GateID, vals []Value) bool {
	for i, g := range gates {
		if !e.AssignValue(g, vals[i]) {
			return false
		}
	}
	return true
}
