// Package logic provides the three-valued stable-value domain {0, 1, X}
// and an incremental direct-implication engine over a circuit.
//
// The engine implements exactly the approximation used by Algorithm 2 of
// Sparmann et al. (DAC 1995), following Cheng/Chen (ITC 1993): a set of
// stable-value requirements is declared unsatisfiable only if *local*
// implications (forward gate evaluation and backward justification of
// forced values) derive a contradiction. No search is performed, so "no
// conflict" does not guarantee satisfiability — the callers obtain
// supersets of the exactly-sensitizable path sets, which keeps the derived
// RD-sets sound.
package logic

// Value is a three-valued stable logic value.
type Value uint8

// The three stable values. X means "unconstrained / unknown".
const (
	X Value = iota
	Zero
	One
)

// FromBool converts a boolean to Zero or One.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// Bool returns the boolean for Zero or One; ok is false for X.
func (v Value) Bool() (b, ok bool) {
	switch v {
	case Zero:
		return false, true
	case One:
		return true, true
	}
	return false, false
}

// Not returns the complement; X stays X.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// Known reports whether v is Zero or One.
func (v Value) Known() bool { return v != X }

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	}
	return "X"
}
