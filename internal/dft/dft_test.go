package dft

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/tgen"
)

// untestableSelected returns the functionally-sensitizable-only paths of
// the circuit — the DFT candidates of Example 3.
func untestableSelected(c *circuit.Circuit) []paths.Logical {
	gn := tgen.NewGenerator(c)
	var out []paths.Logical
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		cp := paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne}
		if gn.Classify(cp) == tgen.FuncSensitizable {
			out = append(out, cp)
		}
		return true
	})
	return out
}

func TestProposeOnPaperExample(t *testing.T) {
	c := gen.PaperExample()
	un := untestableSelected(c)
	if len(un) != 3 {
		t.Fatalf("example has %d FS-only paths, want 3", len(un))
	}
	props := Propose(c, un)
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
	for _, p := range props {
		if !p.Blocking {
			t.Errorf("proposal %s not conflict-derived", p.String(c))
		}
		if p.String(c) == "" {
			t.Error("empty proposal string")
		}
	}
}

func TestInsertPreservesFunction(t *testing.T) {
	c := gen.PaperExample()
	props := Propose(c, untestableSelected(c))
	mod, err := Insert(c, props)
	if err != nil {
		t.Fatal(err)
	}
	// With all test points at 0, the modified circuit must compute the
	// original function.
	nOrig := len(c.Inputs())
	nMod := len(mod.Inputs())
	for v := 0; v < 1<<nOrig; v++ {
		in := make([]bool, nOrig)
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		modIn := append(append([]bool{}, in...), make([]bool, nMod-nOrig)...)
		want := c.OutputsOf(c.EvalBool(in))
		got := mod.OutputsOf(mod.EvalBool(modIn))
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("function changed at v=%d output %d", v, o)
			}
		}
	}
}

func TestInsertionMakesPathsTestable(t *testing.T) {
	c := gen.PaperExample()
	un := untestableSelected(c)
	props := Propose(c, un)
	mod, err := Insert(c, props)
	if err != nil {
		t.Fatal(err)
	}
	gn := tgen.NewGenerator(mod)
	improved := 0
	for _, lp := range un {
		np, err := RemapPath(c, mod, lp.Path)
		if err != nil {
			t.Fatal(err)
		}
		cl := gn.Classify(paths.Logical{Path: np, FinalOne: lp.FinalOne})
		if cl >= tgen.NonRobust {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("no untestable path became testable after insertion")
	}
	t.Logf("%d of %d untestable paths became testable with %d control points",
		improved, len(un), len(props))
}

func TestInsertionOnRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		un := untestableSelected(c)
		if len(un) == 0 {
			continue
		}
		props := Propose(c, un)
		if len(props) == 0 {
			continue
		}
		mod, err := Insert(c, props)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Function preserved with test points at 0.
		nOrig := len(c.Inputs())
		nMod := len(mod.Inputs())
		for v := 0; v < 1<<nOrig; v++ {
			in := make([]bool, nOrig)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			modIn := append(append([]bool{}, in...), make([]bool, nMod-nOrig)...)
			want := c.OutputsOf(c.EvalBool(in))
			got := mod.OutputsOf(mod.EvalBool(modIn))
			for o := range want {
				if want[o] != got[o] {
					t.Fatalf("seed %d: function changed", seed)
				}
			}
		}
		// Remapped paths stay structurally valid.
		for _, lp := range un {
			np, err := RemapPath(c, mod, lp.Path)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for i := 0; i+1 < len(np.Gates); i++ {
				if mod.Fanin(np.Gates[i+1])[np.Pins[i]] != np.Gates[i] {
					t.Fatalf("seed %d: remapped path broken", seed)
				}
			}
		}
	}
}

func TestInsertRejectsDuplicates(t *testing.T) {
	c := gen.PaperExample()
	g, _ := c.GateByName("g")
	p := Proposal{Lead: circuit.Lead{To: g, Pin: 0}, ForceTo: true}
	if _, err := Insert(c, []Proposal{p, p}); err == nil {
		t.Fatal("duplicate proposals accepted")
	}
}

func TestRemapIdentityWithoutInsertion(t *testing.T) {
	c := gen.PaperExample()
	mod, err := Insert(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := paths.Collect(c, 0)
	for _, p := range ps {
		np, err := RemapPath(c, mod, p)
		if err != nil {
			t.Fatal(err)
		}
		if np.Len() != p.Len() {
			t.Fatal("identity remap changed length")
		}
	}
}

func TestObservePoints(t *testing.T) {
	c := gen.PaperExample()
	un := untestableSelected(c)
	sites := ProposeObservePoints(c, un)
	if len(sites) == 0 {
		t.Fatal("no observation sites proposed")
	}
	mod, err := InsertObservePoints(c, sites)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Outputs()) != len(c.Outputs())+len(sites) {
		t.Fatal("taps not added")
	}
	// Original outputs unchanged.
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		a := c.OutputsOf(c.EvalBool(in))
		b := mod.OutputsOf(mod.EvalBool(in))
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("observation points changed the function")
			}
		}
	}
	// The tapped prefixes become testable: each untestable path's prefix
	// up to a tap is now a full path to the new PO; classify it.
	gn := tgen.NewGenerator(mod)
	improved := 0
	for _, lp := range un {
		np, err := RemapPath(c, mod, lp.Path)
		if err != nil {
			t.Fatal(err)
		}
		// Truncate at the first tapped gate and redirect to its new PO.
		for i, g := range np.Gates {
			name := mod.Gate(g).Name
			_ = name
			for oi := len(c.Outputs()); oi < len(mod.Outputs()); oi++ {
				po := mod.Outputs()[oi]
				if mod.Fanin(po)[0] != g {
					continue
				}
				short := paths.Path{
					Gates: append(append([]circuit.GateID{}, np.Gates[:i+1]...), po),
					Pins:  append(append([]int{}, np.Pins[:i]...), 0),
				}
				if gn.Classify(paths.Logical{Path: short, FinalOne: lp.FinalOne}) >= tgen.NonRobust {
					improved++
				}
			}
		}
	}
	if improved == 0 {
		t.Fatal("no truncated path became testable through a tap")
	}
	t.Logf("%d tapped prefixes became testable via %d observation points", improved, len(sites))
}

func TestInsertObservePointsErrors(t *testing.T) {
	c := gen.PaperExample()
	g, _ := c.GateByName("g")
	if _, err := InsertObservePoints(c, []circuit.GateID{g, g}); err == nil {
		t.Error("duplicate tap accepted")
	}
	if _, err := InsertObservePoints(c, []circuit.GateID{c.Outputs()[0]}); err == nil {
		t.Error("tapping a PO accepted")
	}
}
