// Package dft proposes and inserts design-for-testability control points
// for the logical paths that RD identification keeps but no two-pattern
// test can exercise — the paths Example 3 of the paper says "must be
// considered for design for testability modifications".
//
// For each untestable kept path the local-implication engine is replayed
// over the non-robust sensitization conditions (Definition 5); the side
// input whose requirement first contradicts the others is the blocking
// site, and a control point there lets a tester force the required
// non-controlling value:
//
//   - a side that must be forced to 1 gets s' = OR(s, tp)
//   - a side that must be forced to 0 gets s' = AND(s, NOT tp)
//
// with tp a fresh test-mode primary input that is 0 in normal operation,
// preserving the original function.
package dft

import (
	"fmt"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/logic"
	"rdfault/internal/paths"
)

// Proposal is one control-point suggestion: the lead whose source must
// become forcible to the given value.
type Proposal struct {
	Lead    circuit.Lead
	ForceTo bool
	// Blocking reports whether the site was identified from an actual
	// implication conflict (true) or by the depth fallback for paths the
	// engine could not localize (false).
	Blocking bool
}

// String renders the proposal using gate names.
func (p Proposal) String(c *circuit.Circuit) string {
	v := "0"
	if p.ForceTo {
		v = "1"
	}
	kind := "fallback"
	if p.Blocking {
		kind = "conflict"
	}
	return fmt.Sprintf("force %s->%s(pin %d) to %s [%s]",
		c.Gate(c.Source(p.Lead)).Name, c.Gate(p.Lead.To).Name, p.Lead.Pin, v, kind)
}

// Propose analyses the given untestable logical paths and returns a
// deduplicated list of control points, one per distinct blocking site.
func Propose(c *circuit.Circuit, untestable []paths.Logical) []Proposal {
	an := analysis.For(c)
	e := an.Engine()
	defer an.PutEngine(e)
	seen := map[circuit.Lead]bool{}
	var out []Proposal
	add := func(p Proposal) {
		if !seen[p.Lead] {
			seen[p.Lead] = true
			out = append(out, p)
		}
	}
	for _, lp := range untestable {
		if p, ok := blockingSite(c, e, lp); ok {
			add(p)
			continue
		}
		// Fallback: the deepest gate with side inputs.
		for i := len(lp.Path.Gates) - 1; i >= 1; i-- {
			g := lp.Path.Gates[i]
			ctrl, hasCtrl := c.Type(g).Controlling()
			if !hasCtrl || len(c.Fanin(g)) < 2 {
				continue
			}
			for pin := range c.Fanin(g) {
				if pin != lp.Path.Pins[i-1] {
					add(Proposal{Lead: circuit.Lead{To: g, Pin: pin}, ForceTo: !ctrl})
					break
				}
			}
			break
		}
	}
	return out
}

// blockingSite replays Definition 5's conditions and reports the side
// lead whose requirement first conflicts.
func blockingSite(c *circuit.Circuit, e *logic.Engine, lp paths.Logical) (Proposal, bool) {
	mark := e.Mark()
	defer e.BacktrackTo(mark)
	if !e.Assign(lp.Path.PI(), lp.FinalOne) {
		return Proposal{}, false
	}
	val := lp.FinalOne
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		typ := c.Type(g)
		nval := val != typ.Inverting()
		if ctrl, hasCtrl := typ.Controlling(); hasCtrl {
			for pin, f := range c.Fanin(g) {
				if pin == lp.Path.Pins[i-1] {
					continue
				}
				if !e.Assign(f, !ctrl) {
					return Proposal{
						Lead:     circuit.Lead{To: g, Pin: pin},
						ForceTo:  !ctrl,
						Blocking: true,
					}, true
				}
			}
		}
		if !e.Assign(g, nval) {
			// The on-path value itself is contradicted; treat the first
			// side of this gate as the site.
			for pin := range c.Fanin(g) {
				if pin != lp.Path.Pins[i-1] {
					ctrl, _ := typ.Controlling()
					return Proposal{
						Lead:     circuit.Lead{To: g, Pin: pin},
						ForceTo:  !ctrl,
						Blocking: true,
					}, true
				}
			}
			return Proposal{}, false
		}
		val = nval
	}
	return Proposal{}, false
}

// Insert applies the proposals to c and returns the modified circuit.
// Test-point inputs are named "tp0", "tp1", ... in proposal order; gate
// names of the original circuit are preserved, so paths can be remapped
// by name with RemapPath.
func Insert(c *circuit.Circuit, props []Proposal) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(c.Name() + "+dft")
	newID := make([]circuit.GateID, c.NumGates())
	// Inputs first (keeping order), then test points, then logic.
	for _, pi := range c.Inputs() {
		newID[pi] = b.Input(c.Gate(pi).Name)
	}
	tp := make([]circuit.GateID, len(props))
	for i := range props {
		tp[i] = b.Input(fmt.Sprintf("tp%d", i))
	}
	// Which proposal covers which lead.
	propAt := map[circuit.Lead]int{}
	for i, p := range props {
		if _, dup := propAt[p.Lead]; dup {
			return nil, fmt.Errorf("dft: duplicate proposal for lead %v", p.Lead)
		}
		propAt[p.Lead] = i
	}
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Output:
			newID[g] = b.Output(gate.Name, newID[gate.Fanin[0]])
		default:
			fanin := make([]circuit.GateID, len(gate.Fanin))
			for pin, f := range gate.Fanin {
				src := newID[f]
				if pi, ok := propAt[circuit.Lead{To: g, Pin: pin}]; ok {
					if props[pi].ForceTo {
						src = b.Gate(circuit.Or, fmt.Sprintf("tpor%d", pi), src, tp[pi])
					} else {
						ninv := b.Gate(circuit.Not, fmt.Sprintf("tpn%d", pi), tp[pi])
						src = b.Gate(circuit.And, fmt.Sprintf("tpand%d", pi), src, ninv)
					}
				}
				fanin[pin] = src
			}
			newID[g] = b.Gate(gate.Type, gate.Name, fanin...)
		}
	}
	return b.Build()
}

// RemapPath translates a path of the original circuit into the modified
// one by gate name. When a control point was inserted on one of the
// path's own leads, the wrapper gate is spliced into the returned path
// (the physical wire now runs through it).
func RemapPath(orig, modified *circuit.Circuit, p paths.Path) (paths.Path, error) {
	var out paths.Path
	prev := circuit.None
	for i, g := range p.Gates {
		ng, ok := modified.GateByName(orig.Gate(g).Name)
		if !ok {
			return paths.Path{}, fmt.Errorf("dft: gate %q missing after insertion", orig.Gate(g).Name)
		}
		if i > 0 {
			pin := p.Pins[i-1]
			src := modified.Fanin(ng)[pin]
			if src != prev {
				// A wrapper sits on this lead; its pin 0 is the original
				// signal.
				if modified.Fanin(src)[0] != prev {
					return paths.Path{}, fmt.Errorf("dft: lead into %q no longer traceable", orig.Gate(g).Name)
				}
				out.Gates = append(out.Gates, src)
				out.Pins = append(out.Pins, 0)
				prev = src
			}
			out.Pins = append(out.Pins, pin)
		}
		out.Gates = append(out.Gates, ng)
		prev = ng
	}
	return out, nil
}

// InsertObservePoints adds observation points: each listed gate's output
// is tapped by a fresh primary output named "op<i>". Paths that only
// failed because their downstream propagation was blocked become
// testable up to the tap; the original function is untouched.
func InsertObservePoints(c *circuit.Circuit, gates []circuit.GateID) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(c.Name() + "+obs")
	newID := make([]circuit.GateID, c.NumGates())
	for _, pi := range c.Inputs() {
		newID[pi] = b.Input(c.Gate(pi).Name)
	}
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Output:
			newID[g] = b.Output(gate.Name, newID[gate.Fanin[0]])
		default:
			fanin := make([]circuit.GateID, len(gate.Fanin))
			for pin, f := range gate.Fanin {
				fanin[pin] = newID[f]
			}
			newID[g] = b.Gate(gate.Type, gate.Name, fanin...)
		}
	}
	seen := map[circuit.GateID]bool{}
	for i, g := range gates {
		if seen[g] {
			return nil, fmt.Errorf("dft: duplicate observation point %q", c.Gate(g).Name)
		}
		seen[g] = true
		switch c.Type(g) {
		case circuit.Output:
			return nil, fmt.Errorf("dft: %q is already a PO", c.Gate(g).Name)
		case circuit.Input:
			// Tapping a PI is legal (direct observation).
		}
		b.Output(fmt.Sprintf("op%d", i), newID[g])
	}
	return b.Build()
}

// ProposeObservePoints suggests observation sites for untestable paths:
// the deepest on-path gate up to which the path IS non-robustly testable
// (checked by implication replay of the prefix conditions). Duplicates
// are merged.
func ProposeObservePoints(c *circuit.Circuit, untestable []paths.Logical) []circuit.GateID {
	an := analysis.For(c)
	e := an.Engine()
	defer an.PutEngine(e)
	seen := map[circuit.GateID]bool{}
	var out []circuit.GateID
	for _, lp := range untestable {
		g, ok := deepestFeasiblePrefix(c, e, lp)
		if !ok || seen[g] {
			continue
		}
		seen[g] = true
		out = append(out, g)
	}
	return out
}

// deepestFeasiblePrefix walks the path asserting Definition 5 conditions
// and returns the last on-path gate before the first conflict (None when
// even the PI assignment fails or the whole path is feasible locally).
func deepestFeasiblePrefix(c *circuit.Circuit, e *logic.Engine, lp paths.Logical) (circuit.GateID, bool) {
	mark := e.Mark()
	defer e.BacktrackTo(mark)
	if !e.Assign(lp.Path.PI(), lp.FinalOne) {
		return circuit.None, false
	}
	val := lp.FinalOne
	last := lp.Path.PI()
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		typ := c.Type(g)
		nval := val != typ.Inverting()
		if ctrl, hasCtrl := typ.Controlling(); hasCtrl {
			for pin, f := range c.Fanin(g) {
				if pin == lp.Path.Pins[i-1] {
					continue
				}
				if !e.Assign(f, !ctrl) {
					if c.Type(last) == circuit.Input {
						return circuit.None, false // nothing worth tapping
					}
					return last, true
				}
			}
		}
		if !e.Assign(g, nval) {
			if c.Type(last) == circuit.Input {
				return circuit.None, false
			}
			return last, true
		}
		val = nval
		last = g
	}
	return circuit.None, false // feasible locally; observation won't help
}
