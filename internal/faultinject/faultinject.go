// Package faultinject is the deterministic chaos layer of the RD
// pipeline: named injection points threaded through the service
// (internal/serve), the enumeration engine (internal/core) and the
// analysis manager (internal/analysis) that, when armed, fire seeded
// faults — allocation/admission failures, worker panics, slow I/O,
// checkpoint byte corruption and clock skew.
//
// The package exists so resilience claims are proved, not asserted: a
// chaos test activates a Plan, drives the real code path, and checks
// that every injected fault maps to a typed error or a correctly-labeled
// degraded answer — never a wrong one.
//
// Design constraints:
//
//   - Zero overhead when disarmed. Every hook starts with one atomic
//     pointer load; production binaries never activate a plan, so the
//     hooks cost a predictable branch on a nil.
//   - Deterministic. A Rule fires on explicit hit numbers of its point
//     (per-point atomic hit counters), and byte corruption is drawn from
//     a splitmix64 stream seeded by the Rule — the same plan against the
//     same (serial) execution corrupts the same bytes. Under concurrency
//     the hit *order* follows the schedule, which is why chaos tests arm
//     points that are serial (admission, spill) or fire on every hit.
//   - One process-global active plan. Activation returns a restore
//     function; tests activate/restore around a scenario. Nested
//     activation is rejected — overlapping chaos runs would make hit
//     accounting meaningless.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Kind says what a rule does when it fires.
type Kind uint8

const (
	// KindError makes Fire return an *Error (a failed allocation, a
	// refused admission, a failed write — the caller's error path).
	KindError Kind = iota
	// KindPanic makes Fire panic with an *Error (a crashed worker).
	KindPanic
	// KindSleep makes Fire block for Rule.Delay before returning nil
	// (slow I/O, a wedged disk).
	KindSleep
	// KindCorrupt applies to Corrupt only: the rule mutates the byte
	// slice passing through the point (checkpoint rot).
	KindCorrupt
	// KindSkew applies to Now only: the rule shifts the clock the point
	// observes by Rule.Skew (NTP step, VM pause).
	KindSkew
	// KindFreeze applies to Now only: the point observes a deterministic
	// clock that starts at Rule.Base and advances by Rule.Skew per
	// arrival, independent of the wall clock. This is what makes
	// telemetry event logs byte-reproducible: the same plan against the
	// same execution stamps the same timestamps.
	KindFreeze
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindSleep:
		return "sleep"
	case KindCorrupt:
		return "corrupt"
	case KindSkew:
		return "skew"
	case KindFreeze:
		return "freeze"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Rule arms one fault at one injection point.
type Rule struct {
	// Point is the injection point name, e.g. "core.checkpoint.write".
	// The point name is the contract between the hook site and the test;
	// the Points table below lists every point this repo threads.
	Point string
	// Kind selects the fault; see the Kind constants.
	Kind Kind
	// Hit fires the rule on the Nth arrival at the point only (1-based).
	// 0 fires on every arrival (subject to Count).
	Hit uint64
	// Count caps how many times the rule fires (0 = unlimited).
	Count uint64
	// Delay is the KindSleep blocking time.
	Delay time.Duration
	// Skew is the KindSkew clock shift (may be negative); for KindFreeze
	// it is the per-arrival step of the frozen clock.
	Skew time.Duration
	// Base is the KindFreeze clock's starting instant (zero means the
	// zero time — still deterministic).
	Base time.Time
	// Seed drives KindCorrupt's deterministic byte mutations.
	Seed int64
}

// Points threaded through this repository, for reference and for tests
// that want to iterate over every scenario.
const (
	// PointWorker fires inside every enumeration worker task
	// (core.Enumerate); KindPanic there exercises the panic-isolation
	// path (StatusDegraded).
	PointWorker = "core.enumerate.worker"
	// PointCheckpointWrite fires before a checkpoint file write;
	// KindSleep wedges the writer, KindError fails it.
	PointCheckpointWrite = "core.checkpoint.write"
	// PointCheckpointRead fires before a checkpoint file read.
	PointCheckpointRead = "core.checkpoint.read"
	// PointCheckpointBytes corrupts the serialized checkpoint bytes on
	// their way to disk (KindCorrupt).
	PointCheckpointBytes = "core.checkpoint.bytes"
	// PointAnalysisMemo fires inside analysis.(*Analysis).Memo before
	// the memoized computation runs; KindError simulates a failed
	// derived-data allocation.
	PointAnalysisMemo = "analysis.memo"
	// PointBudgetReserve fires inside serve's budget reservation;
	// KindError simulates memory exhaustion at admission.
	PointBudgetReserve = "serve.budget.reserve"
	// PointSpill fires around serve's checkpoint spill-to-disk.
	PointSpill = "serve.spill"
	// PointClock shifts the clock serve uses for deadlines and
	// Retry-After arithmetic (KindSkew).
	PointClock = "serve.clock"
	// PointFleetDispatch fires in the fleet transport before a cone
	// dispatch leaves the coordinator; KindError drops the request on the
	// floor (network failure), KindSleep delays it.
	PointFleetDispatch = "fleet.dispatch"
	// PointFleetLatency fires in the fleet transport after a worker's
	// response is received but before the coordinator processes it;
	// KindSleep turns a healthy worker into a slow one, which is how the
	// chaos suite manufactures zombie replies (the coordinator gives up,
	// reassigns the cone, and the late answer must be discarded).
	PointFleetLatency = "fleet.latency"
	// PointFleetResponseCorrupt corrupts the response bytes a worker sent
	// back (KindCorrupt) — a flaky proxy or truncated read.
	PointFleetResponseCorrupt = "fleet.response.corrupt"
	// PointFleetWorkerKill fires in the fleet transport before each
	// dispatch; a firing rule makes the harness kill the destination
	// worker first (listener closed, in-flight work lost), so the dispatch
	// and everything after it sees a genuinely dead node.
	PointFleetWorkerKill = "fleet.worker.kill"
	// PointFleetClock shifts the clock the coordinator stamps its event
	// log and deadlines with (KindSkew).
	PointFleetClock = "fleet.clock"
	// PointTelemetryClock is the clock the telemetry event log stamps
	// entries with; a KindFreeze rule here makes a run's event log
	// byte-deterministic (production traces replay as chaos cases).
	PointTelemetryClock = "telemetry.clock"
	// PointStoreRead fires before the result store reads an entry from
	// disk (KindError makes lookups fail like an I/O error; the store
	// must degrade to recomputation, never serve a wrong answer).
	PointStoreRead = "store.read"
	// PointStoreWrite fires before the result store persists an entry
	// (KindError loses the write; identification still answers).
	PointStoreWrite = "store.write"
	// PointStoreCorrupt corrupts the serialized entry bytes on their way
	// to disk (KindCorrupt), so a later read sees a checksum mismatch
	// and must fall back to full re-identification.
	PointStoreCorrupt = "store.corrupt"
	// PointCoordKill fires at every phase boundary of the fleet
	// coordinator (pre-sort, mid-dispatch, mid-merge, pre-seal); a
	// KindError rule aborts the run as if the coordinator process died
	// on the spot — no further journal appends, no merge. Each boundary
	// also fires a phase-specific subpoint ("coord.kill.mid-merge", ...)
	// so a chaos schedule can target one phase deterministically under
	// concurrency.
	PointCoordKill = "coord.kill"
	// PointCoordJournalCorrupt corrupts a write-ahead journal record's
	// bytes on their way to disk (KindCorrupt); recovery must detect the
	// record typed and degrade to replay-up-to-corruption plus recompute.
	PointCoordJournalCorrupt = "coord.journal.corrupt"
	// PointCoordJournalLatency fires before each journal record write;
	// KindSleep wedges the append (slow disk), KindError fails it — and a
	// failed append must abort the run, because proceeding past an
	// unjournaled side effect would make recovery wrong.
	PointCoordJournalLatency = "coord.journal.latency"
	// PointStandbyPartition fires in the journal shipping hook before
	// each shipment to the hot standby; KindError drops the shipment (a
	// partitioned follower). Shipping failures are events, not run
	// failures — a promoted standby with a prefix journal recomputes the
	// missing cones.
	PointStandbyPartition = "standby.partition"
)

// ErrInjected is the sentinel all injected errors unwrap to; match with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is one fired fault: which point, which arrival.
type Error struct {
	Point string
	Kind  Kind
	Hit   uint64
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s fault at %s (hit %d)", e.Kind, e.Point, e.Hit)
}

// Unwrap matches errors.Is(err, ErrInjected).
func (e *Error) Unwrap() error { return ErrInjected }

// armedRule is a Rule plus its firing state.
type armedRule struct {
	Rule
	fired atomic.Uint64
}

// Plan is a set of armed rules, indexed by point.
type Plan struct {
	byPoint map[string][]*armedRule
	hits    map[string]*atomic.Uint64
}

// NewPlan arms the given rules into a plan. Points not named by any rule
// are unaffected.
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{
		byPoint: make(map[string][]*armedRule),
		hits:    make(map[string]*atomic.Uint64),
	}
	for _, r := range rules {
		p.byPoint[r.Point] = append(p.byPoint[r.Point], &armedRule{Rule: r})
		if p.hits[r.Point] == nil {
			p.hits[r.Point] = &atomic.Uint64{}
		}
	}
	return p
}

// Fired reports how many times any rule at point has fired under this
// plan; chaos tests use it to assert the scenario actually happened.
func (p *Plan) Fired(point string) uint64 {
	var n uint64
	for _, r := range p.byPoint[point] {
		n += r.fired.Load()
	}
	return n
}

// Hits reports how many times point was reached while the plan was
// active (fired or not).
func (p *Plan) Hits(point string) uint64 {
	h := p.hits[point]
	if h == nil {
		return 0
	}
	return h.Load()
}

// active is the process-global armed plan; nil means every hook is a
// no-op after one atomic load.
var active atomic.Pointer[Plan]

// Activate arms p globally and returns the restore function that
// disarms it. Activating while another plan is active panics — chaos
// scenarios must not overlap.
func Activate(p *Plan) (restore func()) {
	if !active.CompareAndSwap(nil, p) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(p, nil) }
}

// Active reports whether a plan is armed.
func Active() bool { return active.Load() != nil }

// match returns the rule firing at this arrival of point, if any, and
// bumps the point's hit counter.
func (p *Plan) match(point string) (*armedRule, uint64) {
	rules := p.byPoint[point]
	if rules == nil {
		return nil, 0
	}
	hit := p.hits[point].Add(1)
	for _, r := range rules {
		if r.Hit != 0 && r.Hit != hit {
			continue
		}
		if r.Count != 0 && r.fired.Load() >= r.Count {
			continue
		}
		r.fired.Add(1)
		return r, hit
	}
	return nil, hit
}

// Fire is the generic hook: a KindError rule returns an *Error, a
// KindPanic rule panics with one, a KindSleep rule blocks for its Delay
// and returns nil. Disarmed (or unmatched) points return nil.
func Fire(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, hit := p.match(point)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindError:
		return &Error{Point: point, Kind: KindError, Hit: hit}
	case KindPanic:
		panic(&Error{Point: point, Kind: KindPanic, Hit: hit})
	case KindSleep:
		time.Sleep(r.Delay)
	}
	return nil
}

// Corrupt passes b through the point: a matching KindCorrupt rule
// returns a deterministically mutated copy (b itself is never modified);
// otherwise b comes back unchanged.
func Corrupt(point string, b []byte) []byte {
	p := active.Load()
	if p == nil {
		return b
	}
	r, _ := p.match(point)
	if r == nil || r.Kind != KindCorrupt {
		return r.maybeNil(b)
	}
	return corruptBytes(r.Seed, r.fired.Load(), b)
}

// maybeNil lets non-corrupt rules at a Corrupt point pass bytes through
// untouched (r may be nil).
func (r *armedRule) maybeNil(b []byte) []byte { return b }

// corruptBytes applies one seeded mutation: truncation, a byte flip, or
// appended garbage, chosen and placed by a splitmix64 stream so the same
// (seed, firing) corrupts the same way.
func corruptBytes(seed int64, firing uint64, b []byte) []byte {
	s := splitmix{x: uint64(seed) ^ (firing * 0x9e3779b97f4a7c15)}
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return []byte{0xff}
	}
	switch s.next() % 3 {
	case 0: // truncate
		out = out[:s.next()%uint64(len(out))]
	case 1: // flip a byte
		i := s.next() % uint64(len(out))
		out[i] ^= byte(1 + s.next()%255)
	default: // trailing garbage
		n := 1 + s.next()%16
		for i := uint64(0); i < n; i++ {
			out = append(out, byte(s.next()))
		}
	}
	return out
}

// Now returns the current time as observed through the point: a matching
// KindSkew rule shifts it by Rule.Skew; a matching KindFreeze rule
// replaces it entirely with Rule.Base + (hit-1)*Rule.Skew, a clock that
// depends only on how often the point has been reached.
func Now(point string) time.Time {
	now := time.Now()
	p := active.Load()
	if p == nil {
		return now
	}
	r, hit := p.match(point)
	if r == nil {
		return now
	}
	switch r.Kind {
	case KindSkew:
		return now.Add(r.Skew)
	case KindFreeze:
		return r.Base.Add(time.Duration(hit-1) * r.Skew)
	}
	return now
}

// splitmix is splitmix64: tiny, seedable, deterministic.
type splitmix struct{ x uint64 }

func (s *splitmix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
