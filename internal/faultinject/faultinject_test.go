package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestDisarmedHooksAreNoOps: with no active plan every hook is inert.
func TestDisarmedHooksAreNoOps(t *testing.T) {
	if Active() {
		t.Fatal("plan active at test start")
	}
	if err := Fire("any.point"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	b := []byte("abc")
	if got := Corrupt("any.point", b); !bytes.Equal(got, b) {
		t.Fatalf("disarmed Corrupt mutated bytes: %q", got)
	}
	if d := time.Since(Now("any.point")); d < -time.Second || d > time.Second {
		t.Fatalf("disarmed Now far from wall clock: %v", d)
	}
}

// TestErrorRuleFiresOnChosenHit: Hit selects the exact arrival; the
// error is typed and unwraps to ErrInjected.
func TestErrorRuleFiresOnChosenHit(t *testing.T) {
	p := NewPlan(Rule{Point: "p", Kind: KindError, Hit: 3})
	defer Activate(p)()
	for i := 1; i <= 5; i++ {
		err := Fire("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not match ErrInjected: %v", err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "p" || fe.Hit != 3 {
				t.Fatalf("bad typed error: %+v", err)
			}
		}
	}
	if p.Fired("p") != 1 || p.Hits("p") != 5 {
		t.Fatalf("fired=%d hits=%d, want 1/5", p.Fired("p"), p.Hits("p"))
	}
}

// TestPanicRule: KindPanic panics with the typed error.
func TestPanicRule(t *testing.T) {
	defer Activate(NewPlan(Rule{Point: "p", Kind: KindPanic}))()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		err, ok := r.(*Error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v", r)
		}
	}()
	Fire("p")
}

// TestCountCapsFirings: Count bounds repeated firing of an every-hit
// rule.
func TestCountCapsFirings(t *testing.T) {
	p := NewPlan(Rule{Point: "p", Kind: KindError, Count: 2})
	defer Activate(p)()
	var fired int
	for i := 0; i < 10; i++ {
		if Fire("p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

// TestSleepRuleBlocks: KindSleep delays at least Delay.
func TestSleepRuleBlocks(t *testing.T) {
	defer Activate(NewPlan(Rule{Point: "p", Kind: KindSleep, Delay: 30 * time.Millisecond}))()
	t0 := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

// TestCorruptIsDeterministicAndNonMutating: same seed, same mutation;
// the input slice is untouched.
func TestCorruptIsDeterministicAndNonMutating(t *testing.T) {
	in := []byte("the quick brown fox jumps over the lazy dog")
	orig := append([]byte(nil), in...)

	run := func() []byte {
		p := NewPlan(Rule{Point: "p", Kind: KindCorrupt, Seed: 42})
		defer Activate(p)()
		out := Corrupt("p", in)
		if p.Fired("p") != 1 {
			t.Fatalf("corrupt rule fired %d times", p.Fired("p"))
		}
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("corruption not deterministic:\n%q\n%q", a, b)
	}
	if bytes.Equal(a, orig) {
		t.Fatal("corruption changed nothing")
	}
	if !bytes.Equal(in, orig) {
		t.Fatal("Corrupt mutated its input")
	}
}

// TestSkewShiftsNow: the skewed clock differs from the wall clock by
// about Rule.Skew.
func TestSkewShiftsNow(t *testing.T) {
	skew := -2 * time.Hour
	defer Activate(NewPlan(Rule{Point: "p", Kind: KindSkew, Skew: skew}))()
	d := time.Until(Now("p"))
	if d > skew+time.Minute || d < skew-time.Minute {
		t.Fatalf("skewed Now off by %v, want about %v", d, skew)
	}
}

// TestNestedActivationPanics: overlapping plans are a test bug.
func TestNestedActivationPanics(t *testing.T) {
	restore := Activate(NewPlan())
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Activate did not panic")
		}
	}()
	Activate(NewPlan())
}

// TestRestoreDisarms: after restore, hooks are inert again.
func TestRestoreDisarms(t *testing.T) {
	restore := Activate(NewPlan(Rule{Point: "p", Kind: KindError}))
	if Fire("p") == nil {
		t.Fatal("armed rule did not fire")
	}
	restore()
	if Fire("p") != nil {
		t.Fatal("rule fired after restore")
	}
}
