// Package paths provides physical/logical path machinery: exact path
// counting with arbitrary precision (ISCAS85 c6288 has 1.9e20 paths, far
// beyond int64 in general), per-lead path counts for the input-sort
// heuristics, and explicit path enumeration for small circuits.
//
// Terminology follows Section II of the paper: a physical path is an
// alternating gate/lead sequence from a PI to a PO; each physical path
// carries two logical paths (P, x̄→x) distinguished by the final value x of
// the transition at its primary input PI(P).
package paths

import (
	"fmt"
	"math/big"
	"strings"

	"rdfault/internal/circuit"
)

// Path is a physical path. Gates[0] is a PI and Gates[len-1] a PO;
// Pins[i] is the input pin of Gates[i+1] driven by Gates[i], so a path is
// a lead sequence as well as a gate sequence.
type Path struct {
	Gates []circuit.GateID
	Pins  []int
}

// Clone returns a deep copy; enumeration callbacks receive shared buffers
// and must Clone paths they retain.
func (p Path) Clone() Path {
	return Path{
		Gates: append([]circuit.GateID(nil), p.Gates...),
		Pins:  append([]int(nil), p.Pins...),
	}
}

// PI returns the primary input of the path.
func (p Path) PI() circuit.GateID { return p.Gates[0] }

// PO returns the primary output of the path.
func (p Path) PO() circuit.GateID { return p.Gates[len(p.Gates)-1] }

// Len returns the number of gates on the path.
func (p Path) Len() int { return len(p.Gates) }

// String renders the path as "a -> g1 -> ... -> po" using gate names.
func (p Path) String(c *circuit.Circuit) string {
	var b strings.Builder
	for i, g := range p.Gates {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(c.Gate(g).Name)
	}
	return b.String()
}

// Key returns a canonical map key for the physical path.
func (p Path) Key() string {
	var b strings.Builder
	for i, g := range p.Gates {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", g)
		if i < len(p.Pins) {
			fmt.Fprintf(&b, ":%d", p.Pins[i])
		}
	}
	return b.String()
}

// Logical is a logical path (P, x̄→x): a physical path plus the final
// value x of the transition at its primary input. FinalOne means x = 1
// (a rising transition at the PI).
type Logical struct {
	Path     Path
	FinalOne bool
}

// Key returns a canonical map key for the logical path.
func (lp Logical) Key() string {
	k := lp.Path.Key()
	if lp.FinalOne {
		return k + "/1"
	}
	return k + "/0"
}

// FinalValueAt returns the stable (final) value the transition assumes at
// the output of the i-th gate on the path, assuming the path propagates:
// x XOR the parity of inversions among gates 1..i.
func (lp Logical) FinalValueAt(c *circuit.Circuit, i int) bool {
	v := lp.FinalOne
	for k := 1; k <= i; k++ {
		if c.Type(lp.Path.Gates[k]).Inverting() {
			v = !v
		}
	}
	return v
}

// Counts holds exact per-gate path counts for one circuit.
type Counts struct {
	c *circuit.Circuit
	// up[g] = number of PI-to-g physical path prefixes ending at g.
	up []*big.Int
	// down[g] = number of g-to-PO physical path suffixes starting at g.
	down []*big.Int
}

// NewCounts computes path counts for c in O(gates + leads) big-integer
// additions.
func NewCounts(c *circuit.Circuit) *Counts {
	n := c.NumGates()
	ct := &Counts{
		c:    c,
		up:   make([]*big.Int, n),
		down: make([]*big.Int, n),
	}
	topo := c.TopoOrder()
	for _, g := range topo {
		if c.Type(g) == circuit.Input {
			ct.up[g] = big.NewInt(1)
			continue
		}
		s := new(big.Int)
		for _, f := range c.Fanin(g) {
			s.Add(s, ct.up[f])
		}
		ct.up[g] = s
	}
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		if c.Type(g) == circuit.Output {
			ct.down[g] = big.NewInt(1)
			continue
		}
		s := new(big.Int)
		for _, e := range c.Fanout(g) {
			s.Add(s, ct.down[e.To])
		}
		ct.down[g] = s
	}
	return ct
}

// Up returns the number of PI-to-g path prefixes.
func (ct *Counts) Up(g circuit.GateID) *big.Int { return ct.up[g] }

// Down returns the number of g-to-PO path suffixes.
func (ct *Counts) Down(g circuit.GateID) *big.Int { return ct.down[g] }

// Physical returns the total number of physical paths in the circuit.
func (ct *Counts) Physical() *big.Int {
	s := new(big.Int)
	for _, pi := range ct.c.Inputs() {
		s.Add(s, ct.down[pi])
	}
	return s
}

// Logical returns the total number of logical paths (twice Physical).
func (ct *Counts) Logical() *big.Int {
	return new(big.Int).Lsh(ct.Physical(), 1)
}

// ThroughLead returns the number of physical paths running through the
// given lead. By Remark 4 of the paper this also equals |LP_c(l)|, the
// number of logical paths whose transition at l ends on the controlling
// value of the gate the lead feeds.
func (ct *Counts) ThroughLead(l circuit.Lead) *big.Int {
	src := ct.c.Source(l)
	return new(big.Int).Mul(ct.up[src], ct.down[l.To])
}

// LeadCounts returns |P(l)| for every lead, indexed by
// Circuit.LeadIndex.
func (ct *Counts) LeadCounts() []*big.Int {
	out := make([]*big.Int, ct.c.NumLeads())
	for g := circuit.GateID(0); int(g) < ct.c.NumGates(); g++ {
		for pin := range ct.c.Fanin(g) {
			l := circuit.Lead{To: g, Pin: pin}
			out[ct.c.LeadIndex(g, pin)] = ct.ThroughLead(l)
		}
	}
	return out
}

// ForEachPath enumerates every physical path of c in depth-first order,
// calling fn with a shared Path buffer (Clone to retain). Enumeration
// stops early if fn returns false; ForEachPath reports whether the walk
// ran to completion.
func ForEachPath(c *circuit.Circuit, fn func(Path) bool) bool {
	var (
		gates []circuit.GateID
		pins  []int
	)
	var dfs func(g circuit.GateID) bool
	dfs = func(g circuit.GateID) bool {
		gates = append(gates, g)
		defer func() { gates = gates[:len(gates)-1] }()
		if c.Type(g) == circuit.Output {
			return fn(Path{Gates: gates, Pins: pins})
		}
		for _, e := range c.Fanout(g) {
			pins = append(pins, e.Pin)
			ok := dfs(e.To)
			pins = pins[:len(pins)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for _, pi := range c.Inputs() {
		if !dfs(pi) {
			return false
		}
	}
	return true
}

// ForEachLogical enumerates all logical paths (each physical path with
// both transitions). The Path buffer is shared; Clone to retain.
func ForEachLogical(c *circuit.Circuit, fn func(Logical) bool) bool {
	return ForEachPath(c, func(p Path) bool {
		if !fn(Logical{Path: p, FinalOne: false}) {
			return false
		}
		return fn(Logical{Path: p, FinalOne: true})
	})
}

// Collect returns all physical paths of c, up to limit (limit <= 0 means
// no limit). Intended for small circuits and tests.
func Collect(c *circuit.Circuit, limit int) []Path {
	var out []Path
	ForEachPath(c, func(p Path) bool {
		out = append(out, p.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}
