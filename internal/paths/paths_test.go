package paths

import (
	"math/big"
	"testing"
	"testing/quick"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

// example is the paper's running example: y = AND(OR(a,b), OR(b,c)).
func example(t testing.TB) *circuit.Circuit {
	b := circuit.NewBuilder("example")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	o1 := b.Gate(circuit.Or, "o1", a, bb)
	o2 := b.Gate(circuit.Or, "o2", bb, cc)
	y := b.Gate(circuit.And, "y", o1, o2)
	b.Output("y$po", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExampleCounts(t *testing.T) {
	c := example(t)
	ct := NewCounts(c)
	if got := ct.Physical().Int64(); got != 4 {
		t.Errorf("physical paths = %d, want 4", got)
	}
	if got := ct.Logical().Int64(); got != 8 {
		t.Errorf("logical paths = %d, want 8 (as stated in Example 2)", got)
	}
	bID, _ := c.GateByName("b")
	if got := ct.Down(bID).Int64(); got != 2 {
		t.Errorf("down(b) = %d, want 2", got)
	}
	yID, _ := c.GateByName("y")
	if got := ct.Up(yID).Int64(); got != 4 {
		t.Errorf("up(y) = %d, want 4", got)
	}
}

func TestThroughLead(t *testing.T) {
	c := example(t)
	ct := NewCounts(c)
	yID, _ := c.GateByName("y")
	// Each input lead of y carries 2 physical paths.
	for pin := range c.Fanin(yID) {
		got := ct.ThroughLead(circuit.Lead{To: yID, Pin: pin})
		if got.Int64() != 2 {
			t.Errorf("through y pin %d = %v, want 2", pin, got)
		}
	}
	// The PO lead carries all 4.
	po := c.Outputs()[0]
	if got := ct.ThroughLead(circuit.Lead{To: po, Pin: 0}); got.Int64() != 4 {
		t.Errorf("through PO lead = %v, want 4", got)
	}
}

func TestLeadCounts(t *testing.T) {
	c := example(t)
	ct := NewCounts(c)
	lc := ct.LeadCounts()
	if len(lc) != c.NumLeads() {
		t.Fatalf("got %d lead counts, want %d", len(lc), c.NumLeads())
	}
	// Sum over PO input leads = total physical paths.
	sum := new(big.Int)
	for _, po := range c.Outputs() {
		sum.Add(sum, lc[c.LeadIndex(po, 0)])
	}
	if sum.Cmp(ct.Physical()) != 0 {
		t.Errorf("sum over PO leads %v != physical %v", sum, ct.Physical())
	}
}

func TestEnumerationMatchesCounts(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 3}, seed)
		ct := NewCounts(c)
		var n int64
		ForEachPath(c, func(p Path) bool {
			n++
			// Structural sanity of each enumerated path.
			if c.Type(p.PI()) != circuit.Input || c.Type(p.PO()) != circuit.Output {
				t.Fatalf("seed %d: bad endpoints in %s", seed, p.String(c))
			}
			for i := 0; i+1 < len(p.Gates); i++ {
				if c.Fanin(p.Gates[i+1])[p.Pins[i]] != p.Gates[i] {
					t.Fatalf("seed %d: pin mismatch in %s", seed, p.String(c))
				}
			}
			return true
		})
		if ct.Physical().Int64() != n {
			t.Errorf("seed %d: counted %v, enumerated %d", seed, ct.Physical(), n)
		}
	}
}

func TestPerLeadCountMatchesEnumeration(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 4, Gates: 15, Outputs: 2}, 7)
	ct := NewCounts(c)
	got := make([]int64, c.NumLeads())
	ForEachPath(c, func(p Path) bool {
		for i := 0; i+1 < len(p.Gates); i++ {
			got[c.LeadIndex(p.Gates[i+1], p.Pins[i])]++
		}
		return true
	})
	for i, want := range ct.LeadCounts() {
		if want.Int64() != got[i] {
			t.Errorf("lead %d: count %v, enumerated %d", i, want, got[i])
		}
	}
}

func TestEarlyStop(t *testing.T) {
	c := example(t)
	calls := 0
	done := ForEachPath(c, func(Path) bool {
		calls++
		return false
	})
	if done || calls != 1 {
		t.Errorf("early stop: done=%v calls=%d", done, calls)
	}
	calls = 0
	done = ForEachLogical(c, func(Logical) bool {
		calls++
		return calls < 3
	})
	if done || calls != 3 {
		t.Errorf("logical early stop: done=%v calls=%d", done, calls)
	}
}

func TestForEachLogicalPairs(t *testing.T) {
	c := example(t)
	seen := map[string]bool{}
	ForEachLogical(c, func(lp Logical) bool {
		k := lp.Key()
		if seen[k] {
			t.Fatalf("duplicate logical path %s", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d logical paths, want 8", len(seen))
	}
}

func TestCollectLimit(t *testing.T) {
	c := example(t)
	if got := len(Collect(c, 2)); got != 2 {
		t.Errorf("Collect limit 2 returned %d", got)
	}
	all := Collect(c, 0)
	if len(all) != 4 {
		t.Errorf("Collect all returned %d, want 4", len(all))
	}
	// Collected paths are independent copies.
	all[0].Gates[0] = circuit.None
	if all[1].Gates[0] == circuit.None {
		t.Error("Collect returned aliased paths")
	}
}

func TestFinalValueAt(t *testing.T) {
	// Path through NOT and NAND should flip the final value at each
	// inverting gate.
	b := circuit.NewBuilder("inv")
	a := b.Input("a")
	x := b.Input("x")
	n1 := b.Gate(circuit.Not, "n1", a)
	n2 := b.Gate(circuit.Nand, "n2", n1, x)
	b.Output("po", n2)
	c := b.MustBuild()
	ps := Collect(c, 0)
	var through *Path
	for i := range ps {
		if ps[i].PI() == a {
			through = &ps[i]
		}
	}
	if through == nil || through.Len() != 4 {
		t.Fatalf("path through a not found: %v", ps)
	}
	lp := Logical{Path: *through, FinalOne: true}
	wants := []bool{true, false, true, true} // a=1, n1=0, n2=1, po=1
	for i, w := range wants {
		if got := lp.FinalValueAt(c, i); got != w {
			t.Errorf("FinalValueAt(%d) = %v, want %v", i, got, w)
		}
	}
	lp0 := Logical{Path: *through, FinalOne: false}
	for i, w := range wants {
		if got := lp0.FinalValueAt(c, i); got == w {
			t.Errorf("falling FinalValueAt(%d) = %v, want %v", i, got, !w)
		}
	}
}

func TestPathKeyDistinguishesPins(t *testing.T) {
	// AND(a, a): the two paths differ only in pin.
	b := circuit.NewBuilder("dup")
	a := b.Input("a")
	g := b.Gate(circuit.And, "g", a, a)
	b.Output("po", g)
	c := b.MustBuild()
	ps := Collect(c, 0)
	if len(ps) != 2 {
		t.Fatalf("got %d paths, want 2", len(ps))
	}
	if ps[0].Key() == ps[1].Key() {
		t.Error("pin-distinct paths share a key")
	}
}

func TestLogicalKey(t *testing.T) {
	c := example(t)
	ps := Collect(c, 1)
	k0 := Logical{Path: ps[0], FinalOne: false}.Key()
	k1 := Logical{Path: ps[0], FinalOne: true}.Key()
	if k0 == k1 {
		t.Error("transitions share a key")
	}
}

// Property: counts are invariant under enumeration order and always
// nonnegative; up(po) summed over POs equals physical count.
func TestQuickCountConsistency(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		c := gen.RandomCircuit("q", gen.RandomOptions{Inputs: 3, Gates: 10, Outputs: 2}, seed%1000)
		ct := NewCounts(c)
		sum := new(big.Int)
		for _, po := range c.Outputs() {
			sum.Add(sum, ct.Up(po))
		}
		return sum.Cmp(ct.Physical()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNewCounts(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 64, Gates: 4000, Outputs: 32}, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCounts(c)
	}
}

func BenchmarkForEachPath(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 10, Gates: 60, Outputs: 4}, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEachPath(c, func(Path) bool { n++; return true })
	}
}
