package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordSleep captures every backoff Do takes without really sleeping.
func recordSleep(slept *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Policy{Sleep: recordSleep(&slept)}.Do(context.Background(), func(int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(slept) != 0 {
		t.Fatalf("err=%v calls=%d slept=%v, want nil/1/none", err, calls, slept)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Policy{Attempts: 5, Sleep: recordSleep(&slept)}.Do(context.Background(), func(n int) error {
		calls++
		if n != calls-1 {
			t.Errorf("attempt number %d on call %d", n, calls)
		}
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs", slept)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	base := errors.New("still down")
	calls := 0
	err := Policy{Attempts: 3, Sleep: recordSleep(&slept)}.Do(context.Background(), func(int) error {
		calls++
		return base
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("err=%v, want *ExhaustedError with 3 attempts", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("exhausted error does not unwrap to the last attempt error: %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d slept=%v, want 3 calls, 2 backoffs", calls, slept)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	fatal := errors.New("bad request")
	calls := 0
	err := Policy{Attempts: 5}.Do(context.Background(), func(int) error {
		calls++
		return Permanent(fatal)
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (permanent error must not retry)", calls)
	}
	if !errors.Is(err, fatal) {
		t.Fatalf("err=%v, want the unwrapped permanent error", err)
	}
	if IsPermanent(err) {
		t.Fatalf("Do should unwrap the permanent marker before returning")
	}
	if !IsPermanent(Permanent(fatal)) {
		t.Fatalf("IsPermanent(Permanent(err)) = false")
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Policy{Attempts: 10}.Do(ctx, func(int) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (cancellation must stop the loop)", calls)
	}
}

func TestDoNegativeAttemptsMeansOne(t *testing.T) {
	calls := 0
	err := Policy{Attempts: -1}.Do(context.Background(), func(int) error {
		calls++
		return errors.New("down")
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 1 || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one attempt, no retry", err, calls)
	}
}

// The capped exponential envelope: without jitter the sequence is
// exactly Base*Factor^n clamped at Cap.
func TestBackoffNoJitterEnvelope(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 450 * time.Millisecond, Factor: 2, NoJitter: true}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		450 * time.Millisecond, // capped
		450 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

// Full jitter stays inside [0, envelope] and is a pure function of
// (seed, retry): deterministic across calls, different across seeds.
func TestBackoffJitterDeterministic(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Seed: 7}
	for i := 0; i < 6; i++ {
		a, b := p.Backoff(i), p.Backoff(i)
		if a != b {
			t.Fatalf("Backoff(%d) not deterministic: %v vs %v", i, a, b)
		}
		env := Policy{Base: p.Base, Cap: p.Cap, Factor: 2, NoJitter: true}.Backoff(i)
		if a < 0 || a > env {
			t.Fatalf("Backoff(%d) = %v outside [0, %v]", i, a, env)
		}
	}
	other := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Seed: 8}
	same := true
	for i := 0; i < 6; i++ {
		if p.Backoff(i) != other.Backoff(i) {
			same = false
		}
	}
	if same {
		t.Fatalf("two seeds produced identical jitter streams")
	}
}

// The overflow guard: a huge retry count must clamp at Cap, not wrap.
func TestBackoffLargeRetryClamps(t *testing.T) {
	p := Policy{Base: time.Second, Cap: 30 * time.Second, Factor: 2, NoJitter: true}
	if got := p.Backoff(500); got != 30*time.Second {
		t.Fatalf("Backoff(500) = %v, want the cap", got)
	}
}

func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("sleepCtx blocked despite canceled context")
	}
}
