// Package retry is the repository's one backoff implementation: capped
// exponential backoff with full jitter, context-aware, deterministic.
//
// Every retry loop in the tree — the experiment suite runners, the fleet
// coordinator's dispatch and health-probe paths — routes through a
// Policy, so backoff behavior is tuned (and chaos-tested) in exactly one
// place. Determinism matters more here than in most backoff libraries:
// the fleet's killed-node chaos suite replays failure schedules and
// asserts bit-identical outcomes, so the jitter stream is drawn from a
// seeded splitmix64 generator rather than the global math/rand, and the
// sleep function is injectable so tests run in virtual time.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes one capped-exponential-backoff-with-full-jitter loop.
// The zero value is usable: 4 attempts, 50ms base, 5s cap, factor 2,
// full jitter, real sleeping.
type Policy struct {
	// Attempts is the total number of tries including the first
	// (0 = default 4; negative = exactly one attempt, i.e. no retrying).
	Attempts int
	// Base is the backoff before the first retry (default 50ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 5s).
	Cap time.Duration
	// Factor is the exponential growth rate (default 2; values < 1 are
	// treated as 1, a constant backoff).
	Factor float64
	// NoJitter disables full jitter: each backoff is exactly the capped
	// exponential value. The experiment runners use this to keep their
	// fixed-pause behavior (and golden outputs) unchanged.
	NoJitter bool
	// Seed selects the deterministic jitter stream (default 1). Two
	// loops with the same Policy draw the same backoff sequence.
	Seed int64
	// Sleep replaces the context-aware sleep (tests, virtual time). It
	// must return early with ctx.Err() if the context fires mid-sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) attempts() int {
	switch {
	case p.Attempts < 0:
		return 1
	case p.Attempts == 0:
		return 4
	}
	return p.Attempts
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Factor < 1 {
		if p.Factor != 0 {
			p.Factor = 1
		} else {
			p.Factor = 2
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// sleepCtx blocks for d or until ctx fires, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of retrying; the
// wrapped error still matches errors.Is/As against the original.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// ExhaustedError reports a Do loop that ran out of attempts; the last
// attempt's error is wrapped, so errors.Is/As see through it.
type ExhaustedError struct {
	Attempts int
	Err      error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("retry: %d attempts exhausted: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Backoff returns the pause before retry number retry (0-based: the
// backoff between the first and second attempts is Backoff(0)). With
// jitter the value is uniform in [0, capped]; the stream is a pure
// function of (Policy.Seed, retry), so a replayed schedule backs off
// identically.
func (p Policy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < retry; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			break
		}
	}
	if d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if p.NoJitter {
		return time.Duration(d)
	}
	s := splitmix{x: uint64(p.Seed) ^ (uint64(retry+1) * 0x9e3779b97f4a7c15)}
	span := uint64(d) + 1
	return time.Duration(s.next() % span)
}

// Do runs attempt until it succeeds, returns a Permanent-marked error,
// the context fires, or the policy's attempts are exhausted. attempt
// receives the 0-based attempt number. The error of a failed loop is an
// *ExhaustedError (attempts ran out), the permanent error unwrapped from
// its marker, or ctx.Err() joined with the last attempt error when the
// context ended the loop.
func (p Policy) Do(ctx context.Context, attempt func(n int) error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	max := p.attempts()
	var last error
	for n := 0; n < max; n++ {
		if err := ctx.Err(); err != nil {
			return joinCtx(err, last)
		}
		if n > 0 {
			if err := p.Sleep(ctx, p.Backoff(n-1)); err != nil {
				return joinCtx(err, last)
			}
		}
		err := attempt(n)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
	}
	return &ExhaustedError{Attempts: max, Err: last}
}

// joinCtx pairs a context error with the last attempt error (if any) so
// callers can match either.
func joinCtx(ctxErr, last error) error {
	if last == nil {
		return ctxErr
	}
	return errors.Join(ctxErr, last)
}

// splitmix is splitmix64: tiny, seedable, deterministic.
type splitmix struct{ x uint64 }

func (s *splitmix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
