package leafdag

import (
	"errors"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
)

func TestBuildExample(t *testing.T) {
	c := gen.PaperExample()
	tree, err := Build(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 4 {
		t.Fatalf("leaves = %d, want 4 (one per physical path)", tree.NumLeaves())
	}
	// Leaf paths are exactly the circuit's physical paths.
	want := map[string]bool{}
	paths.ForEachPath(c, func(p paths.Path) bool {
		want[p.Key()] = true
		return true
	})
	for i := 0; i < tree.NumLeaves(); i++ {
		p := tree.LeafPath(i)
		if !want[p.Key()] {
			t.Errorf("leaf %d reconstructs unknown path %s", i, p.String(c))
		}
		delete(want, p.Key())
	}
	if len(want) != 0 {
		t.Errorf("paths not covered by leaves: %v", want)
	}
}

func TestBuildLeafCountEqualsPathCount(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 1}, seed)
		cones, err := c.Cones()
		if err != nil {
			t.Fatal(err)
		}
		for _, cone := range cones {
			tree, err := Build(cone, 0)
			if err != nil {
				t.Fatal(err)
			}
			n := paths.NewCounts(cone).Physical()
			if n.Int64() != int64(tree.NumLeaves()) {
				t.Fatalf("seed %d: %d leaves, %v paths", seed, tree.NumLeaves(), n)
			}
		}
	}
}

func TestBuildCap(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 40, Outputs: 1}, 3)
	cones, _ := c.Cones()
	_, err := Build(cones[0], 3)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBuildRejectsMultiOutput(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 4, Gates: 10, Outputs: 2}, 1)
	if _, err := Build(c, 0); err == nil {
		t.Fatal("expected error for multi-output circuit")
	}
}

func TestTreeEval(t *testing.T) {
	c := gen.PaperExample()
	tree, err := Build(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := c.OutputsOf(c.EvalBool(in))[0]
		if got := tree.Eval(in, nil); got != want {
			t.Errorf("v=%d: tree eval %v, circuit %v", v, got, want)
		}
	}
}

func TestIdentifyRDExample(t *testing.T) {
	// Worked out by hand for the reconstruction y = OR(a, AND(b, OR(b,c))):
	// the redundant-fault heuristic finds exactly the 3 RD paths the
	// optimal stabilizing assignment yields: (b->o->g->y, falling),
	// (c->o->g->y, falling) and (c->o->g->y, rising).
	c := gen.PaperExample()
	var rdKeys []string
	rep, err := IdentifyRD(c, Options{OnRD: func(lp paths.Logical) {
		rdKeys = append(rdKeys, lp.Path.String(c)+"/"+map[bool]string{true: "rise", false: "fall"}[lp.FinalOne])
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD != 3 {
		t.Fatalf("RD = %d, want 3 (keys: %v)", rep.RD, rdKeys)
	}
	if rep.TotalLogicalPaths.Int64() != 8 {
		t.Fatalf("total = %v, want 8", rep.TotalLogicalPaths)
	}
	if got := rep.RDPercent(); got < 37.4 || got > 37.6 {
		t.Errorf("RD%% = %v, want 37.5", got)
	}
	want := map[string]bool{
		"b -> o -> g -> y -> y$po/fall": true,
		"c -> o -> g -> y -> y$po/fall": true,
		"c -> o -> g -> y -> y$po/rise": true,
	}
	for _, k := range rdKeys {
		if !want[k] {
			t.Errorf("unexpected RD path %s", k)
		}
		delete(want, k)
	}
	for k := range want {
		t.Errorf("missing RD path %s", k)
	}
}

// exactNonRobust checks, by exhaustive input enumeration, whether the
// logical path is non-robustly testable (Definition 5). RD paths must
// never be non-robustly testable (Lemma 1: T ⊆ LP(σ) for every σ).
func exactNonRobust(c *circuit.Circuit, lp paths.Logical) bool {
	n := len(c.Inputs())
	in := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		val := c.EvalBool(in)
		if val[lp.Path.PI()] != lp.FinalOne {
			continue
		}
		ok := true
		for i := 1; i < len(lp.Path.Gates) && ok; i++ {
			g := lp.Path.Gates[i]
			ctrl, hasCtrl := c.Type(g).Controlling()
			if !hasCtrl {
				continue
			}
			for p := range c.Fanin(g) {
				if p != lp.Path.Pins[i-1] && val[c.Fanin(g)[p]] == ctrl {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestIdentifiedRDNeverTestable(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		var rd []paths.Logical
		_, err := IdentifyRD(c, Options{OnRD: func(lp paths.Logical) {
			rd = append(rd, paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		}})
		if err != nil {
			t.Fatal(err)
		}
		for _, lp := range rd {
			if exactNonRobust(c, lp) {
				t.Fatalf("seed %d: identified RD path %s is non-robustly testable", seed, lp.Path.String(c))
			}
		}
	}
}

// TestMultipleFaultRedundant re-validates the core guarantee: per cone and
// polarity, forcing all committed leaves simultaneously leaves the cone's
// function unchanged (the accumulated multiple stuck-at fault is
// redundant).
func TestMultipleFaultRedundant(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 1}, seed)
		cones, err := c.Cones()
		if err != nil {
			t.Fatal(err)
		}
		cone := cones[0]
		var rd []paths.Logical
		_, err = IdentifyRD(cone, Options{OnRD: func(lp paths.Logical) {
			rd = append(rd, paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		}})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := Build(cone, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Map path keys to leaf indices.
		leafByKey := map[string]int{}
		for i := 0; i < tree.NumLeaves(); i++ {
			leafByKey[tree.LeafPath(i).Key()] = i
		}
		for _, polarity := range [2]bool{false, true} {
			forced := map[int]bool{}
			for _, lp := range rd {
				if lp.FinalOne == !polarity { // stuckAt == polarity
					li, ok := leafByKey[lp.Path.Key()]
					if !ok {
						t.Fatalf("seed %d: RD path has no leaf", seed)
					}
					forced[li] = polarity
				}
			}
			if len(forced) == 0 {
				continue
			}
			n := len(cone.Inputs())
			in := make([]bool, n)
			for v := 0; v < 1<<n; v++ {
				for i := range in {
					in[i] = v&(1<<i) != 0
				}
				if tree.Eval(in, forced) != tree.Eval(in, nil) {
					t.Fatalf("seed %d polarity %v: multiple fault changes function at v=%d",
						seed, polarity, v)
				}
			}
		}
	}
}

func TestIrredundantCircuitHasNoRD(t *testing.T) {
	// A fanout-free circuit of distinct inputs: every path is robustly
	// testable, so RD must be empty.
	b := circuit.NewBuilder("ff")
	a := b.Input("a")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	g1 := b.Gate(circuit.And, "g1", a, x)
	g2 := b.Gate(circuit.Or, "g2", y, z)
	g3 := b.Gate(circuit.Nand, "g3", g1, g2)
	b.Output("po", g3)
	c := b.MustBuild()
	rep, err := IdentifyRD(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD != 0 {
		t.Fatalf("fanout-free circuit has RD=%d, want 0", rep.RD)
	}
	if rep.Queries != 0 {
		t.Errorf("queries = %d, want 0 (all paths in T^sup are pre-filtered)", rep.Queries)
	}
	// The raw greedy mode queries every fault and still finds nothing.
	raw, err := IdentifyRD(c, Options{AllowTestablePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.RD != 0 {
		t.Fatalf("raw greedy RD=%d, want 0", raw.RD)
	}
	if raw.Queries != 8 {
		t.Errorf("raw queries = %d, want 8 (4 leaves x 2 polarities)", raw.Queries)
	}
}

// TestRawGreedyFindsAtLeastFiltered: dropping the T^sup filter can only
// grow the committed set's size on circuits where order effects do not
// interfere; on the paper example both modes find the same 3 paths.
func TestRawGreedyOnExample(t *testing.T) {
	c := gen.PaperExample()
	raw, err := IdentifyRD(c, Options{AllowTestablePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.RD != 3 {
		t.Fatalf("raw greedy RD = %d, want 3", raw.RD)
	}
}

func BenchmarkIdentifyRD(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 2}, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IdentifyRD(c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTotalTreeNodesMatchesBuild(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 3}, seed)
		want := int64(0)
		cones, err := c.Cones()
		if err != nil {
			t.Fatal(err)
		}
		for _, cone := range cones {
			tree, err := Build(cone, 0)
			if err != nil {
				t.Fatal(err)
			}
			want += int64(tree.NumNodes())
		}
		if got := TotalTreeNodes(c); got.Int64() != want {
			t.Fatalf("seed %d: formula %v, built %d", seed, got, want)
		}
	}
}

func TestIdentifyRDFastAbortOnHugeUnfolding(t *testing.T) {
	c := gen.SECDecoder(20, gen.XorAOI)
	start := time.Now()
	_, err := IdentifyRD(c, Options{NodeCap: 400_000})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the precheck should be immediate", elapsed)
	}
}
