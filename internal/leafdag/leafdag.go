// Package leafdag reimplements the RD-set identification approach of
// Lam, Saldanha, Brayton and Sangiovanni-Vincentelli (DAC 1993) — the
// comparator of the paper's Table III.
//
// The leaf-dag of an output cone is its fanout-free unfolding: every
// internal gate with fanout is replicated so that sharing only remains at
// the primary inputs. Each leaf occurrence corresponds to exactly one
// physical path, so the leaf-dag has as many leaves as the cone has paths
// — which is why this approach explodes on circuits with many paths
// (c499 ran for 69 hours in [1]; c6288 is hopeless), the very motivation
// for the paper's new algorithm.
//
// RD identification reduces to redundant multiple stuck-at faults on the
// leaves: a set of logical paths with rising transitions (final value 1)
// is robust dependent if the multiple stuck-at-0 fault on their leaves is
// redundant, and dually for falling transitions with stuck-at-1 ([1],
// Theorems 2.1/2.2). We reproduce the greedy heuristic: per polarity,
// consider leaves one at a time, check single-fault redundancy with a SAT
// query against the current (already substituted) unfolding, and commit
// redundant faults as constants. Committed faults stay jointly redundant
// because each acceptance preserves functional equivalence with the
// original cone.
package leafdag

import (
	"fmt"
	"math/big"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/paths"
	"rdfault/internal/satsolver"
)

// node is one vertex of the unfolded tree.
type node struct {
	orig     circuit.GateID
	typ      circuit.GateType
	children []int32 // node ids; empty for leaves
	parent   int32   // -1 for root
	childIdx int32   // position within parent's children
}

// Tree is the leaf-dag (internally a tree whose leaves reference shared
// PIs) of a single-output cone.
type Tree struct {
	c      *circuit.Circuit
	nodes  []node
	leaves []int32 // node ids of leaves, construction order
	root   int32
}

// ErrTooLarge is returned (wrapped) when the unfolding exceeds the node
// cap — the reproduction of "could not be completed in reasonable time".
var ErrTooLarge = fmt.Errorf("leafdag: unfolding exceeds node cap")

// TotalTreeNodes returns the summed unfolding size of every output cone
// without building anything: each gate-to-PO path suffix becomes exactly
// one tree node. The path counts come from the shared analysis manager,
// so an identification run that also needs them computes them once.
func TotalTreeNodes(c *circuit.Circuit) *big.Int {
	ct := analysis.For(c).Counts()
	total := new(big.Int)
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		total.Add(total, ct.Down(g))
	}
	return total
}

// Build unfolds the cone of the single PO of c. cap bounds the number of
// tree nodes (0 means 1<<20).
func Build(c *circuit.Circuit, cap int) (*Tree, error) {
	if len(c.Outputs()) != 1 {
		return nil, fmt.Errorf("leafdag: circuit %s has %d outputs; unfold per cone", c.Name(), len(c.Outputs()))
	}
	if cap <= 0 {
		cap = 1 << 20
	}
	t := &Tree{c: c}
	var expand func(g circuit.GateID, parent, childIdx int32) (int32, error)
	expand = func(g circuit.GateID, parent, childIdx int32) (int32, error) {
		if len(t.nodes) >= cap {
			return 0, fmt.Errorf("%w (cap %d) on %s", ErrTooLarge, cap, c.Name())
		}
		id := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{
			orig: g, typ: c.Type(g), parent: parent, childIdx: childIdx,
		})
		if c.Type(g) == circuit.Input {
			t.leaves = append(t.leaves, id)
			return id, nil
		}
		fanin := c.Fanin(g)
		children := make([]int32, len(fanin))
		for i, f := range fanin {
			cid, err := expand(f, id, int32(i))
			if err != nil {
				return 0, err
			}
			children[i] = cid
		}
		t.nodes[id].children = children
		return id, nil
	}
	root, err := expand(c.Outputs()[0], -1, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// NumNodes returns the size of the unfolding.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaves = number of physical paths.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// LeafPath reconstructs the physical path corresponding to leaf index i.
func (t *Tree) LeafPath(i int) paths.Path {
	var gates []circuit.GateID
	var pins []int
	id := t.leaves[i]
	for id != -1 {
		n := &t.nodes[id]
		gates = append(gates, n.orig)
		if n.parent != -1 {
			pins = append(pins, int(n.childIdx))
		}
		id = n.parent
	}
	return paths.Path{Gates: gates, Pins: pins}
}

// Eval computes the tree's root value for the given primary input vector
// (in cone Inputs() order), with the leaves listed in forced overridden by
// their mapped constants (a multiple stuck-at fault). Intended for
// validating identified fault sets in tests.
func (t *Tree) Eval(in []bool, forced map[int]bool) bool {
	idx := make(map[circuit.GateID]int, len(t.c.Inputs()))
	for i, pi := range t.c.Inputs() {
		idx[pi] = i
	}
	leafIdx := make(map[int32]int, len(t.leaves))
	for i, id := range t.leaves {
		leafIdx[id] = i
	}
	var eval func(id int32) bool
	eval = func(id int32) bool {
		n := &t.nodes[id]
		if len(n.children) == 0 {
			if v, ok := forced[leafIdx[id]]; ok {
				return v
			}
			return in[idx[n.orig]]
		}
		args := make([]bool, len(n.children))
		for i, ch := range n.children {
			args[i] = eval(ch)
		}
		return n.typ.Eval(args)
	}
	return eval(t.root)
}

// Options tunes IdentifyRD.
type Options struct {
	// NodeCap bounds the TOTAL unfolding size summed over all output
	// cones (0 = 1<<20). Exceeding it aborts with ErrTooLarge, mirroring
	// the paper's "not completed" entries.
	NodeCap int
	// OnRD receives every identified RD logical path (small circuits /
	// tests).
	OnRD func(paths.Logical)
	// AllowTestablePaths switches to the raw greedy of [1]'s heuristic:
	// any single fault redundant relative to earlier commits is accepted,
	// even if its logical path is non-robustly testable in the original
	// circuit. The committed multiple fault is still jointly redundant,
	// but the resulting set leaves the common framework of Section III
	// (it may intersect T(C), which every LP(σ)-complement avoids). By
	// default candidates are pre-filtered to paths outside T^sup, keeping
	// the result comparable with the stabilizing-assignment RD-sets that
	// Table III measures against.
	AllowTestablePaths bool
}

// Report summarizes an IdentifyRD run.
type Report struct {
	Circuit           string
	TotalLogicalPaths *big.Int
	RD                int64
	Queries           int64
	TreeNodes         int64
	Duration          time.Duration
}

// RDPercent returns 100*RD/Total.
func (r *Report) RDPercent() float64 {
	if r.TotalLogicalPaths.Sign() == 0 {
		return 0
	}
	tot := new(big.Float).SetInt(r.TotalLogicalPaths)
	q, _ := new(big.Float).Quo(new(big.Float).SetInt64(r.RD), tot).Float64()
	return 100 * q
}

// IdentifyRD runs the unfolding-based identification on every output cone
// of c and aggregates the results.
func IdentifyRD(c *circuit.Circuit, opt Options) (*Report, error) {
	start := time.Now()
	// One counts build serves both the report total and the TotalTreeNodes
	// precheck below (previously two independent NewCounts constructions
	// per identification run).
	rep := &Report{
		Circuit:           c.Name(),
		TotalLogicalPaths: analysis.For(c).CopyLogical(),
	}
	cap := opt.NodeCap
	if cap <= 0 {
		cap = 1 << 20
	}
	// Cheap precheck: the total unfolding size across all cones equals
	// the number of gate-to-PO path suffixes, one tree node each.
	if total := TotalTreeNodes(c); total.Cmp(big.NewInt(int64(cap))) > 0 {
		return nil, fmt.Errorf("%w: unfolding needs %v nodes (cap %d) on %s",
			ErrTooLarge, total, cap, c.Name())
	}
	for _, po := range c.Outputs() {
		cone, mapping, err := c.Cone(po)
		if err != nil {
			return nil, err
		}
		remaining := int64(cap) - rep.TreeNodes
		if remaining < 1 {
			return nil, fmt.Errorf("%w (total cap %d) on %s", ErrTooLarge, cap, c.Name())
		}
		tree, err := Build(cone, int(remaining))
		if err != nil {
			return nil, err
		}
		rep.TreeNodes += int64(tree.NumNodes())
		// Pre-filter: logical paths inside T^sup are never candidates in
		// the default framework-consistent mode.
		var tSup map[string]bool
		if !opt.AllowTestablePaths {
			tSup = make(map[string]bool)
			_, err := core.Enumerate(cone, core.NonRobust, core.Options{
				OnPath: func(lp paths.Logical) { tSup[lp.Key()] = true },
			})
			if err != nil {
				return nil, err
			}
		}
		skip := func(leaf int, finalOne bool) bool {
			if tSup == nil {
				return false
			}
			return tSup[paths.Logical{Path: tree.LeafPath(leaf), FinalOne: finalOne}.Key()]
		}
		onRD := opt.OnRD
		if onRD != nil {
			// Remap cone-local gate ids back to c's ids for the caller.
			inner := opt.OnRD
			onRD = func(lp paths.Logical) {
				remapped := make([]circuit.GateID, len(lp.Path.Gates))
				for i, g := range lp.Path.Gates {
					remapped[i] = mapping[g]
				}
				inner(paths.Logical{
					Path:     paths.Path{Gates: remapped, Pins: lp.Path.Pins},
					FinalOne: lp.FinalOne,
				})
			}
		}
		for _, stuckAt := range [2]bool{false, true} {
			rd, queries := tree.identifyPolarity(stuckAt, skip, onRD)
			rep.RD += rd
			rep.Queries += queries
		}
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// identifyPolarity runs the greedy single-fault loop for one stuck value.
// A redundant stuck-at-b fault at a leaf certifies the logical path with
// final value !b at that leaf as robust dependent; the fault is committed
// as a constant before the next query. skip suppresses candidates (the
// T^sup pre-filter).
func (t *Tree) identifyPolarity(stuckAt bool, skip func(int, bool) bool, onRD func(paths.Logical)) (rd, queries int64) {
	s := satsolver.New()
	// PI variables, shared across leaves.
	piVar := make(map[circuit.GateID]int)
	for _, pi := range t.c.Inputs() {
		piVar[pi] = s.NewVar()
	}
	// One variable per tree node.
	nodeVar := make([]int, len(t.nodes))
	for i := range t.nodes {
		nodeVar[i] = s.NewVar()
	}
	// Selector per leaf guarding the tie to its PI.
	sel := make([]int, len(t.leaves))
	leafOf := make(map[int32]int)
	for i, id := range t.leaves {
		sel[i] = s.NewVar()
		leafOf[id] = i
		pv := piVar[t.nodes[id].orig]
		lv := nodeVar[id]
		// sel -> (leaf == pi)
		s.AddClause(satsolver.MkLit(sel[i], true), satsolver.MkLit(lv, true), satsolver.MkLit(pv, false))
		s.AddClause(satsolver.MkLit(sel[i], true), satsolver.MkLit(lv, false), satsolver.MkLit(pv, true))
	}
	// Gate consistency clauses for internal nodes.
	for i := range t.nodes {
		n := &t.nodes[i]
		if len(n.children) == 0 {
			continue
		}
		encodeGate(s, n.typ, nodeVar[i], childVars(nodeVar, n.children))
	}

	decided := make([]bool, len(t.leaves))
	assumptions := func(extra ...satsolver.Lit) []satsolver.Lit {
		out := make([]satsolver.Lit, 0, len(t.leaves)+len(extra))
		for i := range t.leaves {
			if !decided[i] {
				out = append(out, satsolver.MkLit(sel[i], false))
			}
		}
		return append(out, extra...)
	}

	for li := range t.leaves {
		if skip != nil && skip(li, !stuckAt) {
			continue
		}
		queries++
		// Build the faulty value of the root with this leaf forced to
		// stuckAt, folding constants upward.
		fv, fconst, isConst := t.encodeFaultyPath(s, nodeVar, t.leaves[li], stuckAt)
		root := nodeVar[t.root]
		redundant := false
		if isConst {
			// Faulty output constant: redundant iff good output is always
			// that constant too.
			redundant = !s.Solve(assumptions(satsolver.MkLit(root, fconst))...)
		} else {
			sat := s.Solve(assumptions(satsolver.MkLit(root, false), satsolver.MkLit(fv, true))...) ||
				s.Solve(assumptions(satsolver.MkLit(root, true), satsolver.MkLit(fv, false))...)
			redundant = !sat
		}
		if !redundant {
			continue
		}
		rd++
		if onRD != nil {
			onRD(paths.Logical{Path: t.LeafPath(li), FinalOne: !stuckAt})
		}
		// Commit: permanently disable the PI tie and force the constant.
		decided[li] = true
		s.AddClause(satsolver.MkLit(sel[li], true))
		s.AddClause(satsolver.MkLit(nodeVar[t.leaves[li]], !stuckAt))
	}
	return rd, queries
}

// encodeFaultyPath encodes the root value of the tree with the given leaf
// replaced by constant b, re-using the good values of all off-path
// subtrees. It folds controlling constants upward and returns either a
// fresh variable or a constant.
func (t *Tree) encodeFaultyPath(s *satsolver.Solver, nodeVar []int, leaf int32, b bool) (v int, constVal, isConst bool) {
	curConst, curIsConst := b, true
	curVar := -1
	id := leaf
	for t.nodes[id].parent != -1 {
		p := t.nodes[id].parent
		pn := &t.nodes[p]
		typ := pn.typ
		switch typ {
		case circuit.Output, circuit.Buf, circuit.Not:
			inv := typ == circuit.Not
			if curIsConst {
				curConst = curConst != inv
			} else {
				nv := s.NewVar()
				encodeGate(s, typ, nv, []int{curVar})
				curVar = nv
			}
		default:
			ctrl, _ := typ.Controlling()
			outWhenCtrl := ctrl != typ.Inverting()
			if curIsConst && curConst == ctrl {
				// Controlling constant: output folds to a constant.
				curConst = outWhenCtrl
			} else {
				// Gather off-path children (good copies).
				others := make([]int, 0, len(pn.children))
				for ci, ch := range pn.children {
					if int32(ci) == t.nodes[id].childIdx {
						continue
					}
					others = append(others, nodeVar[ch])
				}
				if curIsConst {
					// Non-controlling constant drops out of the gate.
					nv := s.NewVar()
					if len(others) == 1 {
						// Gate degenerates to buf/not of the remaining
						// child.
						single := circuit.Buf
						if typ.Inverting() {
							single = circuit.Not
						}
						encodeGate(s, single, nv, others)
					} else {
						encodeGate(s, typ, nv, others)
					}
					curVar = nv
					curIsConst = false
				} else {
					nv := s.NewVar()
					encodeGate(s, typ, nv, append(others, curVar))
					curVar = nv
				}
			}
		}
		id = p
	}
	if curIsConst {
		return -1, curConst, true
	}
	return curVar, false, false
}

func childVars(nodeVar []int, children []int32) []int {
	out := make([]int, len(children))
	for i, c := range children {
		out[i] = nodeVar[c]
	}
	return out
}

// encodeGate adds Tseitin clauses for y = typ(ins...).
func encodeGate(s *satsolver.Solver, typ circuit.GateType, y int, ins []int) {
	switch typ {
	case circuit.Output, circuit.Buf:
		s.AddClause(satsolver.MkLit(y, true), satsolver.MkLit(ins[0], false))
		s.AddClause(satsolver.MkLit(y, false), satsolver.MkLit(ins[0], true))
	case circuit.Not:
		s.AddClause(satsolver.MkLit(y, true), satsolver.MkLit(ins[0], true))
		s.AddClause(satsolver.MkLit(y, false), satsolver.MkLit(ins[0], false))
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		ctrl, _ := typ.Controlling()
		outWhenCtrl := ctrl != typ.Inverting()
		big := make([]satsolver.Lit, 0, len(ins)+1)
		for _, x := range ins {
			s.AddClause(satsolver.MkLit(y, !outWhenCtrl), satsolver.MkLit(x, ctrl))
			big = append(big, satsolver.MkLit(x, !ctrl))
		}
		big = append(big, satsolver.MkLit(y, outWhenCtrl))
		s.AddClause(big...)
	default:
		panic("leafdag: encodeGate on " + typ.String())
	}
}
