package gen

import (
	"fmt"

	"rdfault/internal/circuit"
)

// PriorityInterruptGrouped builds the closer c432 analogue: groups*per
// request lines in groups sharing one enable each (c432 itself arbitrates
// 27 channels in 9 groups and has 36 inputs and 7 outputs, matching
// PriorityInterruptGrouped(9, 3)). Output are an any-request flag, the
// in-group channel index (two bits for per=3) and the granted group's
// one-based binary vector.
func PriorityInterruptGrouped(groups, per int) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("prio%dx%d", groups, per))
	req := make([]circuit.GateID, groups*per)
	en := make([]circuit.GateID, groups)
	for i := range req {
		req[i] = b.Input(fmt.Sprintf("r%d", i))
	}
	for g := range en {
		en[g] = b.Input(fmt.Sprintf("e%d", g))
	}
	gact := make([]circuit.GateID, groups)
	ggrant := make([]circuit.GateID, groups)
	for g := 0; g < groups; g++ {
		reqs := make([]circuit.GateID, per)
		copy(reqs, req[per*g:per*g+per])
		anyReq := reqs[0]
		if per > 1 {
			anyReq = b.Gate(circuit.Or, fmt.Sprintf("any%d", g), reqs...)
		}
		gact[g] = b.Gate(circuit.And, fmt.Sprintf("gact%d", g), anyReq, en[g])
	}
	higher := gact[0]
	ggrant[0] = gact[0]
	for g := 1; g < groups; g++ {
		nh := b.Gate(circuit.Not, fmt.Sprintf("nh%d", g), higher)
		ggrant[g] = b.Gate(circuit.And, fmt.Sprintf("ggr%d", g), gact[g], nh)
		higher = b.Gate(circuit.Or, fmt.Sprintf("hi%d", g), higher, gact[g])
	}
	b.Output("irq", higher)
	// In-group channel priority (channel 0 wins), encoded in binary and
	// gated by the group grant.
	chanBits := 0
	for 1<<chanBits < per {
		chanBits++
	}
	for k := 0; k < chanBits; k++ {
		var terms []circuit.GateID
		for g := 0; g < groups; g++ {
			for ch := 0; ch < per; ch++ {
				if ch&(1<<k) == 0 {
					continue
				}
				// Channel ch selected: its request is active and all
				// lower channels of the group are idle.
				lits := []circuit.GateID{ggrant[g], req[per*g+ch]}
				for lo := 0; lo < ch; lo++ {
					lits = append(lits, b.Gate(circuit.Not, fmt.Sprintf("nr%d_%d_%d_%d", k, g, ch, lo), req[per*g+lo]))
				}
				terms = append(terms, b.Gate(circuit.And, fmt.Sprintf("sel%d_%d_%d", k, g, ch), lits...))
			}
		}
		if len(terms) == 1 {
			b.Output(fmt.Sprintf("ch%d", k), terms[0])
			continue
		}
		b.Output(fmt.Sprintf("ch%d", k), b.Gate(circuit.Or, fmt.Sprintf("och%d", k), terms...))
	}
	// Group vector bits, one-based.
	vecBits := 0
	for 1<<vecBits < groups+1 {
		vecBits++
	}
	for k := 0; k < vecBits; k++ {
		var terms []circuit.GateID
		for g := 0; g < groups; g++ {
			if (g+1)&(1<<k) != 0 {
				terms = append(terms, ggrant[g])
			}
		}
		switch len(terms) {
		case 0:
		case 1:
			b.Output(fmt.Sprintf("v%d", k), terms[0])
		default:
			b.Output(fmt.Sprintf("v%d", k), b.Gate(circuit.Or, fmt.Sprintf("ov%d", k), terms...))
		}
	}
	return b.MustBuild()
}

// PriorityInterrupt builds a c432-style interrupt controller: ch request
// lines gated by ch enable lines feed a priority chain (channel 0 wins);
// outputs are an any-request flag and a one-hot-encoded binary vector of
// the granted channel, offset by one so channel 0 maps to vector 1.
func PriorityInterrupt(ch int) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("prio%d", ch))
	req := make([]circuit.GateID, ch)
	en := make([]circuit.GateID, ch)
	for i := 0; i < ch; i++ {
		req[i] = b.Input(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < ch; i++ {
		en[i] = b.Input(fmt.Sprintf("e%d", i))
	}
	act := make([]circuit.GateID, ch)
	for i := 0; i < ch; i++ {
		act[i] = b.Gate(circuit.And, fmt.Sprintf("act%d", i), req[i], en[i])
	}
	grant := make([]circuit.GateID, ch)
	grant[0] = act[0]
	higher := act[0]
	for i := 1; i < ch; i++ {
		nh := b.Gate(circuit.Not, fmt.Sprintf("nh%d", i), higher)
		grant[i] = b.Gate(circuit.And, fmt.Sprintf("grant%d", i), act[i], nh)
		higher = b.Gate(circuit.Or, fmt.Sprintf("hi%d", i), higher, act[i])
	}
	b.Output("irq", higher)
	// Vector bits: OR of grants whose (index+1) has the bit set.
	bits := 0
	for 1<<bits < ch+1 {
		bits++
	}
	for k := 0; k < bits; k++ {
		var terms []circuit.GateID
		for i := 0; i < ch; i++ {
			if (i+1)&(1<<k) != 0 {
				terms = append(terms, grant[i])
			}
		}
		var v circuit.GateID
		switch len(terms) {
		case 0:
			continue
		case 1:
			v = terms[0]
		default:
			v = b.Gate(circuit.Or, fmt.Sprintf("vec%d", k), terms...)
		}
		b.Output(fmt.Sprintf("v%d", k), v)
	}
	return b.MustBuild()
}
