// Package gen produces deterministic benchmark circuits: seeded random
// DAGs and structural analogues of the ISCAS85 netlists evaluated in the
// paper (adders, ALUs, ECC trees, priority logic, an array multiplier),
// plus seeded random PLAs standing in for the MCNC two-level benchmarks.
//
// All generators are deterministic functions of their parameters, so
// experiments are exactly reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"rdfault/internal/circuit"
)

// RandomOptions parameterizes RandomCircuit.
type RandomOptions struct {
	Inputs   int     // number of primary inputs (>=1)
	Gates    int     // number of internal simple gates (>=1)
	Outputs  int     // number of primary outputs (>=1, <= Inputs+Gates)
	MaxArity int     // maximum gate fanin; 0 means 3
	NotFrac  float64 // fraction of gates that are inverters (default 0.15 when 0)
}

// RandomCircuit generates a random combinational DAG from a seed. Gate
// fanins are drawn from all previously created gates with a bias toward
// recent ones, which produces deep, reconvergent structures similar to
// technology-mapped logic. Outputs are taken from the last gates, with
// dangling gates wired into extra outputs so the result always validates.
func RandomCircuit(name string, opt RandomOptions, seed int64) *circuit.Circuit {
	if opt.Inputs < 1 || opt.Gates < 1 {
		panic("gen: RandomCircuit needs at least 1 input and 1 gate")
	}
	if opt.MaxArity == 0 {
		opt.MaxArity = 3
	}
	if opt.MaxArity < 2 {
		opt.MaxArity = 2
	}
	if opt.NotFrac == 0 {
		opt.NotFrac = 0.15
	}
	if opt.Outputs < 1 {
		opt.Outputs = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(name)
	var pool []circuit.GateID
	fanout := make(map[circuit.GateID]int)
	for i := 0; i < opt.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i)))
	}
	pick := func() circuit.GateID {
		u := rng.Float64()
		idx := int(u * u * float64(len(pool)))
		g := pool[len(pool)-1-idx%len(pool)]
		fanout[g]++
		return g
	}
	simple := []circuit.GateType{circuit.And, circuit.Or, circuit.Nand, circuit.Nor}
	firstGate := len(pool)
	for i := 0; i < opt.Gates; i++ {
		nm := fmt.Sprintf("g%d", i)
		if rng.Float64() < opt.NotFrac {
			pool = append(pool, b.Gate(circuit.Not, nm, pick()))
			continue
		}
		t := simple[rng.Intn(len(simple))]
		arity := 2
		if opt.MaxArity > 2 {
			arity += rng.Intn(opt.MaxArity - 1)
		}
		fanin := make([]circuit.GateID, arity)
		for k := range fanin {
			fanin[k] = pick()
		}
		pool = append(pool, b.Gate(t, nm, fanin...))
	}
	used := make(map[circuit.GateID]bool)
	outN := 0
	addOut := func(g circuit.GateID) {
		if used[g] {
			return
		}
		used[g] = true
		b.Output(fmt.Sprintf("o%d", outN), g)
		outN++
	}
	for i := 0; i < opt.Outputs && i < len(pool); i++ {
		addOut(pool[len(pool)-1-i])
	}
	for i := len(pool) - 1; i >= firstGate; i-- {
		if fanout[pool[i]] == 0 {
			addOut(pool[i])
		}
	}
	// Dangling PIs feed an extra OR collector so every PI matters
	// structurally (unused PIs would otherwise fail validation).
	var danglingPIs []circuit.GateID
	for i := 0; i < firstGate; i++ {
		if fanout[pool[i]] == 0 && !used[pool[i]] {
			danglingPIs = append(danglingPIs, pool[i])
		}
	}
	if len(danglingPIs) == 1 {
		addOut(danglingPIs[0])
	} else if len(danglingPIs) > 1 {
		addOut(b.Gate(circuit.Or, "collect", danglingPIs...))
	}
	return b.MustBuild()
}
