package gen

import (
	"fmt"

	"rdfault/internal/circuit"
)

// xorAOI adds a 2-input XOR in AND-OR-inverter form:
// OR(AND(a, NOT b), AND(NOT a, b)). This is the "primitive XOR" shape of
// c499-style circuits, in contrast with Builder.Xor's 4-NAND expansion
// (the c1355 shape).
func xorAOI(b *circuit.Builder, name string, x, y circuit.GateID) circuit.GateID {
	nx := b.Gate(circuit.Not, name+"_nx", x)
	ny := b.Gate(circuit.Not, name+"_ny", y)
	t1 := b.Gate(circuit.And, name+"_t1", x, ny)
	t2 := b.Gate(circuit.And, name+"_t2", nx, y)
	return b.Gate(circuit.Or, name, t1, t2)
}

// XorStyle selects how generators expand XOR functions.
type XorStyle uint8

const (
	// XorNAND is the 4-NAND expansion (the c499 -> c1355 rewrite).
	XorNAND XorStyle = iota
	// XorAOI is the AND-OR-inverter form.
	XorAOI
)

func addXor(b *circuit.Builder, style XorStyle, name string, x, y circuit.GateID) circuit.GateID {
	if style == XorAOI {
		return xorAOI(b, name, x, y)
	}
	return b.Xor(name, x, y)
}

// fullAdder adds a 1-bit full adder; returns (sum, carry).
func fullAdder(b *circuit.Builder, style XorStyle, name string, a, x, cin circuit.GateID) (sum, cout circuit.GateID) {
	axb := addXor(b, style, name+"_x1", a, x)
	sum = addXor(b, style, name+"_s", axb, cin)
	t1 := b.Gate(circuit.And, name+"_c1", a, x)
	t2 := b.Gate(circuit.And, name+"_c2", cin, axb)
	cout = b.Gate(circuit.Or, name+"_co", t1, t2)
	return sum, cout
}

// RippleAdder builds an n-bit ripple-carry adder with carry-in: inputs
// a0..a(n-1), b0..b(n-1), cin; outputs s0..s(n-1), cout.
func RippleAdder(n int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("radd%d", n))
	as := make([]circuit.GateID, n)
	bs := make([]circuit.GateID, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		var s circuit.GateID
		s, carry = fullAdder(b, style, fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		b.Output(fmt.Sprintf("s%d", i), s)
	}
	b.Output("cout", carry)
	return b.MustBuild()
}

// CLAAdder builds an n-bit carry-lookahead adder: per-bit generate and
// propagate terms feed explicit lookahead logic
// (c_{i+1} = g_i | p_i&g_{i-1} | ... | p_i&...&p_0&cin), giving the wide
// AND-OR structures whose controlling-input choices the sort heuristics
// exploit. Outputs s0..s(n-1), cout.
func CLAAdder(n int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("cla%d", n))
	as := make([]circuit.GateID, n)
	bs := make([]circuit.GateID, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	cin := b.Input("cin")
	gTerm := make([]circuit.GateID, n)
	pTerm := make([]circuit.GateID, n)
	for i := 0; i < n; i++ {
		gTerm[i] = b.Gate(circuit.And, fmt.Sprintf("gen%d", i), as[i], bs[i])
		pTerm[i] = addXor(b, style, fmt.Sprintf("prop%d", i), as[i], bs[i])
	}
	carry := make([]circuit.GateID, n+1)
	carry[0] = cin
	for i := 0; i < n; i++ {
		// c_{i+1} = g_i | p_i&g_{i-1} | ... | p_i&...&p_0&c_0.
		terms := []circuit.GateID{gTerm[i]}
		for j := i - 1; j >= -1; j-- {
			lits := make([]circuit.GateID, 0, i-j+1)
			for k := i; k > j; k-- {
				lits = append(lits, pTerm[k])
			}
			if j >= 0 {
				lits = append(lits, gTerm[j])
			} else {
				lits = append(lits, cin)
			}
			terms = append(terms, b.Gate(circuit.And, fmt.Sprintf("cla%d_%d", i, j+1), lits...))
		}
		if len(terms) == 1 {
			carry[i+1] = terms[0]
		} else {
			carry[i+1] = b.Gate(circuit.Or, fmt.Sprintf("c%d", i+1), terms...)
		}
	}
	for i := 0; i < n; i++ {
		b.Output(fmt.Sprintf("s%d", i), addXor(b, style, fmt.Sprintf("sum%d", i), pTerm[i], carry[i]))
	}
	b.Output("cout", carry[n])
	return b.MustBuild()
}

// Comparator builds an n-bit magnitude comparator: outputs eq, gt, lt.
func Comparator(n int) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("cmp%d", n))
	as := make([]circuit.GateID, n)
	bs := make([]circuit.GateID, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// MSB-first chains.
	var eq, gt circuit.GateID = circuit.None, circuit.None
	for i := n - 1; i >= 0; i-- {
		nb := b.Gate(circuit.Not, fmt.Sprintf("nb%d", i), bs[i])
		na := b.Gate(circuit.Not, fmt.Sprintf("na%d", i), as[i])
		eqBit := b.Gate(circuit.Or, fmt.Sprintf("eqb%d", i),
			b.Gate(circuit.And, fmt.Sprintf("eqp%d", i), as[i], bs[i]),
			b.Gate(circuit.And, fmt.Sprintf("eqn%d", i), na, nb))
		gtBit := b.Gate(circuit.And, fmt.Sprintf("gtb%d", i), as[i], nb)
		if eq == circuit.None {
			eq, gt = eqBit, gtBit
			continue
		}
		gt = b.Gate(circuit.Or, fmt.Sprintf("gt%d", i), gt,
			b.Gate(circuit.And, fmt.Sprintf("gte%d", i), eq, gtBit))
		eq = b.Gate(circuit.And, fmt.Sprintf("eq%d", i), eq, eqBit)
	}
	lt := b.Gate(circuit.Nor, "ltg", eq, gt)
	b.Output("eq", eq)
	b.Output("gt", gt)
	b.Output("lt", lt)
	return b.MustBuild()
}

// ArrayMultiplier builds an n x n array multiplier in the style of
// c6288 (which is 16x16): an AND partial-product matrix reduced by rows
// of full adders. Its path count grows astronomically with n — the
// reproduction of the "more than 1.9e20 logical paths" remark.
func ArrayMultiplier(n int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("mul%dx%d", n, n))
	as := make([]circuit.GateID, n)
	bs := make([]circuit.GateID, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// Partial-product matrix: bit (i,j) has weight i+j.
	cols := make([][]circuit.GateID, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j],
				b.Gate(circuit.And, fmt.Sprintf("pp%d_%d", i, j), as[i], bs[j]))
		}
	}
	// Column compression with full/half adders, carries rippling into the
	// next column — the adder-array structure of c6288.
	cell := 0
	for w := 0; w < len(cols); w++ {
		for len(cols[w]) > 1 {
			nm := fmt.Sprintf("cell%d", cell)
			cell++
			if len(cols[w]) >= 3 {
				s, c := fullAdder(b, style, nm, cols[w][0], cols[w][1], cols[w][2])
				cols[w] = append([]circuit.GateID{s}, cols[w][3:]...)
				if w+1 < len(cols) {
					cols[w+1] = append(cols[w+1], c)
				} else {
					cols = append(cols, []circuit.GateID{c})
				}
			} else {
				s := addXor(b, style, nm+"_s", cols[w][0], cols[w][1])
				c := b.Gate(circuit.And, nm+"_c", cols[w][0], cols[w][1])
				cols[w] = []circuit.GateID{s}
				if w+1 < len(cols) {
					cols[w+1] = append(cols[w+1], c)
				} else {
					cols = append(cols, []circuit.GateID{c})
				}
			}
		}
	}
	for w := 0; w < len(cols); w++ {
		if len(cols[w]) == 1 {
			b.Output(fmt.Sprintf("p%d", w), cols[w][0])
		}
	}
	return b.MustBuild()
}
