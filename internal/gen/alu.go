package gen

import (
	"fmt"

	"rdfault/internal/circuit"
)

// mux4 builds a 4-way mux from simple gates: out = x[op] with op given by
// two select lines (s1 s0).
func mux4(b *circuit.Builder, name string, s0, s1 circuit.GateID, x [4]circuit.GateID) circuit.GateID {
	n0 := b.Gate(circuit.Not, name+"_n0", s0)
	n1 := b.Gate(circuit.Not, name+"_n1", s1)
	t0 := b.Gate(circuit.And, name+"_t0", n1, n0, x[0])
	t1 := b.Gate(circuit.And, name+"_t1", n1, s0, x[1])
	t2 := b.Gate(circuit.And, name+"_t2", s1, n0, x[2])
	t3 := b.Gate(circuit.And, name+"_t3", s1, s0, x[3])
	return b.Gate(circuit.Or, name, t0, t1, t2, t3)
}

// ALU builds a w-bit four-function ALU (AND, OR, XOR, ADD) with zero and
// carry flags — the c880/c5315-style control-plus-datapath shape: wide
// muxes give every gate many controlling-value side inputs, which is
// where the input-sort heuristics have room to work.
func ALU(w int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("alu%d", w))
	as := make([]circuit.GateID, w)
	bs := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	s0 := b.Input("op0")
	s1 := b.Input("op1")
	cin := b.Input("cin")

	carry := cin
	outs := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		andB := b.Gate(circuit.And, fmt.Sprintf("and%d", i), as[i], bs[i])
		orB := b.Gate(circuit.Or, fmt.Sprintf("or%d", i), as[i], bs[i])
		xorB := addXor(b, style, fmt.Sprintf("xor%d", i), as[i], bs[i])
		var sum circuit.GateID
		sum, carry = fullAdder(b, style, fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		outs[i] = mux4(b, fmt.Sprintf("f%d", i), s0, s1, [4]circuit.GateID{andB, orB, xorB, sum})
		b.Output(fmt.Sprintf("f%d$o", i), outs[i])
	}
	b.Output("cout", carry)
	// Zero flag: NOR over all result bits (as a tree).
	z := outs[0]
	if w > 1 {
		level := outs
		round := 0
		for len(level) > 1 {
			var next []circuit.GateID
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, b.Gate(circuit.Or, fmt.Sprintf("zt%d_%d", round, i/2), level[i], level[i+1]))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
			round++
		}
		z = level[0]
	}
	b.Output("zero", b.Gate(circuit.Not, "zflag", z))
	return b.MustBuild()
}

// ALUPipeline cascades two stages — an adder computing a+b and a
// four-function ALU combining that sum with a third operand c — giving
// the deep, multiplicative path structure of larger ALUs like c5315.
func ALUPipeline(w int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("alupipe%d", w))
	as := make([]circuit.GateID, w)
	bs := make([]circuit.GateID, w)
	cs := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	for i := 0; i < w; i++ {
		cs[i] = b.Input(fmt.Sprintf("c%d", i))
	}
	s0 := b.Input("op0")
	s1 := b.Input("op1")
	cin := b.Input("cin")

	// Stage 1: s = a + b.
	carry := cin
	sums := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		sums[i], carry = fullAdder(b, style, fmt.Sprintf("st1_%d", i), as[i], bs[i], carry)
	}
	b.Output("c1out", carry)

	// Stage 2: four-function ALU between s and c.
	carry2 := b.Gate(circuit.Buf, "c2in", carry)
	for i := 0; i < w; i++ {
		andB := b.Gate(circuit.And, fmt.Sprintf("and%d", i), sums[i], cs[i])
		orB := b.Gate(circuit.Or, fmt.Sprintf("or%d", i), sums[i], cs[i])
		xorB := addXor(b, style, fmt.Sprintf("xor%d", i), sums[i], cs[i])
		var sum circuit.GateID
		sum, carry2 = fullAdder(b, style, fmt.Sprintf("st2_%d", i), sums[i], cs[i], carry2)
		b.Output(fmt.Sprintf("f%d$o", i), mux4(b, fmt.Sprintf("f%d", i), s0, s1,
			[4]circuit.GateID{andB, orB, xorB, sum}))
	}
	b.Output("c2out", carry2)
	return b.MustBuild()
}

// ALUComparator couples an ALU with a magnitude comparator and a parity
// tree over the result — the c2670/c7552-ish mixed datapath.
func ALUComparator(w int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("alucmp%d", w))
	as := make([]circuit.GateID, w)
	bs := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	cin := b.Input("cin")

	// Adder datapath.
	carry := cin
	sums := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		sums[i], carry = fullAdder(b, style, fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		b.Output(fmt.Sprintf("s%d", i), sums[i])
	}
	b.Output("cout", carry)

	// Comparator (MSB-first chain).
	var eq, gt circuit.GateID = circuit.None, circuit.None
	for i := w - 1; i >= 0; i-- {
		nb := b.Gate(circuit.Not, fmt.Sprintf("nb%d", i), bs[i])
		na := b.Gate(circuit.Not, fmt.Sprintf("na%d", i), as[i])
		eqBit := b.Gate(circuit.Or, fmt.Sprintf("eqb%d", i),
			b.Gate(circuit.And, fmt.Sprintf("eqp%d", i), as[i], bs[i]),
			b.Gate(circuit.And, fmt.Sprintf("eqn%d", i), na, nb))
		gtBit := b.Gate(circuit.And, fmt.Sprintf("gtb%d", i), as[i], nb)
		if eq == circuit.None {
			eq, gt = eqBit, gtBit
			continue
		}
		gt = b.Gate(circuit.Or, fmt.Sprintf("gt%d", i), gt,
			b.Gate(circuit.And, fmt.Sprintf("gte%d", i), eq, gtBit))
		eq = b.Gate(circuit.And, fmt.Sprintf("eq%d", i), eq, eqBit)
	}
	b.Output("eq", eq)
	b.Output("gt", gt)

	// Parity over the sum.
	p := sums[0]
	for i := 1; i < w; i++ {
		p = addXor(b, style, fmt.Sprintf("par%d", i), p, sums[i])
	}
	b.Output("parity", p)
	return b.MustBuild()
}

// BCDALU is the c3540-ish shape: a binary adder with a BCD
// decimal-adjust stage per nibble (add 6 when the nibble exceeds 9),
// driven by a mode input.
func BCDALU(nibbles int, style XorStyle) *circuit.Circuit {
	w := 4 * nibbles
	b := circuit.NewBuilder(fmt.Sprintf("bcdalu%d", w))
	as := make([]circuit.GateID, w)
	bs := make([]circuit.GateID, w)
	for i := 0; i < w; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < w; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	mode := b.Input("dec") // 1 = decimal adjust enabled
	carry := b.Input("cin")

	for nb := 0; nb < nibbles; nb++ {
		sums := make([]circuit.GateID, 4)
		for i := 0; i < 4; i++ {
			bit := 4*nb + i
			sums[i], carry = fullAdder(b, style, fmt.Sprintf("fa%d", bit), as[bit], bs[bit], carry)
		}
		// Nibble > 9: s3&s2 | s3&s1 (binary value >= 10), or carry out.
		gt9 := b.Gate(circuit.Or, fmt.Sprintf("gt9_%d", nb),
			b.Gate(circuit.And, fmt.Sprintf("g1_%d", nb), sums[3], sums[2]),
			b.Gate(circuit.And, fmt.Sprintf("g2_%d", nb), sums[3], sums[1]),
			carry)
		adj := b.Gate(circuit.And, fmt.Sprintf("adj%d", nb), gt9, mode)
		// Add 6 (0110) to the nibble when adjusting: half adder at bit 1,
		// full adder at bit 2, carry into bit 3.
		s1 := addXor(b, style, fmt.Sprintf("da%d_1", nb), sums[1], adj)
		c1 := b.Gate(circuit.And, fmt.Sprintf("dc%d_1", nb), sums[1], adj)
		s2, c2 := fullAdder(b, style, fmt.Sprintf("da%d_2", nb), sums[2], adj, c1)
		s3 := addXor(b, style, fmt.Sprintf("da%d_3", nb), sums[3], c2)
		outBits := []circuit.GateID{sums[0], s1, s2, s3}
		for i, ob := range outBits {
			b.Output(fmt.Sprintf("q%d", 4*nb+i), ob)
		}
		// Decimal carry joins the binary carry for the next nibble.
		carry = b.Gate(circuit.Or, fmt.Sprintf("nc%d", nb), carry, adj)
	}
	b.Output("cout", carry)
	return b.MustBuild()
}
