package gen

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/paths"
)

func boolsOf(v, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v&(1<<i) != 0
	}
	return out
}

func intOf(bits []bool) int {
	v := 0
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	return v
}

func TestRippleAdder(t *testing.T) {
	for _, style := range []XorStyle{XorNAND, XorAOI} {
		c := RippleAdder(4, style)
		for a := 0; a < 16; a++ {
			for x := 0; x < 16; x++ {
				for cin := 0; cin < 2; cin++ {
					in := append(append(boolsOf(a, 4), boolsOf(x, 4)...), cin == 1)
					out := c.OutputsOf(c.EvalBool(in))
					got := intOf(out) // s0..s3, cout as bit 4
					if want := a + x + cin; got != want {
						t.Fatalf("style %d: %d+%d+%d = %d, want %d", style, a, x, cin, got, want)
					}
				}
			}
		}
	}
}

func TestComparator(t *testing.T) {
	c := Comparator(4)
	for a := 0; a < 16; a++ {
		for x := 0; x < 16; x++ {
			in := append(boolsOf(a, 4), boolsOf(x, 4)...)
			out := c.OutputsOf(c.EvalBool(in))
			eq, gt, lt := out[0], out[1], out[2]
			if eq != (a == x) || gt != (a > x) || lt != (a < x) {
				t.Fatalf("cmp(%d,%d) = eq%v gt%v lt%v", a, x, eq, gt, lt)
			}
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, style := range []XorStyle{XorNAND, XorAOI} {
			c := ArrayMultiplier(n, style)
			for a := 0; a < 1<<n; a++ {
				for x := 0; x < 1<<n; x++ {
					in := append(boolsOf(a, n), boolsOf(x, n)...)
					out := c.OutputsOf(c.EvalBool(in))
					if got, want := intOf(out), a*x; got != want {
						t.Fatalf("n=%d style=%d: %d*%d = %d, want %d", n, style, a, x, got, want)
					}
				}
			}
		}
	}
}

func TestParityTree(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		c := ParityTree(n, XorNAND)
		for v := 0; v < 1<<n; v++ {
			in := boolsOf(v, n)
			want := false
			for _, b := range in {
				want = want != b
			}
			out := c.OutputsOf(c.EvalBool(in))
			if out[0] != want {
				t.Fatalf("n=%d v=%d: parity %v, want %v", n, v, out[0], want)
			}
		}
	}
}

func TestSECDecoderCorrectsSingleErrors(t *testing.T) {
	const d = 6
	for _, style := range []XorStyle{XorNAND, XorAOI} {
		c := SECDecoder(d, style)
		k := len(c.Inputs()) - d
		for data := 0; data < 1<<d; data++ {
			// Compute the check bits the encoder would produce: check_j =
			// parity of data bits with code bit j set.
			check := 0
			for j := 0; j < k; j++ {
				p := false
				for i := 0; i < d; i++ {
					if eccCode(i)&(1<<j) != 0 && data&(1<<i) != 0 {
						p = !p
					}
				}
				if p {
					check |= 1 << j
				}
			}
			// No error: decoder must return the data unchanged.
			in := append(boolsOf(data, d), boolsOf(check, k)...)
			out := c.OutputsOf(c.EvalBool(in))
			if got := intOf(out); got != data {
				t.Fatalf("style %d clean: decode(%0*b) = %0*b", style, d, data, d, got)
			}
			// Each single data-bit error must be corrected.
			for e := 0; e < d; e++ {
				bad := data ^ (1 << e)
				in := append(boolsOf(bad, d), boolsOf(check, k)...)
				out := c.OutputsOf(c.EvalBool(in))
				if got := intOf(out); got != data {
					t.Fatalf("style %d: flip bit %d of %0*b not corrected: got %0*b",
						style, e, d, data, d, got)
				}
			}
		}
	}
}

func TestSECDEDDetectsDoubleErrors(t *testing.T) {
	const d = 5
	c := SECDEDDecoder(d, XorNAND)
	k := len(c.Inputs()) - d - 1
	for data := 0; data < 1<<d; data++ {
		check := 0
		for j := 0; j < k; j++ {
			p := false
			for i := 0; i < d; i++ {
				if eccCode(i)&(1<<j) != 0 && data&(1<<i) != 0 {
					p = !p
				}
			}
			if p {
				check |= 1 << j
			}
		}
		// Overall parity over data+check bits.
		par := false
		for i := 0; i < d; i++ {
			if data&(1<<i) != 0 {
				par = !par
			}
		}
		for j := 0; j < k; j++ {
			if check&(1<<j) != 0 {
				par = !par
			}
		}
		in := append(append(boolsOf(data, d), boolsOf(check, k)...), par)
		out := c.OutputsOf(c.EvalBool(in))
		if out[0] {
			t.Fatalf("clean word flagged double error (data %0*b)", d, data)
		}
		if got := intOf(out[1:]); got != data {
			t.Fatalf("clean decode(%0*b) = %0*b", d, data, d, got)
		}
		// Two data-bit errors: double_err must rise.
		bad := data ^ 0b11
		in = append(append(boolsOf(bad, d), boolsOf(check, k)...), par)
		out = c.OutputsOf(c.EvalBool(in))
		if !out[0] {
			t.Fatalf("double error not flagged (data %0*b)", d, data)
		}
		// Single data-bit error: corrected, not flagged (p arrives
		// unchanged; the received word's overall parity goes odd).
		bad = data ^ 0b100
		in = append(append(boolsOf(bad, d), boolsOf(check, k)...), par)
		out = c.OutputsOf(c.EvalBool(in))
		if out[0] {
			t.Fatalf("single error flagged as double (data %0*b)", d, data)
		}
		if got := intOf(out[1:]); got != data {
			t.Fatalf("single error decode(%0*b) = %0*b", d, data, d, got)
		}
	}
}

func TestALU(t *testing.T) {
	const w = 4
	c := ALU(w, XorNAND)
	mask := 1<<w - 1
	for a := 0; a < 1<<w; a++ {
		for x := 0; x < 1<<w; x++ {
			for op := 0; op < 4; op++ {
				in := append(boolsOf(a, w), boolsOf(x, w)...)
				in = append(in, op&1 != 0, op&2 != 0, false)
				out := c.OutputsOf(c.EvalBool(in))
				res := intOf(out[:w])
				cout := out[w]
				zero := out[w+1]
				var want int
				switch op {
				case 0:
					want = a & x
				case 1:
					want = a | x
				case 2:
					want = a ^ x
				case 3:
					want = (a + x) & mask
				}
				if res != want {
					t.Fatalf("op%d(%d,%d) = %d, want %d", op, a, x, res, want)
				}
				if op == 3 && cout != (a+x > mask) {
					t.Fatalf("cout wrong for %d+%d", a, x)
				}
				if zero != (res == 0) {
					t.Fatalf("zero flag wrong for op%d(%d,%d)", op, a, x)
				}
			}
		}
	}
}

func TestALUComparator(t *testing.T) {
	const w = 3
	c := ALUComparator(w, XorNAND)
	for a := 0; a < 1<<w; a++ {
		for x := 0; x < 1<<w; x++ {
			in := append(boolsOf(a, w), boolsOf(x, w)...)
			in = append(in, false)
			out := c.OutputsOf(c.EvalBool(in))
			sum := intOf(out[:w+1]) // s bits + cout
			if sum != a+x {
				t.Fatalf("%d+%d = %d", a, x, sum)
			}
			eq, gt := out[w+1], out[w+2]
			if eq != (a == x) || gt != (a > x) {
				t.Fatalf("cmp(%d,%d) eq=%v gt=%v", a, x, eq, gt)
			}
			par := false
			for i := 0; i < w; i++ {
				if (a+x)&(1<<i) != 0 {
					par = !par
				}
			}
			if out[w+3] != par {
				t.Fatalf("parity(%d+%d) = %v", a, x, out[w+3])
			}
		}
	}
}

func TestBCDALUAddsDecimal(t *testing.T) {
	c := BCDALU(1, XorNAND)
	for a := 0; a <= 9; a++ {
		for x := 0; x <= 9; x++ {
			in := append(boolsOf(a, 4), boolsOf(x, 4)...)
			in = append(in, true, false) // dec mode, cin=0
			out := c.OutputsOf(c.EvalBool(in))
			digit := intOf(out[:4])
			carry := out[4]
			want := a + x
			wantDigit, wantCarry := want%10, want >= 10
			if digit != wantDigit || carry != wantCarry {
				t.Fatalf("BCD %d+%d = %d carry %v, want %d carry %v",
					a, x, digit, carry, wantDigit, wantCarry)
			}
		}
	}
}

func TestBCDALUBinaryMode(t *testing.T) {
	c := BCDALU(1, XorNAND)
	for a := 0; a < 16; a++ {
		for x := 0; x < 16; x++ {
			in := append(boolsOf(a, 4), boolsOf(x, 4)...)
			in = append(in, false, false) // binary mode
			out := c.OutputsOf(c.EvalBool(in))
			got := intOf(out[:5])
			if got != a+x {
				t.Fatalf("binary %d+%d = %d", a, x, got)
			}
		}
	}
}

func TestPriorityInterrupt(t *testing.T) {
	const ch = 5
	c := PriorityInterrupt(ch)
	for r := 0; r < 1<<ch; r++ {
		for e := 0; e < 1<<ch; e++ {
			in := append(boolsOf(r, ch), boolsOf(e, ch)...)
			out := c.OutputsOf(c.EvalBool(in))
			act := r & e
			wantIRQ := act != 0
			grant := 0
			for i := 0; i < ch; i++ {
				if act&(1<<i) != 0 {
					grant = i + 1
					break
				}
			}
			if out[0] != wantIRQ {
				t.Fatalf("irq(r=%05b,e=%05b) = %v", r, e, out[0])
			}
			if got := intOf(out[1:]); got != grant {
				t.Fatalf("vector(r=%05b,e=%05b) = %d, want %d", r, e, got, grant)
			}
		}
	}
}

func TestPriorityInterruptGrouped(t *testing.T) {
	const groups, per = 3, 3
	c := PriorityInterruptGrouped(groups, per)
	nreq := groups * per
	for r := 0; r < 1<<nreq; r++ {
		for e := 0; e < 1<<groups; e++ {
			in := append(boolsOf(r, nreq), boolsOf(e, groups)...)
			out := c.OutputsOf(c.EvalBool(in))
			// Reference model.
			wantGroup, wantChan := 0, 0
			for g := 0; g < groups; g++ {
				if e&(1<<g) == 0 {
					continue
				}
				sub := (r >> (per * g)) & (1<<per - 1)
				if sub == 0 {
					continue
				}
				wantGroup = g + 1
				for ch := 0; ch < per; ch++ {
					if sub&(1<<ch) != 0 {
						wantChan = ch
						break
					}
				}
				break
			}
			irq := out[0]
			if irq != (wantGroup != 0) {
				t.Fatalf("irq(r=%b,e=%b) = %v", r, e, irq)
			}
			// Outputs: irq, ch0, ch1, v0, v1.
			gotChan := intOf(out[1:3])
			gotGroup := intOf(out[3:])
			if wantGroup == 0 {
				wantChan = 0
			}
			if gotChan != wantChan || gotGroup != wantGroup {
				t.Fatalf("r=%b e=%b: got chan %d group %d, want %d %d",
					r, e, gotChan, gotGroup, wantChan, wantGroup)
			}
		}
	}
}

func TestSuitesDeterministic(t *testing.T) {
	a := ISCAS85Suite()
	b := ISCAS85Suite()
	if len(a) != 9 {
		t.Fatalf("suite has %d circuits", len(a))
	}
	for i := range a {
		if a[i].Paper != b[i].Paper || a[i].C.NumGates() != b[i].C.NumGates() {
			t.Fatalf("suite not deterministic at %d", i)
		}
	}
	ms := MCNCSuite()
	if len(ms) != 8 {
		t.Fatalf("MCNC suite has %d covers", len(ms))
	}
	ms2 := MCNCSuite()
	for i := range ms {
		if len(ms[i].Cover.Cubes) != len(ms2[i].Cover.Cubes) {
			t.Fatal("MCNC suite not deterministic")
		}
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	a := RandomCircuit("d", RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, 42)
	b := RandomCircuit("d", RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, 42)
	if a.NumGates() != b.NumGates() || a.NumLeads() != b.NumLeads() {
		t.Fatal("RandomCircuit not deterministic")
	}
	c := RandomCircuit("d", RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, 43)
	if a.NumGates() == c.NumGates() && a.NumLeads() == c.NumLeads() && a.Depth() == c.Depth() {
		t.Log("different seeds produced structurally identical circuits (possible but unlikely)")
	}
}

func TestRandomCircuitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero inputs")
		}
	}()
	RandomCircuit("bad", RandomOptions{}, 1)
}

func TestRandomPLAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero dimensions")
		}
	}()
	RandomPLA("bad", PLAOptions{}, 1)
}

func TestPaperExampleShape(t *testing.T) {
	c := PaperExample()
	if len(c.Inputs()) != 3 || len(c.Outputs()) != 1 {
		t.Fatal("example shape wrong")
	}
	// f = a | (b & (b|c)) = a | b.
	for v := 0; v < 8; v++ {
		in := boolsOf(v, 3)
		out := c.OutputsOf(c.EvalBool(in))
		if out[0] != (in[0] || in[1]) {
			t.Fatalf("example function wrong at %v", in)
		}
	}
}

func TestXorStyleStructures(t *testing.T) {
	nand := ParityTree(4, XorNAND)
	aoi := ParityTree(4, XorAOI)
	if nand.Stats().ByType[circuit.Nand] == 0 {
		t.Error("XorNAND produced no NANDs")
	}
	if aoi.Stats().ByType[circuit.And] == 0 || aoi.Stats().ByType[circuit.Or] == 0 {
		t.Error("XorAOI produced no AND/OR structure")
	}
}

func TestCLAAdder(t *testing.T) {
	for _, style := range []XorStyle{XorNAND, XorAOI} {
		c := CLAAdder(4, style)
		for a := 0; a < 16; a++ {
			for x := 0; x < 16; x++ {
				for cin := 0; cin < 2; cin++ {
					in := append(append(boolsOf(a, 4), boolsOf(x, 4)...), cin == 1)
					out := c.OutputsOf(c.EvalBool(in))
					if got, want := intOf(out), a+x+cin; got != want {
						t.Fatalf("style %d: %d+%d+%d = %d, want %d", style, a, x, cin, got, want)
					}
				}
			}
		}
	}
}

func TestCLAMatchesRipple(t *testing.T) {
	cla := CLAAdder(5, XorNAND)
	rip := RippleAdder(5, XorNAND)
	for v := 0; v < 1<<11; v++ {
		in := boolsOf(v, 11)
		a := cla.OutputsOf(cla.EvalBool(in))
		b := rip.OutputsOf(rip.EvalBool(in))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("CLA and ripple differ at v=%d output %d", v, i)
			}
		}
	}
}

func TestALUPipeline(t *testing.T) {
	const w = 3
	c := ALUPipeline(w, XorNAND)
	mask := 1<<w - 1
	for a := 0; a < 1<<w; a++ {
		for x := 0; x < 1<<w; x++ {
			for cc := 0; cc < 1<<w; cc++ {
				for op := 0; op < 4; op++ {
					in := append(append(boolsOf(a, w), boolsOf(x, w)...), boolsOf(cc, w)...)
					in = append(in, op&1 != 0, op&2 != 0, false)
					out := c.OutputsOf(c.EvalBool(in))
					// Outputs: c1out, then f0..f(w-1) interleaved with
					// creation order: c1out first, then per-bit f$o, then
					// c2out.
					c1 := out[0]
					res := intOf(out[1 : 1+w])
					c2 := out[1+w]
					s := (a + x) & mask
					carry1 := a+x > mask
					if c1 != carry1 {
						t.Fatalf("c1out wrong for %d+%d", a, x)
					}
					var want int
					switch op {
					case 0:
						want = s & cc
					case 1:
						want = s | cc
					case 2:
						want = s ^ cc
					case 3:
						want = (s + cc + b2i(carry1)) & mask
					}
					if res != want {
						t.Fatalf("op%d(%d,%d,%d) = %d, want %d", op, a, x, cc, res, want)
					}
					if op == 3 {
						if c2 != (s+cc+b2i(carry1) > mask) {
							t.Fatalf("c2out wrong for s=%d c=%d", s, cc)
						}
					}
				}
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestSuiteFingerprints pins the exact structural fingerprints of the
// generated suites: any accidental generator change that would silently
// alter the published experiment numbers fails here first.
func TestSuiteFingerprints(t *testing.T) {
	want := map[string]struct {
		gates int
		paths string
	}{
		"c432":  {136, "1538"},
		"c499":  {380, "682800"},
		"c880":  {229, "4066"},
		"c1355": {254, "6298656"},
		"c1908": {169, "66460548"},
		"c2670": {322, "37735886"},
		"c3540": {327, "84013142"},
		"c5315": {534, "64708"},
		"c7552": {477, "5115498"},
	}
	for _, nc := range ISCAS85Suite() {
		w, ok := want[nc.Paper]
		if !ok {
			t.Errorf("unexpected suite member %s", nc.Paper)
			continue
		}
		if nc.C.NumGates() != w.gates {
			t.Errorf("%s: %d gates, fingerprint %d", nc.Paper, nc.C.NumGates(), w.gates)
		}
		if got := paths.NewCounts(nc.C).Logical().String(); got != w.paths {
			t.Errorf("%s: %s logical paths, fingerprint %s", nc.Paper, got, w.paths)
		}
	}
	if got := paths.NewCounts(C6288Analogue()).Logical().String(); got != "121388628126926032" {
		t.Errorf("c6288 analogue fingerprint changed: %s", got)
	}
	// MCNC covers: cube counts are the cheap fingerprint.
	cubes := map[string]int{}
	for _, nc := range MCNCSuite() {
		cubes[nc.Paper] = len(nc.Cover.Cubes)
	}
	wantCubes := map[string]int{
		"apex1": 52, "Z5xp1": 130, "apex5": 65, "bw": 97,
		"apex3": 79, "misex3": 110, "seq": 134, "misex3c": 192,
	}
	for k, w := range wantCubes {
		if cubes[k] != w {
			t.Errorf("%s: %d cubes, fingerprint %d", k, cubes[k], w)
		}
	}
}
