package gen

import (
	"rdfault/internal/circuit"
	"rdfault/internal/pla"
)

// Named pairs a generated circuit with the paper benchmark it stands in
// for.
type Named struct {
	// Paper is the benchmark name in the paper's tables (e.g. "c432").
	Paper string
	// C is the generated structural analogue.
	C *circuit.Circuit
}

// ISCAS85Suite generates the stand-ins for the ISCAS85 benchmarks of
// Tables I and II. The circuits reproduce the structural regimes of the
// originals (see DESIGN.md §4) at sizes chosen so that the full Table I
// experiment runs in minutes rather than the paper's hours:
//
//	c432  -> 27-channel grouped priority interrupt logic (36 in, 7 out)
//	c499  -> SEC decoder with primitive-style (AOI) XORs
//	c880  -> 8-bit four-function ALU
//	c1355 -> the c499 analogue with XORs in 4-NAND form
//	c1908 -> SEC/DED decoder
//	c2670 -> ALU + comparator + parity datapath
//	c3540 -> BCD-adjusting ALU
//	c5315 -> two-stage ALU pipeline
//	c7552 -> wide adder/comparator/parity datapath
//
// c6288 (the 16x16 multiplier) is exposed separately via C6288Analogue:
// as in the paper, its path count (>1.9e20 in the original) rules out
// enumeration and it appears only in path-counting experiments.
func ISCAS85Suite() []Named {
	return []Named{
		{"c432", PriorityInterruptGrouped(9, 3)}, // 27 channels in 9 groups; 36 in, 7 out like c432
		{"c499", SECDecoder(20, XorAOI)},         // 682,800 (paper: 795,776)
		{"c880", ALU(8, XorNAND)},                // 4,066 (paper: 17,284)
		{"c1355", SECDecoder(16, XorNAND)},       // 6,298,656 (paper: 8,346,432)
		{"c1908", SECDEDDecoder(8, XorNAND)},     // 66,460,548
		{"c2670", ALUComparator(12, XorNAND)},    // 37,735,886
		{"c3540", BCDALU(4, XorNAND)},            // 84,013,142 (paper: 57,353,342)
		{"c5315", ALUPipeline(12, XorAOI)},       // 64,708
		{"c7552", ALUComparator(16, XorAOI)},     // 5,115,498
	}
}

// C6288Analogue returns the 16x16 array multiplier stand-in for c6288.
func C6288Analogue() *circuit.Circuit {
	return ArrayMultiplier(16, XorNAND)
}

// NamedCover pairs a generated two-level cover with the MCNC benchmark it
// stands in for.
type NamedCover struct {
	Paper string
	Cover *pla.Cover
}

// MCNCSuite generates the stand-ins for the synthesized MCNC two-level
// benchmarks of Table III. Sizes grow roughly like the paper's lineup
// (apex1 smallest to misex3c largest by path count) while staying small
// enough for the leaf-dag approach of [1] to finish — which is the point
// of that comparison.
func MCNCSuite() []NamedCover {
	return []NamedCover{
		{"apex1", RandomPLA("apex1", PLAOptions{Inputs: 12, Outputs: 6, Cubes: 40, DashFrac: 0.55, Redundant: 12}, 1001)},
		{"Z5xp1", RandomPLA("Z5xp1", PLAOptions{Inputs: 7, Outputs: 6, Cubes: 45, DashFrac: 0.2, Redundant: 140}, 1002)},
		{"apex5", RandomPLA("apex5", PLAOptions{Inputs: 14, Outputs: 8, Cubes: 50, DashFrac: 0.6, Redundant: 15}, 1003)},
		{"bw", RandomPLA("bw", PLAOptions{Inputs: 5, Outputs: 12, Cubes: 40, DashFrac: 0.15, Redundant: 120}, 1004)},
		{"apex3", RandomPLA("apex3", PLAOptions{Inputs: 14, Outputs: 8, Cubes: 60, DashFrac: 0.55, Redundant: 20}, 1005)},
		{"misex3", RandomPLA("misex3", PLAOptions{Inputs: 14, Outputs: 10, Cubes: 80, DashFrac: 0.5, Redundant: 30}, 1006)},
		{"seq", RandomPLA("seq", PLAOptions{Inputs: 16, Outputs: 10, Cubes: 100, DashFrac: 0.55, Redundant: 35}, 1007)},
		{"misex3c", RandomPLA("misex3c", PLAOptions{Inputs: 16, Outputs: 12, Cubes: 140, DashFrac: 0.55, Redundant: 60}, 1008)},
	}
}
