package gen

import (
	"fmt"
	"math/rand"

	"rdfault/internal/pla"
)

// PLAOptions parameterizes RandomPLA.
type PLAOptions struct {
	Inputs  int
	Outputs int
	Cubes   int
	// DashFrac is the probability of a don't-care literal (default 0.4).
	DashFrac float64
	// OutFrac is the probability a cube belongs to an output's ON-set
	// (default 0.5; every cube gets at least one output and every output
	// at least one cube).
	OutFrac float64
	// Redundant appends this many extra cubes that are strict
	// specializations of existing ones (absorbed by the cover). They do
	// not change the function but survive structural synthesis, which is
	// the main source of robust dependent paths in real two-level
	// benchmarks.
	Redundant int
}

// RandomPLA generates a deterministic random two-level cover — the
// synthetic stand-in for the MCNC two-level benchmarks of Table III.
func RandomPLA(name string, opt PLAOptions, seed int64) *pla.Cover {
	if opt.Inputs < 1 || opt.Outputs < 1 || opt.Cubes < 1 {
		panic("gen: RandomPLA needs positive dimensions")
	}
	if opt.DashFrac == 0 {
		opt.DashFrac = 0.4
	}
	if opt.OutFrac == 0 {
		opt.OutFrac = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	cv := &pla.Cover{Name: name, NumIn: opt.Inputs, NumOut: opt.Outputs}
	for ci := 0; ci < opt.Cubes; ci++ {
		cb := pla.Cube{In: make([]pla.Trit, opt.Inputs), Out: make([]bool, opt.Outputs)}
		nonDash := 0
		for i := range cb.In {
			r := rng.Float64()
			switch {
			case r < opt.DashFrac:
				cb.In[i] = pla.TDash
			case r < opt.DashFrac+(1-opt.DashFrac)/2:
				cb.In[i] = pla.T0
				nonDash++
			default:
				cb.In[i] = pla.T1
				nonDash++
			}
		}
		if nonDash == 0 {
			// Avoid constant-true cubes; pin one literal.
			i := rng.Intn(opt.Inputs)
			cb.In[i] = pla.Trit(rng.Intn(2))
		}
		any := false
		for o := range cb.Out {
			if rng.Float64() < opt.OutFrac {
				cb.Out[o] = true
				any = true
			}
		}
		if !any {
			cb.Out[rng.Intn(opt.Outputs)] = true
		}
		cv.Cubes = append(cv.Cubes, cb)
	}
	// Redundant cubes: specialize a random base cube by pinning one or
	// more of its don't-cares; the original cube absorbs the new one.
	for r := 0; r < opt.Redundant; r++ {
		base := cv.Cubes[rng.Intn(len(cv.Cubes))]
		cb := pla.Cube{
			In:  append([]pla.Trit(nil), base.In...),
			Out: append([]bool(nil), base.Out...),
		}
		var dashes []int
		for i, t := range cb.In {
			if t == pla.TDash {
				dashes = append(dashes, i)
			}
		}
		if len(dashes) == 0 {
			continue
		}
		pin := 1 + rng.Intn(len(dashes))
		for _, di := range rng.Perm(len(dashes))[:pin] {
			cb.In[dashes[di]] = pla.Trit(rng.Intn(2))
		}
		cv.Cubes = append(cv.Cubes, cb)
	}
	// Every output needs a non-empty ON-set.
	for o := 0; o < opt.Outputs; o++ {
		has := false
		for _, cb := range cv.Cubes {
			if cb.Out[o] {
				has = true
				break
			}
		}
		if !has {
			cv.Cubes[rng.Intn(len(cv.Cubes))].Out[o] = true
		}
	}
	if err := cv.Validate(); err != nil {
		panic(fmt.Sprintf("gen: RandomPLA produced invalid cover: %v", err))
	}
	return cv
}
