package gen

import (
	"fmt"

	"rdfault/internal/circuit"
)

// ParityTree builds an n-input parity circuit with the given XOR style.
func ParityTree(n int, style XorStyle) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("parity%d", n))
	level := make([]circuit.GateID, n)
	for i := range level {
		level[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	round := 0
	for len(level) > 1 {
		var next []circuit.GateID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, addXor(b, style, fmt.Sprintf("x%d_%d", round, i/2), level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		round++
	}
	b.Output("par", level[0])
	return b.MustBuild()
}

// eccCode returns the nonzero codeword assigned to data bit i.
func eccCode(i int) int { return i + 1 }

// SECDecoder builds a single-error-correcting decoder in the spirit of
// c499/c1355: inputs are d received data bits plus k received check bits
// (k = bits of d); the circuit recomputes the check bits, forms the
// syndrome, decodes it one AND per data bit and corrects the data by
// XOR. Outputs are the d corrected bits. With XorAOI the structure
// mirrors c499's primitive-XOR netlist, with XorNAND the expanded c1355
// form.
func SECDecoder(d int, style XorStyle) *circuit.Circuit {
	k := 0
	for 1<<k < d+1 {
		k++
	}
	b := circuit.NewBuilder(fmt.Sprintf("sec%d_%d", d, k))
	data := make([]circuit.GateID, d)
	for i := range data {
		data[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	check := make([]circuit.GateID, k)
	for j := range check {
		check[j] = b.Input(fmt.Sprintf("c%d", j))
	}
	// Syndrome bit j = check_j XOR parity of data bits whose code has bit
	// j set.
	syn := make([]circuit.GateID, k)
	synNot := make([]circuit.GateID, k)
	for j := 0; j < k; j++ {
		bits := []circuit.GateID{check[j]}
		for i := 0; i < d; i++ {
			if eccCode(i)&(1<<j) != 0 {
				bits = append(bits, data[i])
			}
		}
		s := bits[0]
		for t := 1; t < len(bits); t++ {
			nm := fmt.Sprintf("syn%d_%d", j, t)
			if t == len(bits)-1 {
				nm = fmt.Sprintf("syn%d", j)
			}
			s = addXor(b, style, nm, s, bits[t])
		}
		syn[j] = s
		synNot[j] = b.Gate(circuit.Not, fmt.Sprintf("nsyn%d", j), s)
	}
	// Correction term per data bit: AND over syndrome literals matching
	// its code.
	for i := 0; i < d; i++ {
		lits := make([]circuit.GateID, k)
		for j := 0; j < k; j++ {
			if eccCode(i)&(1<<j) != 0 {
				lits[j] = syn[j]
			} else {
				lits[j] = synNot[j]
			}
		}
		var corr circuit.GateID
		if k == 1 {
			corr = lits[0]
		} else {
			corr = b.Gate(circuit.And, fmt.Sprintf("corr%d", i), lits...)
		}
		out := addXor(b, style, fmt.Sprintf("out%d", i), data[i], corr)
		b.Output(fmt.Sprintf("q%d", i), out)
	}
	return b.MustBuild()
}

// SECDEDDecoder extends SECDecoder with an overall parity input and a
// double-error flag, the c1908-ish shape: SEC/DED decoding of d data
// bits.
func SECDEDDecoder(d int, style XorStyle) *circuit.Circuit {
	k := 0
	for 1<<k < d+1 {
		k++
	}
	b := circuit.NewBuilder(fmt.Sprintf("secded%d_%d", d, k))
	data := make([]circuit.GateID, d)
	for i := range data {
		data[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	check := make([]circuit.GateID, k)
	for j := range check {
		check[j] = b.Input(fmt.Sprintf("c%d", j))
	}
	pin := b.Input("p")
	syn := make([]circuit.GateID, k)
	synNot := make([]circuit.GateID, k)
	for j := 0; j < k; j++ {
		bits := []circuit.GateID{check[j]}
		for i := 0; i < d; i++ {
			if eccCode(i)&(1<<j) != 0 {
				bits = append(bits, data[i])
			}
		}
		s := bits[0]
		for t := 1; t < len(bits); t++ {
			s = addXor(b, style, fmt.Sprintf("syn%d_%d", j, t), s, bits[t])
		}
		syn[j] = s
		synNot[j] = b.Gate(circuit.Not, fmt.Sprintf("nsyn%d", j), s)
	}
	// Overall parity over data, check and p.
	bits := append(append([]circuit.GateID{}, data...), check...)
	bits = append(bits, pin)
	overall := bits[0]
	for t := 1; t < len(bits); t++ {
		overall = addXor(b, style, fmt.Sprintf("ov%d", t), overall, bits[t])
	}
	// Syndrome nonzero?
	nz := syn[0]
	if k > 1 {
		nz = b.Gate(circuit.Or, "snz", syn...)
	}
	// Double error: syndrome nonzero but overall parity clean.
	nov := b.Gate(circuit.Not, "nov", overall)
	ded := b.Gate(circuit.And, "ded", nz, nov)
	b.Output("double_err", ded)
	// Correct only when overall parity indicates a single error.
	for i := 0; i < d; i++ {
		lits := make([]circuit.GateID, 0, k+1)
		for j := 0; j < k; j++ {
			if eccCode(i)&(1<<j) != 0 {
				lits = append(lits, syn[j])
			} else {
				lits = append(lits, synNot[j])
			}
		}
		lits = append(lits, overall)
		corr := b.Gate(circuit.And, fmt.Sprintf("corr%d", i), lits...)
		out := addXor(b, style, fmt.Sprintf("out%d", i), data[i], corr)
		b.Output(fmt.Sprintf("q%d", i), out)
	}
	return b.MustBuild()
}
