package gen

import "rdfault/internal/circuit"

// PaperExample returns the reconstruction of the paper's running example
// circuit (Figures 1-5, originally from Lam et al. DAC 1993; the paper
// only draws it):
//
//	y = OR(a, AND(b, OR(b, c)))
//
// The netlist is not listed in the paper; this reconstruction matches
// every count the text states:
//
//   - 3 PIs, 4 physical and 8 logical paths (Example 2);
//   - exactly three possible stabilizing systems for input 111 (Figure 1);
//   - an optimal complete stabilizing assignment selecting exactly the 5
//     testable logical paths (Figure 4 / Example 3), realized by the
//     pin-order input sort (Figure 5);
//   - a worse assignment selecting 6 logical paths of which the extra one
//     ((c -> o -> g -> y), rising) is functionally sensitizable but not
//     non-robustly testable — the dashed path of Figure 2;
//   - an inverse sort degrades to selecting all 8 paths (no RD paths),
//     mirroring the Heu2-bar column of Table I.
//
// Known divergences from the drawing: the choice that separates the
// 6-path assignment from the 5-path one arises at input 011 here, where
// the paper shows it at input 000; and of the 5 testable paths, 4 are
// robustly and 1 only non-robustly testable (the paper's circuit has all
// 5 robust), so "100% coverage" for the optimal assignment holds at the
// testable (T-class) level.
func PaperExample() *circuit.Circuit {
	b := circuit.NewBuilder("paper-example")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	o := b.Gate(circuit.Or, "o", bb, cc)
	g := b.Gate(circuit.And, "g", bb, o)
	y := b.Gate(circuit.Or, "y", a, g)
	b.Output("y$po", y)
	return b.MustBuild()
}
