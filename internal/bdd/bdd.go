// Package bdd implements reduced ordered binary decision diagrams with a
// unique table and operation cache — the canonical-function substrate
// used for exact equivalence checking and functional redundancy removal
// (package synth's sweep), complementing the SAT solver.
//
// The implementation is deliberately classical: no complement edges, a
// fixed variable order (the caller chooses indices), hash-consed nodes,
// and a binary Apply cache. Functions are referenced by Ref; equal
// functions always have equal Refs.
package bdd

import (
	"fmt"
	"math/big"

	"rdfault/internal/circuit"
)

// Ref identifies a BDD node (and thus a boolean function) within one
// Manager.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel
	lo, hi Ref
}

type opKey struct {
	op   uint8
	f, g Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
)

// Manager owns the node pool for one variable order. Not safe for
// concurrent use.
type Manager struct {
	nodes   []node
	unique  map[node]Ref
	cache   map[opKey]Ref
	numVars int
	limit   int
}

// ErrNodeLimit is returned (wrapped) when a node cap set with
// SetNodeLimit is exceeded.
var ErrNodeLimit = fmt.Errorf("bdd: node limit exceeded")

// SetNodeLimit caps the node pool; operations beyond it panic internally
// and surface as ErrNodeLimit from the Build/Equivalent wrappers (0 =
// unlimited).
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

const termLevel = int32(1<<31 - 1)

// New returns a Manager over numVars variables (indices 0..numVars-1,
// index 0 at the top of the order).
func New(numVars int) *Manager {
	m := &Manager{
		unique:  make(map[node]Ref),
		cache:   make(map[opKey]Ref),
		numVars: numVars,
	}
	m.nodes = append(m.nodes,
		node{level: termLevel}, // False
		node{level: termLevel}, // True
	)
	return m
}

// NumNodes returns the number of live nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the function of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[n]; ok {
		return r
	}
	if m.limit > 0 && len(m.nodes) >= m.limit {
		panic(ErrNodeLimit)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.Xor(f, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

func terminalApply(op uint8, f, g Ref) (Ref, bool) {
	switch op {
	case opAnd:
		if f == False || g == False {
			return False, true
		}
		if f == True {
			return g, true
		}
		if g == True {
			return f, true
		}
		if f == g {
			return f, true
		}
	case opOr:
		if f == True || g == True {
			return True, true
		}
		if f == False {
			return g, true
		}
		if g == False {
			return f, true
		}
		if f == g {
			return f, true
		}
	case opXor:
		if f == g {
			return False, true
		}
		if f == False {
			return g, true
		}
		if g == False {
			return f, true
		}
	}
	return 0, false
}

func (m *Manager) apply(op uint8, f, g Ref) Ref {
	if r, ok := terminalApply(op, f, g); ok {
		return r
	}
	// Commutative ops: normalize the cache key.
	kf, kg := f, g
	if kf > kg {
		kf, kg = kg, kf
	}
	key := opKey{op: op, f: kf, g: kg}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	var f0, f1, g0, g1 Ref
	if lf == top {
		f0, f1 = m.nodes[f].lo, m.nodes[f].hi
	} else {
		f0, f1 = f, f
	}
	if lg == top {
		g0, g1 = m.nodes[g].lo, m.nodes[g].hi
	} else {
		g0, g1 = g, g
	}
	r := m.mk(top, m.apply(op, f0, g0), m.apply(op, f1, g1))
	m.cache[key] = r
	return r
}

// Eval evaluates f under the assignment in (indexed by variable).
func (m *Manager) Eval(f Ref, in []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if in[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables.
func (m *Manager) SatCount(f Ref) *big.Int {
	memo := map[Ref]*big.Int{}
	var count func(f Ref, level int32) *big.Int
	pow2 := func(k int32) *big.Int {
		return new(big.Int).Lsh(big.NewInt(1), uint(k))
	}
	var rec func(f Ref) *big.Int
	rec = func(f Ref) *big.Int {
		if f == False {
			return big.NewInt(0)
		}
		if f == True {
			return big.NewInt(1)
		}
		if v, ok := memo[f]; ok {
			return v
		}
		n := m.nodes[f]
		lo := count(n.lo, n.level+1)
		hi := count(n.hi, n.level+1)
		s := new(big.Int).Add(lo, hi)
		memo[f] = s
		return s
	}
	count = func(f Ref, level int32) *big.Int {
		sub := rec(f)
		next := int32(m.numVars)
		if f != False && f != True {
			next = m.nodes[f].level
		}
		// Account for skipped variables between level and next.
		return new(big.Int).Mul(sub, pow2(next-level))
	}
	return count(f, 0)
}

// OrderForCircuit computes a variable order by depth-first traversal from
// the outputs (the classic fanin-ordering heuristic): varOf[i] is the BDD
// level of input i. Related inputs end up adjacent, which keeps BDDs of
// structured logic (priority chains, datapaths) small where the plain
// declaration order explodes.
func OrderForCircuit(c *circuit.Circuit) []int {
	piIndex := make(map[circuit.GateID]int, len(c.Inputs()))
	for i, pi := range c.Inputs() {
		piIndex[pi] = i
	}
	varOf := make([]int, len(c.Inputs()))
	for i := range varOf {
		varOf[i] = -1
	}
	next := 0
	seen := make([]bool, c.NumGates())
	var dfs func(g circuit.GateID)
	dfs = func(g circuit.GateID) {
		if seen[g] {
			return
		}
		seen[g] = true
		if idx, ok := piIndex[g]; ok {
			if varOf[idx] == -1 {
				varOf[idx] = next
				next++
			}
			return
		}
		for _, f := range c.Fanin(g) {
			dfs(f)
		}
	}
	for _, po := range c.Outputs() {
		dfs(po)
	}
	for i := range varOf {
		if varOf[i] == -1 { // unused input
			varOf[i] = next
			next++
		}
	}
	return varOf
}

// FromCircuitOrdered is FromCircuit with an explicit input-to-level map.
func FromCircuitOrdered(m *Manager, c *circuit.Circuit, varOf []int) []Ref {
	if m.numVars < len(c.Inputs()) {
		panic("bdd: manager has fewer variables than circuit inputs")
	}
	out := make([]Ref, c.NumGates())
	for i, pi := range c.Inputs() {
		out[pi] = m.Var(varOf[i])
	}
	return fromCircuitBody(m, c, out)
}

// FromCircuit builds the BDD of every gate, indexed by GateID, with PI i
// (in Inputs() order) mapped to variable i.
func FromCircuit(m *Manager, c *circuit.Circuit) []Ref {
	if m.numVars < len(c.Inputs()) {
		panic("bdd: manager has fewer variables than circuit inputs")
	}
	out := make([]Ref, c.NumGates())
	for i, pi := range c.Inputs() {
		out[pi] = m.Var(i)
	}
	return fromCircuitBody(m, c, out)
}

func fromCircuitBody(m *Manager, c *circuit.Circuit, out []Ref) []Ref {
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
		case circuit.Output, circuit.Buf:
			out[g] = out[gate.Fanin[0]]
		case circuit.Not:
			out[g] = m.Not(out[gate.Fanin[0]])
		case circuit.And, circuit.Nand:
			r := True
			for _, f := range gate.Fanin {
				r = m.And(r, out[f])
			}
			if gate.Type == circuit.Nand {
				r = m.Not(r)
			}
			out[g] = r
		case circuit.Or, circuit.Nor:
			r := False
			for _, f := range gate.Fanin {
				r = m.Or(r, out[f])
			}
			if gate.Type == circuit.Nor {
				r = m.Not(r)
			}
			out[g] = r
		}
	}
	return out
}

// Equivalent reports whether the two circuits compute the same functions
// on all outputs (inputs matched positionally). Variables are ordered by
// the fanin heuristic computed on the first circuit, and the node pool is
// capped at 8M nodes: a blowup surfaces as ErrNodeLimit rather than an
// endless computation.
func Equivalent(a, b *circuit.Circuit) (eq bool, err error) {
	if len(a.Inputs()) != len(b.Inputs()) || len(a.Outputs()) != len(b.Outputs()) {
		return false, fmt.Errorf("bdd: interface mismatch (%d/%d inputs, %d/%d outputs)",
			len(a.Inputs()), len(b.Inputs()), len(a.Outputs()), len(b.Outputs()))
	}
	defer func() {
		if r := recover(); r != nil {
			if r == ErrNodeLimit {
				eq, err = false, ErrNodeLimit
				return
			}
			panic(r)
		}
	}()
	m := New(len(a.Inputs()))
	m.SetNodeLimit(8 << 20)
	order := OrderForCircuit(a)
	fa := FromCircuitOrdered(m, a, order)
	fb := FromCircuitOrdered(m, b, order)
	for i := range a.Outputs() {
		if fa[a.Outputs()[i]] != fb[b.Outputs()[i]] {
			return false, nil
		}
	}
	return true, nil
}
