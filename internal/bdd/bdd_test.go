package bdd

import (
	"math/big"
	"testing"
	"testing/quick"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/satsolver"
)

func TestTerminals(t *testing.T) {
	m := New(2)
	if m.And(True, True) != True || m.And(True, False) != False {
		t.Fatal("AND terminals")
	}
	if m.Or(False, False) != False || m.Or(False, True) != True {
		t.Fatal("OR terminals")
	}
	if m.Xor(True, True) != False || m.Xor(False, True) != True {
		t.Fatal("XOR terminals")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("NOT terminals")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a AND b) OR c built two different ways must share a Ref.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Or(c, m.And(b, a))
	if f1 != f2 {
		t.Fatal("equal functions got different refs")
	}
	// DeMorgan.
	lhs := m.Not(m.And(a, b))
	rhs := m.Or(m.Not(a), m.Not(b))
	if lhs != rhs {
		t.Fatal("DeMorgan violated")
	}
	// x XOR x XOR y == y.
	if m.Xor(m.Xor(a, a), b) != b {
		t.Fatal("xor cancellation")
	}
}

func TestEvalMatchesSemantics(t *testing.T) {
	m := New(4)
	vars := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	f := m.Or(m.And(vars[0], m.Not(vars[1])), m.Xor(vars[2], vars[3]))
	for v := 0; v < 16; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0}
		want := (in[0] && !in[1]) || (in[2] != in[3])
		if got := m.Eval(f, in); got != want {
			t.Fatalf("eval(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		f    Ref
		want int64
	}{
		{False, 0},
		{True, 8},
		{a, 4},
		{m.And(a, b), 2},
		{m.Or(a, b), 6},
		{m.Xor(a, b), 4},
	}
	for i, tc := range cases {
		if got := m.SatCount(tc.f); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("case %d: satcount = %v, want %d", i, got, tc.want)
		}
	}
}

func TestSatCountAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 18, Outputs: 2}, seed)
		m := New(len(c.Inputs()))
		fs := FromCircuit(m, c)
		for _, po := range c.Outputs() {
			brute := int64(0)
			n := len(c.Inputs())
			for v := 0; v < 1<<n; v++ {
				in := make([]bool, n)
				for i := range in {
					in[i] = v&(1<<i) != 0
				}
				if c.EvalBool(in)[po] {
					brute++
				}
			}
			if got := m.SatCount(fs[po]); got.Cmp(big.NewInt(brute)) != 0 {
				t.Fatalf("seed %d: satcount %v, brute %d", seed, got, brute)
			}
		}
	}
}

func TestFromCircuitMatchesSimulation(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 3}, seed)
		m := New(len(c.Inputs()))
		fs := FromCircuit(m, c)
		n := len(c.Inputs())
		for v := 0; v < 1<<n; v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			val := c.EvalBool(in)
			for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
				if m.Eval(fs[g], in) != val[g] {
					t.Fatalf("seed %d gate %q: BDD disagrees with simulation", seed, c.Gate(g).Name)
				}
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	// AND vs NOT(NAND).
	b1 := circuit.NewBuilder("c1")
	a1 := b1.Input("a")
	x1 := b1.Input("b")
	b1.Output("y", b1.Gate(circuit.And, "g", a1, x1))
	c1 := b1.MustBuild()

	b2 := circuit.NewBuilder("c2")
	a2 := b2.Input("a")
	x2 := b2.Input("b")
	b2.Output("y", b2.Gate(circuit.Not, "g", b2.Gate(circuit.Nand, "n", a2, x2)))
	c2 := b2.MustBuild()

	eq, err := Equivalent(c1, c2)
	if err != nil || !eq {
		t.Fatalf("equivalent circuits reported different (%v)", err)
	}

	b3 := circuit.NewBuilder("c3")
	a3 := b3.Input("a")
	x3 := b3.Input("b")
	b3.Output("y", b3.Gate(circuit.Or, "g", a3, x3))
	c3 := b3.MustBuild()
	eq, err = Equivalent(c1, c3)
	if err != nil || eq {
		t.Fatalf("different circuits reported equivalent (%v)", err)
	}

	if _, err := Equivalent(c1, gen.PaperExample()); err == nil {
		t.Fatal("interface mismatch not reported")
	}
}

func TestVarPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range variable")
		}
	}()
	m.Var(5)
}

func TestQuickXorAssociativity(t *testing.T) {
	m := New(6)
	f := func(i, j, k uint8) bool {
		a := m.Var(int(i % 6))
		b := m.Var(int(j % 6))
		c := m.Var(int(k % 6))
		return m.Xor(m.Xor(a, b), c) == m.Xor(a, m.Xor(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromCircuit(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 16, Gates: 120, Outputs: 4}, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(len(c.Inputs()))
		FromCircuit(m, c)
	}
}

// TestCrossEngineAgreement checks the two independent exactness engines
// against each other: for random circuit pairs (one synthesized from the
// other by sweep or rebuilt via Verilog-style copying), BDD equivalence
// and a SAT miter must always agree.
func TestCrossEngineAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := gen.RandomCircuit("a", gen.RandomOptions{Inputs: 6, Gates: 22, Outputs: 3}, seed)
		same := copyWithInvertedPO(t, a, false)
		diff := copyWithInvertedPO(t, a, true)
		for i, pair := range [][2]*circuit.Circuit{{a, same}, {a, diff}} {
			byBDD, err := Equivalent(pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			bySAT := satEquivalent(t, pair[0], pair[1])
			if byBDD != bySAT {
				t.Fatalf("seed %d pair %d: BDD says %v, SAT says %v", seed, i, byBDD, bySAT)
			}
			if wantEq := i == 0; byBDD != wantEq {
				t.Fatalf("seed %d pair %d: equivalence = %v, want %v", seed, i, byBDD, wantEq)
			}
		}
	}
}

// copyWithInvertedPO rebuilds c; with invert set, the first PO's driver
// gets a NOT in front, making the copy inequivalent.
func copyWithInvertedPO(t *testing.T, c *circuit.Circuit, invert bool) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder(c.Name() + "-copy")
	newID := make([]circuit.GateID, c.NumGates())
	for _, pi := range c.Inputs() {
		newID[pi] = b.Input(c.Gate(pi).Name)
	}
	first := true
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Output:
			src := newID[gate.Fanin[0]]
			if invert && first {
				src = b.Gate(circuit.Not, "flip", src)
				first = false
			}
			newID[g] = b.Output(gate.Name, src)
		default:
			fanin := make([]circuit.GateID, len(gate.Fanin))
			for pin, f := range gate.Fanin {
				fanin[pin] = newID[f]
			}
			newID[g] = b.Gate(gate.Type, gate.Name, fanin...)
		}
	}
	out, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func satEquivalent(t *testing.T, a, b *circuit.Circuit) bool {
	t.Helper()
	s := satsolver.New()
	va := satsolver.AddCircuit(s, a)
	vb := satsolver.AddCircuit(s, b)
	for i := range a.Inputs() {
		p, q := va.Var[a.Inputs()[i]], vb.Var[b.Inputs()[i]]
		s.AddClause(satsolver.MkLit(p, true), satsolver.MkLit(q, false))
		s.AddClause(satsolver.MkLit(p, false), satsolver.MkLit(q, true))
	}
	var diffs []satsolver.Lit
	for i := range a.Outputs() {
		oa, ob := va.Var[a.Outputs()[i]], vb.Var[b.Outputs()[i]]
		d := s.NewVar()
		s.AddClause(satsolver.MkLit(d, true), satsolver.MkLit(oa, false), satsolver.MkLit(ob, false))
		s.AddClause(satsolver.MkLit(d, true), satsolver.MkLit(oa, true), satsolver.MkLit(ob, true))
		diffs = append(diffs, satsolver.MkLit(d, false))
	}
	s.AddClause(diffs...)
	return !s.Solve()
}
