package core

import (
	"fmt"
	"math/big"
	"strings"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
)

// RDSegment is one prime robust dependent segment: a logical path prefix
// that already violates the sensitization conditions, so that EVERY
// extension of it to a PO is robust dependent (footnote 3 of the paper).
// A list of RD segments plus the explicit selected set is a compact,
// checkable certificate of the whole RD-set — often exponentially smaller
// than the RD path list itself.
type RDSegment struct {
	// Gates/Pins form the segment from its PI, like paths.Path but ending
	// at an internal gate.
	Gates []circuit.GateID
	Pins  []int
	// FinalOne is the transition polarity at the segment's PI.
	FinalOne bool
	// Covered is the number of logical paths the segment certifies RD:
	// the number of physical PI-to-PO extensions of the prefix.
	Covered *big.Int
}

// String renders the segment with its polarity and coverage.
func (s RDSegment) String(c *circuit.Circuit) string {
	var b strings.Builder
	for i, g := range s.Gates {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(c.Gate(g).Name)
	}
	dir := "fall"
	if s.FinalOne {
		dir = "rise"
	}
	return fmt.Sprintf("%s (%s, covers %v paths)", b.String(), dir, s.Covered)
}

// Certificate is the outcome of CollectRDSegments.
type Certificate struct {
	Result *Result
	// Segments are the prime RD segments, in DFS discovery order.
	Segments []RDSegment
	// CoveredTotal sums Covered over all segments; it equals
	// Result.RD exactly (every RD path is covered by exactly one prime
	// segment, the shortest failing prefix).
	CoveredTotal *big.Int
}

// CollectRDSegments runs the SigmaPi enumeration and returns the compact
// RD certificate: the prime segments whose extensions form the RD-set.
// Serial only (opt.Workers is ignored); opt.OnPath still fires for kept
// paths.
func CollectRDSegments(c *circuit.Circuit, sort circuit.InputSort, opt Options) (*Certificate, error) {
	if opt.Exact {
		return nil, fmt.Errorf("core: RD certificates require the approximate enumeration (Exact must be off)")
	}
	if opt.Limit > 0 {
		return nil, fmt.Errorf("core: RD certificates require a complete enumeration (no Limit)")
	}
	ct := analysis.For(c).Counts()
	cert := &Certificate{CoveredTotal: new(big.Int)}
	opt.Sort = &sort
	opt.Workers = 1
	opt.onPrune = func(gates []circuit.GateID, pins []int, finalOne bool) {
		last := gates[len(gates)-1]
		covered := new(big.Int).Set(ct.Down(last))
		cert.Segments = append(cert.Segments, RDSegment{
			Gates:    append([]circuit.GateID(nil), gates...),
			Pins:     append([]int(nil), pins...),
			FinalOne: finalOne,
			Covered:  covered,
		})
		cert.CoveredTotal.Add(cert.CoveredTotal, covered)
	}
	res, err := Enumerate(c, SigmaPi, opt)
	if err != nil {
		return nil, err
	}
	cert.Result = res
	return cert, nil
}
