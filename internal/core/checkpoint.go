package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"rdfault/internal/circuit"
	"rdfault/internal/faultinject"
	"rdfault/internal/logic"
)

// CheckpointVersion is the serialization version understood by this
// build. Decode rejects any other version rather than guessing.
const CheckpointVersion = 1

// Checkpoint captures everything a deadline- or cancel-interrupted
// Enumerate needs to finish later: the untaken DFS frontier (one entry
// per un-walked branch, each with its path prefix and implication-engine
// snapshot) plus the counters accumulated before the interruption.
// Resuming via Options.Checkpoint walks exactly the complement of what
// the interrupted run counted, so the combined counters are bit-identical
// to an uninterrupted run for any worker count.
//
// A checkpoint is bound to one (circuit, criterion, input sort) triple,
// recorded as fingerprints; Enumerate refuses to resume against anything
// else.
type Checkpoint struct {
	Version   int                `json:"version"`
	Circuit   string             `json:"circuit"`
	CircuitFP uint64             `json:"circuit_fp"`
	Criterion string             `json:"criterion"`
	SortFP    uint64             `json:"sort_fp"` // 0 when the criterion uses no sort
	Counters  CheckpointCounters `json:"counters"`
	Tasks     []CheckpointTask   `json:"tasks"`
}

// CheckpointCounters are the partial tallies of the interrupted run; the
// resumed run starts from them instead of zero.
type CheckpointCounters struct {
	Selected   int64   `json:"selected"`
	Segments   int64   `json:"segments"`
	Pruned     int64   `json:"pruned"`
	SATRejects int64   `json:"sat_rejects"`
	LeadCounts []int64 `json:"lead_counts,omitempty"`
}

// CheckpointTask is one serialized unit of un-walked work: either a whole
// (PI, transition) root walk or a stolen mid-DFS branch (prefix buffers +
// engine snapshot + the edge to take).
type CheckpointTask struct {
	IsRoot bool `json:"is_root,omitempty"`
	PI     int  `json:"pi,omitempty"`
	X      bool `json:"x,omitempty"`

	SnapGates []int   `json:"snap_gates,omitempty"`
	SnapVals  []uint8 `json:"snap_vals,omitempty"`
	Gates     []int   `json:"gates,omitempty"`
	Pins      []int   `json:"pins,omitempty"`
	Vals      []bool  `json:"vals,omitempty"`
	EdgeTo    int     `json:"edge_to,omitempty"`
	EdgePin   int     `json:"edge_pin,omitempty"`
}

// Pending returns the number of un-walked frontier entries.
func (cp *Checkpoint) Pending() int { return len(cp.Tasks) }

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// ErrCorruptCheckpoint is the sentinel for a checkpoint file whose bytes
// cannot be trusted — truncation, garbage, a flipped byte, trailing
// junk, or structurally impossible contents. Match with errors.Is; the
// concrete *CorruptCheckpointError carries the byte offset.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint")

// CorruptCheckpointError reports where and why a checkpoint failed to
// decode. A corrupt checkpoint is never returned as a zero-value
// resumable state: the caller gets this error or a valid frontier,
// nothing in between.
type CorruptCheckpointError struct {
	// Path is the file read, when known ("" for stream decodes).
	Path string
	// Offset is the byte offset at which decoding failed; -1 when the
	// position is unknowable (e.g. an empty file).
	Offset int64
	// Reason says what was wrong.
	Reason string
}

// Error renders the corruption report.
func (e *CorruptCheckpointError) Error() string {
	where := "checkpoint"
	if e.Path != "" {
		where = fmt.Sprintf("checkpoint %s", e.Path)
	}
	if e.Offset >= 0 {
		return fmt.Sprintf("core: corrupt %s at byte %d: %s", where, e.Offset, e.Reason)
	}
	return fmt.Sprintf("core: corrupt %s: %s", where, e.Reason)
}

// Unwrap matches errors.Is(err, ErrCorruptCheckpoint).
func (e *CorruptCheckpointError) Unwrap() error { return ErrCorruptCheckpoint }

// corruptErr builds the typed error from a decoder position.
func corruptErr(off int64, format string, args ...any) error {
	return &CorruptCheckpointError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// DecodeCheckpoint reads a checkpoint written by Encode, validating the
// version and basic structural sanity (index ranges are checked again at
// resume time against the actual circuit). Truncated, mutated or
// trailing-garbage input returns a *CorruptCheckpointError with the byte
// offset of the damage — never a decode panic, and never a silently
// empty checkpoint that would "resume" as a no-op.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	cp := &Checkpoint{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(cp); err != nil {
		off := dec.InputOffset()
		switch e := err.(type) {
		case *json.SyntaxError:
			return nil, corruptErr(e.Offset, "invalid JSON: %v", err)
		case *json.UnmarshalTypeError:
			return nil, corruptErr(e.Offset, "field %s has impossible type: %v", e.Field, err)
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, corruptErr(off, "truncated checkpoint")
		}
		return nil, corruptErr(off, "decoding checkpoint: %v", err)
	}
	// Version 0 means the field is absent entirely — a zeroed or foreign
	// file, not honest skew from another build.
	if cp.Version == 0 {
		return nil, corruptErr(-1, "checkpoint has no version field")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, this build reads %d",
			cp.Version, CheckpointVersion)
	}
	// Trailing garbage means the file is not what Encode wrote; a partial
	// overwrite or concatenation must not resume as if intact.
	if _, err := dec.Token(); err != io.EOF {
		return nil, corruptErr(dec.InputOffset(), "trailing garbage after checkpoint object")
	}
	// Structural sanity that does not need the circuit: a real checkpoint
	// names its circuit and counts nothing negative. Catching these here
	// stops a zeroed or bit-rotted file from looking like a fresh state.
	if cp.Circuit == "" {
		return nil, corruptErr(-1, "checkpoint names no circuit")
	}
	ctr := cp.Counters
	if ctr.Selected < 0 || ctr.Segments < 0 || ctr.Pruned < 0 || ctr.SATRejects < 0 {
		return nil, corruptErr(-1, "negative counters (selected=%d segments=%d pruned=%d sat=%d)",
			ctr.Selected, ctr.Segments, ctr.Pruned, ctr.SATRejects)
	}
	for _, lc := range ctr.LeadCounts {
		if lc < 0 {
			return nil, corruptErr(-1, "negative lead counter %d", lc)
		}
	}
	return cp, nil
}

// WriteCheckpointFile stores the checkpoint at path (0644), atomically
// via a temp file in the same directory.
//
// Fault-injection points: PointCheckpointWrite (slow/failed I/O) and
// PointCheckpointBytes (byte corruption on the way to disk) let chaos
// tests prove a rotten spill is detected at read time instead of
// resuming wrong.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	if err := faultinject.Fire(faultinject.PointCheckpointWrite); err != nil {
		return fmt.Errorf("core: writing checkpoint %s: %w", path, err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return err
	}
	data := faultinject.Corrupt(faultinject.PointCheckpointBytes, buf.Bytes())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile loads a checkpoint stored by WriteCheckpointFile.
// Corrupt files return a *CorruptCheckpointError carrying the path and
// byte offset (errors.Is(err, ErrCorruptCheckpoint)).
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	if err := faultinject.Fire(faultinject.PointCheckpointRead); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := DecodeCheckpoint(f)
	var ce *CorruptCheckpointError
	if errors.As(err, &ce) {
		ce.Path = path
	}
	return cp, err
}

// circuitFingerprint hashes the structure a checkpoint depends on: gate
// count, types, names and fanin topology.
func circuitFingerprint(c *circuit.Circuit) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(c.NumGates())
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		put(int(c.Type(g)))
		io.WriteString(h, c.Gate(g).Name)
		for _, f := range c.Fanin(g) {
			put(int(f))
		}
		put(-1)
	}
	return h.Sum64()
}

// sortFingerprint hashes an input sort's position tables; 0 for nil.
func sortFingerprint(s *circuit.InputSort) uint64 {
	if s == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, pins := range s.Pos {
		for _, p := range pins {
			put(p)
		}
		put(-1)
	}
	return h.Sum64()
}

// buildCheckpoint serializes the frontier tasks and counter baseline of
// an interrupted run.
func buildCheckpoint(c *circuit.Circuit, cr Criterion, sort *circuit.InputSort,
	counters CheckpointCounters, tasks []task) *Checkpoint {
	cp := &Checkpoint{
		Version:   CheckpointVersion,
		Circuit:   c.Name(),
		CircuitFP: circuitFingerprint(c),
		Criterion: cr.String(),
		SortFP:    sortFingerprint(sort),
		Counters:  counters,
		Tasks:     make([]CheckpointTask, 0, len(tasks)),
	}
	for _, t := range tasks {
		ct := CheckpointTask{}
		if t.isRoot {
			ct.IsRoot = true
			ct.PI = int(t.pi)
			ct.X = t.x
		} else {
			gates, vals := t.snap.Export()
			ct.SnapGates = make([]int, len(gates))
			for i, g := range gates {
				ct.SnapGates[i] = int(g)
			}
			ct.SnapVals = make([]uint8, len(vals))
			for i, v := range vals {
				ct.SnapVals[i] = uint8(v)
			}
			ct.Gates = make([]int, len(t.gates))
			for i, g := range t.gates {
				ct.Gates[i] = int(g)
			}
			ct.Pins = append([]int(nil), t.pins...)
			ct.Vals = append([]bool(nil), t.vals...)
			ct.EdgeTo = int(t.edge.To)
			ct.EdgePin = t.edge.Pin
		}
		cp.Tasks = append(cp.Tasks, ct)
	}
	return cp
}

// validateFor checks that the checkpoint belongs to this exact
// (circuit, criterion, sort) run and that every task index is in range.
func (cp *Checkpoint) validateFor(c *circuit.Circuit, cr Criterion, sort *circuit.InputSort) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	if cp.Circuit != c.Name() || cp.CircuitFP != circuitFingerprint(c) {
		return fmt.Errorf("core: checkpoint is for circuit %q (fingerprint mismatch with %q)",
			cp.Circuit, c.Name())
	}
	if cp.Criterion != cr.String() {
		return fmt.Errorf("core: checkpoint criterion %s, run uses %s", cp.Criterion, cr)
	}
	if fp := sortFingerprint(sort); cp.SortFP != fp {
		return fmt.Errorf("core: checkpoint input sort differs from the run's sort")
	}
	if lc := cp.Counters.LeadCounts; lc != nil && len(lc) != c.NumLeads() {
		return fmt.Errorf("core: checkpoint has %d lead counters, circuit has %d leads", len(lc), c.NumLeads())
	}
	n := c.NumGates()
	for i, t := range cp.Tasks {
		if t.IsRoot {
			if t.PI < 0 || t.PI >= n || c.Type(circuit.GateID(t.PI)) != circuit.Input {
				return fmt.Errorf("core: checkpoint task %d: root PI %d invalid", i, t.PI)
			}
			continue
		}
		if len(t.SnapGates) != len(t.SnapVals) {
			return fmt.Errorf("core: checkpoint task %d: snapshot arity mismatch", i)
		}
		if len(t.Gates) == 0 || len(t.Gates) != len(t.Vals) || len(t.Pins) != len(t.Gates)-1 {
			return fmt.Errorf("core: checkpoint task %d: prefix arity mismatch", i)
		}
		for _, g := range t.SnapGates {
			if g < 0 || g >= n {
				return fmt.Errorf("core: checkpoint task %d: snapshot gate %d out of range", i, g)
			}
		}
		for _, g := range t.Gates {
			if g < 0 || g >= n {
				return fmt.Errorf("core: checkpoint task %d: prefix gate %d out of range", i, g)
			}
		}
		if t.EdgeTo < 0 || t.EdgeTo >= n {
			return fmt.Errorf("core: checkpoint task %d: edge target %d out of range", i, t.EdgeTo)
		}
		for _, v := range t.SnapVals {
			if logic.Value(v) != logic.Zero && logic.Value(v) != logic.One {
				return fmt.Errorf("core: checkpoint task %d: bad snapshot value %d", i, v)
			}
		}
	}
	return nil
}

// toTasks deserializes the frontier into scheduler tasks.
func (cp *Checkpoint) toTasks() []task {
	ts := make([]task, 0, len(cp.Tasks))
	for _, ct := range cp.Tasks {
		if ct.IsRoot {
			ts = append(ts, task{isRoot: true, pi: circuit.GateID(ct.PI), x: ct.X})
			continue
		}
		gates := make([]circuit.GateID, len(ct.SnapGates))
		vals := make([]logic.Value, len(ct.SnapVals))
		for i, g := range ct.SnapGates {
			gates[i] = circuit.GateID(g)
			vals[i] = logic.Value(ct.SnapVals[i])
		}
		prefix := make([]circuit.GateID, len(ct.Gates))
		for i, g := range ct.Gates {
			prefix[i] = circuit.GateID(g)
		}
		ts = append(ts, task{
			snap:  logic.MakeSnapshot(gates, vals),
			gates: prefix,
			pins:  append([]int(nil), ct.Pins...),
			vals:  append([]bool(nil), ct.Vals...),
			edge:  circuit.Edge{To: circuit.GateID(ct.EdgeTo), Pin: ct.EdgePin},
		})
	}
	return ts
}
