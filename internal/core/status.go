package core

import (
	"errors"
	"fmt"

	"rdfault/internal/circuit"
)

// Status classifies how an enumeration run ended, replacing the old
// practice of inferring state from RD == nil. Only StatusComplete runs
// prove an RD count; every other status hands back the partial counters
// accumulated so far (and, for interrupted runs, a resumable Checkpoint).
type Status uint8

const (
	// StatusComplete: every logical path was visited; RD is exact.
	StatusComplete Status = iota
	// StatusTruncated: Options.Limit stopped the walk; Selected is a
	// lower bound and RD is unknown.
	StatusTruncated
	// StatusDeadline: the run's deadline (Options.Deadline or a context
	// deadline) expired; Result.Checkpoint resumes the walk.
	StatusDeadline
	// StatusCanceled: Options.Context was canceled for a reason other
	// than its deadline; Result.Checkpoint resumes the walk.
	StatusCanceled
	// StatusDegraded: one or more workers panicked. The surviving workers
	// finished their share, but the panicked subtrees are uncounted, so
	// the counters are partial and no checkpoint can make them exact.
	// Result.WorkerErrors carries the per-worker crash reports.
	StatusDegraded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusTruncated:
		return "truncated"
	case StatusDeadline:
		return "deadline"
	case StatusCanceled:
		return "canceled"
	case StatusDegraded:
		return "degraded"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Interrupted reports whether the run stopped on deadline or cancellation
// — the two statuses that produce a resumable checkpoint.
func (s Status) Interrupted() bool {
	return s == StatusDeadline || s == StatusCanceled
}

// Sentinel errors of the enumeration stack. Enumerate reports them via
// Result.Err (a run that degrades gracefully is not a hard failure);
// Identify returns them when interruption preempts the pipeline. Match
// with errors.Is.
var (
	// ErrDeadline: the run's time budget expired.
	ErrDeadline = errors.New("core: deadline exceeded")
	// ErrCanceled: the run's context was canceled.
	ErrCanceled = errors.New("core: enumeration canceled")
	// ErrWorkerPanic: at least one enumeration worker panicked.
	ErrWorkerPanic = errors.New("core: worker panic")
)

// WorkerError is the crash report of one panicked enumeration worker: the
// recovered panic value, the goroutine stack, and the on-path gate prefix
// the walker held when it crashed (the offending path). It unwraps to
// ErrWorkerPanic.
type WorkerError struct {
	// Worker is the crashed worker's index.
	Worker int
	// PathGates is the walker's on-path prefix at the time of the panic
	// (may be empty if the crash happened before the first extension).
	PathGates []circuit.GateID
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted goroutine stack at the recovery point.
	Stack string
}

// Error renders the crash report without the stack.
func (e *WorkerError) Error() string {
	return fmt.Sprintf("core: worker %d panicked at path prefix %v: %v",
		e.Worker, e.PathGates, e.Value)
}

// Unwrap matches errors.Is(err, ErrWorkerPanic).
func (e *WorkerError) Unwrap() error { return ErrWorkerPanic }
