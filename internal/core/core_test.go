package core

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/stabilize"
)

// collect runs Enumerate and returns the surviving logical path key set.
func collect(t testing.TB, c *circuit.Circuit, cr Criterion, sort *circuit.InputSort) map[string]bool {
	t.Helper()
	got := make(map[string]bool)
	_, err := Enumerate(c, cr, Options{
		Sort:   sort,
		OnPath: func(lp paths.Logical) { got[lp.Key()] = true },
	})
	if err != nil {
		t.Fatalf("Enumerate(%v): %v", cr, err)
	}
	return got
}

// exactSet computes, by exhaustive input enumeration, the set of logical
// paths for which an input vector satisfying the criterion's conditions
// (as literally stated in Definitions 4/5 and Lemma 2, over actual stable
// values) exists.
func exactSet(t testing.TB, c *circuit.Circuit, cr Criterion, sort *circuit.InputSort) map[string]bool {
	t.Helper()
	n := len(c.Inputs())
	if n > 12 {
		t.Fatalf("exactSet on %d inputs", n)
	}
	vals := make([][]bool, 1<<n)
	in := make([]bool, n)
	for v := range vals {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		vals[v] = c.EvalBool(in)
	}
	idx := map[circuit.GateID]int{}
	for i, pi := range c.Inputs() {
		idx[pi] = i
	}
	out := make(map[string]bool)
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		for v := range vals {
			val := vals[v]
			// (pi1): v sets PI(P) to x.
			if val[lp.Path.PI()] != lp.FinalOne {
				continue
			}
			ok := true
			for i := 1; i < len(lp.Path.Gates) && ok; i++ {
				g := lp.Path.Gates[i]
				pin := lp.Path.Pins[i-1]
				ctrl, hasCtrl := c.Type(g).Controlling()
				if !hasCtrl {
					continue
				}
				onPath := val[c.Fanin(g)[pin]]
				var constrained []int
				if onPath != ctrl {
					for p := range c.Fanin(g) {
						if p != pin {
							constrained = append(constrained, p)
						}
					}
				} else {
					switch cr {
					case FS:
					case NonRobust:
						for p := range c.Fanin(g) {
							if p != pin {
								constrained = append(constrained, p)
							}
						}
					case SigmaPi:
						for p := range c.Fanin(g) {
							if p != pin && sort.Pos[g][p] < sort.Pos[g][pin] {
								constrained = append(constrained, p)
							}
						}
					}
				}
				for _, p := range constrained {
					if val[c.Fanin(g)[p]] == ctrl {
						ok = false
						break
					}
				}
			}
			if ok {
				out[lp.Key()] = true
				return true
			}
		}
		return true
	})
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestExamplePaperNumbers(t *testing.T) {
	c := gen.PaperExample()
	pin := circuit.PinOrderSort(c)

	fs, err := Enumerate(c, FS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Total.Int64() != 8 {
		t.Fatalf("total logical paths = %v, want 8", fs.Total)
	}
	if fs.Selected != 8 || fs.RD.Sign() != 0 {
		t.Errorf("FS^sup = %d (RD %v), want 8 (0): every path of the example is functionally sensitizable", fs.Selected, fs.RD)
	}

	tres, err := Enumerate(c, NonRobust, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Selected != 5 {
		t.Errorf("T^sup = %d, want 5 (the five testable paths of Example 3)", tres.Selected)
	}

	sp, err := Enumerate(c, SigmaPi, Options{Sort: &pin})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Selected != 5 || sp.RD.Int64() != 3 {
		t.Errorf("LP^sup(sigma^pi) = %d RD=%v, want 5 and 3 (pin order realizes Figure 5's optimum)", sp.Selected, sp.RD)
	}

	inv := pin.Inverse()
	spInv, err := Enumerate(c, SigmaPi, Options{Sort: &inv})
	if err != nil {
		t.Fatal(err)
	}
	if spInv.Selected != 8 || spInv.RD.Sign() != 0 {
		t.Errorf("inverse sort LP^sup = %d RD=%v, want 8 and 0", spInv.Selected, spInv.RD)
	}
}

func TestExampleHeuristicsFindOptimum(t *testing.T) {
	c := gen.PaperExample()
	for _, h := range []Heuristic{Heuristic1, Heuristic2} {
		rep, err := Identify(c, h, Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if rep.RD.Int64() != 3 {
			t.Errorf("%v: RD = %v, want 3 (both heuristics find the optimal sort on the example)", h, rep.RD)
		}
	}
	rep, err := Identify(c, Heuristic2Inverse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RD.Int64() != 0 {
		t.Errorf("inverse heuristic RD = %v, want 0", rep.RD)
	}
	repFUS, err := Identify(c, HeuristicFUS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repFUS.RD.Int64() != 0 {
		t.Errorf("FUS RD = %v, want 0", repFUS.RD)
	}
	if repFUS.RDPercent() != 0 {
		t.Errorf("FUS RD%% = %v, want 0", repFUS.RDPercent())
	}
	if got := rep.String(); got == "" {
		t.Error("empty report string")
	}
}

// TestLemma2ExactEquivalence verifies Lemma 2 computationally: the set of
// logical paths satisfying conditions (pi1)-(pi3) for some input vector
// equals the exact LP(sigma^pi) built from Algorithm 1 over all vectors.
func TestLemma2ExactEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		sorts := []circuit.InputSort{
			circuit.PinOrderSort(c),
			circuit.PinOrderSort(c).Inverse(),
			Heuristic1Sort(c),
		}
		for si, s := range sorts {
			byLemma := exactSet(t, c, SigmaPi, &s)
			a, err := stabilize.ComputeAssignment(c, stabilize.ChooseBySort(s))
			if err != nil {
				t.Fatal(err)
			}
			byAlg1 := make(map[string]bool)
			for k := range a.LogicalPaths() {
				byAlg1[k] = true
			}
			if len(byLemma) != len(byAlg1) || !subset(byLemma, byAlg1) {
				t.Fatalf("seed %d sort %d: Lemma 2 characterization (%d paths) != Algorithm 1 enumeration (%d paths)",
					seed, si, len(byLemma), len(byAlg1))
			}
		}
	}
}

// TestSupersetProperty: the approximate enumeration only over-selects —
// LP^sup contains the exact LP(sigma^pi), and likewise for FS and T. This
// is what makes the identified RD-set sound.
func TestSupersetProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 2}, seed)
		s := Heuristic1Sort(c)

		for _, tc := range []struct {
			cr   Criterion
			sort *circuit.InputSort
		}{{FS, nil}, {NonRobust, nil}, {SigmaPi, &s}} {
			exact := exactSet(t, c, tc.cr, tc.sort)
			sup := collect(t, c, tc.cr, tc.sort)
			if !subset(exact, sup) {
				t.Fatalf("seed %d %v: approximate set is not a superset of the exact set", seed, tc.cr)
			}
		}
	}
}

// TestLemma1Hierarchy checks T^sup ⊆ LP^sup(sigma^pi) ⊆ FS^sup for any
// sort (the superset-level image of Lemma 1), plus exact-T ⊆ LP^sup.
func TestLemma1Hierarchy(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 2}, seed)
		for _, s := range []circuit.InputSort{
			circuit.PinOrderSort(c),
			circuit.PinOrderSort(c).Inverse(),
		} {
			tSup := collect(t, c, NonRobust, nil)
			spSup := collect(t, c, SigmaPi, &s)
			fsSup := collect(t, c, FS, nil)
			if !subset(tSup, spSup) {
				t.Fatalf("seed %d: T^sup not within LP^sup", seed)
			}
			if !subset(spSup, fsSup) {
				t.Fatalf("seed %d: LP^sup not within FS^sup", seed)
			}
			exactT := exactSet(t, c, NonRobust, nil)
			if !subset(exactT, spSup) {
				t.Fatalf("seed %d: exact T not within LP^sup (Lemma 1 violated)", seed)
			}
		}
	}
}

func TestRDMonotoneVsFUS(t *testing.T) {
	// For every sort, RD(sigma^pi) >= RD(FUS), because LP^sup ⊆ FS^sup.
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 20, Outputs: 2}, seed)
		fus, err := Identify(c, HeuristicFUS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{Heuristic1, Heuristic2, Heuristic2Inverse, HeuristicPinOrder} {
			rep, err := Identify(c, h, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RD.Cmp(fus.RD) < 0 {
				t.Errorf("seed %d: RD(%v)=%v < RD(FUS)=%v", seed, h, rep.RD, fus.RD)
			}
		}
	}
}

func TestLeadCounts(t *testing.T) {
	c := gen.PaperExample()
	res, err := Enumerate(c, FS, Options{CollectLeadCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute tallies from the surviving paths directly.
	want := make([]int64, c.NumLeads())
	_, err = Enumerate(c, FS, Options{OnPath: func(lp paths.Logical) {
		for i := 1; i < len(lp.Path.Gates); i++ {
			g := lp.Path.Gates[i]
			ctrl, ok := c.Type(g).Controlling()
			if ok && lp.FinalValueAt(c, i-1) == ctrl {
				want[c.LeadIndex(g, lp.Path.Pins[i-1])]++
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.LeadCounts[i] != want[i] {
			t.Errorf("lead %d: count %d, want %d", i, res.LeadCounts[i], want[i])
		}
	}
}

func TestHeuristic2MeasureNonNegative(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		_, fsRes, tRes, err := Heuristic2Sort(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fsRes.LeadCounts {
			if fsRes.LeadCounts[i] < tRes.LeadCounts[i] {
				t.Fatalf("seed %d lead %d: FS_c=%d < T_c=%d (T^sup must be within FS^sup)",
					seed, i, fsRes.LeadCounts[i], tRes.LeadCounts[i])
			}
		}
	}
}

func TestSortsValid(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 15, Outputs: 2}, seed)
		s1 := Heuristic1Sort(c)
		if err := s1.Validate(c); err != nil {
			t.Fatalf("Heuristic1Sort invalid: %v", err)
		}
		s2, _, _, err := Heuristic2Sort(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Validate(c); err != nil {
			t.Fatalf("Heuristic2Sort invalid: %v", err)
		}
		if err := s2.Inverse().Validate(c); err != nil {
			t.Fatalf("inverse sort invalid: %v", err)
		}
	}
}

func TestNoPruneAblation(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 2}, 3)
	s := Heuristic1Sort(c)
	pruned, err := Enumerate(c, SigmaPi, Options{Sort: &s})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Enumerate(c, SigmaPi, Options{Sort: &s, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Selected != flat.Selected {
		t.Errorf("pruning changed the selected set: %d vs %d", pruned.Selected, flat.Selected)
	}
	if flat.Segments < pruned.Segments {
		t.Errorf("NoPrune visited fewer segments (%d) than pruned (%d)", flat.Segments, pruned.Segments)
	}
}

func TestLimit(t *testing.T) {
	c := gen.PaperExample()
	res, err := Enumerate(c, FS, Options{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("result marked complete despite limit")
	}
	if res.Selected != 3 {
		t.Errorf("selected %d, want 3", res.Selected)
	}
	if res.RD != nil {
		t.Errorf("truncated run reported RD=%v, want nil", res.RD)
	}
}

func TestEnumerateErrors(t *testing.T) {
	c := gen.PaperExample()
	if _, err := Enumerate(c, SigmaPi, Options{}); err == nil {
		t.Error("SigmaPi without sort should fail")
	}
	bad := circuit.InputSort{Pos: [][]int{{0}}}
	if _, err := Enumerate(c, SigmaPi, Options{Sort: &bad}); err == nil {
		t.Error("invalid sort should fail")
	}
	if _, err := Identify(c, Heuristic(99), Options{}); err == nil {
		t.Error("unknown heuristic should fail")
	}
}

func TestCriterionString(t *testing.T) {
	if FS.String() != "FS" || SigmaPi.String() != "sigma^pi" || NonRobust.String() != "T" {
		t.Error("criterion names")
	}
	if Criterion(9).String() == "" {
		t.Error("unknown criterion name empty")
	}
	for _, h := range []Heuristic{HeuristicFUS, Heuristic1, Heuristic2, Heuristic2Inverse, HeuristicPinOrder, Heuristic(42)} {
		if h.String() == "" {
			t.Error("empty heuristic name")
		}
	}
}

func TestMultiOutputConsistentWithCones(t *testing.T) {
	// RD identification on a multi-output circuit must match running each
	// output cone separately (Section II's construction): the per-cone
	// totals and survivors sum up when paths are disjoint by PO.
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 3}, 11)
	whole := collect(t, c, FS, nil)
	cones, err := c.Cones()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, cone := range cones {
		sum += len(collect(t, cone, FS, nil))
	}
	if sum != len(whole) {
		t.Errorf("cone-wise FS^sup total %d != whole-circuit %d", sum, len(whole))
	}
}

// TestExactMatchesBruteForce: with Options.Exact the enumeration returns
// the true sets (per the exhaustive-oracle definition), not supersets.
func TestExactMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 14, Outputs: 2}, seed)
		s := Heuristic1Sort(c)
		for _, tc := range []struct {
			cr   Criterion
			sort *circuit.InputSort
		}{{FS, nil}, {NonRobust, nil}, {SigmaPi, &s}} {
			want := exactSet(t, c, tc.cr, tc.sort)
			got := make(map[string]bool)
			res, err := Enumerate(c, tc.cr, Options{
				Sort:   tc.sort,
				Exact:  true,
				OnPath: func(lp paths.Logical) { got[lp.Key()] = true },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || !subset(want, got) {
				t.Fatalf("seed %d %v: exact mode selected %d, oracle %d", seed, tc.cr, len(got), len(want))
			}
			if res.Selected != int64(len(want)) {
				t.Fatalf("seed %d %v: Selected=%d", seed, tc.cr, res.Selected)
			}
		}
	}
}

func TestExactNeverLarger(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 7, Gates: 30, Outputs: 3}, 3)
	s := Heuristic1Sort(c)
	approx, err := Enumerate(c, SigmaPi, Options{Sort: &s})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Enumerate(c, SigmaPi, Options{Sort: &s, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Selected > approx.Selected {
		t.Fatalf("exact %d > approximate %d", exact.Selected, approx.Selected)
	}
	if exact.Selected+exact.SATRejects != approx.Selected {
		t.Fatalf("accounting: exact %d + rejects %d != approx %d",
			exact.Selected, exact.SATRejects, approx.Selected)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 3}, seed)
		s := Heuristic1Sort(c)
		for _, cr := range []Criterion{FS, NonRobust, SigmaPi} {
			var sort *circuit.InputSort
			if cr == SigmaPi {
				sort = &s
			}
			serial, err := Enumerate(c, cr, Options{Sort: sort, CollectLeadCounts: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Enumerate(c, cr, Options{Sort: sort, CollectLeadCounts: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if par.Selected != serial.Selected || par.Segments != serial.Segments || par.Pruned != serial.Pruned {
				t.Fatalf("seed %d %v: parallel (%d,%d,%d) != serial (%d,%d,%d)",
					seed, cr, par.Selected, par.Segments, par.Pruned,
					serial.Selected, serial.Segments, serial.Pruned)
			}
			for i := range serial.LeadCounts {
				if serial.LeadCounts[i] != par.LeadCounts[i] {
					t.Fatalf("seed %d %v: lead counts differ at %d", seed, cr, i)
				}
			}
		}
	}
}

func TestParallelOnPathSerialized(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 7, Gates: 30, Outputs: 2}, 2)
	got := make(map[string]bool)
	res, err := Enumerate(c, FS, Options{
		Workers: 4,
		OnPath: func(lp paths.Logical) {
			got[lp.Key()] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != res.Selected {
		t.Fatalf("callback saw %d paths, Selected=%d", len(got), res.Selected)
	}
}

// TestLimitParallelBudget: with Workers > 1 the Limit is a shared atomic
// budget — exactly Limit paths are counted and delivered, the result is
// incomplete, and RD is nil.
func TestLimitParallelBudget(t *testing.T) {
	for _, workers := range []int{2, 8} {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 3}, 5)
		got := 0
		res, err := Enumerate(c, FS, Options{
			Limit:   25,
			Workers: workers,
			OnPath:  func(paths.Logical) { got++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected != 25 || res.Complete {
			t.Fatalf("workers=%d: selected=%d complete=%v, want exactly 25 and incomplete",
				workers, res.Selected, res.Complete)
		}
		if got != 25 {
			t.Fatalf("workers=%d: OnPath fired %d times, want 25", workers, got)
		}
		if res.RD != nil {
			t.Fatalf("workers=%d: truncated run reported RD=%v, want nil", workers, res.RD)
		}
	}
}

// TestLimitLargerThanTotal: a limit the walk never reaches leaves the
// result complete with a real RD count, serial and parallel.
func TestLimitLargerThanTotal(t *testing.T) {
	c := gen.PaperExample()
	for _, workers := range []int{1, 4} {
		res, err := Enumerate(c, FS, Options{Limit: 1000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete || res.RD == nil || res.Selected != 8 {
			t.Fatalf("workers=%d: complete=%v RD=%v selected=%d", workers, res.Complete, res.RD, res.Selected)
		}
	}
}

// TestParallelDeterminismProperty is the scheduling-independence property
// of the work-stealing engine: over random circuits, every criterion, and
// worker counts 1 vs 8, the Selected/RD/Segments/Pruned counters and the
// per-lead tallies are byte-identical, and OnPath delivers the same path
// *set* (order-insensitive).
func TestParallelDeterminismProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 9, Gates: 50, Outputs: 3}, seed)
		s := Heuristic1Sort(c)
		for _, cr := range []Criterion{FS, NonRobust, SigmaPi} {
			var sort *circuit.InputSort
			if cr == SigmaPi {
				sort = &s
			}
			serialPaths := make(map[string]bool)
			serial, err := Enumerate(c, cr, Options{Sort: sort, CollectLeadCounts: true,
				OnPath: func(lp paths.Logical) { serialPaths[lp.Key()] = true }})
			if err != nil {
				t.Fatal(err)
			}
			parPaths := make(map[string]bool)
			par, err := Enumerate(c, cr, Options{Sort: sort, CollectLeadCounts: true, Workers: 8,
				OnPath: func(lp paths.Logical) { parPaths[lp.Key()] = true }})
			if err != nil {
				t.Fatal(err)
			}
			if par.Selected != serial.Selected || par.Segments != serial.Segments ||
				par.Pruned != serial.Pruned || par.RD.Cmp(serial.RD) != 0 {
				t.Fatalf("seed %d %v: parallel (sel=%d seg=%d pr=%d rd=%v) != serial (sel=%d seg=%d pr=%d rd=%v)",
					seed, cr, par.Selected, par.Segments, par.Pruned, par.RD,
					serial.Selected, serial.Segments, serial.Pruned, serial.RD)
			}
			for i := range serial.LeadCounts {
				if serial.LeadCounts[i] != par.LeadCounts[i] {
					t.Fatalf("seed %d %v: lead counts differ at %d", seed, cr, i)
				}
			}
			if len(serialPaths) != len(parPaths) || !subset(serialPaths, parPaths) {
				t.Fatalf("seed %d %v: parallel path set (%d) != serial (%d)",
					seed, cr, len(parPaths), len(serialPaths))
			}
		}
	}
}

// TestHeuristic2SortWorkersDeterministic: the parallel Algorithm 3 passes
// produce the identical input sort and tallies for every worker budget.
func TestHeuristic2SortWorkersDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 7, Gates: 30, Outputs: 2}, seed)
		base, fs1, t1, err := Heuristic2Sort(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			s, fsW, tW, err := Heuristic2SortWorkers(c, workers)
			if err != nil {
				t.Fatal(err)
			}
			for g := range base.Pos {
				for p := range base.Pos[g] {
					if base.Pos[g][p] != s.Pos[g][p] {
						t.Fatalf("seed %d workers=%d: sort differs at gate %d pin %d", seed, workers, g, p)
					}
				}
			}
			if fsW.Selected != fs1.Selected || tW.Selected != t1.Selected {
				t.Fatalf("seed %d workers=%d: pass counts differ", seed, workers)
			}
		}
	}
}

func BenchmarkEnumerateFS(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 12, Gates: 120, Outputs: 4}, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(c, FS, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIdentifyHeu1(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 12, Gates: 120, Outputs: 4}, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Identify(c, Heuristic1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
