package core

import (
	"math/big"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/pla"
	"rdfault/internal/synth"
)

func TestCertificateCoversExactlyRD(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 3}, seed)
		s := Heuristic1Sort(c)
		cert, err := CollectRDSegments(c, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cert.CoveredTotal.Cmp(cert.Result.RD) != 0 {
			t.Fatalf("seed %d: segments cover %v paths, RD = %v",
				seed, cert.CoveredTotal, cert.Result.RD)
		}
		if int64(len(cert.Segments)) != cert.Result.Pruned {
			t.Fatalf("seed %d: %d segments, %d prunes", seed, len(cert.Segments), cert.Result.Pruned)
		}
	}
}

func TestCertificateSegmentsAreRD(t *testing.T) {
	// Every extension of every certified segment must be outside LP^sup.
	c := gen.PaperExample()
	s := circuit.PinOrderSort(c)
	kept := map[string]bool{}
	cert, err := CollectRDSegments(c, s, Options{
		OnPath: func(lp paths.Logical) { kept[lp.Key()] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Result.RD.Int64() != 3 {
		t.Fatalf("RD = %v", cert.Result.RD)
	}
	// Expand each segment's extensions explicitly and check none is kept.
	expanded := 0
	for _, seg := range cert.Segments {
		var walk func(g circuit.GateID, gates []circuit.GateID, pins []int)
		walk = func(g circuit.GateID, gates []circuit.GateID, pins []int) {
			if c.Type(g) == circuit.Output {
				lp := paths.Logical{
					Path:     paths.Path{Gates: gates, Pins: pins},
					FinalOne: seg.FinalOne,
				}
				if kept[lp.Key()] {
					t.Fatalf("certified segment extension %s is in LP^sup", lp.Path.String(c))
				}
				expanded++
				return
			}
			for _, e := range c.Fanout(g) {
				walk(e.To, append(gates[:len(gates):len(gates)], e.To), append(pins[:len(pins):len(pins)], e.Pin))
			}
		}
		walk(seg.Gates[len(seg.Gates)-1], seg.Gates, seg.Pins)
		if seg.String(c) == "" {
			t.Fatal("empty segment rendering")
		}
	}
	if int64(expanded) != cert.Result.RD.Int64() {
		t.Fatalf("expanded %d paths from segments, RD = %v", expanded, cert.Result.RD)
	}
}

func TestCertificateCompactness(t *testing.T) {
	// On redundancy-heavy circuits the certificate is much smaller than
	// the RD path list.
	cv := gen.RandomPLA("red", gen.PLAOptions{Inputs: 10, Outputs: 5, Cubes: 30, Redundant: 25}, 3)
	c := mustSynthFor(t, cv)
	s := Heuristic1Sort(c)
	cert, err := CollectRDSegments(c, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Result.RD.Sign() == 0 {
		t.Skip("no RD paths on this cover")
	}
	if big.NewInt(int64(len(cert.Segments))).Cmp(cert.Result.RD) >= 0 {
		t.Fatalf("certificate (%d segments) not smaller than RD set (%v)",
			len(cert.Segments), cert.Result.RD)
	}
	t.Logf("certificate: %d segments cover %v RD paths", len(cert.Segments), cert.CoveredTotal)
}

func TestCertificateGuards(t *testing.T) {
	c := gen.PaperExample()
	s := circuit.PinOrderSort(c)
	if _, err := CollectRDSegments(c, s, Options{Exact: true}); err == nil {
		t.Error("Exact accepted")
	}
	if _, err := CollectRDSegments(c, s, Options{Limit: 2}); err == nil {
		t.Error("Limit accepted")
	}
}

func mustSynthFor(t *testing.T, cv *pla.Cover) *circuit.Circuit {
	t.Helper()
	c, err := synth.Synthesize(cv, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
