package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"rdfault/internal/gen"
)

// TestProgressFinalMatchesResult is the tentpole invariant: once a pass
// ends, Snapshot is Final and bit-identical to the Result counters —
// at any worker count, with and without a tracker attached.
func TestProgressFinalMatchesResult(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	sort := Heuristic1Sort(c)
	ref, err := Enumerate(c, SigmaPi, Options{Sort: &sort})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tr := NewTracker()
		res, err := Enumerate(c, SigmaPi, Options{Sort: &sort, Workers: workers, Progress: tr})
		if err != nil {
			t.Fatal(err)
		}
		p := tr.Snapshot()
		if !p.Final {
			t.Fatalf("workers=%d: snapshot not final after Enumerate returned", workers)
		}
		if p.Selected != res.Selected || p.Segments != res.Segments ||
			p.Pruned != res.Pruned || p.SATRejects != res.SATRejects {
			t.Fatalf("workers=%d: final snapshot %+v != result {%d %d %d %d}",
				workers, p, res.Selected, res.Segments, res.Pruned, res.SATRejects)
		}
		// The tracker changed nothing about the result itself.
		if res.Selected != ref.Selected || res.Segments != ref.Segments ||
			res.Pruned != ref.Pruned || res.RD.Cmp(ref.RD) != 0 {
			t.Fatalf("workers=%d: tracked counters differ from untracked reference", workers)
		}
	}
}

// Mid-run snapshots are sound partial views: bounded by the final
// counters, and the final snapshot still lands exactly.
func TestProgressLiveSnapshots(t *testing.T) {
	c := gen.RippleAdder(10, gen.XorNAND)
	sort := Heuristic1Sort(c)
	tr := NewTracker()

	var maxSeen atomic.Int64
	stop := make(chan struct{})
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := tr.Snapshot()
			if p.Segments > maxSeen.Load() {
				maxSeen.Store(p.Segments)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	res, err := Enumerate(c, SigmaPi, Options{Sort: &sort, Workers: 4, Progress: tr})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-sampler
	if maxSeen.Load() > res.Segments {
		t.Fatalf("live snapshot overshot: saw %d segments, final %d", maxSeen.Load(), res.Segments)
	}
	if p := tr.Snapshot(); !p.Final || p.Segments != res.Segments {
		t.Fatalf("final snapshot %+v, want Final with %d segments", p, res.Segments)
	}
}

// An interrupted pass freezes on its partial counters; the resumed pass
// rebases the same tracker on the checkpoint baseline and its final
// snapshot carries the cumulative totals.
func TestProgressAcrossCheckpointResume(t *testing.T) {
	c := gen.RippleAdder(10, gen.XorNAND)
	sort := Heuristic1Sort(c)
	ref, err := Enumerate(c, SigmaPi, Options{Sort: &sort})
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracker()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // immediate cancellation: everything goes to the checkpoint
	part, err := Enumerate(c, SigmaPi, Options{Sort: &sort, Context: ctx, Progress: tr})
	if err != nil {
		t.Fatal(err)
	}
	if part.Status != StatusCanceled || part.Checkpoint == nil {
		t.Fatalf("expected canceled pass with checkpoint, got %v", part.Status)
	}
	if p := tr.Snapshot(); !p.Final || p.Segments != part.Segments {
		t.Fatalf("interrupted snapshot %+v, want Final with %d segments", p, part.Segments)
	}

	res, err := Enumerate(c, SigmaPi, Options{Sort: &sort, Checkpoint: part.Checkpoint, Progress: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusComplete || res.Selected != ref.Selected || res.RD.Cmp(ref.RD) != 0 {
		t.Fatalf("resumed run diverged: %v selected=%d", res.Status, res.Selected)
	}
	if p := tr.Snapshot(); p.Selected != ref.Selected || p.Segments != ref.Segments {
		t.Fatalf("resumed final snapshot %+v, want cumulative {%d %d}", p, ref.Selected, ref.Segments)
	}
}

// A nil tracker is a valid (empty) snapshot source.
func TestProgressNilTracker(t *testing.T) {
	var tr *Tracker
	if p := tr.Snapshot(); p != (Progress{}) {
		t.Fatalf("nil tracker snapshot = %+v", p)
	}
}
