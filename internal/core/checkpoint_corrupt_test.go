package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/faultinject"
	"rdfault/internal/paths"
)

// interruptedCheckpoint produces a genuine checkpoint with pending tasks.
func interruptedCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	c := resilienceCircuit(7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	res, err := Enumerate(c, FS, Options{
		Context: ctx,
		OnPath: func(lp paths.Logical) {
			delivered++
			if delivered == 3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil || res.Checkpoint.Pending() == 0 {
		t.Fatal("run was not interrupted with a pending frontier")
	}
	return res.Checkpoint
}

// TestCorruptionMatrix: every way of damaging a checkpoint file —
// truncation at any point, single-byte garbage, trailing junk, zeroed
// content, an empty file — must come back as a typed
// *CorruptCheckpointError (never a panic, never a silently-empty
// checkpoint), with the byte offset populated whenever the damage has
// one.
func TestCorruptionMatrix(t *testing.T) {
	cp := interruptedCheckpoint(t)
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	dir := t.TempDir()

	check := func(name string, data []byte, wantOffset bool) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCheckpointFile(path)
		if err == nil {
			// A mutation can still be a structurally valid checkpoint
			// (e.g. a flipped byte inside a counter that stays
			// non-negative); those are caught by the resume-time
			// fingerprint check instead. What is forbidden is a nil-error
			// checkpoint with no circuit binding.
			if got.Circuit == "" {
				t.Errorf("%s: decoded a checkpoint bound to no circuit", name)
			}
			return
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: error %v does not match ErrCorruptCheckpoint", name, err)
			return
		}
		var ce *CorruptCheckpointError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *CorruptCheckpointError", name, err)
			return
		}
		if ce.Path != path {
			t.Errorf("%s: error path %q, want %q", name, ce.Path, path)
		}
		if wantOffset && ce.Offset < 0 {
			t.Errorf("%s: no byte offset in %v", name, err)
		}
	}

	// Truncations across the whole file, including cutting inside the
	// tasks array and inside a number.
	for _, frac := range []int{0, 1, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		check("trunc", valid[:frac], frac > 0)
	}
	// Flip every 97th byte (covering structure chars, keys and digits).
	for i := 0; i < len(valid); i += 97 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x5a
		check("flip", mut, false)
	}
	// Trailing garbage: concatenated JSON and raw junk.
	check("trail-json", append(append([]byte(nil), valid...), valid...), true)
	check("trail-junk", append(append([]byte(nil), valid...), []byte("#!garbage")...), true)
	// Content that decodes but cannot be a real checkpoint.
	check("zeroed", []byte("{}"), false)
	check("no-circuit", []byte(`{"version":1,"counters":{},"tasks":[]}`), false)
	check("neg-counter", []byte(`{"version":1,"circuit":"x","counters":{"selected":-4},"tasks":[]}`), false)
	check("not-json", []byte("\x00\xff\x00\xffgarbage"), true)
}

// TestVersionMismatchIsNotCorruption: an honest version skew gets its own
// clear error, not the corruption sentinel.
func TestVersionMismatchIsNotCorruption(t *testing.T) {
	_, err := DecodeCheckpoint(bytes.NewReader([]byte(`{"version":99,"circuit":"x"}`)))
	if err == nil {
		t.Fatal("future version accepted")
	}
	if errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("version mismatch classified as corruption: %v", err)
	}
}

// TestEmptyFileIsCorrupt: zero bytes must not decode into a zero-value
// checkpoint that would "resume" by walking nothing.
func TestEmptyFileIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpointFile(path)
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("empty file: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestInjectedWriteCorruptionIsCaughtOnRead: the chaos loop closes — a
// checkpoint corrupted on its way to disk (PointCheckpointBytes) is
// rejected at read time for every corruption seed, never resumed.
func TestInjectedWriteCorruptionIsCaughtOnRead(t *testing.T) {
	cp := interruptedCheckpoint(t)
	dir := t.TempDir()
	for seed := int64(1); seed <= 20; seed++ {
		path := filepath.Join(dir, "spill.ckpt")
		func() {
			defer faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
				Point: faultinject.PointCheckpointBytes,
				Kind:  faultinject.KindCorrupt,
				Seed:  seed,
			}))()
			if err := WriteCheckpointFile(path, cp); err != nil {
				t.Fatalf("seed %d: write failed: %v", seed, err)
			}
		}()
		got, err := ReadCheckpointFile(path)
		if err != nil {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Errorf("seed %d: corruption surfaced as %v, not ErrCorruptCheckpoint", seed, err)
			}
			continue
		}
		// The mutation happened to keep the JSON decodable (e.g. a byte
		// flip inside the circuit name or a digit). The resume-time
		// fingerprint validation must then refuse it — decodable is not
		// the same as trustworthy.
		c := resilienceCircuit(7)
		if _, verr := Enumerate(c, FS, Options{Checkpoint: got}); verr == nil {
			// A flip can also land in a counter and keep everything
			// plausible; such a checkpoint resumes but cannot claim
			// completeness against the fingerprinted circuit. Detecting
			// semantic counter drift is the oracle suite's job; here we
			// only require that nothing crashed.
			t.Logf("seed %d: mutation survived decode and validation (benign flip)", seed)
		}
	}
}

// FuzzDecodeCheckpoint: arbitrary bytes must never panic the decoder and
// never produce a checkpoint with no circuit binding.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(`{"version":1,"circuit":"x","counters":{},"tasks":[]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1,"circuit":"x","tasks":[{"is_root":true,"pi":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(bytes.NewReader(data))
		if err == nil && cp.Circuit == "" {
			t.Fatal("decoded checkpoint bound to no circuit")
		}
	})
}
