package core

import (
	"fmt"
	"testing"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

// TestIdentifyCachedEqualsUncached is the manager's correctness contract:
// serving counts, sorts and Algorithm 3 passes from the cache must leave
// every reported counter byte-identical to the recompute-everywhere
// baseline, for every heuristic and any worker count.
func TestIdentifyCachedEqualsUncached(t *testing.T) {
	circuits := []*circuit.Circuit{
		gen.PaperExample(),
		gen.ParityTree(8, gen.XorNAND),
		gen.SECDecoder(4, gen.XorAOI),
		gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 3}, 7),
	}
	heuristics := []Heuristic{HeuristicFUS, Heuristic1, Heuristic2}
	for _, c := range circuits {
		for _, h := range heuristics {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%v/w%d", c.Name(), h, workers), func(t *testing.T) {
					analysis.Reset()
					prev := analysis.SetEnabled(false)
					base, errBase := Identify(c, h, Options{Workers: workers})
					analysis.SetEnabled(prev)
					analysis.Reset()
					if errBase != nil {
						t.Fatal(errBase)
					}

					// Cached run, twice: the first populates, the second is
					// served (for Heu2, both Algorithm 3 passes come from the
					// memo on the second run).
					for pass := 1; pass <= 2; pass++ {
						got, err := Identify(c, h, Options{Workers: workers})
						if err != nil {
							t.Fatalf("cached pass %d: %v", pass, err)
						}
						if got.Selected != base.Selected {
							t.Fatalf("pass %d: Selected %d != %d", pass, got.Selected, base.Selected)
						}
						if (got.RD == nil) != (base.RD == nil) ||
							(got.RD != nil && got.RD.Cmp(base.RD) != 0) {
							t.Fatalf("pass %d: RD %v != %v", pass, got.RD, base.RD)
						}
						if got.TotalLogicalPaths.Cmp(base.TotalLogicalPaths) != 0 {
							t.Fatalf("pass %d: Total %v != %v", pass, got.TotalLogicalPaths, base.TotalLogicalPaths)
						}
						if got.Final.Segments != base.Final.Segments {
							t.Fatalf("pass %d: Segments %d != %d", pass, got.Final.Segments, base.Final.Segments)
						}
						if got.Final.Pruned != base.Final.Pruned {
							t.Fatalf("pass %d: Pruned %d != %d", pass, got.Final.Pruned, base.Final.Pruned)
						}
						if got.Status != base.Status {
							t.Fatalf("pass %d: Status %v != %v", pass, got.Status, base.Status)
						}
						if got.Sort != nil && base.Sort != nil {
							for g, pins := range got.Sort.Pos {
								for i, p := range pins {
									if base.Sort.Pos[g][i] != p {
										t.Fatalf("pass %d: sorts diverge at gate %d pin %d", pass, g, i)
									}
								}
							}
						}
					}
					analysis.Reset()
				})
			}
		}
	}
}

// TestEnumerateSharedEngines: enumeration must stay correct when its
// workers' engines cycle through the pool across runs — the counters are
// a pure function of the circuit, not of engine history.
func TestEnumerateSharedEngines(t *testing.T) {
	defer analysis.Reset()
	analysis.Reset()
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 3}, 11)
	s := Heuristic1Sort(c)
	first, err := Enumerate(c, SigmaPi, Options{Sort: &s, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := Enumerate(c, SigmaPi, Options{Sort: &s, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected != first.Selected || res.Segments != first.Segments ||
			res.RD.Cmp(first.RD) != 0 {
			t.Fatalf("run %d drifted: selected %d/%d segments %d/%d",
				i, res.Selected, first.Selected, res.Segments, first.Segments)
		}
	}
}
