package core

import (
	"context"
	"math/big"
	"sort"
	"sync"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
)

// Heuristic1Sort computes the input sort of Heuristic 1: the inputs of
// every gate are ordered by ascending |LP_c(l)| = |P(l)|, the number of
// physical paths through the lead (Remark 4). Computing it is pure path
// counting and costs O(gates + leads) big-integer operations — the
// "linear time" claim of Section V. Ties keep pin order, making the sort
// deterministic. The sort is memoized per circuit version through the
// analysis manager, so repeated identification runs on the same circuit
// pay for it once; the returned sort is shared and must be treated as
// read-only.
func Heuristic1Sort(c *circuit.Circuit) circuit.InputSort {
	v, _ := analysis.For(c).Memo("core.heu1sort", func() (any, error) {
		ct := analysis.For(c).Counts()
		pos := make([][]int, c.NumGates())
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			fanin := c.Fanin(g)
			counts := make([]*big.Int, len(fanin))
			for pin := range fanin {
				counts[pin] = ct.ThroughLead(circuit.Lead{To: g, Pin: pin})
			}
			pos[g] = rankPins(counts)
		}
		return circuit.InputSort{Pos: pos}, nil
	})
	return v.(circuit.InputSort)
}

// Heuristic2Sort computes the input sort of Heuristic 2 via Algorithm 3:
// two enumeration passes approximate |FS_c^sup(l)| and |T_c^sup(l)| per
// lead, and gate inputs are ordered by ascending
// |FS_c^sup(l) \ T_c^sup(l)| = FS_c^sup(l) - T_c^sup(l) (T^sup ⊆ FS^sup
// holds per construction: the T conditions strictly include the FS
// conditions, so every T survivor also survives FS). The two pass results
// are returned for timing accounting — Heuristic 2's cost is dominated by
// running the enumeration three times (twice here, once for the final
// RD computation), as Table II shows.
func Heuristic2Sort(c *circuit.Circuit) (circuit.InputSort, *Result, *Result, error) {
	return Heuristic2SortWorkers(c, 1)
}

// Heuristic2SortWorkers is Heuristic2Sort with a worker budget: the two
// Algorithm 3 passes run concurrently, splitting the budget between them,
// and each pass is internally parallel (work-stealing Enumerate). The
// resulting sort is identical for every worker count — the per-lead
// tallies are schedule-independent.
func Heuristic2SortWorkers(c *circuit.Circuit, workers int) (circuit.InputSort, *Result, *Result, error) {
	return heuristic2SortCtx(c, workers, nil)
}

// heu2Passes bundles the memoized outcome of Algorithm 3: the sort plus
// the two measurement passes it was derived from.
type heu2Passes struct {
	sort  circuit.InputSort
	fsRes *Result
	tRes  *Result
}

// heuristic2SortCtx is Heuristic2SortWorkers with a cancellation context
// for the two Algorithm 3 passes. An interrupted pass cannot yield a
// sort, so interruption surfaces as the pass's terminal error
// (ErrDeadline / ErrCanceled / the joined worker panics).
//
// The passes are deterministic and schedule-independent, so their
// outcome is memoized per circuit version: the first complete run pays
// for the two enumerations, every later Heuristic 2 identification on
// the same circuit reuses them (only the final σ^π pass re-runs).
// Failed or interrupted runs are never cached. The memoized sort and
// Results are shared across callers — read-only.
func heuristic2SortCtx(c *circuit.Circuit, workers int, ctx context.Context) (circuit.InputSort, *Result, *Result, error) {
	v, err := analysis.For(c).Memo("core.heu2passes", func() (any, error) {
		s, fsRes, tRes, err := heuristic2Passes(c, workers, ctx)
		if err != nil {
			return nil, err
		}
		return &heu2Passes{sort: s, fsRes: fsRes, tRes: tRes}, nil
	})
	if err != nil {
		return circuit.InputSort{}, nil, nil, err
	}
	p := v.(*heu2Passes)
	return p.sort, p.fsRes, p.tRes, nil
}

// heuristic2Passes runs the two Algorithm 3 enumeration passes and
// builds the sort; the uncached body behind heuristic2SortCtx.
func heuristic2Passes(c *circuit.Circuit, workers int, ctx context.Context) (circuit.InputSort, *Result, *Result, error) {
	var fsRes, tRes *Result
	var fsErr, tErr error
	if workers <= 1 {
		fsRes, fsErr = Enumerate(c, FS, Options{CollectLeadCounts: true, Context: ctx})
		if fsErr == nil {
			tRes, tErr = Enumerate(c, NonRobust, Options{CollectLeadCounts: true, Context: ctx})
		}
	} else {
		// Concurrent passes, each with half the budget (at least one).
		half := workers / 2
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tRes, tErr = Enumerate(c, NonRobust, Options{CollectLeadCounts: true, Workers: workers - half, Context: ctx})
		}()
		fsRes, fsErr = Enumerate(c, FS, Options{CollectLeadCounts: true, Workers: half, Context: ctx})
		wg.Wait()
	}
	if fsErr == nil && fsRes.Status != StatusComplete {
		fsErr = fsRes.Err
	}
	if tErr == nil && tRes != nil && tRes.Status != StatusComplete {
		tErr = tRes.Err
	}
	if fsErr != nil {
		return circuit.InputSort{}, nil, nil, fsErr
	}
	if tErr != nil {
		return circuit.InputSort{}, nil, nil, tErr
	}
	measure := make([]int64, c.NumLeads())
	for i := range measure {
		measure[i] = fsRes.LeadCounts[i] - tRes.LeadCounts[i]
	}
	return SortByLeadMeasure(c, measure), fsRes, tRes, nil
}

// SortByLeadMeasure builds an input sort ordering every gate's pins by
// ascending per-lead measure (indexed by Circuit.LeadIndex). It is the
// generic step 3 of Algorithm 3 and lets callers that already ran the
// enumeration passes construct Heuristic 2's sort without re-running
// them.
func SortByLeadMeasure(c *circuit.Circuit, measure []int64) circuit.InputSort {
	pos := make([][]int, c.NumGates())
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		fanin := c.Fanin(g)
		counts := make([]*big.Int, len(fanin))
		for pin := range fanin {
			counts[pin] = big.NewInt(measure[c.LeadIndex(g, pin)])
		}
		pos[g] = rankPins(counts)
	}
	return circuit.InputSort{Pos: pos}
}

// rankPins converts per-pin cost measures into π-positions: the pin with
// the smallest measure receives position 0. Ties resolve by pin index.
func rankPins(counts []*big.Int) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return counts[order[a]].Cmp(counts[order[b]]) < 0
	})
	pos := make([]int, len(counts))
	for rank, pin := range order {
		pos[pin] = rank
	}
	return pos
}
