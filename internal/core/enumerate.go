package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/faultinject"
	"rdfault/internal/logic"
	"rdfault/internal/paths"
	"rdfault/internal/satsolver"
)

// Options tunes Enumerate.
type Options struct {
	// Sort is the input sort π; required for the SigmaPi criterion,
	// ignored otherwise.
	Sort *circuit.InputSort
	// CollectLeadCounts enables the per-lead tallies |set_c^sup(l)| used
	// by Algorithm 3 (Heuristic 2).
	CollectLeadCounts bool
	// OnPath, when non-nil, receives every surviving logical path. The
	// Path buffer is shared; Clone to retain. With Workers > 1 the
	// callback is serialized by a mutex but arrival order is
	// nondeterministic (the delivered path *set* is not).
	OnPath func(paths.Logical)
	// Limit aborts enumeration after this many surviving paths
	// (0 = unlimited); the result is then marked StatusTruncated and RD
	// is nil (the true RD count is unknown for a truncated walk). With
	// Workers > 1 the budget is a shared atomic counter with
	// stop-at-limit semantics: exactly Limit paths are counted and
	// delivered, but *which* paths make the cut — and the Segments/Pruned
	// tallies of a truncated run — depend on the schedule.
	Limit int64
	// NoPrune disables prime-segment pruning: conditions are still
	// accumulated, but contradictions no longer cut the DFS — every
	// logical path is visited and classified individually. Ablation knob;
	// the selected set is identical.
	NoPrune bool
	// Exact verifies every locally-surviving path with a SAT query over
	// the full circuit, turning the superset into the exact set (the
	// quality bound of the paper's approximation, measurable on circuits
	// far beyond exhaustive input enumeration). Much slower.
	Exact bool
	// Workers sets the number of enumeration goroutines (0 or 1 =
	// serial). Work is balanced by stealing: busy walkers split their DFS
	// frontier whenever idle workers exist, exporting untaken branches
	// (path prefix + implication-engine snapshot) as tasks, so a single
	// dominant fan-out cone no longer serializes the run. All counts
	// (Selected, RD, Segments, Pruned, LeadCounts) are deterministic and
	// schedule-independent for complete runs; OnPath ordering is not.
	Workers int

	// Context, when non-nil, makes the run cancellable: walkers observe
	// cancellation at branch-extension granularity, stop cleanly, and
	// serialize their untaken DFS frontier into Result.Checkpoint so the
	// walk can resume later. Cancellation is graceful, not an error:
	// Enumerate still returns a Result carrying the partial counters.
	Context context.Context
	// Deadline, when positive, bounds the run's wall-clock time (layered
	// on top of Context if both are set). Expiry behaves exactly like a
	// context deadline: StatusDeadline plus a resumable checkpoint.
	Deadline time.Duration
	// Checkpoint resumes an interrupted run: the walk covers exactly the
	// frontier recorded at interruption and the counters continue from
	// the checkpoint's baseline, so a resumed run's final counters are
	// bit-identical to an uninterrupted run for any worker count. The
	// checkpoint must come from the same circuit, criterion and sort
	// (fingerprint-checked). Note that OnPath only sees the resumed
	// frontier's paths — paths delivered before the interruption are not
	// replayed.
	Checkpoint *Checkpoint
	// Progress, when non-nil, receives live counter snapshots: walkers
	// publish their plain counters into per-worker shards at task
	// boundaries and every pollEvery cancellation checks (piggybacking
	// on the existing poll cadence — the DFS inner loop gains no atomics
	// and no allocations), and Tracker.Snapshot folds the shards on
	// read. When the run ends the tracker freezes on the exact Result
	// counters. One tracker serves a chain of runs (checkpoint resume,
	// the serve ladder): each Enumerate call rebases it.
	Progress *Tracker

	// onPrune receives every pruned prime segment (set via
	// CollectRDSegments; forces serial execution). Buffers are shared.
	onPrune func(gates []circuit.GateID, pins []int, finalOne bool)
}

// Result reports one enumeration pass.
type Result struct {
	Criterion Criterion
	// Status classifies how the run ended; see the Status constants.
	// Counters below are exact for StatusComplete, partial-but-sound
	// baselines for interrupted runs, and unreliable for StatusDegraded.
	Status Status
	// Total is the number of logical paths in the circuit (exact count).
	Total *big.Int
	// Selected is the number of logical paths surviving the criterion:
	// |FS^sup|, |LP^sup(σ^π)| or |T^sup| (the exact sets when
	// Options.Exact is on).
	Selected int64
	// RD is Total - Selected: for SigmaPi this is |RD^sub(σ^π)|, the
	// identified robust dependent set; for FS it is the number of
	// functionally unsensitizable paths (the FUS column of Table I).
	// RD is nil unless Status is StatusComplete: a truncated or
	// interrupted walk proves nothing about the paths it never visited.
	RD *big.Int
	// LeadCounts[i] counts, for the lead with dense index i, the selected
	// logical paths through it whose transition at the lead ends on the
	// controlling value of the gate it feeds (|set_c^sup(l)|). Nil unless
	// requested.
	LeadCounts []int64
	// Segments counts DFS edge extensions; Pruned counts extensions cut
	// by a local-implication contradiction; SATRejects counts paths the
	// exact check eliminated beyond local implications.
	Segments   int64
	Pruned     int64
	SATRejects int64
	// Complete is true iff Status is StatusComplete (kept for callers of
	// the pre-Status API).
	Complete bool
	// Checkpoint holds the serialized untaken frontier when the run was
	// interrupted (StatusDeadline or StatusCanceled); pass it back via
	// Options.Checkpoint to finish the walk. Nil otherwise.
	Checkpoint *Checkpoint
	// WorkerErrors carries one crash report per panicked worker when
	// Status is StatusDegraded.
	WorkerErrors []*WorkerError
	// Err is the run's terminal condition: nil for StatusComplete and
	// StatusTruncated, ErrDeadline / ErrCanceled for interruptions, and
	// the joined WorkerErrors (matching ErrWorkerPanic) for
	// StatusDegraded. The Result is still populated in every case —
	// graceful degradation, not failure.
	Err      error
	Duration time.Duration
}

// RDPercent returns 100*RD/Total as a float; 0 for an empty circuit or
// an incomplete result (RD unknown).
func (r *Result) RDPercent() float64 {
	if r.RD == nil || r.Total.Sign() == 0 {
		return 0
	}
	rd := new(big.Float).SetInt(r.RD)
	tot := new(big.Float).SetInt(r.Total)
	q, _ := new(big.Float).Quo(rd, tot).Float64()
	return 100 * q
}

// counters extracts the result's tallies as a checkpoint baseline.
func (r *Result) counters() CheckpointCounters {
	return CheckpointCounters{
		Selected:   r.Selected,
		Segments:   r.Segments,
		Pruned:     r.Pruned,
		SATRejects: r.SATRejects,
		LeadCounts: append([]int64(nil), r.LeadCounts...),
	}
}

// minSplitSuffixes is the work-stealing granularity floor: a DFS branch
// is exported only if at least this many PI-to-PO suffixes hang under it,
// so task overhead (snapshot + scheduler lock) stays far below the
// subtree's enumeration cost.
const minSplitSuffixes = 32

// shared is the cross-walker state of one parallel Enumerate run.
type shared struct {
	sched *scheduler
	// splitOK marks gates whose DFS subtree is big enough to export
	// (precomputed from exact path counts, so the decision is free).
	splitOK []bool
	// limit/selected implement the shared atomic path budget.
	limit    int64
	selected atomic.Int64
}

// frontier collects the un-walked DFS branches of a canceled run; they
// become the checkpoint. Only touched after cancellation, so the mutex
// is uncontended on the hot path.
type frontier struct {
	mu    sync.Mutex
	tasks []task
}

func (f *frontier) add(ts ...task) {
	f.mu.Lock()
	f.tasks = append(f.tasks, ts...)
	f.mu.Unlock()
}

// workerErrors accumulates panic reports across workers.
type workerErrors struct {
	mu   sync.Mutex
	errs []*WorkerError
}

func (we *workerErrors) add(e *WorkerError) {
	we.mu.Lock()
	we.errs = append(we.errs, e)
	we.mu.Unlock()
}

// walker is the per-goroutine enumeration state.
type walker struct {
	c    *circuit.Circuit
	cr   Criterion
	opt  *Options
	eng  *logic.Engine
	sat  *satsolver.Solver
	vars satsolver.CircuitVars
	sh   *shared // nil for serial runs
	wid  int

	// cancel is the run's cancellation flag (set when the context is
	// done); fr receives this walker's untaken frontier on cancellation.
	cancel *atomic.Bool
	fr     *frontier
	// ctx and deadline are polled directly every pollEvery cancellation
	// checks: on a single-CPU box neither the watcher goroutine nor the
	// context's own timer may run while walkers spin in the CPU-bound DFS
	// (Go preempts only after ~10ms), so the flag alone would miss
	// deadlines shorter than the walk — and ctx.Err() stays nil until the
	// starved timer fires, hence the explicit clock comparison.
	ctx      context.Context
	deadline time.Time
	pollTick uint

	gateBuf []circuit.GateID
	pinBuf  []int
	valBuf  []bool
	sideBuf []int
	assume  []satsolver.Lit

	selected   int64
	segments   int64
	pruned     int64
	satRejects int64
	leadCounts []int64
	onPath     func(paths.Logical)
	limit      int64 // serial-mode budget; parallel uses shared.selected
	stopped    bool
	prog       *progressShard // live-progress slot; nil when untracked
}

func newWalker(an *analysis.Analysis, cr Criterion, opt *Options, onPath func(paths.Logical)) *walker {
	c := an.Circuit()
	w := &walker{
		c:      c,
		cr:     cr,
		opt:    opt,
		eng:    an.Engine(),
		onPath: onPath,
		limit:  opt.Limit,
	}
	if opt.CollectLeadCounts {
		w.leadCounts = make([]int64, c.NumLeads())
	}
	if opt.Exact {
		w.sat = satsolver.New()
		w.vars = satsolver.AddCircuit(w.sat, c)
	}
	if opt.Progress != nil {
		w.prog = opt.Progress.newShard()
	}
	return w
}

// pollEvery is how many cancellation checks pass between direct context
// polls; at roughly a microsecond per extension this bounds the
// detection latency near a millisecond even when the watcher goroutine
// is starved.
const pollEvery = 1024

// canceled reports whether the run's context fired: the watcher's flag
// first (one atomic load), with a periodic direct ctx.Err() poll as the
// scheduling-independent fallback.
func (w *walker) canceled() bool {
	if w.cancel == nil {
		return false
	}
	if w.cancel.Load() {
		return true
	}
	if w.ctx != nil {
		w.pollTick++
		if w.pollTick%pollEvery == 0 {
			// Piggyback live-progress publication on the poll cadence: one
			// branch and four atomic stores per pollEvery extensions.
			w.publish()
			if w.ctx.Err() != nil || (!w.deadline.IsZero() && !time.Now().Before(w.deadline)) {
				w.cancel.Store(true)
				return true
			}
		}
	}
	return false
}

// saveBranch checkpoints a single untaken branch: the current engine
// state and path prefix plus the edge that was about to be extended.
func (w *walker) saveBranch(e circuit.Edge) {
	w.fr.add(task{
		snap:  w.eng.Snapshot(),
		gates: append([]circuit.GateID(nil), w.gateBuf...),
		pins:  append([]int(nil), w.pinBuf...),
		vals:  append([]bool(nil), w.valBuf...),
		edge:  e,
	})
}

// saveSiblings checkpoints the untaken branches fanout[from:] of the
// current DFS node (skipping branches already exported to the scheduler,
// which the canceled worker loop drains into the frontier separately).
// The snapshot and prefix copies are shared across the sibling tasks.
func (w *walker) saveSiblings(fanout []circuit.Edge, from int, exporting bool) {
	var ts []task
	for _, e := range fanout[from:] {
		if exporting && w.sh != nil && w.sh.splitOK[e.To] {
			continue // handed to the scheduler by export
		}
		if ts == nil {
			base := task{
				snap:  w.eng.Snapshot(),
				gates: append([]circuit.GateID(nil), w.gateBuf...),
				pins:  append([]int(nil), w.pinBuf...),
				vals:  append([]bool(nil), w.valBuf...),
				edge:  e,
			}
			ts = append(ts, base)
			continue
		}
		t := ts[0]
		t.edge = e
		ts = append(ts, t)
	}
	if ts != nil {
		w.fr.add(ts...)
	}
}

// record handles one surviving full path; it reports false to stop the
// walk (path budget exhausted).
func (w *walker) record() bool {
	if w.sat != nil && !w.exactCheck() {
		w.satRejects++
		return true
	}
	cont := true
	if w.sh != nil && w.sh.limit > 0 {
		n := w.sh.selected.Add(1)
		if n > w.sh.limit {
			// Another worker recorded the budget's final path first; this
			// one is not counted.
			w.sh.sched.stop.Store(true)
			return false
		}
		if n == w.sh.limit {
			w.sh.sched.stop.Store(true)
			cont = false
		}
	}
	w.selected++
	if w.leadCounts != nil {
		for i := 1; i < len(w.gateBuf); i++ {
			g := w.gateBuf[i]
			ctrl, ok := w.c.Type(g).Controlling()
			if ok && w.valBuf[i-1] == ctrl {
				w.leadCounts[w.c.LeadIndex(g, w.pinBuf[i-1])]++
			}
		}
	}
	if w.onPath != nil {
		w.onPath(paths.Logical{
			Path:     paths.Path{Gates: w.gateBuf, Pins: w.pinBuf},
			FinalOne: w.valBuf[0],
		})
	}
	if w.sh == nil && w.limit > 0 && w.selected >= w.limit {
		w.stopped = true
		return false
	}
	return cont
}

// exactCheck asks the SAT solver whether the accumulated conditions are
// satisfiable over the whole circuit. Every condition is already recorded
// in the implication engine's assignments, which are sound consequences,
// so asserting the engine's trail values of the on-path and side gates as
// assumptions is exact.
func (w *walker) exactCheck() bool {
	w.assume = w.assume[:0]
	// (π1) + on-path values.
	for i, g := range w.gateBuf {
		w.assume = append(w.assume, w.vars.Lit(g, w.valBuf[i]))
	}
	// Side conditions of every on-path gate.
	for i := 1; i < len(w.gateBuf); i++ {
		g := w.gateBuf[i]
		t := w.c.Type(g)
		ctrl, hasCtrl := t.Controlling()
		if !hasCtrl {
			continue
		}
		onPathCtrl := w.valBuf[i-1] == ctrl
		sides := w.cr.sideConstraints(w.sideBuf[:0], w.c, w.opt.Sort, g, w.pinBuf[i-1], onPathCtrl)
		for _, p := range sides {
			w.assume = append(w.assume, w.vars.Lit(w.c.Fanin(g)[p], !ctrl))
		}
	}
	return w.sat.Solve(w.assume...)
}

// dfs explores every extension of the current path, whose last gate is g
// with final stable value val. When idle workers exist it first exports
// the untaken large branches of the frontier as steal tasks and keeps
// only the remainder for itself. On cancellation it checkpoints the
// untaken siblings before unwinding.
func (w *walker) dfs(g circuit.GateID) bool {
	if w.c.Type(g) == circuit.Output {
		return w.record()
	}
	fanout := w.c.Fanout(g)
	exporting := false
	if w.sh != nil && len(fanout) > 1 && w.sh.sched.hungry.Load() {
		exporting = w.export(fanout)
	}
	for i := range fanout {
		if exporting && i > 0 && w.sh.splitOK[fanout[i].To] {
			continue // handed to the scheduler by export
		}
		if !w.extend(fanout[i]) {
			if w.canceled() {
				// extend saved fanout[i] itself (or deeper frames saved
				// its remainder); the untaken siblings go here. Every
				// edge extension is atomic with respect to the counters,
				// so the frontier is the exact complement of the walk.
				w.saveSiblings(fanout, i+1, exporting)
			}
			return false
		}
	}
	return true
}

// export packages every splittable branch of the frontier except the
// first edge (which the walker keeps, so it always makes progress
// without re-queueing) as steal tasks. The engine snapshot and prefix
// buffers are copied once and shared read-only across the tasks. It
// reports whether anything was exported; the caller then skips exactly
// the splitOK branches beyond index 0, mirroring the condition here.
func (w *walker) export(fanout []circuit.Edge) bool {
	var ts []task
	for _, e := range fanout[1:] {
		if !w.sh.splitOK[e.To] {
			continue
		}
		if ts == nil {
			shared := task{
				snap:  w.eng.Snapshot(),
				gates: append([]circuit.GateID(nil), w.gateBuf...),
				pins:  append([]int(nil), w.pinBuf...),
				vals:  append([]bool(nil), w.valBuf...),
			}
			ts = append(ts, shared)
			ts[0].edge = e
			continue
		}
		t := ts[0]
		t.edge = e
		ts = append(ts, t)
	}
	if ts == nil {
		return false
	}
	w.sh.sched.put(ts...)
	return true
}

// extend advances the current path along edge e: assert the next on-path
// value and the criterion's side-input requirements, prune the subtree on
// contradiction, recurse otherwise. It reports false when the walk must
// stop (path budget exhausted or run canceled). The cancellation check
// precedes all counter updates, so an interrupted edge contributes
// nothing and is checkpointed whole.
func (w *walker) extend(e circuit.Edge) bool {
	if w.canceled() {
		w.saveBranch(e)
		return false
	}
	if w.sh != nil && w.sh.sched.stop.Load() {
		return false
	}
	w.segments++
	next := e.To
	t := w.c.Type(next)
	val := w.valBuf[len(w.valBuf)-1]
	nval := val != t.Inverting()
	ctrlVal, hasCtrl := t.Controlling()
	onPathCtrl := hasCtrl && val == ctrlVal
	w.sideBuf = w.cr.sideConstraints(w.sideBuf[:0], w.c, w.opt.Sort, next, e.Pin, onPathCtrl)

	mark := w.eng.Mark()
	ok := w.eng.Assign(next, nval)
	if ok {
		nonCtrl := !ctrlVal
		for _, p := range w.sideBuf {
			if !w.eng.Assign(w.c.Fanin(next)[p], nonCtrl) {
				ok = false
				break
			}
		}
	}
	if !ok {
		w.pruned++
		w.eng.BacktrackTo(mark)
		if w.opt.onPrune != nil {
			w.gateBuf = append(w.gateBuf, next)
			w.pinBuf = append(w.pinBuf, e.Pin)
			w.opt.onPrune(w.gateBuf, w.pinBuf, w.valBuf[0])
			w.gateBuf = w.gateBuf[:len(w.gateBuf)-1]
			w.pinBuf = w.pinBuf[:len(w.pinBuf)-1]
		}
		if w.opt.NoPrune {
			w.gateBuf = append(w.gateBuf, next)
			w.pinBuf = append(w.pinBuf, e.Pin)
			w.valBuf = append(w.valBuf, nval)
			okWalk := w.walkRejected(next)
			w.gateBuf = w.gateBuf[:len(w.gateBuf)-1]
			w.pinBuf = w.pinBuf[:len(w.pinBuf)-1]
			w.valBuf = w.valBuf[:len(w.valBuf)-1]
			if !okWalk {
				return false
			}
		}
		return true
	}
	w.gateBuf = append(w.gateBuf, next)
	w.pinBuf = append(w.pinBuf, e.Pin)
	w.valBuf = append(w.valBuf, nval)
	cont := w.dfs(next)
	w.gateBuf = w.gateBuf[:len(w.gateBuf)-1]
	w.pinBuf = w.pinBuf[:len(w.pinBuf)-1]
	w.valBuf = w.valBuf[:len(w.valBuf)-1]
	w.eng.BacktrackTo(mark)
	return cont
}

// walkRejected visits (without checking conditions) every path extension
// under g, so that the NoPrune ablation pays the full enumeration cost.
func (w *walker) walkRejected(g circuit.GateID) bool {
	if w.c.Type(g) == circuit.Output {
		return true
	}
	for _, e := range w.c.Fanout(g) {
		w.segments++
		if !w.walkRejected(e.To) {
			return false
		}
	}
	return true
}

// run enumerates all logical paths launched at pi with final value x on a
// clean engine; it reports false when the walk was stopped by the limit.
func (w *walker) run(pi circuit.GateID, x bool) bool {
	mark := w.eng.Mark()
	defer w.eng.BacktrackTo(mark)
	// (π1): v sets PI(P) to x.
	if !w.eng.Assign(pi, x) {
		return true
	}
	w.gateBuf = append(w.gateBuf[:0], pi)
	w.pinBuf = w.pinBuf[:0]
	w.valBuf = append(w.valBuf[:0], x)
	return w.dfs(pi)
}

// runTask executes one scheduler task: a fresh (PI, transition) walk or a
// stolen mid-DFS branch. The engine may hold leftovers of the previous
// task; both entry points wipe it in O(trail).
func (w *walker) runTask(t task) {
	if t.isRoot {
		w.eng.Reset()
		w.run(t.pi, t.x)
		return
	}
	w.eng.Restore(t.snap)
	w.gateBuf = append(w.gateBuf[:0], t.gates...)
	w.pinBuf = append(w.pinBuf[:0], t.pins...)
	w.valBuf = append(w.valBuf[:0], t.vals...)
	w.extend(t.edge)
}

// runTaskGuarded is runTask with panic isolation: a crash becomes a
// WorkerError carrying the walker's on-path prefix, and the walker stays
// usable (the next task's entry point wipes the engine and buffers).
// After a panic this walker's counters may include a partially-walked
// subtree, which is why any panic degrades the whole run.
func (w *walker) runTaskGuarded(t task, we *workerErrors) {
	defer w.publish() // task boundary: progress is fresh even on tiny circuits
	defer func() {
		if r := recover(); r != nil {
			we.add(&WorkerError{
				Worker:    w.wid,
				PathGates: append([]circuit.GateID(nil), w.gateBuf...),
				Value:     r,
				Stack:     string(debug.Stack()),
			})
		}
	}()
	// Chaos hook: an armed PointWorker rule crashes this task exactly like
	// a real walker bug would, exercising the recovery above end to end.
	// Error-kind rules crash too — a worker has no error channel.
	if err := faultinject.Fire(faultinject.PointWorker); err != nil {
		panic(err)
	}
	w.runTask(t)
}

// Enumerate runs Algorithm 2: it implicitly enumerates all logical paths
// of c in depth-first order from each PI, asserting the criterion's
// side-input requirements and the implied on-path stable values into a
// local implication engine. A contradiction prunes the whole subtree
// (footnote 3: every extension of a failing segment is RD), which is what
// makes circuits with tens of millions of paths tractable. With
// Options.Workers > 1 the depth-first walks are balanced across
// goroutines by work stealing; every count is schedule-independent.
//
// The run is cancellable (Options.Context), time-budgeted
// (Options.Deadline) and resumable (Options.Checkpoint); interruption and
// worker panics are reported through Result.Status rather than the error
// return, which is reserved for invalid inputs.
func Enumerate(c *circuit.Circuit, cr Criterion, opt Options) (*Result, error) {
	if cr == SigmaPi {
		if opt.Sort == nil {
			return nil, fmt.Errorf("core: SigmaPi enumeration requires an input sort")
		}
		if err := opt.Sort.Validate(c); err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}

	start := time.Now()
	an := analysis.For(c)
	ct := an.Counts()
	res := &Result{
		Criterion: cr,
		Total:     an.CopyLogical(),
	}
	// The sort a checkpoint is bound to: only SigmaPi consults one.
	ckptSort := opt.Sort
	if cr != SigmaPi {
		ckptSort = nil
	}

	// Work list: the checkpoint's frontier, or fresh root tasks covering
	// every (PI, transition) pair.
	var tasks []task
	var baseline CheckpointCounters
	if opt.Checkpoint != nil {
		if err := opt.Checkpoint.validateFor(c, cr, ckptSort); err != nil {
			return nil, err
		}
		baseline = opt.Checkpoint.Counters
		tasks = opt.Checkpoint.toTasks()
	} else {
		for _, pi := range c.Inputs() {
			tasks = append(tasks,
				task{isRoot: true, pi: pi, x: false},
				task{isRoot: true, pi: pi, x: true})
		}
	}
	addBaseline := func() {
		res.Selected += baseline.Selected
		res.Segments += baseline.Segments
		res.Pruned += baseline.Pruned
		res.SATRejects += baseline.SATRejects
		if opt.CollectLeadCounts {
			if res.LeadCounts == nil {
				res.LeadCounts = make([]int64, c.NumLeads())
			}
			copy(res.LeadCounts, baseline.LeadCounts)
		}
	}

	// Live progress: rebase the tracker on this pass's resume baseline;
	// finishProgress freezes it on the exact final counters at every
	// return below.
	if opt.Progress != nil {
		opt.Progress.begin(Progress{
			Selected:   baseline.Selected,
			Segments:   baseline.Segments,
			Pruned:     baseline.Pruned,
			SATRejects: baseline.SATRejects,
		})
	}
	finishProgress := func() {
		if opt.Progress != nil {
			opt.Progress.finish(progressOf(res))
		}
	}

	// A resumed run whose baseline already consumed the budget.
	if opt.Limit > 0 && baseline.Selected >= opt.Limit {
		addBaseline()
		res.Status = StatusTruncated
		res.Duration = time.Since(start)
		finishProgress()
		return res, nil
	}

	// Cancellation: a watcher flips one atomic flag that walkers poll at
	// branch-extension granularity (the same cost as the work-stealing
	// stop check).
	var cancelFlag atomic.Bool
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				cancelFlag.Store(true)
			case <-watchDone:
			}
		}()
		defer close(watchDone)
	}

	// The context's timer may still be starved when the walkers stop via
	// the direct deadline poll, so a nil/canceled ctx.Err() with the
	// deadline in the past still classifies as a deadline stop.
	deadline, hasDeadline := ctx.Deadline()
	finishInterrupted := func(fr *frontier) {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) ||
			(hasDeadline && !time.Now().Before(deadline)) {
			res.Status = StatusDeadline
			res.Err = ErrDeadline
		} else {
			res.Status = StatusCanceled
			res.Err = ErrCanceled
		}
		res.Checkpoint = buildCheckpoint(c, cr, ckptSort, res.counters(), fr.tasks)
	}

	// Immediate cancellation: nothing walked, the whole work list is the
	// checkpoint. Checked synchronously so an already-expired context
	// returns deterministically without spinning up workers.
	if ctx.Err() != nil {
		addBaseline()
		if opt.CollectLeadCounts && res.LeadCounts == nil {
			res.LeadCounts = make([]int64, c.NumLeads())
		}
		fr := &frontier{tasks: tasks}
		finishInterrupted(fr)
		res.Duration = time.Since(start)
		finishProgress()
		return res, nil
	}

	workers := opt.Workers
	if workers <= 1 || opt.onPrune != nil {
		// onPrune consumers (RD certificates) rely on DFS discovery order.
		workers = 1
	}

	fr := &frontier{}
	we := &workerErrors{}
	var ws []*walker
	limitStopped := false
	if workers == 1 {
		w := newWalker(an, cr, &opt, opt.OnPath)
		w.cancel = &cancelFlag
		w.ctx = ctx
		if hasDeadline {
			w.deadline = deadline
		}
		w.fr = fr
		if opt.Limit > 0 {
			w.limit = opt.Limit - baseline.Selected
		}
		ws = append(ws, w)
		for i := range tasks {
			if cancelFlag.Load() {
				// Un-walked tasks go to the frontier wholesale.
				fr.add(tasks[i:]...)
				break
			}
			if w.stopped {
				break
			}
			w.runTaskGuarded(tasks[i], we)
		}
		limitStopped = w.stopped
	} else {
		onPath := opt.OnPath
		if onPath != nil {
			var mu sync.Mutex
			inner := opt.OnPath
			onPath = func(lp paths.Logical) {
				mu.Lock()
				defer mu.Unlock()
				inner(lp)
			}
		}
		sh := &shared{
			sched:   newScheduler(workers),
			splitOK: make([]bool, c.NumGates()),
			limit:   opt.Limit,
		}
		sh.selected.Store(baseline.Selected)
		minSplit := big.NewInt(minSplitSuffixes)
		for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
			sh.splitOK[g] = ct.Down(g).Cmp(minSplit) >= 0
		}
		sh.sched.put(tasks...)
		var wg sync.WaitGroup
		ws = make([]*walker, workers)
		for i := range ws {
			w := newWalker(an, cr, &opt, onPath)
			w.sh = sh
			w.wid = i
			w.cancel = &cancelFlag
			w.ctx = ctx
			if hasDeadline {
				w.deadline = deadline
			}
			w.fr = fr
			ws[i] = w
			wg.Add(1)
			go func(w *walker) {
				defer wg.Done()
				for {
					t, ok := sh.sched.get()
					if !ok {
						return
					}
					if w.canceled() {
						fr.add(t) // un-walked: straight to the checkpoint
						continue
					}
					if sh.sched.stop.Load() {
						continue // budget exhausted: drain without walking
					}
					w.runTaskGuarded(t, we)
				}
			}(w)
		}
		wg.Wait()
		limitStopped = sh.sched.stop.Load()
	}

	addBaseline()
	if opt.CollectLeadCounts && res.LeadCounts == nil {
		res.LeadCounts = make([]int64, c.NumLeads())
	}
	for _, w := range ws {
		res.Selected += w.selected
		res.Segments += w.segments
		res.Pruned += w.pruned
		res.SATRejects += w.satRejects
		if res.LeadCounts != nil {
			for i, v := range w.leadCounts {
				res.LeadCounts[i] += v
			}
		}
		// Engines go back to the free-list for the next run (including
		// after a worker panic: every assignment is on the trail, so
		// PutEngine's reset wipes a crashed walk too).
		an.PutEngine(w.eng)
	}

	switch {
	case len(we.errs) > 0:
		// A crashed subtree is partially counted; no checkpoint can make
		// the counters exact again, so the run degrades: the surviving
		// workers' results are reported, RD stays unknown.
		res.Status = StatusDegraded
		res.WorkerErrors = we.errs
		joined := make([]error, len(we.errs))
		for i, e := range we.errs {
			joined[i] = e
		}
		res.Err = errors.Join(joined...)
	case limitStopped:
		res.Status = StatusTruncated
	case cancelFlag.Load() && len(fr.tasks) > 0:
		finishInterrupted(fr)
	default:
		// Either no interruption, or cancellation fired after the last
		// branch was already walked — the counters are complete.
		res.Status = StatusComplete
		res.Complete = true
		res.RD = new(big.Int).Sub(res.Total, big.NewInt(res.Selected))
	}
	res.Duration = time.Since(start)
	finishProgress()
	return res, nil
}
