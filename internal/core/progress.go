package core

import (
	"sync"
	"sync/atomic"
)

// paddedInt64 is an atomic counter padded to its own cache line so
// concurrently publishing walkers never false-share.
type paddedInt64 struct {
	atomic.Int64
	_ [56]byte
}

// Progress is a point-in-time snapshot of one enumeration's counters —
// the paper's Table I quantities (selected paths, DFS segments walked,
// prunes, SAT rejects) observable while the walk is still running
// instead of only after it finishes.
//
// Snapshots are monotone within a pass and eventually exact: while
// walkers run, a snapshot folds per-worker shards that are published at
// cancellation-poll granularity (so it may trail the true counts by up
// to pollEvery extensions per worker); once the pass ends, Final is
// true and the snapshot equals the pass's Result counters bit-exactly.
type Progress struct {
	Selected   int64 `json:"selected"`
	Segments   int64 `json:"segments"`
	Pruned     int64 `json:"pruned"`
	SATRejects int64 `json:"sat_rejects,omitempty"`
	// Final is true once the enumeration pass has ended; the counters
	// are then the pass's exact Result counters (baseline included).
	Final bool `json:"final"`
}

// progressShard is one walker's published counters. Walkers own plain
// int64 counters on the hot path and copy them into their shard with
// atomic stores only at task boundaries and every pollEvery
// cancellation checks — the DFS inner loop gains no atomics and no
// allocations. The padding keeps two walkers' shards off one cache
// line.
type progressShard struct {
	selected   paddedInt64
	segments   paddedInt64
	pruned     paddedInt64
	satRejects paddedInt64
}

// Tracker collects live Progress for one enumeration pass (or a chain
// of passes: each Enumerate call on the same tracker rebases it).
// Create one with NewTracker, hand it to Options.Progress, and call
// Snapshot from any goroutine.
type Tracker struct {
	mu       sync.Mutex
	shards   []*progressShard
	baseline Progress  // checkpoint counters the pass resumed from
	final    *Progress // set when the pass ends; nil while running
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// begin rebases the tracker for a new enumeration pass: the shard list
// resets (walkers of the new pass register fresh shards) and baseline
// carries the checkpoint counters the pass resumes from.
func (t *Tracker) begin(baseline Progress) {
	t.mu.Lock()
	t.shards = t.shards[:0]
	t.baseline = baseline
	t.final = nil
	t.mu.Unlock()
}

// newShard registers one walker's publication slot.
func (t *Tracker) newShard() *progressShard {
	s := &progressShard{}
	t.mu.Lock()
	t.shards = append(t.shards, s)
	t.mu.Unlock()
	return s
}

// finish freezes the tracker on the pass's exact final counters.
func (t *Tracker) finish(p Progress) {
	p.Final = true
	t.mu.Lock()
	t.final = &p
	t.mu.Unlock()
}

// Snapshot folds the live shards (plus the resume baseline) into one
// consistent-enough view: each shard is read atomically, so every
// counter is a value some walker actually published, and once the pass
// ends the snapshot is exact and Final. A nil tracker snapshots zero.
func (t *Tracker) Snapshot() Progress {
	if t == nil {
		return Progress{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.final != nil {
		return *t.final
	}
	p := t.baseline
	for _, s := range t.shards {
		p.Selected += s.selected.Load()
		p.Segments += s.segments.Load()
		p.Pruned += s.pruned.Load()
		p.SATRejects += s.satRejects.Load()
	}
	return p
}

// publish copies the walker's plain counters into its shard; called at
// task boundaries and on the pollEvery cadence, never per extension.
func (w *walker) publish() {
	if w.prog == nil {
		return
	}
	w.prog.selected.Store(w.selected)
	w.prog.segments.Store(w.segments)
	w.prog.pruned.Store(w.pruned)
	w.prog.satRejects.Store(w.satRejects)
}

// progressOf extracts a Result's counters as a Progress value.
func progressOf(res *Result) Progress {
	return Progress{
		Selected:   res.Selected,
		Segments:   res.Segments,
		Pruned:     res.Pruned,
		SATRejects: res.SATRejects,
	}
}
