// Package core implements the paper's primary contribution: fast
// identification of robust dependent (RD) path delay faults without
// circuit unfolding (Sections IV and V).
//
// The entry points are:
//
//   - Enumerate: Algorithm 2 — implicit enumeration of all logical paths
//     with prime-segment pruning, checking one of three sensitization
//     criteria by local implications only. It computes the supersets
//     FS^sup(C), T^sup(C) and LP^sup(σ^π) and, per lead, the counts used
//     by Algorithm 3.
//   - Heuristic1Sort / Heuristic2Sort: the input-sort heuristics of
//     Section V.
//   - Identify: the full pipeline producing the Table I / Table II
//     numbers for a circuit.
package core

import (
	"fmt"

	"rdfault/internal/circuit"
)

// Criterion selects the sensitization conditions the enumerator checks
// for each logical path. All three share (π1) — the input vector sets
// PI(P) to the transition's final value — and (π2) — side inputs of gates
// whose on-path input is non-controlling must be non-controlling. They
// differ in what they require from the side inputs of gates whose on-path
// input has a controlling stable value:
//
//   - FS (Definition 4, Cheng/Chen): nothing. Paths failing this test are
//     functionally unsensitizable and form the paper's FUS baseline.
//   - SigmaPi (Lemma 2): the side inputs with lower π-position than the
//     on-path lead must be non-controlling (condition (π3)). Survivors
//     form LP^sup(σ^π); the complement is the identified RD-set.
//   - NonRobust (Definition 5, Schulz et al.): all side inputs must be
//     non-controlling. Survivors form T^sup.
type Criterion uint8

const (
	FS Criterion = iota
	SigmaPi
	NonRobust
)

// String names the criterion as in the paper.
func (cr Criterion) String() string {
	switch cr {
	case FS:
		return "FS"
	case SigmaPi:
		return "sigma^pi"
	case NonRobust:
		return "T"
	}
	return fmt.Sprintf("Criterion(%d)", uint8(cr))
}

// sideConstraints appends to dst the pins of gate g whose source gates
// must be asserted non-controlling when the path enters g through pin
// with the given on-path stable value. onPathCtrl reports whether that
// value is the controlling value of g. sort is only consulted for
// SigmaPi.
func (cr Criterion) sideConstraints(dst []int, c *circuit.Circuit, sort *circuit.InputSort, g circuit.GateID, pin int, onPathCtrl bool) []int {
	fanin := c.Fanin(g)
	if len(fanin) == 1 {
		return dst
	}
	if !onPathCtrl {
		// (π2)/(FU2)/(NR2): every side input non-controlling.
		for p := range fanin {
			if p != pin {
				dst = append(dst, p)
			}
		}
		return dst
	}
	switch cr {
	case FS:
		// No constraint in the controlling case.
	case SigmaPi:
		// (π3): low-order side inputs non-controlling.
		pos := sort.Pos[g]
		for p := range fanin {
			if p != pin && pos[p] < pos[pin] {
				dst = append(dst, p)
			}
		}
	case NonRobust:
		for p := range fanin {
			if p != pin {
				dst = append(dst, p)
			}
		}
	}
	return dst
}
