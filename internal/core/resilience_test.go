package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
)

// resilienceCircuit is big enough that a walk interrupted after a handful
// of paths leaves a substantial frontier, small enough to finish fast.
func resilienceCircuit(seed int64) *circuit.Circuit {
	return gen.RandomCircuit("resil", gen.RandomOptions{Inputs: 8, Gates: 70, Outputs: 6}, seed)
}

// runToCompletion resumes an interrupted enumeration until it completes,
// interrupting each round after `every` newly delivered paths, and
// round-trips every checkpoint through its JSON encoding. It returns the
// final result and the number of interrupted rounds.
func runToCompletion(t *testing.T, c *circuit.Circuit, cr Criterion, opt Options, every int) (*Result, int) {
	t.Helper()
	rounds := 0
	var cp *Checkpoint
	for {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		opt.Context = ctx
		opt.Checkpoint = cp
		opt.OnPath = func(paths.Logical) {
			n++
			if n == every {
				cancel()
				// Cancellation propagates via the watcher goroutine; give
				// it a beat so the walk reliably interrupts mid-run.
				time.Sleep(2 * time.Millisecond)
			}
		}
		res, err := Enumerate(c, cr, opt)
		cancel()
		if err != nil {
			t.Fatalf("Enumerate round %d: %v", rounds, err)
		}
		switch res.Status {
		case StatusComplete:
			return res, rounds
		case StatusCanceled:
			rounds++
			if res.Checkpoint == nil {
				t.Fatalf("round %d: canceled without checkpoint", rounds)
			}
			if !errors.Is(res.Err, ErrCanceled) {
				t.Fatalf("round %d: Err = %v, want ErrCanceled", rounds, res.Err)
			}
			if res.RD != nil {
				t.Fatalf("round %d: interrupted run reported RD", rounds)
			}
			var buf bytes.Buffer
			if err := res.Checkpoint.Encode(&buf); err != nil {
				t.Fatalf("round %d: encode checkpoint: %v", rounds, err)
			}
			cp, err = DecodeCheckpoint(&buf)
			if err != nil {
				t.Fatalf("round %d: decode checkpoint: %v", rounds, err)
			}
		default:
			t.Fatalf("round %d: unexpected status %v", rounds, res.Status)
		}
		if rounds > 10000 {
			t.Fatal("resume did not converge")
		}
	}
}

func sameCounters(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Selected != want.Selected {
		t.Errorf("%s: Selected = %d, want %d", label, got.Selected, want.Selected)
	}
	if got.Segments != want.Segments {
		t.Errorf("%s: Segments = %d, want %d", label, got.Segments, want.Segments)
	}
	if got.Pruned != want.Pruned {
		t.Errorf("%s: Pruned = %d, want %d", label, got.Pruned, want.Pruned)
	}
	if (got.RD == nil) != (want.RD == nil) {
		t.Fatalf("%s: RD nil-ness differs (%v vs %v)", label, got.RD, want.RD)
	}
	if got.RD != nil && got.RD.Cmp(want.RD) != 0 {
		t.Errorf("%s: RD = %v, want %v", label, got.RD, want.RD)
	}
	if len(got.LeadCounts) != len(want.LeadCounts) {
		t.Fatalf("%s: LeadCounts arity %d vs %d", label, len(got.LeadCounts), len(want.LeadCounts))
	}
	for i := range got.LeadCounts {
		if got.LeadCounts[i] != want.LeadCounts[i] {
			t.Errorf("%s: LeadCounts[%d] = %d, want %d", label, i, got.LeadCounts[i], want.LeadCounts[i])
		}
	}
}

// TestResumeMatchesUninterrupted is the core determinism guarantee: a run
// interrupted (repeatedly) and resumed from its checkpoints must land on
// bit-identical counters to a single uninterrupted run, for serial and
// parallel execution, for criteria with and without a sort.
func TestResumeMatchesUninterrupted(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		c := resilienceCircuit(seed)
		sort := Heuristic1Sort(c)
		cases := []struct {
			name string
			cr   Criterion
			sort *circuit.InputSort
		}{
			{"FS", FS, nil},
			{"SigmaPi", SigmaPi, &sort},
		}
		for _, tc := range cases {
			ref, err := Enumerate(c, tc.cr, Options{Sort: tc.sort, CollectLeadCounts: true})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if ref.Status != StatusComplete || !ref.Complete {
				t.Fatalf("reference run not complete: %v", ref.Status)
			}
			for _, workers := range []int{1, 4, 8} {
				opt := Options{Sort: tc.sort, CollectLeadCounts: true, Workers: workers}
				res, rounds := runToCompletion(t, c, tc.cr, opt, 40)
				if rounds == 0 {
					t.Fatalf("seed %d %s w=%d: run was never interrupted; enlarge the circuit",
						seed, tc.name, workers)
				}
				label := tc.name + "/" + string(rune('0'+workers))
				sameCounters(t, label, res, ref)
			}
		}
	}
}

// TestImmediateCancel: an already-canceled context returns cleanly with
// the entire work list checkpointed, and resuming that checkpoint equals
// a fresh run.
func TestImmediateCancel(t *testing.T) {
	c := resilienceCircuit(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := Enumerate(c, FS, Options{Context: ctx, Workers: workers})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if res.Status != StatusCanceled {
			t.Fatalf("w=%d: status %v, want canceled", workers, res.Status)
		}
		if res.Selected != 0 || res.Segments != 0 {
			t.Fatalf("w=%d: immediate cancel counted work (%d selected, %d segments)",
				workers, res.Selected, res.Segments)
		}
		if res.Checkpoint == nil || res.Checkpoint.Pending() == 0 {
			t.Fatalf("w=%d: immediate cancel produced no checkpoint frontier", workers)
		}
		ref, err := Enumerate(c, FS, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := Enumerate(c, FS, Options{Workers: workers, Checkpoint: res.Checkpoint})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if resumed.Status != StatusComplete {
			t.Fatalf("resume status %v", resumed.Status)
		}
		sameCounters(t, "immediate-cancel resume", resumed, ref)
	}
}

// TestDeadlineStatus: Options.Deadline expiry surfaces as StatusDeadline +
// ErrDeadline with a resumable checkpoint, and resuming (without a
// deadline) completes to the uninterrupted counters.
func TestDeadlineStatus(t *testing.T) {
	// Large enough that a 1ns budget always fires before the walk ends.
	c := gen.RandomCircuit("deadline", gen.RandomOptions{Inputs: 10, Gates: 160, Outputs: 8}, 11)
	ref, err := Enumerate(c, FS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := Enumerate(c, FS, Options{Workers: workers, Deadline: time.Nanosecond})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if res.Status != StatusDeadline {
			t.Fatalf("w=%d: status %v, want deadline", workers, res.Status)
		}
		if !errors.Is(res.Err, ErrDeadline) {
			t.Fatalf("w=%d: Err = %v, want ErrDeadline", workers, res.Err)
		}
		if !res.Status.Interrupted() || res.Checkpoint == nil {
			t.Fatalf("w=%d: no checkpoint on deadline", workers)
		}
		cp := res.Checkpoint
		total := res.counters()
		// Resume (possibly over several deadline rounds) to completion.
		for rounds := 0; ; rounds++ {
			if rounds > 10000 {
				t.Fatal("deadline resume did not converge")
			}
			final, err := Enumerate(c, FS, Options{Workers: workers, Checkpoint: cp})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if final.Status == StatusComplete {
				total = final.counters()
				if total.Selected != ref.Selected || total.Segments != ref.Segments || total.Pruned != ref.Pruned {
					t.Fatalf("w=%d: resumed counters (%d,%d,%d) != reference (%d,%d,%d)",
						workers, total.Selected, total.Segments, total.Pruned,
						ref.Selected, ref.Segments, ref.Pruned)
				}
				if final.RD == nil || final.RD.Cmp(ref.RD) != 0 {
					t.Fatalf("w=%d: resumed RD %v != %v", workers, final.RD, ref.RD)
				}
				break
			}
			cp = final.Checkpoint
		}
	}
}

// TestNoGoroutineLeakAfterTimeout: a deadline-interrupted run must leave
// no watcher or worker goroutines behind, across worker counts.
func TestNoGoroutineLeakAfterTimeout(t *testing.T) {
	c := gen.RandomCircuit("leak", gen.RandomOptions{Inputs: 10, Gates: 160, Outputs: 8}, 5)
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, 4, 8} {
		for i := 0; i < 3; i++ {
			if _, err := Enumerate(c, FS, Options{Workers: workers, Deadline: 100 * time.Microsecond}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerPanicIsolation: a panic inside one walk degrades the run
// instead of crashing the process; the crash report carries the offending
// path prefix, errors.Is matches ErrWorkerPanic, and the remaining work
// still finishes.
func TestWorkerPanicIsolation(t *testing.T) {
	c := resilienceCircuit(9)
	for _, workers := range []int{1, 4} {
		n := 0
		res, err := Enumerate(c, FS, Options{
			Workers: workers,
			OnPath: func(paths.Logical) {
				n++
				if n == 25 {
					panic("injected fault")
				}
			},
		})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if res.Status != StatusDegraded {
			t.Fatalf("w=%d: status %v, want degraded", workers, res.Status)
		}
		if len(res.WorkerErrors) == 0 {
			t.Fatalf("w=%d: no WorkerErrors", workers)
		}
		we := res.WorkerErrors[0]
		if we.Value != "injected fault" || len(we.PathGates) == 0 || we.Stack == "" {
			t.Fatalf("w=%d: incomplete crash report: %+v", workers, we)
		}
		if !errors.Is(res.Err, ErrWorkerPanic) {
			t.Fatalf("w=%d: Err = %v, want ErrWorkerPanic", workers, res.Err)
		}
		var wErr *WorkerError
		if !errors.As(res.Err, &wErr) {
			t.Fatalf("w=%d: Err does not unwrap to *WorkerError", workers)
		}
		if res.RD != nil || res.Checkpoint != nil {
			t.Fatalf("w=%d: degraded run must not report RD or a checkpoint", workers)
		}
		// The degraded run still walked (and counted) the rest.
		if res.Selected < 25 {
			t.Fatalf("w=%d: surviving workers did not finish (%d selected)", workers, res.Selected)
		}
	}
}

// TestCheckpointValidation: a checkpoint refuses to resume against a
// different circuit, criterion or sort, and survives a file round trip.
func TestCheckpointValidation(t *testing.T) {
	c := resilienceCircuit(13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Enumerate(c, FS, Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cp := res.Checkpoint
	if cp == nil {
		t.Fatal("no checkpoint")
	}

	path := filepath.Join(t.TempDir(), "walk.ckpt")
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Pending() != cp.Pending() || rt.CircuitFP != cp.CircuitFP {
		t.Fatal("checkpoint file round trip mangled the frontier")
	}

	other := resilienceCircuit(14)
	if _, err := Enumerate(other, FS, Options{Checkpoint: rt}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different circuit")
	}
	if _, err := Enumerate(c, NonRobust, Options{Checkpoint: rt}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different criterion")
	}
	sort := Heuristic1Sort(c)
	if _, err := Enumerate(c, SigmaPi, Options{Sort: &sort, Checkpoint: rt}); err == nil {
		t.Fatal("resume accepted a checkpoint across criteria/sorts")
	}
	bad := *rt
	bad.Version = CheckpointVersion + 1
	if _, err := Enumerate(c, FS, Options{Checkpoint: &bad}); err == nil {
		t.Fatal("resume accepted an unknown checkpoint version")
	}
}

// TestResumeWithLimit: a resumed run honors the original path budget
// across the interruption (baseline counts against the limit).
func TestResumeWithLimit(t *testing.T) {
	c := resilienceCircuit(21)
	ref, err := Enumerate(c, FS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	limit := ref.Selected / 2
	if limit < 10 {
		t.Skip("circuit too small for a meaningful limit")
	}
	// Interrupt well before the limit, then resume with it.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	res, err := Enumerate(c, FS, Options{
		Context: ctx,
		Limit:   limit,
		OnPath: func(paths.Logical) {
			n++
			if n == 5 {
				cancel()
				time.Sleep(2 * time.Millisecond)
			}
		},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCanceled {
		t.Fatalf("status %v, want canceled", res.Status)
	}
	resumed, err := Enumerate(c, FS, Options{Limit: limit, Checkpoint: res.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Status != StatusTruncated {
		t.Fatalf("resumed status %v, want truncated", resumed.Status)
	}
	if resumed.Selected != limit {
		t.Fatalf("resumed Selected = %d, want limit %d", resumed.Selected, limit)
	}
	// A baseline already past the budget short-circuits.
	past, err := Enumerate(c, FS, Options{Limit: res.Checkpoint.Counters.Selected, Checkpoint: res.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if past.Status != StatusTruncated || past.Selected != res.Checkpoint.Counters.Selected {
		t.Fatalf("past-budget resume: status %v selected %d", past.Status, past.Selected)
	}
}
