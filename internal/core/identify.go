package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"rdfault/internal/circuit"
)

// Heuristic selects how the input sort for the final σ^π enumeration is
// chosen.
type Heuristic uint8

const (
	// HeuristicFUS is the baseline of Cheng/Chen [2]: no stabilizing
	// assignment at all, only functionally unsensitizable paths are
	// declared RD (the FUS column of Table I).
	HeuristicFUS Heuristic = iota
	// Heuristic1 sorts gate inputs by path counts (Section V, Heuristic 1).
	Heuristic1
	// Heuristic2 sorts gate inputs by |FS_c^sup \ T_c^sup| (Heuristic 2 /
	// Algorithm 3).
	Heuristic2
	// Heuristic2Inverse uses the inverse of Heuristic 2's sort — the
	// control experiment of Table I's last column.
	Heuristic2Inverse
	// HeuristicPinOrder uses the netlist pin order as the sort; a cheap
	// arbitrary-sort baseline.
	HeuristicPinOrder
)

// String names the heuristic as in Table I's columns.
func (h Heuristic) String() string {
	switch h {
	case HeuristicFUS:
		return "FUS"
	case Heuristic1:
		return "Heu1"
	case Heuristic2:
		return "Heu2"
	case Heuristic2Inverse:
		return "Heu2-inverse"
	case HeuristicPinOrder:
		return "PinOrder"
	}
	return fmt.Sprintf("Heuristic(%d)", uint8(h))
}

// Report is the outcome of a full RD identification run on one circuit.
type Report struct {
	Circuit   string
	Heuristic Heuristic
	// TotalLogicalPaths is |LP(C)|.
	TotalLogicalPaths *big.Int
	// RD is the number of logical paths identified robust dependent; nil
	// when Complete is false (a truncated run proves nothing about the
	// paths it never visited).
	RD *big.Int
	// Selected is |LP^sup(σ^π)| (or |FS^sup| for HeuristicFUS): the paths
	// that remain to be considered for delay testing.
	Selected int64
	// Sort is the input sort used (unset for HeuristicFUS).
	Sort *circuit.InputSort
	// SortDuration covers computing the sort (for Heuristic 2 this
	// includes the two Algorithm 3 passes); EnumerateDuration covers the
	// final pass; Total is the whole pipeline wall clock.
	SortDuration      time.Duration
	EnumerateDuration time.Duration
	Total             time.Duration
	// Final is the final enumeration pass result.
	Final *Result
	// Status mirrors Final.Status: how the final pass ended. The
	// heuristic sort passes either complete or abort the pipeline with an
	// error, so they never contribute a status of their own.
	Status Status
	// Complete is false if a path limit stopped enumeration.
	Complete bool
}

// RDPercent returns 100*RD/TotalLogicalPaths; 0 when RD is unknown
// (incomplete run) or the circuit is empty.
func (r *Report) RDPercent() float64 {
	if r.RD == nil || r.TotalLogicalPaths.Sign() == 0 {
		return 0
	}
	rd := new(big.Float).SetInt(r.RD)
	tot := new(big.Float).SetInt(r.TotalLogicalPaths)
	q, _ := new(big.Float).Quo(rd, tot).Float64()
	return 100 * q
}

// Identify runs the complete RD identification pipeline on c with the
// given heuristic: choose the input sort, then run the final Algorithm 2
// pass. opt.Sort is ignored (the heuristic provides it); the remaining
// options pass through to the final enumeration.
//
// opt.Context and opt.Deadline bound the whole pipeline, sort passes
// included. The Heuristic 2 sort passes cannot produce a partial sort, so
// interruption during them aborts with ErrDeadline/ErrCanceled; once the
// final pass is reached, interruption degrades gracefully into a Report
// whose Final result carries the partial counters and checkpoint.
// opt.Checkpoint resumes such a final pass: the (deterministic) sort is
// recomputed and the enumeration continues from the frontier.
func Identify(c *circuit.Circuit, h Heuristic, opt Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Circuit: c.Name(), Heuristic: h}

	// One budget for the whole pipeline: fold Deadline into the context
	// here so the sort passes and the final pass share it.
	ctx := opt.Context
	if opt.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
		opt.Context = ctx
		opt.Deadline = 0
	}

	var sortDur time.Duration
	var s circuit.InputSort
	switch h {
	case HeuristicFUS:
		// No sort; final pass checks FS only.
	case Heuristic1:
		t0 := time.Now()
		s = Heuristic1Sort(c)
		sortDur = time.Since(t0)
	case Heuristic2, Heuristic2Inverse:
		t0 := time.Now()
		s2, _, _, err := heuristic2SortCtx(c, opt.Workers, ctx)
		if err != nil {
			return nil, err
		}
		if h == Heuristic2Inverse {
			s2 = s2.Inverse()
		}
		s = s2
		sortDur = time.Since(t0)
	case HeuristicPinOrder:
		s = circuit.PinOrderSort(c)
	default:
		return nil, fmt.Errorf("core: unknown heuristic %v", h)
	}

	cr := SigmaPi
	if h == HeuristicFUS {
		cr = FS
	} else {
		opt.Sort = &s
		rep.Sort = &s
	}
	res, err := Enumerate(c, cr, opt)
	if err != nil {
		return nil, err
	}
	rep.TotalLogicalPaths = res.Total
	rep.RD = res.RD
	rep.Selected = res.Selected
	rep.SortDuration = sortDur
	rep.EnumerateDuration = res.Duration
	rep.Total = time.Since(start)
	rep.Final = res
	rep.Status = res.Status
	rep.Complete = res.Complete
	return rep, nil
}

// String renders the report as one Table I/II style row. An incomplete
// run has no RD count: it shows the selected lower bound and why the walk
// stopped instead.
func (r *Report) String() string {
	if !r.Complete {
		why := "limit reached"
		switch r.Status {
		case StatusDeadline:
			why = "deadline, checkpoint available"
		case StatusCanceled:
			why = "canceled, checkpoint available"
		case StatusDegraded:
			why = "worker panic, counters partial"
		}
		return fmt.Sprintf("%-12s %-13s paths=%v selected>=%d RD=? (%s) sort=%v enum=%v",
			r.Circuit, r.Heuristic, r.TotalLogicalPaths, r.Selected, why,
			r.SortDuration.Round(time.Millisecond), r.EnumerateDuration.Round(time.Millisecond))
	}
	return fmt.Sprintf("%-12s %-13s paths=%v RD=%v (%.2f%%) sort=%v enum=%v",
		r.Circuit, r.Heuristic, r.TotalLogicalPaths, r.RD, r.RDPercent(),
		r.SortDuration.Round(time.Millisecond), r.EnumerateDuration.Round(time.Millisecond))
}
