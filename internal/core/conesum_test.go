package core

import (
	"math/big"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
)

// coneSumLimit keeps the property test on the suite circuits whose
// whole-circuit enumeration is cheap enough for tier-1.
const coneSumLimit = 200_000

// TestConeCountersSumToWholeCircuit pins the sharding invariant the
// fleet coordinator relies on, independent of any fleet machinery: when
// every output cone is enumerated under the *global* input sort
// projected onto it (InputSort.Cone), the per-cone Selected/RD/Total
// counters sum bit-identically to the whole-circuit run. Segments does
// NOT sum to the whole-circuit count — shared DFS prefixes are walked
// once per cone — but the sharded sum must be deterministic (worker
// count cannot change it), which is the weaker invariant the chaos
// suite holds merged runs to.
func TestConeCountersSumToWholeCircuit(t *testing.T) {
	suite := append([]gen.Named{{Paper: "paper-example", C: gen.PaperExample()}}, gen.ISCAS85Suite()...)
	tested := 0
	for _, nc := range suite {
		if paths.NewCounts(nc.C).Logical().Cmp(big.NewInt(coneSumLimit)) > 0 {
			continue
		}
		tested++
		t.Run(nc.Paper, func(t *testing.T) {
			c := nc.C
			sort, _, _, err := Heuristic2SortWorkers(c, 0)
			if err != nil {
				t.Fatal(err)
			}
			whole, err := Enumerate(c, SigmaPi, Options{Sort: &sort})
			if err != nil {
				t.Fatal(err)
			}
			if whole.Status != StatusComplete {
				t.Fatalf("whole-circuit run ended %v", whole.Status)
			}

			sumTotal := new(big.Int)
			sumRD := new(big.Int)
			var sumSelected, sumSegments int64
			var sumSegmentsPar int64
			for _, po := range c.Outputs() {
				cone, mapping, err := c.Cone(po)
				if err != nil {
					t.Fatal(err)
				}
				proj := sort.Cone(mapping)
				res, err := Enumerate(cone, SigmaPi, Options{Sort: &proj})
				if err != nil {
					t.Fatalf("cone %s: %v", cone.Name(), err)
				}
				if res.Status != StatusComplete {
					t.Fatalf("cone %s ended %v", cone.Name(), res.Status)
				}
				sumTotal.Add(sumTotal, res.Total)
				sumRD.Add(sumRD, res.RD)
				sumSelected += res.Selected
				sumSegments += res.Segments

				// The same cone under parallel enumeration: counters are
				// schedule-independent, so the sharded Segments sum is too.
				par, err := Enumerate(cone, SigmaPi, Options{Sort: &proj, Workers: 4})
				if err != nil {
					t.Fatalf("cone %s (4 workers): %v", cone.Name(), err)
				}
				sumSegmentsPar += par.Segments
			}

			if sumTotal.Cmp(whole.Total) != 0 {
				t.Errorf("cone Total sum %s, whole circuit %s", sumTotal, whole.Total)
			}
			if sumSelected != whole.Selected {
				t.Errorf("cone Selected sum %d, whole circuit %d", sumSelected, whole.Selected)
			}
			if sumRD.Cmp(whole.RD) != 0 {
				t.Errorf("cone RD sum %s, whole circuit %s", sumRD, whole.RD)
			}
			if len(c.Outputs()) > 1 && sumSegments < whole.Segments {
				t.Errorf("sharded Segments sum %d below whole-circuit %d", sumSegments, whole.Segments)
			}
			if sumSegmentsPar != sumSegments {
				t.Errorf("sharded Segments sum depends on worker count: serial %d, parallel %d", sumSegments, sumSegmentsPar)
			}
		})
	}
	if tested < 2 {
		t.Fatalf("only %d suite circuits under the %d-path limit; property barely exercised", tested, coneSumLimit)
	}
}

// TestConeFSCountersSum covers the sortless FS baseline: the FUS
// criterion makes per-output decisions too, so its counters shard the
// same way.
func TestConeFSCountersSum(t *testing.T) {
	c := gen.ALU(8, gen.XorNAND)
	whole, err := Enumerate(c, FS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cones, err := c.Cones()
	if err != nil {
		t.Fatal(err)
	}
	sumTotal := new(big.Int)
	sumRD := new(big.Int)
	var sumSelected int64
	for _, cone := range cones {
		res, err := Enumerate(cone, FS, Options{})
		if err != nil {
			t.Fatalf("cone %s: %v", cone.Name(), err)
		}
		sumTotal.Add(sumTotal, res.Total)
		sumRD.Add(sumRD, res.RD)
		sumSelected += res.Selected
	}
	if sumTotal.Cmp(whole.Total) != 0 || sumSelected != whole.Selected || sumRD.Cmp(whole.RD) != 0 {
		t.Errorf("FS cone sums (total=%s selected=%d rd=%s) differ from whole circuit (total=%s selected=%d rd=%s)",
			sumTotal, sumSelected, sumRD, whole.Total, whole.Selected, whole.RD)
	}
}

// The projection identity itself: projecting the global sort onto a
// cone and re-deriving it from the wire encoding agree gate for gate.
func TestConeSortProjectionRoundTrips(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	sort, _, _, err := Heuristic2SortWorkers(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, po := range c.Outputs() {
		cone, mapping, err := c.Cone(po)
		if err != nil {
			t.Fatal(err)
		}
		proj := sort.Cone(mapping)
		back, err := circuit.SortFromNames(cone, proj.ByName(cone))
		if err != nil {
			t.Fatalf("cone %s: %v", cone.Name(), err)
		}
		a, errA := Enumerate(cone, SigmaPi, Options{Sort: &proj})
		b, errB := Enumerate(cone, SigmaPi, Options{Sort: &back})
		if errA != nil || errB != nil {
			t.Fatalf("cone %s: %v / %v", cone.Name(), errA, errB)
		}
		if a.Selected != b.Selected || a.Total.Cmp(b.Total) != 0 {
			t.Fatalf("cone %s: projected sort and wire round-trip disagree (selected %d vs %d)",
				cone.Name(), a.Selected, b.Selected)
		}
	}
}
