package core

import (
	"sync"
	"sync/atomic"

	"rdfault/internal/circuit"
	"rdfault/internal/logic"
)

// task is one unit of enumeration work. A root task enumerates every
// logical path launched at one (PI, transition) pair — the coarse job
// granularity of the pre-work-stealing engine. A stolen task is an
// untaken DFS branch exported by a busy walker: the path prefix, the
// implication-engine state with the prefix's conditions asserted, and the
// single fanout edge to explore. Thieves restore the snapshot and walk
// the subtree exactly as the victim would have, so every counter comes
// out the same regardless of which worker runs which branch.
type task struct {
	// Root task fields (isRoot true): start a fresh (PI, transition) walk.
	pi     circuit.GateID
	x      bool
	isRoot bool

	// Stolen-branch fields: prefix buffers are shared, read-only, among
	// all tasks exported at the same DFS node; edge is the branch to take.
	snap  logic.Snapshot
	gates []circuit.GateID
	pins  []int
	vals  []bool
	edge  circuit.Edge
}

// scheduler is the shared work pool of a parallel Enumerate: a LIFO task
// stack with starvation signalling. Walkers consult the hungry flag (one
// atomic load) at each DFS node; when it is set they split their frontier,
// exporting untaken branches so idle workers can steal near the DFS root,
// where subtrees are biggest. LIFO order keeps stolen prefixes warm.
//
// Termination uses the classic idle-worker count: only a running worker
// can create tasks, so when every worker is blocked on an empty pool the
// enumeration is complete.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []task
	waiting int
	workers int
	done    bool

	// hungry is set when a worker is idle or the pool is running low;
	// walkers then export frontier branches. Cleared once the pool holds
	// at least one task per worker, which self-limits split overhead.
	hungry atomic.Bool
	// stop aborts the run (shared path budget exhausted): workers drain
	// remaining tasks without processing and DFS walks unwind.
	stop atomic.Bool
}

func newScheduler(workers int) *scheduler {
	s := &scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	s.hungry.Store(true)
	return s
}

// refreshHunger recomputes the split signal; callers hold s.mu.
func (s *scheduler) refreshHunger() {
	s.hungry.Store(s.waiting > 0 || len(s.tasks) < s.workers)
}

// put adds tasks to the pool and wakes idle workers.
func (s *scheduler) put(ts ...task) {
	s.mu.Lock()
	s.tasks = append(s.tasks, ts...)
	s.refreshHunger()
	if s.waiting > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// get blocks until a task is available or every worker is idle with an
// empty pool (run complete); the second return is false on completion.
func (s *scheduler) get() (task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done {
			return task{}, false
		}
		if n := len(s.tasks); n > 0 {
			t := s.tasks[n-1]
			s.tasks[n-1] = task{} // release prefix buffers for GC
			s.tasks = s.tasks[:n-1]
			s.refreshHunger()
			return t, true
		}
		s.waiting++
		s.hungry.Store(true)
		if s.waiting == s.workers {
			s.done = true
			s.cond.Broadcast()
			return task{}, false
		}
		s.cond.Wait()
		s.waiting--
	}
}
