package fleet

import (
	"context"
	"path/filepath"
	"testing"

	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/store"
)

// A second fleet run of the same circuit must retire every cone from
// the store before dispatching: zero dispatches, all cones as store
// hits, merged counters bit-identical to the populating run and to the
// single-process pipeline.
func TestFleetStoreHitsSkipDispatch(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	pool := newPool(t, 2)
	cfg := testConfig(pool, 0)
	cfg.Store = st
	c := gen.RippleAdder(6, gen.XorNAND)

	cold, err := Run(context.Background(), cfg, c, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.StoreHits != 0 {
		t.Fatalf("cold run claims %d store hits", cold.Stats.StoreHits)
	}
	if cold.Stats.Dispatches == 0 {
		t.Fatal("cold run dispatched nothing")
	}

	warm, err := Run(context.Background(), cfg, c, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}
	if int(warm.Stats.StoreHits) != warm.Stats.Cones {
		t.Fatalf("warm run: %d/%d cones from the store", warm.Stats.StoreHits, warm.Stats.Cones)
	}
	if warm.Stats.Dispatches != 0 {
		t.Fatalf("warm run dispatched %d times", warm.Stats.Dispatches)
	}
	if warm.Total.Cmp(cold.Total) != 0 || warm.Selected != cold.Selected ||
		warm.RD.Cmp(cold.RD) != 0 || warm.Segments != cold.Segments || warm.Pruned != cold.Pruned {
		t.Fatalf("warm counters diverge from cold:\ncold %s/%d/%s/%d\nwarm %s/%d/%s/%d",
			cold.Total, cold.Selected, cold.RD, cold.Segments,
			warm.Total, warm.Selected, warm.RD, warm.Segments)
	}
	ref, err := core.Identify(c, core.Heuristic1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, warm, ref)

	hits := 0
	for _, ev := range warm.Events {
		if ev.Kind == EvStoreHit {
			hits++
		}
	}
	if hits != warm.Stats.Cones {
		t.Fatalf("%d store.hit events for %d cones", hits, warm.Stats.Cones)
	}
}

// The store is shared infrastructure between the serving layer and the
// fleet: a circuit identified through store.IdentifyThrough warms the
// same cone entries a coordinator consults, because both derive the
// same ConeKey from the same global sort projection.
func TestFleetReusesIdentifyThroughEntries(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.RippleAdder(6, gen.XorNAND)
	direct, err := store.IdentifyThrough(st, c, store.Options{Heuristic: core.Heuristic1})
	if err != nil {
		t.Fatal(err)
	}

	pool := newPool(t, 2)
	cfg := testConfig(pool, 0)
	cfg.Store = st
	res, err := Run(context.Background(), cfg, c, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Dispatches != 0 || int(res.Stats.StoreHits) != res.Stats.Cones {
		t.Fatalf("cross-layer reuse failed: %d dispatches, %d/%d hits",
			res.Stats.Dispatches, res.Stats.StoreHits, res.Stats.Cones)
	}
	if res.Total.Cmp(direct.Total) != 0 || res.Selected != direct.Selected ||
		res.RD.Cmp(direct.RD) != 0 || res.Segments != direct.Segments {
		t.Fatal("fleet merge diverges from the IdentifyThrough result it reused")
	}
}

// An ECO revision through the fleet re-dispatches only what the store
// cannot answer, and the merged counters still match a cold fleet run.
func TestFleetECODeltaDispatchesOnlyFreshCones(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	base := gen.RippleAdder(6, gen.XorNAND)
	revised, _, err := store.MutateKCones(base, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := newPool(t, 2)

	// Cold reference without a store.
	cold, err := Run(context.Background(), testConfig(pool, 0), revised, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(pool, 0)
	cfg.Store = st
	if _, err := Run(context.Background(), cfg, base, core.Heuristic1); err != nil {
		t.Fatal(err)
	}
	warm, err := Run(context.Background(), cfg, revised, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total.Cmp(cold.Total) != 0 || warm.Selected != cold.Selected ||
		warm.RD.Cmp(cold.RD) != 0 || warm.Segments != cold.Segments {
		t.Fatal("ECO fleet run diverges from cold fleet run")
	}
	// The adder's cones share logic, so the edit can move other cones'
	// projected sorts — but at least one cone far from the edit must
	// still be served from the store, and dispatches must shrink.
	if warm.Stats.StoreHits == 0 {
		t.Fatal("ECO run reused nothing")
	}
	if warm.Stats.Dispatches >= cold.Stats.Dispatches {
		t.Fatalf("ECO run dispatched %d cones, cold run %d — store saved nothing",
			warm.Stats.Dispatches, cold.Stats.Dispatches)
	}
}
