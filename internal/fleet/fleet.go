package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/retry"
	"rdfault/internal/serve"
	"rdfault/internal/store"
	"rdfault/internal/telemetry"
)

// ErrNoWorkers: every worker is dead (quarantined and probed out) while
// cones are still unfinished. The run fails typed rather than hanging.
var ErrNoWorkers = errors.New("fleet: no live workers left with cones pending")

// ErrKilled: a coord.kill fault-injection rule fired and the
// coordinator aborted at a phase boundary as if the process died there.
// The job's journal, if any, holds everything durable up to that
// boundary; Resume picks it up.
var ErrKilled = errors.New("fleet: coordinator killed")

// ErrStaleCoordinator re-exports the journal's fencing error: a
// coordinator superseded by a newer term (a standby promotion or a
// restart takeover) gets it on every append and merge path.
var ErrStaleCoordinator = journal.ErrStaleCoordinator

// Config shapes one coordinator run. The zero value (plus a Transport
// and Workers) takes the documented defaults.
type Config struct {
	// Transport carries dispatches; required.
	Transport Transport
	// Workers are the worker addresses (host:port); at least one.
	Workers []string
	// SliceMS bounds each dispatched slice so workers stream checkpoints
	// back; 0 dispatches whole cones (failover then restarts a lost cone
	// from its last completed dispatch, i.e. from scratch).
	SliceMS int64
	// EnumWorkers is the per-slice enumeration parallelism on the worker
	// (0 = worker default).
	EnumWorkers int
	// DispatchTimeout is how long the coordinator waits for a dispatch
	// before abandoning it: the cone's epoch advances, the cone requeues,
	// and the old dispatch's eventual reply is discarded as a zombie
	// (default 60s).
	DispatchTimeout time.Duration
	// FailThreshold is the consecutive-failure count that quarantines a
	// worker (default 3).
	FailThreshold int
	// Backoff paces a worker's retries after a failed dispatch; its
	// Attempts field is ignored (the circuit breaker, not the retry
	// count, bounds failures). Default: 4 attempts' worth of envelope,
	// base 25ms, cap 1s, seeded jitter.
	Backoff retry.Policy
	// Probe paces a quarantined worker's health checks; when its
	// Attempts are exhausted the worker is dead (default 5 attempts,
	// base 50ms, cap 2s).
	Probe retry.Policy
	// ProbeTimeout bounds each individual health probe (default 2s).
	ProbeTimeout time.Duration
	// OnEvent, when set, receives every log event as it happens.
	OnEvent func(Event)
	// Telemetry, when set, receives every event as a JSONL line in the
	// unified structured-log schema. Sharing one log between a
	// coordinator and a serve instance interleaves both layers into one
	// totally-ordered stream.
	Telemetry *telemetry.Log
	// Store, when set, is consulted before dispatching: a cone whose key
	// (shape + projected sort + criterion) has a stored answer is
	// retired at build time without ever reaching a worker, and every
	// fresh complete answer is written back for the next run.
	Store *store.Store
	// Journal, when set, is the run's write-ahead job journal: admission,
	// leases, checkpoints, answers and the seal are appended (and synced)
	// before the corresponding side effect, so Resume can rebuild the
	// run from the journal alone. The caller owns the writer's lifetime.
	// Resume ignores this field — it opens its own writer on the
	// journal it replays.
	Journal *journal.Writer
	// Fence, when set, arbitrates coordinator terms for Resume: a
	// promoted coordinator acquires the next term on it, fencing every
	// writer (an old primary) still appending under a lower one.
	Fence *journal.Fence
	// Metrics, when set, receives takeover/journal/fencing metrics.
	// Share one Metrics across runs — registering twice on one registry
	// panics.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = 60 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Backoff.Base <= 0 {
		c.Backoff.Base = 25 * time.Millisecond
	}
	if c.Backoff.Cap <= 0 {
		c.Backoff.Cap = time.Second
	}
	if c.Probe.Attempts == 0 {
		c.Probe.Attempts = 5
	}
	if c.Probe.Base <= 0 {
		c.Probe.Base = 50 * time.Millisecond
	}
	if c.Probe.Cap <= 0 {
		c.Probe.Cap = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// Stats counts what the run survived.
type Stats struct {
	Cones          int   `json:"cones"`
	Dispatches     int64 `json:"dispatches"`
	Slices         int64 `json:"slices"`
	Failures       int64 `json:"failures"`
	Abandoned      int64 `json:"abandoned"`
	ZombieDiscards int64 `json:"zombie_discards"`
	Restarts       int64 `json:"restarts"`
	Quarantines    int64 `json:"quarantines"`
	Rejoins        int64 `json:"rejoins"`
	DeadWorkers    int64 `json:"dead_workers"`
	// StoreHits counts cones served from the result store without a
	// single dispatch.
	StoreHits int64 `json:"store_hits,omitempty"`
	// JournalRetired counts cones retired by recovery replay from
	// journaled answers — no re-dispatch, no recompute.
	JournalRetired int64 `json:"journal_retired,omitempty"`
	// Fenced counts stale-coordinator rejections this run observed.
	Fenced int64 `json:"fenced,omitempty"`
}

// ConeResult is one cone's final accounting.
type ConeResult struct {
	Name string `json:"name"`
	// Answer is the accepted complete answer (cumulative over the cone's
	// whole slice chain).
	Answer *serve.ConeAnswer `json:"answer"`
	// Slices counts accepted dispatch answers, complete included.
	Slices int `json:"slices"`
	// Restarts counts how many times the cone lost its checkpoint and
	// started over.
	Restarts int `json:"restarts"`
}

// Result is the merged run: counters summed over cones in deterministic
// cone order. Selected/RD/Total are bit-identical to a single-process
// run of the same circuit, heuristic and criterion; Segments is the
// sharded work sum (shared DFS prefixes are walked once per cone, so it
// exceeds the single-process count, but it is the same for every worker
// count and chaos schedule).
type Result struct {
	Circuit   string       `json:"circuit"`
	Heuristic string       `json:"heuristic"`
	Criterion string       `json:"criterion"`
	Total     *big.Int     `json:"-"`
	Selected  int64        `json:"selected"`
	RD        *big.Int     `json:"-"`
	Segments  int64        `json:"segments"`
	Pruned    int64        `json:"pruned"`
	TotalStr  string       `json:"total_paths"`
	RDStr     string       `json:"rd"`
	PerCone   []ConeResult `json:"per_cone"`
	Stats     Stats        `json:"stats"`
	Events    []Event      `json:"-"`
	Duration  time.Duration
}

// job is one cone's mutable dispatch state. epoch implements
// at-most-once accounting: a dispatch captures the epoch it was issued
// under, and a reply whose epoch no longer matches (the coordinator
// abandoned the dispatch and moved on) is discarded.
type job struct {
	idx   int
	name  string
	bench string
	sort  map[string][]int
	// storeKey addresses this cone's result in the store ("" without
	// one); a completed cone writes back under it.
	storeKey string

	mu         sync.Mutex
	epoch      uint64
	checkpoint json.RawMessage
	done       bool
	final      *serve.ConeAnswer
	slices     int
	restarts   int
}

// runMeta carries what the merged Result reports about the run's
// identity. A fresh Run takes it from the circuit; Resume takes it from
// the journaled admit record — recovery never needs the circuit object.
type runMeta struct {
	circuit   string
	heuristic string
}

type coordinator struct {
	cfg       Config
	criterion string
	meta      runMeta
	jw        *journal.Writer
	metrics   *Metrics

	jobs      []*job
	queue     chan *job
	remaining atomic.Int64
	allDone   chan struct{}
	live      atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc

	failOnce sync.Once
	failErr  error

	events *eventLog
	stats  struct {
		dispatches, slices, failures, abandoned atomic.Int64
		zombies, restarts                       atomic.Int64
		quarantines, rejoins, dead, storeHits   atomic.Int64
		retired, fenced                         atomic.Int64
	}

	loopWG sync.WaitGroup // worker loops
	bgWG   sync.WaitGroup // detached dispatches and zombie reapers
}

func newCoordinator(cfg Config, criterion string, jobs []*job) *coordinator {
	return &coordinator{
		cfg:       cfg,
		criterion: criterion,
		jw:        cfg.Journal,
		metrics:   cfg.Metrics,
		jobs:      jobs,
		queue:     make(chan *job, len(jobs)),
		allDone:   make(chan struct{}),
		cancel:    func() {}, // replaced by run; fail is safe before then
		events:    &eventLog{sink: cfg.OnEvent, tl: cfg.Telemetry},
	}
}

// fireKill fires the phase-specific coord.kill subpoint, then the
// generic point, and reports whether a kill rule matched. The subpoints
// let a chaos schedule target exactly one phase even when phases
// interleave across goroutines.
func fireKill(phase string) error {
	if err := faultinject.Fire(faultinject.PointCoordKill + "." + phase); err != nil {
		return err
	}
	return faultinject.Fire(faultinject.PointCoordKill)
}

// killCheck aborts the run at a phase boundary if a coord.kill rule
// fires; true means the caller must stop — the coordinator "died" here,
// with every journal record up to this boundary durable and nothing
// after it.
func (co *coordinator) killCheck(phase string) bool {
	if fireKill(phase) == nil {
		return false
	}
	co.events.add(EvKilled, "", "", phase, nil)
	co.fail(fmt.Errorf("%w at %s", ErrKilled, phase))
	return true
}

// journalAppend writes one write-ahead record (nil journal: a no-op).
// False means the append failed and the run is aborting: a fenced term
// fails typed with ErrStaleCoordinator (the caller must not perform the
// side effect — that is the whole at-most-once argument), any other
// failure aborts because proceeding past an unjournaled side effect
// would make recovery wrong.
func (co *coordinator) journalAppend(kind string, payload any) bool {
	if co.jw == nil {
		return true
	}
	err := co.jw.Append(kind, payload)
	if co.metrics != nil {
		co.metrics.JournalBytes.Set(co.jw.Bytes())
	}
	if err == nil {
		return true
	}
	if errors.Is(err, journal.ErrStaleCoordinator) {
		co.stats.fenced.Add(1)
		if co.metrics != nil {
			co.metrics.Fenced.Inc()
		}
		co.events.add(EvFenced, "", "", err.Error(), nil)
		co.fail(err)
		return false
	}
	co.events.add(EvJournalError, "", "", err.Error(), nil)
	co.fail(fmt.Errorf("fleet: journal append: %w", err))
	return false
}

// Run shards c by output cone and drives the worker pool until every
// cone has a complete answer (or the run fails typed). The input sort
// is computed once, globally, from h, and projected onto each cone —
// per-cone criterion decisions then agree path-for-path with the
// whole-circuit run, which is what makes the merged counters exact.
func Run(ctx context.Context, cfg Config, c *circuit.Circuit, h core.Heuristic) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, errors.New("fleet: no transport")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	start := time.Now()

	if err := fireKill("pre-sort"); err != nil {
		// Died before admitting anything: the journal (if any) holds no
		// job, and recovery correctly starts the run from scratch.
		return nil, fmt.Errorf("%w at pre-sort", ErrKilled)
	}

	criterion := core.FS
	var sort *circuit.InputSort
	if h != core.HeuristicFUS {
		criterion = core.SigmaPi
		s, err := globalSort(c, h)
		if err != nil {
			return nil, err
		}
		sort = &s
	}

	outputs := c.Outputs()
	jobs := make([]*job, 0, len(outputs))
	var storeHits int64
	for _, po := range outputs {
		cone, mapping, err := c.Cone(po)
		if err != nil {
			return nil, err
		}
		j := &job{idx: len(jobs), name: cone.Name()}
		var b strings.Builder
		if err := circuit.WriteBench(&b, cone); err != nil {
			return nil, err
		}
		j.bench = b.String()
		var proj *circuit.InputSort
		if sort != nil {
			p := sort.Cone(mapping)
			proj = &p
			j.sort = p.ByName(cone)
		}
		if cfg.Store != nil {
			j.storeKey = store.ConeKey(cone, proj, criterion)
			if ans := storedConeAnswer(cfg.Store, j.storeKey, cone.Name(), criterion); ans != nil {
				// Retired before the run starts: never queued, never
				// dispatched. The answer is sealed like a worker's, so the
				// merge path treats both provenances identically.
				j.done = true
				j.final = ans
				storeHits++
			}
		}
		jobs = append(jobs, j)
	}

	co := newCoordinator(cfg, criterion.String(), jobs)
	co.meta = runMeta{circuit: c.Name(), heuristic: h.String()}
	co.stats.storeHits.Store(storeHits)

	// Journal admission before anything else happens: the admit record
	// (cones, benches, projected sorts) is what Resume rebuilds from,
	// and the store-retired answers follow it so a resumed journal
	// retires them without consulting the store again.
	if co.jw != nil {
		ar := admitRecord{
			Circuit:   co.meta.circuit,
			Heuristic: co.meta.heuristic,
			Criterion: co.criterion,
			SliceMS:   cfg.SliceMS,
			Cones:     make([]admitCone, 0, len(jobs)),
		}
		for _, j := range jobs {
			ar.Cones = append(ar.Cones, admitCone{Name: j.name, Bench: j.bench, Sort: j.sort, StoreKey: j.storeKey})
		}
		if err := co.jw.Append(journal.KindAdmit, ar); err != nil {
			return nil, fmt.Errorf("fleet: journal admission: %w", err)
		}
		for _, j := range jobs {
			if !j.done {
				continue
			}
			rec := answerRecord{Cone: j.idx, Name: j.name, Source: answerSourceStore, Answer: j.final}
			if err := co.jw.Append(journal.KindAnswer, rec); err != nil {
				return nil, fmt.Errorf("fleet: journal admission: %w", err)
			}
		}
		if co.metrics != nil {
			co.metrics.JournalBytes.Set(co.jw.Bytes())
		}
	}
	for _, j := range jobs {
		if j.done {
			co.events.add(EvStoreHit, "", j.name, "served from result store",
				map[string]int64{"selected": j.final.Selected, "segments": j.final.Segments})
		}
	}
	return co.run(ctx, start)
}

// run drives the coordinator from built jobs to merged result: the
// shared back half of Run and Resume.
func (co *coordinator) run(ctx context.Context, start time.Time) (*Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	co.ctx = runCtx
	co.cancel = cancel

	pending := 0
	for _, j := range co.jobs {
		if !j.done {
			pending++
		}
	}
	co.remaining.Store(int64(pending))
	if pending == 0 {
		close(co.allDone)
	}
	for _, j := range co.jobs {
		if !j.done {
			co.queue <- j
		}
	}
	co.live.Store(int64(len(co.cfg.Workers)))
	for i, w := range co.cfg.Workers {
		co.loopWG.Add(1)
		go co.workerLoop(w, i)
	}

	select {
	case <-co.allDone:
	case <-runCtx.Done():
	}
	cancel()
	co.loopWG.Wait()
	co.bgWG.Wait()

	if co.failErr != nil {
		return nil, co.failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-co.allDone:
	default:
		return nil, errors.New("fleet: run ended with cones unfinished")
	}
	return co.merge(start)
}

// fail records the run's terminal error once and aborts everything.
func (co *coordinator) fail(err error) {
	co.failOnce.Do(func() {
		co.failErr = err
		co.cancel()
	})
}

// jobDone retires one cone; the last one ends the run.
func (co *coordinator) jobDone() {
	if co.remaining.Add(-1) == 0 {
		close(co.allDone)
	}
}

// requeue puts a cone back on the queue. Each job has exactly one
// ownership token (queued, or held by the dispatching loop), so the
// buffered channel can never overflow.
func (co *coordinator) requeue(j *job) {
	select {
	case co.queue <- j:
	default:
		// Unreachable while the single-ownership invariant holds; failing
		// loudly beats deadlocking silently.
		co.fail(fmt.Errorf("fleet: requeue overflow on cone %s", j.name))
	}
}

// workerLoop owns one worker: it pulls cones, dispatches them, trips
// the circuit breaker after FailThreshold consecutive failures, probes
// the worker back to health or declares it dead.
func (co *coordinator) workerLoop(worker string, seed int) {
	defer co.loopWG.Done()
	backoff := co.cfg.Backoff
	backoff.Seed = int64(seed + 1) // distinct jitter stream per worker
	consec := 0
	for {
		select {
		case <-co.allDone:
			return
		case <-co.ctx.Done():
			return
		case j := <-co.queue:
			if co.dispatch(worker, j) {
				consec = 0
				continue
			}
			consec++
			if consec >= co.cfg.FailThreshold {
				co.stats.quarantines.Add(1)
				co.events.add(EvQuarantine, worker, "", fmt.Sprintf("%d consecutive failures", consec), nil)
				if co.probe(worker) {
					consec = 0
					co.stats.rejoins.Add(1)
					co.events.add(EvRejoin, worker, "", "", nil)
					continue
				}
				co.stats.dead.Add(1)
				co.events.add(EvDead, worker, "", "health probes exhausted", nil)
				if co.live.Add(-1) == 0 && co.remaining.Load() > 0 {
					co.fail(ErrNoWorkers)
				}
				return
			}
			if d := backoff.Backoff(consec - 1); d > 0 {
				select {
				case <-time.After(d):
				case <-co.ctx.Done():
					return
				}
			}
		}
	}
}

// dispatch runs one cone slice on worker and reports whether the worker
// behaved (true resets the failure streak). The cone itself is always
// accounted for exactly once: completed, requeued with progress, or
// requeued after reclaim.
func (co *coordinator) dispatch(worker string, j *job) bool {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return true
	}
	epoch := j.epoch
	req := serve.ConeRequest{
		Bench:      j.bench,
		Name:       j.name,
		Criterion:  co.criterion,
		Sort:       j.sort,
		Checkpoint: j.checkpoint,
		SliceMS:    co.cfg.SliceMS,
		Workers:    co.cfg.EnumWorkers,
	}
	j.mu.Unlock()

	// The lease is journaled before the dispatch leaves: recovery reads
	// the (cone, epoch) pairs as a floor for its own epochs, and the
	// audit requires every merged answer to have had one.
	if !co.journalAppend(journal.KindLease, leaseRecord{
		Cone: j.idx, Name: j.name, Worker: worker, Epoch: epoch,
		DeadlineMS: time.Now().Add(co.cfg.DispatchTimeout).UnixMilli(),
	}) {
		return false
	}
	if co.killCheck("mid-dispatch") {
		// Died with a lease journaled but the dispatch never sent: the
		// recovered coordinator re-leases the cone under a higher epoch.
		return false
	}

	co.stats.dispatches.Add(1)
	co.events.add(EvDispatch, worker, j.name, "", nil)

	// The dispatch runs detached so an arbitrarily late reply cannot
	// wedge the loop; the reply channel is buffered, so the goroutine
	// never leaks even if nobody is left reading.
	type reply struct {
		ans *serve.ConeAnswer
		err error
	}
	ch := make(chan reply, 1)
	co.bgWG.Add(1)
	go func() {
		defer co.bgWG.Done()
		ans, err := co.cfg.Transport.Dispatch(co.ctx, worker, req)
		ch <- reply{ans, err}
	}()

	timer := time.NewTimer(co.cfg.DispatchTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return co.dispatchError(worker, j, epoch, r.err)
		}
		return co.apply(worker, j, epoch, r.ans)
	case <-timer.C:
		// Abandon: advance the epoch so the in-flight dispatch's eventual
		// reply is provably stale, reclaim the cone, and leave a reaper
		// to log the zombie.
		j.mu.Lock()
		j.epoch++
		bumped := j.epoch
		j.mu.Unlock()
		// Bump-then-journal is safe here (unlike every other record, which
		// flushes before its side effect): epochs only gate liveness inside
		// this coordinator's life, and recovery re-bumps past the journaled
		// maximum regardless, so a crash between the bump and the append
		// cannot admit a zombie.
		co.journalAppend(journal.KindEpoch, epochRecord{Cone: j.idx, Epoch: bumped})
		co.stats.abandoned.Add(1)
		co.events.add(EvAbandon, worker, j.name, co.cfg.DispatchTimeout.String(), nil)
		co.requeue(j)
		co.bgWG.Add(1)
		go func() {
			defer co.bgWG.Done()
			r := <-ch
			co.stats.zombies.Add(1)
			detail := "late reply"
			if r.err != nil {
				detail = "late error: " + r.err.Error()
			}
			co.events.add(EvZombie, worker, j.name, detail, nil)
		}()
		return false
	case <-co.ctx.Done():
		return false
	}
}

// apply accounts one answered dispatch. The epoch check discards
// replies from abandoned dispatches; the done check makes completion
// at-most-once even if a cone was ever dispatched twice.
func (co *coordinator) apply(worker string, j *job, epoch uint64, ans *serve.ConeAnswer) bool {
	j.mu.Lock()
	if j.done || j.epoch != epoch {
		j.mu.Unlock()
		co.stats.zombies.Add(1)
		co.events.add(EvZombie, worker, j.name, "stale epoch", nil)
		return true
	}
	switch ans.Status {
	case "complete":
		// Flush the answer before marking the cone done: if we die between
		// the append and the merge, recovery retires the cone from the
		// journal; if we die before the append, recovery re-dispatches it.
		// Either way the answer is merged exactly once. A fenced append
		// (ErrStaleCoordinator) lands here too — the cone stays not-done,
		// so a superseded primary can never double-merge it.
		if !co.journalAppend(journal.KindAnswer, answerRecord{
			Cone: j.idx, Name: j.name, Epoch: epoch,
			Source: answerSourceWorker, Worker: worker, Answer: ans,
		}) {
			j.mu.Unlock()
			return false
		}
		if co.killCheck("mid-merge") {
			j.mu.Unlock()
			return false
		}
		j.done = true
		j.final = ans
		j.slices++
		j.mu.Unlock()
		co.events.add(EvComplete, worker, j.name, fmt.Sprintf("selected=%d rd=%s", ans.Selected, ans.RD),
			map[string]int64{"selected": ans.Selected, "segments": ans.Segments, "pruned": ans.Pruned})
		if co.cfg.Store != nil && j.storeKey != "" {
			// Best effort: a lost write costs the next run dispatches, not
			// correctness.
			if err := co.cfg.Store.PutCone(j.storeKey, &store.ConeRecord{
				Cone:       j.name,
				TotalPaths: ans.TotalPaths,
				Selected:   ans.Selected,
				RD:         ans.RD,
				Segments:   ans.Segments,
				Pruned:     ans.Pruned,
			}); err != nil {
				co.events.add(EvFailure, worker, j.name, "store write: "+err.Error(), nil)
			}
		}
		co.jobDone()
		return true
	case "deadline", "canceled":
		if len(ans.Checkpoint) == 0 {
			j.mu.Unlock()
			return co.dispatchError(worker, j, epoch, fmt.Errorf("%w: interrupted slice without checkpoint", ErrCorruptResponse))
		}
		if !co.journalAppend(journal.KindSlice, sliceRecord{
			Cone: j.idx, Epoch: epoch, Checkpoint: ans.Checkpoint,
		}) {
			j.mu.Unlock()
			return false
		}
		j.checkpoint = ans.Checkpoint
		j.slices++
		j.mu.Unlock()
		co.stats.slices.Add(1)
		co.events.add(EvSlice, worker, j.name, "checkpoint streamed",
			map[string]int64{"selected": ans.Selected, "segments": ans.Segments, "pruned": ans.Pruned})
		co.requeue(j)
		return true
	default:
		j.mu.Unlock()
		return co.dispatchError(worker, j, epoch, fmt.Errorf("%w: unknown slice status %q", ErrCorruptResponse, ans.Status))
	}
}

// dispatchError reclaims the cone after a failed dispatch and picks the
// recovery: 422 drops the checkpoint and restarts the cone, other 4xx
// is a permanent misconfiguration that fails the run, everything else
// (network, 429, 5xx, corruption) is transient and counts against the
// worker's breaker.
func (co *coordinator) dispatchError(worker string, j *job, epoch uint64, err error) bool {
	var remote *RemoteError
	if errors.As(err, &remote) {
		switch {
		case remote.Code == 422:
			j.mu.Lock()
			if !j.done && j.epoch == epoch {
				j.checkpoint = nil
				j.restarts++
			}
			j.mu.Unlock()
			co.stats.restarts.Add(1)
			co.events.add(EvRestart, worker, j.name, err.Error(), nil)
			co.requeue(j)
			return true // the worker is healthy; it is our checkpoint that was bad
		case remote.Code >= 400 && remote.Code < 500 && remote.Code != 429:
			co.fail(fmt.Errorf("fleet: cone %s permanently rejected: %w", j.name, err))
			co.requeue(j)
			return false
		}
	}
	co.stats.failures.Add(1)
	co.events.add(EvFailure, worker, j.name, err.Error(), nil)
	co.requeue(j)
	return false
}

// probe drives the quarantined worker's health checks under the Probe
// policy; true means the worker may take work again.
func (co *coordinator) probe(worker string) bool {
	p := co.cfg.Probe
	err := p.Do(co.ctx, func(int) error {
		ctx, cancel := context.WithTimeout(co.ctx, co.cfg.ProbeTimeout)
		defer cancel()
		return co.cfg.Transport.Healthz(ctx, worker)
	})
	return err == nil
}

// merge folds the per-cone answers, in cone order, into the run result
// and journals the seal.
func (co *coordinator) merge(start time.Time) (*Result, error) {
	if err := fireKill("pre-seal"); err != nil {
		// Every answer is journaled; only the seal is missing. A resumed
		// journal merges without a single dispatch.
		co.events.add(EvKilled, "", "", "pre-seal", nil)
		return nil, fmt.Errorf("%w at pre-seal", ErrKilled)
	}
	res := &Result{
		Circuit:   co.meta.circuit,
		Heuristic: co.meta.heuristic,
		Criterion: co.criterion,
		Total:     new(big.Int),
		RD:        new(big.Int),
		Duration:  time.Since(start),
	}
	for _, j := range co.jobs {
		a := j.final
		if a == nil {
			return nil, fmt.Errorf("fleet: cone %s finished without an answer", j.name)
		}
		if err := addDecimal(res.Total, a.TotalPaths); err != nil {
			return nil, fmt.Errorf("fleet: cone %s: %v", j.name, err)
		}
		if err := addDecimal(res.RD, a.RD); err != nil {
			return nil, fmt.Errorf("fleet: cone %s: %v", j.name, err)
		}
		res.Selected += a.Selected
		res.Segments += a.Segments
		res.Pruned += a.Pruned
		res.PerCone = append(res.PerCone, ConeResult{
			Name: j.name, Answer: a, Slices: j.slices, Restarts: j.restarts,
		})
	}
	res.TotalStr = res.Total.String()
	res.RDStr = res.RD.String()
	if co.jw != nil {
		ok := co.journalAppend(journal.KindSeal, sealRecord{
			Circuit:    co.meta.circuit,
			TotalPaths: res.TotalStr,
			Selected:   res.Selected,
			RD:         res.RDStr,
			Segments:   res.Segments,
			Pruned:     res.Pruned,
			Cones:      len(co.jobs),
		})
		if !ok {
			// A merge a fenced coordinator cannot journal is a merge it must
			// not report: the promoted term owns the job now.
			return nil, co.failErr
		}
		co.events.add(EvJournalSeal, "", "", "", map[string]int64{
			"bytes": co.jw.Bytes(), "records": int64(co.jw.Seq()),
		})
	}
	res.Stats = Stats{
		Cones:          len(co.jobs),
		Dispatches:     co.stats.dispatches.Load(),
		Slices:         co.stats.slices.Load(),
		Failures:       co.stats.failures.Load(),
		Abandoned:      co.stats.abandoned.Load(),
		ZombieDiscards: co.stats.zombies.Load(),
		Restarts:       co.stats.restarts.Load(),
		Quarantines:    co.stats.quarantines.Load(),
		Rejoins:        co.stats.rejoins.Load(),
		DeadWorkers:    co.stats.dead.Load(),
		StoreHits:      co.stats.storeHits.Load(),
		JournalRetired: co.stats.retired.Load(),
		Fenced:         co.stats.fenced.Load(),
	}
	res.Events = co.events.snapshot()
	return res, nil
}

// storedConeAnswer looks one cone up in the result store and, on a
// valid hit, synthesizes the sealed complete ConeAnswer a worker would
// have returned. Any store failure — miss, unreadable entry, corrupt
// entry, unparsable counters — returns nil and the cone is dispatched
// normally: the store can save dispatches, never corrupt a run.
func storedConeAnswer(st *store.Store, key, name string, cr core.Criterion) *serve.ConeAnswer {
	rec, err := st.GetCone(key)
	if err != nil {
		return nil
	}
	if _, ok := new(big.Int).SetString(rec.TotalPaths, 10); !ok {
		return nil
	}
	if _, ok := new(big.Int).SetString(rec.RD, 10); !ok {
		return nil
	}
	ans := &serve.ConeAnswer{
		Status:     "complete",
		Circuit:    name,
		Criterion:  cr.String(),
		TotalPaths: rec.TotalPaths,
		Selected:   rec.Selected,
		RD:         rec.RD,
		Segments:   rec.Segments,
		Pruned:     rec.Pruned,
	}
	ans.Seal()
	return ans
}

// globalSort computes the whole-circuit input sort h prescribes — the
// one sort every cone's projection derives from.
func globalSort(c *circuit.Circuit, h core.Heuristic) (circuit.InputSort, error) {
	switch h {
	case core.Heuristic1:
		return core.Heuristic1Sort(c), nil
	case core.Heuristic2, core.Heuristic2Inverse:
		s, _, _, err := core.Heuristic2SortWorkers(c, 0)
		if err != nil {
			return circuit.InputSort{}, err
		}
		if h == core.Heuristic2Inverse {
			s = s.Inverse()
		}
		return s, nil
	case core.HeuristicPinOrder:
		return circuit.PinOrderSort(c), nil
	}
	return circuit.InputSort{}, fmt.Errorf("fleet: heuristic %v has no input sort", h)
}

// addDecimal folds a worker's decimal counter into sum.
func addDecimal(sum *big.Int, s string) error {
	if s == "" {
		return nil
	}
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return fmt.Errorf("bad decimal counter %q", s)
	}
	sum.Add(sum, v)
	return nil
}
