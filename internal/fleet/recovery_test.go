// Recovery and fencing at close range: resume of sealed and mid-run
// journals, the in-process term fence, store consultation at takeover,
// and the append-failure abort discipline.
package fleet

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/gen"
	"rdfault/internal/store"
)

// journaledRun runs the chaos circuit with a journal at path, arming
// rules for the duration, and returns the run error.
func journaledRun(t *testing.T, cfg Config, path string, rules ...faultinject.Rule) (*Result, error) {
	t.Helper()
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	restore := faultinject.Activate(faultinject.NewPlan(rules...))
	defer restore()
	cfg.Journal = jw
	return Run(context.Background(), cfg, gen.RippleAdder(4, gen.XorNAND), core.Heuristic2)
}

// A sealed journal resumes to the identical result without touching a
// single worker: every cone retires from its journaled answer.
func TestResumeSealedJournalMergesWithoutDispatch(t *testing.T) {
	ref := chaosRef(t)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")

	first, err := journaledRun(t, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, first, ref)

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	if res.Segments != first.Segments {
		t.Fatalf("resumed segments %d, original %d", res.Segments, first.Segments)
	}
	if res.Stats.Dispatches != 0 {
		t.Fatalf("sealed resume dispatched %d times; the journal alone should merge", res.Stats.Dispatches)
	}
	if res.Stats.JournalRetired != int64(res.Stats.Cones) {
		t.Fatalf("retired %d of %d cones from the journal", res.Stats.JournalRetired, res.Stats.Cones)
	}
	var sawSealedTakeover bool
	for _, ev := range res.Events {
		if ev.Kind == EvTakeover && ev.Detail == "sealed" {
			sawSealedTakeover = true
		}
	}
	if !sawSealedTakeover {
		t.Fatal("no takeover event marking the journal sealed")
	}
}

// A mid-run journal re-dispatches ONLY the unretired cones: no cone
// with a journaled answer appears in the resumed run's dispatch log.
func TestResumeRedispatchesOnlyUnretiredCones(t *testing.T) {
	ref := chaosRef(t)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")

	_, err := journaledRun(t, cfg, path, faultinject.Rule{
		Point: faultinject.PointCoordKill + ".mid-merge",
		Kind:  faultinject.KindError, Hit: 2, Count: 1,
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("primary survived: %v", err)
	}

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	if res.Stats.JournalRetired < 2 {
		t.Fatalf("retired %d cones, the kill guaranteed at least 2 journaled answers", res.Stats.JournalRetired)
	}
	retired := map[string]bool{}
	for _, ev := range res.Events {
		if ev.Kind == EvJournalRetire {
			retired[ev.Cone] = true
		}
	}
	for _, ev := range res.Events {
		if ev.Kind == EvDispatch && retired[ev.Cone] {
			t.Fatalf("cone %s was retired from the journal AND re-dispatched", ev.Cone)
		}
	}
}

// The in-process fence: a zombie coordinator whose term is superseded
// mid-run dies typed on its next append, counts the rejection, and the
// successor resumes to drift-free counters.
func TestZombieCoordinatorFencedInProcess(t *testing.T) {
	ref := chaosRef(t)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")

	fence := journal.NewFence()
	term := fence.Acquire(0)
	jw, err := journal.Create(path, term, fence)
	if err != nil {
		t.Fatal(err)
	}

	// Supersede the primary's term the moment its first cone completes:
	// the fence lands synchronously in the event sink, so the next
	// append — at latest, the seal — is rejected.
	var deposed sync.Once
	var events []Event
	var mu sync.Mutex
	pcfg := cfg
	pcfg.Journal = jw
	pcfg.Fence = fence
	pcfg.OnEvent = func(ev Event) {
		if ev.Kind == EvComplete {
			deposed.Do(func() { fence.Acquire(0) })
		}
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	_, runErr := Run(context.Background(), pcfg, gen.RippleAdder(4, gen.XorNAND), core.Heuristic2)
	jw.Close()
	if !errors.Is(runErr, ErrStaleCoordinator) {
		t.Fatalf("superseded primary died with %v, want ErrStaleCoordinator", runErr)
	}
	mu.Lock()
	fenced := 0
	for _, ev := range events {
		if ev.Kind == EvFenced {
			fenced++
		}
	}
	mu.Unlock()
	if fenced == 0 {
		t.Fatal("no coord.fenced event from the superseded primary")
	}

	// The successor acquires the next term on the SAME fence — proof the
	// fence hands over cleanly — and finishes the job.
	rcfg := cfg
	rcfg.Fence = fence
	res, err := Resume(context.Background(), rcfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	coordAudit(t, path)
}

// A failed journal append aborts the run rather than proceed past an
// unjournaled side effect — and the journal that remains still resumes
// to the right answer.
func TestJournalAppendFailureAbortsRun(t *testing.T) {
	ref := chaosRef(t)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")

	_, err := journaledRun(t, cfg, path, faultinject.Rule{
		Point: faultinject.PointCoordJournalLatency,
		Kind:  faultinject.KindError, Hit: 3, Count: 1,
	})
	if err == nil || errors.Is(err, ErrKilled) {
		t.Fatalf("run survived a failed append: %v", err)
	}

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	coordAudit(t, path)
}

// Takeover consults the result store before re-dispatching: a cone with
// no journaled answer but a warm store entry retires from the store,
// and the journal records the store-sourced answer.
func TestResumeConsultsStoreForUnansweredCones(t *testing.T) {
	ref := chaosRef(t)
	st, err := store.Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	cfg.Store = st
	path := filepath.Join(t.TempDir(), "coord.journal")

	// Kill the primary on a COLD store (its journal carries store keys
	// but no store answers exist yet), then warm the store with a clean
	// run of the same job. Takeover finds every unanswered cone in the
	// store and never dispatches.
	_, err = journaledRun(t, cfg, path, faultinject.Rule{
		Point: faultinject.PointCoordKill + ".mid-dispatch",
		Kind:  faultinject.KindError, Hit: 1, Count: 1,
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("primary survived: %v", err)
	}
	warmPath := filepath.Join(t.TempDir(), "warm.journal")
	if _, err := journaledRun(t, cfg, warmPath); err != nil {
		t.Fatal(err)
	}

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	// Any cone the dying primary managed to answer retires from the
	// journal; every other cone retires from the store. Nothing runs.
	if res.Stats.StoreHits == 0 {
		t.Fatal("takeover consulted the store for nothing")
	}
	if got := res.Stats.StoreHits + res.Stats.JournalRetired; got != int64(res.Stats.Cones) {
		t.Fatalf("store hits %d + journal retired %d != %d cones",
			res.Stats.StoreHits, res.Stats.JournalRetired, res.Stats.Cones)
	}
	if res.Stats.Dispatches != 0 {
		t.Fatalf("takeover dispatched %d times with a fully warm store", res.Stats.Dispatches)
	}
	coordAudit(t, path)
}

// Resume's preconditions fail typed: an empty journal has no job, and a
// caller-supplied writer is a misuse (Resume opens its own).
func TestResumePreconditions(t *testing.T) {
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "empty.journal")
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	jw.Close()
	if _, err := Resume(context.Background(), cfg, path); !errors.Is(err, ErrNoJournaledJob) {
		t.Fatalf("empty journal resumed: %v", err)
	}

	bad := cfg
	bad.Journal, err = journal.Create(filepath.Join(t.TempDir(), "own.journal"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Journal.Close()
	if _, err := Resume(context.Background(), bad, path); err == nil {
		t.Fatal("Resume accepted a caller-supplied journal writer")
	}
}
