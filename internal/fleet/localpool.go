package fleet

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"rdfault/internal/serve"
)

// LocalPool runs N in-process rdserved workers on loopback listeners —
// the backing for `rdfleet -local N` and for the chaos suite, whose
// kill switch needs to tear a worker down abruptly (listener closed,
// in-flight work gone) rather than gracefully.
type LocalPool struct {
	mu      sync.Mutex
	workers []*localWorker
}

type localWorker struct {
	addr   string
	srv    *serve.Server
	hsrv   *http.Server
	ln     net.Listener
	killed bool
}

// NewLocalPool starts n workers, each its own serve.Server behind its
// own 127.0.0.1:0 listener.
func NewLocalPool(n int, cfg serve.Config) (*LocalPool, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: local pool needs at least 1 worker, got %d", n)
	}
	p := &LocalPool{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			p.Close()
			return nil, err
		}
		srv := serve.New(cfg)
		hsrv := &http.Server{Handler: srv.Handler()}
		w := &localWorker{addr: ln.Addr().String(), srv: srv, hsrv: hsrv, ln: ln}
		go hsrv.Serve(ln)
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// Addrs lists every worker's address, killed ones included (the
// coordinator is supposed to discover their death the hard way).
func (p *LocalPool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	addrs := make([]string, len(p.workers))
	for i, w := range p.workers {
		addrs[i] = w.addr
	}
	return addrs
}

// Kill tears the worker at addr down abruptly: open connections are
// closed mid-flight and in-progress slices die with the process state —
// exactly what a killed node looks like from the coordinator. Returns
// false if no live worker has that address.
func (p *LocalPool) Kill(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.addr == addr && !w.killed {
			w.killed = true
			w.hsrv.Close()
			w.srv.Close()
			return true
		}
	}
	return false
}

// KillIndex kills the i-th worker; see Kill.
func (p *LocalPool) KillIndex(i int) bool {
	p.mu.Lock()
	if i < 0 || i >= len(p.workers) {
		p.mu.Unlock()
		return false
	}
	addr := p.workers[i].addr
	p.mu.Unlock()
	return p.Kill(addr)
}

// Killed reports how many workers have been killed.
func (p *LocalPool) Killed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.killed {
			n++
		}
	}
	return n
}

// Drain gracefully drains every still-live worker in parallel (used by
// rdfleet on shutdown); killed workers are skipped.
func (p *LocalPool) Drain(timeout time.Duration) {
	p.mu.Lock()
	ws := append([]*localWorker(nil), p.workers...)
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range ws {
		p.mu.Lock()
		killed := w.killed
		p.mu.Unlock()
		if killed {
			continue
		}
		wg.Add(1)
		go func(w *localWorker) {
			defer wg.Done()
			w.srv.Drain(timeout)
			w.hsrv.Close()
		}(w)
	}
	wg.Wait()
}

// Close kills every remaining worker.
func (p *LocalPool) Close() {
	p.mu.Lock()
	ws := append([]*localWorker(nil), p.workers...)
	p.mu.Unlock()
	for _, w := range ws {
		p.Kill(w.addr)
	}
}
