package fleet

import (
	"context"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/retry"
	"rdfault/internal/serve"
)

// newPool starts n loopback workers and registers teardown.
func newPool(t *testing.T, n int) *LocalPool {
	t.Helper()
	pool, err := NewLocalPool(n, serve.Config{Workers: 1, MaxConeInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// testConfig wires a coordinator to the pool with fast, deterministic
// recovery policies.
func testConfig(pool *LocalPool, sliceMS int64) Config {
	tr := &HTTPTransport{Kill: func(addr string) { pool.Kill(addr) }}
	return Config{
		Transport:       tr,
		Workers:         pool.Addrs(),
		SliceMS:         sliceMS,
		EnumWorkers:     1,
		DispatchTimeout: 30 * time.Second,
		FailThreshold:   2,
		Backoff:         retry.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, NoJitter: true},
		Probe:           retry.Policy{Attempts: 3, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, NoJitter: true},
		ProbeTimeout:    time.Second,
	}
}

// assertMatchesIdentify pins the fleet's merged counters to the
// single-process run — the tentpole invariant.
func assertMatchesIdentify(t *testing.T, res *Result, ref *core.Report) {
	t.Helper()
	if res.Total.Cmp(ref.TotalLogicalPaths) != 0 {
		t.Fatalf("merged total %s, single-process %s", res.Total, ref.TotalLogicalPaths)
	}
	if res.Selected != ref.Selected {
		t.Fatalf("merged selected %d, single-process %d", res.Selected, ref.Selected)
	}
	if res.RD.Cmp(ref.RD) != 0 {
		t.Fatalf("merged RD %s, single-process %s", res.RD, ref.RD)
	}
}

func TestFleetMatchesSingleProcessAcrossWorkerCounts(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var segments []int64
	for _, n := range []int{1, 2, 4} {
		pool := newPool(t, n)
		res, err := Run(context.Background(), testConfig(pool, 0), c, core.Heuristic2)
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		assertMatchesIdentify(t, res, ref)
		if res.Stats.Cones != len(c.Outputs()) {
			t.Fatalf("%d workers: %d cones, circuit has %d outputs", n, res.Stats.Cones, len(c.Outputs()))
		}
		segments = append(segments, res.Segments)
	}
	// Segments is the sharded work sum: bigger than the single-process
	// count (shared DFS prefixes are re-walked per cone) but identical
	// for every worker count.
	for i := 1; i < len(segments); i++ {
		if segments[i] != segments[0] {
			t.Fatalf("segments %v differ across worker counts", segments)
		}
	}
}

func TestFleetSliceStreamingPreservesCounters(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	ref, err := core.Identify(c, core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := newPool(t, 2)
	res, err := Run(context.Background(), testConfig(pool, 5), c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
}

func TestFleetHeuristicsAgreeWithSingleProcess(t *testing.T) {
	c := gen.RippleAdder(4, gen.XorNAND)
	for _, h := range []core.Heuristic{core.HeuristicFUS, core.Heuristic1, core.HeuristicPinOrder} {
		ref, err := core.Identify(c, h, core.Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		pool := newPool(t, 2)
		res, err := Run(context.Background(), testConfig(pool, 0), c, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		assertMatchesIdentify(t, res, ref)
	}
}

// A paper-example smoke check that also pins the event log's shape: a
// clean run logs exactly one dispatch and one completion per cone.
func TestFleetCleanRunEventLog(t *testing.T) {
	c := gen.PaperExample()
	pool := newPool(t, 1)
	res, err := Run(context.Background(), testConfig(pool, 0), c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	var dispatches, completes int
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvDispatch:
			dispatches++
		case EvComplete:
			completes++
		}
	}
	cones := len(c.Outputs())
	if dispatches != cones || completes != cones {
		t.Fatalf("clean run logged %d dispatches, %d completions; want %d each", dispatches, completes, cones)
	}
	if res.Stats.Failures != 0 || res.Stats.DeadWorkers != 0 || res.Stats.ZombieDiscards != 0 {
		t.Fatalf("clean run reported faults: %+v", res.Stats)
	}
}

// Cones() and the per-cone dispatch must cover every output exactly
// once, in deterministic order.
func TestFleetPerConeOrderIsOutputsOrder(t *testing.T) {
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, 2)
	res, err := Run(context.Background(), testConfig(pool, 0), c, core.Heuristic1)
	if err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs()
	if len(res.PerCone) != len(outs) {
		t.Fatalf("%d per-cone results for %d outputs", len(res.PerCone), len(outs))
	}
	for i, pc := range res.PerCone {
		cone, _, err := c.Cone(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		if pc.Name != cone.Name() {
			t.Fatalf("per-cone[%d] is %q, want %q", i, pc.Name, cone.Name())
		}
	}
}

func TestFleetNoWorkersConfigured(t *testing.T) {
	if _, err := Run(context.Background(), Config{Transport: &HTTPTransport{}}, gen.PaperExample(), core.Heuristic1); err == nil {
		t.Fatal("Run accepted an empty worker list")
	}
}
