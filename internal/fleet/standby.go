package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/serve"
)

// ShipHTTP returns a journal.Writer.Ship hook that POSTs each appended
// record to addr's follower lane (POST /v1/journal) — the feed that
// keeps a hot standby's journal current. A 409 (the follower's term
// floor is above ours — a standby was promoted) comes back wrapping
// ErrStaleCoordinator, which the writer escalates to a failed append:
// the primary stops. Any other failure — network, 5xx, or an armed
// standby.partition faultinject rule — is a dropped shipment, reported
// through OnShipError and survived: a partitioned standby costs
// takeover freshness (the promoted standby recomputes the missing
// cones), never the primary's progress.
func ShipHTTP(addr string, client *http.Client) func(term uint64, line []byte) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return func(term uint64, line []byte) error {
		if err := faultinject.Fire(faultinject.PointStandbyPartition); err != nil {
			return fmt.Errorf("fleet: ship to %s: %w", addr, err)
		}
		body, err := json.Marshal(serve.JournalShipment{Term: term, Lines: []string{string(line)}})
		if err != nil {
			return fmt.Errorf("fleet: ship to %s: %w", addr, err)
		}
		resp, err := client.Post("http://"+addr+"/v1/journal", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("fleet: ship to %s: %w", addr, err)
		}
		defer func() {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusConflict:
			return fmt.Errorf("fleet: ship to %s: follower fenced term %d: %w",
				addr, term, journal.ErrStaleCoordinator)
		default:
			return fmt.Errorf("fleet: ship to %s: status %d", addr, resp.StatusCode)
		}
	}
}

// Standby is an in-process hot standby: a serve.Server with its
// follower lane open on a loopback listener, plus the promotion logic —
// watch the shipment stream's recency, fence the lane, resume from the
// follower journal. It backs `rdfleet -standby` testing and the chaos
// suite; a production standby is just rdserved with -follow-journal and
// rdfleet -resume-journal pointed at the same file.
type Standby struct {
	srv  *serve.Server
	hsrv *http.Server
	ln   net.Listener
	addr string
	path string
}

// NewStandby starts a standby whose follower journal lives in dir.
func NewStandby(dir string, cfg serve.Config) (*Standby, error) {
	cfg.FollowerJournal = filepath.Join(dir, "follower.journal")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := serve.New(cfg)
	if srv.FollowerInfo().Path == "" {
		srv.Close()
		ln.Close()
		return nil, fmt.Errorf("fleet: standby follower lane failed to open in %s", dir)
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	sb := &Standby{srv: srv, hsrv: hsrv, ln: ln, addr: ln.Addr().String(), path: cfg.FollowerJournal}
	go hsrv.Serve(ln)
	return sb, nil
}

// Addr is the standby's host:port — what the primary's ShipHTTP targets.
func (sb *Standby) Addr() string { return sb.addr }

// JournalPath is the follower journal file Promote resumes from.
func (sb *Standby) JournalPath() string { return sb.path }

// AwaitLapse blocks until the primary's shipment stream goes quiet for
// lapse (the journal feed doubles as the primary's heartbeat: a primary
// that is alive is appending, and every append ships). Returns nil when
// the lease lapses, ctx.Err() if the context ends first.
func (sb *Standby) AwaitLapse(ctx context.Context, lapse time.Duration) error {
	tick := time.NewTicker(lapse / 10)
	defer tick.Stop()
	for {
		info := sb.srv.FollowerInfo()
		if !info.Last.IsZero() && time.Since(info.Last) >= lapse {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// FenceLane raises the follower lane's term floor past everything it
// has seen, without resuming: the current primary's next shipment gets
// a 409 and its run fails with ErrStaleCoordinator. This is the manual
// "depose the coordinator" lever (Promote does it implicitly); the
// chaos suite uses it to create a live zombie primary on purpose.
func (sb *Standby) FenceLane() uint64 {
	next := sb.srv.FollowerInfo().Term + 1
	sb.srv.AdvanceFollowerTerm(next)
	return next
}

// Promote takes the job over: the follower lane's term floor is raised
// past everything it has seen (so the old primary's next shipment gets
// a 409 and its run fails with ErrStaleCoordinator), then the run is
// resumed from the follower journal. cfg names the worker pool the
// promoted coordinator drives; its Journal must be nil (Resume opens
// the follower journal itself).
func (sb *Standby) Promote(ctx context.Context, cfg Config) (*Result, error) {
	info := sb.srv.FollowerInfo()
	sb.srv.AdvanceFollowerTerm(info.Term + 1)
	return Resume(ctx, cfg, sb.path)
}

// Close tears the standby down. The follower journal file survives — it
// is the whole point.
func (sb *Standby) Close() {
	sb.hsrv.Close()
	sb.srv.Close()
}
