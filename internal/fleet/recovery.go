package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/serve"
)

// ErrNoJournaledJob: the journal has no (valid) admit record, so there
// is nothing to resume — either the coordinator died pre-admission or
// the corruption ate the admit record. The operator falls back to a
// fresh run.
var ErrNoJournaledJob = errors.New("fleet: journal holds no admitted job")

// journalState is what replaying a journal yields: the admitted job and
// the per-cone high-water marks of everything that happened to it.
type journalState struct {
	admit       *admitRecord
	answers     map[int]*serve.ConeAnswer
	answerSrc   map[int]string
	checkpoints map[int]json.RawMessage
	epochs      map[int]uint64
	sealed      bool
	maxSeq      uint64
	maxTerm     uint64
}

// replayJournal folds validated records into recovery state. Records
// with unparsable payloads are skipped, not fatal: losing a lease or
// slice record degrades to a recompute, never a wrong merge. Answers
// are re-verified (seal checksum) and first-wins — a second answer for
// a cone could only come from a coordinator that failed between append
// and merge-mark, and both describe the same enumeration.
func replayJournal(recs []journal.Record) *journalState {
	st := &journalState{
		answers:     map[int]*serve.ConeAnswer{},
		answerSrc:   map[int]string{},
		checkpoints: map[int]json.RawMessage{},
		epochs:      map[int]uint64{},
	}
	for _, rec := range recs {
		if rec.Seq > st.maxSeq {
			st.maxSeq = rec.Seq
		}
		if rec.Term > st.maxTerm {
			st.maxTerm = rec.Term
		}
		switch rec.Kind {
		case journal.KindAdmit:
			var ar admitRecord
			if json.Unmarshal(rec.Payload, &ar) == nil {
				st.admit = &ar
			}
		case journal.KindLease:
			var lr leaseRecord
			if json.Unmarshal(rec.Payload, &lr) == nil && lr.Epoch > st.epochs[lr.Cone] {
				st.epochs[lr.Cone] = lr.Epoch
			}
		case journal.KindEpoch:
			var er epochRecord
			if json.Unmarshal(rec.Payload, &er) == nil && er.Epoch > st.epochs[er.Cone] {
				st.epochs[er.Cone] = er.Epoch
			}
		case journal.KindSlice:
			var sr sliceRecord
			if json.Unmarshal(rec.Payload, &sr) == nil && len(sr.Checkpoint) > 0 {
				st.checkpoints[sr.Cone] = sr.Checkpoint
			}
		case journal.KindAnswer:
			var ar answerRecord
			if json.Unmarshal(rec.Payload, &ar) != nil || ar.Answer == nil {
				continue
			}
			if !ar.Answer.Verify() {
				continue // rotted in place; recompute the cone instead
			}
			if _, seen := st.answers[ar.Cone]; !seen {
				st.answers[ar.Cone] = ar.Answer
				st.answerSrc[ar.Cone] = ar.Source
			}
		case journal.KindSeal:
			st.sealed = true
		}
	}
	return st
}

// Resume rebuilds a run from its write-ahead journal and drives it to
// completion — the recovery path for both a restarted coordinator and a
// promoted standby. Only unretired cones are re-dispatched: cones with
// a journaled answer merge as-is, cones with a journaled checkpoint
// resume from it, and the merged counters are bit-identical to an
// uninterrupted run.
//
// A corrupt journal is replayed up to the corruption (typed
// *journal.CorruptError, coord.journal.corrupt event), the rotten tail
// is truncated, and everything it covered is recomputed. A journal with
// no admit record fails typed with ErrNoJournaledJob.
//
// Resume appends to the journal under the next term (past every term
// seen in the file, and acquired on cfg.Fence when set), so the
// previous coordinator — if it is somehow still alive — is fenced from
// the moment Resume opens the file.
func Resume(ctx context.Context, cfg Config, path string) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, errors.New("fleet: no transport")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	if cfg.Journal != nil {
		return nil, errors.New("fleet: Resume opens its own journal writer; Config.Journal must be nil")
	}
	start := time.Now()

	recs, rerr := journal.ReadFile(path)
	var corrupt *journal.CorruptError
	if rerr != nil {
		if !errors.As(rerr, &corrupt) {
			return nil, rerr
		}
		// Drop the rotten tail so our own appends continue a clean file.
		// The records it held are recomputed below.
		if err := os.Truncate(path, corrupt.Offset); err != nil {
			return nil, fmt.Errorf("fleet: truncate corrupt journal tail: %w", err)
		}
	}
	st := replayJournal(recs)
	if st.admit == nil {
		if corrupt != nil {
			return nil, fmt.Errorf("%w: %w", ErrNoJournaledJob, corrupt)
		}
		return nil, fmt.Errorf("%w: %s", ErrNoJournaledJob, path)
	}
	criterion, err := parseCriterion(st.admit.Criterion)
	if err != nil {
		return nil, err
	}

	term := st.maxTerm + 1
	if cfg.Fence != nil {
		term = cfg.Fence.Acquire(term)
	}
	jw, err := journal.AppendExisting(path, term, st.maxSeq, cfg.Fence)
	if err != nil {
		return nil, err
	}
	defer jw.Close()
	cfg.Journal = jw

	jobs := make([]*job, 0, len(st.admit.Cones))
	retired, storeHits := 0, int64(0)
	var storeAnswers []answerRecord
	for i, ac := range st.admit.Cones {
		j := &job{idx: i, name: ac.Name, bench: ac.Bench, sort: ac.Sort, storeKey: ac.StoreKey}
		switch {
		case st.answers[i] != nil:
			j.done = true
			j.final = st.answers[i]
			retired++
		default:
			// Start strictly above every journaled lease/epoch: any reply
			// still in flight from the previous coordinator's dispatches is
			// provably stale here too.
			j.epoch = st.epochs[i] + 1
			j.checkpoint = st.checkpoints[i]
			if cfg.Store != nil && ac.StoreKey != "" {
				if ans := storedConeAnswer(cfg.Store, ac.StoreKey, ac.Name, criterion); ans != nil {
					j.done = true
					j.final = ans
					storeHits++
					storeAnswers = append(storeAnswers, answerRecord{
						Cone: i, Name: ac.Name, Source: answerSourceStore, Answer: ans,
					})
				}
			}
		}
		jobs = append(jobs, j)
	}

	co := newCoordinator(cfg, criterion.String(), jobs)
	co.meta = runMeta{circuit: st.admit.Circuit, heuristic: st.admit.Heuristic}
	co.stats.retired.Store(int64(retired))
	co.stats.storeHits.Store(storeHits)
	if co.metrics != nil {
		co.metrics.Takeovers.Inc()
	}

	if corrupt != nil {
		co.events.add(EvJournalCorrupt, "", "", corrupt.Error(),
			map[string]int64{"offset": corrupt.Offset})
	}
	reason := "restart"
	if st.sealed {
		reason = "sealed"
	}
	pending := len(jobs) - retired - int(storeHits)
	co.events.add(EvTakeover, "", "", reason, map[string]int64{
		"term":    int64(term),
		"retired": int64(retired),
		"pending": int64(pending),
	})
	for _, j := range jobs {
		if j.done && st.answers[j.idx] != nil {
			co.events.add(EvJournalRetire, "", j.name, st.answerSrc[j.idx],
				map[string]int64{"selected": j.final.Selected, "segments": j.final.Segments})
		}
	}
	if err := jw.Append(journal.KindTakeover, takeoverRecord{
		Term: term, Reason: reason, Retired: retired, Pending: pending,
	}); err != nil {
		return nil, fmt.Errorf("fleet: journal takeover: %w", err)
	}
	for _, rec := range storeAnswers {
		if err := jw.Append(journal.KindAnswer, rec); err != nil {
			return nil, fmt.Errorf("fleet: journal takeover: %w", err)
		}
	}
	if co.metrics != nil {
		co.metrics.JournalBytes.Set(jw.Bytes())
	}
	return co.run(ctx, start)
}

// parseCriterion maps the journaled wire name back to the enumeration
// criterion (the serve lane's naming).
func parseCriterion(s string) (core.Criterion, error) {
	switch s {
	case "sigma^pi", "sigma-pi":
		return core.SigmaPi, nil
	case "FS", "fs":
		return core.FS, nil
	}
	return 0, fmt.Errorf("fleet: journaled criterion %q unknown", s)
}

// JournalAudit is what AuditJournal proves about a finished journal:
// exactly-once accounting, visible in the records themselves.
type JournalAudit struct {
	// Records is the total validated record count.
	Records int
	// Cones is the admitted cone count.
	Cones int
	// Answers counts journaled answers per cone index. Exactly one per
	// cone in any recovered run — two would mean a double merge.
	Answers map[int]int
	// UnleasedAnswers counts worker-sourced answers with no prior
	// journaled lease for the same cone and epoch. Zero in any run:
	// every computed answer had a journaled owner.
	UnleasedAnswers int
	// Sealed reports whether a seal record closed the run.
	Sealed bool
}

// AuditJournal replays a journal and checks the lease/answer discipline
// the chaos suite asserts on: each cone answered exactly once, every
// worker answer covered by a journaled lease.
func AuditJournal(path string) (*JournalAudit, error) {
	recs, err := journal.ReadFile(path)
	if err != nil {
		return nil, err
	}
	type lease struct {
		cone  int
		epoch uint64
	}
	leased := map[lease]bool{}
	audit := &JournalAudit{Records: len(recs), Answers: map[int]int{}}
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindAdmit:
			var ar admitRecord
			if json.Unmarshal(rec.Payload, &ar) == nil {
				audit.Cones = len(ar.Cones)
			}
		case journal.KindLease:
			var lr leaseRecord
			if json.Unmarshal(rec.Payload, &lr) == nil {
				leased[lease{lr.Cone, lr.Epoch}] = true
			}
		case journal.KindAnswer:
			var ar answerRecord
			if err := json.Unmarshal(rec.Payload, &ar); err != nil {
				return nil, fmt.Errorf("fleet: audit: answer record: %w", err)
			}
			audit.Answers[ar.Cone]++
			if ar.Source == answerSourceWorker && !leased[lease{ar.Cone, ar.Epoch}] {
				audit.UnleasedAnswers++
			}
		case journal.KindSeal:
			audit.Sealed = true
		}
	}
	return audit, nil
}
