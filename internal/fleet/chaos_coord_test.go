// The coordinator-kill chaos suite. The bar, mirroring the killed-node
// suite one layer up: for ANY phase the coordinator dies in and EITHER
// recovery mode (restart from its own journal, or hot-standby promotion
// from the shipped copy), the recovered run's merged counters are
// bit-identical to an uninterrupted run, no cone is ever merged twice
// (proven by auditing the journal's lease/answer discipline), and every
// injected journal corruption surfaces as a typed error followed by a
// correct recompute.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/fleet/journal"
	"rdfault/internal/gen"
	"rdfault/internal/serve"
)

// coordAudit asserts the exactly-once discipline on a sealed journal:
// every admitted cone answered exactly once, every worker answer
// covered by a journaled lease, and a seal record closing the run.
func coordAudit(t *testing.T, path string) {
	t.Helper()
	audit, err := AuditJournal(path)
	if err != nil {
		t.Fatalf("journal audit: %v", err)
	}
	if !audit.Sealed {
		t.Fatal("recovered journal has no seal record")
	}
	if audit.UnleasedAnswers != 0 {
		t.Fatalf("%d worker answers without a journaled lease", audit.UnleasedAnswers)
	}
	if audit.Cones == 0 || len(audit.Answers) != audit.Cones {
		t.Fatalf("%d cones answered, journal admitted %d", len(audit.Answers), audit.Cones)
	}
	for cone, n := range audit.Answers {
		if n != 1 {
			t.Fatalf("cone %d journaled %d answers; exactly-once broken", cone, n)
		}
	}
}

// The matrix: kill the coordinator at each phase boundary, recover by
// restart and by standby promotion, on 2- and 4-worker pools. Sixteen
// rows, one invariant: counters bit-identical, zero double merges.
func TestChaosCoordKillMatrix(t *testing.T) {
	ref := chaosRef(t)
	clean, _, _, err := chaosRun(t, 1, nil, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	phases := []string{"pre-sort", "mid-dispatch", "mid-merge", "pre-seal"}
	for _, phase := range phases {
		for _, mode := range []string{"restart", "standby"} {
			for _, workers := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%s/%dw", phase, mode, workers), func(t *testing.T) {
					c := gen.RippleAdder(4, gen.XorNAND)
					pool := newPool(t, workers)
					cfg := testConfig(pool, 5)

					dir := t.TempDir()
					path := filepath.Join(dir, "coord.journal")
					jw, err := journal.Create(path, 1, nil)
					if err != nil {
						t.Fatal(err)
					}
					var sb *Standby
					if mode == "standby" {
						sb, err = NewStandby(dir, serve.Config{Workers: 1, MaxConeInFlight: 2})
						if err != nil {
							t.Fatal(err)
						}
						t.Cleanup(sb.Close)
						jw.Ship = ShipHTTP(sb.Addr(), nil)
					}

					point := faultinject.PointCoordKill + "." + phase
					plan := faultinject.NewPlan(faultinject.Rule{
						Point: point, Kind: faultinject.KindError, Hit: 1, Count: 1,
					})
					restore := faultinject.Activate(plan)
					kcfg := cfg
					kcfg.Journal = jw
					_, runErr := Run(context.Background(), kcfg, c, core.Heuristic2)
					restore()
					jw.Close()
					if !errors.Is(runErr, ErrKilled) {
						t.Fatalf("primary survived the %s kill: %v", phase, runErr)
					}
					if plan.Fired(point) == 0 {
						t.Fatalf("kill rule never fired at %s", point)
					}

					// Recover: restart replays the primary's own journal;
					// promotion fences the follower lane and replays the
					// shipped copy.
					resumePath := path
					var res *Result
					var rerr error
					if mode == "standby" {
						resumePath = sb.JournalPath()
						res, rerr = sb.Promote(context.Background(), cfg)
					} else {
						res, rerr = Resume(context.Background(), cfg, resumePath)
					}
					if errors.Is(rerr, ErrNoJournaledJob) {
						// The pre-sort kill lands before admission: nothing
						// was journaled, and a fresh journaled run is the
						// documented recovery.
						if phase != "pre-sort" {
							t.Fatalf("journal empty after %s kill: %v", phase, rerr)
						}
						jw2, err := journal.Create(resumePath, 2, nil)
						if err != nil {
							t.Fatal(err)
						}
						fcfg := cfg
						fcfg.Journal = jw2
						res, rerr = Run(context.Background(), fcfg, c, core.Heuristic2)
						jw2.Close()
					} else if phase == "pre-sort" {
						t.Fatalf("pre-sort kill left a resumable journal: %v", rerr)
					}
					if rerr != nil {
						t.Fatalf("recovery failed: %v", rerr)
					}

					assertMatchesIdentify(t, res, ref)
					if res.Segments != clean.Segments {
						t.Fatalf("segments %d, clean sharded run %d", res.Segments, clean.Segments)
					}
					coordAudit(t, resumePath)
				})
			}
		}
	}
}

// A recovered run must retire every journaled answer without a single
// re-dispatch: the mid-merge kill leaves at least one sealed answer in
// the journal, and the takeover stats must show it retired.
func TestChaosCoordRecoveryRetiresJournaledAnswers(t *testing.T) {
	ref := chaosRef(t)
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Die on the third merge: two cones are already answered in the
	// journal, the answer that triggered the kill is journaled too.
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointCoordKill + ".mid-merge",
		Kind:  faultinject.KindError, Hit: 3, Count: 1,
	})
	restore := faultinject.Activate(plan)
	kcfg := cfg
	kcfg.Journal = jw
	_, runErr := Run(context.Background(), kcfg, c, core.Heuristic2)
	restore()
	jw.Close()
	if !errors.Is(runErr, ErrKilled) {
		t.Fatalf("primary survived: %v", runErr)
	}

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	if res.Stats.JournalRetired < 3 {
		t.Fatalf("takeover retired %d cones from the journal, want >= 3", res.Stats.JournalRetired)
	}
	var retireEvents, takeovers int
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvJournalRetire:
			retireEvents++
		case EvTakeover:
			takeovers++
		}
	}
	if int64(retireEvents) != res.Stats.JournalRetired {
		t.Fatalf("%d retire events, stats say %d", retireEvents, res.Stats.JournalRetired)
	}
	if takeovers != 1 {
		t.Fatalf("%d takeover events, want 1", takeovers)
	}
	coordAudit(t, path)
}

// Injected journal corruption: the write path rots a record in place
// (the primary never notices), recovery surfaces a typed *CorruptError
// with the byte offset, replays the valid prefix, truncates the rotten
// tail, and recomputes everything the tail covered — counters
// bit-identical.
func TestChaosCoordCorruptJournalRecoversByRecompute(t *testing.T) {
	ref := chaosRef(t)
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)
	path := filepath.Join(t.TempDir(), "coord.journal")
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointCoordJournalCorrupt,
		Kind:  faultinject.KindCorrupt, Hit: 4, Count: 1, Seed: 7,
	})
	restore := faultinject.Activate(plan)
	kcfg := cfg
	kcfg.Journal = jw
	_, runErr := Run(context.Background(), kcfg, c, core.Heuristic2)
	restore()
	jw.Close()
	if runErr != nil {
		t.Fatalf("write-path corruption is silent; run failed: %v", runErr)
	}
	if plan.Fired(faultinject.PointCoordJournalCorrupt) == 0 {
		t.Fatal("corrupt rule never fired")
	}

	_, rerr := journal.ReadFile(path)
	var ce *journal.CorruptError
	if !errors.As(rerr, &ce) {
		t.Fatalf("corrupt journal read %v, want *journal.CorruptError", rerr)
	}
	if ce.Offset <= 0 {
		t.Fatalf("corruption offset %d; record 4 sits past the admit record", ce.Offset)
	}

	res, err := Resume(context.Background(), cfg, path)
	if err != nil {
		t.Fatalf("recovery from corrupt journal: %v", err)
	}
	assertMatchesIdentify(t, res, ref)
	var sawCorrupt bool
	for _, ev := range res.Events {
		if ev.Kind == EvJournalCorrupt {
			sawCorrupt = true
			if ev.Fields["offset"] != ce.Offset {
				t.Fatalf("event offset %d, typed error offset %d", ev.Fields["offset"], ce.Offset)
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("recovered run emitted no coord.journal.corrupt event")
	}
	coordAudit(t, path)
}

// The zombie-primary scenario, end to end over the wire: the standby is
// promoted while the primary is alive and mid-run. The primary's next
// shipment hits the raised term floor, comes back 409, and its run dies
// typed with ErrStaleCoordinator — its late answers never reach the
// follower journal, so the promoted run's counters carry no drift.
func TestChaosCoordZombiePrimaryIsFencedOverTheWire(t *testing.T) {
	ref := chaosRef(t)
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)

	dir := t.TempDir()
	jw, err := journal.Create(filepath.Join(dir, "primary.journal"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(dir, serve.Config{Workers: 1, MaxConeInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sb.Close)
	jw.Ship = ShipHTTP(sb.Addr(), nil)

	// Depose the primary the moment its first cone completes: the fence
	// lands synchronously in the event sink, so the very next append's
	// shipment — at latest, the seal — is rejected.
	var deposed sync.Once
	var fencedEvents atomic.Int64
	pcfg := cfg
	pcfg.Journal = jw
	pcfg.OnEvent = func(ev Event) {
		switch ev.Kind {
		case EvComplete:
			deposed.Do(func() { sb.FenceLane() })
		case EvFenced:
			fencedEvents.Add(1)
		}
	}
	_, runErr := Run(context.Background(), pcfg, c, core.Heuristic2)
	jw.Close()
	if !errors.Is(runErr, ErrStaleCoordinator) {
		t.Fatalf("deposed primary died with %v, want ErrStaleCoordinator", runErr)
	}
	if fencedEvents.Load() == 0 {
		t.Fatal("no coord.fenced event from the deposed primary")
	}

	res, err := sb.Promote(context.Background(), cfg)
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}
	assertMatchesIdentify(t, res, ref)
	if res.Stats.Fenced != 0 {
		t.Fatalf("promoted run counted %d fenced appends of its own", res.Stats.Fenced)
	}
	coordAudit(t, sb.JournalPath())
}

// A partitioned standby must never stall the primary: every shipment is
// dropped, the run completes on the primary's own journal, and each
// drop is reported through the ship-error path.
func TestChaosCoordStandbyPartitionDoesNotStallPrimary(t *testing.T) {
	ref := chaosRef(t)
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, 2)
	cfg := testConfig(pool, 5)

	dir := t.TempDir()
	path := filepath.Join(dir, "primary.journal")
	jw, err := journal.Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(dir, serve.Config{Workers: 1, MaxConeInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sb.Close)
	jw.Ship = ShipHTTP(sb.Addr(), nil)
	var dropped atomic.Int64
	jw.OnShipError = func(error) { dropped.Add(1) }

	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointStandbyPartition, Kind: faultinject.KindError,
	})
	restore := faultinject.Activate(plan)
	kcfg := cfg
	kcfg.Journal = jw
	res, runErr := Run(context.Background(), kcfg, c, core.Heuristic2)
	restore()
	jw.Close()
	if runErr != nil {
		t.Fatalf("partitioned standby stalled the primary: %v", runErr)
	}
	assertMatchesIdentify(t, res, ref)
	if dropped.Load() == 0 {
		t.Fatal("partition dropped no shipments; the rule tested nothing")
	}
	// The primary's own journal is whole: a restart recovers from it even
	// though the standby saw nothing.
	coordAudit(t, path)
	if info := AuditOrZero(t, sb.JournalPath()); info != 0 {
		t.Fatalf("partitioned standby received %d records", info)
	}
}

// AuditOrZero counts the records in a journal that may be empty.
func AuditOrZero(t *testing.T, path string) int {
	t.Helper()
	audit, err := AuditJournal(path)
	if err != nil {
		t.Fatalf("audit %s: %v", path, err)
	}
	return audit.Records
}
