// Fleet half of the telemetry consistency contract: a chaos run's
// coordinator events stream through the shared telemetry log as JSONL
// that replays to exactly the in-memory event list, the recovery
// counters in Stats match the event stream, and the surviving workers'
// /metrics pages account for the cone slices the run actually served.
package fleet

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/telemetry"
)

func TestChaosTelemetryStreamMatchesEventsAndStats(t *testing.T) {
	var buf bytes.Buffer
	res, _, pool, err := chaosRun(t, 2,
		func(c *Config) {
			c.FailThreshold = 1
			c.Telemetry = telemetry.NewLog(&buf)
		},
		core.Heuristic2,
		faultinject.Rule{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 2, Count: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, chaosRef(t))

	evs, err := telemetry.ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("parse JSONL stream: %v", err)
	}
	if len(evs) != len(res.Events) {
		t.Fatalf("JSONL stream has %d events, coordinator log has %d", len(evs), len(res.Events))
	}
	for i := range evs {
		if evs[i].Seq != res.Events[i].Seq || evs[i].Kind != res.Events[i].Kind {
			t.Fatalf("event %d: stream (seq=%d kind=%q) != log (seq=%d kind=%q)",
				i, evs[i].Seq, evs[i].Kind, res.Events[i].Seq, res.Events[i].Kind)
		}
		if evs[i].Source != "fleet" {
			t.Fatalf("event %d: source %q, want fleet", i, evs[i].Source)
		}
	}

	// Recovery counters: the killed worker (FailThreshold 1, probes give
	// up) must show up as quarantine + dead in both Stats and the stream.
	checks := []struct {
		kind string
		stat int64
	}{
		{EvQuarantine, res.Stats.Quarantines},
		{EvDead, res.Stats.DeadWorkers},
		{EvDispatch, res.Stats.Dispatches},
		{EvComplete, int64(res.Stats.Cones)},
	}
	for _, ck := range checks {
		if n := telemetry.CountKind(evs, ck.kind); int64(n) != ck.stat {
			t.Errorf("%s: %d in stream, %d in Stats", ck.kind, n, ck.stat)
		}
	}
	if res.Stats.Quarantines == 0 || res.Stats.DeadWorkers == 0 {
		t.Fatalf("chaos schedule produced no quarantine/dead (stats %+v)", res.Stats)
	}

	// The complete events carry the per-cone counters; their sums are the
	// merged result, so the stream alone reconstructs the run's totals.
	var selected, segments int64
	for _, ev := range evs {
		if ev.Kind == EvComplete {
			selected += ev.Fields["selected"]
			segments += ev.Fields["segments"]
		}
	}
	if selected != res.Selected || segments != res.Segments {
		t.Fatalf("complete events sum to selected=%d segments=%d, result has %d/%d",
			selected, segments, res.Selected, res.Segments)
	}

	// Every live worker is a full rdserved behind srv.Handler(), so its
	// /metrics page is scrapeable; the surviving workers' cone-slice
	// counters must cover every dispatch that was actually answered.
	client := &http.Client{Timeout: 5 * time.Second}
	var slices, submitted int64
	reachable := 0
	for _, addr := range pool.Addrs() {
		page, err := fetchMetrics(client, "http://"+addr+"/metrics")
		if err != nil {
			continue // the killed worker refuses connections
		}
		reachable++
		slices += metricSample(t, page, "rd_serve_cone_slices_total")
		submitted += metricSample(t, page, "rd_serve_jobs_submitted_total")
	}
	if reachable == 0 {
		t.Fatal("no surviving worker answered /metrics")
	}
	if slices == 0 {
		t.Fatalf("surviving workers report zero cone slices after %d dispatches", res.Stats.Dispatches)
	}
	if submitted != 0 {
		t.Fatalf("cone dispatches must not count as job submissions, got %d", submitted)
	}
}

func fetchMetrics(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// metricSample pulls one un-labeled sample out of a Prometheus text
// page, failing the test if the metric is missing entirely.
func metricSample(t *testing.T, page, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("%s: bad sample %q: %v", name, rest, err)
			}
			return int64(v)
		}
	}
	t.Fatalf("metric %s missing from scrape", name)
	return 0
}
