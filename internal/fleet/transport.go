package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/serve"
)

// Transport carries cone dispatches to workers. The coordinator only
// ever sees this interface; the chaos suite and the HTTP transport both
// implement it.
type Transport interface {
	// Dispatch runs one cone slice on the named worker and returns its
	// verified answer.
	Dispatch(ctx context.Context, worker string, req serve.ConeRequest) (*serve.ConeAnswer, error)
	// Healthz probes the worker's liveness; nil means the worker is
	// accepting work.
	Healthz(ctx context.Context, worker string) error
}

// ErrCorruptResponse is the sentinel for a worker reply that failed
// integrity verification — unparsable bytes or a checksum mismatch. The
// coordinator treats it as a transient dispatch failure and retries;
// corrupt numbers never reach the merge.
var ErrCorruptResponse = errors.New("fleet: corrupt worker response")

// RemoteError is a non-2xx worker answer, carrying enough structure for
// the coordinator to pick the right recovery: 422 drops the checkpoint,
// 4xx is permanent, everything else retries.
type RemoteError struct {
	Worker     string
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("fleet: worker %s answered %d: %s", e.Worker, e.Code, e.Msg)
}

// HTTPTransport dispatches over HTTP+JSON to rdserved workers
// (POST /v1/cone, GET /healthz). The zero value is usable.
type HTTPTransport struct {
	// Client overrides the HTTP client (default: a dedicated client with
	// no global timeout — per-dispatch bounds come from the context).
	Client *http.Client
	// Kill, when set, is called with the destination worker right before
	// a dispatch whenever the fleet.worker.kill fault-injection point
	// fires — the chaos harness installs the hook that actually tears
	// the worker down, so the dispatch (and everything after it) meets a
	// genuinely dead node.
	Kill func(worker string)
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Dispatch posts one cone slice. Fault-injection points, in order:
// fleet.worker.kill (harness kills the destination first),
// fleet.dispatch (KindError drops the request, KindSleep delays it),
// fleet.response.corrupt (mutates the response bytes), fleet.latency
// (KindSleep delays the reply past the coordinator's patience).
func (t *HTTPTransport) Dispatch(ctx context.Context, worker string, req serve.ConeRequest) (*serve.ConeAnswer, error) {
	if err := faultinject.Fire(faultinject.PointFleetWorkerKill); err != nil && t.Kill != nil {
		t.Kill(worker)
	}
	if err := faultinject.Fire(faultinject.PointFleetDispatch); err != nil {
		return nil, fmt.Errorf("fleet: dispatch to %s dropped: %w", worker, err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+worker+"/v1/cone", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	raw = faultinject.Corrupt(faultinject.PointFleetResponseCorrupt, raw)
	if err := faultinject.Fire(faultinject.PointFleetLatency); err != nil {
		return nil, fmt.Errorf("fleet: response from %s lost: %w", worker, err)
	}
	if resp.StatusCode != http.StatusOK {
		var he struct {
			Error      string `json:"error"`
			RetryAfter int64  `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(raw, &he)
		if he.Error == "" {
			he.Error = http.StatusText(resp.StatusCode)
		}
		return nil, &RemoteError{
			Worker:     worker,
			Code:       resp.StatusCode,
			Msg:        he.Error,
			RetryAfter: time.Duration(he.RetryAfter) * time.Millisecond,
		}
	}
	var ans serve.ConeAnswer
	if err := json.Unmarshal(raw, &ans); err != nil {
		return nil, fmt.Errorf("%w: worker %s: %v", ErrCorruptResponse, worker, err)
	}
	if !ans.Verify() {
		return nil, fmt.Errorf("%w: worker %s: checksum mismatch", ErrCorruptResponse, worker)
	}
	return &ans, nil
}

// Healthz probes GET /healthz; a worker reporting anything but "ok"
// (e.g. "draining") counts as unavailable.
func (t *HTTPTransport) Healthz(ctx context.Context, worker string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+worker+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &RemoteError{Worker: worker, Code: resp.StatusCode, Msg: "healthz"}
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		return fmt.Errorf("%w: worker %s healthz: %v", ErrCorruptResponse, worker, err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("fleet: worker %s is %q", worker, h.Status)
	}
	return nil
}
