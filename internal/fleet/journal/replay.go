package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ValidateLine decodes and validates one journal line (no trailing
// newline): envelope shape, format version, checksum. It does not check
// sequence continuity — that is Replay's job, which sees the whole
// stream.
func ValidateLine(line []byte) (Record, error) {
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("envelope: %v", err)
	}
	if dec.More() {
		return Record{}, fmt.Errorf("envelope: trailing data after record")
	}
	if rec.Version != FormatVersion {
		return Record{}, fmt.Errorf("format version %q, want %q", rec.Version, FormatVersion)
	}
	if rec.Kind == "" {
		return Record{}, fmt.Errorf("empty record kind")
	}
	if want := rec.sum(); rec.Sum != want {
		return Record{}, fmt.Errorf("checksum %q, computed %q", rec.Sum, want)
	}
	return rec, nil
}

// Replay reads journal records in order until EOF or the first
// unusable record. It returns every valid record before the failure;
// on corruption the error is a *CorruptError whose Offset is the byte
// position where the bad record starts, so the caller can truncate the
// tail and recompute what the lost records covered. Sequence numbers
// must be strictly increasing (terms may repeat or grow across
// takeovers); a gap or repeat marks the record corrupt — it belongs to
// a write the previous coordinator never acknowledged.
func Replay(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var (
		recs    []Record
		offset  int64
		lastSeq uint64
	)
	for {
		line, err := readLine(br)
		if len(line) == 0 && err == io.EOF {
			return recs, nil
		}
		if err != nil && err != io.EOF {
			return recs, &CorruptError{Offset: offset, Reason: fmt.Sprintf("read: %v", err)}
		}
		// A final line without a trailing newline is a torn write: the
		// coordinator died mid-append. If it still validates, keep it —
		// the bytes are all there; only the newline is missing.
		rec, verr := ValidateLine(bytes.TrimSuffix(line, []byte("\n")))
		if verr != nil {
			return recs, &CorruptError{Offset: offset, Reason: verr.Error()}
		}
		if rec.Seq <= lastSeq {
			return recs, &CorruptError{Offset: offset, Reason: fmt.Sprintf("sequence %d after %d", rec.Seq, lastSeq)}
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		offset += int64(len(line))
		if err == io.EOF {
			return recs, nil
		}
	}
}

// readLine reads through the next '\n' (inclusive) without a length
// cap — journal records carry whole cone netlists and can exceed any
// fixed scanner buffer.
func readLine(br *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		return buf, err
	}
}

// ReadFile replays the journal at path. The *CorruptError, if any, has
// Path filled in.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	recs, rerr := Replay(f)
	var ce *CorruptError
	if errors.As(rerr, &ce) {
		ce.Path = path
	}
	return recs, rerr
}
