package journal

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to Replay and holds the
// corruption contract: Replay never panics, never returns an error
// other than *CorruptError, and every record it does return validates
// on its own — a corrupt journal yields a good prefix plus a typed
// offset, nothing else.
func FuzzJournalReplay(f *testing.F) {
	w, err := Create(f.TempDir()+"/seed.journal", 3, nil)
	if err != nil {
		f.Fatal(err)
	}
	for i, kind := range []string{KindAdmit, KindLease, KindAnswer, KindSeal} {
		if err := w.Append(kind, map[string]int{"n": i}); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	seed, err := os.ReadFile(w.Path())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"v":"rdjournal/v1","seq":1,"term":1,"kind":"admit","sum":"bad"}` + "\n"))
	f.Add(append(seed[:len(seed)/2], "garbage{{{"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Replay(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Replay error %T (%v) is not *CorruptError", err, err)
			}
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("Replay error %v does not wrap ErrCorruptRecord", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("CorruptError.Offset %d outside [0, %d]", ce.Offset, len(data))
			}
		}
		lastSeq := uint64(0)
		for i, rec := range recs {
			if rec.Version != FormatVersion {
				t.Fatalf("record %d version %q", i, rec.Version)
			}
			if rec.Seq <= lastSeq {
				t.Fatalf("record %d seq %d after %d", i, rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			if got := rec.sum(); rec.Sum != got {
				t.Fatalf("record %d checksum %q, computed %q", i, rec.Sum, got)
			}
		}
	})
}
