// Package journal is the fleet coordinator's write-ahead job journal:
// an append-only file of version-stamped, individually-checksummed JSON
// records (the rdstore/v1 framing discipline applied to a log), flushed
// before the side effect each record describes. The journal is the
// source of truth for recovery — a restarted or promoted coordinator
// replays it to rebuild job state exactly; it never reconciles against
// workers or guesses.
//
// Fencing: every record carries the coordinator term that wrote it. A
// Writer bound to a Fence checks its term before each append, so an old
// primary that wakes after a standby promotion fails typed with
// ErrStaleCoordinator instead of double-merging a cone; the serve
// follower lane enforces the same floor across processes (a stale
// shipment answers 409).
//
// Corruption: a truncated, bit-flipped or foreign-version record fails
// typed (*CorruptError, carrying the byte offset of the bad record,
// mirroring core.CorruptCheckpointError). Replay returns every record
// before the corruption, so recovery degrades to
// replay-up-to-corruption + recompute-the-rest — never a wrong merge.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"rdfault/internal/faultinject"
)

// FormatVersion stamps every journal record. A reader that finds a
// different stamp treats the record as corrupt (typed) rather than
// guessing at an old layout.
const FormatVersion = "rdjournal/v1"

// Record kinds, in the order a clean run writes them. The payload
// schemas live with the coordinator (package fleet); the journal layer
// frames, checksums and fences records without interpreting them.
const (
	// KindAdmit: the job was admitted — circuit, heuristic, criterion,
	// and every cone's netlist, projected input sort and store key. The
	// one record recovery cannot do without.
	KindAdmit = "admit"
	// KindLease: a cone was leased to a worker under an epoch, with a
	// deadline. Journaled before the dispatch leaves.
	KindLease = "lease"
	// KindSlice: a worker streamed an interrupted slice's checkpoint.
	// Journaled before the coordinator adopts the checkpoint.
	KindSlice = "slice"
	// KindEpoch: a cone's epoch advanced (an abandoned dispatch); any
	// reply under an older epoch is provably a zombie.
	KindEpoch = "epoch"
	// KindAnswer: a sealed complete ConeAnswer was accepted. Journaled
	// before the cone is marked done — the flush-before-side-effect
	// discipline that makes at-most-once merging recoverable.
	KindAnswer = "answer"
	// KindSeal: the run merged; final counters.
	KindSeal = "seal"
	// KindTakeover: a restarted or promoted coordinator took the job
	// over under a new term.
	KindTakeover = "takeover"
	// KindShutdown: the coordinator sealed the journal on a graceful
	// interrupt; the job resumes via -resume-journal.
	KindShutdown = "shutdown"
)

// Typed journal errors; match with errors.Is.
var (
	// ErrCorruptRecord: a record exists but fails validation (checksum,
	// format version, framing, sequence). The concrete *CorruptError
	// carries the byte offset. Replay callers treat everything from that
	// offset on as lost — recompute, never guess.
	ErrCorruptRecord = errors.New("journal: corrupt record")
	// ErrStaleCoordinator: the writer's coordinator term has been fenced
	// by a newer coordinator (a standby was promoted, or a restart took
	// the job over). The old primary must stop: its merges are rejected
	// on every path.
	ErrStaleCoordinator = errors.New("journal: stale coordinator term")
)

// CorruptError reports one unusable journal record and where it starts.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error names the file, offset and what failed to validate.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt record in %s at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Unwrap matches errors.Is(err, ErrCorruptRecord).
func (e *CorruptError) Unwrap() error { return ErrCorruptRecord }

// Record is one journal entry: the envelope every line of the file
// decodes to. Sum is FNV-1a over the record serialized with Sum empty
// (the ConeAnswer sealing idiom), so a single flipped bit anywhere in
// the line fails validation.
type Record struct {
	Version string          `json:"v"`
	Seq     uint64          `json:"seq"`
	Term    uint64          `json:"term"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Sum     string          `json:"sum"`
}

func (r *Record) sum() string {
	cp := *r
	cp.Sum = ""
	b, err := json.Marshal(cp)
	if err != nil {
		return "unmarshalable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// seal stamps the record's checksum.
func (r *Record) seal() { r.Sum = r.sum() }

// Fence arbitrates coordinator terms in one process: the in-memory
// analogue of the serve follower lane's term floor. A Writer bound to a
// fence refuses appends once a newer term has been acquired.
type Fence struct {
	mu   sync.Mutex
	term uint64
}

// NewFence returns a fence with no term acquired yet.
func NewFence() *Fence { return &Fence{} }

// Acquire advances the fence to a new term — at least min, and strictly
// above every term acquired before — and returns it. Every writer on an
// older term is fenced from that moment on.
func (f *Fence) Acquire(min uint64) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.term++
	if f.term < min {
		f.term = min
	}
	return f.term
}

// Term reads the current fenced floor (0 = nothing acquired).
func (f *Fence) Term() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.term
}

// Check fails typed if term has been superseded.
func (f *Fence) Check(term uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if term < f.term {
		return fmt.Errorf("term %d fenced by term %d: %w", term, f.term, ErrStaleCoordinator)
	}
	return nil
}

// Writer appends records to one journal file. Every Append is written
// and fsynced before it returns — the caller may only perform a side
// effect after its record is durable. A Writer is safe for concurrent
// use.
type Writer struct {
	// Ship, when set, is called after each durable append with the
	// record's encoded line (no trailing newline) — the journal-shipping
	// hook that feeds a hot standby. A shipping error wrapping
	// ErrStaleCoordinator fails the Append (the follower fenced us);
	// any other shipping error goes to OnShipError and the append
	// succeeds — a partitioned standby costs takeover freshness, never
	// the primary's progress.
	Ship func(term uint64, line []byte) error
	// OnShipError receives non-fatal shipping failures.
	OnShipError func(error)

	mu    sync.Mutex
	f     *os.File
	path  string
	term  uint64
	seq   uint64
	bytes int64
	fence *Fence
}

// Create truncates (or creates) the journal at path and returns a
// writer at term. A nil fence disables in-process fencing (the serve
// follower lane can still fence across processes).
func Create(path string, term uint64, fence *Fence) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	return &Writer{f: f, path: path, term: term, fence: fence}, nil
}

// AppendExisting opens the journal at path for appending, continuing
// the sequence after lastSeq under a (typically bumped) term — the
// recovery path: replay first, then append the takeover and everything
// after it to the same file.
func AppendExisting(path string, term, lastSeq uint64, fence *Fence) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{f: f, path: path, term: term, seq: lastSeq, bytes: st.Size(), fence: fence}, nil
}

// Path returns the journal file's path.
func (w *Writer) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path
}

// Term returns the writer's coordinator term.
func (w *Writer) Term() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.term
}

// Seq returns the last sequence number written.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Bytes returns the journal's size in bytes as written by this writer.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Append journals one record and fsyncs it before returning — only
// then may the caller perform the side effect the record describes. A
// fenced term fails typed with ErrStaleCoordinator and writes nothing.
//
// Fault-injection points: coord.journal.latency (KindSleep wedges the
// append, KindError fails it) and coord.journal.corrupt (KindCorrupt
// rots the line on its way to disk; a later replay fails typed at this
// record's offset).
func (w *Writer) Append(kind string, payload any) error {
	pb, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal: encode %s payload: %w", kind, err)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fence != nil {
		if err := w.fence.Check(w.term); err != nil {
			return fmt.Errorf("journal: append %s: %w", kind, err)
		}
	}
	if err := faultinject.Fire(faultinject.PointCoordJournalLatency); err != nil {
		return fmt.Errorf("journal: append %s: %w", kind, err)
	}
	rec := Record{Version: FormatVersion, Seq: w.seq + 1, Term: w.term, Kind: kind, Payload: pb}
	rec.seal()
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s: %w", kind, err)
	}
	line = faultinject.Corrupt(faultinject.PointCoordJournalCorrupt, line)
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: write %s: %w", kind, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", kind, err)
	}
	w.seq = rec.Seq
	w.bytes += int64(len(line)) + 1

	if w.Ship != nil {
		if err := w.Ship(w.term, line); err != nil {
			if errors.Is(err, ErrStaleCoordinator) {
				return fmt.Errorf("journal: ship %s: %w", kind, err)
			}
			if w.OnShipError != nil {
				w.OnShipError(err)
			}
		}
	}
	return nil
}

// Close releases the journal file. The file is already durable — every
// Append synced itself.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
