package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdfault/internal/faultinject"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.journal")
}

type notePayload struct {
	Note string `json:"note"`
	N    int    `json:"n"`
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{KindAdmit, KindLease, KindAnswer, KindSeal}
	for i, k := range kinds {
		if err := w.Append(k, notePayload{Note: k, N: i}); err != nil {
			t.Fatalf("append %s: %v", k, err)
		}
	}
	if w.Seq() != uint64(len(kinds)) {
		t.Fatalf("seq = %d, want %d", w.Seq(), len(kinds))
	}
	if w.Bytes() <= 0 {
		t.Fatalf("bytes = %d, want > 0", w.Bytes())
	}
	if st, _ := os.Stat(path); st.Size() != w.Bytes() {
		t.Fatalf("file size %d != writer bytes %d", st.Size(), w.Bytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != len(kinds) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(kinds))
	}
	for i, rec := range recs {
		if rec.Kind != kinds[i] {
			t.Fatalf("record %d kind = %q, want %q", i, rec.Kind, kinds[i])
		}
		if rec.Seq != uint64(i+1) || rec.Term != 1 || rec.Version != FormatVersion {
			t.Fatalf("record %d envelope = %+v", i, rec)
		}
	}
}

func TestAppendExistingContinuesSequence(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindAdmit, notePayload{Note: "a"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := AppendExisting(path, 2, w.Seq(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(KindTakeover, notePayload{Note: "t"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != 2 || recs[1].Seq != 2 || recs[1].Term != 2 || recs[1].Kind != KindTakeover {
		t.Fatalf("records = %+v", recs)
	}
}

func TestCorruptionFailsTypedWithOffset(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit-flip", func(b []byte) []byte {
			// Flip a bit inside the second line's payload.
			i := 1 + indexNth(b, '\n', 0) + 20
			b[i] ^= 0x40
			return b
		}},
		{"truncated", func(b []byte) []byte {
			return b[:len(b)-7]
		}},
		{"foreign-version", func(b []byte) []byte {
			second := 1 + indexNth(b, '\n', 0)
			line := b[second : 1+indexNth(b, '\n', 1)]
			mutated := strings.Replace(string(line), FormatVersion, "rdjournal/v9", 1)
			return append(b[:second], mutated...)
		}},
		{"seq-regression", func(b []byte) []byte {
			// Duplicate the first line after itself: repeats seq 1.
			first := b[:1+indexNth(b, '\n', 0)]
			return append(append([]byte{}, first...), b...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tempJournal(t)
			w, err := Create(path, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := w.Append(KindLease, notePayload{Note: "lease-record-padding", N: i}); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(append([]byte{}, raw...)), 0o644); err != nil {
				t.Fatal(err)
			}

			recs, err := ReadFile(path)
			if err == nil {
				t.Fatalf("replay of %s journal succeeded with %d records", tc.name, len(recs))
			}
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("error %v does not wrap ErrCorruptRecord", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *CorruptError", err)
			}
			if ce.Path != path {
				t.Fatalf("CorruptError.Path = %q, want %q", ce.Path, path)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(raw))+int64(len(raw)) {
				t.Fatalf("CorruptError.Offset = %d out of range", ce.Offset)
			}
			// The good prefix before the corruption must survive intact.
			for i, rec := range recs {
				if rec.Kind != KindLease || rec.Seq != uint64(i+1) {
					t.Fatalf("prefix record %d = %+v", i, rec)
				}
			}
		})
	}
}

func indexNth(b []byte, c byte, n int) int {
	seen := 0
	for i, x := range b {
		if x == c {
			if seen == n {
				return i
			}
			seen++
		}
	}
	return -1
}

func TestTornFinalLineWithoutNewlineStillReplays(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindAdmit, notePayload{Note: "a"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("replay = %d records, %v; want 1 record, nil", len(recs), err)
	}
}

func TestFenceStaleTermFailsTyped(t *testing.T) {
	path := tempJournal(t)
	fence := NewFence()
	term := fence.Acquire(0)
	w, err := Create(path, term, fence)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(KindAdmit, notePayload{Note: "a"}); err != nil {
		t.Fatal(err)
	}

	next := fence.Acquire(0)
	if next <= term {
		t.Fatalf("Acquire not monotone: %d then %d", term, next)
	}
	err = w.Append(KindAnswer, notePayload{Note: "late"})
	if !errors.Is(err, ErrStaleCoordinator) {
		t.Fatalf("fenced append error = %v, want ErrStaleCoordinator", err)
	}
	// The fenced append must not have written anything.
	recs, rerr := ReadFile(path)
	if rerr != nil || len(recs) != 1 {
		t.Fatalf("journal after fenced append: %d records, %v", len(recs), rerr)
	}
}

func TestFenceAcquireRespectsMin(t *testing.T) {
	f := NewFence()
	if got := f.Acquire(7); got != 7 {
		t.Fatalf("Acquire(7) = %d", got)
	}
	if got := f.Acquire(0); got != 8 {
		t.Fatalf("Acquire(0) after 7 = %d", got)
	}
	if err := f.Check(8); err != nil {
		t.Fatalf("Check(current) = %v", err)
	}
	if err := f.Check(7); !errors.Is(err, ErrStaleCoordinator) {
		t.Fatalf("Check(stale) = %v", err)
	}
}

func TestShipStaleFailsAppendOtherErrorsAreNonFatal(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var shipped, nonFatal int
	w.OnShipError = func(error) { nonFatal++ }
	w.Ship = func(term uint64, line []byte) error {
		shipped++
		if _, err := ValidateLine(line); err != nil {
			t.Fatalf("shipped line invalid: %v", err)
		}
		if term != 1 {
			t.Fatalf("shipped term = %d", term)
		}
		return errors.New("standby unreachable")
	}
	if err := w.Append(KindLease, notePayload{Note: "a"}); err != nil {
		t.Fatalf("append with partitioned standby: %v", err)
	}
	if shipped != 1 || nonFatal != 1 {
		t.Fatalf("shipped=%d nonFatal=%d", shipped, nonFatal)
	}

	w.Ship = func(uint64, []byte) error {
		return &CorruptError{Reason: "x"} // not stale: still non-fatal
	}
	if err := w.Append(KindLease, notePayload{Note: "b"}); err != nil {
		t.Fatalf("append with corrupt-rejecting standby: %v", err)
	}

	w.Ship = func(uint64, []byte) error { return ErrStaleCoordinator }
	err = w.Append(KindAnswer, notePayload{Note: "fenced"})
	if !errors.Is(err, ErrStaleCoordinator) {
		t.Fatalf("append under fencing follower = %v, want ErrStaleCoordinator", err)
	}
}

func TestJournalLatencyInjectionFailsAppend(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointCoordJournalLatency,
		Kind:  faultinject.KindError,
		Hit:   1,
		Count: 1,
	})
	restore := faultinject.Activate(plan)
	defer restore()

	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(KindAdmit, notePayload{Note: "a"}); err == nil {
		t.Fatal("append with KindError latency rule succeeded")
	}
	if plan.Fired(faultinject.PointCoordJournalLatency) == 0 {
		t.Fatal("latency point never fired")
	}
	// Rule exhausted: next append goes through.
	if err := w.Append(KindAdmit, notePayload{Note: "b"}); err != nil {
		t.Fatalf("append after rule exhausted: %v", err)
	}
}

func TestJournalCorruptInjectionFailsReplayTyped(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointCoordJournalCorrupt,
		Kind:  faultinject.KindCorrupt,
		Hit:   2,
		Count: 1,
		Seed:  42,
	})
	restore := faultinject.Activate(plan)
	path := tempJournal(t)
	w, err := Create(path, 1, nil)
	if err != nil {
		restore()
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(KindLease, notePayload{Note: "padding-for-corruption", N: i}); err != nil {
			restore()
			t.Fatal(err)
		}
	}
	w.Close()
	restore()
	if plan.Fired(faultinject.PointCoordJournalCorrupt) == 0 {
		t.Fatal("corrupt point never fired")
	}

	recs, err := ReadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("replay of injected-corrupt journal: %d records, err %v", len(recs), err)
	}
	if len(recs) != 1 {
		t.Fatalf("good prefix = %d records, want 1", len(recs))
	}
}
