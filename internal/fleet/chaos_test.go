// The killed-node chaos suite. The bar, per the design: for ANY worker
// count and ANY schedule of kills, dropped dispatches, delayed replies
// and corrupted responses, the merged counters are bit-identical to a
// clean single-process run — chaos may cost retries and time, never a
// digit.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
	"rdfault/internal/serve"
)

// chaosRun arms rules, runs the fleet over a fresh pool, and returns
// the result plus the plan (for Fired assertions) and the pool.
func chaosRun(t *testing.T, workers int, mut func(*Config), h core.Heuristic, rules ...faultinject.Rule) (*Result, *faultinject.Plan, *LocalPool, error) {
	t.Helper()
	c := gen.RippleAdder(4, gen.XorNAND)
	pool := newPool(t, workers)
	cfg := testConfig(pool, 5)
	if mut != nil {
		mut(&cfg)
	}
	plan := faultinject.NewPlan(rules...)
	restore := faultinject.Activate(plan)
	defer restore()
	res, err := Run(context.Background(), cfg, c, h)
	return res, plan, pool, err
}

// chaosRef is the clean single-process reference for the chaos circuit.
func chaosRef(t *testing.T) *core.Report {
	t.Helper()
	ref, err := core.Identify(gen.RippleAdder(4, gen.XorNAND), core.Heuristic2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// The sweep: every fault schedule crossed with 2- and 4-worker pools,
// all merged counters (Segments included) bit-identical to the clean
// 1-worker sharded run and to the single-process Identify.
func TestChaosScheduleSweepKeepsCountersBitIdentical(t *testing.T) {
	ref := chaosRef(t)
	clean, _, _, err := chaosRun(t, 1, nil, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, clean, ref)

	schedules := []struct {
		name string
		mut  func(*Config)
		// minWorkers skips pools too small to survive the schedule's
		// kills (killing the whole pool is ErrNoWorkers by design,
		// covered by its own test below).
		minWorkers int
		rules      []faultinject.Rule
	}{
		{
			name: "kill-one-worker",
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 2, Count: 1},
			},
		},
		{
			name:       "kill-two-workers",
			minWorkers: 3,
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 2, Count: 1},
				{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 4, Count: 1},
			},
		},
		{
			name: "dropped-dispatches",
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetDispatch, Kind: faultinject.KindError, Count: 3},
			},
		},
		{
			name: "corrupt-responses",
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetResponseCorrupt, Kind: faultinject.KindCorrupt, Count: 2, Seed: 99},
			},
		},
		{
			name: "zombie-latency",
			mut:  func(c *Config) { c.DispatchTimeout = 150 * time.Millisecond },
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetLatency, Kind: faultinject.KindSleep, Delay: 600 * time.Millisecond, Hit: 2, Count: 1},
			},
		},
		{
			name: "mixed-everything",
			mut:  func(c *Config) { c.DispatchTimeout = 200 * time.Millisecond },
			rules: []faultinject.Rule{
				{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 3, Count: 1},
				{Point: faultinject.PointFleetDispatch, Kind: faultinject.KindError, Count: 2},
				{Point: faultinject.PointFleetResponseCorrupt, Kind: faultinject.KindCorrupt, Hit: 4, Count: 1, Seed: 7},
				{Point: faultinject.PointFleetLatency, Kind: faultinject.KindSleep, Delay: 700 * time.Millisecond, Hit: 6, Count: 1},
			},
		},
	}
	for _, sc := range schedules {
		for _, workers := range []int{2, 4} {
			if workers < sc.minWorkers {
				continue
			}
			t.Run(fmt.Sprintf("%s/%dw", sc.name, workers), func(t *testing.T) {
				res, plan, _, err := chaosRun(t, workers, sc.mut, core.Heuristic2, sc.rules...)
				if err != nil {
					t.Fatalf("fleet run failed under chaos: %v", err)
				}
				for _, r := range sc.rules {
					if plan.Fired(r.Point) == 0 {
						t.Fatalf("no rule fired at %s; the schedule tested nothing", r.Point)
					}
				}
				assertMatchesIdentify(t, res, ref)
				if res.Segments != clean.Segments {
					t.Fatalf("segments %d, clean sharded run %d", res.Segments, clean.Segments)
				}
			})
		}
	}
}

// A killed worker must be discovered, quarantined, probed and declared
// dead — and its cones reclaimed and finished by the survivors.
func TestChaosKilledWorkerIsReclaimedAndDeclaredDead(t *testing.T) {
	ref := chaosRef(t)
	// FailThreshold 1: the killed worker's very first failed dispatch
	// trips its breaker, so quarantine/probe/dead happen even if the
	// survivor drains the remaining cones quickly.
	res, _, pool, err := chaosRun(t, 2,
		func(c *Config) { c.FailThreshold = 1 },
		core.Heuristic2,
		faultinject.Rule{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError, Hit: 2, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesIdentify(t, res, ref)
	if pool.Killed() != 1 {
		t.Fatalf("%d workers killed, want 1", pool.Killed())
	}
	if res.Stats.DeadWorkers != 1 {
		t.Fatalf("stats counted %d dead workers, want 1 (stats %+v)", res.Stats.DeadWorkers, res.Stats)
	}
	var sawQuarantine, sawDead bool
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvQuarantine:
			sawQuarantine = true
		case EvDead:
			sawDead = true
		}
	}
	if !sawQuarantine || !sawDead {
		t.Fatalf("event log missing quarantine/dead entries (quarantine=%v dead=%v)", sawQuarantine, sawDead)
	}
}

// An abandoned dispatch's late reply is discarded by epoch — the stats
// must show the abandonment AND the discarded zombie, with the counters
// untouched.
func TestChaosZombieReplyIsDiscarded(t *testing.T) {
	ref := chaosRef(t)
	res, plan, _, err := chaosRun(t, 2,
		func(c *Config) { c.DispatchTimeout = 120 * time.Millisecond },
		core.Heuristic2,
		faultinject.Rule{Point: faultinject.PointFleetLatency, Kind: faultinject.KindSleep, Delay: 500 * time.Millisecond, Hit: 1, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fired(faultinject.PointFleetLatency) == 0 {
		t.Fatal("latency rule never fired")
	}
	if res.Stats.Abandoned < 1 || res.Stats.ZombieDiscards < 1 {
		t.Fatalf("abandoned=%d zombies=%d, want at least 1 each", res.Stats.Abandoned, res.Stats.ZombieDiscards)
	}
	assertMatchesIdentify(t, res, ref)
}

// Corrupted response bytes must be caught by parse/checksum and
// retried; a corrupt answer must never reach the merge.
func TestChaosCorruptResponsesAreRetriedNotMerged(t *testing.T) {
	ref := chaosRef(t)
	res, plan, _, err := chaosRun(t, 2, nil, core.Heuristic2,
		faultinject.Rule{Point: faultinject.PointFleetResponseCorrupt, Kind: faultinject.KindCorrupt, Count: 3, Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Fired(faultinject.PointFleetResponseCorrupt); got < 3 {
		t.Fatalf("corrupt rule fired %d times, want 3", got)
	}
	if res.Stats.Failures < 3 {
		t.Fatalf("only %d failures counted for 3 corrupted responses", res.Stats.Failures)
	}
	assertMatchesIdentify(t, res, ref)
}

// Every worker dead with cones pending fails typed, not hanging.
func TestChaosAllWorkersDeadFailsTyped(t *testing.T) {
	_, _, pool, err := chaosRun(t, 2, nil, core.Heuristic2,
		faultinject.Rule{Point: faultinject.PointFleetWorkerKill, Kind: faultinject.KindError})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if pool.Killed() != 2 {
		t.Fatalf("%d workers killed, want 2", pool.Killed())
	}
}

// The failover primitive, isolated: a slice chain started on worker A
// and finished on worker B (checkpoint migration) must produce exactly
// the counters of the whole chain run on B alone.
func TestChaosCheckpointMigratesAcrossWorkers(t *testing.T) {
	c := gen.RippleAdder(6, gen.XorNAND)
	sort, err := globalSort(c, core.Heuristic2)
	if err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs()
	cone, mapping, err := c.Cone(outs[len(outs)-1])
	if err != nil {
		t.Fatal(err)
	}
	bench := benchOfCone(t, cone)
	req := serve.ConeRequest{
		Bench:     bench,
		Name:      cone.Name(),
		Criterion: "sigma^pi",
		Sort:      sort.Cone(mapping).ByName(cone),
		Workers:   1,
	}

	pool := newPool(t, 2)
	tr := &HTTPTransport{}
	a, b := pool.Addrs()[0], pool.Addrs()[1]
	ctx := context.Background()

	oneShot, err := tr.Dispatch(ctx, b, req)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Status != "complete" {
		t.Fatalf("one-shot run ended %q", oneShot.Status)
	}

	// Slow the enumeration so slices on A expire and stream checkpoints.
	plan := faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointWorker, Kind: faultinject.KindSleep, Delay: time.Millisecond,
	})
	restore := faultinject.Activate(plan)
	sliced := req
	sliced.SliceMS = 5
	var migrated *serve.ConeAnswer
	hops := 0
	onA := true
	for {
		hops++
		if hops > 500 {
			t.Fatal("slice chain made no progress")
		}
		worker := a
		if !onA {
			worker = b
		}
		ans, err := tr.Dispatch(ctx, worker, sliced)
		if err != nil {
			t.Fatalf("hop %d on %s: %v", hops, worker, err)
		}
		if ans.Status == "complete" {
			migrated = ans
			break
		}
		if len(ans.Checkpoint) == 0 {
			t.Fatalf("hop %d interrupted without checkpoint", hops)
		}
		sliced.Checkpoint = ans.Checkpoint
		if hops >= 2 {
			onA = false // migrate: every later slice runs on B
		}
	}
	restore()
	if onA {
		t.Fatal("chain completed before migrating; nothing was tested")
	}
	if migrated.TotalPaths != oneShot.TotalPaths || migrated.Selected != oneShot.Selected ||
		migrated.RD != oneShot.RD || migrated.Segments != oneShot.Segments {
		t.Fatalf("migrated chain total=%s selected=%d rd=%s segments=%d; one-shot total=%s selected=%d rd=%s segments=%d",
			migrated.TotalPaths, migrated.Selected, migrated.RD, migrated.Segments,
			oneShot.TotalPaths, oneShot.Selected, oneShot.RD, oneShot.Segments)
	}
}

// benchOfCone serializes a cone for a wire dispatch.
func benchOfCone(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var b strings.Builder
	if err := circuit.WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
