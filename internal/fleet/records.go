package fleet

import (
	"encoding/json"

	"rdfault/internal/serve"
)

// Journal payload schemas — what each journal.Kind* record carries.
// These are the coordinator's durable state: recovery rebuilds every
// job from an admit record plus the answer/slice/epoch records that
// follow it, consulting nothing else. Fields are versioned only by the
// journal's format stamp; additive evolution is fine (unknown payload
// fields are ignored on replay), renames are not.

// admitCone is one cone's immutable dispatch inputs: everything a
// worker needs, captured at admission so recovery never has to re-read
// the circuit or recompute the global sort.
type admitCone struct {
	Name string `json:"name"`
	// Bench is the cone's netlist in bench format.
	Bench string `json:"bench"`
	// Sort is the global input sort projected onto this cone (nil for
	// the FS criterion, which needs none).
	Sort map[string][]int `json:"sort,omitempty"`
	// StoreKey addresses the cone in the result store ("" without one).
	StoreKey string `json:"store_key,omitempty"`
}

// admitRecord journals job admission: the circuit, heuristic,
// criterion, slicing policy and every cone with its projected sort.
// Written first, before any dispatch; a journal without one holds no
// resumable job.
type admitRecord struct {
	Circuit   string      `json:"circuit"`
	Heuristic string      `json:"heuristic"`
	Criterion string      `json:"criterion"`
	SliceMS   int64       `json:"slice_ms,omitempty"`
	Cones     []admitCone `json:"cones"`
}

// leaseRecord journals cone ownership: worker, epoch and deadline,
// flushed before the dispatch leaves the coordinator. Replay uses the
// epochs as a floor (a recovered coordinator starts every unfinished
// cone above its highest journaled epoch, so in-flight replies from the
// previous life are provably stale) and the audit uses the
// (cone, epoch) pairs to prove every merged answer had a lease.
type leaseRecord struct {
	Cone       int    `json:"cone"`
	Name       string `json:"name"`
	Worker     string `json:"worker"`
	Epoch      uint64 `json:"epoch"`
	DeadlineMS int64  `json:"deadline_ms"`
}

// sliceRecord journals an interrupted slice's checkpoint, flushed
// before the coordinator adopts it; recovery resumes the cone from its
// last journaled checkpoint instead of from scratch.
type sliceRecord struct {
	Cone       int             `json:"cone"`
	Epoch      uint64          `json:"epoch"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// epochRecord journals an epoch bump (an abandoned dispatch). The bump
// is applied in memory before it is journaled — epochs only gate
// liveness within one coordinator life, and recovery re-bumps past the
// journaled maximum anyway, so a crash between bump and append cannot
// admit a zombie.
type epochRecord struct {
	Cone  int    `json:"cone"`
	Epoch uint64 `json:"epoch"`
}

// answerRecord journals an accepted complete ConeAnswer, flushed before
// the cone is marked done. Source distinguishes a worker's computed
// answer from one retired out of the result store; both are sealed, so
// replay re-verifies the checksum before trusting either.
type answerRecord struct {
	Cone   int               `json:"cone"`
	Name   string            `json:"name"`
	Epoch  uint64            `json:"epoch"`
	Source string            `json:"source"`
	Worker string            `json:"worker,omitempty"`
	Answer *serve.ConeAnswer `json:"answer"`
}

// answerSourceWorker / answerSourceStore are answerRecord.Source values.
const (
	answerSourceWorker = "worker"
	answerSourceStore  = "store"
)

// sealRecord journals the merged run: the journal's own record that the
// job finished and what the counters were. A resumed sealed journal
// merges straight from its answer records and must reproduce these
// numbers bit-identically.
type sealRecord struct {
	Circuit    string `json:"circuit"`
	TotalPaths string `json:"total_paths"`
	Selected   int64  `json:"selected"`
	RD         string `json:"rd"`
	Segments   int64  `json:"segments"`
	Pruned     int64  `json:"pruned"`
	Cones      int    `json:"cones"`
}

// takeoverRecord journals a recovery: which term took over, why, and
// how much of the job the journal had already retired.
type takeoverRecord struct {
	Term    uint64 `json:"term"`
	Reason  string `json:"reason"`
	Retired int    `json:"retired"`
	Pending int    `json:"pending"`
}

// shutdownRecord journals a graceful interrupt: the journal is sealed
// for resumption, not abandoned.
type shutdownRecord struct {
	Reason string `json:"reason"`
}
