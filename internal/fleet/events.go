// Package fleet distributes RD identification across a pool of rdserved
// workers: the coordinator shards the circuit by output cone, computes
// one global input sort and projects it onto every cone (which is what
// makes per-cone counters sum bit-identically to a single-process run),
// dispatches checkpoint-bounded slices over HTTP, and survives worker
// death by reclaiming each cone from its last streamed checkpoint.
//
// The resilience contract, enforced by the chaos suite: for any worker
// count and any schedule of kills, dropped dispatches, delayed or
// corrupted responses, the merged Selected/RD/Total/Segments counters
// are bit-identical to a clean run — a fault can cost time, never
// correctness. Zombie replies (answers arriving after the coordinator
// reassigned the cone) are discarded by epoch, so every cone's result
// is accounted at most once.
package fleet

import (
	"sync"

	"rdfault/internal/faultinject"
	"rdfault/internal/telemetry"
)

// Event is one entry of the coordinator's dispatch/retry/quarantine log
// — the unified telemetry schema, so fleet events interleave with serve
// job-lifecycle events in one JSONL stream. Timestamps are stamped
// through faultinject.PointFleetClock so chaos tests can skew them.
type Event = telemetry.Event

// Event kinds. Untyped strings so they compare directly against
// telemetry.Event.Kind.
const (
	// EvDispatch: a cone slice left for a worker.
	EvDispatch = "dispatch"
	// EvSlice: a worker answered an interrupted slice with a checkpoint;
	// the cone is requeued with its progress kept.
	EvSlice = "slice"
	// EvComplete: a cone's final answer was accepted.
	EvComplete = "complete"
	// EvFailure: a dispatch failed (network, saturation, corrupt
	// response); the cone was reclaimed and requeued.
	EvFailure = "failure"
	// EvAbandon: a dispatch exceeded the coordinator's wait; the cone's
	// epoch advanced and the cone was requeued. Whatever the old dispatch
	// still returns is a zombie.
	EvAbandon = "abandon"
	// EvZombie: a reply from an abandoned dispatch arrived and was
	// discarded (at-most-once accounting).
	EvZombie = "zombie-discard"
	// EvRestart: a worker rejected the cone's checkpoint (422); the
	// checkpoint was dropped and the cone restarts from scratch.
	EvRestart = "checkpoint-restart"
	// EvQuarantine: a worker crossed the consecutive-failure threshold
	// and stopped taking work pending health probes.
	EvQuarantine = "quarantine"
	// EvRejoin: a quarantined worker answered a health probe and took
	// work again.
	EvRejoin = "rejoin"
	// EvDead: a quarantined worker exhausted its health probes and left
	// the pool for good.
	EvDead = "dead"
	// EvStoreHit: a cone was retired from the result store at build
	// time, without a single dispatch.
	EvStoreHit = "store.hit"
	// EvJournalSeal: the run merged and its seal record is durable in
	// the write-ahead journal.
	EvJournalSeal = "coord.journal.seal"
	// EvJournalCorrupt: a journal record failed validation during
	// recovery; everything from its byte offset on is treated as lost
	// and recomputed.
	EvJournalCorrupt = "coord.journal.corrupt"
	// EvJournalError: a journal append failed (disk, fencing aside); the
	// run aborts rather than proceed past an unjournaled side effect.
	EvJournalError = "coord.journal.error"
	// EvJournalShipError: shipping a journal record to the hot standby
	// failed (partition, standby down). Non-fatal: the primary
	// continues; a later promotion recomputes whatever the standby's
	// journal prefix is missing.
	EvJournalShipError = "coord.journal.ship-error"
	// EvJournalRetire: recovery replay retired a cone from a journaled
	// answer — no re-dispatch, no recompute.
	EvJournalRetire = "coord.journal.retire"
	// EvTakeover: a restarted or promoted coordinator took the job over
	// under a new term.
	EvTakeover = "coord.takeover"
	// EvFenced: a stale coordinator's append or merge was rejected by
	// the term fence (ErrStaleCoordinator).
	EvFenced = "coord.fenced"
	// EvKilled: a coord.kill fault-injection rule fired; the coordinator
	// aborts at the phase boundary as if the process died there.
	EvKilled = "coord.killed"
)

// eventLog collects events concurrently, optionally streams them to a
// sink and a telemetry log. The telemetry log assigns sequence numbers
// and writes the JSONL, so a coordinator sharing its log with a serve
// instance produces one totally-ordered stream.
type eventLog struct {
	mu   sync.Mutex
	list []Event
	sink func(Event)
	tl   *telemetry.Log
}

func (l *eventLog) add(kind, worker, cone, detail string, fields map[string]int64) {
	ev := Event{
		TS:     faultinject.Now(faultinject.PointFleetClock),
		Source: "fleet",
		Kind:   kind,
		Worker: worker,
		Cone:   cone,
		Detail: detail,
		Fields: fields,
	}
	ev = l.tl.Emit(ev) // nil-safe; assigns Seq and writes the JSONL line
	l.mu.Lock()
	l.list = append(l.list, ev)
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.list...)
}

// count reports how many logged events have the given kind.
func (l *eventLog) count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return telemetry.CountKind(l.list, kind)
}
