// Package fleet distributes RD identification across a pool of rdserved
// workers: the coordinator shards the circuit by output cone, computes
// one global input sort and projects it onto every cone (which is what
// makes per-cone counters sum bit-identically to a single-process run),
// dispatches checkpoint-bounded slices over HTTP, and survives worker
// death by reclaiming each cone from its last streamed checkpoint.
//
// The resilience contract, enforced by the chaos suite: for any worker
// count and any schedule of kills, dropped dispatches, delayed or
// corrupted responses, the merged Selected/RD/Total/Segments counters
// are bit-identical to a clean run — a fault can cost time, never
// correctness. Zombie replies (answers arriving after the coordinator
// reassigned the cone) are discarded by epoch, so every cone's result
// is accounted at most once.
package fleet

import (
	"sync"
	"time"

	"rdfault/internal/faultinject"
)

// EventKind labels one entry of the coordinator's dispatch log.
type EventKind string

const (
	// EvDispatch: a cone slice left for a worker.
	EvDispatch EventKind = "dispatch"
	// EvSlice: a worker answered an interrupted slice with a checkpoint;
	// the cone is requeued with its progress kept.
	EvSlice EventKind = "slice"
	// EvComplete: a cone's final answer was accepted.
	EvComplete EventKind = "complete"
	// EvFailure: a dispatch failed (network, saturation, corrupt
	// response); the cone was reclaimed and requeued.
	EvFailure EventKind = "failure"
	// EvAbandon: a dispatch exceeded the coordinator's wait; the cone's
	// epoch advanced and the cone was requeued. Whatever the old dispatch
	// still returns is a zombie.
	EvAbandon EventKind = "abandon"
	// EvZombie: a reply from an abandoned dispatch arrived and was
	// discarded (at-most-once accounting).
	EvZombie EventKind = "zombie-discard"
	// EvRestart: a worker rejected the cone's checkpoint (422); the
	// checkpoint was dropped and the cone restarts from scratch.
	EvRestart EventKind = "checkpoint-restart"
	// EvQuarantine: a worker crossed the consecutive-failure threshold
	// and stopped taking work pending health probes.
	EvQuarantine EventKind = "quarantine"
	// EvRejoin: a quarantined worker answered a health probe and took
	// work again.
	EvRejoin EventKind = "rejoin"
	// EvDead: a quarantined worker exhausted its health probes and left
	// the pool for good.
	EvDead EventKind = "dead"
)

// Event is one entry of the dispatch/retry/quarantine log.
type Event struct {
	// Time is stamped through faultinject.PointFleetClock so chaos tests
	// can skew it.
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Worker string    `json:"worker,omitempty"`
	Cone   string    `json:"cone,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// eventLog collects events concurrently and optionally streams them to
// a sink.
type eventLog struct {
	mu   sync.Mutex
	list []Event
	sink func(Event)
}

func (l *eventLog) add(kind EventKind, worker, cone, detail string) {
	ev := Event{
		Time:   faultinject.Now(faultinject.PointFleetClock),
		Kind:   kind,
		Worker: worker,
		Cone:   cone,
		Detail: detail,
	}
	l.mu.Lock()
	l.list = append(l.list, ev)
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.list...)
}

// count reports how many logged events have the given kind.
func (l *eventLog) count(kind EventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.list {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
