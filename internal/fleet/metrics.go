package fleet

import "rdfault/internal/telemetry"

// Metrics is the coordinator's Prometheus surface. One Metrics may be
// shared across many runs (a long-lived rdfleet process that resumes,
// or a standby that promotes): counters accumulate, the journal gauge
// tracks the live writer.
type Metrics struct {
	// Takeovers counts recoveries — restarts and standby promotions that
	// rebuilt a job from its journal.
	Takeovers *telemetry.Counter
	// JournalBytes is the write-ahead journal's current size.
	JournalBytes *telemetry.Gauge
	// Fenced counts appends and merges rejected with
	// ErrStaleCoordinator.
	Fenced *telemetry.Counter
}

// NewMetrics registers the fleet coordinator metrics on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Takeovers: r.NewCounter("rd_fleet_takeover_total",
			"Coordinator recoveries: journal-replay restarts and standby promotions."),
		JournalBytes: r.NewGauge("rd_fleet_journal_bytes",
			"Write-ahead job journal size in bytes."),
		Fenced: r.NewCounter("rd_fleet_fenced_total",
			"Stale-coordinator appends and merges rejected by the term fence."),
	}
}
