package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the circuit in GraphViz DOT format. Leads present in
// highlight are drawn bold red — the rendering used for the paper's
// Figure 1/2 style drawings of stabilizing systems and paths.
func WriteDot(w io.Writer, c *Circuit, highlight map[Lead]bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", c.Name())
	for g := GateID(0); int(g) < c.NumGates(); g++ {
		gate := c.Gate(g)
		shape := "box"
		style := ""
		switch gate.Type {
		case Input:
			shape = "circle"
			style = ", style=filled, fillcolor=\"#ddeeff\""
		case Output:
			shape = "doublecircle"
			style = ", style=filled, fillcolor=\"#ffeedd\""
		}
		fmt.Fprintf(bw, "  n%d [label=%q, shape=%s%s];\n",
			g, dotLabel(gate), shape, style)
	}
	for g := GateID(0); int(g) < c.NumGates(); g++ {
		for pin, f := range c.Fanin(g) {
			attr := ""
			if highlight[Lead{To: g, Pin: pin}] {
				attr = " [color=red, penwidth=2.5]"
			}
			fmt.Fprintf(bw, "  n%d -> n%d%s;\n", f, g, attr)
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func dotLabel(g *Gate) string {
	switch g.Type {
	case Input, Output:
		return g.Name
	default:
		return fmt.Sprintf("%s\n%s", g.Name, strings.ToLower(g.Type.String()))
	}
}
