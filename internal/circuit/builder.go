package circuit

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// buildVersion is the global monotone build counter behind
// Circuit.Version. It only ever advances, so two circuits never share a
// version and a version observed once can never refer to different
// structure later.
var buildVersion atomic.Uint64

// Builder incrementally constructs a Circuit. A Builder is not safe for
// concurrent use. After Build succeeds the Builder must not be reused.
type Builder struct {
	name  string
	gates []Gate
	names map[string]GateID
	err   error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, names: make(map[string]GateID)}
}

func (b *Builder) fail(format string, args ...any) GateID {
	if b.err == nil {
		b.err = fmt.Errorf("circuit %q: "+format, append([]any{b.name}, args...)...)
	}
	return None
}

func (b *Builder) add(t GateType, name string, fanin []GateID) GateID {
	if b.err != nil {
		return None
	}
	if name == "" {
		name = fmt.Sprintf("%s_%d", t, len(b.gates))
	}
	if _, dup := b.names[name]; dup {
		return b.fail("duplicate gate name %q", name)
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(b.gates) {
			return b.fail("gate %q references unknown fanin id %d", name, f)
		}
		if b.gates[f].Type == Output {
			return b.fail("gate %q uses PO %q as fanin", name, b.gates[f].Name)
		}
	}
	id := GateID(len(b.gates))
	b.gates = append(b.gates, Gate{Type: t, Name: name, Fanin: fanin})
	b.names[name] = id
	return id
}

// Input adds a primary input named name and returns its id.
func (b *Builder) Input(name string) GateID {
	return b.add(Input, name, nil)
}

// Gate adds a gate of type t driven by the given fanin gates, in pin
// order. A generated name is used if name is empty.
func (b *Builder) Gate(t GateType, name string, fanin ...GateID) GateID {
	switch t {
	case Input:
		return b.fail("use Input to add primary inputs")
	case Output:
		return b.fail("use Output to add primary outputs")
	case Buf, Not:
		if len(fanin) != 1 {
			return b.fail("%s gate %q needs exactly 1 fanin, got %d", t, name, len(fanin))
		}
	case And, Or, Nand, Nor:
		if len(fanin) < 2 {
			return b.fail("%s gate %q needs at least 2 fanins, got %d", t, name, len(fanin))
		}
	default:
		return b.fail("unknown gate type %d", t)
	}
	fi := make([]GateID, len(fanin))
	copy(fi, fanin)
	return b.add(t, name, fi)
}

// Output marks the signal driven by gate src as a primary output by adding
// an Output gate named name.
func (b *Builder) Output(name string, src GateID) GateID {
	if b.err != nil {
		return None
	}
	if src < 0 || int(src) >= len(b.gates) {
		return b.fail("output %q references unknown gate id %d", name, src)
	}
	return b.add(Output, name, []GateID{src})
}

// Xor adds a 2-input XOR expanded into four NAND gates (the classic
// c499 -> c1355 expansion): n1=NAND(a,b), n2=NAND(a,n1), n3=NAND(b,n1),
// out=NAND(n2,n3). The returned id is the final NAND. Gates are named
// name_n1..name_n3 and name.
func (b *Builder) Xor(name string, x, y GateID) GateID {
	n1 := b.Gate(Nand, name+"_n1", x, y)
	n2 := b.Gate(Nand, name+"_n2", x, n1)
	n3 := b.Gate(Nand, name+"_n3", y, n1)
	return b.Gate(Nand, name, n2, n3)
}

// Xnor adds a 2-input XNOR as Xor followed by an inverter. The returned id
// is the inverter, named name.
func (b *Builder) Xnor(name string, x, y GateID) GateID {
	v := b.Xor(name+"_x", x, y)
	return b.Gate(Not, name, v)
}

// XorTree adds a balanced tree of 2-input XORs over the given signals and
// returns the root. len(in) must be at least 1; a single signal is
// returned unchanged.
func (b *Builder) XorTree(name string, in ...GateID) GateID {
	if len(in) == 0 {
		return b.fail("XorTree %q needs at least one signal", name)
	}
	level := append([]GateID(nil), in...)
	round := 0
	for len(level) > 1 {
		var next []GateID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Xor(fmt.Sprintf("%s_r%d_%d", name, round, i/2), level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		round++
	}
	return level[0]
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

// Build finalizes the circuit: it validates the structure, computes fanout
// edges, a topological order, levels and lead indexing. Build fails if any
// builder call failed, if the netlist is empty, or if an internal gate has
// no fanout (dangling logic is reported, not silently kept). Primary
// inputs without fanout are allowed: PLA-derived functions may ignore some
// of their declared inputs.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.gates) == 0 {
		return nil, errors.New("circuit " + b.name + ": empty netlist")
	}
	c := &Circuit{
		name:    b.name,
		version: buildVersion.Add(1),
		gates:   b.gates,
		byName:  b.names,
	}
	n := len(c.gates)
	c.fanout = make([][]Edge, n)
	c.leadOff = make([]int32, n)
	off := int32(0)
	for i := range c.gates {
		g := &c.gates[i]
		c.leadOff[i] = off
		off += int32(len(g.Fanin))
		switch g.Type {
		case Input:
			c.inputs = append(c.inputs, GateID(i))
		case Output:
			c.outputs = append(c.outputs, GateID(i))
		}
		for pin, f := range g.Fanin {
			c.fanout[f] = append(c.fanout[f], Edge{To: GateID(i), Pin: pin})
		}
	}
	if len(c.inputs) == 0 {
		return nil, errors.New("circuit " + b.name + ": no primary inputs")
	}
	if len(c.outputs) == 0 {
		return nil, errors.New("circuit " + b.name + ": no primary outputs")
	}
	// Builder only allows references to already-created gates, so creation
	// order is a topological order.
	c.topo = make([]GateID, n)
	for i := range c.topo {
		c.topo[i] = GateID(i)
	}
	c.level = make([]int32, n)
	for _, g := range c.topo {
		lv := int32(0)
		for _, f := range c.gates[g].Fanin {
			if c.level[f]+1 > lv {
				lv = c.level[f] + 1
			}
		}
		c.level[g] = lv
	}
	for i := range c.gates {
		if c.gates[i].Type != Output && c.gates[i].Type != Input && len(c.fanout[i]) == 0 {
			return nil, fmt.Errorf("circuit %s: gate %q (%s) has no fanout and is not a PO",
				b.name, c.gates[i].Name, c.gates[i].Type)
		}
	}
	return c, nil
}

// MustBuild is Build but panics on error; intended for tests and
// generators of statically known-good circuits.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
