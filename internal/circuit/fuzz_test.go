package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseBench checks that arbitrary input never panics the parser and
// that anything it accepts survives a write/parse round trip.
func FuzzParseBench(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	f.Add("# comment\nINPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n")
	f.Add("garbage")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n")
	// Regressions: these used to surface as a misleading "combinational
	// cycle" (duplicate INPUT drove the builder into its error state) or
	// were silently mis-parsed (a signal both INPUT and gate definition).
	f.Add("INPUT(a)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	f.Add("INPUT(a)\nOUTPUT(y)\na = NOT(b)\nINPUT(b)\ny = AND(a, b)\n")
	f.Add("INPUT(a)\nINPUT(b)\na = NOT(b)\nOUTPUT(a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBench("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBench(&buf, c); err != nil {
			t.Fatalf("accepted circuit failed to write: %v", err)
		}
		c2, err := ParseBench("fuzz2", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("writer output rejected: %v\n%s", err, buf.String())
		}
		if c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", c.NumGates(), c2.NumGates())
		}
	})
}
