// Package circuit provides the gate-level combinational netlist model used
// throughout the library.
//
// The model follows Section II of Sparmann et al. (DAC 1995): a circuit
// consists of gates and leads. Gate types are the simple gates AND, OR,
// NAND, NOR and NOT, plus primary inputs (PIs), primary outputs (POs) and
// BUF. A lead is a wire connecting the output pin of one gate to a specific
// input pin of another gate; fanout stems therefore consist of several
// leads sharing a source gate. Stable logic values live on gate outputs —
// all fanout branches of a stem carry the stem value.
package circuit

import (
	"fmt"
	"strings"
	"sync"
)

// GateID identifies a gate within one Circuit. IDs are dense indices in
// [0, NumGates()) and are assigned in creation order by the Builder.
type GateID int32

// None is the invalid GateID.
const None GateID = -1

// GateType enumerates the supported gate kinds.
type GateType uint8

// Supported gate types. Input gates have no fanin; Output, Buf and Not
// gates have exactly one fanin; the simple gates And, Or, Nand and Nor
// have two or more fanins.
const (
	Input  GateType = iota // primary input, no fanin
	Output                 // primary output marker, one fanin, non-inverting
	Buf                    // buffer, one fanin
	Not                    // inverter, one fanin
	And
	Or
	Nand
	Nor
	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input: "INPUT", Output: "OUTPUT", Buf: "BUF", Not: "NOT",
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Inverting reports whether the gate type logically inverts a propagating
// transition (NOT, NAND, NOR).
func (t GateType) Inverting() bool {
	return t == Not || t == Nand || t == Nor
}

// Controlling returns the controlling input value of the gate type and
// whether the type has one. AND and NAND are controlled by 0, OR and NOR
// by 1. Input, Output, Buf and Not have no controlling value.
func (t GateType) Controlling() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// NonControlling returns the non-controlling input value of the gate type
// and whether the type has one (the complement of Controlling).
func (t GateType) NonControlling() (v bool, ok bool) {
	c, ok := t.Controlling()
	return !c, ok
}

// Eval computes the boolean output of a gate of this type for the given
// input values. It panics for Input gates and for arities that violate the
// type's constraints, which indicates a bug in the caller (circuits built
// through Builder.Build are always structurally valid).
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Output, Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	}
	panic("circuit: Eval on " + t.String())
}

// Gate is one node of the netlist. Fanin lists the source gates of the
// gate's input pins in pin order; the same source may appear on several
// pins. Gate values are immutable once the circuit is built.
type Gate struct {
	Type  GateType
	Name  string
	Fanin []GateID
}

// Edge describes one lead leaving a gate: it enters input pin Pin of gate
// To.
type Edge struct {
	To  GateID
	Pin int
}

// Lead identifies a wire by its destination: input pin Pin of gate To. The
// source gate is To's fanin at that pin.
type Lead struct {
	To  GateID
	Pin int
}

// Circuit is an immutable combinational netlist. Construct one with a
// Builder. All slices returned by accessor methods are owned by the
// Circuit and must not be modified.
type Circuit struct {
	name    string
	version uint64
	gates   []Gate
	inputs  []GateID
	outputs []GateID
	topo    []GateID // topological order, PIs first
	level   []int32  // level[g] = 0 for PIs, else 1+max(fanin levels)
	fanout  [][]Edge // fanout leads per gate
	leadOff []int32  // leadOff[g] = first lead index of gate g's input pins
	byName  map[string]GateID

	// flat is the lazily-built struct-of-arrays view (see Flat); the
	// circuit is immutable after Build, so one build serves every reader.
	flatOnce sync.Once
	flat     *Flat
}

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// Version returns the circuit's monotone build stamp: every Build (and
// therefore every rewrite — synth, dft insertion, cone extraction —
// since rewriters construct new circuits through the Builder) yields a
// strictly larger version, and a built circuit never changes afterwards.
// The stamp is the cache key of the derived-analysis manager
// (internal/analysis): an analysis handle is valid exactly for one
// version, so stale data can never be served for a rewritten circuit.
func (c *Circuit) Version() uint64 { return c.version }

// NumGates returns the number of gates, including PIs and POs.
func (c *Circuit) NumGates() int { return len(c.gates) }

// Gate returns a read-only view of gate g.
func (c *Circuit) Gate(g GateID) *Gate { return &c.gates[g] }

// Type returns the type of gate g.
func (c *Circuit) Type(g GateID) GateType { return c.gates[g].Type }

// Fanin returns the ordered fanin of gate g.
func (c *Circuit) Fanin(g GateID) []GateID { return c.gates[g].Fanin }

// Fanout returns the fanout leads of gate g.
func (c *Circuit) Fanout(g GateID) []Edge { return c.fanout[g] }

// Inputs returns the primary inputs in creation order.
func (c *Circuit) Inputs() []GateID { return c.inputs }

// Outputs returns the primary output gates in creation order.
func (c *Circuit) Outputs() []GateID { return c.outputs }

// TopoOrder returns a topological order of all gates (fanins precede
// fanouts).
func (c *Circuit) TopoOrder() []GateID { return c.topo }

// Level returns the logic level of gate g: 0 for PIs, otherwise one more
// than the maximum level of its fanins.
func (c *Circuit) Level(g GateID) int { return int(c.level[g]) }

// Depth returns the maximum gate level in the circuit.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.level {
		if int(l) > d {
			d = int(l)
		}
	}
	return d
}

// GateByName returns the gate with the given name.
func (c *Circuit) GateByName(name string) (GateID, bool) {
	g, ok := c.byName[name]
	return g, ok
}

// NumLeads returns the total number of leads (sum of all gate fanin
// counts).
func (c *Circuit) NumLeads() int {
	n := len(c.gates)
	return int(c.leadOff[n-1]) + len(c.gates[n-1].Fanin)
}

// LeadIndex returns the dense index of the lead entering pin of gate g,
// suitable for indexing per-lead arrays of length NumLeads().
func (c *Circuit) LeadIndex(g GateID, pin int) int {
	return int(c.leadOff[g]) + pin
}

// LeadAt is the inverse of LeadIndex: it returns the lead with dense index
// i.
func (c *Circuit) LeadAt(i int) Lead {
	// Binary search over leadOff.
	lo, hi := 0, len(c.gates)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(c.leadOff[mid]) <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Lead{To: GateID(lo), Pin: i - int(c.leadOff[lo])}
}

// Source returns the gate driving the given lead.
func (c *Circuit) Source(l Lead) GateID { return c.gates[l.To].Fanin[l.Pin] }

// EvalBool simulates the circuit for one input vector given in
// Inputs() order and returns the stable value of every gate, indexed by
// GateID.
func (c *Circuit) EvalBool(in []bool) []bool {
	if len(in) != len(c.inputs) {
		panic(fmt.Sprintf("circuit: EvalBool got %d values for %d inputs", len(in), len(c.inputs)))
	}
	val := make([]bool, len(c.gates))
	for i, g := range c.inputs {
		val[g] = in[i]
	}
	var buf [8]bool
	for _, g := range c.topo {
		gate := &c.gates[g]
		if gate.Type == Input {
			continue
		}
		args := buf[:0]
		for _, f := range gate.Fanin {
			args = append(args, val[f])
		}
		val[g] = gate.Type.Eval(args)
	}
	return val
}

// OutputsOf extracts the PO values from a full value vector produced by
// EvalBool, in Outputs() order.
func (c *Circuit) OutputsOf(val []bool) []bool {
	out := make([]bool, len(c.outputs))
	for i, g := range c.outputs {
		out[i] = val[g]
	}
	return out
}

// Stats summarizes the structural properties of a circuit.
type Stats struct {
	Gates   int // all gates including PIs and POs
	Inputs  int
	Outputs int
	Leads   int
	Depth   int
	ByType  [numGateTypes]int
}

// Stats computes structural statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates:   len(c.gates),
		Inputs:  len(c.inputs),
		Outputs: len(c.outputs),
		Leads:   c.NumLeads(),
		Depth:   c.Depth(),
	}
	for i := range c.gates {
		s.ByType[c.gates[i].Type]++
	}
	return s
}

// String renders the statistics compactly.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gates=%d inputs=%d outputs=%d leads=%d depth=%d",
		s.Gates, s.Inputs, s.Outputs, s.Leads, s.Depth)
	for t := GateType(0); t < numGateTypes; t++ {
		if s.ByType[t] > 0 {
			fmt.Fprintf(&b, " %s=%d", t, s.ByType[t])
		}
	}
	return b.String()
}
