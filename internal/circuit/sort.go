package circuit

import "fmt"

// InputSort is a mapping π that totally orders the input pins of every
// gate (Definition 7 of the paper). Pos[g][pin] is π(g, l): the position
// of the lead entering pin of gate g, with 0 the highest priority
// ("lowest sort number"). Algorithm 1 restricted by a sort always selects
// the controlling input with the minimum position, fixing one complete
// stabilizing assignment σ^π.
type InputSort struct {
	Pos [][]int
}

// PinOrderSort returns the identity sort: pins are ordered as listed in
// each gate's fanin.
func PinOrderSort(c *Circuit) InputSort {
	pos := make([][]int, c.NumGates())
	for g := range pos {
		fanin := c.Fanin(GateID(g))
		p := make([]int, len(fanin))
		for i := range p {
			p[i] = i
		}
		pos[g] = p
	}
	return InputSort{Pos: pos}
}

// Validate checks that the sort covers every gate and that each gate's
// positions form a permutation of 0..fanin-1.
func (s InputSort) Validate(c *Circuit) error {
	if len(s.Pos) != c.NumGates() {
		return fmt.Errorf("input sort covers %d gates, circuit has %d", len(s.Pos), c.NumGates())
	}
	for g := range s.Pos {
		fanin := c.Fanin(GateID(g))
		if len(s.Pos[g]) != len(fanin) {
			return fmt.Errorf("gate %q: sort has %d positions for %d pins",
				c.Gate(GateID(g)).Name, len(s.Pos[g]), len(fanin))
		}
		seen := make([]bool, len(fanin))
		for pin, p := range s.Pos[g] {
			if p < 0 || p >= len(fanin) || seen[p] {
				return fmt.Errorf("gate %q: positions %v are not a permutation",
					c.Gate(GateID(g)).Name, s.Pos[g])
			}
			seen[p] = true
			_ = pin
		}
	}
	return nil
}

// Inverse returns the sort with every gate's order reversed — the
// "inverse to Heuristic 2" control experiment of Table I.
func (s InputSort) Inverse() InputSort {
	pos := make([][]int, len(s.Pos))
	for g := range s.Pos {
		n := len(s.Pos[g])
		p := make([]int, n)
		for pin, v := range s.Pos[g] {
			p[pin] = n - 1 - v
		}
		pos[g] = p
	}
	return InputSort{Pos: pos}
}

// Cone projects the sort onto a subcircuit extracted by Circuit.Cone:
// mapping[newID] is the parent GateID of the cone gate newID, exactly as
// Cone returned it. Because a cone keeps every fanin pin of every gate it
// contains, each projected row is a verbatim copy of the parent row —
// which is what makes per-cone σ^π enumeration under the projected sort
// agree path-for-path with the whole-circuit run (the side-input
// positions every criterion decision reads are unchanged).
func (s InputSort) Cone(mapping []GateID) InputSort {
	pos := make([][]int, len(mapping))
	for ng, old := range mapping {
		pos[ng] = append([]int(nil), s.Pos[old]...)
	}
	return InputSort{Pos: pos}
}

// ByName renders the sort as a gate-name-keyed wire format holding only
// the rows that carry information (gates with at least two fanin pins).
// SortFromNames inverts it on the receiving side; the name keying is what
// survives a WriteBench/ParseBench round trip, where GateIDs are
// renumbered and single-pin wrapper gates are renamed.
func (s InputSort) ByName(c *Circuit) map[string][]int {
	out := make(map[string][]int)
	for g, row := range s.Pos {
		if len(row) >= 2 {
			out[c.Gate(GateID(g)).Name] = append([]int(nil), row...)
		}
	}
	return out
}

// SortFromNames rebuilds an InputSort for c from ByName's wire format.
// Gates absent from the map take the identity order, which is only
// admissible for gates with fewer than two pins (nothing to order);
// a missing multi-input gate is an error, not a silent pin-order
// fallback — the caller was promised a specific σ and must not
// enumerate under a different one.
func SortFromNames(c *Circuit, byName map[string][]int) (InputSort, error) {
	pos := make([][]int, c.NumGates())
	for g := range pos {
		fanin := c.Fanin(GateID(g))
		name := c.Gate(GateID(g)).Name
		if row, ok := byName[name]; ok {
			pos[g] = append([]int(nil), row...)
			continue
		}
		if len(fanin) >= 2 {
			return InputSort{}, fmt.Errorf("sort names no positions for %d-input gate %q", len(fanin), name)
		}
		pos[g] = make([]int, len(fanin))
	}
	s := InputSort{Pos: pos}
	if err := s.Validate(c); err != nil {
		return InputSort{}, err
	}
	return s, nil
}

// LowOrderSides returns the pins of gate g whose position precedes that of
// pin: the "low-order side-inputs" of the lead entering pin (footnote 2 of
// the paper).
func (s InputSort) LowOrderSides(g GateID, pin int) []int {
	var out []int
	p := s.Pos[g][pin]
	for other, op := range s.Pos[g] {
		if op < p {
			out = append(out, other)
		}
	}
	return out
}

// MinPin returns the pin among candidates with the smallest position for
// gate g. candidates must be non-empty.
func (s InputSort) MinPin(g GateID, candidates []int) int {
	best := candidates[0]
	for _, pin := range candidates[1:] {
		if s.Pos[g][pin] < s.Pos[g][best] {
			best = pin
		}
	}
	return best
}
