package circuit

import "fmt"

// InputSort is a mapping π that totally orders the input pins of every
// gate (Definition 7 of the paper). Pos[g][pin] is π(g, l): the position
// of the lead entering pin of gate g, with 0 the highest priority
// ("lowest sort number"). Algorithm 1 restricted by a sort always selects
// the controlling input with the minimum position, fixing one complete
// stabilizing assignment σ^π.
type InputSort struct {
	Pos [][]int
}

// PinOrderSort returns the identity sort: pins are ordered as listed in
// each gate's fanin.
func PinOrderSort(c *Circuit) InputSort {
	pos := make([][]int, c.NumGates())
	for g := range pos {
		fanin := c.Fanin(GateID(g))
		p := make([]int, len(fanin))
		for i := range p {
			p[i] = i
		}
		pos[g] = p
	}
	return InputSort{Pos: pos}
}

// Validate checks that the sort covers every gate and that each gate's
// positions form a permutation of 0..fanin-1.
func (s InputSort) Validate(c *Circuit) error {
	if len(s.Pos) != c.NumGates() {
		return fmt.Errorf("input sort covers %d gates, circuit has %d", len(s.Pos), c.NumGates())
	}
	for g := range s.Pos {
		fanin := c.Fanin(GateID(g))
		if len(s.Pos[g]) != len(fanin) {
			return fmt.Errorf("gate %q: sort has %d positions for %d pins",
				c.Gate(GateID(g)).Name, len(s.Pos[g]), len(fanin))
		}
		seen := make([]bool, len(fanin))
		for pin, p := range s.Pos[g] {
			if p < 0 || p >= len(fanin) || seen[p] {
				return fmt.Errorf("gate %q: positions %v are not a permutation",
					c.Gate(GateID(g)).Name, s.Pos[g])
			}
			seen[p] = true
			_ = pin
		}
	}
	return nil
}

// Inverse returns the sort with every gate's order reversed — the
// "inverse to Heuristic 2" control experiment of Table I.
func (s InputSort) Inverse() InputSort {
	pos := make([][]int, len(s.Pos))
	for g := range s.Pos {
		n := len(s.Pos[g])
		p := make([]int, n)
		for pin, v := range s.Pos[g] {
			p[pin] = n - 1 - v
		}
		pos[g] = p
	}
	return InputSort{Pos: pos}
}

// LowOrderSides returns the pins of gate g whose position precedes that of
// pin: the "low-order side-inputs" of the lead entering pin (footnote 2 of
// the paper).
func (s InputSort) LowOrderSides(g GateID, pin int) []int {
	var out []int
	p := s.Pos[g][pin]
	for other, op := range s.Pos[g] {
		if op < p {
			out = append(out, other)
		}
	}
	return out
}

// MinPin returns the pin among candidates with the smallest position for
// gate g. candidates must be non-empty.
func (s InputSort) MinPin(g GateID, candidates []int) int {
	best := candidates[0]
	for _, pin := range candidates[1:] {
		if s.Pos[g][pin] < s.Pos[g][best] {
			best = pin
		}
	}
	return best
}
