package circuit

// Flat is the cache-flat struct-of-arrays view of a Circuit: every
// per-gate attribute lives in one dense, index-addressed array, and the
// fanin/fanout adjacency is stored CSR-style (one offsets array plus one
// concatenated payload array) instead of a slice-of-slices. A forward or
// backward sweep therefore walks contiguous memory — no Gate struct
// loads, no per-gate slice headers, no pointer chasing — which is what
// the implication engine's hot loop needs: the paper's speed claim is a
// low-degree polynomial number of *cheap* passes, and the pass cost is
// dominated by cache behavior, not instruction count.
//
// A Flat is derived data: it is built at most once per circuit version
// (lazily, via Circuit.Flat) and shared read-only by every engine bound
// to that circuit, exactly like the analyses managed by
// internal/analysis. Do not mutate any of its slices.
type Flat struct {
	// N is the gate count; every array below is indexed by GateID in
	// [0, N) (offsets arrays have one extra terminator entry).
	N int
	// Types[g] is the gate type of g.
	Types []GateType
	// Level[g] is the logic level of g (0 for PIs).
	Level []int32
	// FaninOff/Fanin is the CSR fanin adjacency: the ordered fanin of
	// gate g is Fanin[FaninOff[g]:FaninOff[g+1]], in pin order. FaninOff
	// has N+1 entries; FaninOff[g] is also the dense lead index of
	// (g, pin 0), matching Circuit.LeadIndex.
	FaninOff []int32
	Fanin    []GateID
	// FanoutOff/Fanout is the CSR fanout adjacency: the fanout
	// destinations of gate g are Fanout[FanoutOff[g]:FanoutOff[g+1]].
	// FanoutPin carries the destination input pin of the matching Fanout
	// entry (a separate parallel array so consumers that only chase
	// destinations — the implication engine — never pull pin bytes into
	// cache).
	FanoutOff []int32
	Fanout    []GateID
	FanoutPin []int32
}

// FaninOf returns the ordered fanin of gate g as a subslice of the CSR
// payload array. Read-only.
func (f *Flat) FaninOf(g GateID) []GateID {
	return f.Fanin[f.FaninOff[g]:f.FaninOff[g+1]]
}

// FanoutOf returns the fanout destinations of gate g as a subslice of
// the CSR payload array. Read-only.
func (f *Flat) FanoutOf(g GateID) []GateID {
	return f.Fanout[f.FanoutOff[g]:f.FanoutOff[g+1]]
}

// buildFlat packs c into the struct-of-arrays layout. One pass over the
// gates sizes the CSR arrays exactly; a second fills them, so the whole
// layout is a handful of right-sized allocations.
func buildFlat(c *Circuit) *Flat {
	n := len(c.gates)
	f := &Flat{
		N:         n,
		Types:     make([]GateType, n),
		Level:     make([]int32, n),
		FaninOff:  make([]int32, n+1),
		FanoutOff: make([]int32, n+1),
	}
	copy(f.Level, c.level)
	nLeads := 0
	for i := range c.gates {
		f.Types[i] = c.gates[i].Type
		nLeads += len(c.gates[i].Fanin)
	}
	f.Fanin = make([]GateID, 0, nLeads)
	f.Fanout = make([]GateID, 0, nLeads)
	f.FanoutPin = make([]int32, 0, nLeads)
	for i := range c.gates {
		f.FaninOff[i] = int32(len(f.Fanin))
		f.Fanin = append(f.Fanin, c.gates[i].Fanin...)
	}
	f.FaninOff[n] = int32(len(f.Fanin))
	for i := range c.fanout {
		f.FanoutOff[i] = int32(len(f.Fanout))
		for _, e := range c.fanout[i] {
			f.Fanout = append(f.Fanout, e.To)
			f.FanoutPin = append(f.FanoutPin, int32(e.Pin))
		}
	}
	f.FanoutOff[n] = int32(len(f.Fanout))
	return f
}

// Flat returns the flattened struct-of-arrays view of the circuit,
// building it on first use and sharing it afterwards. The circuit is
// immutable and version-stamped, so the layout can never go stale; every
// implication engine for this circuit shares one Flat, which is why
// creating an engine does not re-derive the netlist. Safe for concurrent
// use.
func (c *Circuit) Flat() *Flat {
	c.flatOnce.Do(func() { c.flat = buildFlat(c) })
	return c.flat
}
