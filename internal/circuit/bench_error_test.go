package circuit

import (
	"strings"
	"testing"
)

// The parser's diagnostics must carry the offending line and name the
// actual problem — a duplicate INPUT used to surface as a bogus
// "combinational cycle" from the builder's error state.
func TestParseBenchDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"duplicate input",
			"INPUT(a)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
			`tc:2: input "a" already declared at line 1`},
		{"input redefined as gate",
			"INPUT(a)\nINPUT(b)\nOUTPUT(y)\na = NOT(b)\ny = AND(a, b)\n",
			`tc:4: signal "a" already declared INPUT at line 1`},
		{"gate redeclared as input",
			"INPUT(b)\na = NOT(b)\nINPUT(a)\nOUTPUT(a)\n",
			`tc:3: input "a" already defined as a gate at line 2`},
		{"signal defined twice",
			"INPUT(b)\na = NOT(b)\na = BUF(b)\nOUTPUT(a)\n",
			`tc:3: signal "a" already defined at line 2`},
		{"unknown function",
			"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
			`tc:3: unknown function "FROB"`},
		{"missing equals",
			"INPUT(a)\nOUTPUT(y)\ny NOT(a)\n",
			"tc:3: cannot parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBench("tc", strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("ParseBench accepted a malformed netlist")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}
