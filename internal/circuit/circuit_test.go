package circuit

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// example builds the reconstructed running example of the paper (Figs 1-5):
// y = AND(OR(a,b), OR(b,c)). It has 3 PIs, 4 physical and 8 logical paths.
func example(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("example")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	o1 := b.Gate(Or, "o1", a, bb)
	o2 := b.Gate(Or, "o2", bb, cc)
	y := b.Gate(And, "y", o1, o2)
	b.Output("y$po", y)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestGateTypeString(t *testing.T) {
	cases := map[GateType]string{
		Input: "INPUT", Output: "OUTPUT", Buf: "BUF", Not: "NOT",
		And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("GateType(%d).String() = %q, want %q", ty, got, want)
		}
	}
	if got := GateType(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestControllingValues(t *testing.T) {
	for _, tc := range []struct {
		ty GateType
		v  bool
		ok bool
	}{
		{And, false, true}, {Nand, false, true},
		{Or, true, true}, {Nor, true, true},
		{Not, false, false}, {Buf, false, false},
		{Input, false, false}, {Output, false, false},
	} {
		v, ok := tc.ty.Controlling()
		if ok != tc.ok || (ok && v != tc.v) {
			t.Errorf("%s.Controlling() = %v,%v want %v,%v", tc.ty, v, ok, tc.v, tc.ok)
		}
		if ok {
			nv, nok := tc.ty.NonControlling()
			if !nok || nv == v {
				t.Errorf("%s.NonControlling() = %v,%v inconsistent", tc.ty, nv, nok)
			}
		}
	}
}

func TestInverting(t *testing.T) {
	inverting := map[GateType]bool{
		Not: true, Nand: true, Nor: true,
		And: false, Or: false, Buf: false, Output: false, Input: false,
	}
	for ty, want := range inverting {
		if got := ty.Inverting(); got != want {
			t.Errorf("%s.Inverting() = %v, want %v", ty, got, want)
		}
	}
}

func TestGateTypeEval(t *testing.T) {
	tt := []struct {
		ty   GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Buf, []bool{false}, false},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{Output, []bool{true}, true},
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
	}
	for _, tc := range tt {
		if got := tc.ty.Eval(tc.in); got != tc.want {
			t.Errorf("%s.Eval(%v) = %v, want %v", tc.ty, tc.in, got, tc.want)
		}
	}
}

func TestExampleStructure(t *testing.T) {
	c := example(t)
	s := c.Stats()
	if s.Inputs != 3 || s.Outputs != 1 {
		t.Fatalf("stats = %v, want 3 inputs 1 output", s)
	}
	if s.Gates != 7 {
		t.Errorf("gates = %d, want 7", s.Gates)
	}
	if s.Leads != 7 { // o1:2 o2:2 y:2 po:1
		t.Errorf("leads = %d, want 7", s.Leads)
	}
	if got := c.Depth(); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
	if _, ok := c.GateByName("o1"); !ok {
		t.Error("GateByName(o1) not found")
	}
	if _, ok := c.GateByName("nosuch"); ok {
		t.Error("GateByName(nosuch) found")
	}
}

func TestEvalBool(t *testing.T) {
	c := example(t)
	// y = (a|b) & (b|c)
	for v := 0; v < 8; v++ {
		a, bb, cc := v&4 != 0, v&2 != 0, v&1 != 0
		want := (a || bb) && (bb || cc)
		val := c.EvalBool([]bool{a, bb, cc})
		out := c.OutputsOf(val)
		if len(out) != 1 || out[0] != want {
			t.Errorf("EvalBool(%v,%v,%v) = %v, want %v", a, bb, cc, out, want)
		}
	}
}

func TestEvalBoolArityPanic(t *testing.T) {
	c := example(t)
	defer func() {
		if recover() == nil {
			t.Error("EvalBool with wrong arity did not panic")
		}
	}()
	c.EvalBool([]bool{true})
}

func TestLeadIndexing(t *testing.T) {
	c := example(t)
	seen := make(map[int]bool)
	for g := GateID(0); int(g) < c.NumGates(); g++ {
		for pin := range c.Fanin(g) {
			i := c.LeadIndex(g, pin)
			if seen[i] {
				t.Fatalf("duplicate lead index %d", i)
			}
			seen[i] = true
			if i < 0 || i >= c.NumLeads() {
				t.Fatalf("lead index %d out of range [0,%d)", i, c.NumLeads())
			}
			back := c.LeadAt(i)
			if back.To != g || back.Pin != pin {
				t.Fatalf("LeadAt(%d) = %v, want {%d %d}", i, back, g, pin)
			}
			if src := c.Source(back); src != c.Fanin(g)[pin] {
				t.Fatalf("Source(%v) = %d, want %d", back, src, c.Fanin(g)[pin])
			}
		}
	}
	if len(seen) != c.NumLeads() {
		t.Fatalf("covered %d leads, want %d", len(seen), c.NumLeads())
	}
}

func TestFanoutEdges(t *testing.T) {
	c := example(t)
	b, _ := c.GateByName("b")
	fo := c.Fanout(b)
	if len(fo) != 2 {
		t.Fatalf("fanout(b) = %v, want 2 edges", fo)
	}
	for _, e := range fo {
		if c.Fanin(e.To)[e.Pin] != b {
			t.Errorf("edge %v does not point back to b", e)
		}
	}
	po := c.Outputs()[0]
	if len(c.Fanout(po)) != 0 {
		t.Error("PO has fanout")
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	c := example(t)
	pos := make(map[GateID]int)
	for i, g := range c.TopoOrder() {
		pos[g] = i
	}
	for g := GateID(0); int(g) < c.NumGates(); g++ {
		for _, f := range c.Fanin(g) {
			if pos[f] >= pos[g] {
				t.Errorf("fanin %d not before gate %d in topo order", f, g)
			}
			if c.Level(f) >= c.Level(g) {
				t.Errorf("level(%d)=%d not below level(%d)=%d", f, c.Level(f), g, c.Level(g))
			}
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder("t")
		b.Input("a")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("not arity", func(t *testing.T) {
		b := NewBuilder("t")
		a := b.Input("a")
		x := b.Input("x")
		b.Gate(Not, "n", a, x)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("and arity", func(t *testing.T) {
		b := NewBuilder("t")
		a := b.Input("a")
		b.Gate(And, "g", a)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("no outputs", func(t *testing.T) {
		b := NewBuilder("t")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		b := NewBuilder("t")
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("dangling gate", func(t *testing.T) {
		b := NewBuilder("t")
		a := b.Input("a")
		x := b.Input("x")
		b.Gate(And, "dangle", a, x)
		b.Output("y", a)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for dangling gate")
		}
	})
	t.Run("po as fanin", func(t *testing.T) {
		b := NewBuilder("t")
		a := b.Input("a")
		po := b.Output("y", a)
		b.Gate(Not, "n", po)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for PO used as fanin")
		}
	})
	t.Run("unknown fanin id", func(t *testing.T) {
		b := NewBuilder("t")
		a := b.Input("a")
		b.Gate(Not, "n", a+100)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("first error wins", func(t *testing.T) {
		b := NewBuilder("t")
		b.Input("a")
		b.Input("a")
		b.Gate(And, "g")
		err := b.Err()
		if err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("Err() = %v, want duplicate-name error", err)
		}
	})
}

func TestXorExpansion(t *testing.T) {
	b := NewBuilder("xor")
	x := b.Input("x")
	y := b.Input("y")
	g := b.Xor("g", x, y)
	b.Output("g$po", g)
	c := b.MustBuild()
	if n := c.Stats().ByType[Nand]; n != 4 {
		t.Fatalf("Xor expanded to %d NANDs, want 4", n)
	}
	for v := 0; v < 4; v++ {
		a, bb := v&2 != 0, v&1 != 0
		out := c.OutputsOf(c.EvalBool([]bool{a, bb}))
		if out[0] != (a != bb) {
			t.Errorf("xor(%v,%v) = %v", a, bb, out[0])
		}
	}
}

func TestXnor(t *testing.T) {
	b := NewBuilder("xnor")
	x := b.Input("x")
	y := b.Input("y")
	g := b.Xnor("g", x, y)
	b.Output("g$po", g)
	c := b.MustBuild()
	for v := 0; v < 4; v++ {
		a, bb := v&2 != 0, v&1 != 0
		out := c.OutputsOf(c.EvalBool([]bool{a, bb}))
		if out[0] != (a == bb) {
			t.Errorf("xnor(%v,%v) = %v", a, bb, out[0])
		}
	}
}

func TestXorTree(t *testing.T) {
	for n := 1; n <= 9; n++ {
		b := NewBuilder("xt")
		in := make([]GateID, n)
		for i := range in {
			in[i] = b.Input(string(rune('a' + i)))
		}
		root := b.XorTree("t", in...)
		b.Output("y", root)
		c := b.MustBuild()
		for v := 0; v < 1<<n; v++ {
			vec := make([]bool, n)
			parity := false
			for i := range vec {
				vec[i] = v&(1<<i) != 0
				parity = parity != vec[i]
			}
			out := c.OutputsOf(c.EvalBool(vec))
			if out[0] != parity {
				t.Fatalf("n=%d v=%b: parity = %v, want %v", n, v, out[0], parity)
			}
		}
	}
}

func TestCone(t *testing.T) {
	b := NewBuilder("multi")
	a := b.Input("a")
	x := b.Input("x")
	z := b.Input("z")
	g1 := b.Gate(And, "g1", a, x)
	g2 := b.Gate(Or, "g2", x, z)
	b.Output("o1", g1)
	b.Output("o2", g2)
	c := b.MustBuild()

	cones, err := c.Cones()
	if err != nil {
		t.Fatalf("Cones: %v", err)
	}
	if len(cones) != 2 {
		t.Fatalf("got %d cones", len(cones))
	}
	c0 := cones[0]
	if got := c0.Stats().Inputs; got != 2 {
		t.Errorf("cone o1 inputs = %d, want 2 (a,x)", got)
	}
	if _, ok := c0.GateByName("z"); ok {
		t.Error("cone o1 contains z")
	}
	// Cone preserves function.
	for v := 0; v < 4; v++ {
		av, xv := v&2 != 0, v&1 != 0
		full := c.OutputsOf(c.EvalBool([]bool{av, xv, false}))
		sub := c0.OutputsOf(c0.EvalBool([]bool{av, xv}))
		if full[0] != sub[0] {
			t.Errorf("cone mismatch at a=%v x=%v", av, xv)
		}
	}
	if _, _, err := c.Cone(a); err == nil {
		t.Error("Cone on non-PO should fail")
	}
}

func TestParseBench(t *testing.T) {
	src := `
# tiny test circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)   # inline comment
g2 = NOR(b, c)
y = AND(g1, g2)
`
	c, err := ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if got := c.Stats().Inputs; got != 3 {
		t.Fatalf("inputs = %d", got)
	}
	for v := 0; v < 8; v++ {
		a, bb, cc := v&4 != 0, v&2 != 0, v&1 != 0
		want := !(a && bb) && !(bb || cc)
		out := c.OutputsOf(c.EvalBool([]bool{a, bb, cc}))
		if out[0] != want {
			t.Errorf("v=%d: got %v want %v", v, out[0], want)
		}
	}
}

func TestParseBenchOutOfOrder(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NOT(g)
g = AND(a, b)
`
	c, err := ParseBench("ooo", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	out := c.OutputsOf(c.EvalBool([]bool{true, true}))
	if out[0] != false {
		t.Error("NOT(AND(1,1)) != 0")
	}
}

func TestParseBenchXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = XOR(a, b, c)
`
	c, err := ParseBench("x3", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	for v := 0; v < 8; v++ {
		a, bb, cc := v&4 != 0, v&2 != 0, v&1 != 0
		want := a != bb != cc
		out := c.OutputsOf(c.EvalBool([]bool{a, bb, cc}))
		if out[0] != want {
			t.Errorf("xor3 v=%d: got %v want %v", v, out[0], want)
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"dff":       "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n",
		"cycle":     "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n",
		"undefined": "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",
		"redefined": "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n",
		"garbage":   "INPUT(a)\nOUTPUT(y)\nthis is not bench\n",
		"badfn":     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MAJ(a, b)\n",
		"notarity":  "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n",
		"andarity":  "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n",
		"badparen":  "INPUT a\nOUTPUT(y)\ny = AND(a, a)\n",
	}
	for name, src := range cases {
		if _, err := ParseBench(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := example(t)
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	c2, err := ParseBench("rt", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if c2.NumGates() != c.NumGates() {
		t.Fatalf("round trip gates %d != %d\n%s", c2.NumGates(), c.NumGates(), buf.String())
	}
	// Functional equivalence over all inputs.
	for v := 0; v < 8; v++ {
		vec := []bool{v&4 != 0, v&2 != 0, v&1 != 0}
		o1 := c.OutputsOf(c.EvalBool(vec))
		o2 := c2.OutputsOf(c2.EvalBool(vec))
		if o1[0] != o2[0] {
			t.Fatalf("round trip differs at %v", vec)
		}
	}
	// Second round trip is textually stable.
	var buf2 bytes.Buffer
	if err := WriteBench(&buf2, c2); err != nil {
		t.Fatalf("WriteBench 2: %v", err)
	}
	c3, err := ParseBench("rt", bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatalf("reparse 2: %v", err)
	}
	if c3.NumGates() != c2.NumGates() {
		t.Fatal("second round trip changed structure")
	}
}

func TestSortedGateNames(t *testing.T) {
	c := example(t)
	names := c.SortedGateNames()
	if len(names) != c.NumGates() {
		t.Fatalf("got %d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid circuit")
		}
	}()
	NewBuilder("bad").MustBuild()
}

func TestWriteDot(t *testing.T) {
	c := example(t)
	g, _ := c.GateByName("y")
	var buf bytes.Buffer
	err := WriteDot(&buf, c, map[Lead]bool{{To: g, Pin: 0}: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "rankdir=LR", "doublecircle", "color=red", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// One edge per lead.
	if got := strings.Count(out, "->"); got != c.NumLeads() {
		t.Errorf("DOT has %d edges, want %d", got, c.NumLeads())
	}
}

// Property (testing/quick): LeadAt inverts LeadIndex on arbitrary valid
// indices.
func TestQuickLeadRoundTrip(t *testing.T) {
	c := example(t)
	f := func(i uint16) bool {
		idx := int(i) % c.NumLeads()
		l := c.LeadAt(idx)
		return c.LeadIndex(l.To, l.Pin) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
