package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a combinational netlist in the ISCAS-85/89 ".bench"
// format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	g = NAND(a, b)
//	y = NOT(g)
//
// Supported functions are AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR and XNOR.
// XOR and XNOR are expanded into the 4-NAND structure (the expansion that
// turns c499 into c1355), because the paper's theory is defined over simple
// gates only. Sequential elements (DFF) are rejected: the theory covers
// combinational circuits. A signal marked OUTPUT gets an explicit Output
// gate named "<signal>$po" so that physical paths have explicit PO
// endpoints; WriteBench strips the marker again, making the two functions
// round-trip stable.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type def struct {
		fn   string
		args []string
		line int
	}
	var (
		inputs    []string
		outputs   []string
		defs      = make(map[string]def)
		defOrder  []string
		inputLine = make(map[string]int)
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT(") || strings.HasPrefix(up, "INPUT ("):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			if first, dup := inputLine[sig]; dup {
				return nil, fmt.Errorf("bench %s:%d: input %q already declared at line %d", name, lineNo, sig, first)
			}
			if d, dup := defs[sig]; dup {
				return nil, fmt.Errorf("bench %s:%d: input %q already defined as a gate at line %d", name, lineNo, sig, d.line)
			}
			inputLine[sig] = lineNo
			inputs = append(inputs, sig)
		case strings.HasPrefix(up, "OUTPUT(") || strings.HasPrefix(up, "OUTPUT ("):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench %s:%d: cannot parse %q", name, lineNo, line)
			}
			sig := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.IndexByte(rhs, '(')
			cl := strings.LastIndexByte(rhs, ')')
			if op < 0 || cl < op {
				return nil, fmt.Errorf("bench %s:%d: cannot parse rhs %q", name, lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			var args []string
			for _, a := range strings.Split(rhs[op+1:cl], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			if d, dup := defs[sig]; dup {
				return nil, fmt.Errorf("bench %s:%d: signal %q already defined at line %d", name, lineNo, sig, d.line)
			}
			if first, dup := inputLine[sig]; dup {
				return nil, fmt.Errorf("bench %s:%d: signal %q already declared INPUT at line %d", name, lineNo, sig, first)
			}
			defs[sig] = def{fn: fn, args: args, line: lineNo}
			defOrder = append(defOrder, sig)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}

	b := NewBuilder(name)
	id := make(map[string]GateID, len(defs)+len(inputs))
	for _, sig := range inputs {
		id[sig] = b.Input(sig)
	}
	isOutput := make(map[string]bool, len(outputs))
	for _, sig := range outputs {
		isOutput[sig] = true
	}

	// Recursive elaboration with an explicit stack to tolerate definitions
	// in any order (the .bench format does not require topological order).
	var elaborate func(sig string, depth int) (GateID, error)
	elaborate = func(sig string, depth int) (GateID, error) {
		if g, ok := id[sig]; ok {
			if g == None {
				return None, fmt.Errorf("bench %s: combinational cycle through signal %q", name, sig)
			}
			return g, nil
		}
		d, ok := defs[sig]
		if !ok {
			return None, fmt.Errorf("bench %s: signal %q used but never defined", name, sig)
		}
		if depth > len(defs)+len(inputs)+1 {
			return None, fmt.Errorf("bench %s: definition depth exceeded at %q", name, sig)
		}
		id[sig] = None // cycle marker
		args := make([]GateID, len(d.args))
		for i, a := range d.args {
			g, err := elaborate(a, depth+1)
			if err != nil {
				return None, err
			}
			args[i] = g
		}
		gname := sig
		var g GateID
		switch d.fn {
		case "NOT", "INV":
			if len(args) != 1 {
				return None, fmt.Errorf("bench %s:%d: %s needs 1 arg", name, d.line, d.fn)
			}
			g = b.Gate(Not, gname, args[0])
		case "BUF", "BUFF":
			if len(args) != 1 {
				return None, fmt.Errorf("bench %s:%d: %s needs 1 arg", name, d.line, d.fn)
			}
			g = b.Gate(Buf, gname, args[0])
		case "AND", "NAND", "OR", "NOR":
			if len(args) < 2 {
				return None, fmt.Errorf("bench %s:%d: %s needs >=2 args", name, d.line, d.fn)
			}
			t := map[string]GateType{"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor}[d.fn]
			g = b.Gate(t, gname, args...)
		case "XOR", "XNOR":
			if len(args) < 2 {
				return None, fmt.Errorf("bench %s:%d: %s needs >=2 args", name, d.line, d.fn)
			}
			g = args[0]
			for i := 1; i < len(args); i++ {
				nm := gname
				if i < len(args)-1 {
					nm = fmt.Sprintf("%s_c%d", gname, i)
				}
				g = b.Xor(nm, g, args[i])
			}
			if d.fn == "XNOR" {
				g = b.Gate(Not, gname+"_inv", g)
			}
		case "DFF", "DFFSR", "LATCH":
			return None, fmt.Errorf("bench %s:%d: sequential element %s unsupported (combinational circuits only)", name, d.line, d.fn)
		default:
			return None, fmt.Errorf("bench %s:%d: unknown function %q", name, d.line, d.fn)
		}
		id[sig] = g
		return g, nil
	}

	for _, sig := range defOrder {
		if _, err := elaborate(sig, 0); err != nil {
			return nil, err
		}
	}
	poSeen := make(map[string]int)
	for _, sig := range outputs {
		g, err := elaborate(sig, 0)
		if err != nil {
			return nil, err
		}
		poName := sig + "$po"
		if n := poSeen[sig]; n > 0 {
			poName = fmt.Sprintf("%s$po%d", sig, n)
		}
		poSeen[sig]++
		b.Output(poName, g)
	}
	return b.Build()
}

func parenArg(line string) (string, error) {
	op := strings.IndexByte(line, '(')
	cl := strings.LastIndexByte(line, ')')
	if op < 0 || cl < op {
		return "", fmt.Errorf("cannot parse %q", line)
	}
	sig := strings.TrimSpace(line[op+1 : cl])
	if sig == "" {
		return "", fmt.Errorf("empty signal in %q", line)
	}
	return sig, nil
}

// WriteBench writes c in .bench format. XOR expansions from ParseBench are
// written as their NAND structure (round-tripping preserves the elaborated
// netlist, not the original XOR shorthand). Output marker gates are
// written as OUTPUT declarations of their driver signal, with any "$po"
// suffix stripped, so ParseBench(WriteBench(c)) reproduces c's structure
// and names.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n# %s\n", c.Name(), c.Stats())
	for _, g := range c.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gate(g).Name)
	}
	for _, g := range c.Outputs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gate(c.Gate(g).Fanin[0]).Name)
	}
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case Input, Output:
			continue
		default:
			names := make([]string, len(gate.Fanin))
			for i, f := range gate.Fanin {
				names[i] = c.Gate(f).Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", gate.Name, gate.Type, strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}

// SortedGateNames returns all gate names in lexical order; useful for
// deterministic diagnostics in tests.
func (c *Circuit) SortedGateNames() []string {
	names := make([]string, 0, len(c.gates))
	for i := range c.gates {
		names = append(names, c.gates[i].Name)
	}
	sort.Strings(names)
	return names
}
