package circuit

import (
	"strings"
	"testing"
)

// twoCone builds a circuit with two overlapping output cones:
//
//	y1 = AND(OR(a,b), OR(b,c))   y2 = NAND(OR(b,c), d)
//
// The OR(b,c) gate is shared, so its sort row must project identically
// into both cones.
func twoCone(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("twocone")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	d := b.Input("d")
	o1 := b.Gate(Or, "o1", a, bb)
	o2 := b.Gate(Or, "o2", bb, cc)
	y1 := b.Gate(And, "y1", o1, o2)
	y2 := b.Gate(Nand, "y2", o2, d)
	b.Output("y1$po", y1)
	b.Output("y2$po", y2)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

// An inverse sort projected onto each cone must keep every shared gate's
// row byte-for-byte, and validate against the cone.
func TestInputSortConeProjection(t *testing.T) {
	c := twoCone(t)
	s := PinOrderSort(c).Inverse()
	for _, po := range c.Outputs() {
		cone, mapping, err := c.Cone(po)
		if err != nil {
			t.Fatalf("Cone: %v", err)
		}
		proj := s.Cone(mapping)
		if err := proj.Validate(cone); err != nil {
			t.Fatalf("projected sort invalid for %s: %v", cone.Name(), err)
		}
		for ng := 0; ng < cone.NumGates(); ng++ {
			old := mapping[ng]
			if len(proj.Pos[ng]) != len(s.Pos[old]) {
				t.Fatalf("gate %q: projected row %v, parent row %v",
					cone.Gate(GateID(ng)).Name, proj.Pos[ng], s.Pos[old])
			}
			for i, v := range proj.Pos[ng] {
				if s.Pos[old][i] != v {
					t.Fatalf("gate %q: projected row %v differs from parent row %v",
						cone.Gate(GateID(ng)).Name, proj.Pos[ng], s.Pos[old])
				}
			}
		}
	}
}

// ByName → bench round trip → SortFromNames must reproduce the sort on
// the re-parsed circuit, even though GateIDs are renumbered and the PO
// wrapper gains a $po suffix.
func TestSortByNameSurvivesBenchRoundTrip(t *testing.T) {
	c := twoCone(t)
	s := PinOrderSort(c).Inverse()
	var buf strings.Builder
	if err := WriteBench(&buf, c); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	rt, err := ParseBench(c.Name(), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	got, err := SortFromNames(rt, s.ByName(c))
	if err != nil {
		t.Fatalf("SortFromNames: %v", err)
	}
	for g := 0; g < rt.NumGates(); g++ {
		name := rt.Gate(GateID(g)).Name
		if len(rt.Fanin(GateID(g))) < 2 {
			continue
		}
		// Find the gate of the same name in the original.
		var orig GateID = None
		for og := 0; og < c.NumGates(); og++ {
			if c.Gate(GateID(og)).Name == name {
				orig = GateID(og)
				break
			}
		}
		if orig == None {
			t.Fatalf("gate %q not found in original", name)
		}
		for i, v := range got.Pos[g] {
			if s.Pos[orig][i] != v {
				t.Fatalf("gate %q: round-tripped row %v, want %v", name, got.Pos[g], s.Pos[orig])
			}
		}
	}
}

// A multi-input gate missing from the wire map must be rejected — the
// enumeration would otherwise silently run under the wrong σ.
func TestSortFromNamesRejectsMissingMultiInputGate(t *testing.T) {
	c := twoCone(t)
	byName := PinOrderSort(c).ByName(c)
	delete(byName, "y1")
	if _, err := SortFromNames(c, byName); err == nil {
		t.Fatalf("SortFromNames accepted a map missing a 2-input gate")
	}
	// A corrupt row (not a permutation) must be rejected by validation.
	byName = PinOrderSort(c).ByName(c)
	byName["y1"] = []int{0, 0}
	if _, err := SortFromNames(c, byName); err == nil {
		t.Fatalf("SortFromNames accepted a non-permutation row")
	}
}
