package circuit

import "fmt"

// Cone extracts the single-output subcircuit feeding the primary output
// po. The paper's theory is developed for single-output circuits and
// applied per output cone (Section II); Cone implements that restriction.
// The returned mapping translates new GateIDs back to ids in c. Gate names
// are preserved.
func (c *Circuit) Cone(po GateID) (*Circuit, []GateID, error) {
	if c.gates[po].Type != Output {
		return nil, nil, fmt.Errorf("circuit %s: gate %q is not a PO", c.name, c.gates[po].Name)
	}
	inCone := make([]bool, len(c.gates))
	stack := []GateID{po}
	inCone[po] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.gates[g].Fanin {
			if !inCone[f] {
				inCone[f] = true
				stack = append(stack, f)
			}
		}
	}
	b := NewBuilder(fmt.Sprintf("%s.%s", c.name, c.gates[po].Name))
	newID := make([]GateID, len(c.gates))
	mapping := make([]GateID, 0, len(c.gates))
	for i := range newID {
		newID[i] = None
	}
	// Creation order of c is topological, so a single pass suffices.
	for _, g := range c.topo {
		if !inCone[g] {
			continue
		}
		old := &c.gates[g]
		var id GateID
		switch old.Type {
		case Input:
			id = b.Input(old.Name)
		case Output:
			id = b.Output(old.Name, newID[old.Fanin[0]])
		default:
			fi := make([]GateID, len(old.Fanin))
			for k, f := range old.Fanin {
				fi[k] = newID[f]
			}
			id = b.add(old.Type, old.Name, fi)
		}
		newID[g] = id
		mapping = append(mapping, g)
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, mapping, nil
}

// Cones extracts every output cone of c, in Outputs() order.
func (c *Circuit) Cones() ([]*Circuit, error) {
	cones := make([]*Circuit, 0, len(c.outputs))
	for _, po := range c.outputs {
		sub, _, err := c.Cone(po)
		if err != nil {
			return nil, err
		}
		cones = append(cones, sub)
	}
	return cones, nil
}
