package circuit

import (
	"testing"
)

// buildFlatFixture constructs a small multi-fanout circuit exercising
// every gate type the flat layout must carry.
func buildFlatFixture(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("flat-fixture")
	a := b.Input("a")
	x := b.Input("x")
	y := b.Input("y")
	o1 := b.Gate(Or, "o1", x, y)
	n1 := b.Gate(Nand, "n1", a, o1, x)
	inv := b.Gate(Not, "inv", n1)
	buf := b.Gate(Buf, "buf", o1)
	b.Output("po1", inv)
	b.Output("po2", buf)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFlatMatchesCircuit: the CSR view must agree with the pointer view
// attribute by attribute — types, levels, ordered fanins, and the full
// fanout multiset with pins.
func TestFlatMatchesCircuit(t *testing.T) {
	c := buildFlatFixture(t)
	f := c.Flat()
	if f.N != c.NumGates() {
		t.Fatalf("N = %d, want %d", f.N, c.NumGates())
	}
	if len(f.FaninOff) != f.N+1 || len(f.FanoutOff) != f.N+1 {
		t.Fatalf("offset arrays not N+1 sized")
	}
	if int(f.FaninOff[f.N]) != c.NumLeads() || int(f.FanoutOff[f.N]) != c.NumLeads() {
		t.Fatalf("CSR terminators %d/%d, want %d leads",
			f.FaninOff[f.N], f.FanoutOff[f.N], c.NumLeads())
	}
	for g := GateID(0); int(g) < c.NumGates(); g++ {
		if f.Types[g] != c.Type(g) {
			t.Errorf("gate %d: type %v != %v", g, f.Types[g], c.Type(g))
		}
		if int(f.Level[g]) != c.Level(g) {
			t.Errorf("gate %d: level %d != %d", g, f.Level[g], c.Level(g))
		}
		// Fanin must match in pin order, and FaninOff must agree with the
		// dense lead indexing.
		fi := f.FaninOf(g)
		want := c.Fanin(g)
		if len(fi) != len(want) {
			t.Fatalf("gate %d: fanin arity %d != %d", g, len(fi), len(want))
		}
		for pin := range want {
			if fi[pin] != want[pin] {
				t.Errorf("gate %d pin %d: fanin %d != %d", g, pin, fi[pin], want[pin])
			}
			if int(f.FaninOff[g])+pin != c.LeadIndex(g, pin) {
				t.Errorf("gate %d pin %d: CSR offset disagrees with LeadIndex", g, pin)
			}
		}
		// Fanout (destinations + pins) must match the Edge list exactly.
		fo := f.FanoutOf(g)
		edges := c.Fanout(g)
		if len(fo) != len(edges) {
			t.Fatalf("gate %d: fanout arity %d != %d", g, len(fo), len(edges))
		}
		for i, e := range edges {
			if fo[i] != e.To {
				t.Errorf("gate %d fanout %d: dest %d != %d", g, i, fo[i], e.To)
			}
			if int(f.FanoutPin[int(f.FanoutOff[g])+i]) != e.Pin {
				t.Errorf("gate %d fanout %d: pin mismatch", g, i)
			}
		}
	}
}

// TestFlatSharedAndStable: repeated Flat calls return the one cached
// layout — it is derived data keyed to the circuit's version, built once.
func TestFlatSharedAndStable(t *testing.T) {
	c := buildFlatFixture(t)
	f1 := c.Flat()
	f2 := c.Flat()
	if f1 != f2 {
		t.Fatal("Flat rebuilt on second call")
	}
	// A rewritten circuit (new Build, new version) gets its own layout.
	c2 := buildFlatFixture(t)
	if c2.Flat() == f1 {
		t.Fatal("distinct circuit versions share a Flat")
	}
}
