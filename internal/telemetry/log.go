package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"

	"rdfault/internal/faultinject"
)

// Event is one structured log entry. Every layer of the pipeline emits
// the same shape — serve job lifecycle, fleet dispatch/quarantine,
// batch admission — so one JSONL stream tells the whole story of a run.
//
// Timestamps are stamped through the faultinject clock
// (PointTelemetryClock by default): with a KindFreeze rule armed, the
// encoded log of a deterministic execution is byte-identical across
// runs, which is what lets a production trace replay as a chaos case.
// Field order is fixed and Fields is a map encoded with sorted keys
// (encoding/json guarantees that), so the encoding itself adds no
// nondeterminism.
type Event struct {
	// TS is the event time as observed through the log's clock point.
	TS time.Time `json:"ts"`
	// Seq is the log-assigned sequence number (1-based); it orders
	// events totally even when the frozen clock repeats timestamps.
	Seq uint64 `json:"seq"`
	// Source names the emitting layer ("serve", "fleet", ...).
	Source string `json:"source"`
	// Kind is the event type, e.g. "job.done" or "quarantine".
	Kind   string `json:"kind"`
	Job    string `json:"job,omitempty"`
	Worker string `json:"worker,omitempty"`
	Cone   string `json:"cone,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Fields carries small named counters (selected, segments, shed...).
	Fields map[string]int64 `json:"fields,omitempty"`
}

// Log is a concurrency-safe JSONL event sink. A nil *Log is valid and
// drops everything, so call sites never need a guard.
type Log struct {
	mu    sync.Mutex
	w     io.Writer // may be nil: events still sequence and fan out
	clock string
	seq   uint64
	sink  func(Event)
}

// NewLog returns a log writing JSONL to w (nil w keeps the log purely
// in-memory: sequencing and sinks still work). Timestamps flow through
// faultinject.PointTelemetryClock unless WithClock overrides it.
func NewLog(w io.Writer) *Log {
	return &Log{w: w, clock: faultinject.PointTelemetryClock}
}

// WithClock reroutes timestamping through a different faultinject
// point; returns the log for chaining.
func (l *Log) WithClock(point string) *Log {
	l.mu.Lock()
	l.clock = point
	l.mu.Unlock()
	return l
}

// SetSink installs a function receiving every emitted event, in
// sequence order. The sink runs under the log's lock — it must not
// Emit recursively.
func (l *Log) SetSink(fn func(Event)) {
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Emit stamps, sequences, encodes and writes one event, returning the
// stamped copy. An event arriving with a nonzero TS keeps it (the
// emitter already stamped through its own clock point); zero TS is
// stamped through the log's clock. Nil logs drop the event.
func (l *Log) Emit(ev Event) Event {
	if l == nil {
		return ev
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if ev.TS.IsZero() {
		ev.TS = faultinject.Now(l.clock)
	}
	if l.w != nil {
		if b, err := json.Marshal(ev); err == nil {
			l.w.Write(append(b, '\n'))
		}
	}
	if l.sink != nil {
		l.sink(ev)
	}
	return ev
}

// Seq reports how many events the log has emitted.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ParseJSONL decodes a JSONL event stream (one Event per line), for
// tests and replay tooling.
func ParseJSONL(data []byte) ([]Event, error) {
	var evs []Event
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// CountKind tallies events of one kind — the consistency checks between
// metrics and the event log live on this.
func CountKind(evs []Event, kind string) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
