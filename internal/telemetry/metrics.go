// Package telemetry is the observability spine of the RD pipeline: a
// dependency-free metrics registry (counters, gauges, histograms with
// Prometheus text exposition) and a structured JSONL event log whose
// timestamps flow through the faultinject clock — so a production trace
// captured from a live server replays as a deterministic chaos case.
//
// The registry is deliberately tiny: the service needs a couple dozen
// series, not a client library. Metrics are registered once at startup
// (registration order is exposition order, so scrapes are byte-stable
// for fixed values), updated with atomics on the hot path, and written
// in the Prometheus text format (version 0.0.4) on demand.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can expose.
type metric interface {
	// write emits the metric's # HELP/# TYPE header and sample lines.
	write(w io.Writer)
}

// Registry holds a fixed set of metrics and writes them in the
// Prometheus text exposition format.
type Registry struct {
	mu      sync.Mutex
	names   map[string]struct{}
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic("telemetry: duplicate metric name " + name)
	}
	r.names[name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// WritePrometheus writes every registered metric in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

// ContentType is the scrape response content type for WritePrometheus
// output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a settable integer metric.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// GaugeFunc is a gauge sampled at scrape time — queue depth, budget
// remaining, drain state: values some other structure already owns.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a scrape-time gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

func (g *GaugeFunc) write(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// CounterFunc is a counter sampled at scrape time — for monotone counts
// some other structure already owns (a store's eviction total, a log's
// line count). The function must be monotone non-decreasing; the
// exposition declares it a counter.
type CounterFunc struct {
	name, help string
	fn         func() int64
}

// NewCounterFunc registers a scrape-time counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(name, c)
	return c
}

func (c *CounterFunc) write(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
}

// CounterVec is a counter family keyed by one label (tier, lane, state).
// Children appear in the exposition sorted by label value, so scrapes
// are byte-stable for fixed values.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*atomic.Int64
}

// NewCounterVec registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label,
		children: make(map[string]*atomic.Int64)}
	r.register(name, v)
	return v
}

// With returns the child counter for the label value, creating it at
// zero on first use.
func (v *CounterVec) With(value string) *atomic.Int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &atomic.Int64{}
		v.children[value] = c
	}
	return c
}

// Value reads one child (0 if the label value was never used).
func (v *CounterVec) Value(value string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c.Load()
	}
	return 0
}

func (v *CounterVec) write(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, k, v.children[k].Load())
	}
	v.mu.Unlock()
}

// Histogram is a cumulative-bucket histogram of float observations
// (durations in seconds, by convention).
type Histogram struct {
	name, help string
	buckets    []float64 // upper bounds, ascending; +Inf is implicit

	mu     sync.Mutex
	counts []uint64 // one per bucket, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// DefBuckets spans sub-millisecond cache hits to multi-minute exact
// runs.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 60, 300}

// NewHistogram registers a histogram; nil buckets take DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{
		name:    name,
		help:    help,
		buckets: append([]float64(nil), buckets...),
		counts:  make([]uint64, len(buckets)+1),
	}
	r.register(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reports how many observations the histogram holds.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) write(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	h.mu.Lock()
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.total)
	h.mu.Unlock()
}
