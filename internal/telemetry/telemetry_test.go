package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfault/internal/faultinject"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rd_jobs_total", "Jobs accepted.")
	g := r.NewGauge("rd_queue_depth", "Queued jobs.")
	r.NewGaugeFunc("rd_draining", "1 while draining.", func() float64 { return 1 })
	v := r.NewCounterVec("rd_tier_total", "Answers by tier.", "tier")
	h := r.NewHistogram("rd_seconds", "Job duration.", []float64{1, 10})

	c.Add(3)
	g.Set(2)
	v.With("fast").Add(5)
	v.With("count").Add(1)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	want := strings.Join([]string{
		"# HELP rd_jobs_total Jobs accepted.",
		"# TYPE rd_jobs_total counter",
		"rd_jobs_total 3",
		"# HELP rd_queue_depth Queued jobs.",
		"# TYPE rd_queue_depth gauge",
		"rd_queue_depth 2",
		"# HELP rd_draining 1 while draining.",
		"# TYPE rd_draining gauge",
		"rd_draining 1",
		"# HELP rd_tier_total Answers by tier.",
		"# TYPE rd_tier_total counter",
		`rd_tier_total{tier="count"} 1`,
		`rd_tier_total{tier="fast"} 5`,
		"# HELP rd_seconds Job duration.",
		"# TYPE rd_seconds histogram",
		`rd_seconds_bucket{le="1"} 1`,
		`rd_seconds_bucket{le="10"} 2`,
		`rd_seconds_bucket{le="+Inf"} 3`,
		"rd_seconds_sum 105.5",
		"rd_seconds_count 3",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x", "")
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.With("a").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := v.Value("a"); got != 8000 {
		t.Fatalf("concurrent vec count = %d, want 8000", got)
	}
}

// TestLogFrozenClockDeterministic is the acceptance property of the
// telemetry log: with a KindFreeze rule on the telemetry clock, the
// same event sequence encodes to the same bytes, run after run.
func TestLogFrozenClockDeterministic(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	run := func() []byte {
		restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Point: faultinject.PointTelemetryClock,
			Kind:  faultinject.KindFreeze,
			Base:  base,
			Skew:  time.Millisecond,
		}))
		defer restore()
		var b bytes.Buffer
		l := NewLog(&b)
		l.Emit(Event{Source: "serve", Kind: "job.submitted", Job: "job-1"})
		l.Emit(Event{Source: "serve", Kind: "job.done", Job: "job-1",
			Fields: map[string]int64{"selected": 5, "segments": 40}})
		return b.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("frozen-clock logs differ:\n%s\nvs:\n%s", a, b)
	}
	evs, err := ParseJSONL(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("parsed %d events, seqs %v", len(evs), evs)
	}
	if !evs[0].TS.Equal(base) || !evs[1].TS.Equal(base.Add(time.Millisecond)) {
		t.Fatalf("frozen timestamps wrong: %v, %v", evs[0].TS, evs[1].TS)
	}
	if CountKind(evs, "job.done") != 1 {
		t.Fatal("CountKind miscounted")
	}
}

// A nil log and a writerless log are both valid sinks.
func TestLogNilAndWriterless(t *testing.T) {
	var nilLog *Log
	nilLog.Emit(Event{Kind: "dropped"}) // must not panic
	if nilLog.Seq() != 0 {
		t.Fatal("nil log sequenced an event")
	}
	l := NewLog(nil)
	var got []Event
	l.SetSink(func(ev Event) { got = append(got, ev) })
	l.Emit(Event{Kind: "a"})
	l.Emit(Event{Kind: "b"})
	if len(got) != 2 || got[0].Kind != "a" || got[1].Seq != 2 {
		t.Fatalf("sink fan-out wrong: %+v", got)
	}
}

// A pre-stamped TS (an emitter using its own clock point) survives Emit.
func TestLogKeepsForeignTimestamp(t *testing.T) {
	l := NewLog(nil)
	ts := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	out := l.Emit(Event{Kind: "x", TS: ts})
	if !out.TS.Equal(ts) {
		t.Fatalf("Emit restamped a foreign timestamp: %v", out.TS)
	}
}

func TestCounterFuncSamplesAtScrape(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.NewCounterFunc("rd_evictions_total", "Entries evicted.", func() int64 { return n })

	var b bytes.Buffer
	r.WritePrometheus(&b)
	want := strings.Join([]string{
		"# HELP rd_evictions_total Entries evicted.",
		"# TYPE rd_evictions_total counter",
		"rd_evictions_total 0",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The function is read at scrape time, not registration time.
	n = 42
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "rd_evictions_total 42") {
		t.Fatalf("scrape did not re-sample the function:\n%s", b.String())
	}
}
