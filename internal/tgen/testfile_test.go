package tgen

import (
	"bytes"
	"strings"
	"testing"

	"rdfault/internal/gen"
)

func TestTestFileRoundTrip(t *testing.T) {
	c := gen.PaperExample()
	tests := []Test{
		{V1: []bool{false, false, false}, V2: []bool{true, false, true}},
		{V1: []bool{true, true, false}, V2: []bool{false, true, false}},
	}
	var buf bytes.Buffer
	if err := WriteTests(&buf, c, tests); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTests(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tests) {
		t.Fatalf("got %d tests", len(got))
	}
	for i := range tests {
		for j := range tests[i].V1 {
			if got[i].V1[j] != tests[i].V1[j] || got[i].V2[j] != tests[i].V2[j] {
				t.Fatalf("test %d differs", i)
			}
		}
	}
}

func TestReadTestsErrors(t *testing.T) {
	c := gen.PaperExample()
	cases := map[string]string{
		"width":   "01 10\n",
		"fields":  "010\n",
		"badbit":  "01x 010\n",
		"toomany": "010 101 111\n",
	}
	for name, src := range cases {
		if _, err := ReadTests(strings.NewReader(src), c); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadTests(strings.NewReader("# c\n\n010 101\n"), c)
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v %d", err, len(got))
	}
}
