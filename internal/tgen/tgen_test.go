package tgen

import (
	"strings"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
)

// logicalPathsOf returns all logical paths keyed by a readable name.
func logicalPathsOf(c *circuit.Circuit) map[string]paths.Logical {
	out := map[string]paths.Logical{}
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		k := lp.Path.String(c)
		if lp.FinalOne {
			k += "/rise"
		} else {
			k += "/fall"
		}
		out[k] = paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne}
		return true
	})
	return out
}

func TestExampleClassification(t *testing.T) {
	c := gen.PaperExample()
	gn := NewGenerator(c)
	lps := logicalPathsOf(c)
	want := map[string]Class{
		"a -> y -> y$po/rise":           Robust,
		"a -> y -> y$po/fall":           Robust,
		"b -> g -> y -> y$po/rise":      Robust,
		"b -> g -> y -> y$po/fall":      Robust,
		"b -> o -> g -> y -> y$po/rise": NonRobust,
		"b -> o -> g -> y -> y$po/fall": FuncSensitizable,
		"c -> o -> g -> y -> y$po/rise": FuncSensitizable,
		"c -> o -> g -> y -> y$po/fall": FuncSensitizable,
	}
	if len(lps) != len(want) {
		t.Fatalf("have %d logical paths, want %d", len(lps), len(want))
	}
	for k, lp := range lps {
		if got := gn.Classify(lp); got != want[k] {
			t.Errorf("%s: class %v, want %v", k, got, want[k])
		}
	}
}

func TestExampleCoverage(t *testing.T) {
	c := gen.PaperExample()
	gn := NewGenerator(c)
	var all []paths.Logical
	for _, lp := range logicalPathsOf(c) {
		all = append(all, lp)
	}
	cv := gn.ClassifyAll(all)
	if cv.Paths != 8 || cv.Robust != 4 || cv.NonRobustOnly != 1 || cv.FuncSensOnly != 3 || cv.Unsensitizable != 0 {
		t.Fatalf("coverage = %+v", cv)
	}
	if got := cv.RobustCoverage(); got != 50 {
		t.Errorf("robust coverage = %v%%, want 50%%", got)
	}
}

// exactOracle computes by exhaustive enumeration whether lp satisfies the
// exact (vector-level) criterion: "nr" for Definition 5, "fs" for
// Definition 4.
func exactOracle(c *circuit.Circuit, lp paths.Logical, nr bool) bool {
	n := len(c.Inputs())
	in := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range in {
			in[i] = v&(1<<i) != 0
		}
		val := c.EvalBool(in)
		if val[lp.Path.PI()] != lp.FinalOne {
			continue
		}
		ok := true
		for i := 1; i < len(lp.Path.Gates) && ok; i++ {
			g := lp.Path.Gates[i]
			ctrl, hasCtrl := c.Type(g).Controlling()
			if !hasCtrl {
				continue
			}
			pin := lp.Path.Pins[i-1]
			onPath := val[c.Fanin(g)[pin]]
			if !nr && onPath == ctrl {
				continue // FS: no constraint in the controlling case
			}
			for p := range c.Fanin(g) {
				if p != pin && val[c.Fanin(g)[p]] == ctrl {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestClassMatchesExactOracles: NonRobust-or-better iff exactly
// non-robustly testable; FuncSensitizable-or-better iff exactly
// functionally sensitizable.
func TestClassMatchesExactOracles(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		gn := NewGenerator(c)
		for _, lp := range logicalPathsOf(c) {
			cl := gn.Classify(lp)
			if cl == Unknown {
				t.Fatalf("seed %d: classification aborted", seed)
			}
			wantNR := exactOracle(c, lp, true)
			wantFS := exactOracle(c, lp, false)
			gotNR := cl == Robust || cl == NonRobust
			gotFS := cl != Unsensitizable
			if gotNR != wantNR {
				t.Errorf("seed %d %s: class=%v but exact non-robust=%v",
					seed, lp.Path.String(c), cl, wantNR)
			}
			if gotFS != wantFS {
				t.Errorf("seed %d %s: class=%v but exact FS=%v",
					seed, lp.Path.String(c), cl, wantFS)
			}
		}
	}
}

// TestGeneratedTestsSatisfyConditions verifies returned witnesses against
// independent simulation: the second vector must satisfy the side-input
// conditions, and robust witnesses must additionally have conservatively
// stable side inputs where required.
func TestGeneratedTestsSatisfyConditions(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 12, Outputs: 2}, seed)
		gn := NewGenerator(c)
		for _, lp := range logicalPathsOf(c) {
			if tt, ok, _ := gn.NonRobustTest(lp); ok {
				checkTest(t, c, lp, tt, false)
			}
			if tt, ok, _ := gn.RobustTest(lp); ok {
				checkTest(t, c, lp, tt, true)
			}
		}
	}
}

func checkTest(t *testing.T, c *circuit.Circuit, lp paths.Logical, tt Test, robust bool) {
	t.Helper()
	val1 := c.EvalBool(tt.V1)
	val2 := c.EvalBool(tt.V2)
	// Conservative stability recursion.
	stable := make([]bool, c.NumGates())
	for i, pi := range c.Inputs() {
		stable[pi] = tt.V1[i] == tt.V2[i]
	}
	for _, g := range c.TopoOrder() {
		tp := c.Type(g)
		fin := c.Fanin(g)
		switch tp {
		case circuit.Input:
		case circuit.Output, circuit.Buf, circuit.Not:
			stable[g] = stable[fin[0]]
		default:
			ctrl, _ := tp.Controlling()
			anyStCtrl, allSt := false, true
			for _, f := range fin {
				if stable[f] && val2[f] == ctrl {
					anyStCtrl = true
				}
				if !stable[f] {
					allSt = false
				}
			}
			stable[g] = anyStCtrl || allSt
		}
	}
	// PI transition.
	piIdx := -1
	for i, pi := range c.Inputs() {
		if pi == lp.Path.PI() {
			piIdx = i
		}
	}
	if val1[lp.Path.PI()] == lp.FinalOne || val2[lp.Path.PI()] != lp.FinalOne {
		t.Fatalf("%s: witness does not launch the transition (v1=%v v2=%v)",
			lp.Path.String(c), tt.V1[piIdx], tt.V2[piIdx])
	}
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		ctrl, hasCtrl := c.Type(g).Controlling()
		if !hasCtrl {
			continue
		}
		pin := lp.Path.Pins[i-1]
		onPathCtrl := val2[c.Fanin(g)[pin]] == ctrl
		for p, f := range c.Fanin(g) {
			if p == pin {
				continue
			}
			if val2[f] == ctrl {
				t.Fatalf("%s: side input %q controlling in v2", lp.Path.String(c), c.Gate(f).Name)
			}
			if robust && !onPathCtrl && !stable[f] {
				t.Fatalf("%s: robust witness has unstable side input %q", lp.Path.String(c), c.Gate(f).Name)
			}
		}
	}
}

func TestClassHierarchy(t *testing.T) {
	// Class constants must be ordered for >= comparisons.
	if !(Robust > NonRobust && NonRobust > FuncSensitizable &&
		FuncSensitizable > Unsensitizable && Unsensitizable > Unknown) {
		t.Fatal("class ordering broken")
	}
	for _, cl := range []Class{Unknown, Unsensitizable, FuncSensitizable, NonRobust, Robust} {
		if cl.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestRobustImpliesNonRobust(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 10, Outputs: 2}, seed)
		gn := NewGenerator(c)
		for _, lp := range logicalPathsOf(c) {
			if _, ok, _ := gn.RobustTest(lp); ok {
				if _, ok2, _ := gn.NonRobustTest(lp); !ok2 {
					t.Fatalf("seed %d: robustly testable path lacks non-robust test", seed)
				}
			}
		}
	}
}

func TestFanoutFreeAllRobust(t *testing.T) {
	// In a fanout-free circuit with independent inputs every path is
	// robustly testable.
	b := circuit.NewBuilder("ff")
	a := b.Input("a")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	g1 := b.Gate(circuit.Nand, "g1", a, x)
	g2 := b.Gate(circuit.Nor, "g2", y, z)
	g3 := b.Gate(circuit.Or, "g3", g1, g2)
	b.Output("po", g3)
	c := b.MustBuild()
	gn := NewGenerator(c)
	for k, lp := range logicalPathsOf(c) {
		if got := gn.Classify(lp); got != Robust {
			t.Errorf("%s: class %v, want robust", k, got)
		}
	}
}

func TestBacktrackLimit(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 8, Gates: 30, Outputs: 2}, 2)
	gn := NewGenerator(c)
	gn.MaxBacktracks = 0
	sawUnknown := false
	for _, lp := range logicalPathsOf(c) {
		if gn.Classify(lp) == Unknown {
			sawUnknown = true
			break
		}
	}
	// With zero backtracks allowed, at least some path should abort (the
	// generator cannot even try alternatives). If every path solves
	// first-try the circuit is degenerate — accept but log.
	if !sawUnknown {
		t.Log("no aborts at MaxBacktracks=0; circuit solved greedily")
	}
}

func BenchmarkClassifyAll(b *testing.B) {
	c := gen.RandomCircuit("bench", gen.RandomOptions{Inputs: 10, Gates: 60, Outputs: 3}, 4)
	var all []paths.Logical
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		all = append(all, paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		return true
	})
	gn := NewGenerator(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gn.ClassifyAll(all)
	}
}

func TestDescribe(t *testing.T) {
	c := gen.PaperExample()
	gn := NewGenerator(c)
	for k, lp := range logicalPathsOf(c) {
		tt, ok, _ := gn.RobustTest(lp)
		if !ok {
			continue
		}
		out := Describe(c, lp, tt)
		for _, want := range []string{"path ", "launch ", "on-path"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: Describe missing %q:\n%s", k, want, out)
			}
		}
	}
}
