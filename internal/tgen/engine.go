// Package tgen generates and classifies two-pattern tests for path delay
// faults: robust tests (Lin/Reddy), non-robust tests (Definition 5) and
// functional sensitization (Definition 4).
//
// It supplies the test-class machinery the paper builds on: Example 3's
// fault-coverage argument (coverage = robustly testable / |LP(σ)|), the
// exact sets T(C) and FS(C) for cross-validation, and the dashed
// "functionally sensitizable but not non-robustly testable" path of
// Figure 2.
//
// The engine extends the stable-value domain with a per-gate stability
// state capturing the hazard-free steady signals of the classic
// five-valued algebra {S0, S1, U0, U1, XX}: a gate is Stable when its
// value is guaranteed constant and hazard-free across both test vectors.
// Stability propagates conservatively: a simple gate is stable if some
// input is stably controlling, or if all inputs are stably
// non-controlling.
package tgen

import (
	"rdfault/internal/circuit"
	"rdfault/internal/logic"
)

// Stability is the per-gate two-frame stability state.
type Stability uint8

const (
	// StUnknown means nothing is known about the waveform.
	StUnknown Stability = iota
	// StStable means the gate holds its final value hazard-free across
	// both vectors.
	StStable
	// StUnstable means the gate is known to change between the vectors
	// (only decided at PIs; never derived internally).
	StUnstable
)

// engine couples the final-frame (v2) three-valued implication engine
// with stability propagation.
type engine struct {
	c     *circuit.Circuit
	fv    []logic.Value // final (v2) stable values
	st    []Stability
	trail []trailEntry

	queue  []circuit.GateID
	queued []bool
	confl  bool
}

type trailEntry struct {
	g    circuit.GateID
	kind uint8 // 0 = fv, 1 = st
}

func newEngine(c *circuit.Circuit) *engine {
	n := c.NumGates()
	return &engine{
		c:      c,
		fv:     make([]logic.Value, n),
		st:     make([]Stability, n),
		queued: make([]bool, n),
	}
}

func (e *engine) mark() int { return len(e.trail) }

func (e *engine) backtrackTo(m int) {
	for i := len(e.trail) - 1; i >= m; i-- {
		t := e.trail[i]
		if t.kind == 0 {
			e.fv[t.g] = logic.X
		} else {
			e.st[t.g] = StUnknown
		}
	}
	e.trail = e.trail[:m]
	e.confl = false
	e.queue = e.queue[:0]
	for i := range e.queued {
		e.queued[i] = false
	}
}

func (e *engine) setFV(g circuit.GateID, v logic.Value) bool {
	cur := e.fv[g]
	if cur == v {
		return true
	}
	if cur != logic.X {
		e.confl = true
		return false
	}
	e.fv[g] = v
	e.trail = append(e.trail, trailEntry{g, 0})
	e.enqueue(g)
	for _, edge := range e.c.Fanout(g) {
		e.enqueue(edge.To)
	}
	return true
}

func (e *engine) setST(g circuit.GateID, s Stability) bool {
	cur := e.st[g]
	if cur == s {
		return true
	}
	if cur != StUnknown {
		e.confl = true
		return false
	}
	e.st[g] = s
	e.trail = append(e.trail, trailEntry{g, 1})
	e.enqueue(g)
	for _, edge := range e.c.Fanout(g) {
		e.enqueue(edge.To)
	}
	return true
}

func (e *engine) enqueue(g circuit.GateID) {
	if !e.queued[g] {
		e.queued[g] = true
		e.queue = append(e.queue, g)
	}
}

func (e *engine) propagate() bool {
	for len(e.queue) > 0 {
		g := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.queued[g] = false
		if !e.eval(g) {
			e.queue = e.queue[:0]
			for i := range e.queued {
				e.queued[i] = false
			}
			return false
		}
	}
	return true
}

// assignFinal asserts the final value of g and propagates.
func (e *engine) assignFinal(g circuit.GateID, v bool) bool {
	if !e.setFV(g, logic.FromBool(v)) {
		return false
	}
	return e.propagate()
}

// assignStable asserts that g holds value v stably.
func (e *engine) assignStable(g circuit.GateID, v bool) bool {
	if !e.setFV(g, logic.FromBool(v)) {
		return false
	}
	if !e.setST(g, StStable) {
		return false
	}
	return e.propagate()
}

// markUnstable records a PI decision of a changing input.
func (e *engine) markUnstable(g circuit.GateID) bool {
	if !e.setST(g, StUnstable) {
		return false
	}
	return e.propagate()
}

// eval applies final-value and stability rules at gate g.
func (e *engine) eval(g circuit.GateID) bool {
	t := e.c.Type(g)
	switch t {
	case circuit.Input:
		return true
	case circuit.Output, circuit.Buf, circuit.Not:
		in := e.c.Fanin(g)[0]
		inv := t == circuit.Not
		// Final value both directions.
		iv := e.fv[in]
		if inv {
			iv = iv.Not()
		}
		if iv.Known() && !e.setFV(g, iv) {
			return false
		}
		want := e.fv[g]
		if inv {
			want = want.Not()
		}
		if want.Known() && !e.setFV(in, want) {
			return false
		}
		// Stability is inherited in both directions for single-input
		// gates.
		if e.st[in] != StUnknown && !e.setST(g, e.st[in]) {
			return false
		}
		if e.st[g] != StUnknown && !e.setST(in, e.st[g]) {
			return false
		}
		return true
	}

	ctrlB, _ := t.Controlling()
	ctrl := logic.FromBool(ctrlB)
	nonCtrl := ctrl.Not()
	outIfCtrl := ctrl
	outIfNon := nonCtrl
	if t.Inverting() {
		outIfCtrl, outIfNon = outIfCtrl.Not(), outIfNon.Not()
	}

	fanin := e.c.Fanin(g)
	var (
		fvUnknown   int
		lastFVUnk   circuit.GateID
		anyCtrl     bool
		anyStCtrl   bool   // some input stably controlling
		allStNon    = true // all inputs stably non-controlling
		stCandidate circuit.GateID
		nCandidates int
	)
	for _, f := range fanin {
		switch e.fv[f] {
		case ctrl:
			anyCtrl = true
			if e.st[f] == StStable {
				anyStCtrl = true
			}
		case logic.X:
			fvUnknown++
			lastFVUnk = f
		}
		if !(e.fv[f] == nonCtrl && e.st[f] == StStable) {
			allStNon = false
		}
		// Candidate for supplying a stable controlling value.
		if e.fv[f] != nonCtrl && e.st[f] != StUnstable {
			nCandidates++
			stCandidate = f
		}
	}

	// Final-value rules (as in logic.Engine).
	if anyCtrl {
		if !e.setFV(g, outIfCtrl) {
			return false
		}
	} else if fvUnknown == 0 {
		if !e.setFV(g, outIfNon) {
			return false
		}
	}
	switch e.fv[g] {
	case outIfNon:
		for _, f := range fanin {
			if !e.setFV(f, nonCtrl) {
				return false
			}
		}
	case outIfCtrl:
		if !anyCtrl {
			if fvUnknown == 0 {
				e.confl = true
				return false
			}
			if fvUnknown == 1 && !e.setFV(lastFVUnk, ctrl) {
				return false
			}
		}
	}

	// Stability rules, forward.
	if anyStCtrl {
		if !e.setFV(g, outIfCtrl) || !e.setST(g, StStable) {
			return false
		}
	} else if allStNon {
		if !e.setFV(g, outIfNon) || !e.setST(g, StStable) {
			return false
		}
	}

	// Stability rules, backward: the gate is required stable.
	if e.st[g] == StStable {
		switch e.fv[g] {
		case outIfNon:
			// Every input must be stably non-controlling.
			for _, f := range fanin {
				if !e.setFV(f, nonCtrl) || !e.setST(f, StStable) {
					return false
				}
			}
		case outIfCtrl:
			if !anyStCtrl {
				if nCandidates == 0 {
					e.confl = true
					return false
				}
				if nCandidates == 1 {
					if !e.setFV(stCandidate, ctrl) || !e.setST(stCandidate, StStable) {
						return false
					}
				}
			}
		}
	}
	return true
}
