package tgen

import (
	"fmt"
	"strings"

	"rdfault/internal/circuit"
	"rdfault/internal/logic"
	"rdfault/internal/paths"
)

// Test is a two-pattern test: apply V1, let the circuit settle, then
// apply V2 and sample the outputs at the clock period.
type Test struct {
	V1, V2 []bool // in Inputs() order
}

// Class is the strongest test class of a logical path.
type Class uint8

const (
	// Unknown means the search aborted (backtrack limit).
	Unknown Class = iota
	// Unsensitizable: not even functionally sensitizable — always RD
	// (Lemma 1).
	Unsensitizable
	// FuncSensitizable: functionally sensitizable but not non-robustly
	// testable (the dashed path of Figure 2 falls here).
	FuncSensitizable
	// NonRobust: non-robustly but not robustly testable.
	NonRobust
	// Robust: a robust two-pattern test exists.
	Robust
)

// String names the class.
func (cl Class) String() string {
	switch cl {
	case Unsensitizable:
		return "unsensitizable"
	case FuncSensitizable:
		return "func-sensitizable"
	case NonRobust:
		return "non-robust"
	case Robust:
		return "robust"
	}
	return "unknown"
}

// Generator produces path delay fault tests for one circuit. Not safe for
// concurrent use.
type Generator struct {
	c *circuit.Circuit
	e *engine
	// MaxBacktracks bounds the search per query (default 100000).
	MaxBacktracks int

	backtracks int
	reqs       []requirement
}

type requirement struct {
	g      circuit.GateID
	value  bool
	stable bool
}

// NewGenerator returns a Generator for c.
func NewGenerator(c *circuit.Circuit) *Generator {
	return &Generator{c: c, e: newEngine(c), MaxBacktracks: 100000}
}

// pathConstraints asserts the sensitization requirements of lp for the
// given class into the engine and records them for final verification.
// robust selects the Lin/Reddy side conditions; nonRobust the Definition 5
// conditions; otherwise Definition 4 (functional sensitization) is used.
func (gn *Generator) pathConstraints(lp paths.Logical, robust, nonRobust bool) bool {
	c := gn.c
	gn.reqs = gn.reqs[:0]
	val := lp.FinalOne
	if !gn.assertFinal(lp.Path.PI(), val) {
		return false
	}
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		t := c.Type(g)
		nval := val != t.Inverting()
		ctrl, hasCtrl := t.Controlling()
		if hasCtrl {
			onPathCtrl := val == ctrl
			for pin, f := range c.Fanin(g) {
				if pin == lp.Path.Pins[i-1] {
					continue
				}
				switch {
				case !onPathCtrl && robust:
					// Side inputs steady non-controlling.
					if !gn.assertStable(f, !ctrl) {
						return false
					}
				case !onPathCtrl || nonRobust:
					// Final value non-controlling.
					if !gn.assertFinal(f, !ctrl) {
						return false
					}
				case robust:
					// On-path controlling, robust: final non-controlling.
					if !gn.assertFinal(f, !ctrl) {
						return false
					}
				}
			}
		}
		if !gn.assertFinal(g, nval) {
			return false
		}
		val = nval
	}
	return true
}

func (gn *Generator) assertFinal(g circuit.GateID, v bool) bool {
	gn.reqs = append(gn.reqs, requirement{g: g, value: v})
	return gn.e.assignFinal(g, v)
}

func (gn *Generator) assertStable(g circuit.GateID, v bool) bool {
	gn.reqs = append(gn.reqs, requirement{g: g, value: v, stable: true})
	return gn.e.assignStable(g, v)
}

// piState is one search decision for a primary input.
type piState uint8

const (
	piS0 piState = iota // stable 0
	piS1                // stable 1
	piR                 // rising 0 -> 1
	piF                 // falling 1 -> 0
)

func (p piState) v1() bool     { return p == piS1 || p == piF }
func (p piState) v2() bool     { return p == piS1 || p == piR }
func (p piState) stable() bool { return p == piS0 || p == piS1 }

// search completes the current engine state to a full PI assignment
// satisfying all recorded requirements. onPathPI is forced to the
// transition (v1 = !finalOne, v2 = finalOne); pass circuit.None to leave
// all PIs free. Returns the witness test or ok=false.
func (gn *Generator) search(onPathPI circuit.GateID, finalOne bool) (Test, bool) {
	ins := gn.c.Inputs()
	states := make([]piState, len(ins))
	assigned := make([]bool, len(ins))

	// The on-path PI is fixed.
	for i, pi := range ins {
		if pi == onPathPI {
			if finalOne {
				states[i] = piR
			} else {
				states[i] = piF
			}
			assigned[i] = true
			if !gn.e.markUnstable(pi) {
				return Test{}, false
			}
		}
	}

	gn.backtracks = 0
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		for idx < len(ins) && assigned[idx] {
			idx++
		}
		if idx == len(ins) {
			return gn.verify(states)
		}
		pi := ins[idx]
		// Branch order: prefer choices consistent with current
		// implications.
		order := [4]piState{piS0, piS1, piR, piF}
		if gn.e.fv[pi] == logic.One {
			order = [4]piState{piS1, piR, piS0, piF}
		}
		for _, st := range order {
			// Quick consistency filter against engine state.
			if v, known := gn.e.fv[pi].Bool(); known && v != st.v2() {
				continue
			}
			if gn.e.st[pi] == StStable && !st.stable() {
				continue
			}
			if gn.e.st[pi] == StUnstable && st.stable() {
				continue
			}
			m := gn.e.mark()
			ok := gn.e.assignFinal(pi, st.v2())
			if ok {
				if st.stable() {
					ok = gn.e.assignStable(pi, st.v2())
				} else {
					ok = gn.e.markUnstable(pi)
				}
			}
			if ok {
				states[idx] = st
				assigned[idx] = true
				if dfs(idx + 1) {
					return true
				}
				assigned[idx] = false
			}
			gn.e.backtrackTo(m)
			gn.backtracks++
			if gn.backtracks > gn.MaxBacktracks {
				return false
			}
		}
		return false
	}
	if !dfs(0) {
		return Test{}, false
	}
	t := Test{V1: make([]bool, len(ins)), V2: make([]bool, len(ins))}
	for i, st := range states {
		t.V1[i], t.V2[i] = st.v1(), st.v2()
	}
	return t, true
}

// verify recomputes final values and exact conservative stability from
// the full PI assignment and checks every recorded requirement. This
// closes the gap left by the engine's local (incomplete) implications.
func (gn *Generator) verify(states []piState) bool {
	c := gn.c
	n := c.NumGates()
	v2 := make([]bool, 0, n)
	stable := make([]bool, 0, n)
	v2 = v2[:n]
	stable = stable[:n]
	for i, pi := range c.Inputs() {
		v2[pi] = states[i].v2()
		stable[pi] = states[i].stable()
	}
	var args [8]bool
	for _, g := range c.TopoOrder() {
		t := c.Type(g)
		fanin := c.Fanin(g)
		switch t {
		case circuit.Input:
			continue
		case circuit.Output, circuit.Buf:
			v2[g] = v2[fanin[0]]
			stable[g] = stable[fanin[0]]
		case circuit.Not:
			v2[g] = !v2[fanin[0]]
			stable[g] = stable[fanin[0]]
		default:
			in := args[:0]
			anyStCtrl := false
			allSt := true
			ctrl, _ := t.Controlling()
			for _, f := range fanin {
				in = append(in, v2[f])
				if stable[f] && v2[f] == ctrl {
					anyStCtrl = true
				}
				if !stable[f] {
					allSt = false
				}
			}
			v2[g] = t.Eval(in)
			stable[g] = anyStCtrl || allSt
		}
	}
	for _, r := range gn.reqs {
		if v2[r.g] != r.value {
			return false
		}
		if r.stable && !stable[r.g] {
			return false
		}
	}
	return true
}

// RobustTest searches for a robust two-pattern test for lp. ok=false with
// aborted=false means the fault is provably robustly untestable within
// the conservative stability semantics; aborted=true means the backtrack
// limit was hit.
func (gn *Generator) RobustTest(lp paths.Logical) (t Test, ok, aborted bool) {
	gn.e.backtrackTo(0)
	if !gn.pathConstraints(lp, true, false) {
		gn.e.backtrackTo(0)
		return Test{}, false, false
	}
	t, ok = gn.search(lp.Path.PI(), lp.FinalOne)
	gn.e.backtrackTo(0)
	return t, ok, !ok && gn.backtracks > gn.MaxBacktracks
}

// NonRobustTest searches for a non-robust test (Definition 5). The first
// vector is the second with the on-path PI complemented (Remark 1: no
// input-space restrictions).
func (gn *Generator) NonRobustTest(lp paths.Logical) (t Test, ok, aborted bool) {
	gn.e.backtrackTo(0)
	if !gn.pathConstraints(lp, false, true) {
		gn.e.backtrackTo(0)
		return Test{}, false, false
	}
	t, ok = gn.search(lp.Path.PI(), lp.FinalOne)
	gn.e.backtrackTo(0)
	return t, ok, !ok && gn.backtracks > gn.MaxBacktracks
}

// Sensitize searches for an input vector functionally sensitizing lp
// (Definition 4).
func (gn *Generator) Sensitize(lp paths.Logical) (v []bool, ok, aborted bool) {
	gn.e.backtrackTo(0)
	if !gn.pathConstraints(lp, false, false) {
		gn.e.backtrackTo(0)
		return nil, false, false
	}
	t, ok := gn.search(lp.Path.PI(), lp.FinalOne)
	gn.e.backtrackTo(0)
	return t.V2, ok, !ok && gn.backtracks > gn.MaxBacktracks
}

// Classify returns the strongest test class of lp.
func (gn *Generator) Classify(lp paths.Logical) Class {
	if _, ok, aborted := gn.RobustTest(lp); ok {
		return Robust
	} else if aborted {
		return Unknown
	}
	if _, ok, aborted := gn.NonRobustTest(lp); ok {
		return NonRobust
	} else if aborted {
		return Unknown
	}
	if _, ok, aborted := gn.Sensitize(lp); ok {
		return FuncSensitizable
	} else if aborted {
		return Unknown
	}
	return Unsensitizable
}

// Coverage summarizes test classes over a path set — the fault-coverage
// accounting of Example 3.
type Coverage struct {
	Paths          int
	Robust         int
	NonRobustOnly  int
	FuncSensOnly   int
	Unsensitizable int
	Unknown        int
}

// RobustCoverage returns robustly-testable / total as a percentage
// (the paper's fault coverage for testing exactly this path set).
func (cv Coverage) RobustCoverage() float64 {
	if cv.Paths == 0 {
		return 0
	}
	return 100 * float64(cv.Robust) / float64(cv.Paths)
}

// ClassifyAll classifies every logical path in lps.
func (gn *Generator) ClassifyAll(lps []paths.Logical) Coverage {
	var cv Coverage
	for _, lp := range lps {
		cv.Paths++
		switch gn.Classify(lp) {
		case Robust:
			cv.Robust++
		case NonRobust:
			cv.NonRobustOnly++
		case FuncSensitizable:
			cv.FuncSensOnly++
		case Unsensitizable:
			cv.Unsensitizable++
		default:
			cv.Unknown++
		}
	}
	return cv
}

// Describe renders a human-readable justification of a two-pattern test
// for one logical path: per on-path gate, the simulated side-input values
// in both vectors and their conservative stability. Debugging aid for
// tools; the format is stable enough for golden tests.
func Describe(c *circuit.Circuit, lp paths.Logical, t Test) string {
	val1 := c.EvalBool(t.V1)
	val2 := c.EvalBool(t.V2)
	stable := make([]bool, c.NumGates())
	for i, pi := range c.Inputs() {
		stable[pi] = t.V1[i] == t.V2[i]
	}
	for _, g := range c.TopoOrder() {
		typ := c.Type(g)
		fanin := c.Fanin(g)
		switch typ {
		case circuit.Input:
		case circuit.Output, circuit.Buf, circuit.Not:
			stable[g] = stable[fanin[0]]
		default:
			ctrl, _ := typ.Controlling()
			anyStCtrl, allSt := false, true
			for _, f := range fanin {
				if stable[f] && val2[f] == ctrl {
					anyStCtrl = true
				}
				if !stable[f] {
					allSt = false
				}
			}
			stable[g] = anyStCtrl || allSt
		}
	}
	bit := func(b bool) byte {
		if b {
			return '1'
		}
		return '0'
	}
	var sb strings.Builder
	dir := "fall"
	if lp.FinalOne {
		dir = "rise"
	}
	fmt.Fprintf(&sb, "path %s (%s)\n", lp.Path.String(c), dir)
	pi := lp.Path.PI()
	fmt.Fprintf(&sb, "  launch %s: %c -> %c\n", c.Gate(pi).Name, bit(val1[pi]), bit(val2[pi]))
	for i := 1; i < len(lp.Path.Gates); i++ {
		g := lp.Path.Gates[i]
		typ := c.Type(g)
		fmt.Fprintf(&sb, "  %s (%s): on-path %c->%c", c.Gate(g).Name, typ, bit(val1[g]), bit(val2[g]))
		if _, hasCtrl := typ.Controlling(); hasCtrl {
			for p, f := range c.Fanin(g) {
				if p == lp.Path.Pins[i-1] {
					continue
				}
				mark := "changing"
				if stable[f] {
					mark = "stable"
				}
				fmt.Fprintf(&sb, "; side %s=%c->%c (%s)",
					c.Gate(f).Name, bit(val1[f]), bit(val2[f]), mark)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
