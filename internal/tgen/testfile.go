package tgen

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rdfault/internal/circuit"
)

// WriteTests emits a two-pattern test set in a simple line format:
//
//	# circuit <name> inputs <n>
//	<v1 bits> <v2 bits>
//
// Bits are LSB-first in Inputs() declaration order. The format is the
// interchange between cmd/atpg (generation) and cmd/grade (grading).
func WriteTests(w io.Writer, c *circuit.Circuit, tests []Test) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# circuit %s inputs %d\n", c.Name(), len(c.Inputs()))
	for _, t := range tests {
		fmt.Fprintf(bw, "%s %s\n", bitString(t.V1), bitString(t.V2))
	}
	return bw.Flush()
}

// ReadTests parses a test set written by WriteTests, validating every
// vector against the circuit's input count.
func ReadTests(r io.Reader, c *circuit.Circuit) ([]Test, error) {
	n := len(c.Inputs())
	sc := bufio.NewScanner(r)
	var out []Test
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("tests:%d: want two vectors, got %d fields", lineNo, len(fields))
		}
		v1, err := parseBits(fields[0], n)
		if err != nil {
			return nil, fmt.Errorf("tests:%d: %v", lineNo, err)
		}
		v2, err := parseBits(fields[1], n)
		if err != nil {
			return nil, fmt.Errorf("tests:%d: %v", lineNo, err)
		}
		out = append(out, Test{V1: v1, V2: v2})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func bitString(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		if x {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func parseBits(s string, n int) ([]bool, error) {
	if len(s) != n {
		return nil, fmt.Errorf("vector %q has %d bits, circuit has %d inputs", s, len(s), n)
	}
	v := make([]bool, n)
	for i := 0; i < n; i++ {
		switch s[i] {
		case '0':
		case '1':
			v[i] = true
		default:
			return nil, fmt.Errorf("bad bit %q in %q", s[i], s)
		}
	}
	return v, nil
}
