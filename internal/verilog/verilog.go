// Package verilog reads and writes gate-level structural Verilog
// netlists built from the primitives and, or, nand, nor, not and buf —
// the interchange format most downstream EDA tools accept alongside
// .bench.
//
// Supported subset: one module per file, scalar ports declared in the
// header, input/output/wire declarations, primitive instantiations with
// the output as the first terminal, and // or /* */ comments. As with the
// .bench reader, output ports become explicit Output marker gates named
// "<port>$po", which the writer strips again, so Parse(Write(c)) is
// structure- and name-stable.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rdfault/internal/circuit"
)

// Write emits c as a structural Verilog module.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, g := range c.Inputs() {
		ports = append(ports, ident(c.Gate(g).Name))
	}
	for _, g := range c.Outputs() {
		ports = append(ports, ident(portName(c.Gate(g).Name)))
	}
	fmt.Fprintf(bw, "// %s\nmodule %s (%s);\n", c.Stats(), ident(moduleName(c.Name())), strings.Join(ports, ", "))
	for _, g := range c.Inputs() {
		fmt.Fprintf(bw, "  input %s;\n", ident(c.Gate(g).Name))
	}
	outName := map[circuit.GateID]string{}
	// When the PO port name equals its driver's signal name (the "$po"
	// marker convention), the driver's net IS the port: declare it output
	// instead of wire and emit no buf.
	directNet := map[circuit.GateID]bool{} // driver gates exposed as ports
	for _, g := range c.Outputs() {
		outName[g] = portName(c.Gate(g).Name)
		fmt.Fprintf(bw, "  output %s;\n", ident(outName[g]))
		drv := c.Gate(g).Fanin[0]
		if c.Gate(drv).Name == outName[g] && c.Type(drv) != circuit.Input {
			directNet[drv] = true
		}
	}
	driverOf := map[circuit.GateID]string{} // gate -> signal name it drives
	for _, g := range c.TopoOrder() {
		if c.Type(g) != circuit.Output {
			driverOf[g] = c.Gate(g).Name
		}
	}
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		if gate.Type == circuit.Input || gate.Type == circuit.Output || directNet[g] {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", ident(gate.Name))
	}
	prim := map[circuit.GateType]string{
		circuit.Buf: "buf", circuit.Not: "not",
		circuit.And: "and", circuit.Or: "or",
		circuit.Nand: "nand", circuit.Nor: "nor",
	}
	inst := 0
	for _, g := range c.TopoOrder() {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Output:
			if directNet[gate.Fanin[0]] && driverOf[gate.Fanin[0]] == outName[g] {
				continue // port net is the driver itself
			}
			// The port is a distinct net; connect with a buf.
			fmt.Fprintf(bw, "  buf po%d (%s, %s);\n", inst,
				ident(outName[g]), ident(driverOf[gate.Fanin[0]]))
			inst++
		default:
			terms := []string{ident(gate.Name)}
			for _, f := range gate.Fanin {
				terms = append(terms, ident(driverOf[f]))
			}
			fmt.Fprintf(bw, "  %s g%d (%s);\n", prim[gate.Type], inst, strings.Join(terms, ", "))
			inst++
		}
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// portName strips the "$po" marker suffix the parsers attach.
func portName(name string) string {
	return strings.TrimSuffix(name, "$po")
}

func moduleName(name string) string {
	if name == "" {
		return "top"
	}
	return name
}

// ident renders a Verilog identifier, escaping it when it does not match
// the simple-identifier grammar. Escaped identifiers extend to the next
// whitespace, so whitespace inside names is replaced by underscores (the
// one lossy case of the writer).
func ident(name string) string {
	simple := len(name) > 0
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '$'):
		default:
			simple = false
		}
	}
	if simple {
		return name
	}
	clean := strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r':
			return '_'
		}
		return r
	}, name)
	return `\` + clean + ` ` // escaped identifier: backslash to whitespace
}

// Parse reads a structural Verilog module.
func Parse(name string, r io.Reader) (*circuit.Circuit, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, fmt.Errorf("verilog %s: %v", name, err)
	}
	p := &parser{name: name, toks: toks}
	return p.module()
}

type parser struct {
	name string
	toks []string
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("verilog %s: "+format, append([]any{p.name}, args...)...)
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return p.errf("expected %q, got %q", t, got)
	}
	return nil
}

// identList parses "a, b, c" up to (but not consuming) the stop token.
func (p *parser) identList(stop string) ([]string, error) {
	var out []string
	for {
		t := p.next()
		if t == "" {
			return nil, p.errf("unexpected end of file in list")
		}
		out = append(out, t)
		switch p.peek() {
		case ",":
			p.next()
		case stop:
			return out, nil
		default:
			return nil, p.errf("expected ',' or %q after %q", stop, t)
		}
	}
}

func (p *parser) module() (*circuit.Circuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	modName := p.next()
	if modName == "" {
		return nil, p.errf("missing module name")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if _, err := p.identList(")"); err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []string
	wires := map[string]bool{}
	type inst struct {
		prim  string
		terms []string
	}
	var instances []inst

	prims := map[string]circuit.GateType{
		"buf": circuit.Buf, "not": circuit.Not,
		"and": circuit.And, "or": circuit.Or,
		"nand": circuit.Nand, "nor": circuit.Nor,
	}

	for {
		t := p.next()
		switch t {
		case "":
			return nil, p.errf("missing endmodule")
		case "endmodule":
			goto build
		case "input", "output", "wire":
			list, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			switch t {
			case "input":
				inputs = append(inputs, list...)
			case "output":
				outputs = append(outputs, list...)
			default:
				for _, wname := range list {
					wires[wname] = true
				}
			}
		default:
			gt, ok := prims[t]
			if !ok {
				return nil, p.errf("unsupported construct %q (primitives, input/output/wire only)", t)
			}
			_ = gt
			instName := p.next()
			if instName == "(" {
				// Anonymous instance: "(...)" directly.
				p.pos--
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			terms, err := p.identList(")")
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if len(terms) < 2 {
				return nil, p.errf("primitive %q needs an output and at least one input", t)
			}
			instances = append(instances, inst{prim: t, terms: terms})
		}
	}

build:
	b := circuit.NewBuilder(p.name)
	id := map[string]circuit.GateID{}
	for _, in := range inputs {
		id[in] = b.Input(in)
	}
	// Definitions by driven signal.
	type def struct {
		typ  circuit.GateType
		args []string
	}
	defs := map[string]def{}
	for _, ins := range instances {
		out := ins.terms[0]
		if _, dup := defs[out]; dup {
			return nil, p.errf("signal %q driven twice", out)
		}
		if _, isIn := id[out]; isIn {
			return nil, p.errf("input %q driven by a primitive", out)
		}
		defs[out] = def{typ: prims2[ins.prim], args: ins.terms[1:]}
	}
	var elaborate func(sig string, depth int) (circuit.GateID, error)
	elaborate = func(sig string, depth int) (circuit.GateID, error) {
		if g, ok := id[sig]; ok {
			if g == circuit.None {
				return circuit.None, p.errf("combinational cycle through %q", sig)
			}
			return g, nil
		}
		d, ok := defs[sig]
		if !ok {
			return circuit.None, p.errf("signal %q used but never driven", sig)
		}
		if depth > len(defs)+len(inputs)+1 {
			return circuit.None, p.errf("definition depth exceeded at %q", sig)
		}
		id[sig] = circuit.None
		args := make([]circuit.GateID, len(d.args))
		for i, a := range d.args {
			g, err := elaborate(a, depth+1)
			if err != nil {
				return circuit.None, err
			}
			args[i] = g
		}
		var g circuit.GateID
		switch d.typ {
		case circuit.Buf, circuit.Not:
			if len(args) != 1 {
				return circuit.None, p.errf("%v driving %q needs 1 input", d.typ, sig)
			}
			g = b.Gate(d.typ, sig, args[0])
		default:
			if len(args) < 2 {
				return circuit.None, p.errf("%v driving %q needs >=2 inputs", d.typ, sig)
			}
			g = b.Gate(d.typ, sig, args...)
		}
		id[sig] = g
		return g, nil
	}
	for sig := range defs {
		if _, err := elaborate(sig, 0); err != nil {
			return nil, err
		}
	}
	poSeen := map[string]int{}
	for _, out := range outputs {
		g, err := elaborate(out, 0)
		if err != nil {
			return nil, err
		}
		poName := out + "$po"
		if n := poSeen[out]; n > 0 {
			poName = fmt.Sprintf("%s$po%d", out, n)
		}
		poSeen[out]++
		b.Output(poName, g)
	}
	return b.Build()
}

var prims2 = map[string]circuit.GateType{
	"buf": circuit.Buf, "not": circuit.Not,
	"and": circuit.And, "or": circuit.Or,
	"nand": circuit.Nand, "nor": circuit.Nor,
}

// tokenize splits the input into identifiers, punctuation and keywords,
// dropping comments. Escaped identifiers (backslash to whitespace) are
// supported.
func tokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case ch == '/':
			nxt, _, err := br.ReadRune()
			if err != nil {
				return nil, fmt.Errorf("dangling '/'")
			}
			switch nxt {
			case '/':
				flush()
				for {
					c2, _, err := br.ReadRune()
					if err == io.EOF || c2 == '\n' {
						break
					}
					if err != nil {
						return nil, err
					}
				}
			case '*':
				flush()
				prev := rune(0)
				for {
					c2, _, err := br.ReadRune()
					if err != nil {
						return nil, fmt.Errorf("unterminated block comment")
					}
					if prev == '*' && c2 == '/' {
						break
					}
					prev = c2
				}
			default:
				return nil, fmt.Errorf("unexpected '/'")
			}
		case ch == '\\':
			// Escaped identifier: up to whitespace.
			flush()
			for {
				c2, _, err := br.ReadRune()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				if c2 == ' ' || c2 == '\t' || c2 == '\n' || c2 == '\r' {
					break
				}
				cur.WriteRune(c2)
			}
			flush()
		case ch == '(' || ch == ')' || ch == ',' || ch == ';':
			flush()
			toks = append(toks, string(ch))
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			flush()
		default:
			cur.WriteRune(ch)
		}
	}
}
