package verilog

import (
	"bytes"
	"strings"
	"testing"

	"rdfault/internal/bdd"
	"rdfault/internal/circuit"
	"rdfault/internal/gen"
)

func TestParseBasic(t *testing.T) {
	src := `
// a tiny netlist
module tiny (a, b, y);
  input a, b;
  output y;
  wire g1;
  nand n0 (g1, a, b);
  not  n1 (y, g1);
endmodule
`
	c, err := Parse("tiny", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs()) != 2 || len(c.Outputs()) != 1 {
		t.Fatalf("interface: %d in %d out", len(c.Inputs()), len(c.Outputs()))
	}
	for v := 0; v < 4; v++ {
		a, b := v&1 != 0, v&2 != 0
		want := a && b // not(nand(a,b))
		out := c.OutputsOf(c.EvalBool([]bool{a, b}))
		if out[0] != want {
			t.Fatalf("f(%v,%v) = %v, want %v", a, b, out[0], want)
		}
	}
}

func TestParseOutOfOrderAndComments(t *testing.T) {
	src := `
module m (x, y);
  input x;
  output y;
  /* block
     comment */
  not n1 (y, w); // uses w before its driver appears
  wire w;
  buf b1 (w, x);
endmodule
`
	c, err := Parse("m", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := c.OutputsOf(c.EvalBool([]bool{true}))
	if out[0] != false {
		t.Fatal("not(buf(1)) != 0")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":   "input a;\n",
		"no end":      "module m (a);\n input a;\n",
		"cycle":       "module m (a, y);\n input a;\n output y;\n wire w;\n not n0 (w, y);\n not n1 (y, w);\nendmodule\n",
		"undriven":    "module m (a, y);\n input a;\n output y;\n and g (y, a, ghost);\nendmodule\n",
		"double":      "module m (a, y);\n input a;\n output y;\n not n0 (y, a);\n not n1 (y, a);\nendmodule\n",
		"drive input": "module m (a, y);\n input a;\n output y;\n not n0 (a, y);\nendmodule\n",
		"assign":      "module m (a, y);\n input a;\n output y;\n assign y = a;\nendmodule\n",
		"arity":       "module m (a, y);\n input a;\n output y;\n and g (y, a);\nendmodule\n",
		"short prim":  "module m (a, y);\n input a;\n output y;\n not g (y);\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := Parse(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func roundTrip(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(c.Name(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	return c2
}

func TestRoundTripExample(t *testing.T) {
	c := gen.PaperExample()
	c2 := roundTrip(t, c)
	if c2.NumGates() != c.NumGates() {
		t.Fatalf("gates %d -> %d", c.NumGates(), c2.NumGates())
	}
	eq, err := bdd.Equivalent(c, c2)
	if err != nil || !eq {
		t.Fatalf("round trip not equivalent (%v)", err)
	}
	// Second trip is structurally stable.
	c3 := roundTrip(t, c2)
	if c3.NumGates() != c2.NumGates() {
		t.Fatal("second round trip changed structure")
	}
}

func TestRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 6, Gates: 25, Outputs: 3}, seed)
		c2 := roundTrip(t, c)
		eq, err := bdd.Equivalent(c, c2)
		if err != nil || !eq {
			t.Fatalf("seed %d: round trip not equivalent (%v)", seed, err)
		}
	}
}

func TestRoundTripGeneratedSuite(t *testing.T) {
	for _, nc := range []*circuit.Circuit{
		gen.RippleAdder(4, gen.XorNAND),
		gen.Comparator(3),
		gen.PriorityInterruptGrouped(3, 3),
	} {
		c2 := roundTrip(t, nc)
		eq, err := bdd.Equivalent(nc, c2)
		if err != nil || !eq {
			t.Fatalf("%s: round trip not equivalent (%v)", nc.Name(), err)
		}
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	// Gate names with "$po" style suffixes or leading digits must survive.
	b := circuit.NewBuilder("esc")
	a := b.Input("1bad(name)")
	g := b.Gate(circuit.Not, "weird$sig", a)
	b.Output("out$po", g)
	c := b.MustBuild()
	c2 := roundTrip(t, c)
	eq, err := bdd.Equivalent(c, c2)
	if err != nil || !eq {
		t.Fatalf("escaped-identifier round trip failed (%v)", err)
	}
	if _, ok := c2.GateByName("1bad(name)"); !ok {
		t.Fatal("escaped input name lost")
	}
}

func TestSharedDriverPorts(t *testing.T) {
	// Two POs on one driver.
	b := circuit.NewBuilder("share")
	a := b.Input("a")
	x := b.Input("x")
	g := b.Gate(circuit.And, "g", a, x)
	b.Output("g$po", g)
	b.Output("second", g)
	c := b.MustBuild()
	c2 := roundTrip(t, c)
	if len(c2.Outputs()) != 2 {
		t.Fatal("lost an output")
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		o1 := c.OutputsOf(c.EvalBool(in))
		o2 := c2.OutputsOf(c2.EvalBool(in))
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatal("shared-driver outputs differ")
		}
	}
}

func TestPIPort(t *testing.T) {
	// A PO driven directly by a PI.
	b := circuit.NewBuilder("pi")
	a := b.Input("a")
	x := b.Input("x")
	b.Output("y", a)
	b.Output("z", b.Gate(circuit.Not, "n", x))
	c := b.MustBuild()
	c2 := roundTrip(t, c)
	out := c2.OutputsOf(c2.EvalBool([]bool{true, true}))
	if out[0] != true || out[1] != false {
		t.Fatalf("PI-port round trip wrong: %v", out)
	}
}
