package verilog

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the structural Verilog reader never panics and that
// accepted modules survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("module m (a, y);\n input a;\n output y;\n not n (y, a);\nendmodule\n")
	f.Add("module m (a, b, y);\n input a, b;\n output y;\n wire w;\n nand g (w, a, b);\n buf o (y, w);\nendmodule\n")
	f.Add("module m (\\1x , y); input \\1x ; output y; not n (y, \\1x ); endmodule")
	f.Add("/* c */ module m (a, y); input a; output y; and g (y, a, a); endmodule")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted module failed to write: %v", err)
		}
		if _, err := Parse("fuzz2", bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("writer output rejected: %v\n%s", err, buf.String())
		}
	})
}
