// Size-capped eviction: the cap is enforced after every write, victims
// are chosen least-recently-accessed (get refreshes recency), and an
// eviction mid-ECO only costs a recompute — counters stay bit-identical
// to a cold run.
package store

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/telemetry"
)

// residentBytes sums the store's entry files on disk.
func residentBytes(t *testing.T, s *Store) int64 {
	t.Helper()
	var total int64
	filepath.WalkDir(s.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		info, err := d.Info()
		if err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// ageEntry back-dates the entry holding key so LRU ordering is
// deterministic without sleeping.
func ageEntry(t *testing.T, s *Store, key string, age time.Duration) {
	t.Helper()
	var found bool
	filepath.WalkDir(s.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, key+".json") {
			return nil
		}
		when := time.Now().Add(-age)
		if err := os.Chtimes(path, when, when); err != nil {
			t.Fatal(err)
		}
		found = true
		return nil
	})
	if !found {
		t.Fatalf("no entry file for key %q", key)
	}
}

func TestEvictionCapsResidentBytes(t *testing.T) {
	s := openStore(t)
	var events bytes.Buffer
	s.SetTelemetry(telemetry.NewLog(&events))

	rec := &ConeRecord{Cone: "po0", TotalPaths: "99", RD: "11", Selected: 88, Segments: 1234}
	for _, key := range []string{"ka", "kb", "kc", "kd", "ke"} {
		if err := s.PutCone(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	total := residentBytes(t, s)
	cap := total / 2
	s.SetMaxBytes(cap)
	// The cap is enforced on the next write, not retroactively.
	if err := s.PutCone("kf", rec); err != nil {
		t.Fatal(err)
	}

	if got := residentBytes(t, s); got > cap {
		t.Fatalf("resident bytes %d exceed the %d cap after eviction", got, cap)
	}
	if got := s.Stats().Evictions; got < 3 {
		t.Fatalf("stats count %d evictions; halving a 6-entry store needs at least 3", got)
	}
	evs, err := telemetry.ParseJSONL(events.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.CountKind(evs, "store.evict") == 0 {
		t.Fatal("no store.evict event emitted")
	}
	for _, ev := range evs {
		if ev.Kind == "store.evict" && (ev.Fields["evicted"] == 0 || ev.Fields["bytes_freed"] == 0) {
			t.Fatalf("evict event carries empty fields: %+v", ev.Fields)
		}
	}
}

// Victims are least-recently-ACCESSED, not least-recently-written: a
// get refreshes the entry it hits, so the read-hot entry survives and
// the cold one goes.
func TestEvictionIsLRUWithTouchOnGet(t *testing.T) {
	s := openStore(t)
	rec := &ConeRecord{Cone: "po0", TotalPaths: "7", RD: "3", Selected: 4, Segments: 55}
	for _, key := range []string{"ka", "kb", "kc"} {
		if err := s.PutCone(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	ageEntry(t, s, "ka", 3*time.Hour)
	ageEntry(t, s, "kb", 2*time.Hour)
	ageEntry(t, s, "kc", time.Hour)

	// Read ka: the write-order victim becomes the freshest entry.
	if _, err := s.GetCone("ka"); err != nil {
		t.Fatal(err)
	}

	// Cap at exactly the current resident bytes: the next same-size write
	// forces out exactly one entry — the LRU one, which is now kb.
	s.SetMaxBytes(residentBytes(t, s))
	if err := s.PutCone("kd", rec); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("%d evictions, want exactly 1", got)
	}
	if _, err := s.GetCone("kb"); !errors.Is(err, ErrMiss) {
		t.Fatalf("kb (the LRU entry) survived: %v", err)
	}
	if _, err := s.GetCone("ka"); err != nil {
		t.Fatalf("ka was read-refreshed yet evicted: %v", err)
	}
}

// The ECO bar under eviction pressure: evicting every warm entry
// between two runs of the same circuit costs a recompute — outcome
// degrades from hit to miss/delta — and not one counter bit.
func TestEvictMidECOKeepsCountersBitIdentical(t *testing.T) {
	s := openStore(t)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	a := gen.ALU(8, gen.XorNAND)

	cold, err := IdentifyThrough(s, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Outcome != "miss" {
		t.Fatalf("cold run outcome %q", cold.Outcome)
	}

	// A 1-byte cap turns every write into an eviction storm: running a
	// second circuit through the store flushes the first one's entries.
	s.SetMaxBytes(1)
	other, err := IdentifyThrough(s, gen.RippleAdder(6, gen.XorNAND), opt)
	if err != nil {
		t.Fatal(err)
	}
	if other.Outcome != "miss" {
		t.Fatalf("second circuit outcome %q", other.Outcome)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("the 1-byte cap evicted nothing")
	}

	s.SetMaxBytes(0)
	warm, err := IdentifyThrough(s, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome == "hit" {
		t.Fatal("evicted store still served a pure hit")
	}
	if warm.EnumeratedSegments == 0 {
		t.Fatal("rerun enumerated nothing; eviction was not exercised")
	}
	assertSameCounters(t, cold, warm)
}
