package store

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/synth"
)

// The heart of the equivalence suite: for k-of-n-cone edits, the
// incremental warm run (ancestor populated, only changed cones
// re-enumerated) must produce counters bit-identical to a cold full run
// of the revised circuit — at one worker and at four.
func TestECOEquivalence(t *testing.T) {
	base := gen.ALU(8, gen.XorNAND)
	for _, k := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			revised, edits, err := MutateKCones(base, k, int64(10*k+workers))
			if err != nil {
				t.Fatal(err)
			}
			if len(edits) == 0 {
				t.Fatal("no edits applied")
			}
			opt := Options{Heuristic: core.Heuristic1, Workers: workers}
			cold := reference(t, revised, opt)

			s := openStore(t)
			if _, err := IdentifyThrough(s, base, opt); err != nil {
				t.Fatal(err)
			}
			warm, err := IdentifyThrough(s, revised, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameCounters(t, cold, warm)
			// The merged counters must also match the whole-circuit
			// pipeline on the invariant triple.
			rep, err := core.Identify(revised, core.Heuristic1, core.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Total.Cmp(rep.TotalLogicalPaths) != 0 || warm.Selected != rep.Selected ||
				warm.RD.Cmp(rep.RD) != 0 {
				t.Fatalf("k=%d workers=%d: warm run diverges from whole-circuit pipeline", k, workers)
			}
		}
	}
}

// threeBlocks builds a circuit of three structurally independent
// 2-output blocks (6 cones, no shared logic between blocks), so an edit
// in one block cannot move any other cone's projected sort — the
// setting where the exact reuse count is assertable.
func threeBlocks(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("threeblocks")
	for blk := 0; blk < 3; blk++ {
		suffix := string(rune('a' + blk))
		x0 := b.Input("x0_" + suffix)
		x1 := b.Input("x1_" + suffix)
		x2 := b.Input("x2_" + suffix)
		x3 := b.Input("x3_" + suffix)
		n0 := b.Gate(circuit.Nand, "n0_"+suffix, x0, x1)
		n1 := b.Gate(circuit.Nand, "n1_"+suffix, x2, x3)
		a0 := b.Gate(circuit.And, "a0_"+suffix, n0, x2)
		o0 := b.Gate(circuit.Or, "o0_"+suffix, n1, x0)
		m := b.Gate(circuit.Nor, "m_"+suffix, a0, o0)
		b.Output("y0_"+suffix, b.Gate(circuit.Nand, "t0_"+suffix, m, n0))
		b.Output("y1_"+suffix, b.Gate(circuit.Nand, "t1_"+suffix, m, n1))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// On disjoint cones, a k-cone edit's delta run must actually skip the
// untouched cones: the acceptance criterion "re-enumerates only the
// changed cones", verified by the reuse and work counters.
func TestECODisjointConesDelta(t *testing.T) {
	base := threeBlocks(t)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}

	// Edit exactly one block (both of its cones share the edited gate in
	// the worst case, so at most 2 of 6 cones go fresh).
	revised, edits, err := MutateKCones(base, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(edits) != 1 {
		t.Fatalf("wanted 1 edit, got %d", len(edits))
	}
	cold := reference(t, revised, opt)

	s := openStore(t)
	if _, err := IdentifyThrough(s, base, opt); err != nil {
		t.Fatal(err)
	}
	warm, err := IdentifyThrough(s, revised, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounters(t, cold, warm)
	if warm.Outcome != "delta" {
		t.Fatalf("outcome %q, want delta", warm.Outcome)
	}
	if warm.ReusedCones < 4 {
		t.Fatalf("reused %d/6 cones, want >= 4 (untouched blocks must be served from the store)", warm.ReusedCones)
	}
	if warm.FreshCones > 2 {
		t.Fatalf("re-enumerated %d cones for a single-block edit", warm.FreshCones)
	}
	if warm.EnumeratedSegments >= cold.Segments {
		t.Fatalf("delta run did %d segments, cold run %d — no work was saved",
			warm.EnumeratedSegments, cold.Segments)
	}
	if warm.EnumeratedSegments == 0 {
		t.Fatal("a functional edit cannot be a pure hit")
	}
}

// A relabeled resubmission is the same circuit: pure hit, zero
// enumeration, counters verbatim.
func TestECORelabeledResubmissionHit(t *testing.T) {
	base := gen.ALU(8, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	s := openStore(t)
	cold, err := IdentifyThrough(s, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	relabeled, _, err := synth.Relabel(base, 99)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := IdentifyThrough(s, relabeled, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != "hit" || warm.EnumeratedSegments != 0 || warm.FreshCones != 0 {
		t.Fatalf("relabeled resubmission: outcome=%q fresh=%d segments=%d, want pure hit",
			warm.Outcome, warm.FreshCones, warm.EnumeratedSegments)
	}
	assertSameCounters(t, cold, warm)
}

// Buffer insertion preserves function but not shape: the run entry
// locates the ancestor (delta, not miss), the path-count triple is
// unchanged, and the result matches a cold run of the buffered circuit
// exactly — Segments included.
func TestECOBufferInsertionDelta(t *testing.T) {
	base := gen.ALU(8, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	s := openStore(t)
	baseRes, err := IdentifyThrough(s, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	buffed, inserted, err := synth.InsertBuffers(base, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inserted) == 0 {
		t.Skip("no buffers inserted at this seed")
	}
	cold := reference(t, buffed, opt)
	warm, err := IdentifyThrough(s, buffed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != "delta" {
		t.Fatalf("outcome %q, want delta (FuncHash locates the ancestor)", warm.Outcome)
	}
	assertSameCounters(t, cold, warm)
	// Buffers never add, remove or desensitize a logical path.
	if warm.Total.Cmp(baseRes.Total) != 0 || warm.Selected != baseRes.Selected ||
		warm.RD.Cmp(baseRes.RD) != 0 {
		t.Fatal("buffer insertion moved the path-count triple")
	}
}

// The fleet/serve acceptance gate (make eco-smoke): across the suite,
// a repeat submission must be a pure store hit with counters equal to
// the cold run and zero enumeration work.
func TestECOSmoke(t *testing.T) {
	circuits := []*circuit.Circuit{
		gen.PaperExample(),
	}
	for _, n := range gen.ISCAS85Suite() {
		if n.Paper == "c432" || n.Paper == "c880" {
			circuits = append(circuits, n.C)
		}
	}
	for _, h := range []core.Heuristic{core.HeuristicFUS, core.Heuristic1} {
		for _, c := range circuits {
			opt := Options{Heuristic: h, Workers: 2}
			s := openStore(t)
			cold, err := IdentifyThrough(s, c, opt)
			if err != nil {
				t.Fatalf("%s/%v: %v", c.Name(), h, err)
			}
			warm, err := IdentifyThrough(s, c, opt)
			if err != nil {
				t.Fatalf("%s/%v: %v", c.Name(), h, err)
			}
			if warm.Outcome != "hit" || warm.EnumeratedSegments != 0 {
				t.Fatalf("%s/%v: repeat submission outcome=%q segments=%d, want pure hit",
					c.Name(), h, warm.Outcome, warm.EnumeratedSegments)
			}
			assertSameCounters(t, cold, warm)
		}
	}
}

// FuzzECODelta drives the equivalence suite with fuzzed edit seeds and
// counts: warm incremental counters must equal a cold full run for any
// mutation the generator can produce.
func FuzzECODelta(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(-7), uint8(4))
	base := gen.RippleAdder(4, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	f.Fuzz(func(t *testing.T, seed int64, k uint8) {
		revised, _, err := MutateKCones(base, int(k%8), seed)
		if err != nil {
			t.Skip()
		}
		cold := reference(t, revised, opt)
		s := openStore(t)
		if _, err := IdentifyThrough(s, base, opt); err != nil {
			t.Fatal(err)
		}
		warm, err := IdentifyThrough(s, revised, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCounters(t, cold, warm)
	})
}
