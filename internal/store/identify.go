package store

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
)

// Options tunes IdentifyThrough.
type Options struct {
	// Heuristic picks the input sort (default Heuristic2, like the rest
	// of the pipeline). Heuristic1/PinOrder sorts are linear-time, which
	// makes them the natural ECO default: on a warm path the sort is the
	// only whole-circuit work left. Heuristic2's sort itself costs two
	// enumeration passes, so its warm savings cover only the final pass.
	Heuristic core.Heuristic
	// Workers is the per-cone enumeration parallelism (0 or 1 = serial).
	// Counters are worker-count-independent, so results written at one
	// width are valid hits at any other.
	Workers int
	// Context cancels the run between and inside cone enumerations.
	Context context.Context
}

// ConeOutcome is one cone's provenance in an incremental run.
type ConeOutcome struct {
	Name     string `json:"name"`
	Key      string `json:"key"`
	Reused   bool   `json:"reused"`
	Selected int64  `json:"selected"`
	Segments int64  `json:"segments"`
}

// Result is one identification served through the store. Counter
// semantics match the fleet's cone-granular runs: Total/Selected/RD are
// bit-identical to a whole-circuit single-process run, Segments is the
// cone-sharded work sum (shared DFS prefixes walked once per cone —
// deterministic, but above the whole-circuit count).
type Result struct {
	Circuit   string   `json:"circuit"`
	Heuristic string   `json:"heuristic"`
	Criterion string   `json:"criterion"`
	Total     *big.Int `json:"-"`
	Selected  int64    `json:"selected"`
	RD        *big.Int `json:"-"`
	Segments  int64    `json:"segments"`
	Pruned    int64    `json:"pruned"`
	TotalStr  string   `json:"total_paths"`
	RDStr     string   `json:"rd"`

	// Outcome is "hit" (served without any enumeration), "delta" (some
	// cones reused, the rest re-identified) or "miss" (nothing reusable).
	Outcome string `json:"outcome"`
	// RunKey is the whole-circuit store key this run was served from or
	// written to.
	RunKey      string `json:"run_key"`
	Cones       int    `json:"cones"`
	ReusedCones int    `json:"reused_cones"`
	FreshCones  int    `json:"fresh_cones"`
	// EnumeratedSegments counts the DFS edge extensions this call
	// actually performed — 0 for a pure hit, the fresh cones' share for
	// a delta. (Result.Segments, by contrast, always reports the full
	// merged tally, reused cones included.)
	EnumeratedSegments int64 `json:"enumerated_segments"`
	// CorruptEntries counts store entries that failed validation and
	// were recomputed around (each also emits a store.corrupt event).
	CorruptEntries int           `json:"corrupt_entries,omitempty"`
	PerCone        []ConeOutcome `json:"per_cone,omitempty"`
	Duration       time.Duration `json:"-"`
}

// RDPercent is 100*RD/Total (0 on empty circuits).
func (r *Result) RDPercent() float64 {
	if r.RD == nil || r.Total == nil || r.Total.Sign() == 0 {
		return 0
	}
	q, _ := new(big.Float).Quo(new(big.Float).SetInt(r.RD), new(big.Float).SetInt(r.Total)).Float64()
	return 100 * q
}

// storeSort mirrors the fleet's globalSort: the one whole-circuit sort
// every cone's projection derives from.
func storeSort(c *circuit.Circuit, h core.Heuristic, workers int) (*circuit.InputSort, error) {
	switch h {
	case core.HeuristicFUS:
		return nil, nil
	case core.Heuristic1:
		s := core.Heuristic1Sort(c)
		return &s, nil
	case core.Heuristic2, core.Heuristic2Inverse:
		s, _, _, err := core.Heuristic2SortWorkers(c, workers)
		if err != nil {
			return nil, err
		}
		if h == core.Heuristic2Inverse {
			s = s.Inverse()
		}
		return &s, nil
	case core.HeuristicPinOrder:
		s := circuit.PinOrderSort(c)
		return &s, nil
	}
	return nil, fmt.Errorf("store: heuristic %v has no input sort", h)
}

// IdentifyThrough runs RD identification on c through the store s:
//
//  1. A run entry under c's content address whose shape matches is a
//     pure hit — the stored counters are served with no sort
//     computation and no enumeration at all (isomorphism implies the
//     deterministic sort transports, so shape equality is sufficient).
//  2. Otherwise the global sort is computed, projected per cone, and
//     each cone is either served from its cone entry (same shape, same
//     projected sort, same criterion — typically populated by the
//     ancestor revision's run) or re-identified and written back. This
//     is the incremental ECO path: a k-of-n-cone edit re-enumerates
//     only the changed cones, and the merged counters are bit-identical
//     to a cold run of the same cone-granular pipeline.
//
// Corrupt entries (checksum, version or identity failures) are typed
// *CorruptError at the store layer; here they degrade to recomputation
// — a corrupt store can cost time, never correctness. Every run emits
// one store.hit, store.delta or store.miss event with the reuse
// accounting in its fields.
func IdentifyThrough(s *Store, c *circuit.Circuit, opt Options) (*Result, error) {
	if s == nil {
		return nil, errors.New("store: nil store")
	}
	start := time.Now()
	h := opt.Heuristic
	cr := core.SigmaPi
	if h == core.HeuristicFUS {
		cr = core.FS
	}
	ctx := opt.Context

	funcHash, shapeHash, err := HashFor(c)
	if err != nil {
		return nil, err
	}
	runKey := RunKey(funcHash, h, cr)

	res := &Result{
		Circuit:   c.Name(),
		Heuristic: h.String(),
		Criterion: cr.String(),
		RunKey:    runKey,
	}

	ancestor, err := s.GetRun(runKey)
	switch {
	case err == nil && ancestor.ShapeHash == shapeHash:
		// Pure hit: same function, same shape, same pipeline. The sort a
		// heuristic would compute is a deterministic function of the
		// structure, so it is the same sort — nothing to recompute.
		total, rd, perr := parseCounters(ancestor.TotalPaths, ancestor.RD)
		if perr != nil {
			// An entry that validated but doesn't parse is corrupt all the
			// same; recompute below.
			s.corrupt.Add(1)
			s.emit("store.corrupt", fmt.Sprintf("run %s: %v", runKey, perr), nil)
			res.CorruptEntries++
			ancestor = nil
		} else {
			res.Outcome = "hit"
			res.Total, res.RD = total, rd
			res.Selected, res.Segments, res.Pruned = ancestor.Selected, ancestor.Segments, ancestor.Pruned
			res.Cones, res.ReusedCones = ancestor.Cones, ancestor.Cones
			res.TotalStr, res.RDStr = res.Total.String(), res.RD.String()
			res.Duration = time.Since(start)
			s.emit("store.hit", c.Name(), map[string]int64{
				"cones": int64(res.Cones), "reused": int64(res.ReusedCones),
			})
			return res, nil
		}
	case err == nil:
		// Same function, different shape (e.g. buffers were inserted):
		// the run entry locates the ancestor but its counters cannot be
		// served verbatim. The cone pass below reuses what still matches.
	case errors.Is(err, ErrMiss):
		ancestor = nil
	default:
		// Corrupt or unreadable run entry: recompute, never guess.
		res.CorruptEntries++
		ancestor = nil
	}

	sort, err := storeSort(c, h, opt.Workers)
	if err != nil {
		return nil, err
	}

	res.Total, res.RD = new(big.Int), new(big.Int)
	var coneKeys []string
	for _, po := range c.Outputs() {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("%w: store identification interrupted", classifyCtx(cerr))
			}
		}
		cone, mapping, cerr := c.Cone(po)
		if cerr != nil {
			return nil, cerr
		}
		var proj *circuit.InputSort
		if sort != nil {
			p := sort.Cone(mapping)
			proj = &p
		}
		key := ConeKey(cone, proj, cr)
		coneKeys = append(coneKeys, key)
		out := ConeOutcome{Name: cone.Name(), Key: key}

		rec, gerr := s.GetCone(key)
		if gerr == nil {
			total, rd, perr := parseCounters(rec.TotalPaths, rec.RD)
			if perr == nil {
				res.Total.Add(res.Total, total)
				res.RD.Add(res.RD, rd)
				res.Selected += rec.Selected
				res.Segments += rec.Segments
				res.Pruned += rec.Pruned
				res.ReusedCones++
				out.Reused, out.Selected, out.Segments = true, rec.Selected, rec.Segments
				res.PerCone = append(res.PerCone, out)
				continue
			}
			s.corrupt.Add(1)
			s.emit("store.corrupt", fmt.Sprintf("cone %s: %v", key, perr), nil)
			res.CorruptEntries++
		} else if !errors.Is(gerr, ErrMiss) {
			res.CorruptEntries++
		}

		er, eerr := core.Enumerate(cone, cr, core.Options{
			Sort:    proj,
			Workers: opt.Workers,
			Context: ctx,
		})
		if eerr != nil {
			return nil, eerr
		}
		if er.Status != core.StatusComplete {
			cause := er.Err
			if cause == nil {
				cause = fmt.Errorf("core: enumeration ended %v", er.Status)
			}
			return nil, fmt.Errorf("store: cone %s incomplete: %w", cone.Name(), cause)
		}
		res.Total.Add(res.Total, er.Total)
		res.RD.Add(res.RD, er.RD)
		res.Selected += er.Selected
		res.Segments += er.Segments
		res.Pruned += er.Pruned
		res.FreshCones++
		res.EnumeratedSegments += er.Segments
		out.Selected, out.Segments = er.Selected, er.Segments
		res.PerCone = append(res.PerCone, out)
		// Best-effort persistence: a lost write costs the next run time,
		// not correctness.
		if perr := s.PutCone(key, &ConeRecord{
			Cone:       cone.Name(),
			TotalPaths: er.Total.String(),
			Selected:   er.Selected,
			RD:         er.RD.String(),
			Segments:   er.Segments,
			Pruned:     er.Pruned,
		}); perr != nil {
			s.emit("store.write-error", perr.Error(), nil)
		}
	}

	res.Cones = len(coneKeys)
	res.TotalStr, res.RDStr = res.Total.String(), res.RD.String()
	switch {
	case res.FreshCones == 0:
		// Every cone came from the store even though the run entry didn't
		// match (or didn't exist): still zero enumeration work.
		res.Outcome = "hit"
	case res.ReusedCones > 0 || ancestor != nil:
		res.Outcome = "delta"
	default:
		res.Outcome = "miss"
	}

	if perr := s.PutRun(runKey, &RunRecord{
		Circuit:        c.Name(),
		Heuristic:      h.String(),
		Criterion:      cr.String(),
		FuncHash:       funcHash,
		ShapeHash:      shapeHash,
		CircuitVersion: c.Version(),
		TotalPaths:     res.TotalStr,
		Selected:       res.Selected,
		RD:             res.RDStr,
		Segments:       res.Segments,
		Pruned:         res.Pruned,
		Cones:          res.Cones,
		ConeKeys:       coneKeys,
	}); perr != nil {
		s.emit("store.write-error", perr.Error(), nil)
	}

	res.Duration = time.Since(start)
	s.emit("store."+res.Outcome, c.Name(), map[string]int64{
		"cones":               int64(res.Cones),
		"reused":              int64(res.ReusedCones),
		"fresh":               int64(res.FreshCones),
		"enumerated_segments": res.EnumeratedSegments,
		"corrupt":             int64(res.CorruptEntries),
	})
	return res, nil
}

// parseCounters decodes the big-int counter pair of a stored record.
func parseCounters(total, rd string) (*big.Int, *big.Int, error) {
	t, ok := new(big.Int).SetString(total, 10)
	if !ok {
		return nil, nil, fmt.Errorf("bad total %q", total)
	}
	r, ok := new(big.Int).SetString(rd, 10)
	if !ok {
		return nil, nil, fmt.Errorf("bad rd %q", rd)
	}
	return t, r, nil
}

// classifyCtx maps a context error onto core's typed interruptions.
func classifyCtx(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return core.ErrDeadline
	}
	return core.ErrCanceled
}
