// Package store is the content-addressed result store and the
// incremental (ECO) re-identification path built on top of it.
//
// Results are keyed by a canonical netlist hash, so byte-different but
// isomorphic submissions — renamed gates, reshuffled declaration order,
// buffer-padded leads — are cache hits across jobs, replicas and
// process restarts. Two hash flavors split the work:
//
//   - FuncHash collapses buffer chains before canonicalizing, so it is
//     invariant under both synth.Relabel and synth.InsertBuffers. It is
//     the content address: it locates a circuit's store entry.
//   - ShapeHash keeps buffers, so it is relabel-invariant but
//     buffer-sensitive. Reusing stored counters requires a shape match,
//     because buffer insertion changes the Segments tally (every spliced
//     buffer adds one DFS edge extension per path through its lead) even
//     though Selected/RD are provably unchanged.
//
// On top of the whole-circuit address sits cone-granular reuse: each
// output cone's result is stored under ConeKey — the cone's ShapeHash
// plus a canonical digest of the projected input sort plus the
// criterion. A revised circuit's unchanged cones therefore hit the
// store (populated by the ancestor run) and only the delta is
// re-identified; the diff against the ancestor is implicit in the
// content addressing, no explicit ancestry bookkeeping needed. The sort
// digest is part of the key because cones share logic: an edit inside
// cone i can change the global Heuristic-1/2 lead counts of a shared
// gate and thereby the projected sort of an untouched cone j, and a
// cone enumerated under a different σ is a different result.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
)

// canon is the canonical form of one circuit: a deterministic renaming
// of its gates that depends only on structure the rewrites preserve.
// Numbers are assigned by a post-order DFS from the primary outputs in
// declaration order, visiting fanins in pin order — PI/PO declaration
// order and fanin pin order are exactly what synth.Relabel keeps, so
// isomorphic circuits get identical canonical forms. Sharing is
// preserved exactly (a gate is numbered once, at first visit), which a
// naive bottom-up tree hash would conflate: two POs reading one shared
// gate and two POs reading duplicated copies have different fanout
// stems and different Selected counts, and must hash differently.
type canon struct {
	// num[g] is gate g's canonical number, -1 for gates outside the form
	// (collapsed buffers).
	num []int
	// order[i] is the gate with canonical number i.
	order []circuit.GateID
	// bytes is the serialized canonical netlist.
	bytes []byte
}

// canonicalize computes c's canonical form. With collapse set, buffer
// chains are resolved through to their first non-buffer ancestor and
// the buffers themselves are dropped from the form (the FuncHash view);
// without it buffers are ordinary single-input gates (the ShapeHash
// view).
func canonicalize(c *circuit.Circuit, collapse bool) *canon {
	n := c.NumGates()
	cn := &canon{num: make([]int, n)}
	for i := range cn.num {
		cn.num[i] = -1
	}

	resolve := func(g circuit.GateID) circuit.GateID { return g }
	if collapse {
		memo := make([]circuit.GateID, n)
		for i := range memo {
			memo[i] = circuit.None
		}
		resolve = func(g circuit.GateID) circuit.GateID {
			seen := g
			for memo[seen] == circuit.None && c.Type(seen) == circuit.Buf {
				seen = c.Fanin(seen)[0]
			}
			if memo[seen] != circuit.None {
				seen = memo[seen]
			}
			// Path-compress the chain we just walked.
			for v := g; v != seen; v = c.Fanin(v)[0] {
				if memo[v] != circuit.None {
					break
				}
				memo[v] = seen
			}
			memo[seen] = seen
			return seen
		}
	}

	type frame struct {
		g   circuit.GateID
		pin int
	}
	var stack []frame
	visit := func(root circuit.GateID) {
		root = resolve(root)
		if cn.num[root] >= 0 {
			return
		}
		stack = append(stack[:0], frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			fanin := c.Fanin(f.g)
			pushed := false
			for f.pin < len(fanin) {
				src := resolve(fanin[f.pin])
				f.pin++
				if cn.num[src] < 0 {
					stack = append(stack, frame{src, 0})
					pushed = true
					break
				}
			}
			if pushed {
				continue
			}
			if cn.num[f.g] < 0 {
				cn.num[f.g] = len(cn.order)
				cn.order = append(cn.order, f.g)
			}
			stack = stack[:len(stack)-1]
		}
	}
	// Output gates are pure markers; the walk starts at their sources so
	// the form is independent of output-wrapper naming.
	for _, po := range c.Outputs() {
		visit(c.Fanin(po)[0])
	}
	// Inputs unreachable from any output still exist (they change the
	// PI count); append them in declaration order.
	for _, pi := range c.Inputs() {
		if cn.num[pi] < 0 {
			cn.num[pi] = len(cn.order)
			cn.order = append(cn.order, pi)
		}
	}

	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putInt := func(v int) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(v))]...)
	}
	for _, g := range cn.order {
		buf = append(buf, byte(c.Type(g)))
		fanin := c.Fanin(g)
		putInt(len(fanin))
		for _, f := range fanin {
			putInt(cn.num[resolve(f)])
		}
	}
	buf = append(buf, '|')
	putInt(len(c.Outputs()))
	for _, po := range c.Outputs() {
		putInt(cn.num[resolve(c.Fanin(po)[0])])
	}
	cn.bytes = buf
	return cn
}

// FuncHash is the buffer-collapsed canonical hash: the content address
// under which a circuit's run entry is stored. Invariant under
// synth.Relabel and synth.InsertBuffers.
func FuncHash(c *circuit.Circuit) string {
	sum := sha256.Sum256(canonicalize(c, true).bytes)
	return hex.EncodeToString(sum[:])
}

// ShapeHash is the buffer-sensitive canonical hash: invariant under
// synth.Relabel only. A stored run's counters (Segments included) may
// be served verbatim only to a submission with the same shape.
func ShapeHash(c *circuit.Circuit) string {
	sum := sha256.Sum256(canonicalize(c, false).bytes)
	return hex.EncodeToString(sum[:])
}

// HashFor returns c's FuncHash and ShapeHash, computed at most once per
// circuit version through the analysis registry (the same compute-once
// discipline every other derived analysis uses).
func HashFor(c *circuit.Circuit) (funcHash, shapeHash string, err error) {
	v, err := analysis.For(c).Memo("store.canonhash", func() (any, error) {
		return [2]string{FuncHash(c), ShapeHash(c)}, nil
	})
	if err != nil {
		return "", "", err
	}
	h := v.([2]string)
	return h[0], h[1], nil
}

// RunKey addresses a whole-circuit result: the content address plus the
// pipeline parameters that shape the counters.
func RunKey(funcHash string, h core.Heuristic, cr core.Criterion) string {
	sum := sha256.Sum256([]byte(funcHash + "|" + h.String() + "|" + cr.String()))
	return hex.EncodeToString(sum[:])
}

// ConeKey addresses one output cone's result: the cone's shape, the
// projected input sort rendered in canonical gate order (gate names
// don't survive relabeling; canonical numbers do — and pin order, which
// indexes each row, is preserved by the rewrites), and the criterion.
// Identical cones under identical projected sorts collide on purpose:
// duplicated logic inside one circuit is stored and enumerated once.
func ConeKey(cone *circuit.Circuit, sort *circuit.InputSort, cr core.Criterion) string {
	cn := canonicalize(cone, false)
	h := sha256.New()
	h.Write(cn.bytes)
	fmt.Fprintf(h, "|crit:%s", cr.String())
	if sort != nil {
		for i, g := range cn.order {
			row := sort.Pos[g]
			if len(row) >= 2 {
				fmt.Fprintf(h, "|s%d:%v", i, row)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
