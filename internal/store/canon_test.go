package store

import (
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/synth"
)

// suiteCircuits materializes every ISCAS analogue plus the synthesized
// MCNC covers — the corpus of the hash property tests.
func suiteCircuits(t *testing.T) []*circuit.Circuit {
	t.Helper()
	var cs []*circuit.Circuit
	for _, n := range gen.ISCAS85Suite() {
		cs = append(cs, n.C)
	}
	for _, nc := range gen.MCNCSuite() {
		c, err := synth.Synthesize(nc.Cover, synth.Options{})
		if err != nil {
			t.Fatalf("synthesize %s: %v", nc.Paper, err)
		}
		cs = append(cs, c)
	}
	return cs
}

// The canonical hashes must not move under gate relabeling: renamed
// gates and a reshuffled (still topological) declaration order are the
// same circuit.
func TestCanonicalHashRelabelInvariant(t *testing.T) {
	for _, c := range suiteCircuits(t) {
		f, sh := FuncHash(c), ShapeHash(c)
		for seed := int64(1); seed <= 3; seed++ {
			r, _, err := synth.Relabel(c, seed)
			if err != nil {
				t.Fatalf("%s: relabel: %v", c.Name(), err)
			}
			if got := FuncHash(r); got != f {
				t.Errorf("%s seed %d: FuncHash moved under relabel", c.Name(), seed)
			}
			if got := ShapeHash(r); got != sh {
				t.Errorf("%s seed %d: ShapeHash moved under relabel", c.Name(), seed)
			}
		}
	}
}

// FuncHash must collapse buffer chains (the content address of a
// buffer-padded revision is its ancestor's); ShapeHash must not (its
// Segments counters are not the ancestor's).
func TestCanonicalHashBufferInvariant(t *testing.T) {
	for _, c := range suiteCircuits(t) {
		f, sh := FuncHash(c), ShapeHash(c)
		for seed := int64(1); seed <= 3; seed++ {
			b, _, err := synth.InsertBuffers(c, seed, 0.4)
			if err != nil {
				t.Fatalf("%s: insert buffers: %v", c.Name(), err)
			}
			if got := FuncHash(b); got != f {
				t.Errorf("%s seed %d: FuncHash moved under buffer insertion", c.Name(), seed)
			}
			if b.NumGates() > c.NumGates() && ShapeHash(b) == sh {
				t.Errorf("%s seed %d: ShapeHash blind to %d inserted buffers",
					c.Name(), seed, b.NumGates()-c.NumGates())
			}
		}
	}
}

// No two functionally-distinct suite circuits may share a content
// address.
func TestCanonicalHashCollisionFree(t *testing.T) {
	seen := make(map[string]string)
	for _, c := range suiteCircuits(t) {
		f := FuncHash(c)
		if prev, ok := seen[f]; ok {
			t.Fatalf("FuncHash collision: %s and %s", prev, c.Name())
		}
		seen[f] = c.Name()
	}
}

// Cone keys must transport under relabeling: the projected global sort,
// rendered in canonical gate order, is the same key on both sides —
// this is what makes a relabeled resubmission's cones warm hits.
func TestConeKeyTransportsUnderRelabel(t *testing.T) {
	for _, h := range []core.Heuristic{core.Heuristic1, core.HeuristicPinOrder} {
		c := gen.ALU(8, gen.XorNAND)
		r, _, err := synth.Relabel(c, 11)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := storeSort(c, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := storeSort(r, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		keys := func(c *circuit.Circuit, s *circuit.InputSort) []string {
			var out []string
			for _, po := range c.Outputs() {
				cone, mapping, err := c.Cone(po)
				if err != nil {
					t.Fatal(err)
				}
				var proj *circuit.InputSort
				if s != nil {
					p := s.Cone(mapping)
					proj = &p
				}
				out = append(out, ConeKey(cone, proj, core.SigmaPi))
			}
			return out
		}
		kc, kr := keys(c, sc), keys(r, sr)
		for i := range kc {
			// Relabel preserves output declaration order, so cone i
			// corresponds to cone i.
			if kc[i] != kr[i] {
				t.Fatalf("%v: cone %d key moved under relabel", h, i)
			}
		}
	}
}

// Two hash calls per circuit version through the registry must share
// one computation and one value.
func TestHashForMemoized(t *testing.T) {
	c := gen.PaperExample()
	f1, s1, err := HashFor(c)
	if err != nil {
		t.Fatal(err)
	}
	f2, s2, err := HashFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 || s1 != s2 {
		t.Fatal("HashFor not stable across calls")
	}
	if f1 != FuncHash(c) || s1 != ShapeHash(c) {
		t.Fatal("HashFor disagrees with direct hashing")
	}
}
