package store

import (
	"fmt"
	"math/rand"

	"rdfault/internal/circuit"
)

// EditKind is one local ECO edit class — the three edit families of the
// equivalence suite.
type EditKind uint8

const (
	// EditGateSwap flips a gate's type to its dual (AND<->OR,
	// NAND<->NOR): a functional change confined to one gate.
	EditGateSwap EditKind = iota
	// EditBufferInsert splices a fanout-free buffer into one fanin lead:
	// function preserved, shape (and Segments) changed.
	EditBufferInsert
	// EditPinSwap rewires a gate by exchanging two of its fanin pins:
	// the connection order changes, which moves every sort decision at
	// that gate.
	EditPinSwap
)

// String names the edit kind.
func (k EditKind) String() string {
	switch k {
	case EditGateSwap:
		return "gate-swap"
	case EditBufferInsert:
		return "buffer-insert"
	case EditPinSwap:
		return "pin-swap"
	}
	return fmt.Sprintf("EditKind(%d)", uint8(k))
}

// Edit is one applied edit, described against the original circuit's
// gate IDs.
type Edit struct {
	Kind EditKind
	// Gate is the edited gate (original ID).
	Gate circuit.GateID
	// Pin and Pin2 locate the edited leads: the buffered pin for
	// EditBufferInsert, the exchanged pair for EditPinSwap.
	Pin, Pin2 int
	// ConeIdx is the output index whose cone the edit was drawn from
	// (the gate may be shared with other cones).
	ConeIdx int
}

// MutateKCones returns a copy of c with one seeded edit applied inside
// each of k distinct output cones — the ECO workload generator of the
// equivalence suite. Edits are described against original gate IDs; the
// returned circuit is rebuilt with the same gate names (new buffers
// aside), so it is a realistic revision, not a relabeling.
func MutateKCones(c *circuit.Circuit, k int, seed int64) (*circuit.Circuit, []Edit, error) {
	outputs := c.Outputs()
	if len(outputs) == 0 {
		return nil, nil, fmt.Errorf("store: circuit %s has no outputs to edit", c.Name())
	}
	if k <= 0 {
		k = 1
	}
	if k > len(outputs) {
		k = len(outputs)
	}
	rng := rand.New(rand.NewSource(seed))
	var edits []Edit
	for _, ci := range rng.Perm(len(outputs))[:k] {
		e, ok := pickEdit(c, outputs[ci], ci, rng)
		if !ok {
			// Degenerate cone (an output wired straight to an input has no
			// editable gate); skip it rather than fail the workload.
			continue
		}
		edits = append(edits, e)
	}
	if len(edits) == 0 {
		return nil, nil, fmt.Errorf("store: no editable cone in %s", c.Name())
	}
	out, err := applyEdits(c, edits)
	if err != nil {
		return nil, nil, err
	}
	return out, edits, nil
}

// pickEdit draws one edit inside po's cone: an internal gate of the
// cone plus an edit kind it supports.
func pickEdit(c *circuit.Circuit, po circuit.GateID, coneIdx int, rng *rand.Rand) (Edit, bool) {
	// Cone membership: the transitive fanin of po.
	in := make([]bool, c.NumGates())
	stack := []circuit.GateID{po}
	in[po] = true
	var cands []circuit.GateID
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch c.Type(g) {
		case circuit.Input, circuit.Output:
		default:
			cands = append(cands, g)
		}
		for _, f := range c.Fanin(g) {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	if len(cands) == 0 {
		return Edit{}, false
	}
	g := cands[rng.Intn(len(cands))]
	fanin := c.Fanin(g)
	kind := EditKind(rng.Intn(3))
	// Fall back to the always-applicable buffer insertion when the drawn
	// kind doesn't fit the drawn gate.
	switch kind {
	case EditGateSwap:
		if dualType(c.Type(g)) == c.Type(g) {
			kind = EditBufferInsert
		}
	case EditPinSwap:
		if len(fanin) < 2 {
			kind = EditBufferInsert
		}
	}
	e := Edit{Kind: kind, Gate: g, ConeIdx: coneIdx}
	switch kind {
	case EditBufferInsert:
		e.Pin = rng.Intn(len(fanin))
	case EditPinSwap:
		perm := rng.Perm(len(fanin))
		e.Pin, e.Pin2 = perm[0], perm[1]
	}
	return e, true
}

// dualType maps a gate type to its swap partner (identity when the type
// has none).
func dualType(t circuit.GateType) circuit.GateType {
	switch t {
	case circuit.And:
		return circuit.Or
	case circuit.Or:
		return circuit.And
	case circuit.Nand:
		return circuit.Nor
	case circuit.Nor:
		return circuit.Nand
	}
	return t
}

// applyEdits rebuilds c with the edits applied. Declaration order is
// creation order, which the builder has verified topological, so a
// single increasing scan sees every fanin before its consumer (the same
// idiom as synth.InsertBuffers).
func applyEdits(c *circuit.Circuit, edits []Edit) (*circuit.Circuit, error) {
	byGate := make(map[circuit.GateID][]Edit, len(edits))
	for _, e := range edits {
		byGate[e.Gate] = append(byGate[e.Gate], e)
	}
	b := circuit.NewBuilder(c.Name() + "_eco")
	gmap := make([]circuit.GateID, c.NumGates())
	bufs := 0
	for g := circuit.GateID(0); int(g) < c.NumGates(); g++ {
		gate := c.Gate(g)
		switch gate.Type {
		case circuit.Input:
			gmap[g] = b.Input(gate.Name)
		case circuit.Output:
			gmap[g] = b.Output(gate.Name, gmap[gate.Fanin[0]])
		default:
			fanin := make([]circuit.GateID, len(gate.Fanin))
			for pin, f := range gate.Fanin {
				fanin[pin] = gmap[f]
			}
			typ := gate.Type
			for _, e := range byGate[g] {
				switch e.Kind {
				case EditGateSwap:
					typ = dualType(typ)
				case EditBufferInsert:
					fanin[e.Pin] = b.Gate(circuit.Buf, fmt.Sprintf("eco_b%d", bufs), fanin[e.Pin])
					bufs++
				case EditPinSwap:
					fanin[e.Pin], fanin[e.Pin2] = fanin[e.Pin2], fanin[e.Pin]
				}
			}
			gmap[g] = b.Gate(typ, gate.Name, fanin...)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("store: apply edits: %v", err)
	}
	return out, nil
}
