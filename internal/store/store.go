package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"

	"sort"
	"sync"
	"time"

	"rdfault/internal/faultinject"
	"rdfault/internal/telemetry"
)

// FormatVersion stamps every persisted entry. A reader that finds a
// different stamp treats the entry as corrupt (typed, falls back to
// recomputation) rather than guessing at an old layout.
const FormatVersion = "rdstore/v1"

// Typed store errors; match with errors.Is.
var (
	// ErrMiss: no entry under that key.
	ErrMiss = errors.New("store: entry not found")
	// ErrCorruptEntry: an entry exists but fails validation (checksum,
	// format version, key echo). The concrete *CorruptError names the
	// file and the reason. Callers must treat this exactly like a miss —
	// recompute — never serve the payload.
	ErrCorruptEntry = errors.New("store: corrupt entry")
)

// CorruptError reports one unusable on-disk entry.
type CorruptError struct {
	Path   string
	Reason string
}

// Error names the file and what failed to validate.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt entry %s: %s", e.Path, e.Reason)
}

// Unwrap matches errors.Is(err, ErrCorruptEntry).
func (e *CorruptError) Unwrap() error { return ErrCorruptEntry }

// Stats counts a handle's traffic since Open.
type Stats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	Writes  int64 `json:"writes"`
	// Evictions counts entries removed by the size cap (SetMaxBytes).
	Evictions int64 `json:"evictions,omitempty"`
}

// Store is a disk-backed, content-addressed result store. Entries are
// individually checksummed and version-stamped JSON files fanned out
// under the store directory; writes are atomic (temp file + rename), so
// a crashed writer leaves either the old entry or the new one, never a
// torn read. A Store handle is cheap and carries no state beyond
// counters — everything durable lives in the directory, which is what
// lets results survive process restarts and be shared between replicas
// on common storage.
type Store struct {
	dir   string
	telem atomic.Pointer[telemetry.Log]

	hits, misses, corrupt, writes atomic.Int64

	// maxBytes caps the store's resident entry bytes (0 = unbounded);
	// exceeding it after a write evicts least-recently-used entries.
	maxBytes  atomic.Int64
	evictions atomic.Int64
	evictMu   sync.Mutex
}

// Open returns a handle on dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetTelemetry routes the store's events (store.hit/miss/delta/corrupt)
// into l; sharing the serving layer's log interleaves store activity
// into the same totally-ordered stream.
func (s *Store) SetTelemetry(l *telemetry.Log) { s.telem.Store(l) }

// emit writes one store event (safe no-op without a log).
func (s *Store) emit(kind, detail string, fields map[string]int64) {
	s.telem.Load().Emit(telemetry.Event{
		Source: "store", Kind: kind, Detail: detail, Fields: fields,
	})
}

// Stats snapshots this handle's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
	}
}

// SetMaxBytes caps the store's resident entry bytes; 0 removes the cap.
// When a write pushes the store over the cap, least-recently-used
// entries (by access time — get refreshes it) are evicted until the
// store fits. Eviction is always safe: a later lookup of an evicted key
// is a miss, and every caller already treats a miss as "recompute".
func (s *Store) SetMaxBytes(n int64) { s.maxBytes.Store(n) }

// entry is the on-disk envelope: version stamp, kind and key echo (a
// rename gone wrong or a filesystem-level swap is detected, not
// trusted), the payload, and its checksum.
type entry struct {
	Version string          `json:"version"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
	Sum     string          `json:"sum"`
}

func payloadSum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// path shards entries by key prefix so one directory never holds the
// whole store.
func (s *Store) path(kind, key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, kind, shard, key+".json")
}

// put persists one entry. Fault-injection points: store.write (lost
// writes) and store.corrupt (bit rot on the way to disk — a later read
// fails its checksum and the caller recomputes).
func (s *Store) put(kind, key string, payload any) error {
	if err := faultinject.Fire(faultinject.PointStoreWrite); err != nil {
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	pb, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	b, err := json.Marshal(entry{
		Version: FormatVersion, Kind: kind, Key: key,
		Payload: pb, Sum: payloadSum(pb),
	})
	if err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	b = faultinject.Corrupt(faultinject.PointStoreCorrupt, b)
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".*")
	if err != nil {
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	s.writes.Add(1)
	s.maybeEvict()
	return nil
}

// maybeEvict enforces the size cap after a write: if the store's
// resident entry bytes exceed SetMaxBytes, the least-recently-accessed
// entries are removed until it fits. One evictor runs at a time; a
// concurrent write simply triggers the next pass.
func (s *Store) maybeEvict() {
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()

	type resident struct {
		path  string
		size  int64
		atime time.Time
	}
	var (
		entries []resident
		total   int64
	)
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, resident{path: path, size: info.Size(), atime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if total <= max {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].atime.Before(entries[j].atime) })
	var evicted, freed int64
	for _, e := range entries {
		if total <= max {
			break
		}
		if os.Remove(e.path) != nil {
			continue // raced with a concurrent reader/rewriter; skip
		}
		total -= e.size
		freed += e.size
		evicted++
	}
	if evicted > 0 {
		s.evictions.Add(evicted)
		s.emit("store.evict", "", map[string]int64{
			"evicted": evicted, "bytes_freed": freed, "resident_bytes": total,
		})
	}
}

// get loads and validates one entry. ErrMiss for an absent key; a
// *CorruptError (emitting a store.corrupt event) for an entry that
// fails any validation. Fault-injection point: store.read.
func (s *Store) get(kind, key string, payload any) error {
	path := s.path(kind, key)
	if err := faultinject.Fire(faultinject.PointStoreRead); err != nil {
		return fmt.Errorf("store: read %s/%s: %w", kind, key, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return ErrMiss
		}
		return fmt.Errorf("store: read %s/%s: %w", kind, key, err)
	}
	if err := s.validate(path, kind, key, b, payload); err != nil {
		s.corrupt.Add(1)
		s.emit("store.corrupt", err.Error(), nil)
		return err
	}
	s.hits.Add(1)
	// Refresh the entry's LRU recency. mtime stands in for access time
	// (atime is unreliable across mount options); a failed touch only
	// ages the entry, it cannot corrupt anything.
	now := time.Now()
	os.Chtimes(path, now, now)
	return nil
}

func (s *Store) validate(path, kind, key string, b []byte, payload any) error {
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return &CorruptError{Path: path, Reason: "unparsable envelope"}
	}
	switch {
	case e.Version != FormatVersion:
		return &CorruptError{Path: path, Reason: fmt.Sprintf("format %q, want %q", e.Version, FormatVersion)}
	case e.Kind != kind || e.Key != key:
		return &CorruptError{Path: path, Reason: "entry identity mismatch"}
	case payloadSum(e.Payload) != e.Sum:
		return &CorruptError{Path: path, Reason: "checksum mismatch"}
	}
	if err := json.Unmarshal(e.Payload, payload); err != nil {
		return &CorruptError{Path: path, Reason: "unparsable payload"}
	}
	return nil
}

// RunRecord is a whole-circuit identification result: the merged
// cone-granular counters plus the shape fingerprint that gates verbatim
// reuse. CircuitVersion is the process-local build stamp at write time,
// recorded for forensics only — content addressing, not the stamp, is
// the identity.
type RunRecord struct {
	Circuit        string   `json:"circuit"`
	Heuristic      string   `json:"heuristic"`
	Criterion      string   `json:"criterion"`
	FuncHash       string   `json:"func_hash"`
	ShapeHash      string   `json:"shape_hash"`
	CircuitVersion uint64   `json:"circuit_version"`
	TotalPaths     string   `json:"total_paths"`
	Selected       int64    `json:"selected"`
	RD             string   `json:"rd"`
	Segments       int64    `json:"segments"`
	Pruned         int64    `json:"pruned"`
	Cones          int      `json:"cones"`
	ConeKeys       []string `json:"cone_keys"`
}

// ConeRecord is one output cone's complete enumeration result under one
// projected sort and criterion.
type ConeRecord struct {
	Cone       string `json:"cone"`
	TotalPaths string `json:"total_paths"`
	Selected   int64  `json:"selected"`
	RD         string `json:"rd"`
	Segments   int64  `json:"segments"`
	Pruned     int64  `json:"pruned"`
}

// GetRun looks up a whole-circuit result by RunKey.
func (s *Store) GetRun(key string) (*RunRecord, error) {
	var r RunRecord
	if err := s.get("run", key, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// PutRun persists a whole-circuit result under key.
func (s *Store) PutRun(key string, r *RunRecord) error { return s.put("run", key, r) }

// GetCone looks up one cone's result by ConeKey.
func (s *Store) GetCone(key string) (*ConeRecord, error) {
	var r ConeRecord
	if err := s.get("cone", key, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// PutCone persists one cone's result under key.
func (s *Store) PutCone(key string, r *ConeRecord) error { return s.put("cone", key, r) }
