package store

import (
	"bytes"
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/faultinject"
	"rdfault/internal/gen"
	"rdfault/internal/telemetry"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "rdstore"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameCounters requires two store results to agree on every
// merged counter — the bit-identical bar of the equivalence suite.
func assertSameCounters(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Total.Cmp(got.Total) != 0 || want.RD.Cmp(got.RD) != 0 ||
		want.Selected != got.Selected || want.Segments != got.Segments ||
		want.Pruned != got.Pruned {
		t.Fatalf("counters diverge:\nwant total=%v selected=%d rd=%v segments=%d pruned=%d\ngot  total=%v selected=%d rd=%v segments=%d pruned=%d",
			want.Total, want.Selected, want.RD, want.Segments, want.Pruned,
			got.Total, got.Selected, got.RD, got.Segments, got.Pruned)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := openStore(t)
	run := &RunRecord{Circuit: "x", TotalPaths: "42", RD: "7", Selected: 35, Cones: 2}
	if err := s.PutRun("k1", run); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRun("k1")
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPaths != "42" || got.Selected != 35 || got.Cones != 2 {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	cone := &ConeRecord{Cone: "po0", TotalPaths: "9", RD: "3", Selected: 6, Segments: 17}
	if err := s.PutCone("c1", cone); err != nil {
		t.Fatal(err)
	}
	gc, err := s.GetCone("c1")
	if err != nil {
		t.Fatal(err)
	}
	if gc.Segments != 17 || gc.RD != "3" {
		t.Fatalf("cone round trip mangled record: %+v", gc)
	}
	if _, err := s.GetRun("absent"); !errors.Is(err, ErrMiss) {
		t.Fatalf("missing key: got %v, want ErrMiss", err)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// A flipped byte on disk must surface as the typed corrupt error and a
// store.corrupt event — never as a parsed payload.
func TestStoreCorruptEntryTyped(t *testing.T) {
	s := openStore(t)
	var events bytes.Buffer
	s.SetTelemetry(telemetry.NewLog(&events))
	if err := s.PutRun("k1", &RunRecord{Circuit: "x", TotalPaths: "1", RD: "0"}); err != nil {
		t.Fatal(err)
	}
	path := s.path("run", "k1")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte; the envelope still parses, the checksum does
	// not recompute.
	i := bytes.Index(b, []byte(`"circuit":"x"`))
	if i < 0 {
		t.Fatalf("payload not found in %s", b)
	}
	b[i+len(`"circuit":"`)] = 'y'
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.GetRun("k1")
	if !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("corrupt entry: got %v, want ErrCorruptEntry", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt entry not a *CorruptError: %v", err)
	}
	evs, err := telemetry.ParseJSONL(events.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == "store.corrupt" {
			found = true
		}
	}
	if !found {
		t.Fatal("no store.corrupt event emitted")
	}
	if s.Stats().Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", s.Stats().Corrupt)
	}
}

// A format-version bump is corruption, not a guess at an old layout.
func TestStoreRejectsForeignFormat(t *testing.T) {
	s := openStore(t)
	path := s.path("run", "k1")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"version":"rdstore/v0","kind":"run","key":"k1","payload":{},"sum":"44bd7ce6016992ae"}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRun("k1"); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("foreign format: got %v, want ErrCorruptEntry", err)
	}
}

// The ROADMAP fix this PR lands: results must survive the process.
// Simulated kill-and-restart — a fresh store handle on the same
// directory and a freshly built circuit (new build version, empty
// analysis state, as a new process would have) must warm-hit with zero
// enumeration work and identical counters.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rdstore")
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := IdentifyThrough(s1, gen.ALU(8, gen.XorNAND), opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Outcome != "miss" {
		t.Fatalf("cold run outcome %q, want miss", cold.Outcome)
	}

	// "Restart": nothing process-local survives except the directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := IdentifyThrough(s2, gen.ALU(8, gen.XorNAND), opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != "hit" {
		t.Fatalf("post-restart outcome %q, want hit", warm.Outcome)
	}
	if warm.EnumeratedSegments != 0 || warm.FreshCones != 0 {
		t.Fatalf("post-restart hit did enumeration work: fresh=%d segments=%d",
			warm.FreshCones, warm.EnumeratedSegments)
	}
	assertSameCounters(t, cold, warm)
}

// reference computes the trusted cold counters on a throwaway store.
func reference(t *testing.T, c *circuit.Circuit, opt Options) *Result {
	t.Helper()
	res, err := IdentifyThrough(openStore(t), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Corrupt store entries (injected at the write path, detected at read
// time by checksum) must fall back to full re-identification — slower,
// never wrong.
func TestChaosStoreCorruptFallsBack(t *testing.T) {
	c := gen.ALU(8, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	want := reference(t, c, opt)

	s := openStore(t)
	var events bytes.Buffer
	s.SetTelemetry(telemetry.NewLog(&events))

	// Populate while every write rots on its way to disk.
	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointStoreCorrupt,
		Kind:  faultinject.KindCorrupt,
		Seed:  42,
	}))
	cold, err := IdentifyThrough(s, c, opt)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounters(t, want, cold)

	// The warm run finds only corrupt entries: typed detection, full
	// recomputation, correct counters.
	warm, err := IdentifyThrough(s, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounters(t, want, warm)
	if warm.CorruptEntries == 0 {
		t.Fatal("corrupt entries went undetected")
	}
	if warm.FreshCones != warm.Cones {
		t.Fatalf("reused %d cones from a corrupt store", warm.ReusedCones)
	}
	evs, err := telemetry.ParseJSONL(events.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	corruptEvents := 0
	for _, ev := range evs {
		if ev.Kind == "store.corrupt" {
			corruptEvents++
		}
	}
	if corruptEvents == 0 {
		t.Fatal("no store.corrupt events in the log")
	}

	// Third run: the fallback rewrote clean entries, so the store heals.
	healed, err := IdentifyThrough(s, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Outcome != "hit" || healed.EnumeratedSegments != 0 {
		t.Fatalf("store did not heal: outcome=%q segments=%d", healed.Outcome, healed.EnumeratedSegments)
	}
	assertSameCounters(t, want, healed)
}

// Injected read failures degrade lookups to misses; answers stay right.
func TestChaosStoreReadErrorDegrades(t *testing.T) {
	c := gen.ALU(8, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	s := openStore(t)
	cold, err := IdentifyThrough(s, c, opt)
	if err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointStoreRead,
		Kind:  faultinject.KindError,
	}))
	defer restore()
	warm, err := IdentifyThrough(s, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCounters(t, cold, warm)
	if warm.FreshCones != warm.Cones {
		t.Fatal("served cones through a failing read path")
	}
}

// Injected write failures lose persistence, not answers.
func TestChaosStoreWriteErrorLosesNothing(t *testing.T) {
	c := gen.ALU(8, gen.XorNAND)
	opt := Options{Heuristic: core.Heuristic1, Workers: 2}
	s := openStore(t)

	restore := faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Point: faultinject.PointStoreWrite,
		Kind:  faultinject.KindError,
	}))
	cold, err := IdentifyThrough(s, c, opt)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Writes != 0 {
		t.Fatalf("%d writes landed through a failing write path", s.Stats().Writes)
	}

	// Nothing persisted: the next run is a full miss, and still correct.
	again, err := IdentifyThrough(s, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Outcome != "miss" {
		t.Fatalf("outcome %q after lost writes, want miss", again.Outcome)
	}
	assertSameCounters(t, cold, again)
}

// The merged result of the cone-granular store pipeline must stay
// bit-identical to the whole-circuit pipeline on Total/Selected/RD (the
// cone-sum invariant the fleet already enforces; Segments is the
// documented cone-sharded work sum).
func TestStoreMatchesWholeCircuitRun(t *testing.T) {
	for _, h := range []core.Heuristic{core.HeuristicFUS, core.Heuristic1, core.HeuristicPinOrder} {
		c := gen.ALU(8, gen.XorNAND)
		res, err := IdentifyThrough(openStore(t), c, Options{Heuristic: h, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Identify(c, h, core.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total.Cmp(rep.TotalLogicalPaths) != 0 || res.Selected != rep.Selected ||
			res.RD.Cmp(rep.RD) != 0 {
			t.Fatalf("%v: store pipeline diverges from whole-circuit run: %v/%d/%v vs %v/%d/%v",
				h, res.Total, res.Selected, res.RD, rep.TotalLogicalPaths, rep.Selected, rep.RD)
		}
		if res.Total.Cmp(big.NewInt(0)) <= 0 {
			t.Fatalf("%v: empty run", h)
		}
	}
}
