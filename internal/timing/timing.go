// Package timing provides static timing analysis over a circuit with
// per-gate delays: arrival and departure times, the circuit's critical
// delay, per-lead slack, and extraction of the longest paths. It is the
// substrate for the path-selection strategies of Section VI (test only
// paths with expected delay above a threshold), which the paper adapts to
// RD identification.
package timing

import (
	"sort"

	"rdfault/internal/circuit"
	"rdfault/internal/paths"
	"rdfault/internal/sim"
)

// Analysis holds static timing results for one circuit/delay pair.
type Analysis struct {
	c *circuit.Circuit
	d sim.Delays
	// arrive[g]: the longest PI-to-g delay, inclusive of g's own delay.
	arrive []float64
	// depart[g]: the longest g-to-PO delay, exclusive of g's own delay.
	depart []float64
}

// New computes arrival and departure times in one topological sweep each.
func New(c *circuit.Circuit, d sim.Delays) *Analysis {
	n := c.NumGates()
	a := &Analysis{
		c:      c,
		d:      d,
		arrive: make([]float64, n),
		depart: make([]float64, n),
	}
	topo := c.TopoOrder()
	for _, g := range topo {
		best := 0.0
		for _, f := range c.Fanin(g) {
			if a.arrive[f] > best {
				best = a.arrive[f]
			}
		}
		a.arrive[g] = best + d.Gate[g]
	}
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		best := 0.0
		first := true
		for _, e := range c.Fanout(g) {
			v := a.depart[e.To] + d.Gate[e.To]
			if first || v > best {
				best, first = v, false
			}
		}
		if first {
			best = 0
		}
		a.depart[g] = best
	}
	return a
}

// Arrive returns the longest PI-to-g path delay (including g's delay).
func (a *Analysis) Arrive(g circuit.GateID) float64 { return a.arrive[g] }

// Depart returns the longest delay from g's output to any PO.
func (a *Analysis) Depart(g circuit.GateID) float64 { return a.depart[g] }

// CriticalDelay returns the delay of the slowest path in the circuit.
func (a *Analysis) CriticalDelay() float64 {
	best := 0.0
	for _, po := range a.c.Outputs() {
		if a.arrive[po] > best {
			best = a.arrive[po]
		}
	}
	return best
}

// MaxThrough returns the delay of the slowest path running through gate
// g.
func (a *Analysis) MaxThrough(g circuit.GateID) float64 {
	return a.arrive[g] + a.depart[g]
}

// Slack returns CriticalDelay minus the slowest path through g.
func (a *Analysis) Slack(g circuit.GateID) float64 {
	return a.CriticalDelay() - a.MaxThrough(g)
}

// ForEachPathAtLeast enumerates every physical path with delay >=
// threshold, in depth-first order, pruning subtrees whose best possible
// completion falls short. fn receives a shared Path buffer (Clone to
// retain) and the exact path delay; returning false stops the walk.
func (a *Analysis) ForEachPathAtLeast(threshold float64, fn func(paths.Path, float64) bool) bool {
	var (
		gates []circuit.GateID
		pins  []int
	)
	const eps = 1e-12
	var dfs func(g circuit.GateID, sofar float64) bool
	dfs = func(g circuit.GateID, sofar float64) bool {
		gates = append(gates, g)
		defer func() { gates = gates[:len(gates)-1] }()
		if a.c.Type(g) == circuit.Output {
			return fn(paths.Path{Gates: gates, Pins: pins}, sofar)
		}
		for _, e := range a.c.Fanout(g) {
			next := sofar + a.d.Gate[e.To]
			if next+a.depart[e.To] < threshold-eps {
				continue // even the slowest completion is too fast
			}
			pins = append(pins, e.Pin)
			ok := dfs(e.To, next)
			pins = pins[:len(pins)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for _, pi := range a.c.Inputs() {
		start := a.d.Gate[pi]
		if start+a.depart[pi] < threshold-eps {
			continue
		}
		if !dfs(pi, start) {
			return false
		}
	}
	return true
}

// LongestPaths returns the k slowest physical paths (all paths if k <= 0
// exceeds the path count), sorted by decreasing delay. Intended for
// moderate k; it walks candidates above a self-tightening threshold.
func (a *Analysis) LongestPaths(k int) []ScoredPath {
	if k <= 0 {
		return nil
	}
	// Collect with a min-heap-like slice; circuit path counts can be
	// huge, so we prune using the current k-th best delay as threshold.
	var out []ScoredPath
	worst := 0.0
	a.ForEachPathAtLeast(0, func(p paths.Path, delay float64) bool {
		if len(out) < k {
			out = append(out, ScoredPath{Path: p.Clone(), Delay: delay})
			if len(out) == k {
				sort.Slice(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
				worst = out[k-1].Delay
			}
			return true
		}
		if delay <= worst {
			return true
		}
		out[k-1] = ScoredPath{Path: p.Clone(), Delay: delay}
		sort.Slice(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
		worst = out[k-1].Delay
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
	return out
}

// ScoredPath pairs a physical path with its delay.
type ScoredPath struct {
	Path  paths.Path
	Delay float64
}

// CriticalPath returns one slowest PI-to-PO path and its delay (the
// argmax witness behind CriticalDelay).
func (a *Analysis) CriticalPath() (paths.Path, float64) {
	var best paths.Path
	bestD := -1.0
	a.ForEachPathAtLeast(a.CriticalDelay(), func(p paths.Path, d float64) bool {
		best = p.Clone()
		bestD = d
		return false // the first one at the critical threshold suffices
	})
	return best, bestD
}
