package timing

import (
	"math"
	"testing"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/sim"
)

func TestArriveDepartChain(t *testing.T) {
	b := circuit.NewBuilder("chain")
	a := b.Input("a")
	n1 := b.Gate(circuit.Not, "n1", a)
	n2 := b.Gate(circuit.Not, "n2", n1)
	po := b.Output("po", n2)
	c := b.MustBuild()
	d := sim.UnitDelays(c)
	an := New(c, d)
	if an.Arrive(a) != 0 || an.Arrive(n1) != 1 || an.Arrive(n2) != 2 || an.Arrive(po) != 2 {
		t.Fatalf("arrivals: %v %v %v %v", an.Arrive(a), an.Arrive(n1), an.Arrive(n2), an.Arrive(po))
	}
	if an.Depart(a) != 2 || an.Depart(n1) != 1 || an.Depart(n2) != 0 || an.Depart(po) != 0 {
		t.Fatalf("departs: %v %v %v %v", an.Depart(a), an.Depart(n1), an.Depart(n2), an.Depart(po))
	}
	if an.CriticalDelay() != 2 {
		t.Fatalf("critical = %v", an.CriticalDelay())
	}
	if an.MaxThrough(n1) != 2 || an.Slack(n1) != 0 {
		t.Fatal("through/slack on critical gate")
	}
}

func TestCriticalDelayMatchesSlowestPath(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 25, Outputs: 3}, seed)
		d := sim.RandomDelays(c, seed*13, 0.5, 3)
		an := New(c, d)
		slowest := 0.0
		paths.ForEachPath(c, func(p paths.Path) bool {
			if pd := d.PathDelay(p); pd > slowest {
				slowest = pd
			}
			return true
		})
		if math.Abs(an.CriticalDelay()-slowest) > 1e-9 {
			t.Fatalf("seed %d: critical %v != slowest path %v", seed, an.CriticalDelay(), slowest)
		}
	}
}

func TestForEachPathAtLeastExact(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		d := sim.RandomDelays(c, seed, 0.5, 2)
		an := New(c, d)
		threshold := an.CriticalDelay() * 0.7
		want := map[string]float64{}
		paths.ForEachPath(c, func(p paths.Path) bool {
			if pd := d.PathDelay(p); pd >= threshold {
				want[p.Key()] = pd
			}
			return true
		})
		got := map[string]float64{}
		an.ForEachPathAtLeast(threshold, func(p paths.Path, pd float64) bool {
			got[p.Key()] = pd
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d paths, want %d", seed, len(got), len(want))
		}
		for k, wd := range want {
			if gd, ok := got[k]; !ok || math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("seed %d: path %s delay %v, want %v", seed, k, gd, wd)
			}
		}
	}
}

func TestForEachPathAtLeastEarlyStop(t *testing.T) {
	c := gen.PaperExample()
	an := New(c, sim.UnitDelays(c))
	calls := 0
	done := an.ForEachPathAtLeast(0, func(paths.Path, float64) bool {
		calls++
		return false
	})
	if done || calls != 1 {
		t.Fatalf("done=%v calls=%d", done, calls)
	}
}

func TestLongestPaths(t *testing.T) {
	c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, 3)
	d := sim.RandomDelays(c, 5, 0.5, 2)
	an := New(c, d)
	var all []float64
	paths.ForEachPath(c, func(p paths.Path) bool {
		all = append(all, d.PathDelay(p))
		return true
	})
	for _, k := range []int{1, 3, 10} {
		got := an.LongestPaths(k)
		if len(got) != k && len(got) != len(all) {
			t.Fatalf("k=%d: got %d paths", k, len(got))
		}
		// Sorted decreasing.
		for i := 1; i < len(got); i++ {
			if got[i].Delay > got[i-1].Delay+1e-9 {
				t.Fatalf("k=%d: not sorted", k)
			}
		}
		// Top delay matches global max.
		if math.Abs(got[0].Delay-an.CriticalDelay()) > 1e-9 {
			t.Fatalf("k=%d: top %v != critical %v", k, got[0].Delay, an.CriticalDelay())
		}
	}
	if an.LongestPaths(0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestCriticalPath(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := gen.RandomCircuit("rnd", gen.RandomOptions{Inputs: 5, Gates: 20, Outputs: 2}, seed)
		d := sim.RandomDelays(c, seed, 0.5, 2)
		an := New(c, d)
		p, pd := an.CriticalPath()
		if math.Abs(pd-an.CriticalDelay()) > 1e-9 {
			t.Fatalf("seed %d: witness delay %v != critical %v", seed, pd, an.CriticalDelay())
		}
		if math.Abs(d.PathDelay(p)-pd) > 1e-9 {
			t.Fatalf("seed %d: reported delay inconsistent with path", seed)
		}
	}
}
