package exp

import (
	"fmt"
	"io"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/stabilize"
	"rdfault/internal/synth"
)

// OptimalityRow quantifies, on one tiny circuit, the two quality losses
// the paper's fast algorithm trades for speed: restricting the search
// space to sort-induced assignments, and approximating LP(σ^π) by local
// implications.
type OptimalityRow struct {
	Circuit string
	Total   int64
	// Optimal is the unrestricted minimum |LP(σ)| (branch and bound over
	// every complete stabilizing assignment); only an upper bound when
	// Exact is false (node budget exhausted).
	Optimal int
	Exact   bool
	// BestSortExact is the exact |LP(σ^π)| for Heuristic 2's sort.
	BestSortExact int
	// BestSortSup is the approximate |LP^sup(σ^π)| the fast algorithm
	// reports for the same sort.
	BestSortSup int64
}

// RunOptimalityGap measures restriction and approximation losses on
// seeded random circuits small enough for the exhaustive search.
func RunOptimalityGap(w io.Writer, seeds []int64) ([]OptimalityRow, error) {
	fmt.Fprintf(w, "Search-space restriction and approximation losses (|LP| minimization)\n")
	fmt.Fprintf(w, "%-8s %8s %10s %12s %12s\n", "seed", "paths", "optimum", "sort exact", "sort approx")
	rows := make([]OptimalityRow, 0, len(seeds))
	for _, seed := range seeds {
		c := gen.RandomCircuit(fmt.Sprintf("rnd%d", seed),
			gen.RandomOptions{Inputs: 4, Gates: 8, Outputs: 2}, seed)
		row := OptimalityRow{Circuit: c.Name()}

		opt, err := stabilize.OptimalAssignment(c, 3_000_000)
		if err != nil {
			return nil, err
		}
		row.Optimal = opt.Size
		row.Exact = opt.Exact

		s2, _, _, err := core.Heuristic2Sort(c)
		if err != nil {
			return nil, err
		}
		exact, err := stabilize.ComputeAssignment(c, stabilize.ChooseBySort(s2))
		if err != nil {
			return nil, err
		}
		row.BestSortExact = len(exact.LogicalPaths())

		res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s2})
		if err != nil {
			return nil, err
		}
		row.BestSortSup = res.Selected
		row.Total = res.Total.Int64()
		rows = append(rows, row)
		mark := ""
		if !row.Exact {
			mark = "+" // budgeted: upper bound only
		}
		fmt.Fprintf(w, "%-8d %8d %9d%-1s %12d %12d\n",
			seed, row.Total, row.Optimal, mark, row.BestSortExact, row.BestSortSup)
	}
	// The invariants the theory demands (the incumbent from a budgeted
	// search is still a valid assignment, so the chain holds regardless).
	for _, r := range rows {
		if int64(r.Optimal) > int64(r.BestSortExact) || int64(r.BestSortExact) > r.BestSortSup {
			return rows, fmt.Errorf("optimality chain violated on %s: %d <= %d <= %d expected",
				r.Circuit, r.Optimal, r.BestSortExact, r.BestSortSup)
		}
	}
	fmt.Fprintf(w, "(optimum <= exact sort <= approximate sort holds on every row)\n")
	return rows, nil
}

// RedundancyRow reports the redundancy-sweep ablation on one synthesized
// cover: RD percentages before and after BDD-verified redundancy removal.
type RedundancyRow struct {
	Circuit           string
	Removed           int
	RDBefore, RDAfter float64
}

// RunRedundancySweep quantifies how much of the identified RD-set stems
// from functional redundancy: sweeping redundancy away (an idealized
// synthesis step) collapses the RD percentage.
func RunRedundancySweep(w io.Writer, seeds []int64) ([]RedundancyRow, error) {
	fmt.Fprintf(w, "Redundancy-sweep ablation (Heuristic 2 RD%% before/after BDD sweep)\n")
	fmt.Fprintf(w, "%-8s %8s %10s %10s\n", "seed", "removed", "RD before", "RD after")
	rows := make([]RedundancyRow, 0, len(seeds))
	for _, seed := range seeds {
		cv := gen.RandomPLA(fmt.Sprintf("red%d", seed),
			gen.PLAOptions{Inputs: 8, Outputs: 4, Cubes: 18, Redundant: 14}, seed)
		c, err := synth.Synthesize(cv, synth.Options{})
		if err != nil {
			return nil, err
		}
		swept, removed, err := synth.RemoveRedundant(c, 0)
		if err != nil {
			return nil, err
		}
		before, err := core.Identify(c, core.Heuristic2, core.Options{})
		if err != nil {
			return nil, err
		}
		after, err := core.Identify(swept, core.Heuristic2, core.Options{})
		if err != nil {
			return nil, err
		}
		row := RedundancyRow{
			Circuit:  c.Name(),
			Removed:  removed,
			RDBefore: before.RDPercent(),
			RDAfter:  after.RDPercent(),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %8d %9.2f%% %9.2f%%\n", seed, row.Removed, row.RDBefore, row.RDAfter)
	}
	return rows, nil
}

// SortComparisonRow compares four input-sort strategies on one circuit.
type SortComparisonRow struct {
	Circuit                        string
	PinRD, SCOAPRD, Heu1RD, Heu2RD float64
}

// RunSortComparison is the extension experiment: the SCOAP
// testability-driven sort against the paper's Heuristics on the ISCAS85
// analogues. The paper's measures are path-count based; SCOAP asks how a
// purely testability-based measure compares.
func RunSortComparison(w io.Writer, circuits []gen.Named) ([]SortComparisonRow, error) {
	fmt.Fprintf(w, "Input-sort comparison (%% RD identified; higher is better)\n")
	fmt.Fprintf(w, "%-8s %9s %9s %9s %9s\n", "circuit", "pin", "SCOAP", "Heu1", "Heu2")
	rows := make([]SortComparisonRow, 0, len(circuits))
	for _, nc := range circuits {
		c := nc.C
		row := SortComparisonRow{Circuit: nc.Paper}
		run := func(s circuit.InputSort) (float64, error) {
			res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s})
			if err != nil {
				return 0, err
			}
			return res.RDPercent(), nil
		}
		var err error
		if row.PinRD, err = run(circuit.PinOrderSort(c)); err != nil {
			return nil, err
		}
		if row.SCOAPRD, err = run(analysis.For(c).SCOAPSort()); err != nil {
			return nil, err
		}
		if row.Heu1RD, err = run(core.Heuristic1Sort(c)); err != nil {
			return nil, err
		}
		s2, _, _, err := core.Heuristic2Sort(c)
		if err != nil {
			return nil, err
		}
		if row.Heu2RD, err = run(s2); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8s %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n",
			row.Circuit, row.PinRD, row.SCOAPRD, row.Heu1RD, row.Heu2RD)
	}
	return rows, nil
}
