package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"rdfault/internal/circuit"
	"rdfault/internal/gen"
	"rdfault/internal/serve"
	"rdfault/internal/synth"
)

// PopulationStats aggregates the Heu2-vs-Heu1 comparison over a
// population of synthesized circuits — the statistical version of the
// paper's "average improvement 2.51%" remark.
type PopulationStats struct {
	Circuits int
	// MeanImprovement and StdDev summarize Heu2%% - Heu1%% across the
	// population; Heu2Wins counts circuits where Heuristic 2 strictly
	// improved on Heuristic 1, Ties where they agreed.
	MeanImprovement float64
	StdDev          float64
	Heu2Wins        int
	Ties            int
	// MeanInverseDrop summarizes Heu2%% - inverse%% (how much the control
	// experiment loses).
	MeanInverseDrop float64
}

// populationHeuristics are the three passes run per synthesized cover,
// in batch-item order.
var populationHeuristics = []string{"heu1", "heu2", "inverse"}

// RunPopulation measures Heuristic 1 vs Heuristic 2 vs the inverse
// control across n seeded synthesized covers. The 3n identification
// jobs go through an in-process serve batch — the same admission,
// budget and accounting path production requests take — instead of a
// private bookkeeping loop; the RD percentages are worker-count
// invariant, so the printed statistics are identical to the old serial
// runner's.
func RunPopulation(w io.Writer, n int, baseSeed int64) (*PopulationStats, error) {
	fmt.Fprintf(w, "Population study over %d synthesized covers (Heu2 vs Heu1 vs inverse)\n", n)

	reqs := make([]serve.Request, 0, 3*n)
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		cv := gen.RandomPLA(fmt.Sprintf("pop%d", seed),
			gen.PLAOptions{Inputs: 10, Outputs: 5, Cubes: 30, DashFrac: 0.45, Redundant: 12}, seed)
		c, err := synth.Synthesize(cv, synth.Options{})
		if err != nil {
			return nil, err
		}
		var bench strings.Builder
		if err := circuit.WriteBench(&bench, c); err != nil {
			return nil, err
		}
		for _, h := range populationHeuristics {
			reqs = append(reqs, serve.Request{
				Bench: bench.String(), Name: c.Name(), Heuristic: h, Tier: "fast",
			})
		}
	}

	srv := serve.New(serve.Config{QueueDepth: len(reqs)})
	defer srv.Close()
	items := srv.SubmitBatch(reqs)

	var (
		diffs   []float64
		invDrop []float64
		stats   PopulationStats
	)
	for i := 0; i < n; i++ {
		var pct [3]float64
		for k := 0; k < 3; k++ {
			it := items[3*i+k]
			if it.Err != nil {
				return nil, it.Err
			}
			ans, err := it.Job.Wait(context.Background())
			if err != nil {
				return nil, err
			}
			pct[k] = ans.RDPercent
		}
		d := pct[1] - pct[0] // heu2 - heu1
		diffs = append(diffs, d)
		invDrop = append(invDrop, pct[1]-pct[2])
		switch {
		case d > 1e-9:
			stats.Heu2Wins++
		case d > -1e-9:
			stats.Ties++
		}
	}
	stats.Circuits = n
	mean := 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(n)
	variance := 0.0
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	stats.MeanImprovement = mean
	stats.StdDev = math.Sqrt(variance / float64(n))
	for _, d := range invDrop {
		stats.MeanInverseDrop += d
	}
	stats.MeanInverseDrop /= float64(n)
	fmt.Fprintf(w, "Heu2 - Heu1: mean %+.2f%% (stddev %.2f), wins %d, ties %d of %d (paper: +2.51%% on ISCAS85)\n",
		stats.MeanImprovement, stats.StdDev, stats.Heu2Wins, stats.Ties, n)
	fmt.Fprintf(w, "Heu2 - inverse: mean %+.2f%% (the control experiment's loss)\n", stats.MeanInverseDrop)
	return &stats, nil
}
