package exp

import (
	"fmt"
	"io"
	"math"

	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/synth"
)

// PopulationStats aggregates the Heu2-vs-Heu1 comparison over a
// population of synthesized circuits — the statistical version of the
// paper's "average improvement 2.51%" remark.
type PopulationStats struct {
	Circuits int
	// MeanImprovement and StdDev summarize Heu2%% - Heu1%% across the
	// population; Heu2Wins counts circuits where Heuristic 2 strictly
	// improved on Heuristic 1, Ties where they agreed.
	MeanImprovement float64
	StdDev          float64
	Heu2Wins        int
	Ties            int
	// MeanInverseDrop summarizes Heu2%% - inverse%% (how much the control
	// experiment loses).
	MeanInverseDrop float64
}

// RunPopulation measures Heuristic 1 vs Heuristic 2 vs the inverse
// control across n seeded synthesized covers.
func RunPopulation(w io.Writer, n int, baseSeed int64) (*PopulationStats, error) {
	fmt.Fprintf(w, "Population study over %d synthesized covers (Heu2 vs Heu1 vs inverse)\n", n)
	var (
		diffs   []float64
		invDrop []float64
		stats   PopulationStats
	)
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		cv := gen.RandomPLA(fmt.Sprintf("pop%d", seed),
			gen.PLAOptions{Inputs: 10, Outputs: 5, Cubes: 30, DashFrac: 0.45, Redundant: 12}, seed)
		c, err := synth.Synthesize(cv, synth.Options{})
		if err != nil {
			return nil, err
		}
		h1, err := core.Identify(c, core.Heuristic1, core.Options{})
		if err != nil {
			return nil, err
		}
		h2, err := core.Identify(c, core.Heuristic2, core.Options{})
		if err != nil {
			return nil, err
		}
		inv, err := core.Identify(c, core.Heuristic2Inverse, core.Options{})
		if err != nil {
			return nil, err
		}
		d := h2.RDPercent() - h1.RDPercent()
		diffs = append(diffs, d)
		invDrop = append(invDrop, h2.RDPercent()-inv.RDPercent())
		switch {
		case d > 1e-9:
			stats.Heu2Wins++
		case d > -1e-9:
			stats.Ties++
		}
	}
	stats.Circuits = n
	mean := 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(n)
	variance := 0.0
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	stats.MeanImprovement = mean
	stats.StdDev = math.Sqrt(variance / float64(n))
	for _, d := range invDrop {
		stats.MeanInverseDrop += d
	}
	stats.MeanInverseDrop /= float64(n)
	fmt.Fprintf(w, "Heu2 - Heu1: mean %+.2f%% (stddev %.2f), wins %d, ties %d of %d (paper: +2.51%% on ISCAS85)\n",
		stats.MeanImprovement, stats.StdDev, stats.Heu2Wins, stats.Ties, n)
	fmt.Fprintf(w, "Heu2 - inverse: mean %+.2f%% (the control experiment's loss)\n", stats.MeanInverseDrop)
	return &stats, nil
}
