package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rdfault/internal/gen"
	"rdfault/internal/tgen"
)

// smallSuite is a fast subset standing in for the full ISCAS85 run.
func smallSuite() []gen.Named {
	return []gen.Named{
		{Paper: "c432", C: gen.PriorityInterrupt(9)},
		{Paper: "c880", C: gen.ALU(4, gen.XorNAND)},
		{Paper: "c499", C: gen.SECDecoder(6, gen.XorAOI)},
	}
}

func TestRunISCAS(t *testing.T) {
	rows, quarantined, err := RunISCAS(smallSuite(), SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %v", quarantined)
	}
	for _, r := range rows {
		if r.Total.Sign() <= 0 {
			t.Errorf("%s: nonpositive path total", r.Circuit)
		}
		// Structural guarantees, independent of circuit shapes:
		// sigma^pi-based RD never falls below the FUS baseline.
		for _, v := range []float64{r.Heu1, r.Heu2, r.Inv} {
			if v < r.FUS-1e-9 {
				t.Errorf("%s: sort-based RD %.2f%% below FUS %.2f%%", r.Circuit, v, r.FUS)
			}
		}
		if r.FUS < 0 || r.Heu2 > 100 {
			t.Errorf("%s: RD%% out of range", r.Circuit)
		}
	}
	var buf bytes.Buffer
	FprintTableI(&buf, rows)
	FprintTableII(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "TABLE II") {
		t.Error("table headers missing")
	}
	if !strings.Contains(out, "c432") {
		t.Error("row missing")
	}
}

func TestRunMCNC(t *testing.T) {
	covers := []gen.NamedCover{
		{Paper: "apex1", Cover: gen.RandomPLA("apex1", gen.PLAOptions{Inputs: 6, Outputs: 3, Cubes: 10}, 3)},
		{Paper: "bw", Cover: gen.RandomPLA("bw", gen.PLAOptions{Inputs: 5, Outputs: 4, Cubes: 12, DashFrac: 0.2}, 4)},
	}
	rows, quarantined, err := RunMCNC(covers, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %v", quarantined)
	}
	for _, r := range rows {
		if r.LamRD < 0 || r.LamRD > 100 || r.Heu2RD < 0 || r.Heu2RD > 100 {
			t.Errorf("%s: RD%% out of range", r.Circuit)
		}
	}
	var buf bytes.Buffer
	FprintTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "TABLE III") {
		t.Error("missing header")
	}
	_ = QualityGap(rows)
	if QualityGap(nil) != 0 {
		t.Error("QualityGap(nil) != 0")
	}
}

func TestRunFigures(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunFigures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SystemsFor111 != 3 {
		t.Errorf("systems for 111 = %d, want 3 (Figure 1)", rep.SystemsFor111)
	}
	if rep.SixPathAssignment != 6 {
		t.Errorf("worse assignment = %d paths, want 6 (Figure 2)", rep.SixPathAssignment)
	}
	if rep.OptimalAssignment != 5 {
		t.Errorf("optimal assignment = %d paths, want 5 (Figure 4)", rep.OptimalAssignment)
	}
	if rep.SigmaPiOptimal != 5 {
		t.Errorf("sigma^pi = %d paths, want 5 (Figure 5)", rep.SigmaPiOptimal)
	}
	if rep.DashedPathClass != tgen.FuncSensitizable {
		t.Errorf("dashed path class = %v, want functionally sensitizable", rep.DashedPathClass)
	}
	if rep.ExactT != 5 || rep.ExactFS != 8 || rep.TotalPaths != 8 {
		t.Errorf("hierarchy = T%d FS%d LP%d, want 5/8/8", rep.ExactT, rep.ExactFS, rep.TotalPaths)
	}
	if rep.CoverageOptimal != "5/5" || rep.CoverageWorse != "5/6" {
		t.Errorf("coverage = %s vs %s, want 5/5 vs 5/6", rep.CoverageOptimal, rep.CoverageWorse)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSpeedup(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunSpeedup(&buf, []int{4, 5}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.LamCompleted {
			t.Errorf("%s: unfolding should complete at these sizes", r.Circuit)
		}
		if r.Heu2Time <= 0 {
			t.Errorf("%s: zero Heu2 time", r.Circuit)
		}
	}
	// A tiny cap must produce a did-not-finish row, not an error.
	rows, err = RunSpeedup(&buf, []int{6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].LamCompleted {
		t.Error("expected incomplete run under tiny node cap")
	}
	if rows[0].Speedup() != 0 {
		t.Error("incomplete run should report zero speedup")
	}
	if !strings.Contains(buf.String(), "did not finish") {
		t.Error("output missing did-not-finish marker")
	}
}

func TestRunAblations(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunAblations(&buf, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SegmentsFlat < r.SegmentsPruned {
			t.Errorf("%s: pruning increased segment count", r.Circuit)
		}
		if r.Superset < r.Exact {
			t.Errorf("%s: LP^sup (%d) smaller than exact LP (%d)", r.Circuit, r.Superset, r.Exact)
		}
		if r.RDInv > r.RDHeu2+1e-9 && r.RDInv > r.RDPin+1e-9 {
			t.Logf("%s: inverse sort beat both (possible on random circuits)", r.Circuit)
		}
	}
}

func TestRunOptimalityGap(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunOptimalityGap(&buf, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Optimal <= 0 || int64(r.Optimal) > r.Total {
			t.Errorf("%s: optimum %d out of range", r.Circuit, r.Optimal)
		}
	}
	if !strings.Contains(buf.String(), "optimum") {
		t.Error("missing header")
	}
}

func TestRunRedundancySweep(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunRedundancySweep(&buf, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Removed > 0 && r.RDAfter > r.RDBefore+1e-9 {
			t.Logf("%s: sweep increased RD%% (%.2f -> %.2f) — possible but unusual",
				r.Circuit, r.RDBefore, r.RDAfter)
		}
	}
	if !strings.Contains(buf.String(), "Redundancy-sweep") {
		t.Error("missing header")
	}
}

func TestPaperReferencesComplete(t *testing.T) {
	for _, nc := range gen.ISCAS85Suite() {
		if _, ok := PaperTableI[nc.Paper]; !ok {
			t.Errorf("no Table I reference for %s", nc.Paper)
		}
	}
	for _, nc := range gen.MCNCSuite() {
		if _, ok := PaperTableIII[nc.Paper]; !ok {
			t.Errorf("no Table III reference for %s", nc.Paper)
		}
	}
}

func TestRunSortComparison(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunSortComparison(&buf, smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.PinRD, r.SCOAPRD, r.Heu1RD, r.Heu2RD} {
			if v < 0 || v > 100 {
				t.Errorf("%s: RD%% out of range", r.Circuit)
			}
		}
	}
	if !strings.Contains(buf.String(), "SCOAP") {
		t.Error("missing header")
	}
}

func TestRunPopulation(t *testing.T) {
	var buf bytes.Buffer
	stats, err := RunPopulation(&buf, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Circuits != 3 {
		t.Fatalf("circuits = %d", stats.Circuits)
	}
	if stats.StdDev < 0 {
		t.Fatal("negative stddev")
	}
	if !strings.Contains(buf.String(), "Population") {
		t.Error("missing header")
	}
}

func TestRunAllQuickAndReports(t *testing.T) {
	var buf bytes.Buffer
	s, err := RunAll(&buf, true, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ISCAS) == 0 || len(s.MCNC) == 0 || s.Figures == nil || s.Population == nil {
		t.Fatal("summary incomplete")
	}
	var html bytes.Buffer
	if err := s.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<html", "Table I/II", "Speed-up", "SCOAP", "Population"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatalf("JSON report invalid: %v", err)
	}
	if _, ok := round["iscas"]; !ok {
		t.Error("JSON missing iscas key")
	}
}
