package exp

import (
	"fmt"
	"io"
	"sort"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/paths"
	"rdfault/internal/stabilize"
	"rdfault/internal/tgen"
)

// FiguresReport carries the quantities the paper's Figures 1-5 and
// Examples 1-4 state for the running example circuit.
type FiguresReport struct {
	// Figure 1: number of distinct stabilizing systems for input 111.
	SystemsFor111 int
	// Example 2 / Figure 2: a complete stabilizing assignment with this
	// many logical paths exists (6 in the paper), including one that is
	// functionally sensitizable but not (non-)robustly testable.
	SixPathAssignment int
	DashedPathClass   tgen.Class
	// Example 3 / Figure 4: the optimal assignment's path count (5).
	OptimalAssignment int
	// Figure 5: the pin-order sort realizes the optimum via sigma^pi.
	SigmaPiOptimal int64
	// Figure 3 hierarchy sizes: |T| <= |LP(sigma)| <= |FS| <= |LP|.
	ExactT, ExactFS, TotalPaths int
	// Coverage shape of Example 3: testable / selected for the optimal
	// and the worse assignment (5/5 vs 5/6 in the paper).
	CoverageOptimal, CoverageWorse string
}

// RunFigures reproduces Figures 1-5 on the reconstructed example circuit
// and writes a textual rendition to w.
func RunFigures(w io.Writer) (*FiguresReport, error) {
	c := gen.PaperExample()
	rep := &FiguresReport{}
	fmt.Fprintf(w, "Example circuit (reconstruction): y = OR(a, AND(b, OR(b, c)))\n\n")

	// Figure 1: all stabilizing systems for 111.
	systems := stabilize.AllSystems(c, []bool{true, true, true})
	rep.SystemsFor111 = len(systems)
	fmt.Fprintf(w, "Figure 1 — stabilizing systems for input 111 (paper: three):\n")
	keys := make([]string, 0, len(systems))
	for _, s := range systems {
		keys = append(keys, s.String())
	}
	sort.Strings(keys)
	for i, k := range keys {
		fmt.Fprintf(w, "  S%d: %s\n", i+1, k)
	}

	// Figure 2 / Example 2: the six-path assignment.
	o, _ := c.GateByName("o")
	worse, err := stabilize.ComputeAssignment(c, func(_ *circuit.Circuit, g circuit.GateID, ctrl []int) int {
		if g == o {
			return ctrl[len(ctrl)-1]
		}
		return ctrl[0]
	})
	if err != nil {
		return nil, err
	}
	worseLP := worse.LogicalPaths()
	rep.SixPathAssignment = len(worseLP)
	gn := tgen.NewGenerator(c)
	fmt.Fprintf(w, "\nFigure 2 — a complete stabilizing assignment with |LP(sigma)| = %d (paper: 6):\n", len(worseLP))
	worseTestable := 0
	for _, k := range sortedKeys(worseLP) {
		lp := worseLP[k]
		cl := gn.Classify(lp)
		if cl >= tgen.NonRobust {
			worseTestable++
		}
		marker := ""
		if cl < tgen.NonRobust {
			marker = "   <- the dashed path: functionally sensitizable, not testable"
			rep.DashedPathClass = cl
		}
		fmt.Fprintf(w, "  %-30s %-17s%s\n", pathLabel(c, lp), cl, marker)
	}
	rep.CoverageWorse = fmt.Sprintf("%d/%d", worseTestable, len(worseLP))

	// Figure 4 / Example 3: the optimal assignment.
	opt, err := stabilize.ComputeAssignment(c, stabilize.ChooseBySort(circuit.PinOrderSort(c)))
	if err != nil {
		return nil, err
	}
	optLP := opt.LogicalPaths()
	rep.OptimalAssignment = len(optLP)
	optTestable := 0
	fmt.Fprintf(w, "\nFigure 4 / Example 3 — optimal assignment, |LP(sigma')| = %d (paper: 5):\n", len(optLP))
	for _, k := range sortedKeys(optLP) {
		lp := optLP[k]
		cl := gn.Classify(lp)
		if cl >= tgen.NonRobust {
			optTestable++
		}
		fmt.Fprintf(w, "  %-30s %s\n", pathLabel(c, lp), cl)
	}
	rep.CoverageOptimal = fmt.Sprintf("%d/%d", optTestable, len(optLP))
	fmt.Fprintf(w, "Coverage (testable/selected): optimal %s, worse %s (paper: 5/5 vs 5/6)\n",
		rep.CoverageOptimal, rep.CoverageWorse)

	// Figure 5: sigma^pi with the pin-order sort realizes the optimum.
	pin := circuit.PinOrderSort(c)
	res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &pin})
	if err != nil {
		return nil, err
	}
	rep.SigmaPiOptimal = res.Selected
	fmt.Fprintf(w, "\nFigure 5 — input sort realizing the optimum: pin order (a<g at y, b<o at g, b<c at o)\n")
	fmt.Fprintf(w, "  |LP^sup(sigma^pi)| = %d, RD = %v of %v paths\n", res.Selected, res.RD, res.Total)

	// Figure 3: the hierarchy, with exact sets.
	var all []paths.Logical
	paths.ForEachLogical(c, func(lp paths.Logical) bool {
		all = append(all, paths.Logical{Path: lp.Path.Clone(), FinalOne: lp.FinalOne})
		return true
	})
	rep.TotalPaths = len(all)
	for _, lp := range all {
		cl := gn.Classify(lp)
		if cl >= tgen.NonRobust {
			rep.ExactT++
		}
		if cl >= tgen.FuncSensitizable {
			rep.ExactFS++
		}
	}
	fmt.Fprintf(w, "\nFigure 3 — hierarchy: |T| = %d <= |LP(sigma')| = %d <= |FS| = %d <= |LP| = %d\n",
		rep.ExactT, rep.OptimalAssignment, rep.ExactFS, rep.TotalPaths)
	return rep, nil
}

func pathLabel(c *circuit.Circuit, lp paths.Logical) string {
	dir := "fall"
	if lp.FinalOne {
		dir = "rise"
	}
	return lp.Path.String(c) + " (" + dir + ")"
}

func sortedKeys(m map[string]paths.Logical) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
