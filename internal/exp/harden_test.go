package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rdfault/internal/gen"
)

func tinySuite() []gen.Named {
	return []gen.Named{
		{Paper: "c432", C: gen.PriorityInterruptGrouped(3, 3)},
		{Paper: "c880", C: gen.ALU(4, gen.XorNAND)},
		{Paper: "c499", C: gen.SECDecoder(6, gen.XorAOI)},
	}
}

// A circuit whose pipeline panics on every attempt must land in
// quarantine with the panic text while the rest of the suite completes.
func TestPanicInjectionQuarantines(t *testing.T) {
	opt := SuiteOptions{
		Workers: 2,
		sleep:   func(time.Duration) {},
		faultHook: func(circuit string, attempt int) error {
			if circuit == "c880" {
				panic(fmt.Sprintf("injected crash (attempt %d)", attempt))
			}
			return nil
		},
	}
	rows, quarantined, err := RunISCAS(tinySuite(), opt)
	if err != nil {
		t.Fatalf("RunISCAS: %v (an injected panic must not abort the suite)", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (healthy circuits must still report)", len(rows))
	}
	for _, r := range rows {
		if r.Circuit == "c880" {
			t.Fatalf("crashed circuit produced a table row: %+v", r)
		}
	}
	if len(quarantined) != 1 {
		t.Fatalf("got %d quarantined rows, want 1: %v", len(quarantined), quarantined)
	}
	q := quarantined[0]
	if q.Circuit != "c880" || q.Attempts != 2 {
		t.Errorf("quarantine row = %+v, want c880 after 2 attempts", q)
	}
	if !strings.Contains(q.Reason, "panic") || !strings.Contains(q.Reason, "injected crash") {
		t.Errorf("Reason = %q, want the recovered panic value", q.Reason)
	}
}

// An impossible per-circuit budget quarantines every circuit — and the
// suite still exits without error, handing back its (empty) tables.
func TestTimeoutInjectionQuarantines(t *testing.T) {
	opt := SuiteOptions{
		Workers:           2,
		PerCircuitTimeout: time.Nanosecond,
		Backoff:           time.Nanosecond,
		sleep:             func(time.Duration) {},
	}
	suite := tinySuite()
	rows, quarantined, err := RunISCAS(suite, opt)
	if err != nil {
		t.Fatalf("RunISCAS: %v (per-circuit timeouts must not abort the suite)", err)
	}
	if len(rows) != 0 {
		t.Fatalf("got %d rows under a 1ns budget, want 0", len(rows))
	}
	if len(quarantined) != len(suite) {
		t.Fatalf("got %d quarantined rows, want %d", len(quarantined), len(suite))
	}
	for _, q := range quarantined {
		if q.Attempts != 2 {
			t.Errorf("%s: Attempts = %d, want 2 (one retry by default)", q.Circuit, q.Attempts)
		}
		if !strings.Contains(strings.ToLower(q.Reason), "deadline") {
			t.Errorf("%s: Reason = %q, want a deadline explanation", q.Circuit, q.Reason)
		}
	}
	var buf bytes.Buffer
	FprintQuarantine(&buf, quarantined)
	if !strings.Contains(buf.String(), "QUARANTINED") {
		t.Errorf("FprintQuarantine output missing header:\n%s", buf.String())
	}
}

// A transient failure on the first attempt is retried after one backoff
// pause and the circuit still reports a normal row.
func TestRetryRecoversTransientFailure(t *testing.T) {
	var slept []time.Duration
	opt := SuiteOptions{
		Workers: 2,
		Backoff: 250 * time.Millisecond,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
		faultHook: func(circuit string, attempt int) error {
			if circuit == "c432" && attempt == 0 {
				return errors.New("transient: simulated memory pressure")
			}
			return nil
		},
	}
	rows, quarantined, err := RunISCAS(tinySuite()[:1], opt)
	if err != nil {
		t.Fatalf("RunISCAS: %v", err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("quarantined %v, want none (the retry should have succeeded)", quarantined)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want exactly one of 250ms", slept)
	}
}

// Retries < 0 disables retrying: a single failed attempt quarantines.
func TestNegativeRetriesDisablesRetry(t *testing.T) {
	calls := 0
	opt := SuiteOptions{
		Workers: 2,
		Retries: -1,
		sleep:   func(time.Duration) {},
		faultHook: func(circuit string, attempt int) error {
			calls++
			return errors.New("always fails")
		},
	}
	_, quarantined, err := RunISCAS(tinySuite()[:1], opt)
	if err != nil {
		t.Fatalf("RunISCAS: %v", err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1 (Retries=-1 means no retry)", calls)
	}
	if len(quarantined) != 1 || quarantined[0].Attempts != 1 {
		t.Errorf("quarantined = %v, want one row after 1 attempt", quarantined)
	}
}

// Cancelling the suite context is fatal — unlike a per-circuit budget,
// the runner stops and reports the context error.
func TestSuiteCancellationIsFatal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, _, err := RunISCAS(tinySuite(), SuiteOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rows) != 0 {
		t.Errorf("got %d rows from an already-canceled suite, want 0", len(rows))
	}
}

// RunMCNC quarantines on the same machinery.
func TestRunMCNCTimeoutQuarantines(t *testing.T) {
	covers := gen.MCNCSuite()[:2]
	opt := SuiteOptions{
		Workers:           2,
		PerCircuitTimeout: time.Nanosecond,
		Backoff:           time.Nanosecond,
		sleep:             func(time.Duration) {},
	}
	rows, quarantined, err := RunMCNC(covers, opt)
	if err != nil {
		t.Fatalf("RunMCNC: %v", err)
	}
	if len(rows) != 0 || len(quarantined) != len(covers) {
		t.Fatalf("rows=%d quarantined=%d, want 0 and %d", len(rows), len(quarantined), len(covers))
	}
}

// RunAll under an injected per-circuit failure still produces a complete
// summary: the quarantined circuits are listed in Summary.Quarantined and
// rendered in both report formats, and RunAll reports no error.
func TestRunAllWithInjectedFaultStillReports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	opt := SuiteOptions{
		Workers: 2,
		sleep:   func(time.Duration) {},
		faultHook: func(circuit string, attempt int) error {
			if circuit == "c499" {
				return errors.New("injected per-circuit failure")
			}
			return nil
		},
	}
	var out bytes.Buffer
	summary, err := RunAll(&out, true, opt)
	if err != nil {
		t.Fatalf("RunAll: %v (a quarantined circuit must not abort the run)", err)
	}
	if len(summary.Quarantined) != 1 || summary.Quarantined[0].Circuit != "c499" {
		t.Fatalf("Summary.Quarantined = %v, want exactly c499", summary.Quarantined)
	}
	if !strings.Contains(out.String(), "QUARANTINED") {
		t.Errorf("text output missing the quarantine table")
	}
	var html bytes.Buffer
	if err := summary.WriteHTML(&html); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	if !strings.Contains(html.String(), "injected per-circuit failure") {
		t.Errorf("HTML report missing the quarantine reason")
	}
	var js bytes.Buffer
	if err := summary.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"quarantined"`) {
		t.Errorf("JSON dump missing the quarantined field")
	}
}
