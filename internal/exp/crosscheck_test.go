package exp

import (
	"bytes"
	"strings"
	"testing"

	"rdfault/internal/oracle/diff"
)

// TestRunCrossCheck: a small sweep runs clean, aggregates correctly, and
// its printed summary carries the numbers the nightly log greps for.
func TestRunCrossCheck(t *testing.T) {
	var buf bytes.Buffer
	sum, err := RunCrossCheck(&buf, 8, 1, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("violations: %v", sum.Violations)
	}
	if len(sum.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(sum.Rows))
	}
	var paths, gapSeeds, totalGap int
	for _, r := range sum.Rows {
		paths += r.Paths
		if !r.Sound || !r.Lemma1 || !r.Metamorphic {
			t.Fatalf("seed %d row flags: %+v", r.Seed, r)
		}
		if r.Gap != r.ExactRD-r.FastRD {
			t.Fatalf("seed %d: gap %d != exactRD−fastRD %d", r.Seed, r.Gap, r.ExactRD-r.FastRD)
		}
		if r.Gap > 0 {
			gapSeeds++
			totalGap += r.Gap
		}
	}
	if paths != sum.TotalPaths || gapSeeds != sum.GapSeeds || totalGap != sum.TotalGap {
		t.Fatalf("aggregates drifted: %+v", sum)
	}
	// Seed 6 of the default shape has a known nonzero gap; the sweep must
	// see it or the harness stopped exercising the approximation.
	if sum.GapSeeds == 0 {
		t.Fatal("no seed with nonzero gap in the default block")
	}
	out := buf.String()
	if !strings.Contains(out, "cross-check: 8 seeds, 0 violations") {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
}
