package exp

import (
	"context"
	"fmt"
	"time"

	"rdfault/internal/core"
	"rdfault/internal/retry"
)

// SuiteOptions hardens the suite runners (RunISCAS, RunMCNC, RunAll)
// against the known failure modes of exhaustive enumeration: a circuit
// whose path count explodes past its time budget, and a crash in one
// circuit's pipeline. Both are contained per circuit — the offending row
// is quarantined with its reason and the suite continues, so a long
// experiment run always hands back every row it could compute.
type SuiteOptions struct {
	// Workers sets the per-pass enumeration parallelism (<=1 serial).
	Workers int
	// PerCircuitTimeout bounds each circuit's full pipeline (all its
	// enumeration passes together); 0 means no budget. A circuit that
	// exceeds it is retried, then quarantined.
	PerCircuitTimeout time.Duration
	// Retries is the number of extra attempts after a failed one.
	// 0 means the default of one retry; negative disables retrying.
	Retries int
	// Backoff is the pause before each retry (default 100ms). Transient
	// failures (memory pressure, a co-tenant stealing the CPU budget)
	// often clear after a beat; deterministic ones fail again and land in
	// quarantine.
	Backoff time.Duration
	// Context cancels the whole suite run; per-circuit budgets nest under
	// it. Unlike a per-circuit timeout, suite cancellation is fatal: the
	// runner returns what it has plus the context's error.
	Context context.Context

	// faultHook, when set (tests only), runs at the start of every
	// attempt and may panic or return an error to inject a failure.
	faultHook func(circuit string, attempt int) error
	// sleep replaces time.Sleep in tests.
	sleep func(time.Duration)
}

// QuarantinedRow records one circuit the suite gave up on, and why.
type QuarantinedRow struct {
	Circuit  string `json:"circuit"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

func (q QuarantinedRow) String() string {
	return fmt.Sprintf("%-8s quarantined after %d attempt(s): %s", q.Circuit, q.Attempts, q.Reason)
}

func (o *SuiteOptions) attempts() int {
	switch {
	case o.Retries < 0:
		return 1
	case o.Retries == 0:
		return 2 // the default: one retry
	default:
		return 1 + o.Retries
	}
}

func (o *SuiteOptions) parent() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// runAttempt executes one guarded attempt of a circuit's pipeline:
// panics become errors instead of killing the suite.
func (o *SuiteOptions) runAttempt(ctx context.Context, name string, attempt int,
	fn func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if o.faultHook != nil {
		if err := o.faultHook(name, attempt); err != nil {
			return err
		}
	}
	return fn(ctx)
}

// runCircuit runs fn under the per-circuit budget, with the retry loop
// delegated to retry.Policy: a constant jitterless backoff (Factor 1)
// keeps the suite's historical fixed-pause behavior — and its golden
// outputs — unchanged. It returns a quarantine row when every attempt
// failed, and a non-nil fatal error only when the suite context itself
// is done.
func (o *SuiteOptions) runCircuit(name string, fn func(ctx context.Context) error) (*QuarantinedRow, error) {
	parent := o.parent()
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	pol := retry.Policy{
		Attempts: o.attempts(),
		Base:     backoff,
		Cap:      backoff,
		Factor:   1,
		NoJitter: true,
	}
	if o.sleep != nil {
		sleep := o.sleep
		pol.Sleep = func(ctx context.Context, d time.Duration) error {
			sleep(d)
			return ctx.Err()
		}
	}
	var lastErr error
	err := pol.Do(parent, func(attempt int) error {
		ctx := parent
		var cancel context.CancelFunc
		if o.PerCircuitTimeout > 0 {
			ctx, cancel = context.WithTimeout(parent, o.PerCircuitTimeout)
		}
		err := o.runAttempt(ctx, name, attempt, fn)
		if cancel != nil {
			cancel()
		}
		// Suite-level cancellation is fatal, not quarantine-worthy.
		if err != nil && parent.Err() != nil {
			return retry.Permanent(parent.Err())
		}
		lastErr = err
		return err
	})
	switch {
	case err == nil:
		return nil, nil
	case parent.Err() != nil:
		return nil, parent.Err()
	default:
		return &QuarantinedRow{Circuit: name, Attempts: o.attempts(), Reason: lastErr.Error()}, nil
	}
}

// completeOr converts an interrupted or degraded enumeration result into
// the error the quarantine machinery expects; a complete result passes.
func completeOr(res *core.Result, what string) error {
	if res.Status == core.StatusComplete {
		return nil
	}
	if res.Err != nil {
		return fmt.Errorf("%s: %w", what, res.Err)
	}
	return fmt.Errorf("%s: enumeration %v", what, res.Status)
}
