package exp

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"time"

	"rdfault/internal/gen"
)

// Summary aggregates one full experiment run for machine- and
// human-readable reporting (cmd/report).
type Summary struct {
	GeneratedAt time.Time           `json:"generated_at"`
	Quick       bool                `json:"quick"`
	ISCAS       []ISCASRow          `json:"iscas"`
	MCNC        []MCNCRow           `json:"mcnc"`
	Quarantined []QuarantinedRow    `json:"quarantined,omitempty"`
	Figures     *FiguresReport      `json:"figures"`
	Speedup     []SpeedupRow        `json:"speedup"`
	Ablations   []AblationRow       `json:"ablations"`
	Optimality  []OptimalityRow     `json:"optimality"`
	Redundancy  []RedundancyRow     `json:"redundancy"`
	Sorts       []SortComparisonRow `json:"sorts"`
	Population  *PopulationStats    `json:"population"`
}

// RunAll executes every experiment. quick substitutes scaled-down
// workloads (seconds instead of minutes) — the full mode regenerates the
// EXPERIMENTS.md numbers. The table suites run hardened: circuits that
// blow their per-circuit budget or crash are quarantined (reported in
// Summary.Quarantined) and the remaining experiments still run; only
// suite-level cancellation aborts the run. The measured counts do not
// depend on opt.Workers.
func RunAll(w io.Writer, quick bool, opt SuiteOptions) (*Summary, error) {
	s := &Summary{GeneratedAt: time.Now(), Quick: quick}
	iscas := gen.ISCAS85Suite()
	mcnc := gen.MCNCSuite()
	speedSizes := []int{4, 6, 8, 10, 12, 14, 20}
	ablSeeds := []int64{1, 2, 3, 4, 5}
	optSeeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	redSeeds := []int64{1, 2, 3, 4, 5, 6}
	popN := 20
	if quick {
		iscas = []gen.Named{
			{Paper: "c432", C: gen.PriorityInterruptGrouped(3, 3)},
			{Paper: "c880", C: gen.ALU(4, gen.XorNAND)},
			{Paper: "c499", C: gen.SECDecoder(6, gen.XorAOI)},
		}
		mcnc = mcnc[:2]
		speedSizes = []int{4, 6}
		ablSeeds = ablSeeds[:2]
		optSeeds = optSeeds[:2]
		redSeeds = redSeeds[:2]
		popN = 4
	}
	var err error
	var q []QuarantinedRow
	if s.ISCAS, q, err = RunISCAS(iscas, opt); err != nil {
		return nil, err
	}
	s.Quarantined = append(s.Quarantined, q...)
	FprintTableI(w, s.ISCAS)
	FprintTableII(w, s.ISCAS)
	if s.MCNC, q, err = RunMCNC(mcnc, opt); err != nil {
		return nil, err
	}
	s.Quarantined = append(s.Quarantined, q...)
	FprintTableIII(w, s.MCNC)
	FprintQuarantine(w, s.Quarantined)
	if s.Figures, err = RunFigures(w); err != nil {
		return nil, err
	}
	if s.Speedup, err = RunSpeedup(w, speedSizes, 400_000); err != nil {
		return nil, err
	}
	if s.Ablations, err = RunAblations(w, ablSeeds); err != nil {
		return nil, err
	}
	if s.Optimality, err = RunOptimalityGap(w, optSeeds); err != nil {
		return nil, err
	}
	if s.Redundancy, err = RunRedundancySweep(w, redSeeds); err != nil {
		return nil, err
	}
	if s.Sorts, err = RunSortComparison(w, iscas); err != nil {
		return nil, err
	}
	if s.Population, err = RunPopulation(w, popN, 5000); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteJSON emits the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteHTML renders a self-contained HTML report.
func (s *Summary) WriteHTML(w io.Writer) error {
	return reportTemplate.Execute(w, s)
}

var reportTemplate = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(v float64) string { return fmt.Sprintf("%.2f%%", v) },
	"dur": func(d time.Duration) string { return d.Round(time.Millisecond).String() },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>rdfault experiment report</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 0.3em 0.7em; text-align: right; }
th { background: #eee; }
td:first-child, th:first-child { text-align: left; }
h2 { margin-top: 2em; }
.note { color: #555; font-size: 0.9em; }
</style></head><body>
<h1>rdfault — experiment report</h1>
<p class="note">Generated {{.GeneratedAt.Format "2006-01-02 15:04:05"}}{{if .Quick}} (quick mode — scaled-down workloads){{end}}.
Reproduction of Sparmann, Luxenburger, Cheng, Reddy, DAC 1995. See EXPERIMENTS.md for paper-vs-measured analysis.</p>

<h2>Table I/II — RD identification on the ISCAS85-analogue suite</h2>
<table><tr><th>circuit</th><th>paths</th><th>FUS</th><th>Heu1</th><th>Heu2</th><th>inverse</th><th>Heu1 time</th><th>Heu2 time</th></tr>
{{range .ISCAS}}<tr><td>{{.Circuit}}</td><td>{{.Total}}</td><td>{{pct .FUS}}</td><td>{{pct .Heu1}}</td><td>{{pct .Heu2}}</td><td>{{pct .Inv}}</td><td>{{dur .TimeHeu1}}</td><td>{{dur .TimeHeu2}}</td></tr>
{{end}}</table>

{{if .Quarantined}}<h2>Quarantined circuits</h2>
<table><tr><th>circuit</th><th>attempts</th><th>reason</th></tr>
{{range .Quarantined}}<tr><td>{{.Circuit}}</td><td>{{.Attempts}}</td><td style="text-align:left">{{.Reason}}</td></tr>
{{end}}</table>
{{end}}
<h2>Table III — unfolding approach of [1] vs Heuristic 2</h2>
<table><tr><th>circuit</th><th>paths</th><th>[1] RD</th><th>[1] time</th><th>Heu2 RD</th><th>Heu2 time</th></tr>
{{range .MCNC}}<tr><td>{{.Circuit}}</td><td>{{.Total}}</td><td>{{pct .LamRD}}</td><td>{{dur .LamTime}}</td><td>{{pct .Heu2RD}}</td><td>{{dur .Heu2Time}}</td></tr>
{{end}}</table>

<h2>Speed-up (c499 anchor)</h2>
<table><tr><th>circuit</th><th>paths</th><th>[1] time</th><th>Heu2 time</th><th>factor</th></tr>
{{range .Speedup}}<tr><td>{{.Circuit}}</td><td>{{.Paths}}</td><td>{{if .LamCompleted}}{{dur .LamTime}}{{else}}did not finish{{end}}</td><td>{{dur .Heu2Time}}</td><td>{{if .LamCompleted}}{{printf "%.0fx" .Speedup}}{{else}}&infin;{{end}}</td></tr>
{{end}}</table>

<h2>Figures 1–5 (paper example)</h2>
{{with .Figures}}
<ul>
<li>Stabilizing systems for input 111: {{.SystemsFor111}} (paper: 3)</li>
<li>Worse assignment |LP(σ)| = {{.SixPathAssignment}} (paper: 6); dashed path class: {{.DashedPathClass}}</li>
<li>Optimal assignment |LP(σ')| = {{.OptimalAssignment}} (paper: 5); σ^π achieves {{.SigmaPiOptimal}}</li>
<li>Hierarchy |T|={{.ExactT}} ≤ |LP(σ')|={{.OptimalAssignment}} ≤ |FS|={{.ExactFS}} ≤ |LP|={{.TotalPaths}}</li>
<li>Coverage: optimal {{.CoverageOptimal}}, worse {{.CoverageWorse}} (paper: 5/5 vs 5/6)</li>
</ul>
{{end}}

<h2>Ablations</h2>
<table><tr><th>seed circuit</th><th>segments (pruned)</th><th>segments (flat)</th><th>LP^sup</th><th>LP exact</th><th>Heu2</th><th>pin</th><th>inverse</th></tr>
{{range .Ablations}}<tr><td>{{.Circuit}}</td><td>{{.SegmentsPruned}}</td><td>{{.SegmentsFlat}}</td><td>{{.Superset}}</td><td>{{.Exact}}</td><td>{{pct .RDHeu2}}</td><td>{{pct .RDPin}}</td><td>{{pct .RDInv}}</td></tr>
{{end}}</table>

<h2>Optimality gap (unrestricted optimum vs sort-restricted)</h2>
<table><tr><th>circuit</th><th>paths</th><th>optimum</th><th>sort exact</th><th>sort approx</th></tr>
{{range .Optimality}}<tr><td>{{.Circuit}}</td><td>{{.Total}}</td><td>{{.Optimal}}{{if not .Exact}}+{{end}}</td><td>{{.BestSortExact}}</td><td>{{.BestSortSup}}</td></tr>
{{end}}</table>

<h2>Redundancy sweep</h2>
<table><tr><th>circuit</th><th>gates removed</th><th>RD before</th><th>RD after</th></tr>
{{range .Redundancy}}<tr><td>{{.Circuit}}</td><td>{{.Removed}}</td><td>{{pct .RDBefore}}</td><td>{{pct .RDAfter}}</td></tr>
{{end}}</table>

<h2>Input-sort comparison (incl. SCOAP extension)</h2>
<table><tr><th>circuit</th><th>pin</th><th>SCOAP</th><th>Heu1</th><th>Heu2</th></tr>
{{range .Sorts}}<tr><td>{{.Circuit}}</td><td>{{pct .PinRD}}</td><td>{{pct .SCOAPRD}}</td><td>{{pct .Heu1RD}}</td><td>{{pct .Heu2RD}}</td></tr>
{{end}}</table>

<h2>Population study</h2>
{{with .Population}}
<p>Over {{.Circuits}} synthesized covers: Heu2−Heu1 mean {{pct .MeanImprovement}}
(σ {{pct .StdDev}}), {{.Heu2Wins}} wins / {{.Ties}} ties; Heu2−inverse mean {{pct .MeanInverseDrop}}.</p>
{{end}}
</body></html>
`))
