package exp

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"rdfault/internal/analysis"
	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/leafdag"
	"rdfault/internal/stabilize"
)

// SpeedupRow compares the cost of the unfolding approach of [1] against
// Heuristic 2 at one circuit size.
type SpeedupRow struct {
	Circuit  string
	Paths    *big.Int
	LamTime  time.Duration
	Heu2Time time.Duration
	// LamCompleted is false when the unfolding blew the node cap — the
	// "did not finish after 69 hours" regime of the paper.
	LamCompleted bool
}

// Speedup returns LamTime/Heu2Time (0 when [1] did not complete).
func (r SpeedupRow) Speedup() float64 {
	if !r.LamCompleted || r.Heu2Time == 0 {
		return 0
	}
	return float64(r.LamTime) / float64(r.Heu2Time)
}

// RunSpeedup reproduces the §VI running-time comparison ("for c499 the
// method of [1] had not finished after 69 hours; our algorithm runs in
// under 4 minutes — a speed-up factor over 1000") on a growing family of
// SEC decoders, the c499-like structure. nodeCap bounds the unfolding; a
// blown cap reports an incomplete row, mirroring the paper.
func RunSpeedup(w io.Writer, sizes []int, nodeCap int) ([]SpeedupRow, error) {
	fmt.Fprintf(w, "Speed-up of Heuristic 2 over the unfolding approach of [1]\n")
	fmt.Fprintf(w, "(SEC decoder family; paper anchor: c499 >69h vs <4min, factor >1000)\n")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %10s\n", "circuit", "paths", "[1] time", "Heu2 time", "speedup")
	rows := make([]SpeedupRow, 0, len(sizes))
	for _, d := range sizes {
		c := gen.SECDecoder(d, gen.XorAOI)
		row := SpeedupRow{
			Circuit: c.Name(),
			Paths:   analysis.For(c).CopyLogical(),
		}
		t0 := time.Now()
		_, err := leafdag.IdentifyRD(c, leafdag.Options{NodeCap: nodeCap})
		row.LamTime = time.Since(t0)
		row.LamCompleted = err == nil
		if err != nil && !isTooLarge(err) {
			return nil, err
		}

		t0 = time.Now()
		if _, err := core.Identify(c, core.Heuristic2, core.Options{}); err != nil {
			return nil, err
		}
		row.Heu2Time = time.Since(t0)
		rows = append(rows, row)

		lamStr := row.LamTime.Round(time.Millisecond).String()
		spStr := fmt.Sprintf("%.0fx", row.Speedup())
		if !row.LamCompleted {
			lamStr = "did not finish"
			spStr = "inf"
		}
		fmt.Fprintf(w, "%-10s %14v %14s %14v %10s\n",
			row.Circuit, row.Paths, lamStr, row.Heu2Time.Round(time.Millisecond), spStr)
	}
	return rows, nil
}

func isTooLarge(err error) bool {
	for e := err; e != nil; {
		if e == leafdag.ErrTooLarge {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// AblationRow measures one design-choice ablation on one circuit.
type AblationRow struct {
	Circuit string
	// Prime-segment pruning (footnote 3): DFS segment visits with and
	// without pruning.
	SegmentsPruned, SegmentsFlat int64
	// Approximation gap of Algorithm 2: |LP^sup(sigma^pi)| vs the exact
	// |LP(sigma^pi)| for the pin-order sort (small circuits only; -1 when
	// skipped).
	Superset int64
	Exact    int64
	// Sort-quality spread on this circuit: RD%% under Heu2 vs pin order
	// vs inverse.
	RDHeu2, RDPin, RDInv float64
}

// RunAblations measures the paper's design choices in isolation on small
// random circuits: pruning effectiveness, the superset gap of the
// local-implication approximation, and the value of sorting at all.
func RunAblations(w io.Writer, seeds []int64) ([]AblationRow, error) {
	fmt.Fprintf(w, "Ablations: prime-segment pruning, approximation gap, sort quality\n")
	fmt.Fprintf(w, "%-8s %12s %12s %10s %10s %9s %9s %9s\n",
		"seed", "seg(pruned)", "seg(flat)", "LP^sup", "LP exact", "Heu2%", "pin%", "inv%")
	rows := make([]AblationRow, 0, len(seeds))
	for _, seed := range seeds {
		c := gen.RandomCircuit(fmt.Sprintf("rnd%d", seed),
			gen.RandomOptions{Inputs: 8, Gates: 40, Outputs: 3}, seed)
		row := AblationRow{Circuit: c.Name()}
		pin := circuit.PinOrderSort(c)

		pr, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &pin})
		if err != nil {
			return nil, err
		}
		fl, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &pin, NoPrune: true})
		if err != nil {
			return nil, err
		}
		row.SegmentsPruned, row.SegmentsFlat = pr.Segments, fl.Segments
		row.Superset = pr.Selected

		// Exact LP(sigma^pi) by Algorithm 1 over all vectors.
		a, err := stabilize.ComputeAssignment(c, stabilize.ChooseBySort(pin))
		if err != nil {
			return nil, err
		}
		row.Exact = int64(len(a.LogicalPaths()))

		h2, err := core.Identify(c, core.Heuristic2, core.Options{})
		if err != nil {
			return nil, err
		}
		row.RDHeu2 = h2.RDPercent()
		row.RDPin = pr.RDPercent()
		invS := pin.Inverse()
		iv, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &invS})
		if err != nil {
			return nil, err
		}
		row.RDInv = iv.RDPercent()
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %12d %12d %10d %10d %8.2f%% %8.2f%% %8.2f%%\n",
			seed, row.SegmentsPruned, row.SegmentsFlat, row.Superset, row.Exact,
			row.RDHeu2, row.RDPin, row.RDInv)
	}
	return rows, nil
}
