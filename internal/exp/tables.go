// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) on the generated
// benchmark suites and prints rows side by side with the paper's
// published numbers. EXPERIMENTS.md records one full run.
package exp

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"time"

	"rdfault/internal/circuit"
	"rdfault/internal/core"
	"rdfault/internal/gen"
	"rdfault/internal/leafdag"
	"rdfault/internal/synth"
)

// PaperRefI holds the published Table I / Table II values for one ISCAS85
// circuit.
type PaperRefI struct {
	FUS, Heu1, Heu2, Inv float64 // RD percentages, Table I
	Paths                string  // total logical paths, Table II
	TimeHeu1, TimeHeu2   string  // CPU times on a SPARC 10, Table II
}

// PaperTableI indexes the published values by circuit name.
var PaperTableI = map[string]PaperRefI{
	"c432":  {64.25, 90.12, 91.12, 84.29, "583,652", "0:25", "1:27"},
	"c499":  {30.05, 39.50, 53.79, 30.05, "795,776", "1:12", "3:22"},
	"c880":  {0.94, 1.81, 3.20, 0.94, "17,284", "0:07", "0:14"},
	"c1355": {81.19, 83.27, 86.70, 81.19, "8,346,432", "3:03", "9:17"},
	"c1908": {32.79, 74.95, 75.09, 33.34, "1,458,114", "2:22", "12:10"},
	"c2670": {77.26, 81.27, 82.42, 77.79, "1,359,920", "3:01", "9:53"},
	"c3540": {72.16, 94.89, 94.99, 83.33, "57,353,342", "2:24:06", "14:29:38"},
	"c5315": {78.05, 83.79, 83.80, 81.74, "2,682,610", "3:13", "10:31"},
	"c7552": {68.78, 75.63, 76.70, 72.18, "1,452,988", "4:37", "15:07"},
}

// ISCASRow is one measured Table I + Table II row.
type ISCASRow struct {
	Circuit string
	Total   *big.Int
	// RD percentages per heuristic (Table I columns).
	FUS, Heu1, Heu2, Inv float64
	// Wall-clock costs (Table II columns): Heu1 = sort + one enumeration;
	// Heu2 = the two Algorithm 3 passes + the final enumeration.
	TimeHeu1, TimeHeu2 time.Duration
}

// RunISCAS computes Table I and Table II rows for the given circuits,
// sharing the enumeration passes exactly as Algorithm 3 allows: the FS
// and T passes feed the FUS column, Heuristic 2's sort, and the inverse
// control column. Every measured count is identical for any worker count.
// Circuits that exceed their time budget or crash are retried once and
// then quarantined (second return) instead of aborting the suite.
func RunISCAS(circuits []gen.Named, opt SuiteOptions) ([]ISCASRow, []QuarantinedRow, error) {
	rows := make([]ISCASRow, 0, len(circuits))
	var quarantined []QuarantinedRow
	for _, nc := range circuits {
		nc := nc
		var row ISCASRow
		q, err := opt.runCircuit(nc.Paper, func(ctx context.Context) error {
			r, err := runISCASRow(ctx, nc, opt.Workers)
			if err != nil {
				return err
			}
			row = *r
			return nil
		})
		if err != nil {
			return rows, quarantined, err
		}
		if q != nil {
			quarantined = append(quarantined, *q)
			continue
		}
		rows = append(rows, row)
	}
	return rows, quarantined, nil
}

// runISCASRow runs the four enumeration passes of one Table I/II row
// under ctx; any interrupted pass aborts the row.
func runISCASRow(ctx context.Context, nc gen.Named, workers int) (*ISCASRow, error) {
	c := nc.C
	row := &ISCASRow{Circuit: nc.Paper}

	t0 := time.Now()
	fsRes, err := core.Enumerate(c, core.FS, core.Options{CollectLeadCounts: true, Workers: workers, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("%s: %v", nc.Paper, err)
	}
	if err := completeOr(fsRes, "FS pass"); err != nil {
		return nil, err
	}
	fsTime := time.Since(t0)
	row.Total = fsRes.Total
	row.FUS = fsRes.RDPercent()

	t0 = time.Now()
	tRes, err := core.Enumerate(c, core.NonRobust, core.Options{CollectLeadCounts: true, Workers: workers, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("%s: %v", nc.Paper, err)
	}
	if err := completeOr(tRes, "T pass"); err != nil {
		return nil, err
	}
	tTime := time.Since(t0)

	// Heuristic 1: linear-time path counting sort + one pass.
	t0 = time.Now()
	s1 := core.Heuristic1Sort(c)
	h1Res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s1, Workers: workers, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("%s heu1: %v", nc.Paper, err)
	}
	if err := completeOr(h1Res, "Heu1 pass"); err != nil {
		return nil, err
	}
	row.TimeHeu1 = time.Since(t0)
	row.Heu1 = h1Res.RDPercent()

	// Heuristic 2: reuse the FS and T passes for the cost measure.
	t0 = time.Now()
	s2 := heu2SortFromCounts(c, fsRes.LeadCounts, tRes.LeadCounts)
	h2Res, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &s2, Workers: workers, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("%s heu2: %v", nc.Paper, err)
	}
	if err := completeOr(h2Res, "Heu2 pass"); err != nil {
		return nil, err
	}
	row.TimeHeu2 = fsTime + tTime + time.Since(t0)
	row.Heu2 = h2Res.RDPercent()

	// Inverse control experiment.
	inv := s2.Inverse()
	invRes, err := core.Enumerate(c, core.SigmaPi, core.Options{Sort: &inv, Workers: workers, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("%s inverse: %v", nc.Paper, err)
	}
	if err := completeOr(invRes, "inverse pass"); err != nil {
		return nil, err
	}
	row.Inv = invRes.RDPercent()
	return row, nil
}

// heu2SortFromCounts builds Heuristic 2's sort from precomputed per-lead
// tallies (Algorithm 3 step 3).
func heu2SortFromCounts(c *circuit.Circuit, fs, t []int64) circuit.InputSort {
	measure := make([]int64, len(fs))
	for i := range measure {
		measure[i] = fs[i] - t[i]
	}
	return core.SortByLeadMeasure(c, measure)
}

// FprintTableI renders measured-vs-paper Table I.
func FprintTableI(w io.Writer, rows []ISCASRow) {
	fmt.Fprintf(w, "TABLE I — %% of logical paths identified robust dependent (measured | paper)\n")
	fmt.Fprintf(w, "%-8s %23s %23s %23s %23s\n", "circuit", "FUS", "Heu1", "Heu2", "inv-Heu2")
	for _, r := range rows {
		ref := PaperTableI[r.Circuit]
		fmt.Fprintf(w, "%-8s %9.2f%% | %8.2f%% %9.2f%% | %8.2f%% %9.2f%% | %8.2f%% %9.2f%% | %8.2f%%\n",
			r.Circuit, r.FUS, ref.FUS, r.Heu1, ref.Heu1, r.Heu2, ref.Heu2, r.Inv, ref.Inv)
	}
}

// FprintTableII renders measured-vs-paper Table II.
func FprintTableII(w io.Writer, rows []ISCASRow) {
	fmt.Fprintf(w, "TABLE II — total logical paths and running times (measured | paper, SPARC 10)\n")
	fmt.Fprintf(w, "%-8s %26s %24s %24s\n", "circuit", "logical paths", "Heu1 time", "Heu2 time")
	for _, r := range rows {
		ref := PaperTableI[r.Circuit]
		fmt.Fprintf(w, "%-8s %12v | %11s %12v | %9s %12v | %9s\n",
			r.Circuit, r.Total, ref.Paths,
			r.TimeHeu1.Round(time.Millisecond), ref.TimeHeu1,
			r.TimeHeu2.Round(time.Millisecond), ref.TimeHeu2)
	}
}

// PaperRefIII holds the published Table III values.
type PaperRefIII struct {
	Paths             string
	LamRD, Heu2RD     float64
	LamTime, Heu2Time string
}

// PaperTableIII indexes the published comparison against [1].
var PaperTableIII = map[string]PaperRefIII{
	"apex1":   {"13,756", 8.52, 7.89, "46:39", "0:30"},
	"Z5xp1":   {"20,102", 94.75, 94.14, "3:44", "0:05"},
	"apex5":   {"23,836", 60.63, 59.43, "16:15", "0:18"},
	"bw":      {"24,380", 91.37, 89.68, "8:01", "0:09"},
	"apex3":   {"35,270", 71.53, 70.95, "1:02:54", "0:38"},
	"misex3":  {"40,578", 67.25, 63.78, "1:39:40", "0:31"},
	"seq":     {"52,886", 63.35, 57.81, "3:59:35", "0:42"},
	"misex3c": {"1,856,452", 99.53, 99.29, "7:54:22", "4:13"},
}

// MCNCRow is one measured Table III row.
type MCNCRow struct {
	Circuit  string
	Total    *big.Int
	LamRD    float64 // approach of [1] (leaf-dag), % RD paths
	LamTime  time.Duration
	Heu2RD   float64
	Heu2Time time.Duration
}

// RunMCNC synthesizes each cover (the script.rugged stand-in) and runs
// both the unfolding approach of [1] and Heuristic 2 — Table III.
// Covers whose pipeline exceeds its time budget or crashes are retried
// once and then quarantined instead of aborting the suite.
func RunMCNC(covers []gen.NamedCover, opt SuiteOptions) ([]MCNCRow, []QuarantinedRow, error) {
	rows := make([]MCNCRow, 0, len(covers))
	var quarantined []QuarantinedRow
	for _, nc := range covers {
		nc := nc
		var row MCNCRow
		q, err := opt.runCircuit(nc.Paper, func(ctx context.Context) error {
			c, err := synth.Synthesize(nc.Cover, synth.Options{})
			if err != nil {
				return fmt.Errorf("%s: %v", nc.Paper, err)
			}
			row = MCNCRow{Circuit: nc.Paper}

			t0 := time.Now()
			lam, err := leafdag.IdentifyRD(c, leafdag.Options{})
			if err != nil {
				return fmt.Errorf("%s leafdag: %v", nc.Paper, err)
			}
			row.LamTime = time.Since(t0)
			row.LamRD = lam.RDPercent()
			row.Total = lam.TotalLogicalPaths

			t0 = time.Now()
			rep, err := core.Identify(c, core.Heuristic2, core.Options{Workers: opt.Workers, Context: ctx})
			if err != nil {
				return fmt.Errorf("%s heu2: %v", nc.Paper, err)
			}
			if err := completeOr(rep.Final, "Heu2 pipeline"); err != nil {
				return err
			}
			row.Heu2Time = time.Since(t0)
			row.Heu2RD = rep.RDPercent()
			return nil
		})
		if err != nil {
			return rows, quarantined, err
		}
		if q != nil {
			quarantined = append(quarantined, *q)
			continue
		}
		rows = append(rows, row)
	}
	return rows, quarantined, nil
}

// FprintTableIII renders measured-vs-paper Table III.
func FprintTableIII(w io.Writer, rows []MCNCRow) {
	fmt.Fprintf(w, "TABLE III — approach of [1] vs Heuristic 2 (measured | paper)\n")
	fmt.Fprintf(w, "%-8s %22s %26s %26s\n", "circuit", "paths", "[1] %RD / time", "Heu2 %RD / time")
	for _, r := range rows {
		ref := PaperTableIII[r.Circuit]
		fmt.Fprintf(w, "%-8s %8v | %11s %7.2f%%/%-8v | %6.2f%%/%-8s %7.2f%%/%-8v | %6.2f%%/%-8s\n",
			r.Circuit, r.Total, ref.Paths,
			r.LamRD, r.LamTime.Round(time.Millisecond), ref.LamRD, ref.LamTime,
			r.Heu2RD, r.Heu2Time.Round(time.Millisecond), ref.Heu2RD, ref.Heu2Time)
	}
}

// FprintQuarantine lists the circuits a suite run gave up on; silent when
// there are none.
func FprintQuarantine(w io.Writer, rows []QuarantinedRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "QUARANTINED — %d circuit(s) excluded from the tables above\n", len(rows))
	for _, q := range rows {
		fmt.Fprintf(w, "  %s\n", q)
	}
}

// QualityGap returns the average RD-percentage shortfall of Heuristic 2
// against the approach of [1] over the given rows — the paper reports
// 2.05% on average.
func QualityGap(rows []MCNCRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.LamRD - r.Heu2RD
	}
	return sum / float64(len(rows))
}
