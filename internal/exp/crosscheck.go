package exp

import (
	"fmt"
	"io"

	"rdfault/internal/oracle/diff"
)

// CrossCheckRow is one seed's differential result (a diff.Report plus
// the JSON field names the sweep log keeps).
type CrossCheckRow struct {
	Seed        int64  `json:"seed"`
	Circuit     string `json:"circuit"`
	Sort        string `json:"sort"`
	Paths       int    `json:"paths"`
	FastRD      int    `json:"fast_rd"`
	ExactRD     int    `json:"exact_rd"`
	Gap         int    `json:"gap"`
	TSize       int    `json:"t_size"`
	FSSize      int    `json:"fs_size"`
	Sound       bool   `json:"sound"`
	Lemma1      bool   `json:"lemma1"`
	Metamorphic bool   `json:"metamorphic"`
}

// CrossCheckSummary aggregates a seeded sweep of the differential
// harness — the nightly record of how far the fast identifier's local
// approximation sits from the exact Algorithm 1 answer.
type CrossCheckSummary struct {
	Seeds      int             `json:"seeds"`
	Base       int64           `json:"base_seed"`
	Rows       []CrossCheckRow `json:"rows"`
	Violations []string        `json:"violations,omitempty"`
	// GapSeeds counts seeds with a nonzero approximation gap; MaxGap and
	// TotalGap summarize its size. TotalPaths/TotalFastRD/TotalExactRD
	// aggregate the classification volume.
	GapSeeds     int `json:"gap_seeds"`
	MaxGap       int `json:"max_gap"`
	TotalGap     int `json:"total_gap"`
	TotalPaths   int `json:"total_paths"`
	TotalFastRD  int `json:"total_fast_rd"`
	TotalExactRD int `json:"total_exact_rd"`
}

// RunCrossCheck sweeps seeds base..base+seeds-1 through the
// differential harness, printing one row per seed. Invariant violations
// are collected (and counted) rather than aborting, so a broken build's
// sweep reports every failing seed at once; engine errors (width, tgen
// abort) are fatal because they mean the sweep was misconfigured.
func RunCrossCheck(w io.Writer, seeds int, base int64, opt diff.Options) (*CrossCheckSummary, error) {
	s := &CrossCheckSummary{Seeds: seeds, Base: base}
	fmt.Fprintf(w, "Differential cross-check: %d seeds from %d (fast identifier vs exact oracle)\n", seeds, base)
	for i := 0; i < seeds; i++ {
		seed := base + int64(i)
		rep, err := diff.CheckSeed(seed, opt)
		if err != nil {
			if v, ok := err.(*diff.Violation); ok {
				s.Violations = append(s.Violations, v.Error())
				fmt.Fprintf(w, "  VIOLATION %v\n", v)
				if rep == nil {
					continue
				}
			} else {
				return nil, fmt.Errorf("crosscheck seed %d: %w", seed, err)
			}
		}
		row := CrossCheckRow{
			Seed:        rep.Seed,
			Circuit:     rep.Circuit,
			Sort:        rep.Sort,
			Paths:       rep.Total,
			FastRD:      rep.FastRD,
			ExactRD:     rep.ExactRD,
			Gap:         rep.Gap,
			TSize:       rep.TSize,
			FSSize:      rep.FSSize,
			Sound:       err == nil,
			Lemma1:      err == nil,
			Metamorphic: rep.Metamorphic,
		}
		s.Rows = append(s.Rows, row)
		s.TotalPaths += row.Paths
		s.TotalFastRD += row.FastRD
		s.TotalExactRD += row.ExactRD
		if row.Gap > 0 {
			s.GapSeeds++
			s.TotalGap += row.Gap
			if row.Gap > s.MaxGap {
				s.MaxGap = row.Gap
			}
		}
		fmt.Fprintf(w, "  %s\n", rep)
	}
	fmt.Fprintf(w, "cross-check: %d seeds, %d violations, %d with nonzero gap (max %d, total %d); %d paths, fast RD %d, exact RD %d\n",
		seeds, len(s.Violations), s.GapSeeds, s.MaxGap, s.TotalGap, s.TotalPaths, s.TotalFastRD, s.TotalExactRD)
	return s, nil
}
